// Package viewjoin is a from-scratch Go implementation of ViewJoin (Chen &
// Chan, ICDE 2010): efficient view-based evaluation of tree pattern
// queries over XML, together with the storage schemes and baseline
// algorithms the paper evaluates.
//
// The library answers tree pattern queries (the XPath fragment with /, //
// and []) over XML documents using materialized views:
//
//   - four physical storage schemes for materialized views: tuple (T),
//     element (E), linked-element (LE) and partial linked-element (LEp);
//   - four evaluation engines: ViewJoin (the paper's contribution),
//     TwigStack, PathStack and InterJoin;
//   - the paper's cost-based view selection heuristic (§V);
//   - deterministic XMark-like and Nasa-like dataset generators and the
//     full experiment harness regenerating the paper's tables and figures
//     (package internal/experiments, cmd/vjbench).
//
// # Quickstart
//
//	doc, _ := viewjoin.ParseDocumentString(xmlData)
//	query, _ := viewjoin.ParseQuery("//a[//f]//b//e")
//	views, _ := viewjoin.ParseViews("//a//e; //b; //f")
//	mv, _ := doc.MaterializeViews(views, viewjoin.SchemeLEp)
//	res, _ := viewjoin.Evaluate(doc, query, mv, viewjoin.EngineViewJoin, nil)
//	for _, m := range res.Matches {
//	    ... // one binding per query node
//	}
package viewjoin

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"viewjoin/internal/dataset/nasa"
	"viewjoin/internal/dataset/xmark"
	"viewjoin/internal/obs"
	"viewjoin/internal/oracle"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/vsq"
	"viewjoin/internal/xmltree"
)

// Document is an XML document as a region-labelled element tree. A
// Document is a handle over an immutable snapshot chain: Apply installs a
// new snapshot (epoch+1) without touching the old one, so views, prepared
// queries and in-flight evaluations opened against an earlier epoch keep
// reading a consistent tree. All methods are safe for concurrent use; the
// single writer (Apply) is serialized internally.
type Document struct {
	w   sync.Mutex // serializes Apply and view maintenance
	cur atomic.Pointer[docSnap]
}

// docSnap is one immutable document snapshot: the tree plus the update
// epoch that produced it (0 for a freshly parsed or generated document).
type docSnap struct {
	tree  *xmltree.Document
	epoch uint64
}

// newDocument wraps a tree in a fresh handle at epoch 0.
func newDocument(t *xmltree.Document) *Document {
	d := &Document{}
	d.cur.Store(&docSnap{tree: t})
	return d
}

// snap returns the current immutable snapshot.
func (d *Document) snap() *docSnap { return d.cur.Load() }

// tree returns the current snapshot's tree.
func (d *Document) tree() *xmltree.Document { return d.snap().tree }

// Epoch returns the number of updates applied to the document: 0 for a
// freshly parsed or generated document, incremented by every successful
// Apply. Views record the epoch they reflect, so a comparison against the
// document epoch tells whether a view is stale.
func (d *Document) Epoch() uint64 { return d.snap().epoch }

// ParseDocument parses an XML document from r. Only element structure is
// retained; text, attributes and comments are ignored (tree pattern
// queries match structure only).
func ParseDocument(r io.Reader) (*Document, error) {
	d, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return newDocument(d), nil
}

// ParseDocumentString parses an XML document from a string.
func ParseDocumentString(s string) (*Document, error) {
	d, err := xmltree.ParseString(s)
	if err != nil {
		return nil, err
	}
	return newDocument(d), nil
}

// GenerateXMark builds a deterministic XMark-like auction document.
// scale = 1.0 corresponds to the paper's standard ~100MB document in shape
// (see DESIGN.md for the substitution notes); size grows linearly.
func GenerateXMark(scale float64) *Document {
	return newDocument(xmark.Scale(scale))
}

// GenerateNasa builds a deterministic Nasa-like document with the skewed
// element distribution of the paper's real dataset. datasets <= 0 selects
// the default size (≈ the paper's 23MB document in shape).
func GenerateNasa(datasets int) *Document {
	return newDocument(nasa.Generate(nasa.Config{Datasets: datasets}))
}

// NumNodes returns the number of element nodes in the current snapshot.
func (d *Document) NumNodes() int { return d.tree().NumNodes() }

// WriteXML serializes the current snapshot's element structure as XML.
func (d *Document) WriteXML(w io.Writer) error { return xmltree.Write(w, d.tree()) }

// Node describes one element node in a result.
type Node struct {
	Tag   string
	Start int32
	End   int32
	Level int32
}

// Query is a parsed tree pattern query.
type Query struct {
	p *tpq.Pattern
}

// ParseQuery parses a TPQ in the XPath fragment {/, //, []}, e.g.
// "//a/b[//c/d]//e". Patterns must not repeat element types (the paper's
// assumption, §II).
func ParseQuery(s string) (*Query, error) {
	p, err := tpq.Parse(s)
	if err != nil {
		return nil, err
	}
	return &Query{p}, nil
}

// MustParseQuery is ParseQuery but panics on error.
func MustParseQuery(s string) *Query {
	q, err := ParseQuery(s)
	if err != nil {
		panic(err)
	}
	return q
}

// String renders the query back in XPath syntax.
func (q *Query) String() string { return q.p.String() }

// NumNodes returns the number of query nodes.
func (q *Query) NumNodes() int { return q.p.Size() }

// IsPath reports whether the query has no branching.
func (q *Query) IsPath() bool { return q.p.IsPath() }

// Labels returns the element type of each query node, in pattern pre-order
// — the same order used for match bindings.
func (q *Query) Labels() []string {
	out := make([]string, q.p.Size())
	for i := range q.p.Nodes {
		out[i] = q.p.Nodes[i].Label
	}
	return out
}

// ParseViews parses a semicolon-separated list of view patterns, e.g.
// "//a//e; //b[//c/d]; //f".
func ParseViews(s string) ([]*Query, error) {
	ps, err := tpq.ParseAll(s)
	if err != nil {
		return nil, err
	}
	out := make([]*Query, len(ps))
	for i, p := range ps {
		out[i] = &Query{p}
	}
	return out, nil
}

// StorageScheme selects a physical layout for materialized views (§I,
// §III of the paper).
type StorageScheme int

const (
	// SchemeTuple is InterJoin's tuple scheme: one record per view match.
	SchemeTuple StorageScheme = iota
	// SchemeElement stores per-node solution lists without pointers.
	SchemeElement
	// SchemeLE is the linked-element scheme: solution lists plus all
	// child/descendant/following pointers (§III-B).
	SchemeLE
	// SchemeLEp is the partial linked-element scheme (§III-C).
	SchemeLEp
)

// String names the scheme as in the paper.
func (s StorageScheme) String() string { return s.kind().String() }

func (s StorageScheme) kind() store.Kind {
	switch s {
	case SchemeTuple:
		return store.Tuple
	case SchemeElement:
		return store.Element
	case SchemeLE:
		return store.Linked
	default:
		return store.LinkedPartial
	}
}

// MaterializedView is one view materialized over a document and laid out
// on the simulated paged store. Like its Document, a view is a handle over
// an immutable state chain: Maintain installs a successor store (sharing
// unmodified pages copy-on-write) without touching the published one, so
// concurrent readers and prepared queries keep a consistent snapshot.
type MaterializedView struct {
	doc     *Document
	pattern *tpq.Pattern
	// backend owns the container image loaded views slice from (nil for
	// views materialized in memory); Release unwinds it.
	backend store.Backend
	// overlay tracks the copy-on-write store chain for maintenance; it is
	// writer-owned and mutated only under doc.w. nil for backend-loaded
	// views (which cannot be maintained — see Maintain).
	overlay *store.Overlay
	state   atomic.Pointer[viewState]
}

// viewState is one immutable published state of a view: the store, the
// document snapshot it reflects, and (for freshly materialized views) the
// in-memory materialization.
type viewState struct {
	tree  *xmltree.Document
	epoch uint64
	mat   *views.Materialized // nil after LoadView or Maintain
	store *store.ViewStore
}

// st returns the view's current immutable state.
func (v *MaterializedView) st() *viewState { return v.state.Load() }

// newView publishes a view's initial state over one document snapshot.
func newView(doc *Document, snap *docSnap, pattern *tpq.Pattern, mat *views.Materialized,
	st *store.ViewStore, be store.Backend) *MaterializedView {
	v := &MaterializedView{doc: doc, pattern: pattern, backend: be}
	if be == nil {
		v.overlay = store.NewOverlay(st)
	}
	v.state.Store(&viewState{tree: snap.tree, epoch: snap.epoch, mat: mat, store: st})
	return v
}

// MaterializeOptions tunes view materialization.
type MaterializeOptions struct {
	// PageSize is the simulated page size in bytes; 0 means 4096.
	PageSize int
}

// MaterializeView computes the view's matches over the document and lays
// the result out in the given storage scheme.
func (d *Document) MaterializeView(view *Query, scheme StorageScheme, opts *MaterializeOptions) (*MaterializedView, error) {
	return d.materializeViewAt(d.snap(), view, scheme, opts)
}

// materializeViewAt materializes over one captured snapshot, so a view set
// built concurrently with updates still binds to a single epoch.
func (d *Document) materializeViewAt(snap *docSnap, view *Query, scheme StorageScheme, opts *MaterializeOptions) (*MaterializedView, error) {
	pageSize := 0
	if opts != nil {
		pageSize = opts.PageSize
	}
	mat, err := views.Materialize(snap.tree, view.p)
	if err != nil {
		return nil, err
	}
	st, err := store.Build(mat, scheme.kind(), pageSize)
	if err != nil {
		return nil, err
	}
	return newView(d, snap, view.p, mat, st, nil), nil
}

// MaterializeViews materializes a whole view set in one scheme. The views
// are materialized concurrently across a worker pool bounded by GOMAXPROCS;
// the output order always matches the input order, and on failure the error
// of the lowest-indexed failing view is returned, so the result is
// deterministic regardless of scheduling.
func (d *Document) MaterializeViews(views []*Query, scheme StorageScheme) ([]*MaterializedView, error) {
	snap := d.snap()
	out := make([]*MaterializedView, len(views))
	errs := make([]error, len(views))
	parallelFor(len(views), func(i int) {
		mv, err := d.materializeViewAt(snap, views[i], scheme, nil)
		if err != nil {
			errs[i] = fmt.Errorf("view %s: %w", views[i], err)
			return
		}
		out[i] = mv
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Pattern returns the view's pattern.
func (v *MaterializedView) Pattern() *Query { return &Query{v.pattern} }

// Scheme returns the view's storage scheme.
func (v *MaterializedView) Scheme() StorageScheme {
	switch v.st().store.Kind {
	case store.Tuple:
		return SchemeTuple
	case store.Element:
		return SchemeElement
	case store.Linked:
		return SchemeLE
	default:
		return SchemeLEp
	}
}

// Epoch returns the document epoch the view's published store reflects.
// It equals the owning document's Epoch exactly when the view is current;
// Maintain advances it.
func (v *MaterializedView) Epoch() uint64 { return v.st().epoch }

// SizeBytes returns the on-disk size (page-granular).
func (v *MaterializedView) SizeBytes() int64 { return v.st().store.SizeBytes() }

// NumPointers returns the number of materialized pointers (0 for T/E).
func (v *MaterializedView) NumPointers() int { return v.st().store.NumPointers() }

// NumEntries returns the number of records (list entries, or tuples for
// the tuple scheme).
func (v *MaterializedView) NumEntries() int { return v.st().store.TotalEntries() }

// ListSizes returns |L_q| per view node — the inputs of the §V cost model.
// For element-family views it is available even after LoadView or Maintain;
// for loaded tuple views (which store whole matches, not per-node lists) it
// is nil.
func (v *MaterializedView) ListSizes() []int {
	s := v.st()
	if s.mat != nil {
		return s.mat.ListSizes()
	}
	if len(s.store.Lists) == 0 {
		return nil
	}
	out := make([]int, len(s.store.Lists))
	for i, l := range s.store.Lists {
		out[i] = l.Entries()
	}
	return out
}

// Engine selects an evaluation algorithm.
type Engine int

const (
	// EngineViewJoin is the paper's algorithm (§IV); requires E/LE/LEp
	// views.
	EngineViewJoin Engine = iota
	// EngineTwigStack is the holistic twig join baseline; requires E/LE/LEp
	// views (pointers are ignored).
	EngineTwigStack
	// EnginePathStack is the structural join baseline for path queries;
	// requires E/LE/LEp views.
	EnginePathStack
	// EngineInterJoin evaluates path queries over tuple-scheme path views.
	EngineInterJoin
)

// String names the engine as in the paper's experiments.
func (e Engine) String() string {
	switch e {
	case EngineViewJoin:
		return "VJ"
	case EngineTwigStack:
		return "TS"
	case EnginePathStack:
		return "PS"
	case EngineInterJoin:
		return "IJ"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// EvalOptions tunes evaluation.
type EvalOptions struct {
	// Tracer, when non-nil, receives phase spans and engine-internal events
	// (cursor advances, pointer jumps, stack and buffer-pool activity).
	// Passing an *obs.Recorder additionally fills Result.Trace with the full
	// report. nil disables tracing at zero cost.
	Tracer obs.Tracer
	// Context, when non-nil, bounds the evaluation: cancellation or deadline
	// expiry aborts the engine main loops and the window enumeration at the
	// next cooperative checkpoint (every few hundred cursor steps), and the
	// call returns a *CanceledError wrapping the context's error. No partial
	// results are returned. nil keeps evaluation uninterruptible at zero
	// hot-path cost. For a PreparedQuery shared across requests, prefer
	// PreparedQuery.RunContext over capturing a per-request context here.
	Context context.Context
	// DiskBased selects the disk-based output approach (§IV): intermediate
	// solutions are spooled through scratch pages, trading I/O for memory.
	DiskBased bool
	// PageSize is the scratch page size; 0 means 4096.
	PageSize int
	// BufferPoolPages is the simulated buffer pool capacity in pages; 0
	// means 64, negative disables caching.
	BufferPoolPages int
	// UnguardedJumps makes ViewJoin follow scoped following pointers
	// unconditionally, as the paper's pseudocode prescribes, instead of
	// applying this reproduction's safe-jump probe rule. Results can be
	// incomplete when the queried element types nest recursively; intended
	// for ablation studies on data without such nesting (the benchmark
	// datasets qualify).
	UnguardedJumps bool
	// Parallelism requests range-partitioned parallel evaluation: the
	// document is split into up to Parallelism chunks at top-level subtree
	// boundaries and evaluated by a bounded worker group, with outputs
	// merged in document order — identical to the sequential result. 0 and
	// 1 evaluate sequentially; negative means GOMAXPROCS. See
	// PreparedQuery.RunParallel for the partitioning rules and their
	// effect on Stats.
	Parallelism int
	// IOLatency, when positive, charges every simulated buffer-pool page
	// miss as real wall time: the evaluating goroutine stalls for this
	// long per miss (batched above the platform timer floor, with the
	// total kept accurate). Sequential runs pay the stalls serially;
	// partitioned runs overlap them across workers, exactly as concurrent
	// range reads overlap on a real device. Zero (the default) keeps the
	// historical arithmetic-only cost model.
	IOLatency time.Duration
	// Limit, when > 0, bounds the result to the first Limit matches in
	// document order. The bound is pushed into the engines: the streaming
	// engines (ViewJoin, TwigStack) stop scanning once Offset+Limit matches
	// have been enumerated, and the sort-before-output engines (PathStack,
	// InterJoin) cap their accumulation at Offset+Limit entries, so peak
	// result memory is O(Limit) instead of O(total matches). 0 returns
	// everything.
	Limit int
	// Offset skips the first Offset matches (applied before Limit, as in
	// SQL LIMIT/OFFSET). Prefer cursor-based pagination
	// (PreparedQuery.RunPage with StreamOptions.After) for deep paging:
	// an offset still enumerates the skipped prefix, a cursor seeks past
	// it.
	Offset int
}

// Stats reports the deterministic cost of an evaluation.
type Stats struct {
	// ElementsScanned counts records decoded from view lists.
	ElementsScanned int64
	// Comparisons counts structural comparisons.
	Comparisons int64
	// PointerDerefs counts materialized pointers followed.
	PointerDerefs int64
	// PagesRead / PagesWritten count simulated page I/O.
	PagesRead    int64
	PagesWritten int64
	// PageHits counts page touches served from the simulated buffer pool
	// without a read; the pool hit ratio is PageHits/(PageHits+PagesRead).
	PageHits int64
	// JumpsTaken / JumpsRefused count materialized pointer jumps followed
	// and refused (safe-jump probe, open-region cover, stale pointers) —
	// zero for engines without pointer jumps. Recorded on every run, so
	// serving-side aggregation observes them without a tracer.
	JumpsTaken   int64
	JumpsRefused int64
	// PeakMemoryBytes estimates the largest in-memory intermediate state
	// (the paper's |F_max|); 0 for engines that do not track it. For
	// partitioned runs this is the largest single partition's peak.
	PeakMemoryBytes int64
	// Duration is the wall-clock evaluation time.
	Duration time.Duration
	// FirstMatchNanos is the wall-clock time from the start of the run to
	// the first match produced (time-to-first-match), in nanoseconds; 0
	// when the run produced no match. For the streaming engines (ViewJoin,
	// TwigStack) it stays flat as the total match count grows; the
	// sort-before-output engines (PathStack, InterJoin) cannot deliver
	// before their final sort, so their TTFM tracks the full run. For
	// partitioned runs it is the earliest first match across partitions.
	FirstMatchNanos int64
	// Partitions is the number of document partitions evaluated: 1 for a
	// sequential run, the executed partition-job count for a parallel one
	// (jobs skipped by a first-k quota cutoff are not counted).
	Partitions int
}

// Result is the answer to a query: all tree pattern instances, one node
// binding per query node (every query node is an output node, §II).
type Result struct {
	// Matches holds one row per embedding; row[i] binds query node i (in
	// Query.Labels order).
	Matches [][]Node
	Stats   Stats
	// Trace is the full observability report of the run: plan, per-phase
	// durations, per-node costs, jump and buffer-pool distributions. It is
	// populated only when EvalOptions.Tracer is an *obs.Recorder.
	Trace *obs.Report
}

// Evaluate answers q over the materialized views using the chosen engine.
// The views must form a valid minimal covering set of q (subpatterns of q
// with pairwise disjoint element types, together covering every query
// node); InterJoin additionally requires path views of q in the tuple
// scheme, while the other engines require element-family schemes.
// Evaluate is one-shot Prepare + Run: Stats.Duration covers the whole call
// (preparation included) and the counters fold in any preparation-time
// costs, so a repeated query is better served by preparing once and calling
// PreparedQuery.Run.
func Evaluate(d *Document, q *Query, mviews []*MaterializedView, eng Engine, opts *EvalOptions) (*Result, error) {
	start := time.Now()
	p, err := Prepare(d, q, mviews, eng, opts)
	if err != nil {
		return nil, err
	}
	if k := p.parallelism(); k > 1 {
		return p.runParallel(p.opts.Context, k, p.limits(), start, true, p.opts.Tracer)
	}
	return p.run(p.opts.Context, p.limits(), nil, start, true, p.opts.Tracer)
}

// CanceledError reports an evaluation aborted by its context (cancellation
// or deadline expiry). No partial results accompany it: the run's output is
// discarded and its pooled scratch is recycled. Unwrap yields the context's
// error, so errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) work as usual.
type CanceledError struct {
	// Engine and Query identify the aborted evaluation.
	Engine Engine
	Query  string
	// Cause is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Cause error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("viewjoin: evaluation of %s via %s aborted: %v", e.Query, e.Engine, e.Cause)
}

// Unwrap exposes the context error for errors.Is.
func (e *CanceledError) Unwrap() error { return e.Cause }

// contextInterrupt builds the cooperative-cancellation hook the engines
// poll. Besides ctx.Err() it compares any deadline against the wall clock
// directly: on a single-CPU machine the context's timer goroutine can be
// starved by the evaluation loop, leaving ctx.Err() nil long past expiry,
// whereas a direct clock read trips at the next poll regardless of
// scheduling.
func contextInterrupt(ctx context.Context, eng Engine, q string) func() error {
	dl, hasDL := ctx.Deadline()
	return func() error {
		cerr := ctx.Err()
		if cerr == nil && hasDL && !time.Now().Before(dl) {
			cerr = context.DeadlineExceeded
		}
		if cerr != nil {
			return &CanceledError{Engine: eng, Query: q, Cause: cerr}
		}
		return nil
	}
}

// tracePlan translates a view-segmented query into the plain-data plan the
// observability layer renders.
func tracePlan(q *tpq.Pattern, patterns []*tpq.Pattern, stores []*store.ViewStore, eng Engine, v *vsq.VSQ) *obs.Plan {
	p := &obs.Plan{
		Query:       q.String(),
		Engine:      eng.String(),
		NumSegments: len(v.Segments),
		Nodes:       make([]obs.PlanNode, q.Size()),
	}
	if len(stores) > 0 {
		p.Scheme = stores[0].Kind.String()
	}
	for _, vp := range patterns {
		p.Views = append(p.Views, vp.String())
	}
	for qi := range p.Nodes {
		n := obs.PlanNode{
			Index:       qi,
			Label:       q.Nodes[qi].Label,
			Axis:        q.Nodes[qi].Axis.String(),
			Parent:      q.Nodes[qi].Parent,
			View:        v.Owner[qi],
			ViewNode:    v.ViewNode[qi],
			Segment:     -1,
			ListEntries: -1,
		}
		if v.InQPrime[qi] {
			n.Segment = v.SegOf[qi]
			n.SegmentRoot = v.Segments[n.Segment].Root == qi
			n.InterView = v.PrimeParent[qi] >= 0 && v.InterView[qi]
		}
		if vi, ni := v.Owner[qi], v.ViewNode[qi]; vi >= 0 && ni >= 0 &&
			stores[vi].Kind != store.Tuple && ni < len(stores[vi].Lists) {
			n.ListEntries = stores[vi].Lists[ni].Entries()
		}
		p.Nodes[qi] = n
	}
	return p
}

// interJoinPlan builds the plan for the segment-free InterJoin engine.
func interJoinPlan(q *tpq.Pattern, patterns []*tpq.Pattern, stores []*store.ViewStore, viewPos [][]int) *obs.Plan {
	p := &obs.Plan{
		Query:  q.String(),
		Engine: EngineInterJoin.String(),
		Nodes:  make([]obs.PlanNode, q.Size()),
	}
	if len(stores) > 0 {
		p.Scheme = stores[0].Kind.String()
	}
	for _, vp := range patterns {
		p.Views = append(p.Views, vp.String())
	}
	for qi := range p.Nodes {
		p.Nodes[qi] = obs.PlanNode{
			Index:       qi,
			Label:       q.Nodes[qi].Label,
			Axis:        q.Nodes[qi].Axis.String(),
			Parent:      q.Nodes[qi].Parent,
			View:        -1,
			ViewNode:    -1,
			Segment:     -1,
			ListEntries: -1,
		}
	}
	for vi, positions := range viewPos {
		for j, qi := range positions {
			p.Nodes[qi].View = vi
			p.Nodes[qi].ViewNode = j
			if stores[vi].Tuples != nil {
				p.Nodes[qi].ListEntries = stores[vi].Tuples.Entries()
			}
		}
	}
	return p
}

// EvaluateDirect answers q by brute force without views — the reference
// evaluator, useful for validating view-based plans.
func EvaluateDirect(d *Document, q *Query) *Result {
	t := d.tree()
	ms := oracle.Eval(t, q.p)
	res := &Result{Matches: make([][]Node, len(ms))}
	for i, m := range ms {
		row := make([]Node, len(m))
		for j, id := range m {
			n := t.Node(id)
			row[j] = Node{Tag: t.TypeName(n.Type), Start: n.Start, End: n.End, Level: n.Level}
		}
		res.Matches[i] = row
	}
	return res
}

// ValidateViewSet checks that the views form a valid covering set for q
// under the paper's assumptions.
func ValidateViewSet(q *Query, views []*Query) error {
	ps := make([]*tpq.Pattern, len(views))
	for i, v := range views {
		ps[i] = v.p
	}
	return tpq.ValidateViewSet(ps, q.p)
}

// InterViewEdges counts the inter-view edges of q w.r.t. the view set —
// the paper's measure of interleaving complexity (Table III).
func InterViewEdges(q *Query, views []*Query) int {
	ps := make([]*tpq.Pattern, len(views))
	for i, v := range views {
		ps[i] = v.p
	}
	return tpq.InterViewEdges(ps, q.p)
}
