package viewjoin

import "testing"

// TestPaperShapeCounters pins the deterministic counter relationships
// behind the paper's headline claims on the benchmark workload. Unlike
// wall-clock comparisons these are exactly reproducible:
//
//  1. ViewJoin performs fewer structural comparisons than TwigStack on
//     every benchmark query (segment-level processing, §IV-B feature 1).
//  2. On the skewed Nasa data, VJ+LE scans fewer elements than TS+E for
//     the queries with skipping opportunities (§VI-A's "higher performance
//     gain ... due to a higher benefit in skipping non-solution nodes").
//  3. TwigStack's scan count is identical across E/LE/LEp (it ignores
//     pointers) while its page count grows with the pointer-bearing
//     schemes (§VI observation on TS paying for LE's size).
func TestPaperShapeCounters(t *testing.T) {
	type check struct {
		doc   *Document
		name  string
		query string
		views string
		skips bool // expect VJ+LE to scan strictly less than TS+E
	}
	ns := GenerateNasa(800)
	xm := GenerateXMark(0.2)
	checks := []check{
		{ns, "N1", "//field//footnote//para", "//field//para; //footnote", true},
		{ns, "N7", "//dataset[//field//footnote]//journal[//bibcode]//lastname",
			"//dataset//journal//lastname; //field//footnote; //bibcode", true},
		{xm, "Q14", "//site//item[//description//keyword]/name",
			"//site//item//name; //description//keyword", false},
		{xm, "Q2", "//site/open_auctions/open_auction/bidder/increase",
			"//site//increase; //open_auctions//open_auction//bidder", false},
	}
	for _, c := range checks {
		q := MustParseQuery(c.query)
		vs, err := ParseViews(c.views)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		stats := map[string]Stats{}
		matches := -1
		for _, combo := range []struct {
			key    string
			engine Engine
			scheme StorageScheme
		}{
			{"TS+E", EngineTwigStack, SchemeElement},
			{"TS+LE", EngineTwigStack, SchemeLE},
			{"TS+LEp", EngineTwigStack, SchemeLEp},
			{"VJ+E", EngineViewJoin, SchemeElement},
			{"VJ+LE", EngineViewJoin, SchemeLE},
		} {
			mv, err := c.doc.MaterializeViews(vs, combo.scheme)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			res, err := Evaluate(c.doc, q, mv, combo.engine, nil)
			if err != nil {
				t.Fatalf("%s %s: %v", c.name, combo.key, err)
			}
			stats[combo.key] = res.Stats
			if matches == -1 {
				matches = len(res.Matches)
			} else if matches != len(res.Matches) {
				t.Fatalf("%s: %s disagrees on matches", c.name, combo.key)
			}
		}

		// 1. VJ does fewer comparisons than TS (any scheme pair).
		if stats["VJ+LE"].Comparisons >= stats["TS+E"].Comparisons {
			t.Errorf("%s: VJ comparisons %d >= TS %d", c.name,
				stats["VJ+LE"].Comparisons, stats["TS+E"].Comparisons)
		}
		// 2. Skipping on skewed data.
		if c.skips && stats["VJ+LE"].ElementsScanned >= stats["TS+E"].ElementsScanned {
			t.Errorf("%s: VJ+LE scanned %d >= TS+E %d (expected pointer skipping)", c.name,
				stats["VJ+LE"].ElementsScanned, stats["TS+E"].ElementsScanned)
		}
		// 3. TS scans are scheme-independent; pages are not.
		if stats["TS+E"].ElementsScanned != stats["TS+LE"].ElementsScanned ||
			stats["TS+E"].ElementsScanned != stats["TS+LEp"].ElementsScanned {
			t.Errorf("%s: TS scans differ across schemes: %d / %d / %d", c.name,
				stats["TS+E"].ElementsScanned, stats["TS+LE"].ElementsScanned, stats["TS+LEp"].ElementsScanned)
		}
		if stats["TS+LE"].PagesRead <= stats["TS+E"].PagesRead {
			t.Errorf("%s: TS+LE pages %d <= TS+E pages %d (LE records are larger)", c.name,
				stats["TS+LE"].PagesRead, stats["TS+E"].PagesRead)
		}
	}
}
