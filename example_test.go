package viewjoin_test

import (
	"fmt"

	"viewjoin"
)

// Evaluate a twig query over a small document using the LEp scheme and the
// ViewJoin engine.
func ExampleEvaluate() {
	doc, _ := viewjoin.ParseDocumentString(
		`<lib><book><author/><chapter><section/><section/></chapter></book><book><chapter/></book></lib>`)
	query, _ := viewjoin.ParseQuery("//book[//author]//chapter//section")
	views, _ := viewjoin.ParseViews("//book//chapter; //author; //section")

	mv, _ := doc.MaterializeViews(views, viewjoin.SchemeLEp)
	res, _ := viewjoin.Evaluate(doc, query, mv, viewjoin.EngineViewJoin, nil)

	for _, m := range res.Matches {
		for i, n := range m {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%s@%d", n.Tag, n.Start)
		}
		fmt.Println()
	}
	// Output:
	// book@2 author@3 chapter@5 section@6
	// book@2 author@3 chapter@5 section@8
}

// Validate a covering view set and count its interleaving conditions.
func ExampleInterViewEdges() {
	query := viewjoin.MustParseQuery("//a//b//c//d")
	views, _ := viewjoin.ParseViews("//a//c; //b//d")
	if err := viewjoin.ValidateViewSet(query, views); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	fmt.Println("inter-view edges:", viewjoin.InterViewEdges(query, views))
	// Output:
	// inter-view edges: 3
}

// Pick a covering view set with the paper's cost-based heuristic.
func ExampleSelectViews() {
	doc, _ := viewjoin.ParseDocumentString(
		`<r><a><b><c/></b><b><c/><c/></b></a><a><b/></a></r>`)
	query := viewjoin.MustParseQuery("//a//b//c")
	pool, _ := viewjoin.ParseViews("//a//b; //c; //a; //b//c")

	var mviews []*viewjoin.MaterializedView
	for _, p := range pool {
		mv, _ := doc.MaterializeView(p, viewjoin.SchemeLE, nil)
		mviews = append(mviews, mv)
	}
	selected, _ := viewjoin.SelectViews(mviews, query, viewjoin.DefaultLambda)
	for _, v := range selected {
		fmt.Println(v.Pattern())
	}
	// Output:
	// //b//c
	// //a
}
