package viewjoin

import (
	"context"
	"strings"
	"testing"

	"viewjoin/internal/tpq"
)

func TestAnchorNode(t *testing.T) {
	cases := []struct {
		q    string
		want int
	}{
		{"//a", 0},               // no spine: the root is the anchor
		{"//a//b//c", 2},         // pure path: the leaf anchors
		{"//a[//b]//c", 0},       // branching root: spine is empty
		{"//a//b[//c]//d", 1},    // spine a→b, then b branches
		{"//a//b//c[//d]//e", 2}, // spine a→b→c
	}
	for _, tc := range cases {
		if got := anchorNode(MustParseQuery(tc.q).p.Nodes); got != tc.want {
			t.Errorf("anchorNode(%s) = %d, want %d", tc.q, got, tc.want)
		}
	}
	// A hand-built pattern whose only-child chain is not consecutive in
	// pre-order is unpartitionable.
	nodes := []tpq.Node{
		{Label: "a", Parent: -1, Children: []int{2}},
		{Label: "x", Parent: 2},
		{Label: "b", Parent: 0, Children: []int{1}},
	}
	if got := anchorNode(nodes); got != -1 {
		t.Errorf("anchorNode(non-consecutive spine) = %d, want -1", got)
	}
}

// prepareSingletons prepares a query over doc with one single-node view per
// query label in the given scheme.
func prepareSingletons(t *testing.T, d *Document, queryStr string, scheme StorageScheme, eng Engine) (*PreparedQuery, *Query) {
	t.Helper()
	q := MustParseQuery(queryStr)
	var parts []string
	for _, l := range q.Labels() {
		parts = append(parts, "//"+l)
	}
	views, err := ParseViews(strings.Join(parts, "; "))
	if err != nil {
		t.Fatal(err)
	}
	mv, err := d.MaterializeViews(views, scheme)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(d, q, mv, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p, q
}

// runBoth runs the prepared plan sequentially and with RunParallel(k),
// requiring byte-identical results, and returns the partition count the
// parallel run reported.
func runBoth(t *testing.T, p *PreparedQuery, k int) int {
	t.Helper()
	seq, err := p.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	par, err := p.RunParallel(context.Background(), k)
	if err != nil {
		t.Fatalf("RunParallel(k=%d): %v", k, err)
	}
	if !identicalMatches(par, seq) {
		t.Fatalf("RunParallel(k=%d) diverged: %d matches vs %d sequential",
			k, len(par.Matches), len(seq.Matches))
	}
	return par.Stats.Partitions
}

// TestParallelBoundaries exercises the degenerate partition shapes: they
// must all degrade to fewer (or one) partitions, never error, and never
// change the result.
func TestParallelBoundaries(t *testing.T) {
	t.Run("single-root document", func(t *testing.T) {
		d, err := ParseDocumentString(`<r/>`)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := prepareSingletons(t, d, "//r", SchemeLEp, EngineViewJoin)
		if parts := runBoth(t, p, 4); parts != 1 {
			t.Errorf("single-root doc planned %d partitions, want 1", parts)
		}
	})

	t.Run("root-only match", func(t *testing.T) {
		// The only match binds the document root: its single candidate is
		// one blob, so no cut exists.
		d, err := ParseDocumentString(`<r><a/><a/><a/></r>`)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := prepareSingletons(t, d, "//r", SchemeLEp, EngineViewJoin)
		if parts := runBoth(t, p, 4); parts != 1 {
			t.Errorf("root-only query planned %d partitions, want 1", parts)
		}
	})

	t.Run("k beyond blobs degrades", func(t *testing.T) {
		// Three anchor subtrees cannot feed 64 partitions: the planner
		// clamps instead of erroring.
		d, err := ParseDocumentString(`<r><a><b/></a><a><b/></a><a><b/></a></r>`)
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range []Engine{EngineViewJoin, EngineTwigStack, EnginePathStack} {
			p, _ := prepareSingletons(t, d, "//a//b", SchemeLEp, eng)
			parts := runBoth(t, p, 64)
			if parts < 1 || parts > 3 {
				t.Errorf("%v: k=64 over 3 blobs planned %d partitions, want 1..3", eng, parts)
			}
		}
	})

	t.Run("k exceeds GOMAXPROCS", func(t *testing.T) {
		// More partitions than workers: jobs queue on the bounded worker
		// group rather than spawning unbounded goroutines.
		d := buildJumpDoc(t, 16)
		p, _ := prepareSingletons(t, d, "//a//b", SchemeLEp, EngineViewJoin)
		if parts := runBoth(t, p, 16); parts < 2 {
			t.Errorf("planned %d partitions, want several", parts)
		}
	})
}

// buildJumpDoc builds <r> with n <a> subtrees, each holding several <b>
// elements, so //a//b anchors at b with 3n blobs and LEp pointer jump
// targets that cross any chunk boundary the planner picks.
func buildJumpDoc(t *testing.T, n int) *Document {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("<r>")
	for i := 0; i < n; i++ {
		sb.WriteString("<a><x/><b><c/></b><b/><b/></a>")
	}
	sb.WriteString("</r>")
	d, err := ParseDocumentString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestParallelChunkBoundaryInsideJumpTarget pins the pointer-clamp case:
// with chunk boundaries falling between (and inside) the a-subtrees, the
// LEp descendant/following pointers of the spine's a list address records
// outside a worker's window, and the range cursor's Seek clamp must keep
// every partition's matches exactly the sequential ones.
func TestParallelChunkBoundaryInsideJumpTarget(t *testing.T) {
	d := buildJumpDoc(t, 8)
	for _, eng := range []Engine{EngineViewJoin, EngineTwigStack, EnginePathStack} {
		for _, scheme := range []StorageScheme{SchemeElement, SchemeLE, SchemeLEp} {
			p, _ := prepareSingletons(t, d, "//a//b", scheme, eng)
			for _, k := range []int{2, 3, 5, 8} {
				parts := runBoth(t, p, k)
				if k >= 2 && parts < 2 {
					t.Errorf("%v+%v k=%d: planned %d partitions, expected a real split", eng, scheme, k, parts)
				}
			}
		}
	}
	// InterJoin over tuples, same document: //a//b is a path query.
	q := MustParseQuery("//a//b")
	views, err := ParseViews("//a; //b")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := d.MaterializeViews(views, SchemeTuple)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(d, q, mv, EngineInterJoin, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		if parts := runBoth(t, p, k); parts < 2 {
			t.Errorf("IJ k=%d: planned %d partitions, expected a real split", k, parts)
		}
	}
}
