package viewjoin

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countdownCtx is a deterministic context: Err returns nil for the first
// `fuel` calls and context.DeadlineExceeded afterwards. It lets the tests
// abort an evaluation mid-run at an exact interrupt poll without depending
// on wall-clock timing.
type countdownCtx struct {
	fuel int64
	used atomic.Int64
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.used.Add(1) > c.fuel {
		return context.DeadlineExceeded
	}
	return nil
}

// checkCanceled asserts the error shape every aborted evaluation must have:
// a *CanceledError carrying the engine and query, unwrapping to the
// context's own error.
func checkCanceled(t *testing.T, err error, eng Engine, q *Query, cause error) {
	t.Helper()
	if err == nil {
		t.Fatal("expected a cancellation error, got nil")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v (%T) is not a *CanceledError", err, err)
	}
	if ce.Engine != eng {
		t.Errorf("CanceledError.Engine = %v, want %v", ce.Engine, eng)
	}
	if ce.Query != q.String() {
		t.Errorf("CanceledError.Query = %q, want %q", ce.Query, q.String())
	}
	if !errors.Is(err, cause) {
		t.Errorf("errors.Is(%v, %v) = false, want true", err, cause)
	}
}

// TestRunContextAlreadyCanceled verifies that an expired context aborts
// every engine before any evaluation work, that the structured error
// exposes engine, query and cause, and — by re-running the same plan
// without a context — that the pooled scratch recycled through the aborted
// run carries no residue.
func TestRunContextAlreadyCanceled(t *testing.T) {
	d := GenerateXMark(0.05)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, c := range preparedCases() {
		t.Run(c.name, func(t *testing.T) {
			q, mv := materializeCase(t, d, c)
			p, err := Prepare(d, q, mv, c.eng, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.RunContext(canceled)
			if res != nil {
				t.Fatalf("aborted run returned a result with %d matches", len(res.Matches))
			}
			checkCanceled(t, err, c.eng, q, context.Canceled)
			// The plan must stay fully usable after an aborted run.
			again, err := p.RunContext(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !identicalMatches(again, want) {
				t.Fatalf("post-cancel run: %d matches, want %d — cancellation left residue in pooled scratch",
					len(again.Matches), len(want.Matches))
			}
		})
	}
}

// TestRunContextMidRun expires the context after a fixed number of
// interrupt polls, so every engine is aborted somewhere inside its main
// loop (not at the upfront check) — the cooperative checkpoints must
// propagate the error out with no partial results, and the plan must
// recover on the next run.
func TestRunContextMidRun(t *testing.T) {
	d := GenerateXMark(0.05)
	for _, c := range preparedCases() {
		t.Run(c.name, func(t *testing.T) {
			q, mv := materializeCase(t, d, c)
			p, err := Prepare(d, q, mv, c.eng, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			// fuel=2: survive the upfront check and the first engine poll,
			// then trip on the second.
			ctx := &countdownCtx{fuel: 2}
			res, err := p.RunContext(ctx)
			if res != nil {
				t.Fatalf("aborted run returned a result with %d matches", len(res.Matches))
			}
			checkCanceled(t, err, c.eng, q, context.DeadlineExceeded)
			again, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !identicalMatches(again, want) {
				t.Fatalf("post-cancel run: %d matches, want %d", len(again.Matches), len(want.Matches))
			}
		})
	}
}

// TestEvaluateContextOption verifies the one-shot path: EvalOptions.Context
// bounds Evaluate exactly as RunContext bounds a prepared run.
func TestEvaluateContextOption(t *testing.T) {
	d := GenerateXMark(0.05)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, c := range preparedCases() {
		t.Run(c.name, func(t *testing.T) {
			q, mv := materializeCase(t, d, c)
			res, err := Evaluate(d, q, mv, c.eng, &EvalOptions{Context: canceled})
			if res != nil {
				t.Fatalf("aborted Evaluate returned a result with %d matches", len(res.Matches))
			}
			checkCanceled(t, err, c.eng, q, context.Canceled)
			// Same options value with a live context must evaluate normally.
			res, err = Evaluate(d, q, mv, c.eng, &EvalOptions{Context: context.Background()})
			if err != nil {
				t.Fatal(err)
			}
			want := EvaluateDirect(d, q)
			if !sameMatches(res, want) {
				t.Fatalf("live-context Evaluate: %d matches, oracle %d", len(res.Matches), len(want.Matches))
			}
		})
	}
}

// TestEvaluateWithoutViewsContext covers the raw-stream path, which shares
// no plumbing with PreparedQuery.run.
func TestEvaluateWithoutViewsContext(t *testing.T) {
	d := GenerateXMark(0.05)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	q := MustParseQuery("//site//open_auction//bidder//increase")
	for _, eng := range []Engine{EngineTwigStack, EnginePathStack} {
		t.Run(eng.String(), func(t *testing.T) {
			res, err := EvaluateWithoutViews(d, q, eng, &EvalOptions{Context: canceled})
			if res != nil {
				t.Fatalf("aborted run returned a result with %d matches", len(res.Matches))
			}
			checkCanceled(t, err, eng, q, context.Canceled)
			ctx := &countdownCtx{fuel: 2}
			res, err = EvaluateWithoutViews(d, q, eng, &EvalOptions{Context: ctx})
			if res != nil {
				t.Fatalf("mid-run abort returned a result with %d matches", len(res.Matches))
			}
			checkCanceled(t, err, eng, q, context.DeadlineExceeded)
		})
	}
}

// starvedTimerCtx models a context whose deadline has passed but whose
// timer goroutine has not yet run — Err() still returns nil. This is the
// steady state on a single-CPU machine while an evaluation loop holds the
// processor: the interrupt hook must trip off the Deadline() clock
// comparison alone, not wait for the starved timer to flip Err().
type starvedTimerCtx struct{ dl time.Time }

func (c *starvedTimerCtx) Deadline() (time.Time, bool) { return c.dl, true }
func (c *starvedTimerCtx) Done() <-chan struct{}       { return nil }
func (c *starvedTimerCtx) Value(any) any               { return nil }
func (c *starvedTimerCtx) Err() error                  { return nil }

// TestRunContextStarvedTimer verifies deadline enforcement does not depend
// on the context's own timer firing: a context with an expired deadline and
// a perpetually-nil Err() must still abort every engine with
// context.DeadlineExceeded.
func TestRunContextStarvedTimer(t *testing.T) {
	d := GenerateXMark(0.05)
	ctx := &starvedTimerCtx{dl: time.Now().Add(-time.Hour)}
	for _, c := range preparedCases() {
		t.Run(c.name, func(t *testing.T) {
			q, mv := materializeCase(t, d, c)
			p, err := Prepare(d, q, mv, c.eng, nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.RunContext(ctx)
			if res != nil {
				t.Fatalf("aborted run returned a result with %d matches", len(res.Matches))
			}
			checkCanceled(t, err, c.eng, q, context.DeadlineExceeded)
		})
	}
}
