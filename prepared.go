package viewjoin

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/engine/interjoin"
	"viewjoin/internal/engine/pathstack"
	"viewjoin/internal/engine/twigstack"
	vjengine "viewjoin/internal/engine/viewjoin"
	"viewjoin/internal/match"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/vsq"
	"viewjoin/internal/xmltree"
)

// PreparedQuery is a query compiled once against a document, a view set
// and an engine, ready to be executed any number of times. Preparation
// performs every per-plan step of Evaluate — view-set validation,
// view-segmented query construction, list binding, inverse-position maps
// and (for InterJoin) materializing the view streams — so Run pays only
// the per-execution costs the paper's §V cost model charges: cursor
// movement over the view lists, structural joins, and enumeration.
//
// Run draws evaluator scratch state (cursors, region logs, window buffers,
// join scratch) from an internal sync.Pool and resets it in place instead
// of reallocating, so a warm Run allocates only for its output.
//
// A PreparedQuery is immutable after Prepare and safe for concurrent Run
// calls provided the captured EvalOptions.Tracer is nil (tracers are not
// required to be concurrency-safe); documents and materialized views are
// already immutable after construction. RunTraced attaches a tracer to a
// single execution instead, so concurrent traced runs of one shared plan
// are safe as long as each call brings its own tracer.
type PreparedQuery struct {
	d *Document
	// tree is the document snapshot the plan was compiled against; runs
	// read it (not the document head), so a plan stays self-consistent
	// across concurrent updates — it just answers at its own epoch.
	tree  *xmltree.Document
	epoch uint64
	q     *Query
	eng   Engine
	opts  EvalOptions

	// plan is the obs.Plan delivered to tracers. Prepare builds it eagerly
	// when it was given a tracer; otherwise planOnce builds it on the first
	// traced run (RunTraced on a plan prepared untraced, e.g. out of a
	// serving cache), keeping the untraced hot path allocation-free.
	plan     *obs.Plan
	planOnce sync.Once

	// Plan inputs retained for the lazy obs.Plan build and for footprint
	// accounting; all are immutable after Prepare.
	patterns []*tpq.Pattern
	stores   []*store.ViewStore
	v        *vsq.VSQ // VJ/TS/PS only
	viewPos  [][]int  // IJ only

	// prepC holds the costs charged during preparation (InterJoin's view
	// stream scans); the one-shot Evaluate folds them into its Stats to
	// keep historical counter totals, while Run reports per-execution
	// costs only — that amortization is the point of preparing.
	prepC counters.Counters

	vj *vjengine.Prepared
	ts *twigstack.Prepared
	ps *pathstack.Prepared
	ij *interjoin.Prepared

	// Partition-planning cache: the job list for a given parallelism and
	// the spine-order property depend only on the immutable plan, so they
	// are computed once and shared across runs — a serving plan pays the
	// anchor-span merge on its first parallel request, not on every one.
	partMu    sync.Mutex
	partPlans map[int][]engine.Restriction
	spineOrd  int8 // 0 unknown, 1 ordered, -1 not
}

// Prepare compiles q over the materialized views for the chosen engine.
// The views must form a valid minimal covering set of q, exactly as for
// Evaluate; opts (nil for defaults) is captured and applied to every Run.
//
// Prepare captures the document's current snapshot and requires every view
// to reflect exactly that snapshot: a view left behind by an Apply the
// caller did not Maintain it through fails with *EpochMismatchError
// (retryable after maintaining or re-materializing the view).
func Prepare(d *Document, q *Query, mviews []*MaterializedView, eng Engine, opts *EvalOptions) (*PreparedQuery, error) {
	if opts == nil {
		opts = &EvalOptions{}
	}
	snap := d.snap()
	patterns := make([]*tpq.Pattern, len(mviews))
	stores := make([]*store.ViewStore, len(mviews))
	for i, mv := range mviews {
		if mv.doc != d {
			return nil, fmt.Errorf("viewjoin: view %s materialized over a different document", mv.pattern)
		}
		st := mv.st()
		if st.tree != snap.tree {
			return nil, &EpochMismatchError{ViewEpoch: st.epoch, DocEpoch: snap.epoch, View: mv.pattern.String()}
		}
		patterns[i] = mv.pattern
		stores[i] = st.store
	}
	p := &PreparedQuery{d: d, tree: snap.tree, epoch: snap.epoch, q: q, eng: eng, opts: *opts, patterns: patterns, stores: stores}
	tr := opts.Tracer
	switch eng {
	case EngineViewJoin:
		v, err := buildVSQ(q, patterns, tr)
		if err != nil {
			return nil, err
		}
		p.v = v
		p.vj, err = vjengine.Prepare(snap.tree, v, stores, tr)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			p.plan = tracePlan(q.p, patterns, stores, eng, v)
		}
	case EngineTwigStack, EnginePathStack:
		v, err := buildVSQ(q, patterns, tr)
		if err != nil {
			return nil, err
		}
		p.v = v
		lists, err := bindLists(v, stores, tr)
		if err != nil {
			return nil, err
		}
		if eng == EngineTwigStack {
			p.ts = twigstack.Prepare(snap.tree, q.p, lists)
		} else if p.ps, err = pathstack.Prepare(snap.tree, q.p, lists); err != nil {
			return nil, err
		}
		if tr != nil {
			p.plan = tracePlan(q.p, patterns, stores, eng, v)
		}
	case EngineInterJoin:
		if tr != nil {
			tr.BeginPhase(obs.PhaseSegment)
		}
		viewPos := make([][]int, len(patterns))
		for i, pat := range patterns {
			m, err := tpq.QueryNodeOfView(pat, q.p)
			if err != nil {
				if tr != nil {
					tr.EndPhase(obs.PhaseSegment)
				}
				return nil, err
			}
			viewPos[i] = m
		}
		if tr != nil {
			tr.EndPhase(obs.PhaseSegment)
		}
		io := counters.NewIO(&p.prepC, opts.BufferPoolPages)
		if tr != nil {
			io.Page = pageHook(tr)
		}
		ij, err := interjoin.Prepare(snap.tree, q.p, stores, viewPos, io, tr)
		if err != nil {
			return nil, err
		}
		p.ij = ij
		p.viewPos = viewPos
		if tr != nil {
			p.plan = interJoinPlan(q.p, patterns, stores, viewPos)
		}
	default:
		return nil, fmt.Errorf("viewjoin: unknown engine %v", eng)
	}
	return p, nil
}

// Query returns the prepared query.
func (p *PreparedQuery) Query() *Query { return p.q }

// Engine returns the engine the plan was compiled for.
func (p *PreparedQuery) Engine() Engine { return p.eng }

// Epoch returns the document epoch the plan was compiled at. Runs answer
// at this epoch regardless of later updates; a serving layer compares it
// against Document.Epoch to decide whether the plan is current.
func (p *PreparedQuery) Epoch() uint64 { return p.epoch }

// FootprintBytes estimates the bytes a cached PreparedQuery keeps resident
// beyond the shared document and materialized views: the engine's prepared
// state (for InterJoin, the materialized view streams — the dominant term)
// plus the retained plan inputs. It is an arithmetic estimate for cache
// accounting, not a precise heap measurement.
func (p *PreparedQuery) FootprintBytes() int64 {
	var f int64
	switch p.eng {
	case EngineViewJoin:
		f = p.vj.Footprint()
	case EngineTwigStack:
		f = p.ts.Footprint()
	case EnginePathStack:
		f = p.ps.Footprint()
	case EngineInterJoin:
		f = p.ij.Footprint()
		for _, m := range p.viewPos {
			f += 24 + int64(len(m))*8
		}
	}
	// Retained plan-input references and the PreparedQuery shell itself.
	f += int64(len(p.patterns)+len(p.stores))*8 + 256
	return f
}

// limits is the resolved pagination state of one execution: the public
// Limit/Offset/After knobs normalized for the engine layer.
type limits struct {
	limit  int
	offset int
	after  []int32
}

// first is the engine-level output quota: the run may stop after
// offset+limit matches (counted after the cursor filter), because the
// requested page is fully determined by that prefix. 0 (no limit) leaves
// the run unbounded — an offset alone must still enumerate everything
// after the skipped prefix.
func (l limits) first() int {
	if l.limit <= 0 {
		return 0
	}
	return l.offset + l.limit
}

// slice reduces an engine's (already bounded, cursor-filtered) document-
// order output to the requested page.
func (l limits) slice(ms match.Set) match.Set {
	if l.offset > 0 {
		if l.offset >= len(ms) {
			ms = ms[:0]
		} else {
			ms = ms[l.offset:]
		}
	}
	if l.limit > 0 && len(ms) > l.limit {
		ms = ms[:l.limit]
	}
	return ms
}

// limits resolves the prepare-time Limit/Offset options.
func (p *PreparedQuery) limits() limits {
	return limits{limit: p.opts.Limit, offset: p.opts.Offset}
}

// Run executes the prepared plan once and returns a fresh Result. Stats
// cover this execution only — preparation costs (for InterJoin, the view
// stream scans) were paid at Prepare time and are not re-charged; see
// Evaluate for the historical one-shot accounting. A context captured in
// the prepare-time EvalOptions bounds the run; RunContext supplies a
// per-request context instead.
func (p *PreparedQuery) Run() (*Result, error) {
	return p.run(p.opts.Context, p.limits(), nil, time.Now(), false, p.opts.Tracer)
}

// RunContext is Run bounded by ctx: cancellation or deadline expiry aborts
// the engine at its next cooperative checkpoint and returns a
// *CanceledError (no partial results, and the pooled evaluator scratch is
// recycled normally). ctx overrides any context captured at Prepare time;
// a nil ctx runs uninterruptible. This is the serving entry point: one
// immutable PreparedQuery, many concurrent requests, each with its own
// deadline.
func (p *PreparedQuery) RunContext(ctx context.Context) (*Result, error) {
	return p.run(ctx, p.limits(), nil, time.Now(), false, p.opts.Tracer)
}

// StreamOptions selects a page of the result for RunPage and RunStream,
// overriding any prepare-time Limit/Offset for that one execution.
type StreamOptions struct {
	// Limit bounds the page to Limit matches; 0 means unbounded.
	Limit int
	// Offset skips the first Offset matches in document order (after the
	// After cursor filter, when both are set).
	Offset int
	// After, when non-nil, resumes strictly after a previous match: one
	// start label per query node (Node.Start of the previous page's last
	// row, in binding order), compared lexicographically — i.e. document
	// order. Unlike an offset, a cursor lets the streaming engines seek:
	// whole enumeration windows ending before the cursor are skipped
	// without being re-enumerated.
	After []int32
	// Parallelism requests a range-partitioned parallel run, as
	// EvalOptions.Parallelism; 0 inherits the prepare-time setting.
	Parallelism int
}

// streamLimits resolves per-call stream options against the prepare-time
// defaults.
func (p *PreparedQuery) streamLimits(so *StreamOptions) (limits, int) {
	if so == nil {
		return p.limits(), p.parallelism()
	}
	lim := limits{limit: so.Limit, offset: so.Offset, after: so.After}
	k := so.Parallelism
	if k == 0 {
		k = p.opts.Parallelism
	}
	if k < 0 {
		k = runtime.GOMAXPROCS(0)
	}
	return lim, k
}

// RunPage executes the prepared plan once and returns the page of the
// result selected by so: the first so.Limit matches in document order
// after skipping so.Offset of them, resuming strictly after the so.After
// cursor when set. The page bound is pushed into the engines (see
// EvalOptions.Limit), so peak result memory is O(Limit + open enumeration
// windows) rather than O(total matches), and the streaming engines stop
// scanning as soon as the page is determined. ctx bounds the run as in
// RunContext. Safe for concurrent use under the same conditions as Run.
func (p *PreparedQuery) RunPage(ctx context.Context, so *StreamOptions) (*Result, error) {
	return p.RunPageTraced(ctx, so, p.opts.Tracer)
}

// RunPageTraced is RunPage with tr observing this single execution,
// overriding any prepare-time Tracer — the paged analogue of RunTraced,
// and like it safe for concurrent calls on one shared plan as long as
// every call brings its own tracer. A nil tr runs untraced.
func (p *PreparedQuery) RunPageTraced(ctx context.Context, so *StreamOptions, tr obs.Tracer) (*Result, error) {
	lim, k := p.streamLimits(so)
	if k > 1 {
		return p.runParallel(ctx, k, lim, time.Now(), false, tr)
	}
	return p.run(ctx, lim, nil, time.Now(), false, tr)
}

// RunStream executes the prepared plan once, delivering each match of the
// selected page to yield as it is produced instead of materializing the
// result. The row slice is reused between calls — yield must copy any
// bindings it keeps. Returning false from yield stops the run early (the
// engines unwind at their next checkpoint and the call still returns a
// nil error). The returned Result carries Stats only; Matches is empty.
//
// The streaming engines (ViewJoin, TwigStack) deliver incrementally in
// document order, so the first row arrives while the scan is still in
// flight (see Stats.FirstMatchNanos) — sequentially, and also under a
// partitioned bounded run when cross-job order follows job index
// (spineOrdered): partition workers then stream into a document-order
// merge that yields job 0's rows while later partitions are still
// scanning. The sort-before-output engines (PathStack, InterJoin) and
// the remaining partitioned shapes cannot deliver before ordering is
// established; they evaluate the bounded page first and then replay it
// through yield.
func (p *PreparedQuery) RunStream(ctx context.Context, so *StreamOptions, yield func(row []Node) bool) (*Result, error) {
	lim, k := p.streamLimits(so)
	streamEng := p.eng == EngineViewJoin || p.eng == EngineTwigStack
	if k > 1 && streamEng && lim.first() > 0 {
		start := time.Now() // planning is part of the run, as in runParallel
		if jobs := p.planPartitions(k); len(jobs) > 1 && p.spineOrdered() {
			return p.runParallelStream(ctx, jobs, lim, start, yield)
		}
		// Unpartitionable or unordered across jobs: the parallel
		// materialize-and-replay path below still applies the page bound.
	}
	if k > 1 || !streamEng {
		var res *Result
		var err error
		if k > 1 {
			res, err = p.runParallel(ctx, k, lim, time.Now(), false, p.opts.Tracer)
		} else {
			res, err = p.run(ctx, lim, nil, time.Now(), false, p.opts.Tracer)
		}
		if err != nil {
			return nil, err
		}
		for _, row := range res.Matches {
			if !yield(row) {
				break
			}
		}
		res.Matches = nil
		return res, nil
	}
	// True streaming: the collector hands each match to emit in document
	// order; skip the offset prefix here (it still counts against the
	// engine quota, which is offset+limit) and stop the run when yield
	// declines.
	skip := lim.offset
	row := make([]Node, p.q.p.Size())
	emit := func(m match.Match) bool {
		if skip > 0 {
			skip--
			return true
		}
		for j, id := range m {
			n := p.tree.Node(id)
			row[j] = Node{Tag: p.tree.TypeName(n.Type), Start: n.Start, End: n.End, Level: n.Level}
		}
		return yield(row)
	}
	return p.run(ctx, lim, emit, time.Now(), false, p.opts.Tracer)
}

// RunTraced executes the prepared plan once with tr observing this single
// execution, overriding any prepare-time Tracer. k > 1 requests a
// range-partitioned parallel run across up to k workers (as RunParallel);
// k <= 1 keeps the sequential path. Because the tracer travels with the
// call rather than the plan, concurrent RunTraced calls on one shared
// PreparedQuery are safe provided every call supplies its own tracer —
// this is how a serving layer records full traces of requests running
// cached (untraced) plans. A nil tr runs untraced, identically to
// RunContext/RunParallel.
func (p *PreparedQuery) RunTraced(ctx context.Context, k int, tr obs.Tracer) (*Result, error) {
	if k > 1 {
		return p.runParallel(ctx, k, p.limits(), time.Now(), false, tr)
	}
	return p.run(ctx, p.limits(), nil, time.Now(), false, tr)
}

// pageHook adapts buffer-pool lookups into tracer page events.
func pageHook(tr obs.Tracer) func(miss bool) {
	return func(miss bool) {
		if miss {
			tr.Event(obs.EvPageMiss, -1, 1)
		} else {
			tr.Event(obs.EvPageHit, -1, 1)
		}
	}
}

// lazyPlan returns the obs.Plan for tracer delivery, building it on first
// use when Prepare ran untraced. The build is pure (it only walks the
// retained patterns, stores and segmentation), so sync.Once makes the
// result safe to share across concurrent traced runs.
func (p *PreparedQuery) lazyPlan() *obs.Plan {
	p.planOnce.Do(func() {
		if p.plan != nil {
			return // built eagerly by a traced Prepare
		}
		if p.eng == EngineInterJoin {
			p.plan = interJoinPlan(p.q.p, p.patterns, p.stores, p.viewPos)
		} else {
			p.plan = tracePlan(p.q.p, p.patterns, p.stores, p.eng, p.v)
		}
	})
	return p.plan
}

// run executes the prepared plan, timing from start (which a one-shot
// Evaluate sets before preparation so Duration keeps covering the whole
// call). includePrep folds preparation-time counters into the Stats. A
// non-nil ctx installs a cooperative interrupt hook in the engine options;
// the hook wraps the context error in a *CanceledError so callers see
// which query and engine were aborted. tr observes this execution only —
// the Run/RunContext entry points pass the prepare-time Tracer, RunTraced
// a per-call one.
func (p *PreparedQuery) run(ctx context.Context, lim limits, emit func(match.Match) bool,
	start time.Time, includePrep bool, tr obs.Tracer) (*Result, error) {
	var interrupt func() error
	if ctx != nil {
		interrupt = contextInterrupt(ctx, p.eng, p.q.String())
		// Check upfront so an already-expired deadline aborts before any
		// engine work, independent of the engines' check strides.
		if err := interrupt(); err != nil {
			return nil, err
		}
	}
	var c counters.Counters
	if includePrep {
		c.Add(p.prepC)
	}
	io := counters.NewIO(&c, p.opts.BufferPoolPages)
	io.SetStall(p.opts.IOLatency)
	if tr != nil {
		io.Page = pageHook(tr)
		if pl := p.lazyPlan(); pl != nil {
			tr.Plan(pl)
		}
		tr.BeginPhase(obs.PhaseEvaluate)
	}
	eopts := engine.Options{
		Tracer:         tr,
		DiskBased:      p.opts.DiskBased,
		PageSize:       p.opts.PageSize,
		UnguardedJumps: p.opts.UnguardedJumps,
		Interrupt:      interrupt,
		Emit:           emit,
		First:          lim.first(),
		After:          lim.after,
	}
	var (
		ms      match.Set
		peak    int64
		evalErr error
	)
	switch p.eng {
	case EngineViewJoin:
		var st vjengine.Stats
		ms, st, evalErr = p.vj.Run(io, eopts)
		peak = int64(st.PeakWindowEntries) * 16
	case EngineTwigStack:
		var st twigstack.Stats
		ms, st, evalErr = p.ts.Run(io, eopts)
		peak = int64(st.PeakWindowEntries) * 16
	case EnginePathStack:
		ms, evalErr = p.ps.Run(io, eopts)
	case EngineInterJoin:
		ms, evalErr = p.ij.Run(io, eopts)
	}
	io.DrainStall()
	if tr != nil {
		tr.EndPhase(obs.PhaseEvaluate)
	}
	if evalErr != nil {
		return nil, evalErr
	}
	return p.buildResult(lim.slice(ms), c, peak, 1, start, io.FirstMatchTime(), tr), nil
}

// buildResult renders an engine's match set into the public Result,
// stamping the run's counters into Stats and resolving node bindings
// (shared by the sequential and partitioned paths).
func (p *PreparedQuery) buildResult(ms match.Set, c counters.Counters, peak int64, partitions int,
	start time.Time, firstMatch time.Time, tr obs.Tracer) *Result {
	var firstNanos int64
	if !firstMatch.IsZero() {
		firstNanos = firstMatch.Sub(start).Nanoseconds()
	}
	res := &Result{
		Matches: make([][]Node, len(ms)),
		Stats: Stats{
			ElementsScanned: c.ElementsScanned,
			Comparisons:     c.Comparisons,
			PointerDerefs:   c.PointerDerefs,
			PagesRead:       c.PagesRead,
			PagesWritten:    c.PagesWritten,
			PageHits:        c.PageHits,
			JumpsTaken:      c.JumpsTaken,
			JumpsRefused:    c.JumpsRefused,
			PeakMemoryBytes: peak,
			Duration:        time.Since(start),
			FirstMatchNanos: firstNanos,
			Partitions:      partitions,
		},
	}
	if tr != nil {
		tr.BeginPhase(obs.PhaseOutput)
	}
	for i, m := range ms {
		row := make([]Node, len(m))
		for j, id := range m {
			n := p.tree.Node(id)
			row[j] = Node{Tag: p.tree.TypeName(n.Type), Start: n.Start, End: n.End, Level: n.Level}
		}
		res.Matches[i] = row
	}
	if tr != nil {
		tr.EndPhase(obs.PhaseOutput)
	}
	if rec, ok := tr.(*obs.Recorder); ok {
		res.Trace = rec.Report(c, time.Since(start))
		res.Trace.FirstMatchNanos = firstNanos
	}
	return res
}

// BatchResult is the outcome of one query in an EvaluateBatch call.
type BatchResult struct {
	Result *Result
	Err    error
}

// EvaluateBatch executes prepared queries across a bounded worker pool and
// returns the per-query outcomes in input order. parallel bounds the
// number of concurrent executions; <= 0 uses GOMAXPROCS. The same
// PreparedQuery may appear (or be run) multiple times — concurrent Run
// calls are safe as long as every query was prepared with a nil Tracer.
func EvaluateBatch(queries []*PreparedQuery, parallel int) []BatchResult {
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(queries) {
		parallel = len(queries)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				r, err := queries[i].Run()
				out[i] = BatchResult{Result: r, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// parallelFor runs work(0..n-1) across a worker pool bounded by GOMAXPROCS
// (sequentially for n <= 1). Workers pull indices from a shared counter,
// so output determinism is the caller's: write only to slot i.
func parallelFor(n int, work func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				work(i)
			}
		}()
	}
	wg.Wait()
}

// buildVSQ wraps vsq.Build in the segment phase span.
func buildVSQ(q *Query, patterns []*tpq.Pattern, tr obs.Tracer) (*vsq.VSQ, error) {
	if tr != nil {
		tr.BeginPhase(obs.PhaseSegment)
		defer tr.EndPhase(obs.PhaseSegment)
	}
	return vsq.Build(q.p, patterns)
}

// bindLists wraps engine.BindLists in the bind phase span (for the engines
// that bind here rather than inside their Prepare).
func bindLists(v *vsq.VSQ, stores []*store.ViewStore, tr obs.Tracer) ([]*store.ListFile, error) {
	if tr != nil {
		tr.BeginPhase(obs.PhaseBind)
		defer tr.EndPhase(obs.PhaseBind)
	}
	return engine.BindLists(v, stores)
}
