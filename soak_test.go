package viewjoin

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/workload"
)

// soakKs is the parallelism grid every metamorphic check runs under: the
// sequential degenerate case, small Ks that stress chunk boundaries, and
// the machine's own width.
func soakKs() []int {
	ks := []int{1, 2, 3}
	if n := runtime.NumCPU(); n > 3 {
		ks = append(ks, n)
	}
	return ks
}

// checkParallelEquivalence asserts the partitioned path reproduces the
// sequential result byte for byte — same matches, same order, same node
// fields — for every K in the soak grid.
func checkParallelEquivalence(t *testing.T, label string, p *PreparedQuery, seq *Result) {
	t.Helper()
	for _, k := range soakKs() {
		par, err := p.RunParallel(context.Background(), k)
		if err != nil {
			t.Fatalf("%s: RunParallel(K=%d): %v", label, k, err)
		}
		if !identicalMatches(par, seq) {
			t.Fatalf("%s: RunParallel(K=%d) diverges from Run: %d vs %d matches",
				label, k, len(par.Matches), len(seq.Matches))
		}
		if par.Stats.Partitions < 1 {
			t.Fatalf("%s: RunParallel(K=%d) reported %d partitions", label, k, par.Stats.Partitions)
		}
	}
}

// checkPagedEquivalence asserts the bounded entry points (RunPage and
// RunStream, sequential and partitioned) reproduce document-order slices
// of the sequential result under every K in the soak grid: a leading
// page, an interior page, and a page straddling the end of the result.
func checkPagedEquivalence(t *testing.T, label string, p *PreparedQuery, seq *Result) {
	t.Helper()
	n := len(seq.Matches)
	tail := n - 2
	if tail < 0 {
		tail = 0
	}
	pages := [][2]int{{3, 0}, {5, n / 2}, {4, tail}}
	for _, pg := range pages {
		checkPages(t, label, p, seq, pg[0], pg[1], soakKs())
	}
}

// soakCase is one engine/scheme pairing of the workload soak; together the
// four cover every engine and every storage scheme.
type soakCase struct {
	eng    Engine
	scheme StorageScheme
	path   bool // engine only handles path queries
}

func soakCases() []soakCase {
	return []soakCase{
		{EngineViewJoin, SchemeLEp, false},
		{EngineTwigStack, SchemeLE, false},
		{EnginePathStack, SchemeElement, true},
		{EngineInterJoin, SchemeTuple, true},
	}
}

// TestParallelWorkloadEquivalence is the workload half of the metamorphic
// soak: every §VI benchmark query on xmark and nasa, on all four engines,
// must produce byte-identical results from RunParallel and sequential Run
// for K ∈ {1, 2, 3, NumCPU} — and the sequential result must agree with
// the brute-force oracle, anchoring both sides of the equivalence.
func TestParallelWorkloadEquivalence(t *testing.T) {
	type job struct {
		doc     *Document
		queries []workload.Query
	}
	jobs := []job{
		{GenerateXMark(0.05), append(workload.XMarkPath(), workload.XMarkTwig()...)},
		{GenerateNasa(200), append(workload.NasaPath(), workload.NasaTwig()...)},
	}
	for _, job := range jobs {
		for _, wq := range job.queries {
			q := &Query{wq.Pattern}
			want := EvaluateDirect(job.doc, q)
			views := make([]*Query, len(wq.Views))
			for i, v := range wq.Views {
				views[i] = &Query{v}
			}
			for _, c := range soakCases() {
				if c.path && !wq.Path {
					continue
				}
				label := fmt.Sprintf("%s/%v+%v", wq.Name, c.eng, c.scheme)
				mv, err := job.doc.MaterializeViews(views, c.scheme)
				if err != nil {
					t.Fatalf("%s: materialize: %v", label, err)
				}
				p, err := Prepare(job.doc, q, mv, c.eng, nil)
				if err != nil {
					t.Fatalf("%s: prepare: %v", label, err)
				}
				seq, err := p.Run()
				if err != nil {
					t.Fatalf("%s: run: %v", label, err)
				}
				if !sameMatches(seq, want) {
					t.Fatalf("%s: sequential run disagrees with oracle: %d vs %d matches",
						label, len(seq.Matches), len(want.Matches))
				}
				checkParallelEquivalence(t, label, p, seq)
				checkPagedEquivalence(t, label, p, seq)
			}
		}
	}
}

// TestParallelGeneratedSoak is the generated half of the soak: seeded
// random documents with stated shape bounds, random TPQs, and random
// covering view partitions, checked against the oracle sequentially and
// against the sequential result under every K. Small documents make every
// partition-plan shape reachable — single top-level subtree, doc-root
// matches, empty chunks, K larger than the subtree count.
func TestParallelGeneratedSoak(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 10
	}
	rng := rand.New(rand.NewSource(5))
	shapes := []testutil.DocShape{
		{MaxNodes: 30, MaxDepth: 4, MaxFanout: 2},  // deep and narrow
		{MaxNodes: 80, MaxDepth: 3, MaxFanout: 40}, // shallow and wide
		{MaxNodes: 150, MaxDepth: 10},              // default mix
	}
	for it := 0; it < iterations; it++ {
		doc := newDocument(testutil.RandomDocShaped(rng, shapes[it%len(shapes)], nil))
		pat := testutil.RandomPattern(rng, 4, nil)
		q := &Query{pat}
		want := EvaluateDirect(doc, q)
		partitions := [][]*tpq.Pattern{
			testutil.RandomViewPartition(rng, pat),
			testutil.WholeQueryView(pat),
		}
		for pi, part := range partitions {
			views := make([]*Query, len(part))
			for i, vp := range part {
				views[i] = &Query{vp}
			}
			for _, c := range soakCases() {
				if c.path && !q.IsPath() {
					continue
				}
				label := fmt.Sprintf("it=%d part=%d %v+%v q=%s", it, pi, c.eng, c.scheme, q)
				mv, err := doc.MaterializeViews(views, c.scheme)
				if err != nil {
					t.Fatalf("%s: materialize: %v", label, err)
				}
				p, err := Prepare(doc, q, mv, c.eng, nil)
				if err != nil {
					t.Fatalf("%s: prepare: %v", label, err)
				}
				seq, err := p.Run()
				if err != nil {
					t.Fatalf("%s: run: %v", label, err)
				}
				if !sameMatches(seq, want) {
					t.Fatalf("%s: sequential run disagrees with oracle: %d vs %d matches",
						label, len(seq.Matches), len(want.Matches))
				}
				checkParallelEquivalence(t, label, p, seq)
				checkPagedEquivalence(t, label, p, seq)
			}
		}
	}
}
