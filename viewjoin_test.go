package viewjoin

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

const sampleXML = `<r>
  <a><b><c/><e/></b><e/></a>
  <a><f/><b><c/><c/><e/></b><e/></a>
</r>`

func sampleDoc(t testing.TB) *Document {
	t.Helper()
	d, err := ParseDocumentString(sampleXML)
	if err != nil {
		t.Fatalf("ParseDocumentString: %v", err)
	}
	return d
}

func TestParseDocumentAndWrite(t *testing.T) {
	d := sampleDoc(t)
	if d.NumNodes() != 13 {
		t.Fatalf("NumNodes = %d, want 13", d.NumNodes())
	}
	var sb strings.Builder
	if err := d.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDocumentString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumNodes() != d.NumNodes() {
		t.Fatalf("round trip lost nodes")
	}
	if _, err := ParseDocumentString("<a><b></a>"); err == nil {
		t.Errorf("malformed XML: expected error")
	}
	if _, err := ParseDocument(strings.NewReader("")); err == nil {
		t.Errorf("empty input: expected error")
	}
}

func TestQueryAPI(t *testing.T) {
	q, err := ParseQuery("//a[//f]//b//e")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != 4 || q.IsPath() {
		t.Fatalf("unexpected query shape: %d nodes, path=%v", q.NumNodes(), q.IsPath())
	}
	labels := q.Labels()
	want := []string{"a", "f", "b", "e"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", labels, want)
		}
	}
	if _, err := ParseQuery("//a//a"); err == nil {
		t.Errorf("duplicate labels: expected error")
	}
	if MustParseQuery("//a").String() != "//a" {
		t.Errorf("String round trip failed")
	}
}

func TestEvaluateAllEnginesAgree(t *testing.T) {
	d := sampleDoc(t)
	q := MustParseQuery("//a[//f]//b//e")
	vs, err := ParseViews("//a//e; //b; //f")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateViewSet(q, vs); err != nil {
		t.Fatal(err)
	}
	want := EvaluateDirect(d, q)
	if len(want.Matches) == 0 {
		t.Fatalf("fixture has no matches")
	}
	for _, scheme := range []StorageScheme{SchemeElement, SchemeLE, SchemeLEp} {
		mv, err := d.MaterializeViews(vs, scheme)
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range []Engine{EngineViewJoin, EngineTwigStack} {
			res, err := Evaluate(d, q, mv, eng, nil)
			if err != nil {
				t.Fatalf("%v+%v: %v", eng, scheme, err)
			}
			if !sameMatches(res, want) {
				t.Errorf("%v+%v: %d matches, want %d", eng, scheme, len(res.Matches), len(want.Matches))
			}
		}
	}
}

func TestEvaluatePathEngines(t *testing.T) {
	d := sampleDoc(t)
	q := MustParseQuery("//a//b//c")
	vs, _ := ParseViews("//a//c; //b")
	want := EvaluateDirect(d, q)

	mv, err := d.MaterializeViews(vs, SchemeElement)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(d, q, mv, EnginePathStack, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatches(res, want) {
		t.Errorf("PathStack: %d matches, want %d", len(res.Matches), len(want.Matches))
	}

	tv, err := d.MaterializeViews(vs, SchemeTuple)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Evaluate(d, q, tv, EngineInterJoin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatches(res, want) {
		t.Errorf("InterJoin: %d matches, want %d", len(res.Matches), len(want.Matches))
	}
}

func TestEvaluateErrors(t *testing.T) {
	d := sampleDoc(t)
	q := MustParseQuery("//a//b")
	vs, _ := ParseViews("//a; //b")
	mv, _ := d.MaterializeViews(vs, SchemeElement)

	// Tuple engine on element views.
	if _, err := Evaluate(d, q, mv, EngineInterJoin, nil); err == nil {
		t.Errorf("InterJoin over element views: expected error")
	}
	// Element engine on tuple views.
	tv, _ := d.MaterializeViews(vs, SchemeTuple)
	if _, err := Evaluate(d, q, tv, EngineViewJoin, nil); err == nil {
		t.Errorf("ViewJoin over tuple views: expected error")
	}
	// Views from a different document.
	d2 := sampleDoc(t)
	mv2, _ := d2.MaterializeViews(vs, SchemeElement)
	if _, err := Evaluate(d, q, mv2, EngineViewJoin, nil); err == nil {
		t.Errorf("cross-document views: expected error")
	}
	// Non-covering view set.
	half, _ := ParseViews("//a")
	mh, _ := d.MaterializeViews(half, SchemeElement)
	if _, err := Evaluate(d, q, mh, EngineViewJoin, nil); err == nil {
		t.Errorf("non-covering views: expected error")
	}
	// Unknown engine.
	if _, err := Evaluate(d, q, mv, Engine(99), nil); err == nil {
		t.Errorf("unknown engine: expected error")
	}
}

func TestStatsPopulated(t *testing.T) {
	d := GenerateXMark(0.02)
	q := MustParseQuery("//site//item//text//keyword")
	vs, _ := ParseViews("//site//keyword; //item//text")
	mv, err := d.MaterializeViews(vs, SchemeLE)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(d, q, mv, EngineViewJoin, &EvalOptions{BufferPoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ElementsScanned == 0 || res.Stats.PagesRead == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("duration not measured")
	}
	resD, err := Evaluate(d, q, mv, EngineViewJoin, &EvalOptions{DiskBased: true})
	if err != nil {
		t.Fatal(err)
	}
	if resD.Stats.PagesWritten == 0 {
		t.Errorf("disk-based run wrote no pages")
	}
	if len(resD.Matches) != len(res.Matches) {
		t.Errorf("disk-based result differs: %d vs %d", len(resD.Matches), len(res.Matches))
	}
}

func TestMaterializedViewIntrospection(t *testing.T) {
	d := sampleDoc(t)
	v, _ := ParseQuery("//a//e")
	le, err := d.MaterializeView(v, SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := d.MaterializeView(v, SchemeElement, nil)
	tp, _ := d.MaterializeView(v, SchemeTuple, &MaterializeOptions{PageSize: 128})

	if le.Scheme() != SchemeLE || e.Scheme() != SchemeElement || tp.Scheme() != SchemeTuple {
		t.Errorf("schemes wrong: %v %v %v", le.Scheme(), e.Scheme(), tp.Scheme())
	}
	if le.NumPointers() == 0 || e.NumPointers() != 0 {
		t.Errorf("pointer counts wrong: LE=%d E=%d", le.NumPointers(), e.NumPointers())
	}
	if le.Pattern().String() != "//a//e" {
		t.Errorf("Pattern = %s", le.Pattern())
	}
	sizes := le.ListSizes()
	if len(sizes) != 2 || sizes[0] == 0 || sizes[1] == 0 {
		t.Errorf("ListSizes = %v", sizes)
	}
	if le.SizeBytes() == 0 || tp.NumEntries() == 0 {
		t.Errorf("size introspection empty")
	}
}

func TestSelectViewsFacade(t *testing.T) {
	d := GenerateNasa(100)
	q := MustParseQuery("//dataset//tableHead[//tableLink//title]//field//definition//para")
	poolPatterns, _ := ParseViews(
		"//dataset//definition; //dataset//tableHead; //field//para; //definition; //tableLink//title; //field//definition//para")
	var pool []*MaterializedView
	for _, p := range poolPatterns {
		mv, err := d.MaterializeView(p, SchemeLE, nil)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, mv)
	}
	sel, err := SelectViews(pool, q, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(sel))
	for i, v := range sel {
		got[i] = v.Pattern().String()
	}
	sort.Strings(got)
	want := []string{"//dataset//tableHead", "//field//definition//para", "//tableLink//title"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("SelectViews = %v, want %v (Example 5.1)", got, want)
	}

	bySize, err := SelectViewsBySize(pool, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(bySize) != 4 {
		t.Errorf("size-based selection has %d views, want 4 (Example 5.1)", len(bySize))
	}

	// Evaluate with the selected set end to end.
	res, err := Evaluate(d, q, sel, EngineViewJoin, nil)
	if err != nil {
		t.Fatal(err)
	}
	want2 := EvaluateDirect(d, q)
	if !sameMatches(res, want2) {
		t.Errorf("selected views give %d matches, want %d", len(res.Matches), len(want2.Matches))
	}

	// A pool that cannot cover.
	if _, err := SelectViews(pool[:1], q, DefaultLambda); err == nil {
		t.Errorf("uncoverable pool: expected error")
	}
}

func TestInterViewEdgesFacade(t *testing.T) {
	q := MustParseQuery("//dataset//tableHead//field//definition//footnote//para")
	vs, _ := ParseViews("//dataset//field//footnote; //tableHead//definition//para")
	if got := InterViewEdges(q, vs); got != 5 {
		t.Errorf("InterViewEdges = %d, want 5 (Table III PV1)", got)
	}
}

func TestGenerators(t *testing.T) {
	if d := GenerateXMark(0.01); d.NumNodes() == 0 {
		t.Errorf("empty xmark doc")
	}
	if d := GenerateNasa(0); d.NumNodes() == 0 {
		t.Errorf("empty nasa doc")
	}
}

// TestFacadeProperty runs the whole public pipeline on random inputs and
// cross-checks engines against the direct evaluator.
func TestFacadeProperty(t *testing.T) {
	queries := []string{"//a//b", "//a/b[//c]//e", "//a[//f]//b//e", "//b//c", "//a//e"}
	viewsets := []string{"", "//a; //b; //c; //e; //f"}
	_ = viewsets
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := ParseDocumentString(randomXML(rng))
		if err != nil {
			return false
		}
		q := MustParseQuery(queries[rng.Intn(len(queries))])
		// Singleton covering set from the query's own labels.
		var parts []string
		for _, l := range q.Labels() {
			parts = append(parts, "//"+l)
		}
		vs, err := ParseViews(strings.Join(parts, ";"))
		if err != nil {
			return false
		}
		scheme := []StorageScheme{SchemeElement, SchemeLE, SchemeLEp}[rng.Intn(3)]
		mv, err := d.MaterializeViews(vs, scheme)
		if err != nil {
			t.Logf("materialize: %v", err)
			return false
		}
		want := EvaluateDirect(d, q)
		for _, eng := range []Engine{EngineViewJoin, EngineTwigStack} {
			res, err := Evaluate(d, q, mv, eng, nil)
			if err != nil {
				t.Logf("%v: %v", eng, err)
				return false
			}
			if !sameMatches(res, want) {
				t.Logf("seed %d %v+%v: %d vs %d", seed, eng, scheme, len(res.Matches), len(want.Matches))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomXML(rng *rand.Rand) string {
	labels := []string{"a", "b", "c", "e", "f"}
	var sb strings.Builder
	sb.WriteString("<r>")
	var rec func(depth, budget int) int
	rec = func(depth, budget int) int {
		used := 0
		for budget-used > 0 && rng.Intn(3) != 0 && depth < 8 {
			l := labels[rng.Intn(len(labels))]
			sb.WriteString("<" + l + ">")
			used++
			used += rec(depth+1, budget-used)
			sb.WriteString("</" + l + ">")
		}
		return used
	}
	rec(0, 60)
	sb.WriteString("</r>")
	return sb.String()
}

// sameMatches compares result match sets ignoring order.
func sameMatches(a, b *Result) bool {
	if len(a.Matches) != len(b.Matches) {
		return false
	}
	key := func(row []Node) string {
		parts := make([]string, len(row))
		for i, n := range row {
			parts[i] = fmt.Sprintf("%s:%d", n.Tag, n.Start)
		}
		return strings.Join(parts, "|")
	}
	seen := make(map[string]int)
	for _, r := range a.Matches {
		seen[key(r)]++
	}
	for _, r := range b.Matches {
		seen[key(r)]--
	}
	for _, v := range seen {
		if v != 0 {
			return false
		}
	}
	return true
}

func TestViewCostFacade(t *testing.T) {
	d := sampleDoc(t)
	q := MustParseQuery("//a//b//c")
	mv, err := d.MaterializeView(MustParseQuery("//a//c"), SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	cost, err := ViewCost(mv, q, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Errorf("cost = %v, want > 0 (both a and c have uncovered edges)", cost)
	}
	// λ=0 gives pure I/O: the sum of the list sizes.
	io, err := ViewCost(mv, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	sizes := mv.ListSizes()
	if int(io) != sizes[0]+sizes[1] {
		t.Errorf("λ=0 cost = %v, want %d", io, sizes[0]+sizes[1])
	}
	// A non-subpattern view cannot answer the query.
	bad, err := d.MaterializeView(MustParseQuery("//c//a"), SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ViewCost(bad, q, 1); err == nil {
		t.Errorf("non-subpattern: expected error")
	}
}

func TestEngineAndSchemeStrings(t *testing.T) {
	names := map[string]string{
		EngineViewJoin.String():  "VJ",
		EngineTwigStack.String(): "TS",
		EnginePathStack.String(): "PS",
		EngineInterJoin.String(): "IJ",
		SchemeTuple.String():     "T",
		SchemeElement.String():   "E",
		SchemeLE.String():        "LE",
		SchemeLEp.String():       "LEp",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if Engine(99).String() == "" {
		t.Errorf("unknown engine must still render")
	}
}
