package viewjoin

import (
	"sync"
	"testing"
)

// identicalMatches compares results exactly — same rows, in the same order,
// with the same node fields. Reusing a prepared plan must reproduce the
// one-shot evaluation bit for bit, not merely as a set.
func identicalMatches(a, b *Result) bool {
	if len(a.Matches) != len(b.Matches) {
		return false
	}
	for i := range a.Matches {
		if len(a.Matches[i]) != len(b.Matches[i]) {
			return false
		}
		for j := range a.Matches[i] {
			if a.Matches[i][j] != b.Matches[i][j] {
				return false
			}
		}
	}
	return true
}

// sameCounters compares the deterministic counter fields of two Stats
// (everything except the wall-clock Duration).
func sameCounters(a, b Stats) bool {
	return a.ElementsScanned == b.ElementsScanned &&
		a.Comparisons == b.Comparisons &&
		a.PointerDerefs == b.PointerDerefs &&
		a.PagesRead == b.PagesRead &&
		a.PagesWritten == b.PagesWritten &&
		a.PeakMemoryBytes == b.PeakMemoryBytes
}

// preparedCase is one engine/scheme/query combination exercised by the
// plan-reuse tests, covering all four engines.
type preparedCase struct {
	name   string
	eng    Engine
	scheme StorageScheme
	query  string
	views  string
}

func preparedCases() []preparedCase {
	return []preparedCase{
		{"VJ+LEp", EngineViewJoin, SchemeLEp,
			"//site//item[//description//keyword]/name", "//site//item//name; //description//keyword"},
		{"TS+E", EngineTwigStack, SchemeElement,
			"//site//item[//description//keyword]/name", "//site//item//name; //description//keyword"},
		{"PS+E", EnginePathStack, SchemeElement,
			"//site/open_auctions/open_auction/bidder/increase", "//site//increase; //open_auctions//open_auction//bidder"},
		{"IJ+T", EngineInterJoin, SchemeTuple,
			"//site/open_auctions/open_auction/bidder/increase", "//site//increase; //open_auctions//open_auction//bidder"},
	}
}

func materializeCase(t *testing.T, d *Document, c preparedCase) (*Query, []*MaterializedView) {
	t.Helper()
	q := MustParseQuery(c.query)
	vs, err := ParseViews(c.views)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := d.MaterializeViews(vs, c.scheme)
	if err != nil {
		t.Fatal(err)
	}
	return q, mv
}

// TestPreparedReuseSequential runs the same PreparedQuery twice in a row on
// every engine and demands byte-identical matches against both the one-shot
// Evaluate and the direct-evaluation oracle — the pooled scratch state must
// leave no residue between runs.
func TestPreparedReuseSequential(t *testing.T) {
	d := GenerateXMark(0.05)
	for _, c := range preparedCases() {
		t.Run(c.name, func(t *testing.T) {
			q, mv := materializeCase(t, d, c)
			want := EvaluateDirect(d, q)
			one, err := Evaluate(d, q, mv, c.eng, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMatches(one, want) {
				t.Fatalf("one-shot: %d matches, oracle %d", len(one.Matches), len(want.Matches))
			}
			p, err := Prepare(d, q, mv, c.eng, nil)
			if err != nil {
				t.Fatal(err)
			}
			for run := 0; run < 2; run++ {
				res, err := p.Run()
				if err != nil {
					t.Fatal(err)
				}
				if !identicalMatches(res, one) {
					t.Fatalf("run %d: %d matches, one-shot %d — reuse changed the result",
						run, len(res.Matches), len(one.Matches))
				}
				// Outside InterJoin nothing is charged at prepare time, so a
				// Run must reproduce the one-shot counters exactly; InterJoin
				// legitimately amortizes its view scans into Prepare.
				if c.eng != EngineInterJoin && !sameCounters(res.Stats, one.Stats) {
					t.Fatalf("run %d: counters %+v, one-shot %+v", run, res.Stats, one.Stats)
				}
				if c.eng == EngineInterJoin && res.Stats.ElementsScanned >= one.Stats.ElementsScanned {
					t.Fatalf("run %d: scanned %d, one-shot %d — prepare did not amortize the scans",
						run, res.Stats.ElementsScanned, one.Stats.ElementsScanned)
				}
			}
		})
	}
}

// TestPreparedReuseConcurrent hammers one PreparedQuery from 16 goroutines
// (two runs each) on every engine; with -race this is the proof that the
// per-plan scratch pools isolate concurrent executions.
func TestPreparedReuseConcurrent(t *testing.T) {
	d := GenerateXMark(0.05)
	for _, c := range preparedCases() {
		t.Run(c.name, func(t *testing.T) {
			q, mv := materializeCase(t, d, c)
			one, err := Evaluate(d, q, mv, c.eng, nil)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Prepare(d, q, mv, c.eng, nil)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 16
			errs := make([]error, goroutines)
			results := make([]*Result, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for run := 0; run < 2; run++ {
						res, err := p.Run()
						if err != nil {
							errs[g] = err
							return
						}
						results[g] = res
					}
				}(g)
			}
			wg.Wait()
			for g := 0; g < goroutines; g++ {
				if errs[g] != nil {
					t.Fatalf("goroutine %d: %v", g, errs[g])
				}
				if !identicalMatches(results[g], one) {
					t.Fatalf("goroutine %d: %d matches, one-shot %d",
						g, len(results[g].Matches), len(one.Matches))
				}
			}
		})
	}
}

// TestEvaluateBatch fans a mixed bag of prepared plans (all four engines,
// several repetitions each) through the worker pool and checks every slot
// against its query's one-shot result — order preserved, no cross-talk.
func TestEvaluateBatch(t *testing.T) {
	d := GenerateXMark(0.05)
	cases := preparedCases()
	prepared := make([]*PreparedQuery, len(cases))
	oneshot := make([]*Result, len(cases))
	for i, c := range cases {
		q, mv := materializeCase(t, d, c)
		one, err := Evaluate(d, q, mv, c.eng, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Prepare(d, q, mv, c.eng, nil)
		if err != nil {
			t.Fatal(err)
		}
		prepared[i], oneshot[i] = p, one
	}
	// Interleave the plans so concurrent slots run different engines.
	const rounds = 8
	var batch []*PreparedQuery
	var want []*Result
	for r := 0; r < rounds; r++ {
		for i := range prepared {
			batch = append(batch, prepared[i])
			want = append(want, oneshot[i])
		}
	}
	for _, parallel := range []int{0, 1, 4} {
		out := EvaluateBatch(batch, parallel)
		if len(out) != len(batch) {
			t.Fatalf("parallel=%d: %d results for %d queries", parallel, len(out), len(batch))
		}
		for i, br := range out {
			if br.Err != nil {
				t.Fatalf("parallel=%d slot %d: %v", parallel, i, br.Err)
			}
			if !identicalMatches(br.Result, want[i]) {
				t.Fatalf("parallel=%d slot %d (%s): %d matches, want %d",
					parallel, i, cases[i%len(cases)].name, len(br.Result.Matches), len(want[i].Matches))
			}
		}
	}
	if out := EvaluateBatch(nil, 4); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}

// preparedRunAllocCeiling pins the allocation cost of a warm
// PreparedQuery.Run on the standard workload: output rows plus a handful of
// fixed-size wrappers (measured baseline: 595, almost entirely the Matches
// rows). It must stay strictly below the one-shot Evaluate ceiling
// (noopTraceAllocCeiling) — the pooled path exists to shed the per-call
// plan and scratch allocations.
const preparedRunAllocCeiling = 620

// TestPreparedRunAllocations asserts the pooled Run path allocates strictly
// less than one-shot Evaluate and stays under its own pinned ceiling.
func TestPreparedRunAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation changes allocation counts")
	}
	d, q, mv := noopWorkload(t)
	p, err := Prepare(d, q, mv, EngineViewJoin, nil)
	if err != nil {
		t.Fatal(err)
	}
	runAllocs := testing.AllocsPerRun(5, func() {
		if _, err := p.Run(); err != nil {
			t.Fatal(err)
		}
	})
	evalAllocs := testing.AllocsPerRun(5, func() {
		if _, err := Evaluate(d, q, mv, EngineViewJoin, nil); err != nil {
			t.Fatal(err)
		}
	})
	if runAllocs >= evalAllocs {
		t.Errorf("prepared Run allocates %.0f times, one-shot Evaluate %.0f — pooling must be strictly cheaper",
			runAllocs, evalAllocs)
	}
	if runAllocs > preparedRunAllocCeiling {
		t.Errorf("prepared Run allocates %.0f times, ceiling %d", runAllocs, preparedRunAllocCeiling)
	}
}

// TestMaterializeViewsParallelDeterminism checks that the concurrent
// MaterializeViews produces exactly the per-view results of sequential
// MaterializeView calls, in input order.
func TestMaterializeViewsParallelDeterminism(t *testing.T) {
	d := GenerateXMark(0.05)
	vs, err := ParseViews("//site//item//name; //description//keyword; //open_auctions//open_auction//bidder; //site//increase; //people; //regions")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []StorageScheme{SchemeTuple, SchemeElement, SchemeLE, SchemeLEp} {
		got, err := d.MaterializeViews(vs, scheme)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if len(got) != len(vs) {
			t.Fatalf("%v: %d views, want %d", scheme, len(got), len(vs))
		}
		for i, v := range vs {
			want, err := d.MaterializeView(v, scheme, nil)
			if err != nil {
				t.Fatalf("%v %s: %v", scheme, v, err)
			}
			if got[i].Pattern().String() != v.String() {
				t.Fatalf("%v slot %d holds %s, want %s — output order must match input order",
					scheme, i, got[i].Pattern(), v)
			}
			if got[i].SizeBytes() != want.SizeBytes() ||
				got[i].NumEntries() != want.NumEntries() ||
				got[i].NumPointers() != want.NumPointers() {
				t.Fatalf("%v %s: parallel (%d bytes, %d entries, %d ptrs) != sequential (%d, %d, %d)",
					scheme, v, got[i].SizeBytes(), got[i].NumEntries(), got[i].NumPointers(),
					want.SizeBytes(), want.NumEntries(), want.NumPointers())
			}
		}
	}
}

// BenchmarkPreparedRun measures the steady-state serving cost of a reused
// plan; compare with BenchmarkEvaluateUntraced for the amortized planning
// overhead.
func BenchmarkPreparedRun(b *testing.B) {
	d, q, mv := noopWorkload(b)
	p, err := Prepare(d, q, mv, EngineViewJoin, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateBatch measures batched fan-out of one prepared plan
// across GOMAXPROCS workers, 16 executions per batch.
func BenchmarkEvaluateBatch(b *testing.B) {
	d, q, mv := noopWorkload(b)
	p, err := Prepare(d, q, mv, EngineViewJoin, nil)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]*PreparedQuery, 16)
	for i := range batch {
		batch[i] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, br := range EvaluateBatch(batch, 0) {
			if br.Err != nil {
				b.Fatal(br.Err)
			}
		}
	}
}
