package viewjoin

import (
	"context"
	"fmt"
	"testing"

	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
)

// FuzzEvaluateDifferential is the repository's differential fuzzer: the
// fuzz bytes deterministically drive testutil's generators (via
// testutil.ByteSource) to produce a random document, a random TPQ, and a
// random covering view partition, and every applicable engine/scheme pair
// is then required to agree exactly with the brute-force oracle. Any
// divergence or panic is a bug in one of the engines, the view
// segmentation, or the storage layer; the corpus under
// testdata/fuzz/FuzzEvaluateDifferential pins previously-interesting
// generator inputs.
func FuzzEvaluateDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("viewjoin"))
	f.Add([]byte{0x00, 0xff, 0x10, 0x20, 0x42, 0x99, 0x7f, 0x01, 0xee, 0x31})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		rng := testutil.NewByteRand(data)
		doc := newDocument(testutil.RandomDoc(rng, 60, nil))
		pat := testutil.RandomPattern(rng, 4, nil)
		q := &Query{pat}
		want := EvaluateDirect(doc, q)

		partitions := [][]*tpq.Pattern{
			testutil.RandomViewPartition(rng, pat),
			testutil.SingletonViews(pat),
			testutil.WholeQueryView(pat),
		}
		// Partition target for the parallel path, drawn after every other
		// generator so existing corpus entries keep their doc/query/views.
		k := 2 + rng.Intn(3)
		// Page bounds for the streamed LIMIT/OFFSET arm, drawn after k for
		// the same corpus-stability reason.
		pageLim := 1 + rng.Intn(4)
		pageOff := rng.Intn(3)
		for pi, part := range partitions {
			views := make([]*Query, len(part))
			for i, vp := range part {
				views[i] = &Query{vp}
			}
			for _, scheme := range []StorageScheme{SchemeElement, SchemeLEp} {
				mv, err := doc.MaterializeViews(views, scheme)
				if err != nil {
					t.Fatalf("partition %d scheme %v: materialize: %v", pi, scheme, err)
				}
				engines := []Engine{EngineViewJoin, EngineTwigStack}
				if q.IsPath() {
					engines = append(engines, EnginePathStack)
				}
				for _, eng := range engines {
					res, err := Evaluate(doc, q, mv, eng, nil)
					if err != nil {
						t.Fatalf("partition %d %v+%v: %v", pi, eng, scheme, err)
					}
					if !sameMatches(res, want) {
						t.Fatalf("partition %d %v+%v: %d matches, oracle %d (q=%s)",
							pi, eng, scheme, len(res.Matches), len(want.Matches), q)
					}
					// The range-partitioned run must be byte-identical to
					// the sequential result, not just set-equal.
					p, err := Prepare(doc, q, mv, eng, nil)
					if err != nil {
						t.Fatalf("partition %d %v+%v: prepare: %v", pi, eng, scheme, err)
					}
					pres, err := p.RunParallel(context.Background(), k)
					if err != nil {
						t.Fatalf("partition %d %v+%v k=%d: %v", pi, eng, scheme, k, err)
					}
					if !identicalMatches(pres, res) {
						t.Fatalf("partition %d %v+%v k=%d: parallel diverged from sequential (%d vs %d matches, q=%s)",
							pi, eng, scheme, k, len(pres.Matches), len(res.Matches), q)
					}
					// Bounded entry points must reproduce the oracle page
					// [offset:offset+limit] exactly, sequentially and
					// partitioned.
					checkPages(t, fmt.Sprintf("partition %d %v+%v", pi, eng, scheme),
						p, res, pageLim, pageOff, []int{1, k})
				}
			}
			if q.IsPath() {
				tv, err := doc.MaterializeViews(views, SchemeTuple)
				if err != nil {
					t.Fatalf("partition %d tuple: materialize: %v", pi, err)
				}
				res, err := Evaluate(doc, q, tv, EngineInterJoin, nil)
				if err != nil {
					t.Fatalf("partition %d IJ: %v", pi, err)
				}
				if !sameMatches(res, want) {
					t.Fatalf("partition %d IJ: %d matches, oracle %d (q=%s)",
						pi, len(res.Matches), len(want.Matches), q)
				}
				p, err := Prepare(doc, q, tv, EngineInterJoin, nil)
				if err != nil {
					t.Fatalf("partition %d IJ: prepare: %v", pi, err)
				}
				pres, err := p.RunParallel(context.Background(), k)
				if err != nil {
					t.Fatalf("partition %d IJ k=%d: %v", pi, k, err)
				}
				if !identicalMatches(pres, res) {
					t.Fatalf("partition %d IJ k=%d: parallel diverged from sequential (%d vs %d matches, q=%s)",
						pi, k, len(pres.Matches), len(res.Matches), q)
				}
				checkPages(t, fmt.Sprintf("partition %d IJ", pi), p, res, pageLim, pageOff, []int{1, k})
			}
		}

		// The no-view baseline must agree too (general-query entry point).
		res, err := EvaluateWithoutViews(doc, q, EngineTwigStack, nil)
		if err != nil {
			t.Fatalf("EvaluateWithoutViews TS: %v", err)
		}
		if !sameMatches(res, want) {
			t.Fatalf("EvaluateWithoutViews TS: %d matches, oracle %d (q=%s)",
				len(res.Matches), len(want.Matches), q)
		}
	})
}

// checkPages asserts that every bounded entry point — paged and streamed,
// sequential and range-partitioned — reproduces exactly the document-order
// slice [off:off+lim] of the full sequential result res (itself already
// oracle-checked by the caller).
func checkPages(t *testing.T, label string, p *PreparedQuery, res *Result, lim, off int, ks []int) {
	t.Helper()
	want := res.Matches
	if off >= len(want) {
		want = nil
	} else {
		want = want[off:]
		if lim < len(want) {
			want = want[:lim]
		}
	}
	for _, par := range ks {
		so := &StreamOptions{Limit: lim, Offset: off, Parallelism: par}
		pg, err := p.RunPage(context.Background(), so)
		if err != nil {
			t.Fatalf("%s par=%d: RunPage: %v", label, par, err)
		}
		if !samePage(pg.Matches, want) {
			t.Fatalf("%s par=%d: RunPage [%d:+%d] diverged from oracle slice (%d vs %d rows)",
				label, par, off, lim, len(pg.Matches), len(want))
		}
		var rows [][]Node
		if _, err := p.RunStream(context.Background(), so, func(row []Node) bool {
			// The yield row is scratch reused between calls; keep a copy.
			rows = append(rows, append([]Node(nil), row...))
			return true
		}); err != nil {
			t.Fatalf("%s par=%d: RunStream: %v", label, par, err)
		}
		if !samePage(rows, want) {
			t.Fatalf("%s par=%d: RunStream [%d:+%d] diverged from oracle slice (%d vs %d rows)",
				label, par, off, lim, len(rows), len(want))
		}
	}
}

// samePage is identicalMatches over bare row slices.
func samePage(got, want [][]Node) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				return false
			}
		}
	}
	return true
}
