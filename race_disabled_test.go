//go:build !race

package viewjoin

const raceEnabled = false
