package viewjoin

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"viewjoin/internal/testutil"
)

// TestConcurrentReadersDuringUpdates races every read entry point against
// the write path under the race detector: reader goroutines continuously
// Prepare and run (sequential, range-partitioned, streamed) while a writer
// applies a long update sequence with incremental maintenance — long
// enough to trip overlay compaction mid-flight. The invariants:
//
//   - readers never fail except with the retryable *EpochMismatchError
//     (a Prepare landing between an Apply and its Maintains),
//   - every run of one prepared plan is byte-identical to that plan's
//     sequential result — a plan is pinned to its snapshot, whatever the
//     writer does concurrently.
func TestConcurrentReadersDuringUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	doc := newDocument(testutil.RandomDoc(rng, 150, nil))
	q, err := ParseQuery("//a[//b]//c")
	if err != nil {
		t.Fatal(err)
	}
	views, err := ParseViews("//a//c; //b")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := doc.MaterializeViews(views, SchemeLEp)
	if err != nil {
		t.Fatal(err)
	}

	const minUpdates = 40 // past the overlay's compaction threshold
	stop := make(chan struct{})
	var runs atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := Prepare(doc, q, mv, EngineViewJoin, nil)
				if err != nil {
					var em *EpochMismatchError
					if errors.As(err, &em) {
						continue // the writer is mid-transaction; retry
					}
					t.Errorf("reader prepare: %v", err)
					return
				}
				seq, err := p.Run()
				if err != nil {
					t.Errorf("reader run: %v", err)
					return
				}
				par, err := p.RunParallel(context.Background(), 3)
				if err != nil {
					t.Errorf("reader parallel: %v", err)
					return
				}
				if !identicalMatches(par, seq) {
					t.Errorf("parallel run diverged from sequential on one snapshot: %d vs %d",
						len(par.Matches), len(seq.Matches))
					return
				}
				streamed := 0
				if _, err := p.RunStream(context.Background(), &StreamOptions{}, func([]Node) bool {
					streamed++
					return true
				}); err != nil {
					t.Errorf("reader stream: %v", err)
					return
				}
				if streamed != len(seq.Matches) {
					t.Errorf("stream yielded %d rows, sequential has %d", streamed, len(seq.Matches))
					return
				}
				runs.Add(1)
			}
		}()
	}

	// The writer keeps updating until the soak has covered what it is here
	// to cover: the compaction threshold crossed and a healthy number of
	// complete reader runs overlapped with live maintenance.
	wrng := rand.New(rand.NewSource(22))
	compactions, applied := 0, 0
	for applied < minUpdates || compactions == 0 || runs.Load() < 20 {
		if applied >= 20000 {
			break
		}
		u := randomPublicUpdate(wrng, doc)
		au, err := doc.Apply(u)
		if err != nil {
			t.Fatalf("update %d: apply: %v", applied, err)
		}
		for vi, v := range mv {
			rep, err := v.Maintain(au)
			if err != nil {
				t.Fatalf("update %d: maintain view %d: %v", applied, vi, err)
			}
			if rep.Compacted {
				compactions++
			}
		}
		applied++
	}
	close(stop)
	wg.Wait()

	if compactions == 0 {
		t.Fatalf("%d updates triggered no compaction; the race never covered Compact under readers", applied)
	}
	if runs.Load() == 0 {
		t.Fatal("readers completed no runs while the writer was active")
	}
	// Quiesced, everything agrees with the oracle.
	res, err := Evaluate(doc, q, mv, EngineViewJoin, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatches(res, EvaluateDirect(doc, q)) {
		t.Fatal("post-soak evaluation disagrees with oracle")
	}
}

// TestConcurrentPinnedReaderNeverMoves races one long-lived prepared plan
// against the writer: every re-run of the pinned plan, interleaved with
// updates and maintenance on other goroutine, must return the byte-exact
// pre-update result.
func TestConcurrentPinnedReaderNeverMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	doc := newDocument(testutil.RandomDoc(rng, 120, nil))
	q, err := ParseQuery("//a//b")
	if err != nil {
		t.Fatal(err)
	}
	views, err := ParseViews("//a//b")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := doc.MaterializeViews(views, SchemeLEp)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := Prepare(doc, q, mv, EngineViewJoin, nil)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := p0.Run()
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		wrng := rand.New(rand.NewSource(32))
		for i := 0; i < 25; i++ {
			au, err := doc.Apply(randomPublicUpdate(wrng, doc))
			if err != nil {
				t.Errorf("writer apply: %v", err)
				return
			}
			for _, v := range mv {
				if _, err := v.Maintain(au); err != nil {
					t.Errorf("writer maintain: %v", err)
					return
				}
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		res, err := p0.Run()
		if err != nil {
			t.Fatalf("pinned run: %v", err)
		}
		if !identicalMatches(res, res0) {
			t.Fatalf("pinned plan observed post-update state: %d vs %d matches",
				len(res.Matches), len(res0.Matches))
		}
	}
}
