package viewjoin

import (
	"bytes"
	"errors"
	"testing"
)

func TestSaveLoadViewRoundTrip(t *testing.T) {
	d := GenerateNasa(120)
	q := MustParseQuery("//field//footnote//para")
	vs, err := ParseViews("//field//para; //footnote")
	if err != nil {
		t.Fatal(err)
	}
	want := EvaluateDirect(d, q)

	for _, scheme := range []StorageScheme{SchemeElement, SchemeLE, SchemeLEp, SchemeTuple} {
		mv, err := d.MaterializeViews(vs, scheme)
		if err != nil {
			t.Fatal(err)
		}
		loaded := make([]*MaterializedView, len(mv))
		for i, v := range mv {
			var buf bytes.Buffer
			n, err := v.SaveView(&buf)
			if err != nil {
				t.Fatalf("%v: SaveView: %v", scheme, err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("SaveView returned %d, wrote %d", n, buf.Len())
			}
			loaded[i], err = d.LoadView(&buf)
			if err != nil {
				t.Fatalf("%v: LoadView: %v", scheme, err)
			}
			if loaded[i].Scheme() != scheme || loaded[i].NumEntries() != v.NumEntries() ||
				loaded[i].NumPointers() != v.NumPointers() {
				t.Fatalf("%v: loaded view metadata differs", scheme)
			}
		}
		eng := EngineViewJoin
		if scheme == SchemeTuple {
			eng = EngineInterJoin
		}
		res, err := Evaluate(d, q, loaded, eng, nil)
		if err != nil {
			t.Fatalf("%v: evaluate over loaded views: %v", scheme, err)
		}
		if !sameMatches(res, want) {
			t.Fatalf("%v: loaded views give %d matches, want %d", scheme, len(res.Matches), len(want.Matches))
		}
	}
}

// TestLoadViewBytesZeroCopy: the zero-copy loader is behaviorally
// identical to LoadView — same evaluation results, same structured errors
// (ErrViewTruncated for every truncation point, DocMismatchError for a
// foreign document).
func TestLoadViewBytesZeroCopy(t *testing.T) {
	d := GenerateNasa(120)
	q := MustParseQuery("//field//footnote//para")
	vs, err := ParseViews("//field//para; //footnote")
	if err != nil {
		t.Fatal(err)
	}
	want := EvaluateDirect(d, q)

	for _, scheme := range []StorageScheme{SchemeElement, SchemeLE, SchemeLEp, SchemeTuple} {
		mv, err := d.MaterializeViews(vs, scheme)
		if err != nil {
			t.Fatal(err)
		}
		loaded := make([]*MaterializedView, len(mv))
		for i, v := range mv {
			var buf bytes.Buffer
			if _, err := v.SaveView(&buf); err != nil {
				t.Fatal(err)
			}
			loaded[i], err = d.LoadViewBytes(buf.Bytes())
			if err != nil {
				t.Fatalf("%v: LoadViewBytes: %v", scheme, err)
			}
			if loaded[i].Scheme() != scheme || loaded[i].NumEntries() != v.NumEntries() ||
				loaded[i].NumPointers() != v.NumPointers() {
				t.Fatalf("%v: loaded view metadata differs", scheme)
			}
		}
		eng := EngineViewJoin
		if scheme == SchemeTuple {
			eng = EngineInterJoin
		}
		res, err := Evaluate(d, q, loaded, eng, nil)
		if err != nil {
			t.Fatalf("%v: evaluate over byte-loaded views: %v", scheme, err)
		}
		if !sameMatches(res, want) {
			t.Fatalf("%v: byte-loaded views give %d matches, want %d", scheme, len(res.Matches), len(want.Matches))
		}
	}
}

func TestLoadViewBytesTruncation(t *testing.T) {
	d := GenerateNasa(100)
	v, err := d.MaterializeView(MustParseQuery("//field//para"), SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := v.SaveView(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for _, n := range []int{0, 4, 8, 12, len(good) / 2, len(good) - 1} {
		_, err := d.LoadViewBytes(good[:n])
		if !errors.Is(err, ErrViewTruncated) {
			t.Errorf("truncation at %d/%d: err = %v, want ErrViewTruncated", n, len(good), err)
		}
	}
	d2 := GenerateNasa(101)
	var mismatch *DocMismatchError
	if _, err := d2.LoadViewBytes(good); !errors.As(err, &mismatch) {
		t.Errorf("foreign document: err = %v, want DocMismatchError", err)
	}
}

func TestLoadViewRejectsWrongDocument(t *testing.T) {
	d1 := GenerateNasa(100)
	d2 := GenerateNasa(101)
	v, err := d1.MaterializeView(MustParseQuery("//field//para"), SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := v.SaveView(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.LoadView(&buf); err == nil {
		t.Fatal("loading against a different document must fail")
	}
}

func TestLoadViewRejectsGarbage(t *testing.T) {
	d := GenerateNasa(50)
	if _, err := d.LoadView(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("expected error for truncated input")
	}
	if _, err := d.LoadView(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestLoadedViewListSizesAndSelection(t *testing.T) {
	d := GenerateNasa(120)
	v, err := d.MaterializeView(MustParseQuery("//field//para"), SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := v.SaveView(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := d.LoadView(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := v.ListSizes(), loaded.ListSizes()
	if len(a) != len(b) {
		t.Fatalf("ListSizes length differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ListSizes[%d]: %d vs %d", i, a[i], b[i])
		}
	}
	// Loaded views participate in cost-based selection.
	q := MustParseQuery("//field//definition//para")
	defV, err := d.MaterializeView(MustParseQuery("//definition"), SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectViews([]*MaterializedView{loaded, defV}, q, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selection = %d views, want 2", len(sel))
	}
}
