package viewjoin

import (
	"bytes"
	"testing"
)

func TestSaveLoadViewRoundTrip(t *testing.T) {
	d := GenerateNasa(120)
	q := MustParseQuery("//field//footnote//para")
	vs, err := ParseViews("//field//para; //footnote")
	if err != nil {
		t.Fatal(err)
	}
	want := EvaluateDirect(d, q)

	for _, scheme := range []StorageScheme{SchemeElement, SchemeLE, SchemeLEp, SchemeTuple} {
		mv, err := d.MaterializeViews(vs, scheme)
		if err != nil {
			t.Fatal(err)
		}
		loaded := make([]*MaterializedView, len(mv))
		for i, v := range mv {
			var buf bytes.Buffer
			n, err := v.SaveView(&buf)
			if err != nil {
				t.Fatalf("%v: SaveView: %v", scheme, err)
			}
			if n != int64(buf.Len()) {
				t.Fatalf("SaveView returned %d, wrote %d", n, buf.Len())
			}
			loaded[i], err = d.LoadView(&buf)
			if err != nil {
				t.Fatalf("%v: LoadView: %v", scheme, err)
			}
			if loaded[i].Scheme() != scheme || loaded[i].NumEntries() != v.NumEntries() ||
				loaded[i].NumPointers() != v.NumPointers() {
				t.Fatalf("%v: loaded view metadata differs", scheme)
			}
		}
		eng := EngineViewJoin
		if scheme == SchemeTuple {
			eng = EngineInterJoin
		}
		res, err := Evaluate(d, q, loaded, eng, nil)
		if err != nil {
			t.Fatalf("%v: evaluate over loaded views: %v", scheme, err)
		}
		if !sameMatches(res, want) {
			t.Fatalf("%v: loaded views give %d matches, want %d", scheme, len(res.Matches), len(want.Matches))
		}
	}
}

func TestLoadViewRejectsWrongDocument(t *testing.T) {
	d1 := GenerateNasa(100)
	d2 := GenerateNasa(101)
	v, err := d1.MaterializeView(MustParseQuery("//field//para"), SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := v.SaveView(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.LoadView(&buf); err == nil {
		t.Fatal("loading against a different document must fail")
	}
}

func TestLoadViewRejectsGarbage(t *testing.T) {
	d := GenerateNasa(50)
	if _, err := d.LoadView(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("expected error for truncated input")
	}
	if _, err := d.LoadView(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestLoadedViewListSizesAndSelection(t *testing.T) {
	d := GenerateNasa(120)
	v, err := d.MaterializeView(MustParseQuery("//field//para"), SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := v.SaveView(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := d.LoadView(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := v.ListSizes(), loaded.ListSizes()
	if len(a) != len(b) {
		t.Fatalf("ListSizes length differs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ListSizes[%d]: %d vs %d", i, a[i], b[i])
		}
	}
	// Loaded views participate in cost-based selection.
	q := MustParseQuery("//field//definition//para")
	defV, err := d.MaterializeView(MustParseQuery("//definition"), SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectViews([]*MaterializedView{loaded, defV}, q, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selection = %d views, want 2", len(sel))
	}
}
