package viewjoin_test

// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI), one Benchmark per table/figure with sub-benchmarks per
// storage/algorithm combination. Each iteration of a Fig5/Fig6/Table5
// sub-benchmark evaluates every query of that figure under the named
// combination, so ns/op is directly comparable across combinations — the
// paper's bar charts read off the relative heights.
//
// Documents and materialized views are built once (outside the timed
// loops) at a reduced scale so `go test -bench=.` stays laptop-friendly;
// cmd/vjbench runs the same experiments at full scale with simulated I/O
// accounting folded in.

import (
	"sync"
	"testing"

	"viewjoin"
	"viewjoin/internal/workload"
)

const (
	benchXMarkScale   = 0.25
	benchNasaDatasets = 1000
)

var (
	benchOnce  sync.Once
	benchXMark *viewjoin.Document
	benchNasa  *viewjoin.Document
	benchMats  map[string]map[viewjoin.StorageScheme][]*viewjoin.MaterializedView
	benchQuery map[string]*viewjoin.Query
)

type benchCombo struct {
	name   string
	engine viewjoin.Engine
	scheme viewjoin.StorageScheme
}

var pathCombos = []benchCombo{
	{"IJ+T", viewjoin.EngineInterJoin, viewjoin.SchemeTuple},
	{"TS+E", viewjoin.EngineTwigStack, viewjoin.SchemeElement},
	{"TS+LE", viewjoin.EngineTwigStack, viewjoin.SchemeLE},
	{"TS+LEp", viewjoin.EngineTwigStack, viewjoin.SchemeLEp},
	{"VJ+E", viewjoin.EngineViewJoin, viewjoin.SchemeElement},
	{"VJ+LE", viewjoin.EngineViewJoin, viewjoin.SchemeLE},
	{"VJ+LEp", viewjoin.EngineViewJoin, viewjoin.SchemeLEp},
}

var twigCombos = pathCombos[1:]

// benchSetup builds the benchmark documents and materializes every
// workload query's views in every scheme, once.
func benchSetup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchXMark = viewjoin.GenerateXMark(benchXMarkScale)
		benchNasa = viewjoin.GenerateNasa(benchNasaDatasets)
		benchMats = make(map[string]map[viewjoin.StorageScheme][]*viewjoin.MaterializedView)
		benchQuery = make(map[string]*viewjoin.Query)

		add := func(d *viewjoin.Document, queries []workload.Query) {
			for _, wq := range queries {
				q, err := viewjoin.ParseQuery(wq.Pattern.String())
				if err != nil {
					panic(err)
				}
				benchQuery[wq.Name] = q
				vs := make([]*viewjoin.Query, len(wq.Views))
				for i, p := range wq.Views {
					v, err := viewjoin.ParseQuery(p.String())
					if err != nil {
						panic(err)
					}
					vs[i] = v
				}
				per := make(map[viewjoin.StorageScheme][]*viewjoin.MaterializedView)
				schemes := []viewjoin.StorageScheme{viewjoin.SchemeElement, viewjoin.SchemeLE, viewjoin.SchemeLEp}
				if wq.Path {
					schemes = append(schemes, viewjoin.SchemeTuple)
				}
				for _, s := range schemes {
					mv, err := d.MaterializeViews(vs, s)
					if err != nil {
						panic(err)
					}
					per[s] = mv
				}
				benchMats[wq.Name] = per
			}
		}
		add(benchXMark, workload.XMarkPath())
		add(benchXMark, workload.XMarkTwig())
		add(benchNasa, workload.NasaPath())
		add(benchNasa, workload.NasaTwig())
	})
}

func benchDoc(name string) *viewjoin.Document {
	if name[0] == 'N' {
		return benchNasa
	}
	return benchXMark
}

// runFigure times one combination over every query of a figure.
func runFigure(b *testing.B, queries []workload.Query, c benchCombo, opts *viewjoin.EvalOptions) {
	b.Helper()
	matches := 0
	for i := 0; i < b.N; i++ {
		matches = 0
		for _, wq := range queries {
			res, err := viewjoin.Evaluate(benchDoc(wq.Name), benchQuery[wq.Name],
				benchMats[wq.Name][c.scheme], c.engine, opts)
			if err != nil {
				b.Fatalf("%s %s: %v", wq.Name, c.name, err)
			}
			matches += len(res.Matches)
		}
	}
	b.ReportMetric(float64(matches), "matches")
}

func benchFigure(b *testing.B, queries []workload.Query, combos []benchCombo) {
	benchSetup(b)
	for _, c := range combos {
		b.Run(c.name, func(b *testing.B) {
			runFigure(b, queries, c, nil)
		})
	}
}

// BenchmarkMotivation is the §I / §VI-A observation-2 experiment:
// InterJoin over tuple views vs PathStack over element views on the path
// queries; the tuple scheme's redundancy decides each query.
func BenchmarkMotivation(b *testing.B) {
	benchSetup(b)
	queries := append(workload.XMarkPath(), workload.NasaPath()...)
	b.Run("IJ+T", func(b *testing.B) {
		runFigure(b, queries, benchCombo{"IJ+T", viewjoin.EngineInterJoin, viewjoin.SchemeTuple}, nil)
	})
	b.Run("PS+E", func(b *testing.B) {
		runFigure(b, queries, benchCombo{"PS+E", viewjoin.EnginePathStack, viewjoin.SchemeElement}, nil)
	})
}

// BenchmarkFig5a: XMark path queries, all seven combinations.
func BenchmarkFig5a(b *testing.B) { benchFigure(b, workload.XMarkPath(), pathCombos) }

// BenchmarkFig5b: Nasa path queries, all seven combinations.
func BenchmarkFig5b(b *testing.B) { benchFigure(b, workload.NasaPath(), pathCombos) }

// BenchmarkFig5c: XMark twig queries, six combinations (no InterJoin).
func BenchmarkFig5c(b *testing.B) { benchFigure(b, workload.XMarkTwig(), twigCombos) }

// BenchmarkFig5d: Nasa twig queries, six combinations.
func BenchmarkFig5d(b *testing.B) { benchFigure(b, workload.NasaTwig(), twigCombos) }

// benchInterleaving runs a Fig 6 experiment: the same query under view
// sets of decreasing interleaving complexity (Table III).
func benchInterleaving(b *testing.B, prefix string, combos []benchCombo) {
	benchSetup(b)
	for _, row := range workload.TableIII() {
		if row.Name[:2] != prefix {
			continue
		}
		q, err := viewjoin.ParseQuery(row.Query.String())
		if err != nil {
			b.Fatal(err)
		}
		vs := make([]*viewjoin.Query, len(row.Views))
		for i, p := range row.Views {
			vs[i], err = viewjoin.ParseQuery(p.String())
			if err != nil {
				b.Fatal(err)
			}
		}
		mats := map[viewjoin.StorageScheme][]*viewjoin.MaterializedView{}
		for _, c := range combos {
			if _, ok := mats[c.scheme]; ok {
				continue
			}
			mv, err := benchNasa.MaterializeViews(vs, c.scheme)
			if err != nil {
				b.Fatal(err)
			}
			mats[c.scheme] = mv
		}
		for _, c := range combos {
			b.Run(row.Name+"/"+c.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := viewjoin.Evaluate(benchNasa, q, mats[c.scheme], c.engine, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6a: interleaving impact on path query Np (view sets PV1-PV4).
func BenchmarkFig6a(b *testing.B) {
	benchInterleaving(b, "PV", []benchCombo{
		{"IJ+T", viewjoin.EngineInterJoin, viewjoin.SchemeTuple},
		{"TS+E", viewjoin.EngineTwigStack, viewjoin.SchemeElement},
		{"VJ+LE", viewjoin.EngineViewJoin, viewjoin.SchemeLE},
		{"VJ+LEp", viewjoin.EngineViewJoin, viewjoin.SchemeLEp},
	})
}

// BenchmarkFig6b: interleaving impact on twig query Nt (view sets TV1-TV4).
func BenchmarkFig6b(b *testing.B) {
	benchInterleaving(b, "TV", []benchCombo{
		{"TS+E", viewjoin.EngineTwigStack, viewjoin.SchemeElement},
		{"VJ+LE", viewjoin.EngineViewJoin, viewjoin.SchemeLE},
		{"VJ+LEp", viewjoin.EngineViewJoin, viewjoin.SchemeLEp},
	})
}

// BenchmarkTable2ViewSelection: the §V greedy cost-based selection over the
// Table II pool, then evaluation with the selected set.
func BenchmarkTable2ViewSelection(b *testing.B) {
	benchSetup(b)
	q := viewjoin.MustParseQuery(workload.Nt().String())
	var pool []*viewjoin.MaterializedView
	for _, row := range workload.TableIIPool() {
		vq, err := viewjoin.ParseQuery(row.View.String())
		if err != nil {
			b.Fatal(err)
		}
		mv, err := benchNasa.MaterializeView(vq, viewjoin.SchemeLE, nil)
		if err != nil {
			b.Fatal(err)
		}
		pool = append(pool, mv)
	}
	b.Run("select", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := viewjoin.SelectViews(pool, q, viewjoin.DefaultLambda); err != nil {
				b.Fatal(err)
			}
		}
	})
	sel, err := viewjoin.SelectViews(pool, q, viewjoin.DefaultLambda)
	if err != nil {
		b.Fatal(err)
	}
	bySize, err := viewjoin.SelectViewsBySize(pool, q)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		set  []*viewjoin.MaterializedView
	}{{"eval-cost-based", sel}, {"eval-size-based", bySize}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := viewjoin.Evaluate(benchNasa, q, v.set, viewjoin.EngineViewJoin, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4ViewSizes: materialization cost of the space-study views
// per scheme; bytes and pointer counts are reported as metrics (the
// table's content).
func BenchmarkTable4ViewSizes(b *testing.B) {
	benchSetup(b)
	v1, v2 := workload.TableIVViews()
	for _, vp := range []string{v1.String(), v2.String()} {
		vq := viewjoin.MustParseQuery(vp)
		for _, s := range []viewjoin.StorageScheme{viewjoin.SchemeElement, viewjoin.SchemeTuple,
			viewjoin.SchemeLE, viewjoin.SchemeLEp} {
			b.Run(vp+"/"+s.String(), func(b *testing.B) {
				var mv *viewjoin.MaterializedView
				var err error
				for i := 0; i < b.N; i++ {
					mv, err = benchXMark.MaterializeView(vq, s, nil)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(mv.SizeBytes()), "bytes")
				b.ReportMetric(float64(mv.NumPointers()), "pointers")
			})
		}
	}
}

// BenchmarkFig7Scalability: VJ+LE on growing XMark documents (Q11); peak
// window memory is reported as a metric. Linear growth in both ns/op and
// the memory metric is the figure's claim.
func BenchmarkFig7Scalability(b *testing.B) {
	q11 := workload.All()["Q11"]
	q, err := viewjoin.ParseQuery(q11.Pattern.String())
	if err != nil {
		b.Fatal(err)
	}
	for _, mult := range []int{1, 2, 4} {
		d := viewjoin.GenerateXMark(benchXMarkScale * float64(mult))
		vs := make([]*viewjoin.Query, len(q11.Views))
		for i, p := range q11.Views {
			vs[i], err = viewjoin.ParseQuery(p.String())
			if err != nil {
				b.Fatal(err)
			}
		}
		mv, err := d.MaterializeViews(vs, viewjoin.SchemeLE)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(map[int]string{1: "x1", 2: "x2", 4: "x4"}[mult], func(b *testing.B) {
			var peak int64
			for i := 0; i < b.N; i++ {
				res, err := viewjoin.Evaluate(d, q, mv, viewjoin.EngineViewJoin, nil)
				if err != nil {
					b.Fatal(err)
				}
				peak = res.Stats.PeakMemoryBytes
			}
			b.ReportMetric(float64(peak), "peak-mem-bytes")
		})
	}
}

// BenchmarkTable5DiskBased: memory-based vs disk-based output approaches
// for TS+E and VJ+LE over the twig queries.
func BenchmarkTable5DiskBased(b *testing.B) {
	benchSetup(b)
	queries := append(workload.XMarkTwig(), workload.NasaTwig()...)
	variants := []struct {
		name   string
		engine viewjoin.Engine
		scheme viewjoin.StorageScheme
		disk   bool
	}{
		{"TS-M", viewjoin.EngineTwigStack, viewjoin.SchemeElement, false},
		{"TS-D", viewjoin.EngineTwigStack, viewjoin.SchemeElement, true},
		{"VJ-M", viewjoin.EngineViewJoin, viewjoin.SchemeLE, false},
		{"VJ-D", viewjoin.EngineViewJoin, viewjoin.SchemeLE, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var pages int64
			for i := 0; i < b.N; i++ {
				pages = 0
				for _, wq := range queries {
					res, err := viewjoin.Evaluate(benchDoc(wq.Name), benchQuery[wq.Name],
						benchMats[wq.Name][v.scheme],
						v.engine, &viewjoin.EvalOptions{DiskBased: v.disk})
					if err != nil {
						b.Fatal(err)
					}
					pages += res.Stats.PagesRead + res.Stats.PagesWritten
				}
			}
			b.ReportMetric(float64(pages), "pages")
		})
	}
}

// BenchmarkNoViews: raw element-stream evaluation (the [22] baseline
// setting) vs the view-based engines over the same queries.
func BenchmarkNoViews(b *testing.B) {
	benchSetup(b)
	queries := append(workload.XMarkTwig(), workload.NasaTwig()...)
	b.Run("TS-raw", func(b *testing.B) {
		matches := 0
		for i := 0; i < b.N; i++ {
			matches = 0
			for _, wq := range queries {
				res, err := viewjoin.EvaluateWithoutViews(benchDoc(wq.Name), benchQuery[wq.Name],
					viewjoin.EngineTwigStack, nil)
				if err != nil {
					b.Fatal(err)
				}
				matches += len(res.Matches)
			}
		}
		b.ReportMetric(float64(matches), "matches")
	})
	b.Run("TS-views", func(b *testing.B) {
		runFigure(b, queries, benchCombo{"TS+E", viewjoin.EngineTwigStack, viewjoin.SchemeElement}, nil)
	})
	b.Run("VJ-views", func(b *testing.B) {
		runFigure(b, queries, benchCombo{"VJ+LEp", viewjoin.EngineViewJoin, viewjoin.SchemeLEp}, nil)
	})
}
