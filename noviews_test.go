package viewjoin

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEvaluateWithoutViewsBasic(t *testing.T) {
	d := sampleDoc(t)
	for _, qs := range []string{"//a//b//c", "//a[//f]//b//e", "//r//a//e"} {
		q := MustParseQuery(qs)
		want := EvaluateDirect(d, q)
		res, err := EvaluateWithoutViews(d, q, EngineTwigStack, nil)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if !sameMatches(res, want) {
			t.Errorf("%s: got %d matches, want %d", qs, len(res.Matches), len(want.Matches))
		}
		if q.IsPath() {
			res, err = EvaluateWithoutViews(d, q, EnginePathStack, nil)
			if err != nil {
				t.Fatalf("%s PS: %v", qs, err)
			}
			if !sameMatches(res, want) {
				t.Errorf("%s PS: got %d matches, want %d", qs, len(res.Matches), len(want.Matches))
			}
		}
	}
	// View-based engines are rejected.
	q := MustParseQuery("//a//b")
	if _, err := EvaluateWithoutViews(d, q, EngineViewJoin, nil); err == nil {
		t.Errorf("VJ without views: expected error")
	}
	if _, err := EvaluateWithoutViews(d, q, EngineInterJoin, nil); err == nil {
		t.Errorf("IJ without views: expected error")
	}
}

// TestGeneralQueries: duplicate element types — the query class the paper
// defers to [5] — evaluated over raw streams and cross-checked against the
// direct evaluator.
func TestGeneralQueries(t *testing.T) {
	d, err := ParseDocumentString(
		`<a><a><b/><a><b/></a></a><b/><c><a><b/></a></c></a>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range []string{"//a//a", "//a//a//b", "//a//b[//a]", "//a[//b][//c]//a", "//a/a/b"} {
		q, err := ParseQueryGeneral(qs)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		want := EvaluateDirect(d, q)
		res, err := EvaluateWithoutViews(d, q, EngineTwigStack, nil)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if !sameMatches(res, want) {
			t.Errorf("%s: got %d matches, want %d", qs, len(res.Matches), len(want.Matches))
		}
	}
	// The unique-label parser rejects what the general parser accepts.
	if _, err := ParseQuery("//a//a"); err == nil {
		t.Errorf("ParseQuery must reject duplicate labels")
	}
	if _, err := ParseQueryGeneral("//a//"); err == nil {
		t.Errorf("ParseQueryGeneral must still reject malformed input")
	}
}

// TestGeneralQueriesProperty: random general patterns (with forced
// duplicates) over random documents, raw-stream TwigStack vs the oracle.
func TestGeneralQueriesProperty(t *testing.T) {
	labels := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := ParseDocumentString(randomXML(rng))
		if err != nil {
			return false
		}
		// Random general pattern: 2-4 nodes, labels drawn with replacement.
		n := 2 + rng.Intn(3)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				sb.WriteString("//")
			} else if i == 0 {
				sb.WriteString("//")
			} else {
				sb.WriteString("/")
			}
			sb.WriteString(labels[rng.Intn(len(labels))])
		}
		q, err := ParseQueryGeneral(sb.String())
		if err != nil {
			t.Logf("parse %q: %v", sb.String(), err)
			return false
		}
		want := EvaluateDirect(d, q)
		res, err := EvaluateWithoutViews(d, q, EngineTwigStack, &EvalOptions{DiskBased: rng.Intn(2) == 0})
		if err != nil {
			t.Logf("%s: %v", q, err)
			return false
		}
		if !sameMatches(res, want) {
			t.Logf("seed=%d q=%s: got %d, want %d", seed, q, len(res.Matches), len(want.Matches))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestViewsBeatRawStreams reproduces the premise of the paper (§I): using
// materialized views prunes the element streams, so the same engine scans
// fewer elements than over raw streams.
func TestViewsBeatRawStreams(t *testing.T) {
	d := GenerateNasa(400)
	q := MustParseQuery("//field//footnote//para")
	vs, err := ParseViews("//field//footnote//para")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := d.MaterializeViews(vs, SchemeElement)
	if err != nil {
		t.Fatal(err)
	}
	withViews, err := Evaluate(d, q, mv, EngineTwigStack, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EvaluateWithoutViews(d, q, EngineTwigStack, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMatches(withViews, raw) {
		t.Fatalf("results disagree: %d vs %d", len(withViews.Matches), len(raw.Matches))
	}
	if withViews.Stats.ElementsScanned >= raw.Stats.ElementsScanned {
		t.Errorf("views should prune streams: %d vs %d scanned",
			withViews.Stats.ElementsScanned, raw.Stats.ElementsScanned)
	}
}
