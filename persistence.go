package viewjoin

import (
	"encoding/binary"
	"fmt"
	"io"

	"viewjoin/internal/store"
	"viewjoin/internal/xmltree"
)

// SaveView serializes a materialized view (scheme, pattern, and paged
// content) so it can be reloaded later with LoadView instead of being
// re-materialized. The document itself is not embedded; a small
// fingerprint is written so LoadView can reject a mismatched document.
func (v *MaterializedView) SaveView(w io.Writer) (int64, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], v.doc.fingerprint())
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := v.store.WriteTo(w)
	return n + 8, err
}

// LoadView reloads a view saved with SaveView, binding it to d. It fails
// when the view was saved against a different document (fingerprint
// mismatch): pointers and region labels are only meaningful for the
// document the view was materialized from.
//
// Loaded views evaluate exactly like freshly materialized ones; only
// MaterializeResult-style raw access to the in-memory materialization is
// unavailable (ListSizes and the selection API still work, computed from
// the on-disk lists).
func (d *Document) LoadView(r io.Reader) (*MaterializedView, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("viewjoin: load view: %w", err)
	}
	if got := binary.LittleEndian.Uint64(hdr[:]); got != d.fingerprint() {
		return nil, fmt.Errorf("viewjoin: view was saved against a different document (fingerprint %x != %x)",
			got, d.fingerprint())
	}
	st, err := store.ReadViewStore(r)
	if err != nil {
		return nil, fmt.Errorf("viewjoin: load view: %w", err)
	}
	return &MaterializedView{doc: d, pattern: st.View, store: st}, nil
}

// fingerprint computes a cheap structural fingerprint of the document
// (FNV-1a over the region labels of a node sample), used to pair saved
// views with their document.
func (d *Document) fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v int32) {
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime64
		}
	}
	n := d.d.NumNodes()
	mix(int32(n))
	step := n/64 + 1
	for i := 0; i < n; i += step {
		nd := d.d.Node(xmltree.NodeID(i))
		mix(nd.Start)
		mix(nd.End)
		mix(nd.Level)
	}
	return h
}
