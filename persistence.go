package viewjoin

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"viewjoin/internal/store"
	"viewjoin/internal/xmltree"
)

// ErrViewTruncated reports that a saved-view stream ended before the
// serialized content it promised — a partial write, a truncated file, or a
// stream cut mid-transfer. LoadView errors match it with errors.Is.
var ErrViewTruncated = errors.New("viewjoin: saved view is truncated")

// DocMismatchError reports that a saved view was materialized from a
// different document than the one it is being loaded into: the view's
// pointers and region labels are only meaningful for its own document.
// LoadView errors match it with errors.As.
type DocMismatchError struct {
	// Saved and Want are the structural fingerprints of the view's original
	// document and of the document passed to LoadView.
	Saved, Want uint64
}

func (e *DocMismatchError) Error() string {
	return fmt.Sprintf("viewjoin: view was saved against a different document (fingerprint %x != %x)",
		e.Saved, e.Want)
}

// SaveView serializes a materialized view (scheme, pattern, and paged
// content) so it can be reloaded later with LoadView instead of being
// re-materialized. The document itself is not embedded; a small
// fingerprint is written so LoadView can reject a mismatched document.
func (v *MaterializedView) SaveView(w io.Writer) (int64, error) {
	s := v.st()
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], treeFingerprint(s.tree))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	n, err := s.store.WriteTo(w)
	return n + 8, err
}

// SaveViewFile writes the view to path atomically: the container is
// serialized to a temporary file in the same directory, synced, and
// renamed over path only once complete. A crash or write error never
// leaves a truncated container at path — readers see either the old file
// or the new one.
func (v *MaterializedView) SaveViewFile(path string) (int64, error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	tmp := f.Name()
	n, err := v.SaveView(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

// LoadView reloads a view saved with SaveView, binding it to d. It fails
// when the view was saved against a different document (fingerprint
// mismatch): pointers and region labels are only meaningful for the
// document the view was materialized from.
//
// Loaded views evaluate exactly like freshly materialized ones; only
// MaterializeResult-style raw access to the in-memory materialization is
// unavailable (ListSizes and the selection API still work, computed from
// the on-disk lists).
func (d *Document) LoadView(r io.Reader) (*MaterializedView, error) {
	snap := d.snap()
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, loadErr(err)
	}
	want := treeFingerprint(snap.tree)
	if got := binary.LittleEndian.Uint64(hdr[:]); got != want {
		return nil, &DocMismatchError{Saved: got, Want: want}
	}
	st, err := store.ReadViewStore(r)
	if err != nil {
		return nil, loadErr(err)
	}
	return newView(d, snap, st.View, nil, st, nil), nil
}

// LoadViewBytes is LoadView over an in-memory file image, and is the
// zero-copy path: the returned view's paged segments are slices of data,
// adopted without decoding or copying records. The caller must not mutate
// data after a successful load (reading a whole file with os.ReadFile, or
// memory-mapping it read-only, both satisfy this). Views loaded this way
// can be served concurrently: the segments are immutable and every reader
// carries its own cursor state.
func (d *Document) LoadViewBytes(data []byte) (*MaterializedView, error) {
	return d.loadViewBackend(store.NewResidentBackend(data))
}

// OpenView loads a saved view file through the resident storage backend:
// the whole container is read into the heap and sliced zero-copy, exactly
// like LoadViewBytes over os.ReadFile, but the returned view carries its
// Backend so Release can drop the buffer deterministically.
func (d *Document) OpenView(path string) (*MaterializedView, error) {
	be, err := store.OpenResident(path)
	if err != nil {
		return nil, loadErr(err)
	}
	return d.loadViewBackend(be)
}

// LoadViewMmap memory-maps a saved view file read-only and slices the
// page-padded segments straight out of the mapping: the view costs
// address space and page-cache pages, not heap, which is what lets a
// process hold orders of magnitude more cold views than RAM-resident
// loading allows. Validation is identical to LoadViewBytes (header
// checks, pointer bounds, fingerprint), so a truncated or corrupt file
// surfaces as ErrViewTruncated or a validation error — never a fault.
//
// The mapping stays open until Release is called on the returned view;
// after Release the view must not be read (the pages are returned to the
// kernel). On platforms without mmap support the error matches
// store.ErrMmapUnsupported via errors.Is, and callers fall back to
// OpenView.
func (d *Document) LoadViewMmap(path string) (*MaterializedView, error) {
	be, err := store.OpenMmap(path)
	if err != nil {
		return nil, loadErr(err)
	}
	mv, err := d.loadViewBackend(be)
	if err != nil {
		be.Close()
		return nil, err
	}
	return mv, nil
}

// loadViewBackend validates and adopts a backend's container image. On
// success the view owns the backend; on failure the caller does.
func (d *Document) loadViewBackend(be store.Backend) (*MaterializedView, error) {
	snap := d.snap()
	data := be.Bytes()
	if len(data) < 8 {
		return nil, loadErr(fmt.Errorf("reading fingerprint: %w", io.ErrUnexpectedEOF))
	}
	want := treeFingerprint(snap.tree)
	if got := binary.LittleEndian.Uint64(data[:8]); got != want {
		return nil, &DocMismatchError{Saved: got, Want: want}
	}
	st, err := store.ReadViewStoreBytes(data[8:])
	if err != nil {
		return nil, loadErr(err)
	}
	return newView(d, snap, st.View, nil, st, be), nil
}

// Resident reports whether the view's paged segments occupy heap memory.
// Materialized views and views loaded via LoadView/LoadViewBytes/OpenView
// are resident; LoadViewMmap views are not — their segments live in the
// file mapping. Residency is invisible to evaluation (same cursors, same
// results); it only decides what the view costs in RAM.
func (v *MaterializedView) Resident() bool {
	return v.backend == nil || v.backend.Resident()
}

// Release unwinds the view's storage backend: munmap for mmap-backed
// views, dropping the buffer reference for resident loads, a no-op for
// views materialized in memory. After releasing an mmap-backed view no
// evaluation may touch it — callers (like vjserve's residency manager)
// release only once no in-flight reader can remain. Release is
// idempotent.
func (v *MaterializedView) Release() error {
	if v.backend == nil {
		return nil
	}
	return v.backend.Close()
}

// FootprintBytes returns the page-granular size of the view's paged
// segments — the unit vjserve's residency accounting charges a view at,
// whether those pages are heap (resident tier) or mapped (cold tier).
func (v *MaterializedView) FootprintBytes() int64 { return v.st().store.SizeBytes() }

// loadErr wraps a low-level read error for LoadView, folding the two EOF
// flavors into ErrViewTruncated: io.EOF from a header read and
// io.ErrUnexpectedEOF from a partial body both mean the stream ended
// before the content the format promised.
func loadErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("viewjoin: load view: %w: %w", ErrViewTruncated, err)
	}
	return fmt.Errorf("viewjoin: load view: %w", err)
}

// treeFingerprint computes a cheap structural fingerprint of one document
// snapshot (FNV-1a over the region labels of a node sample), used to pair
// saved views with their document. It is per-snapshot: an update changes
// the fingerprint, so a view saved before an Apply does not load against
// the updated document.
func treeFingerprint(t *xmltree.Document) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v int32) {
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime64
		}
	}
	n := t.NumNodes()
	mix(int32(n))
	step := n/64 + 1
	for i := 0; i < n; i += step {
		nd := t.Node(xmltree.NodeID(i))
		mix(nd.Start)
		mix(nd.End)
		mix(nd.Level)
	}
	return h
}
