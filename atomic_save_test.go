package viewjoin

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"viewjoin/internal/testutil"
)

// TestSaveViewFileAtomic pins the write-side durability contract: a
// successful SaveViewFile leaves exactly the final container (no temp
// residue), a failed one leaves nothing at the destination, and a reader
// concurrent with repeated saves never observes a truncated container —
// the temp-file-plus-rename protocol makes every visible state either the
// old file or the complete new one.
func TestSaveViewFileAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	doc := newDocument(testutil.RandomDoc(rng, 100, nil))
	views, err := ParseViews("//a//b")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := doc.MaterializeViews(views, SchemeLEp)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "view.vjc")

	n, err := mv[0].SaveViewFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != n {
		t.Fatalf("file is %d bytes, SaveViewFile reported %d", fi.Size(), n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp residue after successful save: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after one save, want 1", len(entries))
	}
	if _, err := doc.OpenView(path); err != nil {
		t.Fatalf("saved container does not load: %v", err)
	}

	// A failing save (unwritable destination directory) leaves nothing.
	bad := filepath.Join(dir, "missing", "view.vjc")
	if _, err := mv[0].SaveViewFile(bad); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("failed save left a file: %v", err)
	}

	// Concurrent readers across repeated overwrites: every load succeeds
	// completely — never ErrViewTruncated, never a partial header.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := doc.OpenView(path)
				if err != nil {
					t.Errorf("reader during overwrites: %v", err)
					return
				}
				v.Release()
			}
		}()
	}
	for i := 0; i < 30; i++ {
		if _, err := mv[0].SaveViewFile(path); err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
