// Command vjgen writes the reproduction's deterministic benchmark datasets
// as XML, for inspection or for use with vjquery.
//
// Usage:
//
//	vjgen -xmark 0.5 > auction.xml
//	vjgen -nasa 1000 > nasa.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"viewjoin"
)

func main() {
	var (
		xmark = flag.Float64("xmark", 0, "generate an XMark-like document at this scale (1.0 = 100MB analog)")
		nasa  = flag.Int("nasa", 0, "generate a Nasa-like document with this many datasets")
		stats = flag.Bool("stats", false, "print node statistics to stderr")
	)
	flag.Parse()

	var doc *viewjoin.Document
	switch {
	case *xmark > 0 && *nasa > 0:
		fmt.Fprintln(os.Stderr, "vjgen: choose either -xmark or -nasa")
		os.Exit(2)
	case *xmark > 0:
		doc = viewjoin.GenerateXMark(*xmark)
	case *nasa > 0:
		doc = viewjoin.GenerateNasa(*nasa)
	default:
		fmt.Fprintln(os.Stderr, "vjgen: provide -xmark <scale> or -nasa <datasets>")
		os.Exit(2)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "vjgen: %d element nodes\n", doc.NumNodes())
	}
	w := bufio.NewWriter(os.Stdout)
	if err := doc.WriteXML(w); err != nil {
		fmt.Fprintln(os.Stderr, "vjgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "vjgen:", err)
		os.Exit(1)
	}
}
