// Command vjmaterialize materializes a set of views over an XML document
// (or a generated dataset) and saves them to disk for later use with
// vjquery -load. This separates the offline view-maintenance cost from
// query evaluation, the way a view-based system would run in production.
//
// Usage:
//
//	vjmaterialize -views '//field//para; //footnote' -scheme LEp -out views/ nasa.xml
//	vjmaterialize -views '//site//item' -scheme LE -out views/ -xmark 1.0
//
// Each view is written to <out>/<n>.vjview; vjquery reloads them with
// -load '<out>/*.vjview' against the same document.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"viewjoin"
)

func main() {
	var (
		viewsStr  = flag.String("views", "", "semicolon-separated view patterns to materialize")
		schemeStr = flag.String("scheme", "LEp", "storage scheme: E, LE, LEp, T")
		outDir    = flag.String("out", "views", "output directory for .vjview files")
		xmark     = flag.Float64("xmark", 0, "materialize over a generated XMark document of this scale")
		nasa      = flag.Int("nasa", 0, "materialize over a generated Nasa document with this many datasets")
	)
	flag.Parse()
	if *viewsStr == "" {
		fail("missing -views")
	}
	doc, err := loadDocument(*xmark, *nasa, flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	scheme, err := parseScheme(*schemeStr)
	if err != nil {
		fail("%v", err)
	}
	views, err := viewjoin.ParseViews(*viewsStr)
	if err != nil {
		fail("%v", err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail("%v", err)
	}
	for i, v := range views {
		mv, err := doc.MaterializeView(v, scheme, nil)
		if err != nil {
			fail("materialize %s: %v", v, err)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("%02d.vjview", i))
		f, err := os.Create(path)
		if err != nil {
			fail("%v", err)
		}
		n, err := mv.SaveView(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail("save %s: %v", path, err)
		}
		fmt.Printf("%-30s %8d entries %8d pointers %10d bytes -> %s\n",
			v, mv.NumEntries(), mv.NumPointers(), n, path)
	}
}

func loadDocument(xmarkScale float64, nasaDatasets int, path string) (*viewjoin.Document, error) {
	switch {
	case xmarkScale > 0:
		return viewjoin.GenerateXMark(xmarkScale), nil
	case nasaDatasets > 0:
		return viewjoin.GenerateNasa(nasaDatasets), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return viewjoin.ParseDocument(f)
	default:
		return nil, fmt.Errorf("provide an XML file argument, -xmark, or -nasa")
	}
}

func parseScheme(s string) (viewjoin.StorageScheme, error) {
	switch strings.ToUpper(s) {
	case "E":
		return viewjoin.SchemeElement, nil
	case "LE":
		return viewjoin.SchemeLE, nil
	case "LEP":
		return viewjoin.SchemeLEp, nil
	case "T":
		return viewjoin.SchemeTuple, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want E, LE, LEp, T)", s)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vjmaterialize: "+format+"\n", args...)
	os.Exit(1)
}
