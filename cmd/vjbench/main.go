// Command vjbench regenerates the experimental evaluation of the ViewJoin
// paper (Chen & Chan, ICDE 2010): every table and figure of §VI, over the
// deterministic XMark-like and Nasa-like datasets and the simulated paged
// store.
//
// Usage:
//
//	vjbench -exp all                 # run the whole evaluation
//	vjbench -exp fig5a               # one experiment (see -list)
//	vjbench -exp fig7 -xmark-scale 2 # bigger documents
//	vjbench -json out.json           # also write a machine-readable manifest
//	vjbench -list                    # list experiment names
//
// Profiling:
//
//	vjbench -cpuprofile cpu.pprof    # CPU profile of the run
//	vjbench -memprofile mem.pprof    # heap profile at exit
//	vjbench -pprof localhost:6060    # serve net/http/pprof while running
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"viewjoin/internal/experiments"
)

// manifestSchema identifies the JSON layout written by -json. Bump only on
// incompatible changes; consumers (scripts/bench.sh, BENCH_*.json diffs)
// key on it.
const manifestSchema = "viewjoin/bench/v1"

// manifest is the -json run report: enough provenance to compare two runs
// (git SHA, toolchain, config) plus every measurement the experiments
// emitted and the wall time each experiment took.
type manifest struct {
	Schema      string            `json:"schema"`
	GitSHA      string            `json:"gitSHA"`
	GoVersion   string            `json:"goVersion"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	StartedAt   string            `json:"startedAt"`
	Config      manifestConfig    `json:"config"`
	Experiments []experimentEntry `json:"experiments"`
	Rows        []experiments.Row `json:"rows"`
}

type manifestConfig struct {
	XMarkScale      float64 `json:"xmarkScale"`
	NasaDatasets    int     `json:"nasaDatasets"`
	Repeats         int     `json:"repeats"`
	BufferPoolPages int     `json:"bufferPoolPages"`
	IOCostPerPage   string  `json:"ioCostPerPage"`
	Parallel        int     `json:"parallel"`
	Shards          int     `json:"shards"`
}

type experimentEntry struct {
	Name      string `json:"name"`
	Title     string `json:"title"`
	WallNanos int64  `json:"wallNanos"`
	// Allocs is the number of heap allocations the experiment performed
	// (runtime mallocs delta across the run). vjbenchcmp gates on it
	// alongside wall time; absent/zero in pre-v1-allocs manifests.
	Allocs uint64 `json:"allocs,omitempty"`
}

// gitSHA resolves the commit the binary is benchmarking, or "unknown"
// outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		scale    = flag.Float64("xmark-scale", 0, "XMark scale factor (default 1.0 = 100MB analog)")
		datasets = flag.Int("nasa-datasets", 0, "Nasa dataset count (default 4000 = 23MB analog)")
		repeats  = flag.Int("repeats", 0, "timed runs per measurement (default 5)")
		pool     = flag.Int("pool", 0, "buffer pool pages (default 64)")
		ioCost   = flag.Duration("io-cost", 0, "simulated cost per page miss (default 3µs)")
		parallel = flag.Int("parallel", 0, "batch-evaluation workers in the prepared experiment (default GOMAXPROCS)")
		shards   = flag.Int("shards", 0, "intra-query partitions in the shards experiment (default 4)")
		jsonOut  = flag.String("json", "", "write a machine-readable run manifest to this file")
		pprofSrv = flag.String("pprof", "", "serve net/http/pprof on this address while running (e.g. localhost:6060)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Title)
		}
		return
	}

	if *pprofSrv != "" {
		go func() {
			if err := http.ListenAndServe(*pprofSrv, nil); err != nil {
				fmt.Fprintf(os.Stderr, "vjbench: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "vjbench: pprof at http://%s/debug/pprof/\n", *pprofSrv)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vjbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "vjbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.Config{
		XMarkScale:      *scale,
		NasaDatasets:    *datasets,
		Repeats:         *repeats,
		BufferPoolPages: *pool,
		IOCostPerPage:   *ioCost,
		Parallel:        *parallel,
		Shards:          *shards,
		Out:             os.Stdout,
	}

	var m *manifest
	if *jsonOut != "" {
		m = &manifest{
			Schema:    manifestSchema,
			GitSHA:    gitSHA(),
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			StartedAt: time.Now().UTC().Format(time.RFC3339),
			Rows:      []experiments.Row{},
		}
		cfg.Emit = func(r experiments.Row) { m.Rows = append(m.Rows, r) }
	}

	// fail finishes profiles before exiting so a crashed run still leaves
	// usable CPU/heap data.
	fail := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
		if *cpuProf != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(code)
	}

	run := func(e experiments.Experiment) {
		fmt.Printf("=== %s: %s\n", e.Name, e.Title)
		var msBefore, msAfter runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fail(1, "vjbench: %s: %v\n", e.Name, err)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&msAfter)
		if m != nil {
			m.Experiments = append(m.Experiments, experimentEntry{
				Name: e.Name, Title: e.Title, WallNanos: int64(wall),
				Allocs: msAfter.Mallocs - msBefore.Mallocs,
			})
		}
		fmt.Printf("=== %s done in %v\n\n", e.Name, wall.Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
	} else {
		e, err := experiments.ByName(*exp)
		if err != nil {
			fail(2, "vjbench: %v\n", err)
		}
		run(e)
	}

	if m != nil {
		// Record the effective (defaulted) configuration, not the zeroes
		// the flags left behind.
		eff := cfg
		if eff.XMarkScale <= 0 {
			eff.XMarkScale = 1.0
		}
		if eff.NasaDatasets <= 0 {
			eff.NasaDatasets = 4000
		}
		if eff.Repeats <= 0 {
			eff.Repeats = 5
		}
		if eff.IOCostPerPage <= 0 {
			eff.IOCostPerPage = 3 * time.Microsecond
		}
		if eff.BufferPoolPages == 0 {
			eff.BufferPoolPages = 64
		}
		if eff.Parallel <= 0 {
			eff.Parallel = runtime.GOMAXPROCS(0)
		}
		if eff.Shards <= 0 {
			eff.Shards = 4
		}
		m.Config = manifestConfig{
			XMarkScale:      eff.XMarkScale,
			NasaDatasets:    eff.NasaDatasets,
			Repeats:         eff.Repeats,
			BufferPoolPages: eff.BufferPoolPages,
			IOCostPerPage:   eff.IOCostPerPage.String(),
			Parallel:        eff.Parallel,
			Shards:          eff.Shards,
		}
		buf, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			fail(1, "vjbench: encoding manifest: %v\n", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fail(1, "vjbench: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "vjbench: wrote %s (%d rows)\n", *jsonOut, len(m.Rows))
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fail(1, "vjbench: %v\n", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(1, "vjbench: %v\n", err)
		}
		f.Close()
	}
}
