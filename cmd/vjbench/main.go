// Command vjbench regenerates the experimental evaluation of the ViewJoin
// paper (Chen & Chan, ICDE 2010): every table and figure of §VI, over the
// deterministic XMark-like and Nasa-like datasets and the simulated paged
// store.
//
// Usage:
//
//	vjbench -exp all                 # run the whole evaluation
//	vjbench -exp fig5a               # one experiment (see -list)
//	vjbench -exp fig7 -xmark-scale 2 # bigger documents
//	vjbench -list                    # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"viewjoin/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list experiments and exit")
		scale    = flag.Float64("xmark-scale", 0, "XMark scale factor (default 1.0 = 100MB analog)")
		datasets = flag.Int("nasa-datasets", 0, "Nasa dataset count (default 4000 = 23MB analog)")
		repeats  = flag.Int("repeats", 0, "timed runs per measurement (default 5)")
		pool     = flag.Int("pool", 0, "buffer pool pages (default 64)")
		ioCost   = flag.Duration("io-cost", 0, "simulated cost per page miss (default 3µs)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.Name, e.Title)
		}
		return
	}

	cfg := experiments.Config{
		XMarkScale:      *scale,
		NasaDatasets:    *datasets,
		Repeats:         *repeats,
		BufferPoolPages: *pool,
		IOCostPerPage:   *ioCost,
		Out:             os.Stdout,
	}

	run := func(e experiments.Experiment) {
		fmt.Printf("=== %s: %s\n", e.Name, e.Title)
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "vjbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s done in %v\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, err := experiments.ByName(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vjbench:", err)
		os.Exit(2)
	}
	run(e)
}
