// Command vjquery evaluates a tree pattern query over an XML file using
// materialized views, printing the matches and the evaluation statistics.
//
// Usage:
//
//	vjquery -q '//a[//f]//b//e' -views '//a//e; //b; //f' doc.xml
//	vjquery -q '//a//b//c' -views '//a//c; //b' -engine IJ -scheme T doc.xml
//	vjquery -q '//site//item' -xmark 0.5            # run against a generated doc
//	vjquery -q '//a//b' -load 'views/*.vjview' doc.xml  # reuse saved views
//	vjquery -q '//a//b//a' -general -raw doc.xml    # general query, no views
//	vjquery -q '//a//b' -views '//a; //b' -parallel 4 doc.xml # partitioned run
//	vjquery -q '//a//b' -views '//a; //b' -explain doc.xml   # EXPLAIN report
//	vjquery -q '//a//b' -views '//a; //b' -json doc.xml      # trace as JSON
//
// Engines: VJ (ViewJoin), TS (TwigStack), PS (PathStack), IJ (InterJoin).
// Schemes: E, LE, LEp, T. InterJoin requires -scheme T and path queries.
// -raw evaluates over raw element streams (TS/PS only) and is the only
// mode for -general queries with repeated element types.
//
// -explain prints a human EXPLAIN-style report (the view-segmented query
// with list bindings, per-phase self times, per-node costs); -json writes
// the same trace as one stable JSON document (schema viewjoin/trace/v1) to
// stdout, moving all human-readable output to stderr. With both flags the
// JSON document owns stdout and the EXPLAIN text goes to stderr.
//
// Exit status: 0 on success, 2 when the query or views fail to parse, 3
// when evaluation fails, 1 for any other error. Failures are reported on
// stderr as one-line JSON: {"stage":"parse"|"evaluate"|..., "error":"..."}.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"viewjoin"
	"viewjoin/internal/obs"
)

// Exit statuses. Parse and evaluate failures are distinguished so scripts
// can tell a bad query from a query the chosen engine cannot answer.
const (
	exitOther    = 1
	exitParse    = 2
	exitEvaluate = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, for testing: it parses args,
// evaluates, writes to the given streams and returns the exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vjquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		queryStr  = fs.String("q", "", "tree pattern query (XPath fragment with /, //, [])")
		viewsStr  = fs.String("views", "", "semicolon-separated covering views (default: one single-node view per query node)")
		engineStr = fs.String("engine", "VJ", "evaluation engine: VJ, TS, PS, IJ")
		schemeStr = fs.String("scheme", "LEp", "view storage scheme: E, LE, LEp, T")
		diskBased = fs.Bool("disk", false, "use the disk-based output approach")
		xmark     = fs.Float64("xmark", 0, "evaluate over a generated XMark document of this scale instead of a file")
		nasa      = fs.Int("nasa", 0, "evaluate over a generated Nasa document with this many datasets instead of a file")
		maxPrint  = fs.Int("n", 10, "fetch and print at most this many matches — pushed into the engine as a first-k bound (0 = full run, no match output)")
		limit     = fs.Int("limit", 0, "fetch at most this many matches in document order (overrides -n as the engine bound; 0 = -n governs)")
		offset    = fs.Int("offset", 0, "skip this many matches before the first returned one (applied before -limit, as SQL OFFSET)")
		loadGlob  = fs.String("load", "", "load saved views matching this glob (from vjmaterialize) instead of materializing")
		raw       = fs.Bool("raw", false, "evaluate over raw element streams without views (TS/PS only)")
		general   = fs.Bool("general", false, "allow repeated element types in the query (implies -raw)")
		parallel  = fs.Int("parallel", 0, "evaluate with up to this many range partitions (0 or 1 = sequential, -1 = GOMAXPROCS)")
		explain   = fs.Bool("explain", false, "print an EXPLAIN-style report: plan, per-phase and per-node costs")
		jsonOut   = fs.Bool("json", false, "write the evaluation trace as one JSON document to stdout")
	)
	if err := fs.Parse(args); err != nil {
		return exitOther
	}
	if *queryStr == "" {
		return fail(stderr, "usage", fmt.Errorf("missing -q query"), exitOther)
	}

	// Human-readable output moves to stderr when stdout carries the JSON
	// trace document.
	human := stdout
	if *jsonOut {
		human = stderr
	}

	// Tracing is on whenever a report is requested.
	var rec *obs.Recorder
	if *explain || *jsonOut {
		rec = obs.NewRecorder()
	}
	// -n doubles as the fetch limit: there is no distinction between "print
	// at most n" and "fetch at most n" anymore — both push the bound into
	// the engine, which then stops (or caps its accumulation) at
	// offset+limit matches. -n 0 keeps the historical count-only full run;
	// an explicit -limit wins over -n.
	effLimit := *limit
	if effLimit <= 0 && *maxPrint > 0 {
		effLimit = *maxPrint
	}
	opts := &viewjoin.EvalOptions{
		DiskBased:   *diskBased,
		Parallelism: *parallel,
		Limit:       effLimit,
		Offset:      *offset,
	}
	if rec != nil {
		opts.Tracer = rec
	}

	doc, err := loadDocument(*xmark, *nasa, fs.Arg(0))
	if err != nil {
		return fail(stderr, "load", err, exitOther)
	}
	if rec != nil {
		rec.BeginPhase(obs.PhaseParse)
	}
	parse := viewjoin.ParseQuery
	if *general {
		parse = viewjoin.ParseQueryGeneral
		*raw = true
	}
	query, parseErr := parse(*queryStr)
	if rec != nil {
		rec.EndPhase(obs.PhaseParse)
	}
	if parseErr != nil {
		return fail(stderr, "parse", parseErr, exitParse)
	}
	engine, err := parseEngine(*engineStr)
	if err != nil {
		return fail(stderr, "parse", err, exitParse)
	}

	if *raw {
		if engine == viewjoin.EngineViewJoin {
			engine = viewjoin.EngineTwigStack // raw streams: holistic default
		}
		res, err := viewjoin.EvaluateWithoutViews(doc, query, engine, opts)
		if err != nil {
			return fail(stderr, "evaluate", err, exitEvaluate)
		}
		fmt.Fprintf(human, "document: %d nodes; raw element streams (no views)\n", doc.NumNodes())
		printResult(human, query, engine, res, *maxPrint, effLimit, *offset)
		return report(stdout, human, res, *explain, *jsonOut, stderr)
	}

	if *loadGlob != "" {
		paths, err := filepath.Glob(*loadGlob)
		if err != nil {
			return fail(stderr, "load", err, exitOther)
		}
		if len(paths) == 0 {
			return fail(stderr, "load", fmt.Errorf("no view files match %q", *loadGlob), exitOther)
		}
		sort.Strings(paths)
		var mviews []*viewjoin.MaterializedView
		var totalBytes int64
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				return fail(stderr, "load", err, exitOther)
			}
			mv, err := doc.LoadViewBytes(data)
			if err != nil {
				return fail(stderr, "load", fmt.Errorf("load %s: %w", p, err), exitOther)
			}
			mviews = append(mviews, mv)
			totalBytes += mv.SizeBytes()
		}
		res, err := viewjoin.Evaluate(doc, query, mviews, engine, opts)
		if err != nil {
			return fail(stderr, "evaluate", err, exitEvaluate)
		}
		fmt.Fprintf(human, "document: %d nodes; %d loaded views (%d bytes)\n", doc.NumNodes(), len(mviews), totalBytes)
		printResult(human, query, engine, res, *maxPrint, effLimit, *offset)
		return report(stdout, human, res, *explain, *jsonOut, stderr)
	}

	if *viewsStr == "" {
		var parts []string
		for _, l := range query.Labels() {
			parts = append(parts, "//"+l)
		}
		*viewsStr = strings.Join(parts, "; ")
	}
	if rec != nil {
		rec.BeginPhase(obs.PhaseParse)
	}
	views, parseErr := viewjoin.ParseViews(*viewsStr)
	if rec != nil {
		rec.EndPhase(obs.PhaseParse)
	}
	if parseErr != nil {
		return fail(stderr, "parse", parseErr, exitParse)
	}
	if err := viewjoin.ValidateViewSet(query, views); err != nil {
		return fail(stderr, "validate", err, exitOther)
	}

	scheme, err := parseScheme(*schemeStr)
	if err != nil {
		return fail(stderr, "parse", err, exitParse)
	}

	mviews, err := doc.MaterializeViews(views, scheme)
	if err != nil {
		return fail(stderr, "materialize", err, exitOther)
	}
	var totalBytes int64
	var totalPointers int
	for _, mv := range mviews {
		totalBytes += mv.SizeBytes()
		totalPointers += mv.NumPointers()
	}

	res, err := viewjoin.Evaluate(doc, query, mviews, engine, opts)
	if err != nil {
		return fail(stderr, "evaluate", err, exitEvaluate)
	}

	fmt.Fprintf(human, "document: %d nodes; views: %d (%s scheme, %d bytes, %d pointers)\n",
		doc.NumNodes(), len(views), scheme, totalBytes, totalPointers)
	printResult(human, query, engine, res, *maxPrint, effLimit, *offset)
	return report(stdout, human, res, *explain, *jsonOut, stderr)
}

// report renders the requested trace views: the EXPLAIN text on the human
// stream, the JSON document alone on stdout.
func report(stdout, human io.Writer, res *viewjoin.Result, explain, jsonOut bool, stderr io.Writer) int {
	if res.Trace == nil {
		return 0
	}
	if explain {
		if err := res.Trace.WriteExplain(human); err != nil {
			return fail(stderr, "report", err, exitOther)
		}
	}
	if jsonOut {
		if err := res.Trace.WriteJSON(stdout); err != nil {
			return fail(stderr, "report", err, exitOther)
		}
	}
	return 0
}

// printResult reports the match count, evaluation statistics, and up to
// maxPrint matches. maxPrint <= 0 suppresses all match output, header
// included (stats still print). limit/offset annotate the header when the
// run was paged, since the reported count is then the page's, not the
// full result's.
func printResult(w io.Writer, query *viewjoin.Query, engine viewjoin.Engine, res *viewjoin.Result, maxPrint, limit, offset int) {
	fmt.Fprintf(w, "stats: scanned=%d comparisons=%d derefs=%d pagesRead=%d pagesWritten=%d partitions=%d ttfm=%v\n",
		res.Stats.ElementsScanned, res.Stats.Comparisons, res.Stats.PointerDerefs,
		res.Stats.PagesRead, res.Stats.PagesWritten, res.Stats.Partitions,
		time.Duration(res.Stats.FirstMatchNanos))
	if maxPrint <= 0 {
		return
	}
	page := ""
	if limit > 0 && offset > 0 {
		page = fmt.Sprintf(" (limit %d, offset %d)", limit, offset)
	} else if limit > 0 {
		page = fmt.Sprintf(" (limit %d)", limit)
	} else if offset > 0 {
		page = fmt.Sprintf(" (offset %d)", offset)
	}
	fmt.Fprintf(w, "query %s via %s: %d matches in %v%s\n", query, engine, len(res.Matches), res.Stats.Duration, page)
	labels := query.Labels()
	for i, m := range res.Matches {
		if i >= maxPrint {
			fmt.Fprintf(w, "... and %d more\n", len(res.Matches)-i)
			break
		}
		var parts []string
		for j, n := range m {
			parts = append(parts, fmt.Sprintf("%s@%d", labels[j], n.Start))
		}
		fmt.Fprintln(w, " ", strings.Join(parts, " "))
	}
}

func loadDocument(xmarkScale float64, nasaDatasets int, path string) (*viewjoin.Document, error) {
	switch {
	case xmarkScale > 0:
		return viewjoin.GenerateXMark(xmarkScale), nil
	case nasaDatasets > 0:
		return viewjoin.GenerateNasa(nasaDatasets), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return viewjoin.ParseDocument(f)
	default:
		return nil, fmt.Errorf("provide an XML file argument, -xmark, or -nasa")
	}
}

func parseScheme(s string) (viewjoin.StorageScheme, error) {
	switch strings.ToUpper(s) {
	case "E":
		return viewjoin.SchemeElement, nil
	case "LE":
		return viewjoin.SchemeLE, nil
	case "LEP":
		return viewjoin.SchemeLEp, nil
	case "T":
		return viewjoin.SchemeTuple, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want E, LE, LEp, T)", s)
}

func parseEngine(s string) (viewjoin.Engine, error) {
	switch strings.ToUpper(s) {
	case "VJ":
		return viewjoin.EngineViewJoin, nil
	case "TS":
		return viewjoin.EngineTwigStack, nil
	case "PS":
		return viewjoin.EnginePathStack, nil
	case "IJ":
		return viewjoin.EngineInterJoin, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want VJ, TS, PS, IJ)", s)
}

// fail reports one failure as a single JSON line on stderr and returns the
// exit status, so scripts can match on both the code and the stage.
func fail(stderr io.Writer, stage string, err error, code int) int {
	line, _ := json.Marshal(struct {
		Stage string `json:"stage"`
		Error string `json:"error"`
	}{Stage: stage, Error: err.Error()})
	fmt.Fprintf(stderr, "%s\n", line)
	return code
}
