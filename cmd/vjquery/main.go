// Command vjquery evaluates a tree pattern query over an XML file using
// materialized views, printing the matches and the evaluation statistics.
//
// Usage:
//
//	vjquery -q '//a[//f]//b//e' -views '//a//e; //b; //f' doc.xml
//	vjquery -q '//a//b//c' -views '//a//c; //b' -engine IJ -scheme T doc.xml
//	vjquery -q '//site//item' -xmark 0.5            # run against a generated doc
//	vjquery -q '//a//b' -load 'views/*.vjview' doc.xml  # reuse saved views
//	vjquery -q '//a//b//a' -general -raw doc.xml    # general query, no views
//
// Engines: VJ (ViewJoin), TS (TwigStack), PS (PathStack), IJ (InterJoin).
// Schemes: E, LE, LEp, T. InterJoin requires -scheme T and path queries.
// -raw evaluates over raw element streams (TS/PS only) and is the only
// mode for -general queries with repeated element types.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"viewjoin"
)

func main() {
	var (
		queryStr  = flag.String("q", "", "tree pattern query (XPath fragment with /, //, [])")
		viewsStr  = flag.String("views", "", "semicolon-separated covering views (default: one single-node view per query node)")
		engineStr = flag.String("engine", "VJ", "evaluation engine: VJ, TS, PS, IJ")
		schemeStr = flag.String("scheme", "LEp", "view storage scheme: E, LE, LEp, T")
		diskBased = flag.Bool("disk", false, "use the disk-based output approach")
		xmark     = flag.Float64("xmark", 0, "evaluate over a generated XMark document of this scale instead of a file")
		nasa      = flag.Int("nasa", 0, "evaluate over a generated Nasa document with this many datasets instead of a file")
		maxPrint  = flag.Int("n", 10, "print at most this many matches (0 = none)")
		loadGlob  = flag.String("load", "", "load saved views matching this glob (from vjmaterialize) instead of materializing")
		raw       = flag.Bool("raw", false, "evaluate over raw element streams without views (TS/PS only)")
		general   = flag.Bool("general", false, "allow repeated element types in the query (implies -raw)")
	)
	flag.Parse()
	if *queryStr == "" {
		fail("missing -q query")
	}

	doc, err := loadDocument(*xmark, *nasa, flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	parse := viewjoin.ParseQuery
	if *general {
		parse = viewjoin.ParseQueryGeneral
		*raw = true
	}
	query, err := parse(*queryStr)
	if err != nil {
		fail("%v", err)
	}
	engine, err := parseEngine(*engineStr)
	if err != nil {
		fail("%v", err)
	}

	if *raw {
		if engine == viewjoin.EngineViewJoin {
			engine = viewjoin.EngineTwigStack // raw streams: holistic default
		}
		res, err := viewjoin.EvaluateWithoutViews(doc, query, engine, nil)
		if err != nil {
			fail("evaluate: %v", err)
		}
		fmt.Printf("document: %d nodes; raw element streams (no views)\n", doc.NumNodes())
		printResult(query, engine, res, *maxPrint)
		return
	}

	if *loadGlob != "" {
		paths, err := filepath.Glob(*loadGlob)
		if err != nil {
			fail("%v", err)
		}
		if len(paths) == 0 {
			fail("no view files match %q", *loadGlob)
		}
		sort.Strings(paths)
		var mviews []*viewjoin.MaterializedView
		var totalBytes int64
		for _, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				fail("%v", err)
			}
			mv, err := doc.LoadView(f)
			f.Close()
			if err != nil {
				fail("load %s: %v", p, err)
			}
			mviews = append(mviews, mv)
			totalBytes += mv.SizeBytes()
		}
		res, err := viewjoin.Evaluate(doc, query, mviews, engine, nil)
		if err != nil {
			fail("evaluate: %v", err)
		}
		fmt.Printf("document: %d nodes; %d loaded views (%d bytes)\n", doc.NumNodes(), len(mviews), totalBytes)
		printResult(query, engine, res, *maxPrint)
		return
	}

	if *viewsStr == "" {
		var parts []string
		for _, l := range query.Labels() {
			parts = append(parts, "//"+l)
		}
		*viewsStr = strings.Join(parts, "; ")
	}
	views, err := viewjoin.ParseViews(*viewsStr)
	if err != nil {
		fail("%v", err)
	}
	if err := viewjoin.ValidateViewSet(query, views); err != nil {
		fail("%v", err)
	}

	scheme, err := parseScheme(*schemeStr)
	if err != nil {
		fail("%v", err)
	}

	mviews, err := doc.MaterializeViews(views, scheme)
	if err != nil {
		fail("materialize: %v", err)
	}
	var totalBytes int64
	var totalPointers int
	for _, mv := range mviews {
		totalBytes += mv.SizeBytes()
		totalPointers += mv.NumPointers()
	}

	res, err := viewjoin.Evaluate(doc, query, mviews, engine, &viewjoin.EvalOptions{DiskBased: *diskBased})
	if err != nil {
		fail("evaluate: %v", err)
	}

	fmt.Printf("document: %d nodes; views: %d (%s scheme, %d bytes, %d pointers)\n",
		doc.NumNodes(), len(views), scheme, totalBytes, totalPointers)
	printResult(query, engine, res, *maxPrint)
}

// printResult reports the match count, evaluation statistics, and up to
// maxPrint matches.
func printResult(query *viewjoin.Query, engine viewjoin.Engine, res *viewjoin.Result, maxPrint int) {
	fmt.Printf("query %s via %s: %d matches in %v\n", query, engine, len(res.Matches), res.Stats.Duration)
	fmt.Printf("stats: scanned=%d comparisons=%d derefs=%d pagesRead=%d pagesWritten=%d\n",
		res.Stats.ElementsScanned, res.Stats.Comparisons, res.Stats.PointerDerefs,
		res.Stats.PagesRead, res.Stats.PagesWritten)
	labels := query.Labels()
	for i, m := range res.Matches {
		if i >= maxPrint {
			fmt.Printf("... and %d more\n", len(res.Matches)-i)
			break
		}
		var parts []string
		for j, n := range m {
			parts = append(parts, fmt.Sprintf("%s@%d", labels[j], n.Start))
		}
		fmt.Println(" ", strings.Join(parts, " "))
	}
}

func loadDocument(xmarkScale float64, nasaDatasets int, path string) (*viewjoin.Document, error) {
	switch {
	case xmarkScale > 0:
		return viewjoin.GenerateXMark(xmarkScale), nil
	case nasaDatasets > 0:
		return viewjoin.GenerateNasa(nasaDatasets), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return viewjoin.ParseDocument(f)
	default:
		return nil, fmt.Errorf("provide an XML file argument, -xmark, or -nasa")
	}
}

func parseScheme(s string) (viewjoin.StorageScheme, error) {
	switch strings.ToUpper(s) {
	case "E":
		return viewjoin.SchemeElement, nil
	case "LE":
		return viewjoin.SchemeLE, nil
	case "LEP":
		return viewjoin.SchemeLEp, nil
	case "T":
		return viewjoin.SchemeTuple, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want E, LE, LEp, T)", s)
}

func parseEngine(s string) (viewjoin.Engine, error) {
	switch strings.ToUpper(s) {
	case "VJ":
		return viewjoin.EngineViewJoin, nil
	case "TS":
		return viewjoin.EngineTwigStack, nil
	case "PS":
		return viewjoin.EnginePathStack, nil
	case "IJ":
		return viewjoin.EngineInterJoin, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want VJ, TS, PS, IJ)", s)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vjquery: "+format+"\n", args...)
	os.Exit(1)
}
