package main

import (
	"os"
	"path/filepath"
	"testing"

	"viewjoin"
)

func TestParseScheme(t *testing.T) {
	cases := map[string]viewjoin.StorageScheme{
		"E": viewjoin.SchemeElement, "e": viewjoin.SchemeElement,
		"LE": viewjoin.SchemeLE, "le": viewjoin.SchemeLE,
		"LEp": viewjoin.SchemeLEp, "LEP": viewjoin.SchemeLEp,
		"T": viewjoin.SchemeTuple, "t": viewjoin.SchemeTuple,
	}
	for in, want := range cases {
		got, err := parseScheme(in)
		if err != nil || got != want {
			t.Errorf("parseScheme(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseScheme("zz"); err == nil {
		t.Errorf("unknown scheme: expected error")
	}
}

func TestParseEngine(t *testing.T) {
	cases := map[string]viewjoin.Engine{
		"VJ": viewjoin.EngineViewJoin, "vj": viewjoin.EngineViewJoin,
		"TS": viewjoin.EngineTwigStack, "PS": viewjoin.EnginePathStack,
		"IJ": viewjoin.EngineInterJoin,
	}
	for in, want := range cases {
		got, err := parseEngine(in)
		if err != nil || got != want {
			t.Errorf("parseEngine(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseEngine("zz"); err == nil {
		t.Errorf("unknown engine: expected error")
	}
}

func TestLoadDocument(t *testing.T) {
	if d, err := loadDocument(0.01, 0, ""); err != nil || d.NumNodes() == 0 {
		t.Errorf("xmark: %v", err)
	}
	if d, err := loadDocument(0, 10, ""); err != nil || d.NumNodes() == 0 {
		t.Errorf("nasa: %v", err)
	}
	if _, err := loadDocument(0, 0, ""); err == nil {
		t.Errorf("no source: expected error")
	}
	if _, err := loadDocument(0, 0, "/nonexistent.xml"); err == nil {
		t.Errorf("missing file: expected error")
	}

	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte("<a><b/></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDocument(0, 0, path)
	if err != nil || d.NumNodes() != 2 {
		t.Errorf("file: %v, %d nodes", err, d.NumNodes())
	}
}
