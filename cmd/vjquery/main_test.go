package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"viewjoin"
)

func TestParseScheme(t *testing.T) {
	cases := map[string]viewjoin.StorageScheme{
		"E": viewjoin.SchemeElement, "e": viewjoin.SchemeElement,
		"LE": viewjoin.SchemeLE, "le": viewjoin.SchemeLE,
		"LEp": viewjoin.SchemeLEp, "LEP": viewjoin.SchemeLEp,
		"T": viewjoin.SchemeTuple, "t": viewjoin.SchemeTuple,
	}
	for in, want := range cases {
		got, err := parseScheme(in)
		if err != nil || got != want {
			t.Errorf("parseScheme(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseScheme("zz"); err == nil {
		t.Errorf("unknown scheme: expected error")
	}
}

func TestParseEngine(t *testing.T) {
	cases := map[string]viewjoin.Engine{
		"VJ": viewjoin.EngineViewJoin, "vj": viewjoin.EngineViewJoin,
		"TS": viewjoin.EngineTwigStack, "PS": viewjoin.EnginePathStack,
		"IJ": viewjoin.EngineInterJoin,
	}
	for in, want := range cases {
		got, err := parseEngine(in)
		if err != nil || got != want {
			t.Errorf("parseEngine(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseEngine("zz"); err == nil {
		t.Errorf("unknown engine: expected error")
	}
}

func TestLoadDocument(t *testing.T) {
	if d, err := loadDocument(0.01, 0, ""); err != nil || d.NumNodes() == 0 {
		t.Errorf("xmark: %v", err)
	}
	if d, err := loadDocument(0, 10, ""); err != nil || d.NumNodes() == 0 {
		t.Errorf("nasa: %v", err)
	}
	if _, err := loadDocument(0, 0, ""); err == nil {
		t.Errorf("no source: expected error")
	}
	if _, err := loadDocument(0, 0, "/nonexistent.xml"); err == nil {
		t.Errorf("missing file: expected error")
	}

	path := filepath.Join(t.TempDir(), "doc.xml")
	if err := os.WriteFile(path, []byte("<a><b/></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDocument(0, 0, path)
	if err != nil || d.NumNodes() != 2 {
		t.Errorf("file: %v, %d nodes", err, d.NumNodes())
	}
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func writeDoc(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "doc.xml")
	doc := `<r><a><b><c/><e/></b><e/></a><a><f/><b><c/><c/><e/></b><e/></a></r>`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSuccess(t *testing.T) {
	path := writeDoc(t)
	code, out, errOut := runCLI(t, "-q", "//a[//f]//b//e", "-views", "//a//e; //b; //f", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "matches in") || !strings.Contains(out, "stats:") {
		t.Errorf("missing result output:\n%s", out)
	}
}

func TestRunJSONReport(t *testing.T) {
	path := writeDoc(t)
	code, out, errOut := runCLI(t,
		"-q", "//a[//f]//b//e", "-views", "//a//e; //b; //f", "-explain", "-json", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	// stdout must be exactly one JSON document.
	var rep map[string]any
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("stdout is not one JSON document: %v\n%s", err, out)
	}
	if rep["schema"] != "viewjoin/trace/v1" {
		t.Errorf("schema = %v", rep["schema"])
	}
	for _, key := range []string{"plan", "phases", "nodes", "events", "counters", "pageHits", "pageMisses"} {
		if _, ok := rep[key]; !ok {
			t.Errorf("JSON report missing %q", key)
		}
	}
	// The human EXPLAIN moved to stderr.
	if !strings.Contains(errOut, "via VJ") || !strings.Contains(errOut, "segment") {
		t.Errorf("explain text missing from stderr:\n%s", errOut)
	}
}

func TestRunExplainOnly(t *testing.T) {
	path := writeDoc(t)
	code, out, errOut := runCLI(t,
		"-q", "//a[//f]//b//e", "-views", "//a//e; //b; //f", "-explain", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"via VJ", "segment", "buffer pool:", "phase"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(errOut, "via VJ") {
		t.Errorf("explain leaked to stderr without -json")
	}
}

func TestRunParseFailureExitCode(t *testing.T) {
	path := writeDoc(t)
	code, _, errOut := runCLI(t, "-q", "//a[[", path)
	if code != exitParse {
		t.Fatalf("exit %d, want %d; stderr: %s", code, exitParse, errOut)
	}
	var e struct{ Stage, Error string }
	if err := json.Unmarshal([]byte(strings.TrimSpace(errOut)), &e); err != nil {
		t.Fatalf("stderr is not one JSON line: %v\n%s", err, errOut)
	}
	if e.Stage != "parse" || e.Error == "" {
		t.Errorf("structured error = %+v", e)
	}
}

func TestRunEvaluateFailureExitCode(t *testing.T) {
	path := writeDoc(t)
	// InterJoin over a branching query: evaluation (not parsing) fails.
	code, _, errOut := runCLI(t,
		"-q", "//a[//f]//b//e", "-views", "//a//e; //b; //f", "-engine", "IJ", "-scheme", "T", path)
	if code != exitEvaluate {
		t.Fatalf("exit %d, want %d; stderr: %s", code, exitEvaluate, errOut)
	}
	var e struct{ Stage, Error string }
	if err := json.Unmarshal([]byte(strings.TrimSpace(errOut)), &e); err != nil {
		t.Fatalf("stderr is not one JSON line: %v\n%s", err, errOut)
	}
	if e.Stage != "evaluate" {
		t.Errorf("stage = %q, want evaluate", e.Stage)
	}
}

func TestRunOtherFailureExitCode(t *testing.T) {
	if code, _, _ := runCLI(t, "-q", "//a//b"); code != exitOther {
		t.Errorf("no document: exit %d, want %d", code, exitOther)
	}
	if code, _, _ := runCLI(t); code != exitOther {
		t.Errorf("no query: exit %d, want %d", code, exitOther)
	}
	path := writeDoc(t)
	if code, _, _ := runCLI(t, "-q", "//a//b", "-views", "//a", path); code != exitOther {
		t.Errorf("invalid view set: exit %d, want %d", code, exitOther)
	}
}

func TestRunNZeroSuppressesMatchOutput(t *testing.T) {
	path := writeDoc(t)
	code, out, errOut := runCLI(t, "-q", "//a//e", "-views", "//a//e", "-n", "0", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if strings.Contains(out, "matches in") || strings.Contains(out, "@") {
		t.Errorf("-n 0 must suppress the match header and rows:\n%s", out)
	}
	if !strings.Contains(out, "stats:") {
		t.Errorf("-n 0 must keep the stats line:\n%s", out)
	}
}
