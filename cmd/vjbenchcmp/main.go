// Command vjbenchcmp diffs two vjbench JSON manifests (schema
// viewjoin/bench/v1): it prints the per-experiment wall-time deltas and
// exits non-zero when any experiment present in both runs regressed by more
// than the threshold (default 10%).
//
// Usage:
//
//	vjbenchcmp old.json new.json
//	vjbenchcmp -threshold 0.25 old.json new.json
//
// Experiments present in only one manifest are reported as added/removed,
// never as regressions. Wall times are noisy; the threshold is meant to
// catch structural slowdowns, not scheduler jitter — rerun before trusting
// a marginal failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

const wantSchema = "viewjoin/bench/v1"

type manifest struct {
	Schema      string `json:"schema"`
	GitSHA      string `json:"gitSHA"`
	Experiments []struct {
		Name      string `json:"name"`
		WallNanos int64  `json:"wallNanos"`
	} `json:"experiments"`
}

func load(path string) (*manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if m.Schema != wantSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, m.Schema, wantSchema)
	}
	return &m, nil
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "regression threshold as a fraction of the old wall time")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: vjbenchcmp [-threshold f] old.json new.json")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vjbenchcmp:", err)
		os.Exit(2)
	}
	neu, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vjbenchcmp:", err)
		os.Exit(2)
	}

	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n\n",
		flag.Arg(0), short(old.GitSHA), flag.Arg(1), short(neu.GitSHA))
	fmt.Printf("%-12s %12s %12s %9s\n", "experiment", "old", "new", "delta")

	oldWall := make(map[string]int64, len(old.Experiments))
	for _, e := range old.Experiments {
		oldWall[e.Name] = e.WallNanos
	}
	seen := make(map[string]bool, len(neu.Experiments))
	regressions := 0
	for _, e := range neu.Experiments {
		seen[e.Name] = true
		ow, ok := oldWall[e.Name]
		if !ok {
			fmt.Printf("%-12s %12s %12s %9s\n", e.Name, "-", fmtNanos(e.WallNanos), "added")
			continue
		}
		delta := float64(e.WallNanos-ow) / float64(ow)
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-12s %12s %12s %+8.1f%%%s\n",
			e.Name, fmtNanos(ow), fmtNanos(e.WallNanos), delta*100, mark)
	}
	for _, e := range old.Experiments {
		if !seen[e.Name] {
			fmt.Printf("%-12s %12s %12s %9s\n", e.Name, fmtNanos(e.WallNanos), "-", "removed")
		}
	}

	if regressions > 0 {
		fmt.Printf("\n%d experiment(s) regressed by more than %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("\nno regressions")
}

func fmtNanos(n int64) string {
	d := time.Duration(n)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
