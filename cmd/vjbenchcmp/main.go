// Command vjbenchcmp diffs two vjbench JSON manifests (schema
// viewjoin/bench/v1): it prints the per-experiment wall-time and
// allocation deltas and exits non-zero when any experiment present in both
// runs regressed by more than the threshold (default 10%) on either axis.
//
// Usage:
//
//	vjbenchcmp old.json new.json
//	vjbenchcmp -threshold 0.25 old.json new.json
//
// Experiments present in only one manifest are reported as added/removed,
// never as regressions. Allocation counts are only compared when both
// manifests carry them (older manifests predate the field); unlike wall
// time they are near-deterministic, so an alloc regression is a real code
// change, not noise. Wall times are noisy; the threshold is meant to catch
// structural slowdowns, not scheduler jitter — rerun before trusting a
// marginal failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

const wantSchema = "viewjoin/bench/v1"

type manifest struct {
	Schema      string `json:"schema"`
	GitSHA      string `json:"gitSHA"`
	Experiments []struct {
		Name      string `json:"name"`
		WallNanos int64  `json:"wallNanos"`
		Allocs    uint64 `json:"allocs"`
	} `json:"experiments"`
}

func load(path string) (*manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if m.Schema != wantSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, m.Schema, wantSchema)
	}
	return &m, nil
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "regression threshold as a fraction of the old value (wall time and allocs)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: vjbenchcmp [-threshold f] old.json new.json")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vjbenchcmp:", err)
		os.Exit(2)
	}
	neu, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vjbenchcmp:", err)
		os.Exit(2)
	}

	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n\n",
		flag.Arg(0), short(old.GitSHA), flag.Arg(1), short(neu.GitSHA))
	fmt.Printf("%-12s %12s %12s %9s %14s %14s %9s\n",
		"experiment", "old", "new", "delta", "old allocs", "new allocs", "delta")

	type oldEntry struct {
		wall   int64
		allocs uint64
	}
	oldBy := make(map[string]oldEntry, len(old.Experiments))
	for _, e := range old.Experiments {
		oldBy[e.Name] = oldEntry{e.WallNanos, e.Allocs}
	}
	seen := make(map[string]bool, len(neu.Experiments))
	regressions := 0
	for _, e := range neu.Experiments {
		seen[e.Name] = true
		o, ok := oldBy[e.Name]
		if !ok {
			fmt.Printf("%-12s %12s %12s %9s %14s %14s %9s\n",
				e.Name, "-", fmtNanos(e.WallNanos), "added", "-", fmtAllocs(e.Allocs), "")
			continue
		}
		wallDelta := float64(e.WallNanos-o.wall) / float64(o.wall)
		mark := ""
		if wallDelta > *threshold {
			mark = "  REGRESSION(time)"
			regressions++
		}
		// Allocs are gated only when both runs recorded them: a zero count
		// means the manifest predates the field (or the experiment genuinely
		// never allocated, in which case there is nothing to regress from
		// measurably either).
		allocsStr, allocsDeltaStr := "-", ""
		if o.allocs > 0 && e.Allocs > 0 {
			allocsDelta := float64(e.Allocs) - float64(o.allocs)
			rel := allocsDelta / float64(o.allocs)
			allocsStr = fmtAllocs(e.Allocs)
			allocsDeltaStr = fmt.Sprintf("%+8.1f%%", rel*100)
			if rel > *threshold {
				mark += "  REGRESSION(allocs)"
				regressions++
			}
		} else if e.Allocs > 0 {
			allocsStr = fmtAllocs(e.Allocs)
		}
		fmt.Printf("%-12s %12s %12s %+8.1f%% %14s %14s %9s%s\n",
			e.Name, fmtNanos(o.wall), fmtNanos(e.WallNanos), wallDelta*100,
			fmtAllocs(o.allocs), allocsStr, allocsDeltaStr, mark)
	}
	for _, e := range old.Experiments {
		if !seen[e.Name] {
			fmt.Printf("%-12s %12s %12s %9s\n", e.Name, fmtNanos(e.WallNanos), "-", "removed")
		}
	}

	if regressions > 0 {
		fmt.Printf("\n%d regression(s) of more than %.0f%% (wall time or allocs)\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("\nno regressions")
}

func fmtNanos(n int64) string {
	d := time.Duration(n)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtAllocs(n uint64) string {
	switch {
	case n == 0:
		return "-"
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
