// Command vjbenchcmp diffs two vjbench or vjload JSON manifests. The
// schema is auto-detected from the files; both must carry the same one.
//
// For viewjoin/bench/v1 it prints the per-experiment wall-time and
// allocation deltas and exits non-zero when any experiment present in both
// runs regressed by more than the threshold (default 10%) on either axis.
//
// For viewjoin/load/v1 it diffs the serving latency quantiles
// (p50/p95/p99), the time-to-first-match quantiles, and the achieved QPS:
// a quantile growing past the threshold, or throughput dropping past it,
// is a regression.
//
// Usage:
//
//	vjbenchcmp old.json new.json
//	vjbenchcmp -threshold 0.25 old.json new.json
//	vjbenchcmp baseline.load.json fresh.load.json
//
// Experiments present in only one manifest are reported as added/removed,
// never as regressions. Allocation counts are only compared when both
// manifests carry them (older manifests predate the field); unlike wall
// time they are near-deterministic, so an alloc regression is a real code
// change, not noise. Wall times and serving latencies are noisy; the
// threshold is meant to catch structural slowdowns, not scheduler jitter —
// rerun before trusting a marginal failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

const (
	benchSchema = "viewjoin/bench/v1"
	loadSchema  = "viewjoin/load/v1"
)

type benchManifest struct {
	Schema      string `json:"schema"`
	GitSHA      string `json:"gitSHA"`
	Experiments []struct {
		Name      string `json:"name"`
		WallNanos int64  `json:"wallNanos"`
		Allocs    uint64 `json:"allocs"`
	} `json:"experiments"`
}

type loadManifest struct {
	Schema       string        `json:"schema"`
	GitSHA       string        `json:"gitSHA"`
	Sent         int64         `json:"sent"`
	Completed    int64         `json:"completed"`
	Shed         int64         `json:"shed"`
	Timeouts     int64         `json:"timeouts"`
	Errors       int64         `json:"errors"`
	AchievedQPS  float64       `json:"achievedQPS"`
	LatencyUS    loadQuantiles `json:"latencyUS"`
	FirstMatchUS loadQuantiles `json:"firstMatchUS"`
}

type loadQuantiles struct {
	N      int64 `json:"n"`
	P50US  int64 `json:"p50US"`
	P95US  int64 `json:"p95US"`
	P99US  int64 `json:"p99US"`
	P999US int64 `json:"p999US"`
}

// readSchema peeks at the manifest's schema field without committing to a
// layout.
func readSchema(path string) (string, []byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(buf, &probe); err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	return probe.Schema, buf, nil
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "regression threshold as a fraction of the old value")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: vjbenchcmp [-threshold f] old.json new.json")
		os.Exit(2)
	}
	oldSchema, oldBuf, err := readSchema(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vjbenchcmp:", err)
		os.Exit(2)
	}
	newSchema, newBuf, err := readSchema(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vjbenchcmp:", err)
		os.Exit(2)
	}
	if oldSchema != newSchema {
		fmt.Fprintf(os.Stderr, "vjbenchcmp: schema mismatch: %s is %q, %s is %q\n",
			flag.Arg(0), oldSchema, flag.Arg(1), newSchema)
		os.Exit(2)
	}

	var regressions int
	switch oldSchema {
	case benchSchema:
		regressions = compareBench(oldBuf, newBuf, *threshold)
	case loadSchema:
		regressions = compareLoad(oldBuf, newBuf, *threshold)
	default:
		fmt.Fprintf(os.Stderr, "vjbenchcmp: unsupported schema %q (want %q or %q)\n",
			oldSchema, benchSchema, loadSchema)
		os.Exit(2)
	}

	if regressions > 0 {
		fmt.Printf("\n%d regression(s) of more than %.0f%%\n", regressions, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("\nno regressions")
}

func compareBench(oldBuf, newBuf []byte, threshold float64) int {
	var old, neu benchManifest
	mustUnmarshal(oldBuf, &old)
	mustUnmarshal(newBuf, &neu)

	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n\n",
		flag.Arg(0), short(old.GitSHA), flag.Arg(1), short(neu.GitSHA))
	fmt.Printf("%-12s %12s %12s %9s %14s %14s %9s\n",
		"experiment", "old", "new", "delta", "old allocs", "new allocs", "delta")

	type oldEntry struct {
		wall   int64
		allocs uint64
	}
	oldBy := make(map[string]oldEntry, len(old.Experiments))
	for _, e := range old.Experiments {
		oldBy[e.Name] = oldEntry{e.WallNanos, e.Allocs}
	}
	seen := make(map[string]bool, len(neu.Experiments))
	regressions := 0
	for _, e := range neu.Experiments {
		seen[e.Name] = true
		o, ok := oldBy[e.Name]
		if !ok {
			fmt.Printf("%-12s %12s %12s %9s %14s %14s %9s\n",
				e.Name, "-", fmtNanos(e.WallNanos), "added", "-", fmtAllocs(e.Allocs), "")
			continue
		}
		wallDelta := float64(e.WallNanos-o.wall) / float64(o.wall)
		mark := ""
		if wallDelta > threshold {
			mark = "  REGRESSION(time)"
			regressions++
		}
		// Allocs are gated only when both runs recorded them: a zero count in
		// the baseline means the manifest predates the field. A zero count in
		// the NEW manifest against a nonzero baseline is different — the
		// metric went missing (a field rename, a broken measurement), and
		// silently skipping it would let a real regression hide behind the
		// hole — so it warns loudly instead of gating.
		allocsStr, allocsDeltaStr := "-", ""
		if o.allocs > 0 && e.Allocs > 0 {
			allocsDelta := float64(e.Allocs) - float64(o.allocs)
			rel := allocsDelta / float64(o.allocs)
			allocsStr = fmtAllocs(e.Allocs)
			allocsDeltaStr = fmt.Sprintf("%+8.1f%%", rel*100)
			if rel > threshold {
				mark += "  REGRESSION(allocs)"
				regressions++
			}
		} else if o.allocs > 0 {
			mark += "  MISSING(allocs)"
			fmt.Fprintf(os.Stderr, "vjbenchcmp: WARNING: experiment %q has allocs=%d in the baseline but none in the new manifest — metric went missing, not compared\n",
				e.Name, o.allocs)
		} else if e.Allocs > 0 {
			allocsStr = fmtAllocs(e.Allocs)
		}
		fmt.Printf("%-12s %12s %12s %+8.1f%% %14s %14s %9s%s\n",
			e.Name, fmtNanos(o.wall), fmtNanos(e.WallNanos), wallDelta*100,
			fmtAllocs(o.allocs), allocsStr, allocsDeltaStr, mark)
	}
	for _, e := range old.Experiments {
		if !seen[e.Name] {
			fmt.Printf("%-12s %12s %12s %9s\n", e.Name, fmtNanos(e.WallNanos), "-", "removed")
		}
	}
	return regressions
}

// compareLoad diffs two load/v1 manifests: latency quantiles regress
// upward, achieved throughput regresses downward. A baseline quantile of
// zero (no completed requests, or a manifest predating the field) cannot
// be compared and is skipped; a NEW quantile of zero against a nonzero
// baseline means the metric went missing and warns loudly — a latency
// that "dropped to zero" is a measurement hole, not an improvement.
func compareLoad(oldBuf, newBuf []byte, threshold float64) int {
	var old, neu loadManifest
	mustUnmarshal(oldBuf, &old)
	mustUnmarshal(newBuf, &neu)

	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n\n",
		flag.Arg(0), short(old.GitSHA), flag.Arg(1), short(neu.GitSHA))
	fmt.Printf("%-14s %14s %14s %9s\n", "metric", "old", "new", "delta")

	regressions := 0
	row := func(name string, o, n float64, fmtVal func(float64) string, worseWhenUp bool) {
		if o == 0 {
			fmt.Printf("%-14s %14s %14s %9s\n", name, "-", fmtVal(n), "")
			return
		}
		if n == 0 {
			fmt.Printf("%-14s %14s %14s %9s  MISSING\n", name, fmtVal(o), "-", "")
			fmt.Fprintf(os.Stderr, "vjbenchcmp: WARNING: metric %q is %s in the baseline but zero/absent in the new manifest — metric went missing, not compared\n",
				name, fmtVal(o))
			return
		}
		rel := (n - o) / o
		mark := ""
		if (worseWhenUp && rel > threshold) || (!worseWhenUp && -rel > threshold) {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-14s %14s %14s %+8.1f%%%s\n", name, fmtVal(o), fmtVal(n), rel*100, mark)
	}
	us := func(v float64) string { return fmtNanos(int64(v) * 1000) }
	qps := func(v float64) string { return fmt.Sprintf("%.1f/s", v) }
	count := func(v float64) string { return fmt.Sprintf("%.0f", v) }

	row("p50", float64(old.LatencyUS.P50US), float64(neu.LatencyUS.P50US), us, true)
	row("p95", float64(old.LatencyUS.P95US), float64(neu.LatencyUS.P95US), us, true)
	row("p99", float64(old.LatencyUS.P99US), float64(neu.LatencyUS.P99US), us, true)
	// Time-to-first-match gates like the completion latencies: a paging
	// client's perceived latency regressing matters even when the full-run
	// quantiles hold. Zero baselines (manifest predates the field, or no
	// request produced a match) skip the gate via row's o==0 path.
	row("ttfm p50", float64(old.FirstMatchUS.P50US), float64(neu.FirstMatchUS.P50US), us, true)
	row("ttfm p95", float64(old.FirstMatchUS.P95US), float64(neu.FirstMatchUS.P95US), us, true)
	row("ttfm p99", float64(old.FirstMatchUS.P99US), float64(neu.FirstMatchUS.P99US), us, true)
	row("achieved qps", old.AchievedQPS, neu.AchievedQPS, qps, false)
	// Informational rows: counts depend on the offered schedule, not code
	// quality, so they never gate.
	fmt.Printf("%-14s %14s %14s\n", "completed", count(float64(old.Completed)), count(float64(neu.Completed)))
	fmt.Printf("%-14s %14s %14s\n", "shed", count(float64(old.Shed)), count(float64(neu.Shed)))
	fmt.Printf("%-14s %14s %14s\n", "errors", count(float64(old.Errors+old.Timeouts)), count(float64(neu.Errors+neu.Timeouts)))
	return regressions
}

func mustUnmarshal(buf []byte, v any) {
	if err := json.Unmarshal(buf, v); err != nil {
		fmt.Fprintln(os.Stderr, "vjbenchcmp:", err)
		os.Exit(2)
	}
}

func fmtNanos(n int64) string {
	d := time.Duration(n)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func fmtAllocs(n uint64) string {
	switch {
	case n == 0:
		return "-"
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
