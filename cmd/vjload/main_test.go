package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func readFile(t testing.TB, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestLoadInProcess is the acceptance smoke run: a short in-process load
// at modest QPS must complete requests and yield a well-formed load/v1
// manifest with non-zero latency quantiles.
func TestLoadInProcess(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-xmark", "0.02",
		"-qps", "200",
		"-duration", "500ms",
		"-mix", "//site//item[//description//keyword]/name; //site//item//name @ //site//item//name",
		"-json", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("vjload exit %d\nstderr: %s", code, stderr.String())
	}

	var m manifest
	data := readFile(t, out)
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest parse: %v\n%s", err, data)
	}
	if m.Schema != LoadSchema {
		t.Errorf("schema %q, want %q", m.Schema, LoadSchema)
	}
	if m.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if m.Completed == 0 {
		t.Fatalf("no requests completed: %+v", m)
	}
	if m.Errors != 0 {
		t.Errorf("%d errors; both mix classes should prepare cleanly", m.Errors)
	}
	if m.Completed != m.LatencyUS.N {
		t.Errorf("completed %d but latency N %d", m.Completed, m.LatencyUS.N)
	}
	if m.LatencyUS.P50US <= 0 || m.LatencyUS.P95US < m.LatencyUS.P50US ||
		m.LatencyUS.P99US < m.LatencyUS.P95US || m.LatencyUS.P999US < m.LatencyUS.P99US {
		t.Errorf("quantiles implausible: %+v", m.LatencyUS)
	}
	if m.AchievedQPS <= 0 {
		t.Errorf("achieved QPS %f, want > 0", m.AchievedQPS)
	}
	if len(m.ByQuery) != 2 {
		t.Errorf("per-query summaries: %d classes, want 2", len(m.ByQuery))
	}
	var byN int64
	for q, s := range m.ByQuery {
		if s.N > 0 && s.P50US <= 0 {
			t.Errorf("class %q has N=%d but p50=0", q, s.N)
		}
		byN += s.N
	}
	if byN != m.LatencyUS.N {
		t.Errorf("per-class N sums to %d, overall N %d", byN, m.LatencyUS.N)
	}
	if m.Config.Target != "inprocess" {
		t.Errorf("config target %q, want inprocess", m.Config.Target)
	}
}

// TestLoadDeterministicArrivals pins that the seeded arrival process
// offers the same request count for the same seed: the open-loop schedule
// is a function of (seed, qps, duration), not of server speed.
func TestLoadSeededOffer(t *testing.T) {
	sent := func(seed string) int64 {
		out := filepath.Join(t.TempDir(), "load.json")
		var stdout, stderr bytes.Buffer
		code := run([]string{
			"-xmark", "0.01", "-qps", "300", "-duration", "300ms",
			"-seed", seed, "-json", out,
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("vjload exit %d\nstderr: %s", code, stderr.String())
		}
		var m manifest
		if err := json.Unmarshal(readFile(t, out), &m); err != nil {
			t.Fatal(err)
		}
		return m.Sent
	}
	a, b := sent("7"), sent("7")
	if a != b {
		t.Errorf("same seed offered %d vs %d requests", a, b)
	}
}

func TestParseMix(t *testing.T) {
	got := parseMix(" //a//b ;; //c @ //c//d , //e ")
	if len(got) != 2 {
		t.Fatalf("parseMix: %+v", got)
	}
	if got[0].query != "//a//b" || got[0].views != nil || got[0].spec != "//a//b" {
		t.Errorf("class 0: %+v", got[0])
	}
	if got[1].query != "//c" || len(got[1].views) != 2 ||
		got[1].views[0] != "//c//d" || got[1].views[1] != "//e" {
		t.Errorf("class 1: %+v", got[1])
	}
	if got[1].spec != "//c @ //c//d, //e" {
		t.Errorf("class 1 spec: %q", got[1].spec)
	}
	if parseMix(" ; ") != nil {
		t.Error("blank mix should parse empty")
	}
}

func TestParseMixTenantAndLimit(t *testing.T) {
	got := parseMix("//a//b @ //a, //b % t1 # 20; //c % t0; //d # 5")
	if len(got) != 3 {
		t.Fatalf("parseMix: %+v", got)
	}
	if got[0].query != "//a//b" || got[0].tenant != "t1" || got[0].limit != 20 ||
		len(got[0].views) != 2 || got[0].spec != "//a//b @ //a, //b % t1 # 20" {
		t.Errorf("class 0: %+v", got[0])
	}
	if got[1].query != "//c" || got[1].tenant != "t0" || got[1].limit != 0 || got[1].spec != "//c % t0" {
		t.Errorf("class 1: %+v", got[1])
	}
	if got[2].query != "//d" || got[2].tenant != "" || got[2].limit != 5 {
		t.Errorf("class 2: %+v", got[2])
	}
}

// TestLoadMultiTenantCapped drives the in-process server across three
// tenant registries with a warm-tier cap small enough that views are
// served mmap-cold: the multi-tenant density smoke. Every completed
// request must come back clean; a pinned '%' class must stay valid.
func TestLoadMultiTenantCapped(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-xmark", "0.02",
		"-qps", "200",
		"-duration", "500ms",
		"-tenants", "3",
		"-max-resident-bytes", "4096",
		"-mix", "//site//item//name @ //site//item//name; //description//keyword @ //description//keyword % t1",
		"-json", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("vjload exit %d\nstderr: %s", code, stderr.String())
	}
	var m manifest
	if err := json.Unmarshal(readFile(t, out), &m); err != nil {
		t.Fatal(err)
	}
	if m.Completed == 0 {
		t.Fatalf("no requests completed: %+v", m)
	}
	if m.Errors != 0 {
		t.Errorf("%d errors; all tenants should serve cleanly", m.Errors)
	}
	if m.Config.Tenants != 3 || m.Config.MaxResidentBytes != 4096 {
		t.Errorf("config tenancy not recorded: %+v", m.Config)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-qps", "0"}, &stdout, &stderr); code != 1 {
		t.Errorf("zero qps exit %d, want 1", code)
	}
	if code := run([]string{"-mix", " ; "}, &stdout, &stderr); code != 1 {
		t.Errorf("empty mix exit %d, want 1", code)
	}
}
