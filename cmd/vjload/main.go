// Command vjload is an open-loop load generator for vjserve: it fires
// query requests at a target rate with Poisson (exponential inter-arrival)
// timing, never waiting for a response before dispatching the next
// request, so server slowdowns surface as latency and shed counts instead
// of silently throttling the offered load (the coordinated-omission trap
// of closed-loop benchmarks).
//
// Usage:
//
//	vjload -target http://localhost:8080 -qps 200 -duration 10s
//	vjload -xmark 0.1 -views '//site//item//name; //description//keyword' -qps 500 -duration 5s
//	vjload -qps 100 -mix '//site//item[//description//keyword]/name; //site//item//name @ //site//item//name' -json load.json
//
// The -mix flag holds semicolon-separated query classes drawn uniformly.
// A class may scope itself to specific registered views with
// 'query @ view1, view2' (comma-separated); without '@' the server uses
// every view registered for the document, which fails preparation when a
// registered view is not a subpattern of the query. A '% tenant' suffix
// pins the class to one tenant registry ('query @ views % t1'); without
// it, multi-tenant runs (-tenants > 1) draw the tenant per request from
// the seeded RNG. A trailing '# N' caps the class at N matches
// ('query @ views % t1 # 20'), exercising the server's first-k pushdown;
// limited classes also report time-to-first-match quantiles in the
// manifest.
//
// Without -target, vjload builds an in-process server from -xmark/-views
// and drives its HTTP handler directly — no sockets, same serving stack —
// which is what scripts/ci.sh uses for its smoke run. -tenants N
// replicates the document and views across tenants t0..tN-1, and
// -max-resident-bytes caps the warm tier so the run exercises the
// server's mmap-cold serving and promotion/demotion churn.
//
// The -json manifest (schema viewjoin/load/v1) reports offered and
// achieved QPS, outcome counts, and latency quantiles (p50/p95/p99/p999)
// overall and per query class; cmd/vjbenchcmp diffs two such manifests.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"viewjoin"
	"viewjoin/internal/obs"
	"viewjoin/internal/server"
)

// LoadSchema identifies the -json manifest layout.
const LoadSchema = "viewjoin/load/v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type loadConfig struct {
	Target      string   `json:"target"` // URL, or "inprocess"
	QPS         float64  `json:"qps"`
	DurationSec float64  `json:"durationSec"`
	Engine      string   `json:"engine"`
	Mix         []string `json:"mix"`
	TimeoutMS   int64    `json:"timeoutMS"`
	MaxInflight int      `json:"maxInflight"`
	Seed        int64    `json:"seed"`
	// Tenants and MaxResidentBytes record the multi-tenant shape of the
	// run: how many tenant registries the load spread over, and the warm-
	// tier cap of the in-process server (0 when unbounded or external).
	Tenants          int   `json:"tenants,omitempty"`
	MaxResidentBytes int64 `json:"maxResidentBytes,omitempty"`
}

// histSummary is one latency distribution in the manifest: counts plus the
// quantile estimates the power-of-two buckets support.
type histSummary struct {
	N      int64   `json:"n"`
	MeanUS float64 `json:"meanUS"`
	P50US  int64   `json:"p50US"`
	P95US  int64   `json:"p95US"`
	P99US  int64   `json:"p99US"`
	P999US int64   `json:"p999US"`
	MaxUS  int64   `json:"maxUS"`
}

func summarize(h *obs.Histogram) histSummary {
	return histSummary{
		N: h.N, MeanUS: h.Mean(), MaxUS: h.Max,
		P50US:  h.Quantile(0.50),
		P95US:  h.Quantile(0.95),
		P99US:  h.Quantile(0.99),
		P999US: h.Quantile(0.999),
	}
}

// manifest is the viewjoin/load/v1 run report.
type manifest struct {
	Schema      string      `json:"schema"`
	GitSHA      string      `json:"gitSHA"`
	StartedAt   string      `json:"startedAt"`
	Config      loadConfig  `json:"config"`
	Sent        int64       `json:"sent"`
	Completed   int64       `json:"completed"` // 200s
	Shed        int64       `json:"shed"`      // 429s
	Timeouts    int64       `json:"timeouts"`  // 504s
	Errors      int64       `json:"errors"`    // everything else
	Dropped     int64       `json:"dropped"`   // client-side: inflight cap hit
	AchievedQPS float64     `json:"achievedQPS"`
	LatencyUS   histSummary `json:"latencyUS"` // completed requests only
	// FirstMatchUS is the distribution of server-reported time-to-first-
	// match (stats.first_match_us) over completed requests that produced
	// at least one match; it is the latency a paging client perceives.
	FirstMatchUS      histSummary            `json:"firstMatchUS"`
	ByQuery           map[string]histSummary `json:"byQuery"`
	ByQueryFirstMatch map[string]histSummary `json:"byQueryFirstMatch"`
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// outcome classifies one finished request for accounting.
type outcome struct {
	class     int // index into the query mix
	status    int
	latencyUS int64
	firstUS   int64 // server-reported time-to-first-match, 0 when absent
}

// respProbe extracts the one response field the generator accounts for;
// the rest of the body is skipped, not validated.
type respProbe struct {
	Stats struct {
		FirstMatchUS int64 `json:"first_match_us"`
	} `json:"stats"`
}

// probeFirstMatch pulls stats.first_match_us out of a 200 response body.
func probeFirstMatch(body []byte) int64 {
	var p respProbe
	if json.Unmarshal(body, &p) != nil {
		return 0
	}
	return p.Stats.FirstMatchUS
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vjload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target    = fs.String("target", "", "vjserve base URL; empty: drive an in-process server")
		qps       = fs.Float64("qps", 100, "target arrival rate (Poisson)")
		duration  = fs.Duration("duration", 10*time.Second, "load duration")
		docName   = fs.String("name", "doc", "document name in requests")
		engine    = fs.String("engine", "VJ", "engine for every request: VJ, TS, PS, IJ")
		mixStr    = fs.String("mix", "//site//item[//description//keyword]/name", "semicolon-separated query mix, drawn uniformly; scope a class to views with 'query @ view1, view2'")
		timeoutMS = fs.Int64("timeout-ms", 0, "per-request timeout_ms (0: server default)")
		inflight  = fs.Int("max-inflight", 256, "client-side cap on outstanding requests; arrivals beyond it are counted dropped")
		seed      = fs.Int64("seed", 1, "arrival-process RNG seed")
		jsonOut   = fs.String("json", "", "write the viewjoin/load/v1 manifest to this file (default: stdout)")
		// In-process server setup (ignored with -target).
		xmark     = fs.Float64("xmark", 0.05, "in-process: XMark scale of the served document")
		viewsStr  = fs.String("views", "//site//item//name; //description//keyword", "in-process: views to materialize")
		schemeStr = fs.String("scheme", "LEp", "in-process: storage scheme")
		workers   = fs.Int("workers", 4, "in-process: server worker bound")
		queue     = fs.Int("queue", 16, "in-process: server queue depth")
		tenants   = fs.Int("tenants", 1, "tenant registries to spread the load over (in-process: the document is replicated as t0..tN-1)")
		maxRes    = fs.Int64("max-resident-bytes", 0, "in-process: warm-tier cap; views beyond it are served mmap-cold (0: unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *qps <= 0 {
		fmt.Fprintln(stderr, "vjload: -qps must be > 0")
		return 1
	}
	mix := parseMix(*mixStr)
	if len(mix) == 0 {
		fmt.Fprintln(stderr, "vjload: empty -mix")
		return 1
	}

	// The dispatch function hides live-vs-inprocess: both go through the
	// same serving handler stack; only the transport differs.
	var dispatch func(body []byte) (int, int64)
	cfgTarget := *target
	if *target != "" {
		client := &http.Client{}
		url := strings.TrimRight(*target, "/") + "/query"
		dispatch = func(body []byte) (int, int64) {
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				return 0, 0
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				io.Copy(io.Discard, resp.Body)
				return resp.StatusCode, 0
			}
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				return resp.StatusCode, 0
			}
			return resp.StatusCode, probeFirstMatch(b)
		}
	} else {
		cfgTarget = "inprocess"
		handler, err := inprocessHandler(*xmark, *viewsStr, *schemeStr, *docName, *workers, *queue, *tenants, *maxRes)
		if err != nil {
			fmt.Fprintf(stderr, "vjload: %v\n", err)
			return 1
		}
		dispatch = func(body []byte) (int, int64) {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
			handler.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return rec.Code, 0
			}
			return rec.Code, probeFirstMatch(rec.Body.Bytes())
		}
	}

	// The tenant set: the default registry for single-tenant runs, t0..tN-1
	// for multi-tenant ones. A '%'-pinned class overrides the draw.
	tenantNames := []string{""}
	if *tenants > 1 {
		tenantNames = make([]string, *tenants)
		for i := range tenantNames {
			tenantNames[i] = fmt.Sprintf("t%d", i)
		}
	}

	// Pre-marshal one request body per (query class, tenant); the arrival
	// loop only picks indices. Single-variant classes never consume an RNG
	// draw for the tenant, so existing single-tenant seeds offer an
	// identical request sequence.
	bodies := make([][][]byte, len(mix))
	for i, c := range mix {
		names := tenantNames
		if c.tenant != "" {
			names = []string{c.tenant}
		}
		for _, tn := range names {
			body := map[string]any{
				"document": *docName, "query": c.query, "engine": *engine, "timeout_ms": *timeoutMS,
			}
			if tn != "" {
				body["tenant"] = tn
			}
			if len(c.views) > 0 {
				body["views"] = c.views
			}
			if c.limit > 0 {
				body["limit"] = c.limit
			}
			b, err := json.Marshal(body)
			if err != nil {
				fmt.Fprintf(stderr, "vjload: %v\n", err)
				return 1
			}
			bodies[i] = append(bodies[i], b)
		}
	}

	m := generate(dispatch, bodies, *qps, *duration, *inflight, *seed)
	m.Schema = LoadSchema
	m.GitSHA = gitSHA()
	m.StartedAt = time.Now().UTC().Format(time.RFC3339)
	specs := make([]string, len(mix))
	for i, c := range mix {
		specs[i] = c.spec
	}
	m.Config = loadConfig{
		Target: cfgTarget, QPS: *qps, DurationSec: duration.Seconds(),
		Engine: *engine, Mix: specs, TimeoutMS: *timeoutMS,
		MaxInflight: *inflight, Seed: *seed,
	}
	if *tenants > 1 {
		m.Config.Tenants = *tenants
	}
	if cfgTarget == "inprocess" {
		m.Config.MaxResidentBytes = *maxRes
	}
	m.ByQuery = renameClasses(m.ByQuery, specs)
	m.ByQueryFirstMatch = renameClasses(m.ByQueryFirstMatch, specs)

	fmt.Fprintf(stderr, "vjload: %d sent, %d ok, %d shed, %d timeout, %d error, %d dropped; %.1f qps achieved (offered %.1f); p50 %dµs p95 %dµs p99 %dµs\n",
		m.Sent, m.Completed, m.Shed, m.Timeouts, m.Errors, m.Dropped,
		m.AchievedQPS, *qps, m.LatencyUS.P50US, m.LatencyUS.P95US, m.LatencyUS.P99US)

	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "vjload: %v\n", err)
		return 1
	}
	out = append(out, '\n')
	if *jsonOut == "" {
		stdout.Write(out)
		return 0
	}
	if err := os.WriteFile(*jsonOut, out, 0o644); err != nil {
		fmt.Fprintf(stderr, "vjload: %v\n", err)
		return 1
	}
	return 0
}

// generate runs the open-loop arrival process: a single goroutine draws
// exponential inter-arrival gaps, query classes, and (for classes with
// more than one tenant variant) tenants from the seeded RNG
// (deterministic offered load), dispatching each request on its own
// goroutine. Requests outstanding beyond the inflight cap are dropped at
// the client and counted — under overload an open-loop generator must
// keep offering load, not queue unboundedly.
func generate(dispatch func([]byte) (int, int64), bodies [][][]byte, qps float64, d time.Duration,
	maxInflight int, seed int64) manifest {
	rng := rand.New(rand.NewSource(seed))
	results := make(chan outcome, 1024)
	slots := make(chan struct{}, maxInflight)

	var m manifest
	var wg sync.WaitGroup
	collectorDone := make(chan struct{})

	// Per-class histograms, merged into the overall distribution at the
	// end — the same mergeable buckets the server and tracer use. The
	// firstMatch histograms only see completed requests that reported a
	// nonzero time-to-first-match (matchless runs carry no TTFM signal).
	perClass := make([]*obs.Histogram, len(bodies))
	perClassFirst := make([]*obs.Histogram, len(bodies))
	for i := range perClass {
		perClass[i] = &obs.Histogram{}
		perClassFirst[i] = &obs.Histogram{}
	}
	go func() {
		defer close(collectorDone)
		for o := range results {
			switch {
			case o.status == http.StatusOK:
				m.Completed++
				perClass[o.class].Add(o.latencyUS)
				if o.firstUS > 0 {
					perClassFirst[o.class].Add(o.firstUS)
				}
			case o.status == http.StatusTooManyRequests:
				m.Shed++
			case o.status == http.StatusGatewayTimeout:
				m.Timeouts++
			default:
				m.Errors++
			}
		}
	}()

	begin := time.Now()
	deadline := begin.Add(d)
	next := begin
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / qps * float64(time.Second)))
		if next.After(deadline) {
			break
		}
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		class := rng.Intn(len(bodies))
		body := bodies[class][0]
		if len(bodies[class]) > 1 {
			body = bodies[class][rng.Intn(len(bodies[class]))]
		}
		m.Sent++
		select {
		case slots <- struct{}{}:
		default:
			m.Dropped++
			continue
		}
		wg.Add(1)
		go func(class int, body []byte) {
			defer wg.Done()
			t0 := time.Now()
			status, firstUS := dispatch(body)
			results <- outcome{class: class, status: status, latencyUS: time.Since(t0).Microseconds(), firstUS: firstUS}
			<-slots
		}(class, body)
	}
	wg.Wait()
	close(results)
	<-collectorDone
	elapsed := time.Since(begin)

	var overall, overallFirst obs.Histogram
	m.ByQuery = make(map[string]histSummary, len(perClass))
	m.ByQueryFirstMatch = make(map[string]histSummary, len(perClassFirst))
	for i, h := range perClass {
		overall.Merge(h)
		m.ByQuery[fmt.Sprintf("%d", i)] = summarize(h)
	}
	for i, h := range perClassFirst {
		overallFirst.Merge(h)
		m.ByQueryFirstMatch[fmt.Sprintf("%d", i)] = summarize(h)
	}
	m.LatencyUS = summarize(&overall)
	m.FirstMatchUS = summarize(&overallFirst)
	if secs := elapsed.Seconds(); secs > 0 {
		m.AchievedQPS = float64(m.Completed) / secs
	}
	return m
}

// renameClasses rekeys the per-class summaries from mix indices to the
// class specs (kept numeric inside generate to avoid threading the mix
// through it).
func renameClasses(by map[string]histSummary, specs []string) map[string]histSummary {
	out := make(map[string]histSummary, len(by))
	for i, spec := range specs {
		if s, ok := by[fmt.Sprintf("%d", i)]; ok {
			out[spec] = s
		}
	}
	return out
}

// mixClass is one entry of the workload mix: a query, the views the
// request names (none: server default of all registered views), an
// optional tenant pin (empty: drawn per request in multi-tenant runs),
// an optional match limit (0: full enumeration), and the normalized spec
// text used as the manifest key.
type mixClass struct {
	query  string
	views  []string
	tenant string
	limit  int
	spec   string
}

func parseMix(s string) []mixClass {
	var out []mixClass
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		// 'query @ views % tenant # N' — the suffixes come off outside-in
		// (limit, then tenant) so the view list never sees either.
		var c mixClass
		if rest, lim, ok := strings.Cut(part, "#"); ok {
			if n, err := strconv.Atoi(strings.TrimSpace(lim)); err == nil && n > 0 {
				c.limit = n
			}
			part = strings.TrimSpace(rest)
		}
		if rest, tn, ok := strings.Cut(part, "%"); ok {
			c.tenant = strings.TrimSpace(tn)
			part = strings.TrimSpace(rest)
		}
		c.query, c.spec = part, part
		if q, vs, ok := strings.Cut(part, "@"); ok {
			c.query = strings.TrimSpace(q)
			for _, v := range strings.Split(vs, ",") {
				if v = strings.TrimSpace(v); v != "" {
					c.views = append(c.views, v)
				}
			}
			c.spec = c.query + " @ " + strings.Join(c.views, ", ")
		}
		if c.tenant != "" {
			c.spec += " % " + c.tenant
		}
		if c.limit > 0 {
			c.spec += fmt.Sprintf(" # %d", c.limit)
		}
		out = append(out, c)
	}
	return out
}

// inprocessHandler builds a full vjserve serving stack (document, views,
// plan cache, admission control) and returns its HTTP handler. With
// tenants > 1 the document and views are replicated across tenant
// registries t0..tN-1; with a resident-bytes cap the views are spilled to
// container files first so the residency manager can tier them (warm
// heap loads vs cold mmap serving) instead of pinning everything.
func inprocessHandler(xmark float64, viewsStr, schemeStr, docName string, workers, queue,
	tenants int, maxResidentBytes int64) (http.Handler, error) {
	doc := viewjoin.GenerateXMark(xmark)
	views, err := viewjoin.ParseViews(viewsStr)
	if err != nil {
		return nil, err
	}
	scheme, err := server.ParseScheme(schemeStr)
	if err != nil {
		return nil, err
	}
	mviews, err := doc.MaterializeViews(views, scheme)
	if err != nil {
		return nil, err
	}
	var paths []string
	if maxResidentBytes > 0 {
		dir, err := os.MkdirTemp("", "vjload-views-")
		if err != nil {
			return nil, err
		}
		for i, mv := range mviews {
			p := filepath.Join(dir, fmt.Sprintf("view-%d.vjview", i))
			f, err := os.Create(p)
			if err == nil {
				_, err = mv.SaveView(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				return nil, fmt.Errorf("spill %s: %w", p, err)
			}
			paths = append(paths, p)
		}
	}
	srv := server.New(server.Config{Workers: workers, QueueDepth: queue, MaxResidentBytes: maxResidentBytes})
	tenantNames := []string{""}
	if tenants > 1 {
		tenantNames = make([]string, tenants)
		for i := range tenantNames {
			tenantNames[i] = fmt.Sprintf("t%d", i)
		}
	}
	for _, tn := range tenantNames {
		if err := srv.AddTenantDocument(tn, docName, doc); err != nil {
			return nil, err
		}
		if paths != nil {
			for _, p := range paths {
				if err := srv.AddTenantViewFile(tn, docName, p); err != nil {
					return nil, err
				}
			}
			continue
		}
		for _, mv := range mviews {
			if err := srv.AddTenantView(tn, docName, mv); err != nil {
				return nil, err
			}
		}
	}
	return srv.Handler(), nil
}
