// Command vjserve is the ViewJoin query daemon: it loads a document and
// its materialized views at startup, then serves tree pattern queries over
// HTTP/JSON through a bounded LRU cache of prepared plans.
//
// Usage:
//
//	vjserve -addr :8080 -xmark 0.5 -views '//site//item//name; //description//keyword'
//	vjserve -addr :8080 -doc doc.xml -load 'views/*.vjview'
//	vjserve -addr :8080 -nasa 500 -views '//field//para; //footnote' -scheme LEp -json
//	vjserve -addr :8080 -doc doc.xml -load 'views/*.vjview' -max-resident-bytes 33554432
//
// -max-resident-bytes caps the warm (heap-resident) tier of file-backed
// views: views beyond the cap are served cold through read-only memory
// mappings (-mmap=false falls back to heap reads) and earn residency by
// access frequency, demoting least-recently-used warm views. With the cap
// set, -views spills its materialized views to container files first so
// they are residency-managed too. -tenant registers the document under a
// named tenant registry; requests address it with a "tenant" body field.
//
// Endpoints:
//
//	POST /query          {"document","query","engine","views","timeout_ms","limit","parallel"}
//	POST /debug/trace    same body; returns the viewjoin/trace/v1 report inline
//	GET  /debug/slowlog  flight recorder: N slowest + N most recent requests with full traces
//	GET  /debug/plans    per-plan aggregates of every cached plan (viewjoin/plans/v1)
//	GET  /metrics        plan-cache and request counters, latency quantiles, per-plan table
//	GET  /healthz        liveness ("ok" or "draining")
//	GET  /documents      registered documents and views
//
// On SIGINT/SIGTERM the server stops accepting queries (503), drains
// in-flight requests, and exits 0. -json writes one viewjoin/access/v1
// JSON line per request to stdout.
//
// Exit status: 0 on clean shutdown, 2 when the query/view setup fails to
// parse, 1 for any other startup error. Failures are reported on stderr as
// one-line JSON: {"stage":"...","error":"..."}.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"viewjoin"
	"viewjoin/internal/server"
)

const (
	exitOther = 1
	exitParse = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main without the process exit, for testing: ready (when non-nil)
// receives the bound address once the listener is open.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("vjserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		docPath   = fs.String("doc", "", "XML document to serve")
		docName   = fs.String("name", "doc", "name the document is registered under")
		xmark     = fs.Float64("xmark", 0, "serve a generated XMark document of this scale")
		nasa      = fs.Int("nasa", 0, "serve a generated Nasa document with this many datasets")
		viewsStr  = fs.String("views", "", "semicolon-separated views to materialize at startup")
		schemeStr = fs.String("scheme", "LEp", "storage scheme for -views: E, LE, LEp, T")
		loadGlob  = fs.String("load", "", "load saved views matching this glob (from vjmaterialize) instead of materializing")
		cacheSize = fs.Int("cache", 128, "plan cache capacity (prepared plans)")
		workers   = fs.Int("workers", 4, "concurrent query evaluations")
		queue     = fs.Int("queue", 16, "admitted requests that may wait for a worker before 429 shedding (negative: unbounded)")
		maxPar    = fs.Int("max-parallel", 1, "cap on the per-request 'parallel' partition knob (1 = parallel evaluation disabled)")
		timeout   = fs.Duration("timeout", 10*time.Second, "default per-request deadline")
		jsonLog   = fs.Bool("json", false, "write one viewjoin/access/v1 JSON line per request to stdout")
		slowSize  = fs.Int("slowlog-size", 8, "slow-query flight recorder depth (N slowest + N most recent, with full traces); 0 disables")
		slowMS    = fs.Int64("slowlog-ms", 100, "wall-time threshold for the slow set, in milliseconds (0: every request eligible)")
		maxRes    = fs.Int64("max-resident-bytes", 0, "cap on heap-resident view bytes; views beyond it are served mmap-cold (0: unbounded)")
		useMmap   = fs.Bool("mmap", true, "serve cold-tier views through read-only memory mappings (false: heap reads)")
		tenantStr = fs.String("tenant", "", "tenant registry the document is registered under (requests address it via the 'tenant' field)")
	)
	if err := fs.Parse(args); err != nil {
		return exitOther
	}

	doc, err := loadDocument(*xmark, *nasa, *docPath)
	if err != nil {
		return fail(stderr, "load", err, exitOther)
	}

	cfg := server.Config{
		CacheSize:        *cacheSize,
		Workers:          *workers,
		QueueDepth:       *queue,
		DefaultTimeout:   *timeout,
		MaxParallel:      *maxPar,
		SlowlogSize:      *slowSize,
		SlowlogThreshold: time.Duration(*slowMS) * time.Millisecond,
		MaxResidentBytes: *maxRes,
		DisableMmap:      !*useMmap,
	}
	if *jsonLog {
		cfg.AccessLog = stdout
	}
	srv := server.New(cfg)
	if err := srv.AddTenantDocument(*tenantStr, *docName, doc); err != nil {
		return fail(stderr, "setup", err, exitOther)
	}

	var nviews int
	switch {
	case *loadGlob != "":
		paths, err := filepath.Glob(*loadGlob)
		if err != nil {
			return fail(stderr, "load", err, exitOther)
		}
		if len(paths) == 0 {
			return fail(stderr, "load", fmt.Errorf("no view files match %q", *loadGlob), exitOther)
		}
		sort.Strings(paths)
		for _, p := range paths {
			// File registration puts the view under residency management:
			// warm while -max-resident-bytes allows, mmap-cold beyond it.
			if err := srv.AddTenantViewFile(*tenantStr, *docName, p); err != nil {
				return fail(stderr, "load", err, exitOther)
			}
			nviews++
		}
	case *viewsStr != "":
		views, err := viewjoin.ParseViews(*viewsStr)
		if err != nil {
			return fail(stderr, "parse", err, exitParse)
		}
		scheme, err := server.ParseScheme(*schemeStr)
		if err != nil {
			return fail(stderr, "parse", err, exitParse)
		}
		mviews, err := doc.MaterializeViews(views, scheme)
		if err != nil {
			return fail(stderr, "materialize", err, exitOther)
		}
		// With a resident-bytes cap, materialized views are spilled to
		// container files so the residency manager can demote and reload
		// them; uncapped, they are registered in memory (pinned resident).
		var spillDir string
		if *maxRes > 0 {
			spillDir, err = os.MkdirTemp("", "vjserve-views-")
			if err != nil {
				return fail(stderr, "materialize", err, exitOther)
			}
			defer os.RemoveAll(spillDir)
		}
		for i, mv := range mviews {
			if spillDir == "" {
				if err := srv.AddTenantView(*tenantStr, *docName, mv); err != nil {
					return fail(stderr, "setup", err, exitOther)
				}
				nviews++
				continue
			}
			p := filepath.Join(spillDir, fmt.Sprintf("view-%d.vjview", i))
			f, err := os.Create(p)
			if err == nil {
				_, err = mv.SaveView(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				return fail(stderr, "materialize", fmt.Errorf("spill %s: %w", p, err), exitOther)
			}
			if err := srv.AddTenantViewFile(*tenantStr, *docName, p); err != nil {
				return fail(stderr, "setup", err, exitOther)
			}
			nviews++
		}
	default:
		return fail(stderr, "setup", fmt.Errorf("provide -views or -load"), exitOther)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(stderr, "vjserve: serving %q (%d nodes, %d views) on %s\n",
			*docName, doc.NumNodes(), nviews, *addr)
		if ready != nil {
			ready <- *addr
		}
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return fail(stderr, "listen", err, exitOther)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, reject new queries, wait
	// for in-flight evaluations, release view backends (heap buffers and
	// mmap mappings — safe only now, with no reader left), then close.
	fmt.Fprintln(stderr, "vjserve: draining")
	if err := srv.Close(); err != nil {
		return fail(stderr, "shutdown", err, exitOther)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fail(stderr, "shutdown", err, exitOther)
	}
	return 0
}

func loadDocument(xmarkScale float64, nasaDatasets int, path string) (*viewjoin.Document, error) {
	switch {
	case xmarkScale > 0:
		return viewjoin.GenerateXMark(xmarkScale), nil
	case nasaDatasets > 0:
		return viewjoin.GenerateNasa(nasaDatasets), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return viewjoin.ParseDocument(f)
	default:
		return nil, fmt.Errorf("provide -doc, -xmark, or -nasa")
	}
}

// fail reports one failure as a single JSON line on stderr and returns the
// exit status.
func fail(stderr io.Writer, stage string, err error, code int) int {
	line, _ := json.Marshal(struct {
		Stage string `json:"stage"`
		Error string `json:"error"`
	}{Stage: stage, Error: err.Error()})
	fmt.Fprintf(stderr, "%s\n", line)
	return code
}
