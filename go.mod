module viewjoin

go 1.22
