package viewjoin

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/engine/twigstack"
	vjengine "viewjoin/internal/engine/viewjoin"
	"viewjoin/internal/match"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
)

// This file implements range-partitioned parallel evaluation: one prepared
// plan executed as K independent jobs over disjoint start-label slices of
// the document, with outputs merged back into sequential order.
//
// Partitions are anchored at the bottom of the query's unary spine — the
// first query node with other than exactly one child. A match binds the
// spine to an ancestor chain of its anchor binding and confines every
// other node to the anchor binding's subtree, so cutting the document
// between the merged subtree spans of the anchor's candidates assigns
// each match to exactly one chunk: the one containing its anchor binding.
// Each job evaluates with non-spine nodes range-restricted to its chunk
// and spine nodes admitted when they overlap it. See DESIGN.md,
// "Range-partitioned parallel evaluation", for the full argument.

// partitionInfo is what the planner needs from a prepared engine: the
// document regions of the anchor node's candidates (to place cuts that no
// match can straddle) and an estimated byte weight of a start range (to
// balance chunks).
type partitionInfo interface {
	AnchorSpans(qi int) []engine.Span
	WeightIn(lo, hi int32) int64
}

// listInfo adapts the list-file engines (ViewJoin, TwigStack, PathStack)
// to partitionInfo: node qi's candidates are the records of lists[qi],
// and weight is the payload bytes of every list's slice — the same
// quantity the page-cost model charges for scanning the slice.
type listInfo struct {
	lists []*store.ListFile
}

func (li listInfo) AnchorSpans(qi int) []engine.Span {
	if qi >= len(li.lists) || li.lists[qi] == nil {
		return nil
	}
	l := li.lists[qi]
	out := make([]engine.Span, l.Entries())
	for i := range out {
		lb := l.LabelAt(i)
		out[i] = engine.Span{Lo: lb.Start, Hi: lb.End}
	}
	return out
}

func (li listInfo) WeightIn(lo, hi int32) int64 {
	var w int64
	for _, l := range li.lists {
		if l == nil {
			continue
		}
		n := l.Entries()
		if n == 0 {
			continue
		}
		rec := l.PayloadBytes() / int64(n)
		w += int64(engine.CountInSpan(l, engine.Span{Lo: lo, Hi: hi})) * rec
	}
	return w
}

func (p *PreparedQuery) partitionInfo() partitionInfo {
	switch p.eng {
	case EngineViewJoin:
		return listInfo{p.vj.Lists()}
	case EngineTwigStack:
		return listInfo{p.ts.Lists()}
	case EnginePathStack:
		return listInfo{p.ps.Lists()}
	case EngineInterJoin:
		return p.ij
	}
	return nil
}

// parallelism resolves the prepare-time Parallelism option: 0 or 1 means
// sequential, negative means GOMAXPROCS.
func (p *PreparedQuery) parallelism() int {
	k := p.opts.Parallelism
	if k < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return k
}

// anchorNode walks the query's unary spine — the maximal pre-order prefix
// in which every node has exactly one child — and returns the index of its
// bottom: the first node with zero or several children. It returns -1 when
// the pattern's spine nodes are not laid out consecutively in pre-order
// (hand-built patterns), which the planner treats as unpartitionable.
func anchorNode(nodes []tpq.Node) int {
	b := 0
	for len(nodes[b].Children) == 1 {
		c := nodes[b].Children[0]
		if c != b+1 {
			return -1
		}
		b = c
	}
	return b
}

// planPartitions builds the job list for a K-way partitioned run, or nil
// when the query cannot be usefully partitioned — callers fall back to
// the sequential path, so partitioning degrades but never errors.
//
// The cut points come from the anchor node's candidates: their document
// regions, merged into disjoint blobs (MergeSpans), are the only places a
// match's anchor binding can live, and no blob's subtree extends into
// another. The blobs are coalesced into at most k chunks balanced by
// estimated page weight; each chunk becomes one job whose restriction
// pins the spine above it and bounds everything else inside it. A single
// blob (e.g. a query anchored at the document root) admits no cut and
// yields no parallelism.
//
// Plans are cached per parallelism degree: the job list is immutable once
// built (restrictions are read-only to the engines), so repeated parallel
// runs of a cached serving plan skip the anchor-span merge entirely.
func (p *PreparedQuery) planPartitions(k int) []engine.Restriction {
	if k <= 1 {
		return nil
	}
	p.partMu.Lock()
	jobs, ok := p.partPlans[k]
	p.partMu.Unlock()
	if ok {
		return jobs
	}
	jobs = p.computePartitions(k)
	p.partMu.Lock()
	if p.partPlans == nil {
		p.partPlans = make(map[int][]engine.Restriction)
	}
	p.partPlans[k] = jobs
	p.partMu.Unlock()
	return jobs
}

func (p *PreparedQuery) computePartitions(k int) []engine.Restriction {
	b := anchorNode(p.q.p.Nodes)
	if b < 0 {
		return nil
	}
	info := p.partitionInfo()
	if info == nil {
		return nil
	}
	blobs := engine.MergeSpans(info.AnchorSpans(b))
	if len(blobs) <= 1 {
		return nil
	}
	chunks := engine.CoalesceSpans(blobs, func(s engine.Span) int64 {
		return info.WeightIn(s.Lo, s.Hi)
	}, k)
	if len(chunks) <= 1 {
		return nil
	}
	jobs := make([]engine.Restriction, len(chunks))
	for i, ch := range chunks {
		jobs[i] = engine.Restriction{Spine: b, Body: ch}
	}
	return jobs
}

// spineOrdered reports whether match order across ascending partition
// chunks follows job index. Matches compare lexicographically by binding
// start, walking the unary spine before reaching the anchor; when every
// spine node above the anchor binds at most one candidate — e.g. the §VI
// queries, all rooted at the single //site element — two matches from
// different jobs first differ at the anchor itself, whose chunks ascend
// with job index. A root anchor is ordered trivially. With several
// candidates at a spine level the cross-job comparison can invert (a
// later chunk's match may bind an earlier-starting spine ancestor), so
// neither the shared quota cutoff nor streamed merging is sound.
func (p *PreparedQuery) spineOrdered() bool {
	p.partMu.Lock()
	cached := p.spineOrd
	p.partMu.Unlock()
	if cached != 0 {
		return cached > 0
	}
	ordered := func() bool {
		b := anchorNode(p.q.p.Nodes)
		if b <= 0 {
			return b == 0
		}
		info := p.partitionInfo()
		if info == nil {
			return false
		}
		for qi := 0; qi < b; qi++ {
			if len(info.AnchorSpans(qi)) > 1 {
				return false
			}
		}
		return true
	}()
	p.partMu.Lock()
	if ordered {
		p.spineOrd = 1
	} else {
		p.spineOrd = -1
	}
	p.partMu.Unlock()
	return ordered
}

// RunParallel executes the prepared plan as a range-partitioned parallel
// run across up to k workers (k <= 0 uses GOMAXPROCS) and returns a Result
// byte-identical to Run's: same matches in the same order, counters summed
// across partitions, PeakMemoryBytes the largest single partition's peak,
// and Stats.Partitions the number of jobs executed. When the plan yields
// fewer than two jobs the run degrades to the sequential path. ctx bounds
// every partition cooperatively, exactly as RunContext; a nil ctx runs
// uninterruptible. Safe for concurrent use under the same conditions as
// Run (prepare-time Tracer must be nil for concurrent calls).
func (p *PreparedQuery) RunParallel(ctx context.Context, k int) (*Result, error) {
	return p.runParallel(ctx, k, p.limits(), time.Now(), false, p.opts.Tracer)
}

// jobOut is one partition's outcome, written only by its worker.
type jobOut struct {
	ms      match.Set
	c       counters.Counters
	peak    int64
	dur     time.Duration
	first   time.Time
	skipped bool
	err     error
}

// quotaState coordinates a shared first-k quota across partition jobs.
// Jobs are planned over ascending document chunks; when the cross-job
// order follows job index (spineOrdered), once the maximal completed
// prefix of jobs has produced quota matches, no later job can contribute
// to the page: the cutoff index tells not-yet-started jobs to skip
// entirely and in-flight later jobs to stop at their next interrupt poll
// (engine.ErrStop — their partial output sorts after the quota and is
// sliced away). When spine bindings above the chunk break the cross-job
// ordering, only the per-job quota applies (sound for any anchor: a match
// in the global first quota is in its own job's first quota).
type quotaState struct {
	quota  int
	cutoff atomic.Int64 // first job index that cannot contribute
	mu     sync.Mutex
	done   []bool
	counts []int
}

func newQuotaState(quota, jobs int) *quotaState {
	qs := &quotaState{quota: quota, done: make([]bool, jobs), counts: make([]int, jobs)}
	qs.cutoff.Store(int64(jobs))
	return qs
}

// complete records job i's match count and advances the cutoff when the
// completed prefix alone satisfies the quota.
func (qs *quotaState) complete(i, count int) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	qs.done[i] = true
	qs.counts[i] = count
	sum := 0
	for j := 0; j < len(qs.done) && qs.done[j]; j++ {
		sum += qs.counts[j]
		if sum >= qs.quota {
			if int64(j+1) < qs.cutoff.Load() {
				qs.cutoff.Store(int64(j + 1))
			}
			return
		}
	}
}

// runParallel plans and executes a partitioned run. Partitions run with
// nil tracers (Tracer implementations are not concurrency-safe); the
// orchestrator instead emits one EvPartition event per job carrying its
// wall time, so traced runs still expose the partition-span distribution.
//
// Under a limit (lim.first() > 0) every job runs with the shared quota as
// its own first-k bound, and when cross-job order follows job index
// (spineOrdered) a quotaState additionally stops scanning partitions that
// can no longer contribute to the page (see quotaState). Job outputs —
// each already in document order — are combined by a k-way document-order
// merge and the page sliced from the merged prefix.
func (p *PreparedQuery) runParallel(ctx context.Context, k int, lim limits, start time.Time, includePrep bool, tr obs.Tracer) (*Result, error) {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	jobs := p.planPartitions(k)
	if len(jobs) <= 1 {
		return p.run(ctx, lim, nil, start, includePrep, tr)
	}
	var interrupt func() error
	if ctx != nil {
		interrupt = contextInterrupt(ctx, p.eng, p.q.String())
		if err := interrupt(); err != nil {
			return nil, err
		}
	}
	var qs *quotaState
	if lim.first() > 0 && p.spineOrdered() {
		qs = newQuotaState(lim.first(), len(jobs))
	}
	if tr != nil {
		if pl := p.lazyPlan(); pl != nil {
			tr.Plan(pl)
		}
		tr.BeginPhase(obs.PhaseEvaluate)
	}
	outs := make([]jobOut, len(jobs))
	workers := k
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if qs != nil && int64(i) >= qs.cutoff.Load() {
					outs[i].skipped = true
					qs.complete(i, 0)
					continue
				}
				jobInterrupt := interrupt
				if qs != nil {
					jobInterrupt = func() error {
						if int64(i) >= qs.cutoff.Load() {
							return engine.ErrStop
						}
						if interrupt != nil {
							return interrupt()
						}
						return nil
					}
				}
				outs[i] = p.runJob(&jobs[i], jobInterrupt, lim, nil)
				if qs != nil {
					qs.complete(i, len(outs[i].ms))
				}
			}
		}()
	}
	wg.Wait()
	if tr != nil {
		for i := range outs {
			if !outs[i].skipped {
				tr.Event(obs.EvPartition, -1, int64(outs[i].dur))
			}
		}
		tr.EndPhase(obs.PhaseEvaluate)
	}
	var c counters.Counters
	if includePrep {
		c.Add(p.prepC)
	}
	var (
		peak       int64
		firstMatch time.Time
		executed   int
	)
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		if outs[i].skipped {
			continue
		}
		executed++
		c.Add(outs[i].c)
		if outs[i].peak > peak {
			peak = outs[i].peak
		}
		if t := outs[i].first; !t.IsZero() && (firstMatch.IsZero() || t.Before(firstMatch)) {
			firstMatch = t
		}
	}
	// Jobs bound disjoint anchor ranges but spine bindings above them are
	// not chunk-ordered; each job's output is itself in document order, so
	// a k-way merge restores the canonical lexicographic order every
	// sequential engine emits.
	ms := mergeJobMatches(outs)
	return p.buildResult(lim.slice(ms), c, peak, executed, start, firstMatch, tr), nil
}

// mergeJobMatches k-way merges the per-job outputs — each already sorted
// in document order — into one document-ordered set.
func mergeJobMatches(outs []jobOut) match.Set {
	total := 0
	live := 0
	for i := range outs {
		if len(outs[i].ms) > 0 {
			total += len(outs[i].ms)
			live++
		}
	}
	if live == 1 {
		for i := range outs {
			if len(outs[i].ms) > 0 {
				return outs[i].ms
			}
		}
	}
	ms := make(match.Set, 0, total)
	pos := make([]int, len(outs))
	for len(ms) < total {
		best := -1
		for i := range outs {
			if pos[i] >= len(outs[i].ms) {
				continue
			}
			if best < 0 || match.Less(outs[i].ms[pos[i]], outs[best].ms[pos[best]]) {
				best = i
			}
		}
		ms = append(ms, outs[best].ms[pos[best]])
		pos[best]++
	}
	return ms
}

// runJob executes one partition with its own counters and its own buffer
// pool of the configured size (pools simulate per-cursor-set caching and
// cannot be shared across goroutines). A non-nil emit streams the job's
// matches instead of accumulating them (ViewJoin/TwigStack only).
func (p *PreparedQuery) runJob(r *engine.Restriction, interrupt func() error, lim limits, emit func(match.Match) bool) jobOut {
	t0 := time.Now()
	var out jobOut
	io := counters.NewIO(&out.c, p.opts.BufferPoolPages)
	io.SetStall(p.opts.IOLatency)
	eopts := engine.Options{
		DiskBased:      p.opts.DiskBased,
		PageSize:       p.opts.PageSize,
		UnguardedJumps: p.opts.UnguardedJumps,
		Interrupt:      interrupt,
		Restrict:       r,
		// The shared quota doubles as the per-job bound: any match in the
		// global first offset+limit is in its own partition's first
		// offset+limit, so each job may stop (or cap its accumulation)
		// there.
		First: lim.first(),
		After: lim.after,
		Emit:  emit,
	}
	switch p.eng {
	case EngineViewJoin:
		var st vjengine.Stats
		out.ms, st, out.err = p.vj.Run(io, eopts)
		out.peak = int64(st.PeakWindowEntries) * 16
	case EngineTwigStack:
		var st twigstack.Stats
		out.ms, st, out.err = p.ts.Run(io, eopts)
		out.peak = int64(st.PeakWindowEntries) * 16
	case EnginePathStack:
		out.ms, out.err = p.ps.Run(io, eopts)
	case EngineInterJoin:
		out.ms, out.err = p.ij.Run(io, eopts)
	}
	io.DrainStall()
	out.dur = time.Since(t0)
	out.first = io.FirstMatchTime()
	return out
}

// runParallelStream executes a bounded partitioned run delivering rows to
// yield incrementally: each job streams its matches into a per-job channel
// and the consumer drains the channels in job index order, which under
// spineOrdered is document order across jobs — so the first row is
// available as soon as job 0's engine emits it, while the other
// partitions are still scanning. Channel buffers hold the full per-job
// quota (every job emits at most lim.first() matches), so workers never
// block on a slow consumer and an early stop needs no drain protocol.
// The shared quotaState stops partitions that cannot contribute, and the
// consumer additionally latches a stop — observed at the engines' next
// interrupt poll — once the page is delivered or yield declines.
//
// Callers guarantee: len(jobs) > 1, lim.first() > 0, p.spineOrdered(),
// and a streaming engine (ViewJoin or TwigStack).
func (p *PreparedQuery) runParallelStream(ctx context.Context, jobs []engine.Restriction, lim limits, start time.Time, yield func(row []Node) bool) (*Result, error) {
	var interrupt func() error
	if ctx != nil {
		interrupt = contextInterrupt(ctx, p.eng, p.q.String())
		if err := interrupt(); err != nil {
			return nil, err
		}
	}
	qs := newQuotaState(lim.first(), len(jobs))
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	chans := make([]chan match.Match, len(jobs))
	for i := range chans {
		chans[i] = make(chan match.Match, lim.first())
	}
	outs := make([]jobOut, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(chans[i])
			if int64(i) >= qs.cutoff.Load() {
				outs[i].skipped = true
				qs.complete(i, 0)
				return
			}
			jobInterrupt := func() error {
				if int64(i) >= qs.cutoff.Load() {
					return engine.ErrStop
				}
				select {
				case <-stop:
					return engine.ErrStop
				default:
				}
				if interrupt != nil {
					return interrupt()
				}
				return nil
			}
			emitted := 0
			outs[i] = p.runJob(&jobs[i], jobInterrupt, lim, func(m match.Match) bool {
				chans[i] <- match.Clone(m)
				emitted++
				return true
			})
			qs.complete(i, emitted)
		}(i)
	}

	skip := lim.offset
	delivered := 0
	var firstYield time.Time
	row := make([]Node, p.q.p.Size())
	for i := range chans {
		for m := range chans[i] {
			if lim.limit > 0 && delivered >= lim.limit {
				continue // page done: drain the bounded remainder
			}
			if skip > 0 {
				skip--
				continue
			}
			for j, id := range m {
				n := p.tree.Node(id)
				row[j] = Node{Tag: p.tree.TypeName(n.Type), Start: n.Start, End: n.End, Level: n.Level}
			}
			if firstYield.IsZero() {
				firstYield = time.Now()
			}
			delivered++
			if !yield(row) || (lim.limit > 0 && delivered >= lim.limit) {
				halt()
			}
		}
	}
	wg.Wait()

	var c counters.Counters
	var peak int64
	executed := 0
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		if outs[i].skipped {
			continue
		}
		executed++
		c.Add(outs[i].c)
		if outs[i].peak > peak {
			peak = outs[i].peak
		}
	}
	return p.buildResult(nil, c, peak, executed, start, firstYield, nil), nil
}
