package viewjoin

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/engine/twigstack"
	vjengine "viewjoin/internal/engine/viewjoin"
	"viewjoin/internal/match"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
)

// This file implements range-partitioned parallel evaluation: one prepared
// plan executed as K independent jobs over disjoint start-label slices of
// the document, with outputs merged back into sequential order.
//
// Partitions are anchored at the bottom of the query's unary spine — the
// first query node with other than exactly one child. A match binds the
// spine to an ancestor chain of its anchor binding and confines every
// other node to the anchor binding's subtree, so cutting the document
// between the merged subtree spans of the anchor's candidates assigns
// each match to exactly one chunk: the one containing its anchor binding.
// Each job evaluates with non-spine nodes range-restricted to its chunk
// and spine nodes admitted when they overlap it. See DESIGN.md,
// "Range-partitioned parallel evaluation", for the full argument.

// partitionInfo is what the planner needs from a prepared engine: the
// document regions of the anchor node's candidates (to place cuts that no
// match can straddle) and an estimated byte weight of a start range (to
// balance chunks).
type partitionInfo interface {
	AnchorSpans(qi int) []engine.Span
	WeightIn(lo, hi int32) int64
}

// listInfo adapts the list-file engines (ViewJoin, TwigStack, PathStack)
// to partitionInfo: node qi's candidates are the records of lists[qi],
// and weight is the payload bytes of every list's slice — the same
// quantity the page-cost model charges for scanning the slice.
type listInfo struct {
	lists []*store.ListFile
}

func (li listInfo) AnchorSpans(qi int) []engine.Span {
	if qi >= len(li.lists) || li.lists[qi] == nil {
		return nil
	}
	l := li.lists[qi]
	out := make([]engine.Span, l.Entries())
	for i := range out {
		lb := l.LabelAt(i)
		out[i] = engine.Span{Lo: lb.Start, Hi: lb.End}
	}
	return out
}

func (li listInfo) WeightIn(lo, hi int32) int64 {
	var w int64
	for _, l := range li.lists {
		if l == nil {
			continue
		}
		n := l.Entries()
		if n == 0 {
			continue
		}
		rec := l.PayloadBytes() / int64(n)
		w += int64(engine.CountInSpan(l, engine.Span{Lo: lo, Hi: hi})) * rec
	}
	return w
}

func (p *PreparedQuery) partitionInfo() partitionInfo {
	switch p.eng {
	case EngineViewJoin:
		return listInfo{p.vj.Lists()}
	case EngineTwigStack:
		return listInfo{p.ts.Lists()}
	case EnginePathStack:
		return listInfo{p.ps.Lists()}
	case EngineInterJoin:
		return p.ij
	}
	return nil
}

// parallelism resolves the prepare-time Parallelism option: 0 or 1 means
// sequential, negative means GOMAXPROCS.
func (p *PreparedQuery) parallelism() int {
	k := p.opts.Parallelism
	if k < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return k
}

// anchorNode walks the query's unary spine — the maximal pre-order prefix
// in which every node has exactly one child — and returns the index of its
// bottom: the first node with zero or several children. It returns -1 when
// the pattern's spine nodes are not laid out consecutively in pre-order
// (hand-built patterns), which the planner treats as unpartitionable.
func anchorNode(nodes []tpq.Node) int {
	b := 0
	for len(nodes[b].Children) == 1 {
		c := nodes[b].Children[0]
		if c != b+1 {
			return -1
		}
		b = c
	}
	return b
}

// planPartitions builds the job list for a K-way partitioned run, or nil
// when the query cannot be usefully partitioned — callers fall back to
// the sequential path, so partitioning degrades but never errors.
//
// The cut points come from the anchor node's candidates: their document
// regions, merged into disjoint blobs (MergeSpans), are the only places a
// match's anchor binding can live, and no blob's subtree extends into
// another. The blobs are coalesced into at most k chunks balanced by
// estimated page weight; each chunk becomes one job whose restriction
// pins the spine above it and bounds everything else inside it. A single
// blob (e.g. a query anchored at the document root) admits no cut and
// yields no parallelism.
func (p *PreparedQuery) planPartitions(k int) []engine.Restriction {
	if k <= 1 {
		return nil
	}
	b := anchorNode(p.q.p.Nodes)
	if b < 0 {
		return nil
	}
	info := p.partitionInfo()
	if info == nil {
		return nil
	}
	blobs := engine.MergeSpans(info.AnchorSpans(b))
	if len(blobs) <= 1 {
		return nil
	}
	chunks := engine.CoalesceSpans(blobs, func(s engine.Span) int64 {
		return info.WeightIn(s.Lo, s.Hi)
	}, k)
	if len(chunks) <= 1 {
		return nil
	}
	jobs := make([]engine.Restriction, len(chunks))
	for i, ch := range chunks {
		jobs[i] = engine.Restriction{Spine: b, Body: ch}
	}
	return jobs
}

// RunParallel executes the prepared plan as a range-partitioned parallel
// run across up to k workers (k <= 0 uses GOMAXPROCS) and returns a Result
// byte-identical to Run's: same matches in the same order, counters summed
// across partitions, PeakMemoryBytes the largest single partition's peak,
// and Stats.Partitions the number of jobs executed. When the plan yields
// fewer than two jobs the run degrades to the sequential path. ctx bounds
// every partition cooperatively, exactly as RunContext; a nil ctx runs
// uninterruptible. Safe for concurrent use under the same conditions as
// Run (prepare-time Tracer must be nil for concurrent calls).
func (p *PreparedQuery) RunParallel(ctx context.Context, k int) (*Result, error) {
	return p.runParallel(ctx, k, time.Now(), false, p.opts.Tracer)
}

// jobOut is one partition's outcome, written only by its worker.
type jobOut struct {
	ms   match.Set
	c    counters.Counters
	peak int64
	dur  time.Duration
	err  error
}

// runParallel plans and executes a partitioned run. Partitions run with
// nil tracers (Tracer implementations are not concurrency-safe); the
// orchestrator instead emits one EvPartition event per job carrying its
// wall time, so traced runs still expose the partition-span distribution.
func (p *PreparedQuery) runParallel(ctx context.Context, k int, start time.Time, includePrep bool, tr obs.Tracer) (*Result, error) {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	jobs := p.planPartitions(k)
	if len(jobs) <= 1 {
		return p.run(ctx, start, includePrep, tr)
	}
	var interrupt func() error
	if ctx != nil {
		interrupt = contextInterrupt(ctx, p.eng, p.q.String())
		if err := interrupt(); err != nil {
			return nil, err
		}
	}
	if tr != nil {
		if pl := p.lazyPlan(); pl != nil {
			tr.Plan(pl)
		}
		tr.BeginPhase(obs.PhaseEvaluate)
	}
	outs := make([]jobOut, len(jobs))
	workers := k
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				outs[i] = p.runJob(&jobs[i], interrupt)
			}
		}()
	}
	wg.Wait()
	if tr != nil {
		for i := range outs {
			tr.Event(obs.EvPartition, -1, int64(outs[i].dur))
		}
		tr.EndPhase(obs.PhaseEvaluate)
	}
	var c counters.Counters
	if includePrep {
		c.Add(p.prepC)
	}
	var (
		total int
		peak  int64
	)
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		c.Add(outs[i].c)
		if outs[i].peak > peak {
			peak = outs[i].peak
		}
		total += len(outs[i].ms)
	}
	ms := make(match.Set, 0, total)
	for i := range outs {
		ms = append(ms, outs[i].ms...)
	}
	// Jobs bound disjoint anchor ranges but spine bindings above them are
	// not chunk-ordered, so restore the canonical lexicographic order every
	// sequential engine emits.
	ms.Sort()
	return p.buildResult(ms, c, peak, len(jobs), start, tr), nil
}

// runJob executes one partition with its own counters and its own buffer
// pool of the configured size (pools simulate per-cursor-set caching and
// cannot be shared across goroutines).
func (p *PreparedQuery) runJob(r *engine.Restriction, interrupt func() error) jobOut {
	t0 := time.Now()
	var out jobOut
	io := counters.NewIO(&out.c, p.opts.BufferPoolPages)
	io.SetStall(p.opts.IOLatency)
	eopts := engine.Options{
		DiskBased:      p.opts.DiskBased,
		PageSize:       p.opts.PageSize,
		UnguardedJumps: p.opts.UnguardedJumps,
		Interrupt:      interrupt,
		Restrict:       r,
	}
	switch p.eng {
	case EngineViewJoin:
		var st vjengine.Stats
		out.ms, st, out.err = p.vj.Run(io, eopts)
		out.peak = int64(st.PeakWindowEntries) * 16
	case EngineTwigStack:
		var st twigstack.Stats
		out.ms, st, out.err = p.ts.Run(io, eopts)
		out.peak = int64(st.PeakWindowEntries) * 16
	case EnginePathStack:
		out.ms, out.err = p.ps.Run(io, eopts)
	case EngineInterJoin:
		out.ms, out.err = p.ij.Run(io, eopts)
	}
	io.DrainStall()
	out.dur = time.Since(t0)
	return out
}
