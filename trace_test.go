package viewjoin

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"viewjoin/internal/obs"
)

// traceFixture materializes the README's running example and returns the
// pieces a trace test needs.
func traceFixture(t testing.TB, scheme StorageScheme) (*Document, *Query, []*MaterializedView) {
	t.Helper()
	d := sampleDoc(t)
	q := MustParseQuery("//a[//f]//b//e")
	vs, err := ParseViews("//a//e; //b; //f")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := d.MaterializeViews(vs, scheme)
	if err != nil {
		t.Fatal(err)
	}
	return d, q, mv
}

func TestEvaluateTraceReport(t *testing.T) {
	d, q, mv := traceFixture(t, SchemeLEp)
	rec := obs.NewRecorder()
	res, err := Evaluate(d, q, mv, EngineViewJoin, &EvalOptions{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Trace
	if rep == nil {
		t.Fatal("Result.Trace not populated despite Recorder tracer")
	}
	if rep.Schema != obs.ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Plan == nil || rep.Plan.Query != q.String() || rep.Plan.Engine != "VJ" || rep.Plan.Scheme != "LEp" {
		t.Errorf("plan missing or wrong: %+v", rep.Plan)
	}
	if len(rep.Plan.Views) != 3 || rep.Plan.NumSegments == 0 {
		t.Errorf("plan views/segments: %+v", rep.Plan)
	}
	if len(rep.Plan.Nodes) != q.NumNodes() {
		t.Fatalf("plan has %d nodes, want %d", len(rep.Plan.Nodes), q.NumNodes())
	}
	for qi, n := range rep.Plan.Nodes {
		if n.View < 0 || n.ViewNode < 0 {
			t.Errorf("node %d unbound: %+v", qi, n)
		}
		if n.ListEntries < 0 {
			t.Errorf("node %d list entries unknown", qi)
		}
	}
	// The trace counters must equal the public stats.
	if rep.Counters.ElementsScanned != res.Stats.ElementsScanned ||
		rep.Counters.PagesRead != res.Stats.PagesRead ||
		rep.Counters.Matches != int64(len(res.Matches)) {
		t.Errorf("trace counters disagree with stats: %+v vs %+v", rep.Counters, res.Stats)
	}
	// Per-node scans must sum to the global counter.
	var scanned int64
	for _, n := range rep.Nodes {
		scanned += n.Scanned
	}
	if scanned != res.Stats.ElementsScanned {
		t.Errorf("per-node scans %d != total %d", scanned, res.Stats.ElementsScanned)
	}
	// Page events must split every pool touch.
	if rep.PageMisses != res.Stats.PagesRead {
		t.Errorf("page misses %d != pages read %d", rep.PageMisses, res.Stats.PagesRead)
	}
	if rep.PageHits+rep.PageMisses == 0 {
		t.Errorf("no page events recorded")
	}
	// Phase durations: evaluate and output must have run.
	phase := make(map[string]int64)
	for _, p := range rep.Phases {
		phase[p.Phase] = p.Nanos
	}
	for _, name := range []string{"segment", "evaluate"} {
		if _, ok := phase[name]; !ok {
			t.Errorf("phase %q missing from report", name)
		}
	}
	if rep.DurationNanos <= 0 {
		t.Errorf("non-positive total duration")
	}
}

func TestEvaluateTraceAllEngines(t *testing.T) {
	want := func() int {
		d, q, mv := traceFixture(t, SchemeLEp)
		res, err := Evaluate(d, q, mv, EngineViewJoin, nil)
		if err != nil {
			t.Fatal(err)
		}
		_ = d
		_ = mv
		return len(res.Matches)
	}()
	for _, tc := range []struct {
		eng    Engine
		scheme StorageScheme
	}{
		{EngineViewJoin, SchemeLEp},
		{EngineViewJoin, SchemeLE},
		{EngineViewJoin, SchemeElement},
		{EngineTwigStack, SchemeElement},
	} {
		d, q, mv := traceFixture(t, tc.scheme)
		rec := obs.NewRecorder()
		res, err := Evaluate(d, q, mv, tc.eng, &EvalOptions{Tracer: rec})
		if err != nil {
			t.Fatalf("%v+%v: %v", tc.eng, tc.scheme, err)
		}
		if len(res.Matches) != want {
			t.Errorf("%v+%v traced: %d matches, want %d (tracing changed results!)",
				tc.eng, tc.scheme, len(res.Matches), want)
		}
		if res.Trace == nil || res.Trace.Plan == nil {
			t.Errorf("%v+%v: no trace", tc.eng, tc.scheme)
		}
	}
}

func TestEvaluateTracePathEngines(t *testing.T) {
	d := sampleDoc(t)
	q := MustParseQuery("//a//b//c")
	vs, _ := ParseViews("//a//c; //b")
	want := EvaluateDirect(d, q)

	mv, err := d.MaterializeViews(vs, SchemeElement)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	res, err := Evaluate(d, q, mv, EnginePathStack, &EvalOptions{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(want.Matches) || res.Trace == nil || res.Trace.Plan.Engine != "PS" {
		t.Errorf("PathStack traced run wrong: %d matches, trace %v", len(res.Matches), res.Trace)
	}

	tv, err := d.MaterializeViews(vs, SchemeTuple)
	if err != nil {
		t.Fatal(err)
	}
	rec = obs.NewRecorder()
	res, err = Evaluate(d, q, tv, EngineInterJoin, &EvalOptions{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(want.Matches) || res.Trace == nil || res.Trace.Plan.Engine != "IJ" {
		t.Errorf("InterJoin traced run wrong: %d matches", len(res.Matches))
	}
	if res.Trace.Plan.Scheme != "T" {
		t.Errorf("InterJoin plan scheme = %q, want T", res.Trace.Plan.Scheme)
	}
}

func TestEvaluateWithoutViewsTrace(t *testing.T) {
	d := sampleDoc(t)
	q, err := ParseQueryGeneral("//a//b//e")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	res, err := EvaluateWithoutViews(d, q, EngineTwigStack, &EvalOptions{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Plan == nil {
		t.Fatal("no trace from EvaluateWithoutViews")
	}
	if res.Trace.Plan.Scheme != "E" || len(res.Trace.Plan.Views) != 3 {
		t.Errorf("raw-stream plan wrong: %+v", res.Trace.Plan)
	}
}

func TestTraceJumpEventsOnLinkedScheme(t *testing.T) {
	// On a larger document with LEp views, ViewJoin must actually take or
	// refuse pointer jumps, and those must show up in the trace.
	d := GenerateXMark(0.02)
	q := MustParseQuery("//site//item[//description//keyword]/name")
	vs, err := ParseViews("//site//item//name; //description//keyword")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := d.MaterializeViews(vs, SchemeLEp)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	res, err := Evaluate(d, q, mv, EngineViewJoin, &EvalOptions{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Trace
	ev := make(map[string]int64)
	for _, e := range rep.Events {
		ev[e.Event] = e.Count
	}
	if ev["scan"] == 0 || ev["cursorAdvance"] == 0 {
		t.Errorf("no scan/advance events: %v", ev)
	}
	if ev["jumpTaken"]+ev["jumpRefused"] == 0 {
		t.Errorf("no jump activity traced on LEp: %v", ev)
	}
	if ev["jumpTaken"] > 0 && len(rep.JumpSkipPages) == 0 {
		t.Errorf("jumps taken but skip histogram empty")
	}
	if ev["jumpTaken"] != res.Stats.PointerDerefs {
		// Jumps taken and pointer derefs are distinct measures (a deref is
		// counted when a pointer is read, a jump when it is followed), but
		// both must be non-zero together on this workload.
		if (ev["jumpTaken"] == 0) != (res.Stats.PointerDerefs == 0) {
			t.Errorf("jumpTaken=%d derefs=%d", ev["jumpTaken"], res.Stats.PointerDerefs)
		}
	}
}

func TestTraceRendersJSONAndExplain(t *testing.T) {
	d, q, mv := traceFixture(t, SchemeLEp)
	rec := obs.NewRecorder()
	res, err := Evaluate(d, q, mv, EngineViewJoin, &EvalOptions{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if decoded["schema"] != obs.ReportSchema {
		t.Errorf("schema field = %v", decoded["schema"])
	}
	var txt bytes.Buffer
	if err := res.Trace.WriteExplain(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"query //a[//f]//b//e via VJ", "segment", "buffer pool:", "node"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}
