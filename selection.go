package viewjoin

import (
	"fmt"

	"viewjoin/internal/viewsel"
)

// DefaultLambda is the paper's cost-model weight (§V): evaluation is CPU
// bound, so the join term dominates.
const DefaultLambda = viewsel.DefaultLambda

// ViewCost computes the paper's evaluation cost estimate c(v,Q) (§V) for
// answering q with the materialized view v:
//
//	c(v,Q) = (1-λ)·Σ|L_q| + λ·Σ|L_q|·e_q
//
// where e_q counts the query edges of each covered node not precomputed by
// the view.
func ViewCost(v *MaterializedView, q *Query, lambda float64) (float64, error) {
	return viewsel.Cost(candidate(v), q.p, lambda)
}

// SelectViews runs the paper's greedy cost-based view selection (§V) over
// a pool of materialized views: it returns a covering subset of q with
// high benefit-per-cost, or an error if the pool cannot cover q.
// Non-subpattern views in the pool are ignored.
func SelectViews(pool []*MaterializedView, q *Query, lambda float64) ([]*MaterializedView, error) {
	return selectWith(pool, q, func(cands []viewsel.Candidate) (*viewsel.Result, error) {
		return viewsel.SelectGreedy(cands, q.p, lambda)
	})
}

// SelectViewsBySize is the size-only baseline selection the paper compares
// against in Example 5.1.
func SelectViewsBySize(pool []*MaterializedView, q *Query) ([]*MaterializedView, error) {
	return selectWith(pool, q, func(cands []viewsel.Candidate) (*viewsel.Result, error) {
		return viewsel.SelectBySize(cands, q.p)
	})
}

func selectWith(pool []*MaterializedView, q *Query,
	sel func([]viewsel.Candidate) (*viewsel.Result, error)) ([]*MaterializedView, error) {
	cands := make([]viewsel.Candidate, len(pool))
	byString := make(map[string]*MaterializedView, len(pool))
	for i, v := range pool {
		cands[i] = candidate(v)
		byString[v.pattern.String()] = v
	}
	res, err := sel(cands)
	if err != nil {
		return nil, err
	}
	if !res.Covered {
		return nil, fmt.Errorf("viewjoin: pool cannot cover query %s", q)
	}
	out := make([]*MaterializedView, len(res.Selected))
	for i, c := range res.Selected {
		out[i] = byString[c.View.String()]
	}
	return out, nil
}

func candidate(v *MaterializedView) viewsel.Candidate {
	ls := v.ListSizes()
	sizes := make([]float64, len(ls))
	for i, n := range ls {
		sizes[i] = float64(n)
	}
	return viewsel.Candidate{View: v.pattern, ListSizes: sizes, Tag: v.pattern.String()}
}
