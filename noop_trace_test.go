package viewjoin

import (
	"testing"

	"viewjoin/internal/obs"
)

// noopTraceAllocCeiling pins the allocation cost of an untraced Evaluate on
// the standard workload below. The pre-observability baseline measured 771
// allocations per evaluation; the ceiling leaves a small slack for runtime
// noise (map growth timing) while still failing loudly if tracing ever
// allocates on the disabled path (per-event allocations would add
// thousands).
const noopTraceAllocCeiling = 800

func noopWorkload(t testing.TB) (*Document, *Query, []*MaterializedView) {
	t.Helper()
	d := GenerateXMark(0.05)
	q := MustParseQuery("//site//item[//description//keyword]/name")
	vs, err := ParseViews("//site//item//name; //description//keyword")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := d.MaterializeViews(vs, SchemeLEp)
	if err != nil {
		t.Fatal(err)
	}
	return d, q, mv
}

// TestNoopTracerAllocations asserts that leaving EvalOptions.Tracer nil
// keeps Evaluate at its pre-observability allocation count: the tracing
// hooks must cost nothing when disabled.
func TestNoopTracerAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is slow")
	}
	d, q, mv := noopWorkload(t)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Evaluate(d, q, mv, EngineViewJoin, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > noopTraceAllocCeiling {
		t.Errorf("untraced Evaluate allocates %.0f times, ceiling %d — the disabled tracing path must not allocate",
			allocs, noopTraceAllocCeiling)
	}
}

// BenchmarkEvaluateUntraced and BenchmarkEvaluateTraced compare the hot
// path with tracing off and on; `go test -bench Evaluate -benchmem .`
// shows the overhead tracing is allowed to cost only when requested.
func BenchmarkEvaluateUntraced(b *testing.B) {
	d, q, mv := noopWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(d, q, mv, EngineViewJoin, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateTraced(b *testing.B) {
	d, q, mv := noopWorkload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := obs.NewRecorder()
		if _, err := Evaluate(d, q, mv, EngineViewJoin, &EvalOptions{Tracer: rec}); err != nil {
			b.Fatal(err)
		}
	}
}
