package viewjoin

import (
	"fmt"
	"time"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/engine/pathstack"
	"viewjoin/internal/engine/twigstack"
	"viewjoin/internal/match"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/xmltree"
)

// ParseQueryGeneral parses a TPQ that may repeat element types (e.g.
// "//section//figure//section"), the general query class the paper defers
// to [5]. General queries cannot be answered through the view machinery
// (which assumes unique types, §II) but evaluate directly over raw element
// streams with EvaluateWithoutViews and EvaluateDirect.
func ParseQueryGeneral(s string) (*Query, error) {
	p, err := tpq.ParseGeneral(s)
	if err != nil {
		return nil, err
	}
	return &Query{p}, nil
}

// EvaluateWithoutViews answers q over raw per-type element streams — the
// conventional structural/twig join setting without materialized views
// (the element storage scheme over single-element "views", §I). This is
// the baseline the original InterJoin work [22] compared against, and the
// only evaluation path for general queries with repeated element types:
// duplicate query nodes simply open independent cursors over the same
// type's stream.
//
// Supported engines: EngineTwigStack (any query) and EnginePathStack (path
// queries). The view-based engines require materialized views by
// definition.
func EvaluateWithoutViews(d *Document, q *Query, eng Engine, opts *EvalOptions) (*Result, error) {
	if opts == nil {
		opts = &EvalOptions{}
	}
	t := d.tree()
	tr := opts.Tracer
	if tr != nil {
		tr.BeginPhase(obs.PhaseBind)
	}
	lists, err := rawStreams(t, q)
	if tr != nil {
		tr.EndPhase(obs.PhaseBind)
	}
	if err != nil {
		return nil, err
	}
	var c counters.Counters
	io := counters.NewIO(&c, opts.BufferPoolPages)
	if tr != nil {
		io.Page = func(miss bool) {
			if miss {
				tr.Event(obs.EvPageMiss, -1, 1)
			} else {
				tr.Event(obs.EvPageHit, -1, 1)
			}
		}
		tr.Plan(rawStreamPlan(q.p, eng, lists))
	}
	eopts := engine.Options{Tracer: tr, DiskBased: opts.DiskBased, PageSize: opts.PageSize}
	if ctx := opts.Context; ctx != nil {
		eopts.Interrupt = contextInterrupt(ctx, eng, q.String())
		if err := eopts.Interrupt(); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	var ms match.Set
	if tr != nil {
		tr.BeginPhase(obs.PhaseEvaluate)
	}
	switch eng {
	case EngineTwigStack:
		ms, _, err = twigstack.Eval(t, q.p, lists, io, eopts)
	case EnginePathStack:
		ms, err = pathstack.Eval(t, q.p, lists, io, eopts)
	default:
		err = fmt.Errorf("viewjoin: engine %v requires materialized views; use TS or PS without views", eng)
	}
	if tr != nil {
		tr.EndPhase(obs.PhaseEvaluate)
	}
	if err != nil {
		return nil, err
	}
	dur := time.Since(start)

	res := &Result{
		Matches: make([][]Node, len(ms)),
		Stats: Stats{
			ElementsScanned: c.ElementsScanned,
			Comparisons:     c.Comparisons,
			PointerDerefs:   c.PointerDerefs,
			PagesRead:       c.PagesRead,
			PagesWritten:    c.PagesWritten,
			Duration:        dur,
		},
	}
	if tr != nil {
		tr.BeginPhase(obs.PhaseOutput)
	}
	for i, m := range ms {
		row := make([]Node, len(m))
		for j, id := range m {
			n := t.Node(id)
			row[j] = Node{Tag: t.TypeName(n.Type), Start: n.Start, End: n.End, Level: n.Level}
		}
		res.Matches[i] = row
	}
	if tr != nil {
		tr.EndPhase(obs.PhaseOutput)
	}
	if rec, ok := tr.(*obs.Recorder); ok {
		res.Trace = rec.Report(c, time.Since(start))
	}
	return res, nil
}

// rawStreamPlan describes the no-view setting: every query node reads the
// raw element stream of its type (the element scheme over single-element
// views).
func rawStreamPlan(q *tpq.Pattern, eng Engine, lists []*store.ListFile) *obs.Plan {
	p := &obs.Plan{
		Query:  q.String(),
		Engine: eng.String(),
		Scheme: store.Element.String(),
		Nodes:  make([]obs.PlanNode, q.Size()),
	}
	seen := make(map[string]bool)
	for qi := range q.Nodes {
		if l := q.Nodes[qi].Label; !seen[l] {
			seen[l] = true
			p.Views = append(p.Views, "//"+l)
		}
	}
	for qi := range p.Nodes {
		p.Nodes[qi] = obs.PlanNode{
			Index:       qi,
			Label:       q.Nodes[qi].Label,
			Axis:        q.Nodes[qi].Axis.String(),
			Parent:      q.Nodes[qi].Parent,
			View:        -1,
			ViewNode:    -1,
			Segment:     -1,
			ListEntries: lists[qi].Entries(),
		}
	}
	return p
}

// rawStreams builds one element-scheme list per distinct element type of q
// (all nodes of that type, in document order) and binds every query node —
// including duplicates — to its type's list.
func rawStreams(t *xmltree.Document, q *Query) ([]*store.ListFile, error) {
	byLabel := make(map[string]*store.ListFile)
	lists := make([]*store.ListFile, q.p.Size())
	for qi := range q.p.Nodes {
		label := q.p.Nodes[qi].Label
		lf, ok := byLabel[label]
		if !ok {
			single := &tpq.Pattern{Nodes: []tpq.Node{{Label: label, Axis: tpq.Descendant, Parent: -1}}}
			mat, err := views.Materialize(t, single)
			if err != nil {
				return nil, err
			}
			st, err := store.Build(mat, store.Element, 0)
			if err != nil {
				return nil, err
			}
			lf = st.Lists[0]
			byLabel[label] = lf
		}
		lists[qi] = lf
	}
	return lists, nil
}
