package viewjoin

import (
	"fmt"

	"viewjoin/internal/match"
	"viewjoin/internal/store"
	"viewjoin/internal/views"
)

// MaterializeResult captures a query's already computed result as a new
// materialized view in the given scheme, without re-evaluating the query —
// the paper's observation (§IV-B) that ViewJoin's intermediate DAG doubles
// as a materialized view of the result. The returned view can cover any
// later query that q is a subpattern of.
//
// The result must come from evaluating q over this document (the complete
// match set); passing a partial result materializes only that subset.
func (d *Document) MaterializeResult(q *Query, res *Result, scheme StorageScheme, opts *MaterializeOptions) (*MaterializedView, error) {
	snap := d.snap()
	ms := make(match.Set, len(res.Matches))
	for i, row := range res.Matches {
		if len(row) != q.p.Size() {
			return nil, fmt.Errorf("viewjoin: result row %d binds %d nodes for a %d-node query",
				i, len(row), q.p.Size())
		}
		m := make(match.Match, len(row))
		for j, n := range row {
			id := snap.tree.FindByStart(n.Start)
			if id < 0 {
				return nil, fmt.Errorf("viewjoin: result row %d references start %d not in this document", i, n.Start)
			}
			m[j] = id
		}
		ms[i] = m
	}
	mat, err := views.FromMatches(snap.tree, q.p, ms)
	if err != nil {
		return nil, err
	}
	pageSize := 0
	if opts != nil {
		pageSize = opts.PageSize
	}
	st, err := store.Build(mat, scheme.kind(), pageSize)
	if err != nil {
		return nil, err
	}
	return newView(d, snap, q.p, mat, st, nil), nil
}
