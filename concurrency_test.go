package viewjoin

import (
	"sync"
	"testing"
)

// TestConcurrentEvaluation: a Document and its materialized views are
// immutable after construction and safe for parallel query evaluation
// (each Evaluate call owns its cursors and counters). Run with -race.
func TestConcurrentEvaluation(t *testing.T) {
	d := GenerateXMark(0.05)
	q := MustParseQuery("//site//item[//description//keyword]/name")
	vs, err := ParseViews("//site//item//name; //description//keyword")
	if err != nil {
		t.Fatal(err)
	}
	mv, err := d.MaterializeViews(vs, SchemeLE)
	if err != nil {
		t.Fatal(err)
	}
	want := -1

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	counts := make(chan int, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng := []Engine{EngineViewJoin, EngineTwigStack}[i%2]
			res, err := Evaluate(d, q, mv, eng, &EvalOptions{DiskBased: i%4 == 0})
			if err != nil {
				errs <- err
				return
			}
			counts <- len(res.Matches)
		}(i)
	}
	wg.Wait()
	close(errs)
	close(counts)
	for err := range errs {
		t.Fatal(err)
	}
	for c := range counts {
		if want == -1 {
			want = c
		} else if c != want {
			t.Fatalf("concurrent runs disagree: %d vs %d", c, want)
		}
	}
}

// TestConcurrentMaterialization: parallel materialization over one shared
// document (the lazy type/start indexes must be race-free).
func TestConcurrentMaterialization(t *testing.T) {
	d := GenerateNasa(120)
	patterns := []string{"//field//para", "//dataset//definition", "//journal//lastname", "//revision//para"}
	var wg sync.WaitGroup
	errs := make(chan error, len(patterns)*4)
	for i := 0; i < 4; i++ {
		for _, p := range patterns {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				v := MustParseQuery(p)
				if _, err := d.MaterializeView(v, SchemeLEp, nil); err != nil {
					errs <- err
				}
			}(p)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
