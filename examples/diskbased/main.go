// Diskbased: the paper's §IV memory-based vs disk-based output approaches.
// The memory-based approach keeps each intermediate solution window (the
// DAG F) in memory — fast, but peak memory grows with the largest window.
// The disk-based approach spools windows through scratch pages and reads
// them back, keeping the resident set at O(|Q|·depth) at the price of
// extra I/O (the paper's Table V).
//
// Run with: go run ./examples/diskbased
package main

import (
	"fmt"
	"log"

	"viewjoin"
)

func main() {
	d := viewjoin.GenerateXMark(1.0)
	q := viewjoin.MustParseQuery("//site//item[//description//keyword]/name")
	views, err := viewjoin.ParseViews("//site//item//name; //description//keyword")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %d nodes, query: %s\n\n", d.NumNodes(), q)

	mviews, err := d.MaterializeViews(views, viewjoin.SchemeLE)
	if err != nil {
		log.Fatal(err)
	}

	for _, eng := range []viewjoin.Engine{viewjoin.EngineTwigStack, viewjoin.EngineViewJoin} {
		mem, err := viewjoin.Evaluate(d, q, mviews, eng, &viewjoin.EvalOptions{DiskBased: false})
		if err != nil {
			log.Fatal(err)
		}
		disk, err := viewjoin.Evaluate(d, q, mviews, eng, &viewjoin.EvalOptions{DiskBased: true})
		if err != nil {
			log.Fatal(err)
		}
		if len(mem.Matches) != len(disk.Matches) {
			log.Fatalf("%v: approaches disagree (%d vs %d matches)", eng, len(mem.Matches), len(disk.Matches))
		}
		fmt.Printf("%s, %d matches\n", eng, len(mem.Matches))
		fmt.Printf("  memory-based: %8v  peakMem=%-8d pagesRead=%-5d pagesWritten=%d\n",
			mem.Stats.Duration.Round(10e3), mem.Stats.PeakMemoryBytes, mem.Stats.PagesRead, mem.Stats.PagesWritten)
		fmt.Printf("  disk-based:   %8v  peakMem=%-8s pagesRead=%-5d pagesWritten=%d\n\n",
			disk.Stats.Duration.Round(10e3), "O(|Q|·depth)", disk.Stats.PagesRead, disk.Stats.PagesWritten)
	}
	fmt.Println("the disk-based runs trade extra page I/O for bounded memory,")
	fmt.Println("mirroring the paper's Table V.")
}
