// Resultviews: the paper's §IV-B observation that ViewJoin's intermediate
// DAG doubles as a materialized view of the query result. A query's answer
// is captured as a new linked-element view — without re-evaluating the
// pattern — and then used to answer a larger query that contains it.
//
// Run with: go run ./examples/resultviews
package main

import (
	"fmt"
	"log"

	"viewjoin"
)

func main() {
	d := viewjoin.GenerateNasa(1500)
	fmt.Printf("Nasa-like document: %d nodes\n\n", d.NumNodes())

	// Step 1: answer a frequently used sub-pattern with ViewJoin.
	sub := viewjoin.MustParseQuery("//field//definition//para")
	subViews, err := viewjoin.ParseViews("//field//definition; //para")
	if err != nil {
		log.Fatal(err)
	}
	mv, err := d.MaterializeViews(subViews, viewjoin.SchemeLE)
	if err != nil {
		log.Fatal(err)
	}
	res, err := viewjoin.Evaluate(d, sub, mv, viewjoin.EngineViewJoin, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1: %s -> %d matches (%v)\n", sub, len(res.Matches), res.Stats.Duration.Round(10e3))

	// Step 2: store that result as a view — the window DAG's content becomes
	// per-node lists with child/descendant/following pointers, no
	// re-evaluation of the pattern needed.
	resultView, err := d.MaterializeResult(sub, res, viewjoin.SchemeLE, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: result captured as a %s view: %d entries, %d pointers, %d bytes\n",
		resultView.Scheme(), resultView.NumEntries(), resultView.NumPointers(), resultView.SizeBytes())

	// Step 3: answer a bigger query that contains the sub-pattern, reusing
	// the captured result as one of its covering views.
	big := viewjoin.MustParseQuery("//dataset//tableHead//field//definition//para")
	extra, err := viewjoin.ParseViews("//dataset//tableHead")
	if err != nil {
		log.Fatal(err)
	}
	extraMV, err := d.MaterializeViews(extra, viewjoin.SchemeLE)
	if err != nil {
		log.Fatal(err)
	}
	cover := append([]*viewjoin.MaterializedView{resultView}, extraMV...)

	res2, err := viewjoin.Evaluate(d, big, cover, viewjoin.EngineViewJoin, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 3: %s via the result view -> %d matches (%v, %d elements scanned)\n",
		big, len(res2.Matches), res2.Stats.Duration.Round(10e3), res2.Stats.ElementsScanned)

	// Cross-check against direct evaluation.
	want := viewjoin.EvaluateDirect(d, big)
	fmt.Printf("\ndirect evaluation agrees: %v (%d matches)\n",
		len(want.Matches) == len(res2.Matches), len(want.Matches))
}
