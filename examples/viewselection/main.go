// Viewselection: the paper's §V cost-based view selection on the Nasa
// dataset (Table II / Example 5.1). Given a pool of materialized views,
// the greedy heuristic weighs each view's list sizes against the
// interleaving conditions it leaves unjoined, and picks a cheaper covering
// set than a size-only heuristic would.
//
// Run with: go run ./examples/viewselection
package main

import (
	"fmt"
	"log"

	"viewjoin"
)

func main() {
	d := viewjoin.GenerateNasa(2000)
	q := viewjoin.MustParseQuery("//dataset//tableHead[//tableLink//title]//field//definition//para")
	fmt.Printf("Nasa-like document: %d nodes\nquery: %s\n\n", d.NumNodes(), q)

	poolPatterns, err := viewjoin.ParseViews(
		"//dataset//definition; //dataset//tableHead; //field//para; " +
			"//definition; //tableLink//title; //field//definition//para")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("candidate pool (Table II):")
	var pool []*viewjoin.MaterializedView
	for i, p := range poolPatterns {
		mv, err := d.MaterializeView(p, viewjoin.SchemeLE, nil)
		if err != nil {
			log.Fatal(err)
		}
		pool = append(pool, mv)
		cost, err := viewjoin.ViewCost(mv, q, viewjoin.DefaultLambda)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  v%d %-28s %7d bytes   c(v,Q) = %.0f\n", i+1, p, mv.SizeBytes(), cost)
	}

	costBased, err := viewjoin.SelectViews(pool, q, viewjoin.DefaultLambda)
	if err != nil {
		log.Fatal(err)
	}
	bySize, err := viewjoin.SelectViewsBySize(pool, q)
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, sel []*viewjoin.MaterializedView) int {
		fmt.Printf("\n%s:\n", label)
		for _, v := range sel {
			fmt.Printf("  %s\n", v.Pattern())
		}
		res, err := viewjoin.Evaluate(d, q, sel, viewjoin.EngineViewJoin, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -> %d matches, %v, %d elements scanned\n",
			len(res.Matches), res.Stats.Duration.Round(10e3), res.Stats.ElementsScanned)
		return len(res.Matches)
	}
	a := show("cost-based selection (λ=1, the paper's heuristic)", costBased)
	b := show("size-only baseline selection", bySize)
	if a != b {
		log.Fatalf("selections disagree: %d vs %d matches", a, b)
	}
	fmt.Println("\nboth selections answer the query identically; the cost model")
	fmt.Println("prefers views that precompute more of the query's joins.")
}
