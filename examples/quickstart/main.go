// Quickstart: parse an XML document, materialize a set of views in the
// partial linked-element scheme, and answer a twig query with ViewJoin.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"viewjoin"
)

const doc = `
<library>
  <shelf>
    <book>
      <author><name/></author>
      <chapter><section/><section/></chapter>
    </book>
    <book>
      <chapter><section/></chapter>
    </book>
  </shelf>
  <shelf>
    <book>
      <author><name/></author>
      <chapter/>
    </book>
  </shelf>
</library>`

func main() {
	// 1. Parse the document: every element gets a <start, end, level>
	// region label, so structural relationships are O(1).
	d, err := viewjoin.ParseDocumentString(doc)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A tree pattern query: books that have an author, and all their
	// chapter sections. Every query node is an output node.
	q, err := viewjoin.ParseQuery("//book[//author]//chapter//section")
	if err != nil {
		log.Fatal(err)
	}

	// 3. A covering view set: each view is a subpattern of the query and
	// the views' element types are disjoint. The book//chapter join is
	// precomputed inside the first view.
	views, err := viewjoin.ParseViews("//book//chapter; //author; //section")
	if err != nil {
		log.Fatal(err)
	}
	if err := viewjoin.ValidateViewSet(q, views); err != nil {
		log.Fatal(err)
	}

	// 4. Materialize the views in the LEp scheme: per-node solution lists
	// plus the child pointers and the long-distance following pointers.
	mviews, err := d.MaterializeViews(views, viewjoin.SchemeLEp)
	if err != nil {
		log.Fatal(err)
	}
	for _, mv := range mviews {
		fmt.Printf("view %-18s %3d entries, %2d pointers, %d bytes on disk\n",
			mv.Pattern(), mv.NumEntries(), mv.NumPointers(), mv.SizeBytes())
	}

	// 5. Evaluate with ViewJoin.
	res, err := viewjoin.Evaluate(d, q, mviews, viewjoin.EngineViewJoin, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s -> %d matches (%d elements scanned, %d comparisons)\n",
		q, len(res.Matches), res.Stats.ElementsScanned, res.Stats.Comparisons)
	labels := q.Labels()
	for _, m := range res.Matches {
		parts := make([]string, len(m))
		for i, n := range m {
			parts[i] = fmt.Sprintf("%s@%d", labels[i], n.Start)
		}
		fmt.Println("  ", strings.Join(parts, "  "))
	}

	// 6. Cross-check against the brute-force reference evaluator.
	direct := viewjoin.EvaluateDirect(d, q)
	fmt.Printf("\ndirect evaluation agrees: %v\n", len(direct.Matches) == len(res.Matches))
}
