// Auctionsite: the paper's XMark workload end to end — generate an
// auction-site document, materialize covering views in all four storage
// schemes, and compare every applicable engine/scheme combination on a
// path query and a twig query (the seven combinations of the paper's
// Table I).
//
// Run with: go run ./examples/auctionsite
package main

import (
	"fmt"
	"log"

	"viewjoin"
)

func main() {
	d := viewjoin.GenerateXMark(0.5)
	fmt.Printf("XMark-like auction site: %d element nodes\n\n", d.NumNodes())

	// A path query (InterJoin-eligible) and a twig query.
	pathQ := viewjoin.MustParseQuery("//site/open_auctions/open_auction/bidder/increase")
	pathViews, err := viewjoin.ParseViews("//site//increase; //open_auctions//open_auction//bidder")
	if err != nil {
		log.Fatal(err)
	}
	twigQ := viewjoin.MustParseQuery("//site//item[//description//keyword]/name")
	twigViews, err := viewjoin.ParseViews("//site//item//name; //description//keyword")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("path query %s\n", pathQ)
	compare(d, pathQ, pathViews, true)
	fmt.Printf("\ntwig query %s\n", twigQ)
	compare(d, twigQ, twigViews, false)
}

func compare(d *viewjoin.Document, q *viewjoin.Query, views []*viewjoin.Query, withIJ bool) {
	type comboT struct {
		engine viewjoin.Engine
		scheme viewjoin.StorageScheme
	}
	combos := []comboT{
		{viewjoin.EngineTwigStack, viewjoin.SchemeElement},
		{viewjoin.EngineTwigStack, viewjoin.SchemeLE},
		{viewjoin.EngineTwigStack, viewjoin.SchemeLEp},
		{viewjoin.EngineViewJoin, viewjoin.SchemeElement},
		{viewjoin.EngineViewJoin, viewjoin.SchemeLE},
		{viewjoin.EngineViewJoin, viewjoin.SchemeLEp},
	}
	if withIJ {
		combos = append([]comboT{{viewjoin.EngineInterJoin, viewjoin.SchemeTuple}}, combos...)
	}

	cache := map[viewjoin.StorageScheme][]*viewjoin.MaterializedView{}
	matches := -1
	for _, c := range combos {
		mv, ok := cache[c.scheme]
		if !ok {
			var err error
			mv, err = d.MaterializeViews(views, c.scheme)
			if err != nil {
				log.Fatal(err)
			}
			cache[c.scheme] = mv
		}
		res, err := viewjoin.Evaluate(d, q, mv, c.engine, nil)
		if err != nil {
			log.Fatal(err)
		}
		if matches == -1 {
			matches = len(res.Matches)
		} else if matches != len(res.Matches) {
			log.Fatalf("%v+%v disagrees: %d vs %d matches", c.engine, c.scheme, len(res.Matches), matches)
		}
		fmt.Printf("  %3s+%-4s %10v  scanned=%-7d cmp=%-8d derefs=%-6d pages=%d\n",
			c.engine, c.scheme, res.Stats.Duration.Round(10e3),
			res.Stats.ElementsScanned, res.Stats.Comparisons, res.Stats.PointerDerefs, res.Stats.PagesRead)
	}
	fmt.Printf("  all engines agree on %d matches\n", matches)
}
