package viewjoin

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestGrandCrossCheck is the repository's widest equivalence property: on
// random documents and random path queries, every engine (ViewJoin,
// TwigStack, PathStack, InterJoin), every storage scheme it supports, and
// both output approaches must return exactly the direct evaluator's
// matches, under both chunked and interleaved view factorizations.
func TestGrandCrossCheck(t *testing.T) {
	paths := []string{"//a//b", "//a/b//c", "//a//b//c//e", "//b//e", "//c//a//f"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := ParseDocumentString(randomXML(rng))
		if err != nil {
			return false
		}
		q := MustParseQuery(paths[rng.Intn(len(paths))])
		want := EvaluateDirect(d, q)

		// View factorizations: singleton, chunked pairs, interleaved.
		labels := q.Labels()
		var sets [][]string
		var single []string
		for _, l := range labels {
			single = append(single, "//"+l)
		}
		sets = append(sets, single)
		if len(labels) >= 2 {
			var chunked []string
			for i := 0; i < len(labels); i += 2 {
				v := "//" + labels[i]
				if i+1 < len(labels) {
					v += "//" + labels[i+1]
				}
				chunked = append(chunked, v)
			}
			sets = append(sets, chunked)
			var evens, odds []string
			for i, l := range labels {
				if i%2 == 0 {
					evens = append(evens, l)
				} else {
					odds = append(odds, l)
				}
			}
			interleaved := []string{"//" + strings.Join(evens, "//")}
			if len(odds) > 0 {
				interleaved = append(interleaved, "//"+strings.Join(odds, "//"))
			}
			sets = append(sets, interleaved)
		}

		for _, set := range sets {
			vs, err := ParseViews(strings.Join(set, ";"))
			if err != nil {
				t.Logf("ParseViews(%v): %v", set, err)
				return false
			}
			for _, scheme := range []StorageScheme{SchemeElement, SchemeLE, SchemeLEp} {
				mv, err := d.MaterializeViews(vs, scheme)
				if err != nil {
					t.Logf("materialize: %v", err)
					return false
				}
				for _, eng := range []Engine{EngineViewJoin, EngineTwigStack, EnginePathStack} {
					for _, disk := range []bool{false, true} {
						if eng == EnginePathStack && disk {
							continue // PathStack has no disk-based variant
						}
						res, err := Evaluate(d, q, mv, eng, &EvalOptions{DiskBased: disk})
						if err != nil {
							t.Logf("%v+%v disk=%v: %v", eng, scheme, disk, err)
							return false
						}
						if !sameMatches(res, want) {
							t.Logf("seed=%d q=%s views=%v %v+%v disk=%v: %d vs %d",
								seed, q, set, eng, scheme, disk, len(res.Matches), len(want.Matches))
							return false
						}
					}
				}
			}
			// InterJoin over tuple views.
			tv, err := d.MaterializeViews(vs, SchemeTuple)
			if err != nil {
				return false
			}
			res, err := Evaluate(d, q, tv, EngineInterJoin, nil)
			if err != nil {
				t.Logf("IJ: %v", err)
				return false
			}
			if !sameMatches(res, want) {
				t.Logf("seed=%d q=%s views=%v IJ: %d vs %d", seed, q, set, len(res.Matches), len(want.Matches))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// roundTripViews pushes every view through SaveView → LoadView and returns
// the reloaded set, failing the test on any serialization error.
func roundTripViews(t *testing.T, d *Document, mv []*MaterializedView) []*MaterializedView {
	t.Helper()
	out := make([]*MaterializedView, len(mv))
	for i, v := range mv {
		var buf bytes.Buffer
		n, err := v.SaveView(&buf)
		if err != nil {
			t.Fatalf("SaveView(%s): %v", v.Pattern(), err)
		}
		if n != int64(buf.Len()) {
			t.Fatalf("SaveView(%s) reported %d bytes, wrote %d", v.Pattern(), n, buf.Len())
		}
		lv, err := d.LoadView(&buf)
		if err != nil {
			t.Fatalf("LoadView(%s): %v", v.Pattern(), err)
		}
		out[i] = lv
	}
	return out
}

// TestPersistenceRoundTripCrossCheck is the persistence equivalence
// property: for every engine and its scheme, evaluating over views that
// went through a SaveView → LoadView round trip must be byte-identical —
// matches and deterministic counters both — to evaluating over the
// in-memory originals. It also pins the structured failure modes: a
// truncated stream is an ErrViewTruncated at every cut point, and a view
// loaded into the wrong document is a *DocMismatchError.
func TestPersistenceRoundTripCrossCheck(t *testing.T) {
	d := GenerateXMark(0.05)
	for _, c := range preparedCases() {
		t.Run(c.name, func(t *testing.T) {
			q, mv := materializeCase(t, d, c)
			want, err := Evaluate(d, q, mv, c.eng, nil)
			if err != nil {
				t.Fatal(err)
			}
			loaded := roundTripViews(t, d, mv)
			got, err := Evaluate(d, q, loaded, c.eng, nil)
			if err != nil {
				t.Fatalf("Evaluate over reloaded views: %v", err)
			}
			if !identicalMatches(got, want) {
				t.Fatalf("reloaded views: %d matches, in-memory %d", len(got.Matches), len(want.Matches))
			}
			if !sameCounters(got.Stats, want.Stats) {
				t.Fatalf("reloaded views changed the cost: %+v vs %+v", got.Stats, want.Stats)
			}
			// Prepared plans over reloaded views must agree too.
			p, err := Prepare(d, q, loaded, c.eng, nil)
			if err != nil {
				t.Fatal(err)
			}
			pres, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !identicalMatches(pres, want) {
				t.Fatalf("prepared over reloaded views: %d matches, want %d", len(pres.Matches), len(want.Matches))
			}
		})
	}

	t.Run("Truncated", func(t *testing.T) {
		vs, err := ParseViews("//site//item//name")
		if err != nil {
			t.Fatal(err)
		}
		mv, err := d.MaterializeViews(vs, SchemeLEp)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := mv[0].SaveView(&buf); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()
		// Cut the stream at a spread of prefixes covering the fingerprint
		// header, the store header, and mid-payload truncation.
		cuts := []int{0, 1, 7, 8, 9, len(full) / 2, len(full) - 1}
		for _, cut := range cuts {
			_, err := d.LoadView(bytes.NewReader(full[:cut]))
			if err == nil {
				t.Fatalf("LoadView accepted a stream truncated to %d/%d bytes", cut, len(full))
			}
			if !errors.Is(err, ErrViewTruncated) {
				t.Errorf("cut at %d: error %v does not match ErrViewTruncated", cut, err)
			}
		}
	})

	t.Run("DocMismatch", func(t *testing.T) {
		other := GenerateXMark(0.03)
		vs, err := ParseViews("//site//item//name")
		if err != nil {
			t.Fatal(err)
		}
		mv, err := other.MaterializeViews(vs, SchemeLEp)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := mv[0].SaveView(&buf); err != nil {
			t.Fatal(err)
		}
		_, err = d.LoadView(&buf)
		var dm *DocMismatchError
		if !errors.As(err, &dm) {
			t.Fatalf("LoadView into the wrong document: error %v (%T), want *DocMismatchError", err, err)
		}
		if dm.Want != treeFingerprint(d.tree()) || dm.Saved != treeFingerprint(other.tree()) {
			t.Errorf("DocMismatchError fingerprints %x/%x, want %x/%x",
				dm.Saved, dm.Want, treeFingerprint(other.tree()), treeFingerprint(d.tree()))
		}
	})
}

// TestBenchmarkWorkloadCrossCheck runs every benchmark query of the paper's
// workload through every applicable engine/scheme pair on small instances
// of both datasets and demands exact agreement with the direct evaluator —
// the end-to-end guarantee behind the experiment tables.
func TestBenchmarkWorkloadCrossCheck(t *testing.T) {
	type wl struct {
		doc     *Document
		queries map[string][2]string // name -> query, views
	}
	xm := GenerateXMark(0.03)
	ns := GenerateNasa(150)
	jobs := []wl{
		{xm, map[string][2]string{
			"Q2":  {"//site/open_auctions/open_auction/bidder/increase", "//site//increase; //open_auctions//open_auction//bidder"},
			"Q14": {"//site//item[//description//keyword]/name", "//site//item//name; //description//keyword"},
		}},
		{ns, map[string][2]string{
			"N1": {"//field//footnote//para", "//field//para; //footnote"},
			"N6": {"//journal[//suffix][title]/date/year", "//journal/date/year; //suffix; //title"},
		}},
	}
	for _, job := range jobs {
		for name, qv := range job.queries {
			q := MustParseQuery(qv[0])
			vs, err := ParseViews(qv[1])
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want := EvaluateDirect(job.doc, q)
			for _, scheme := range []StorageScheme{SchemeElement, SchemeLE, SchemeLEp} {
				mv, err := job.doc.MaterializeViews(vs, scheme)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				engines := []Engine{EngineViewJoin, EngineTwigStack}
				if q.IsPath() {
					engines = append(engines, EnginePathStack)
				}
				for _, eng := range engines {
					res, err := Evaluate(job.doc, q, mv, eng, nil)
					if err != nil {
						t.Fatalf("%s %v+%v: %v", name, eng, scheme, err)
					}
					if !sameMatches(res, want) {
						t.Errorf("%s %v+%v: %d matches, want %d", name, eng, scheme, len(res.Matches), len(want.Matches))
					}
					// A reused prepared plan must reproduce the one-shot
					// evaluation exactly, run after run.
					p, err := Prepare(job.doc, q, mv, eng, nil)
					if err != nil {
						t.Fatalf("%s %v+%v: Prepare: %v", name, eng, scheme, err)
					}
					for run := 0; run < 2; run++ {
						pres, err := p.Run()
						if err != nil {
							t.Fatalf("%s %v+%v: Run %d: %v", name, eng, scheme, run, err)
						}
						if !identicalMatches(pres, res) {
							t.Errorf("%s %v+%v: prepared run %d diverges from one-shot (%d vs %d matches)",
								name, eng, scheme, run, len(pres.Matches), len(res.Matches))
						}
					}
				}
			}
			if q.IsPath() {
				tv, err := job.doc.MaterializeViews(vs, SchemeTuple)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				res, err := Evaluate(job.doc, q, tv, EngineInterJoin, nil)
				if err != nil {
					t.Fatalf("%s IJ: %v", name, err)
				}
				if !sameMatches(res, want) {
					t.Errorf("%s IJ: %d matches, want %d", name, len(res.Matches), len(want.Matches))
				}
				p, err := Prepare(job.doc, q, tv, EngineInterJoin, nil)
				if err != nil {
					t.Fatalf("%s IJ: Prepare: %v", name, err)
				}
				for run := 0; run < 2; run++ {
					pres, err := p.Run()
					if err != nil {
						t.Fatalf("%s IJ: Run %d: %v", name, run, err)
					}
					if !identicalMatches(pres, res) {
						t.Errorf("%s IJ: prepared run %d diverges from one-shot (%d vs %d matches)",
							name, run, len(pres.Matches), len(res.Matches))
					}
				}
			}
		}
	}
}
