#!/usr/bin/env sh
# benchcmp.sh — diff two bench manifests produced by scripts/bench.sh.
#
# Usage:
#   scripts/benchcmp.sh BENCH_1.json BENCH_2.json
#   VJBENCHCMP_THRESHOLD=0.25 scripts/benchcmp.sh old.json new.json
#
# Prints per-experiment wall-time deltas and exits non-zero when any
# experiment present in both manifests regressed by more than the threshold
# (default 10%). Experiments in only one manifest are reported as
# added/removed, never as regressions. Wall times are noisy — rerun before
# trusting a marginal failure.
set -eu
cd "$(dirname "$0")/.."
if [ $# -ne 2 ]; then
	echo "usage: scripts/benchcmp.sh old.json new.json" >&2
	exit 2
fi
exec go run ./cmd/vjbenchcmp -threshold "${VJBENCHCMP_THRESHOLD:-0.10}" "$1" "$2"
