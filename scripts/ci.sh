#!/usr/bin/env sh
# ci.sh — the repository's single CI entry point.
#
# Usage:
#   scripts/ci.sh
#
# Runs, in order:
#   1. tier-1 verify: go build, go vet, go test, go test -race (ROADMAP.md)
#   2. fuzz smoke: 10s each of FuzzParse (internal/tpq) and
#      FuzzEvaluateDifferential (root), seeded from the committed corpora
#   3. bench gate: a fresh manifest via scripts/bench.sh compared against
#      the committed BENCH_2.json baseline with scripts/benchcmp.sh
#      (>10% wall-time regression fails; VJCI_SKIP_BENCH=1 skips the gate
#      on machines where timings are meaningless, e.g. shared runners)
#
# Environment:
#   VJCI_FUZZTIME        per-target fuzz budget (default 10s)
#   VJCI_SKIP_BENCH=1    skip the bench regression gate
#   VJBENCHCMP_THRESHOLD regression threshold for the gate (default 0.10)
set -eu
cd "$(dirname "$0")/.."

fuzztime="${VJCI_FUZZTIME:-10s}"

echo "== tier-1: build"
go build ./...
echo "== tier-1: vet"
go vet ./...
echo "== tier-1: test"
go test ./...
echo "== tier-1: test -race"
go test -race ./...

echo "== fuzz smoke: FuzzParse ($fuzztime)"
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime "$fuzztime" ./internal/tpq
echo "== fuzz smoke: FuzzEvaluateDifferential ($fuzztime)"
go test -run '^$' -fuzz '^FuzzEvaluateDifferential$' -fuzztime "$fuzztime" .

if [ -n "${VJCI_SKIP_BENCH:-}" ]; then
	echo "== bench gate: skipped (VJCI_SKIP_BENCH)"
else
	echo "== bench gate: fresh manifest vs BENCH_2.json"
	tmp="$(mktemp -t vjci-bench-XXXXXX.json)"
	trap 'rm -f "$tmp"' EXIT
	VJBENCH_SKIP_SMOKE=1 scripts/bench.sh "$tmp"
	scripts/benchcmp.sh BENCH_2.json "$tmp"
fi

echo "== ci: OK"
