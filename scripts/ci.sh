#!/usr/bin/env sh
# ci.sh — the repository's single CI entry point.
#
# Usage:
#   scripts/ci.sh
#
# Runs, in order:
#   1. gofmt: no file may need reformatting
#   2. tier-1 verify: go build, go vet, go test, go test -race (ROADMAP.md)
#   3. store coverage floor: the storage layer is the persistence trust
#      boundary; its statement coverage must stay >= VJCI_STORE_COV (85%)
#   3b. engine coverage floor: the evaluation engines (internal/engine/...)
#      carry the partition-correctness burden; their aggregate statement
#      coverage must stay >= VJCI_ENGINE_COV (80%)
#   3c. server coverage floor: the serving layer owns admission, outcome
#      accounting and the flight recorder; its statement coverage must
#      stay >= VJCI_SERVER_COV (80%)
#   3d. enum coverage floor: the shared enumeration stage owns the
#      streaming/partial-flush ordering proofs; internal/engine/enum
#      statement coverage must stay >= VJCI_ENUM_COV (85%)
#   3e. maintain coverage floor: the incremental maintenance layer is what
#      keeps materialized views byte-identical to re-materialization under
#      document updates; internal/maintain statement coverage must stay
#      >= VJCI_MAINTAIN_COV (85%)
#   4. govulncheck, when the tool is installed (skipped, not failed, when
#      absent — hermetic runners don't fetch tools)
#   5. fuzz smoke: 10s each of FuzzParse (internal/tpq),
#      FuzzReadViewStore (internal/store), FuzzEvaluateDifferential
#      (root), and FuzzUpdateDifferential (root), seeded from the
#      committed corpora
#   5b. vjload smoke: a 1s in-process open-loop run at low QPS; the load
#      path must produce a well-formed viewjoin/load/v1 manifest
#   5c. vjload density smoke: a 1s multi-tenant run under a tight
#      -max-resident-bytes cap; the warm/cold tiering must serve every
#      request without errors
#   6. bench gate: a fresh manifest via scripts/bench.sh compared against
#      the committed BENCH_7.json baseline with scripts/benchcmp.sh
#      (>10% wall-time or allocs regression fails; VJCI_SKIP_BENCH=1 skips
#      the gate on machines where timings are meaningless, e.g. shared
#      runners). The serving-latency manifest bench.sh writes alongside is
#      gated against BENCH_7.load.json with a wider threshold
#      (VJBENCHCMP_LOAD_THRESHOLD, default 0.50) — cross-machine latency
#      quantiles are far noisier than single-process wall times.
#
# Environment:
#   VJCI_FUZZTIME        per-target fuzz budget (default 10s)
#   VJCI_STORE_COV       minimum internal/store coverage %% (default 85)
#   VJCI_ENGINE_COV      minimum internal/engine/... coverage %% (default 80)
#   VJCI_SERVER_COV      minimum internal/server coverage %% (default 80)
#   VJCI_ENUM_COV        minimum internal/engine/enum coverage %% (default 85)
#   VJCI_MAINTAIN_COV    minimum internal/maintain coverage %% (default 85)
#   VJCI_SKIP_BENCH=1    skip the bench and load regression gates
#   VJBENCHCMP_THRESHOLD regression threshold for the bench gate (default 0.10)
#   VJBENCHCMP_LOAD_THRESHOLD  threshold for the load gate (default 0.50)
set -eu
cd "$(dirname "$0")/.."

fuzztime="${VJCI_FUZZTIME:-10s}"
store_cov="${VJCI_STORE_COV:-85}"
engine_cov="${VJCI_ENGINE_COV:-80}"
server_cov="${VJCI_SERVER_COV:-80}"
enum_cov="${VJCI_ENUM_COV:-85}"
maintain_cov="${VJCI_MAINTAIN_COV:-85}"

echo "== gofmt"
unformatted="$(gofmt -l . 2>/dev/null || true)"
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need reformatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== tier-1: build"
go build ./...
echo "== tier-1: vet"
go vet ./...
echo "== tier-1: test"
go test ./...
echo "== tier-1: test -race"
go test -race ./...

echo "== store coverage floor (>= ${store_cov}%)"
cov="$(go test -count=1 -cover ./internal/store | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"
if [ -z "$cov" ]; then
	echo "store coverage: could not parse coverage output" >&2
	exit 1
fi
if ! awk -v c="$cov" -v floor="$store_cov" 'BEGIN { exit !(c+0 >= floor+0) }'; then
	echo "store coverage ${cov}% is below the ${store_cov}% floor" >&2
	exit 1
fi
echo "store coverage: ${cov}%"

echo "== engine coverage floor (>= ${engine_cov}%)"
engprof="$(mktemp -t vjci-engcov-XXXXXX.out)"
go test -count=1 -coverprofile "$engprof" ./internal/engine/... >/dev/null
ecov="$(go tool cover -func "$engprof" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')"
rm -f "$engprof"
if [ -z "$ecov" ]; then
	echo "engine coverage: could not parse coverage output" >&2
	exit 1
fi
if ! awk -v c="$ecov" -v floor="$engine_cov" 'BEGIN { exit !(c+0 >= floor+0) }'; then
	echo "engine coverage ${ecov}% is below the ${engine_cov}% floor" >&2
	exit 1
fi
echo "engine coverage: ${ecov}%"

echo "== server coverage floor (>= ${server_cov}%)"
scov="$(go test -count=1 -cover ./internal/server | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"
if [ -z "$scov" ]; then
	echo "server coverage: could not parse coverage output" >&2
	exit 1
fi
if ! awk -v c="$scov" -v floor="$server_cov" 'BEGIN { exit !(c+0 >= floor+0) }'; then
	echo "server coverage ${scov}% is below the ${server_cov}% floor" >&2
	exit 1
fi
echo "server coverage: ${scov}%"

echo "== enum coverage floor (>= ${enum_cov}%)"
ncov="$(go test -count=1 -cover ./internal/engine/enum | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"
if [ -z "$ncov" ]; then
	echo "enum coverage: could not parse coverage output" >&2
	exit 1
fi
if ! awk -v c="$ncov" -v floor="$enum_cov" 'BEGIN { exit !(c+0 >= floor+0) }'; then
	echo "enum coverage ${ncov}% is below the ${enum_cov}% floor" >&2
	exit 1
fi
echo "enum coverage: ${ncov}%"

echo "== maintain coverage floor (>= ${maintain_cov}%)"
mcov="$(go test -count=1 -cover ./internal/maintain | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"
if [ -z "$mcov" ]; then
	echo "maintain coverage: could not parse coverage output" >&2
	exit 1
fi
if ! awk -v c="$mcov" -v floor="$maintain_cov" 'BEGIN { exit !(c+0 >= floor+0) }'; then
	echo "maintain coverage ${mcov}% is below the ${maintain_cov}% floor" >&2
	exit 1
fi
echo "maintain coverage: ${mcov}%"

if command -v govulncheck >/dev/null 2>&1; then
	echo "== govulncheck"
	govulncheck ./...
else
	echo "== govulncheck: not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"
fi

echo "== fuzz smoke: FuzzParse ($fuzztime)"
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime "$fuzztime" ./internal/tpq
echo "== fuzz smoke: FuzzReadViewStore ($fuzztime)"
go test -run '^$' -fuzz '^FuzzReadViewStore$' -fuzztime "$fuzztime" ./internal/store
echo "== fuzz smoke: FuzzEvaluateDifferential ($fuzztime)"
go test -run '^$' -fuzz '^FuzzEvaluateDifferential$' -fuzztime "$fuzztime" .
echo "== fuzz smoke: FuzzUpdateDifferential ($fuzztime)"
go test -run '^$' -fuzz '^FuzzUpdateDifferential$' -fuzztime "$fuzztime" .

echo "== vjload smoke: 1s in-process open-loop run"
loadtmp="$(mktemp -t vjci-load-XXXXXX.json)"
go run ./cmd/vjload -xmark 0.02 -qps 50 -duration 1s -seed 1 -json "$loadtmp"
if ! grep -q '"schema": "viewjoin/load/v1"' "$loadtmp"; then
	echo "vjload smoke: manifest missing viewjoin/load/v1 schema" >&2
	rm -f "$loadtmp"
	exit 1
fi
rm -f "$loadtmp"

echo "== vjload density smoke: 1s multi-tenant run under a resident-bytes cap"
denstmp="$(mktemp -t vjci-dens-XXXXXX.json)"
go run ./cmd/vjload -xmark 0.02 -qps 50 -duration 1s -seed 1 \
	-tenants 3 -max-resident-bytes 4096 \
	-mix '//site//item//name @ //site//item//name; //description//keyword @ //description//keyword % t1' \
	-json "$denstmp"
if ! grep -q '"schema": "viewjoin/load/v1"' "$denstmp"; then
	echo "vjload density smoke: manifest missing viewjoin/load/v1 schema" >&2
	rm -f "$denstmp"
	exit 1
fi
if ! grep -q '"errors": 0' "$denstmp"; then
	echo "vjload density smoke: capped multi-tenant run reported request errors" >&2
	rm -f "$denstmp"
	exit 1
fi
rm -f "$denstmp"

if [ -n "${VJCI_SKIP_BENCH:-}" ]; then
	echo "== bench gate: skipped (VJCI_SKIP_BENCH)"
else
	echo "== bench gate: fresh manifest vs BENCH_7.json"
	tmp="$(mktemp -t vjci-bench-XXXXXX.json)"
	trap 'rm -f "$tmp" "${tmp%.json}.load.json"' EXIT
	VJBENCH_SKIP_SMOKE=1 scripts/bench.sh "$tmp"
	scripts/benchcmp.sh BENCH_7.json "$tmp"
	echo "== load gate: fresh serving-latency manifest vs BENCH_7.load.json"
	VJBENCHCMP_THRESHOLD="${VJBENCHCMP_LOAD_THRESHOLD:-0.50}" \
		scripts/benchcmp.sh BENCH_7.load.json "${tmp%.json}.load.json"
fi

echo "== ci: OK"
