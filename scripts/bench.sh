#!/usr/bin/env sh
# bench.sh — snapshot the full experimental evaluation into a JSON manifest.
#
# Usage:
#   scripts/bench.sh              # writes BENCH_1.json in the repo root
#   scripts/bench.sh out.json     # writes to the given file
#
# The manifest (schema viewjoin/bench/v1) records the git SHA, toolchain,
# effective config, per-experiment wall times, and one Row per measurement,
# so successive PRs can diff counters and timings against the committed
# baseline. Counters are deterministic; times are not — compare shapes.
#
# A serving-latency manifest (schema viewjoin/load/v1, from cmd/vjload
# driving the full vjserve handler stack in-process) is written alongside
# as ${out%.json}.load.json; VJBENCH_SKIP_LOAD=1 skips it. Both manifests
# diff with scripts/benchcmp.sh, which detects the schema.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_1.json}"
# Smoke-run the Go benchmarks first (a single iteration each) so a broken
# benchmark fails here, cheaply, instead of poisoning a long timing run.
# VJBENCH_SKIP_SMOKE=1 skips it.
if [ -z "${VJBENCH_SKIP_SMOKE:-}" ]; then
	go test -run '^$' -bench . -benchtime=1x ./... > /dev/null
fi
go run ./cmd/vjbench -exp all -json "$out" > /dev/null
if [ -z "${VJBENCH_SKIP_LOAD:-}" ]; then
	# Three tenant replicas under a resident-bytes cap exercise the
	# warm/cold tiering in the load run; the original mix classes keep
	# their manifest keys (only pinned '% tenant' classes gain a suffix),
	# so load manifests stay comparable across baselines.
	go run ./cmd/vjload -xmark 0.05 -qps 300 -duration 3s -seed 1 \
		-tenants 3 -max-resident-bytes 65536 \
		-mix '//site//item[//description//keyword]/name; //site//item//name @ //site//item//name; //site//item//name @ //site//item//name # 20; //description//keyword @ //description//keyword % t1' \
		-json "${out%.json}.load.json"
fi
