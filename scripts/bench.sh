#!/usr/bin/env sh
# bench.sh — snapshot the full experimental evaluation into a JSON manifest.
#
# Usage:
#   scripts/bench.sh              # writes BENCH_1.json in the repo root
#   scripts/bench.sh out.json     # writes to the given file
#
# The manifest (schema viewjoin/bench/v1) records the git SHA, toolchain,
# effective config, per-experiment wall times, and one Row per measurement,
# so successive PRs can diff counters and timings against the committed
# baseline. Counters are deterministic; times are not — compare shapes.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_1.json}"
# Smoke-run the Go benchmarks first (a single iteration each) so a broken
# benchmark fails here, cheaply, instead of poisoning a long timing run.
# VJBENCH_SKIP_SMOKE=1 skips it.
if [ -z "${VJBENCH_SKIP_SMOKE:-}" ]; then
	go test -run '^$' -bench . -benchtime=1x ./... > /dev/null
fi
go run ./cmd/vjbench -exp all -json "$out" > /dev/null
