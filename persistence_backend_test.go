package viewjoin

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"viewjoin/internal/store"
)

// saveViewFiles materializes the view set in the given scheme and saves
// each view to a container file, returning the paths.
func saveViewFiles(t *testing.T, d *Document, viewsStr string, scheme StorageScheme) []string {
	t.Helper()
	vs, err := ParseViews(viewsStr)
	if err != nil {
		t.Fatal(err)
	}
	mvs, err := d.MaterializeViews(vs, scheme)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := make([]string, len(mvs))
	for i, v := range mvs {
		var buf bytes.Buffer
		if _, err := v.SaveView(&buf); err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("view-%d.vjview", i))
		if err := os.WriteFile(paths[i], buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// TestOpenViewAndLoadViewMmap: both file-backed loaders must evaluate
// byte-identically to the in-memory path, report their residency
// truthfully, and release cleanly.
func TestOpenViewAndLoadViewMmap(t *testing.T) {
	d := GenerateNasa(120)
	q := MustParseQuery("//field//footnote//para")
	want := EvaluateDirect(d, q)
	paths := saveViewFiles(t, d, "//field//para; //footnote", SchemeLEp)

	load := func(open func(string) (*MaterializedView, error)) []*MaterializedView {
		t.Helper()
		out := make([]*MaterializedView, len(paths))
		for i, p := range paths {
			mv, err := open(p)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = mv
		}
		return out
	}

	resident := load(d.OpenView)
	mapped := load(d.LoadViewMmap)
	for i := range resident {
		if !resident[i].Resident() {
			t.Error("OpenView: Resident() = false")
		}
		if mapped[i].Resident() {
			t.Error("LoadViewMmap: Resident() = true")
		}
		if resident[i].FootprintBytes() != mapped[i].FootprintBytes() ||
			resident[i].FootprintBytes() != resident[i].SizeBytes() {
			t.Error("footprints disagree across backends")
		}
	}

	for name, mvs := range map[string][]*MaterializedView{"resident": resident, "mmap": mapped} {
		res, err := Evaluate(d, q, mvs, EngineViewJoin, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameMatches(res, want) {
			t.Fatalf("%s: evaluation differs from direct", name)
		}
	}

	for _, mvs := range [][]*MaterializedView{resident, mapped} {
		for _, mv := range mvs {
			if err := mv.Release(); err != nil {
				t.Errorf("release: %v", err)
			}
			if err := mv.Release(); err != nil {
				t.Errorf("second release: %v", err)
			}
		}
	}
}

// TestLoadViewMmapErrors: the structured persistence errors survive the
// mmap path — truncation folds into ErrViewTruncated, foreign documents
// into DocMismatchError, and a failed load leaves no open mapping behind
// (the error path closes the backend).
func TestLoadViewMmapErrors(t *testing.T) {
	d := GenerateNasa(120)
	paths := saveViewFiles(t, d, "//footnote", SchemeLE)
	img, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	for _, cut := range []int{0, 4, 7, len(img) / 2, len(img) - 1} {
		p := filepath.Join(dir, "trunc.vjview")
		if err := os.WriteFile(p, img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, lerr := d.LoadViewMmap(p)
		if lerr == nil {
			t.Fatalf("cut=%d: truncated mmap load succeeded", cut)
		}
		if cut < 8 && !errors.Is(lerr, ErrViewTruncated) {
			t.Errorf("cut=%d: error %v, want ErrViewTruncated", cut, lerr)
		}
	}

	other := GenerateNasa(64)
	var dm *DocMismatchError
	if _, err := other.LoadViewMmap(paths[0]); !errors.As(err, &dm) {
		t.Errorf("foreign document: error %v, want DocMismatchError", err)
	}

	if _, err := d.LoadViewMmap(filepath.Join(dir, "missing.vjview")); err == nil {
		t.Error("missing file: load succeeded")
	}
}

// TestLoadViewMmapAllocs pins the serving-side cold-load criterion for
// the mmap path: opening, validating, and adopting a saved multi-page
// view through the mapping must stay O(lists) — the PR 4 zero-copy
// allocation criterion must not regress when the heap buffer is replaced
// by a mapping.
func TestLoadViewMmapAllocs(t *testing.T) {
	const pageSize = 256
	d := GenerateNasa(600)
	v, err := d.MaterializeView(MustParseQuery("//field//para"), SchemeLE,
		&MaterializeOptions{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := v.SaveView(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wide.vjview")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mv, err := d.LoadViewMmap(path)
	if errors.Is(err, store.ErrMmapUnsupported) {
		t.Skip("mmap unsupported on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	pages := int(mv.SizeBytes() / pageSize)
	mv.Release()

	allocs := testing.AllocsPerRun(20, func() {
		mv, err := d.LoadViewMmap(path)
		if err != nil {
			t.Fatal(err)
		}
		mv.Release()
	})
	t.Logf("mmap load of %d-page view: %.0f allocs", pages, allocs)
	if int(allocs)*5 > pages {
		t.Errorf("mmap view load allocated %.0f times for %d pages; want <= pages/5 (zero-copy)", allocs, pages)
	}
	if int(allocs) > 64 {
		t.Errorf("mmap view load allocated %.0f times; want O(lists), <= 64", allocs)
	}
}
