package viewjoin

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"viewjoin/internal/testutil"
	"viewjoin/internal/xmltree"
)

// randomPublicUpdate draws a random subtree update against d's current
// snapshot, lifted to the public Update shape (target addressed by start
// label, fragment as its own Document). Fragments draw from the view
// alphabet or the foreign alphabet, so the sequence exercises both the
// splice-and-repair path and the pure label-splice fast path.
func randomPublicUpdate(rng *rand.Rand, d *Document) Update {
	labels := testutil.Labels
	if rng.Intn(3) == 0 {
		labels = testutil.ForeignLabels
	}
	t := d.tree()
	u := testutil.RandomUpdate(rng, t, labels)
	var op UpdateOp
	switch u.Op {
	case xmltree.OpInsertBefore:
		op = InsertBefore
	case xmltree.OpAppendChild:
		op = AppendChild
	default:
		op = DeleteSubtree
	}
	pub := Update{Op: op, TargetStart: t.Node(u.Target).Start}
	if u.Fragment != nil {
		pub.Fragment = newDocument(u.Fragment)
	}
	return pub
}

// maintainAll applies one update's maintenance to every view of a set.
func maintainAll(t *testing.T, label string, mvs []*MaterializedView, au *AppliedUpdate) {
	t.Helper()
	for i, mv := range mvs {
		if _, err := mv.Maintain(au); err != nil {
			t.Fatalf("%s: maintain view %d (%s): %v", label, i, mv.Pattern(), err)
		}
	}
}

// requireStoreEquality asserts the maintained views serialize byte-for-byte
// identically to views freshly materialized from the document's current
// snapshot — the paper-level invariant that incremental maintenance is
// indistinguishable from re-materialization, down to pointers and padding.
func requireStoreEquality(t *testing.T, label string, maintained []*MaterializedView, d *Document, views []*Query, scheme StorageScheme) {
	t.Helper()
	fresh, err := d.MaterializeViews(views, scheme)
	if err != nil {
		t.Fatalf("%s: oracle materialize: %v", label, err)
	}
	for i := range maintained {
		var got, want bytes.Buffer
		if _, err := maintained[i].SaveView(&got); err != nil {
			t.Fatalf("%s: save maintained view %d: %v", label, i, err)
		}
		if _, err := fresh[i].SaveView(&want); err != nil {
			t.Fatalf("%s: save oracle view %d: %v", label, i, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("%s: view %d (%s): maintained store differs from re-materialized oracle (%d vs %d bytes)",
				label, i, maintained[i].Pattern(), got.Len(), want.Len())
		}
	}
}

// FuzzUpdateDifferential is the update-interleaved differential fuzzer:
// the fuzz bytes drive a random document, a random TPQ with a random
// covering view partition, and a short sequence of random subtree updates
// (insert-before / append-child / delete-subtree). After every update the
// views are maintained incrementally and the harness requires
//
//   - the maintained stores to be byte-identical to views freshly
//     materialized from the updated document (the §IV splice invariant),
//   - every applicable engine to agree exactly with the brute-force
//     oracle over the updated document, sequentially, range-partitioned
//     (K ∈ {2, 4}), and through the bounded RunPage/RunStream arms.
//
// Any divergence is a bug in the maintenance splice, the copy-on-write
// overlay, or an engine's handling of a maintained store. The corpus under
// testdata/fuzz/FuzzUpdateDifferential pins generator inputs derived from
// the §VI workload alongside previously interesting findings.
func FuzzUpdateDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("xmark-q14-insert"))
	f.Add([]byte("nasa-twig-delete"))
	f.Add([]byte{0x00, 0xff, 0x10, 0x20, 0x42, 0x99, 0x7f, 0x01, 0xee, 0x31})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 0xaa, 0x55, 0xaa, 0x55})
	f.Fuzz(func(t *testing.T, data []byte) {
		rng := testutil.NewByteRand(data)
		doc := newDocument(testutil.RandomDoc(rng, 50, nil))
		pat := testutil.RandomPattern(rng, 4, nil)
		q := &Query{pat}
		part := testutil.RandomViewPartition(rng, pat)
		views := make([]*Query, len(part))
		for i, vp := range part {
			views[i] = &Query{vp}
		}
		steps := 1 + rng.Intn(3)
		pageLim := 1 + rng.Intn(4)
		pageOff := rng.Intn(3)

		type arm struct {
			eng    Engine
			scheme StorageScheme
			mv     []*MaterializedView
		}
		arms := []arm{
			{eng: EngineViewJoin, scheme: SchemeLEp},
			{eng: EngineTwigStack, scheme: SchemeElement},
		}
		if q.IsPath() {
			arms = append(arms,
				arm{eng: EnginePathStack, scheme: SchemeLE},
				arm{eng: EngineInterJoin, scheme: SchemeTuple},
			)
		}
		for i := range arms {
			mv, err := doc.MaterializeViews(views, arms[i].scheme)
			if err != nil {
				t.Fatalf("%v+%v: materialize: %v", arms[i].eng, arms[i].scheme, err)
			}
			arms[i].mv = mv
		}

		for step := 0; step < steps; step++ {
			u := randomPublicUpdate(rng, doc)
			au, err := doc.Apply(u)
			if err != nil {
				t.Fatalf("step %d: apply %v at %d: %v", step, u.Op, u.TargetStart, err)
			}
			want := EvaluateDirect(doc, q)
			for _, a := range arms {
				label := fmt.Sprintf("step %d %v+%v (q=%s)", step, a.eng, a.scheme, q)
				maintainAll(t, label, a.mv, au)
				requireStoreEquality(t, label, a.mv, doc, views, a.scheme)
				p, err := Prepare(doc, q, a.mv, a.eng, nil)
				if err != nil {
					t.Fatalf("%s: prepare: %v", label, err)
				}
				res, err := p.Run()
				if err != nil {
					t.Fatalf("%s: run: %v", label, err)
				}
				if !sameMatches(res, want) {
					t.Fatalf("%s: %d matches, oracle %d", label, len(res.Matches), len(want.Matches))
				}
				for _, k := range []int{2, 4} {
					pres, err := p.RunParallel(context.Background(), k)
					if err != nil {
						t.Fatalf("%s k=%d: %v", label, k, err)
					}
					if !identicalMatches(pres, res) {
						t.Fatalf("%s k=%d: parallel diverged from sequential (%d vs %d matches)",
							label, k, len(pres.Matches), len(res.Matches))
					}
				}
				checkPages(t, label, p, res, pageLim, pageOff, []int{1, 2, 4})
			}
		}
	})
}
