package viewjoin

import (
	"testing"
)

// TestMaterializeResultRoundTrip: evaluate a query, capture its result as
// a view, and use that view to answer a larger query that contains it.
func TestMaterializeResultRoundTrip(t *testing.T) {
	d := GenerateNasa(150)
	sub := MustParseQuery("//field//definition//para")
	direct := EvaluateDirect(d, sub)
	if len(direct.Matches) == 0 {
		t.Fatal("fixture has no matches")
	}

	// Capture the result as an LE view without re-materializing.
	resultView, err := d.MaterializeResult(sub, direct, SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	// It must be identical to materializing the pattern directly.
	fresh, err := d.MaterializeView(sub, SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resultView.NumEntries() != fresh.NumEntries() || resultView.NumPointers() != fresh.NumPointers() {
		t.Fatalf("result view (%d entries, %d ptrs) != fresh view (%d entries, %d ptrs)",
			resultView.NumEntries(), resultView.NumPointers(), fresh.NumEntries(), fresh.NumPointers())
	}

	// Use it (plus one more view) to answer a containing query.
	bigger := MustParseQuery("//dataset//field//definition//para")
	dsView, err := d.MaterializeView(MustParseQuery("//dataset"), SchemeLE, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(d, bigger, []*MaterializedView{resultView, dsView}, EngineViewJoin, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := EvaluateDirect(d, bigger)
	if !sameMatches(res, want) {
		t.Fatalf("bigger query via result view: %d matches, want %d", len(res.Matches), len(want.Matches))
	}
}

func TestMaterializeResultErrors(t *testing.T) {
	d := sampleDoc(t)
	q := MustParseQuery("//a//b")
	res := EvaluateDirect(d, q)

	// Row arity mismatch.
	bad := &Result{Matches: [][]Node{{{Tag: "a", Start: 1}}}}
	if _, err := d.MaterializeResult(q, bad, SchemeLE, nil); err == nil {
		t.Errorf("arity mismatch: expected error")
	}
	// Foreign start label.
	bad2 := &Result{Matches: [][]Node{{{Start: 99999}, {Start: 99998}}}}
	if _, err := d.MaterializeResult(q, bad2, SchemeLE, nil); err == nil {
		t.Errorf("foreign node: expected error")
	}
	// Valid call with options.
	if _, err := d.MaterializeResult(q, res, SchemeTuple, &MaterializeOptions{PageSize: 256}); err != nil {
		t.Errorf("valid call failed: %v", err)
	}
}
