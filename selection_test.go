package viewjoin

import (
	"math"
	"sort"
	"testing"
)

// selectionDoc is a small fixed document with known list sizes:
// a:1, b:2, c:3, d:1.
const selectionDoc = `<a><b><c/></b><b><c/><c/></b><d/></a>`

func selectionPool(t *testing.T, d *Document, viewsStr string) []*MaterializedView {
	t.Helper()
	patterns, err := ParseViews(viewsStr)
	if err != nil {
		t.Fatalf("ParseViews(%q): %v", viewsStr, err)
	}
	pool := make([]*MaterializedView, len(patterns))
	for i, p := range patterns {
		mv, err := d.MaterializeView(p, SchemeLE, nil)
		if err != nil {
			t.Fatalf("materialize %s: %v", p, err)
		}
		pool[i] = mv
	}
	return pool
}

// TestViewCostTable pins c(v,Q) = (1-λ)·Σ|L_q| + λ·Σ|L_q|·e_q on views
// whose list sizes and missing-edge counts are small enough to compute by
// hand, including the λ edge values 0 and +Inf.
func TestViewCostTable(t *testing.T) {
	d, err := ParseDocumentString(selectionDoc)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery("//a//b//c")
	cases := []struct {
		name    string
		view    string
		lambda  float64
		want    float64
		wantNaN bool
		wantErr bool
	}{
		// Whole-query view: every query edge precomputed, join term 0.
		{name: "whole query, scan only", view: "//a//b//c", lambda: 0, want: 6},
		{name: "whole query, join only", view: "//a//b//c", lambda: 1, want: 0},
		// Singleton //b: both of b's query edges remain, e_b = 2.
		{name: "singleton, scan only", view: "//b", lambda: 0, want: 2},
		{name: "singleton, join only", view: "//b", lambda: 1, want: 4},
		{name: "singleton, mixed", view: "//b", lambda: 0.5, want: 3},
		// //a//c bridges query node b: its one view edge precomputes no
		// query edge, so e_a = 1 and e_c = 1.
		{name: "bridging view, join only", view: "//a//c", lambda: 1, want: 4},
		// λ=+Inf mixes -Inf·scan with +Inf·join (or ·0): not finite, but
		// never an error — selection must tolerate the value, not reject it.
		{name: "infinite lambda", view: "//b", lambda: math.Inf(1), wantNaN: true},
		{name: "infinite lambda, zero join", view: "//a//b//c", lambda: math.Inf(1), wantNaN: true},
		// A view that is not a subpattern of Q cannot answer it.
		{name: "non-subpattern", view: "//d", lambda: 1, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mv, err := d.MaterializeView(MustParseQuery(tc.view), SchemeLE, nil)
			if err != nil {
				t.Fatal(err)
			}
			cost, err := ViewCost(mv, q, tc.lambda)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ViewCost(%s, λ=%v) = %v, want error", tc.view, tc.lambda, cost)
				}
				return
			}
			if err != nil {
				t.Fatalf("ViewCost(%s, λ=%v): %v", tc.view, tc.lambda, err)
			}
			if tc.wantNaN {
				if !math.IsNaN(cost) {
					t.Fatalf("ViewCost(%s, λ=%v) = %v, want NaN", tc.view, tc.lambda, cost)
				}
				return
			}
			if cost != tc.want {
				t.Fatalf("ViewCost(%s, λ=%v) = %v, want %v", tc.view, tc.lambda, cost, tc.want)
			}
		})
	}
}

// TestSelectViewsTable drives SelectViews through its edge cases: an empty
// pool, a pool that cannot cover the query, λ at 0 and +Inf, and a pool
// polluted with non-subpattern views. Every successful selection must
// cover the query and answer it exactly.
func TestSelectViewsTable(t *testing.T) {
	d, err := ParseDocumentString(selectionDoc)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery("//a//b//c")
	want := EvaluateDirect(d, q)
	cases := []struct {
		name    string
		pool    string // semicolon-separated view patterns; "" = empty pool
		lambda  float64
		wantErr bool
	}{
		{name: "empty pool", pool: "", lambda: DefaultLambda, wantErr: true},
		{name: "non-covering pool", pool: "//a; //b", lambda: DefaultLambda, wantErr: true},
		{name: "only non-subpattern views", pool: "//d", lambda: DefaultLambda, wantErr: true},
		{name: "singletons, default lambda", pool: "//a; //b; //c", lambda: DefaultLambda},
		{name: "singletons, lambda zero", pool: "//a; //b; //c", lambda: 0},
		{name: "singletons, infinite lambda", pool: "//a; //b; //c", lambda: math.Inf(1)},
		{name: "mixed pool with non-subpattern", pool: "//d; //a//b; //c; //b", lambda: DefaultLambda},
		{name: "whole-query view wins", pool: "//a//b//c; //a; //b; //c", lambda: DefaultLambda},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var pool []*MaterializedView
			if tc.pool != "" {
				pool = selectionPool(t, d, tc.pool)
			}
			sel, err := SelectViews(pool, q, tc.lambda)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("SelectViews: expected error, got %d views", len(sel))
				}
				return
			}
			if err != nil {
				t.Fatalf("SelectViews: %v", err)
			}
			// The selection must cover every query label exactly once
			// (the paper's disjointness assumption).
			seen := map[string]int{}
			for _, v := range sel {
				for _, l := range v.Pattern().Labels() {
					seen[l]++
				}
			}
			for _, l := range q.Labels() {
				if seen[l] != 1 {
					t.Fatalf("label %q covered %d times in %v", l, seen[l], viewNames(sel))
				}
			}
			res, err := Evaluate(d, q, sel, EngineViewJoin, nil)
			if err != nil {
				t.Fatalf("Evaluate with selection %v: %v", viewNames(sel), err)
			}
			if !sameMatches(res, want) {
				t.Fatalf("selection %v gives %d matches, oracle %d", viewNames(sel), len(res.Matches), len(want.Matches))
			}
		})
	}
}

// TestSelectViewsBySizeTable covers the size-only baseline's edge cases.
func TestSelectViewsBySizeTable(t *testing.T) {
	d, err := ParseDocumentString(selectionDoc)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery("//a//b//c")
	if _, err := SelectViewsBySize(nil, q); err == nil {
		t.Error("empty pool: expected error")
	}
	if _, err := SelectViewsBySize(selectionPool(t, d, "//a; //c"), q); err == nil {
		t.Error("non-covering pool: expected error")
	}
	sel, err := SelectViewsBySize(selectionPool(t, d, "//a; //b; //c; //a//b//c"), q)
	if err != nil {
		t.Fatal(err)
	}
	// The smallest-first baseline prefers the three singletons (sizes
	// 1, 2, 3) over the whole-query view (size 6).
	if got := viewNames(sel); len(got) != 3 {
		t.Fatalf("SelectViewsBySize = %v, want the three singletons", got)
	}
}

func viewNames(sel []*MaterializedView) []string {
	out := make([]string, len(sel))
	for i, v := range sel {
		out[i] = v.Pattern().String()
	}
	sort.Strings(out)
	return out
}
