package viewjoin

import (
	"fmt"

	"viewjoin/internal/maintain"
	"viewjoin/internal/store"
	"viewjoin/internal/xmltree"
)

// UpdateOp selects a document update operation. All operations splice a
// whole subtree: the region-labelled tree stays dense, so every evaluation
// engine and storage scheme works unchanged on the updated snapshot.
type UpdateOp int

const (
	// InsertBefore inserts the fragment as the target's immediately
	// preceding sibling. The target must not be the root.
	InsertBefore UpdateOp = iota
	// AppendChild appends the fragment as the target's last child.
	AppendChild
	// DeleteSubtree removes the target and everything below it. The target
	// must not be the root.
	DeleteSubtree
)

// String names the operation.
func (op UpdateOp) String() string {
	switch op {
	case InsertBefore:
		return "insert-before"
	case AppendChild:
		return "append-child"
	case DeleteSubtree:
		return "delete-subtree"
	default:
		return fmt.Sprintf("UpdateOp(%d)", int(op))
	}
}

// Update describes one subtree update against a document's current
// snapshot.
type Update struct {
	Op UpdateOp
	// TargetStart addresses the target node by its start label in the
	// document's current snapshot (Node.Start of any query result row, so
	// results address update targets directly).
	TargetStart int32
	// Fragment is the subtree to insert, parsed or generated as its own
	// Document; its root becomes the inserted subtree's root. nil for
	// DeleteSubtree, required otherwise.
	Fragment *Document
}

// AppliedUpdate is the outcome of a successful Document.Apply: an opaque
// descriptor of the splice, consumed by MaterializedView.Maintain to
// repair views incrementally. It is tied to the exact epoch transition it
// performed — maintaining a view that is not at the predecessor epoch
// fails with *EpochMismatchError.
type AppliedUpdate struct {
	au    *xmltree.Applied
	epoch uint64 // the document epoch this update produced
	doc   *Document
}

// Epoch returns the document epoch the update produced (the predecessor
// snapshot's epoch plus one).
func (u *AppliedUpdate) Epoch() uint64 { return u.epoch }

// EpochMismatchError reports a snapshot disagreement: a view that does not
// reflect the document snapshot an operation needs — Prepare against a
// view left behind by an Apply, or Maintain with an update that does not
// start at the view's epoch. The caller resolves it by maintaining the
// view through the missing updates (or re-materializing it) and retrying.
type EpochMismatchError struct {
	// ViewEpoch and DocEpoch are the view's epoch and the epoch the
	// operation needed.
	ViewEpoch, DocEpoch uint64
	// View is the view's pattern.
	View string
}

func (e *EpochMismatchError) Error() string {
	return fmt.Sprintf("viewjoin: view %s is at epoch %d, document snapshot is at epoch %d; maintain or re-materialize the view",
		e.View, e.ViewEpoch, e.DocEpoch)
}

// Apply installs u as the document's next snapshot and returns the splice
// descriptor for view maintenance. The previous snapshot is untouched:
// views, prepared queries and in-flight evaluations keep reading it until
// they are maintained or re-prepared. Apply calls are serialized
// internally; readers never block.
func (d *Document) Apply(u Update) (*AppliedUpdate, error) {
	d.w.Lock()
	defer d.w.Unlock()
	snap := d.snap()
	var op xmltree.UpdateOp
	switch u.Op {
	case InsertBefore:
		op = xmltree.OpInsertBefore
	case AppendChild:
		op = xmltree.OpAppendChild
	case DeleteSubtree:
		op = xmltree.OpDeleteSubtree
	default:
		return nil, fmt.Errorf("viewjoin: unknown update op %v", u.Op)
	}
	target := snap.tree.FindByStart(u.TargetStart)
	if target < 0 {
		return nil, fmt.Errorf("viewjoin: update target start %d not in document", u.TargetStart)
	}
	var frag *xmltree.Document
	if u.Fragment != nil {
		frag = u.Fragment.tree()
	}
	au, err := snap.tree.Apply(xmltree.Update{Op: op, Target: target, Fragment: frag})
	if err != nil {
		return nil, fmt.Errorf("viewjoin: apply %v: %w", u.Op, err)
	}
	next := &docSnap{tree: au.New, epoch: snap.epoch + 1}
	d.cur.Store(next)
	return &AppliedUpdate{au: au, epoch: next.epoch, doc: d}, nil
}

// MaintainReport describes how a view was maintained.
type MaintainReport struct {
	// FastPath reports the pure label-splice path: the update touched no
	// node of any view-label type, so membership and all pointers were
	// provably unchanged and only label pages were rewritten.
	FastPath bool
	// SharedPages of TotalPages in the maintained store are shared with the
	// predecessor by identity — the copy-on-write win over re-materializing.
	SharedPages, TotalPages int
	// Compacted reports that the maintenance tripped the overlay's
	// compaction policy and flattened the delta chain into a clean
	// container.
	Compacted bool
}

// Maintain repairs the view in place of re-materializing it, making it
// reflect the document snapshot u produced. The view must be at u's
// predecessor epoch (apply updates and maintain in order; otherwise
// *EpochMismatchError). The previously published store is untouched, so
// concurrent readers and prepared queries at the old epoch stay
// consistent; the maintained store shares every unmodified page with it
// copy-on-write.
//
// Views loaded through a storage backend (OpenView, LoadViewBytes,
// LoadViewMmap) cannot be maintained: their pages alias the backend's
// container image, whose lifetime Release controls. Reload them from a
// store saved at the new epoch instead.
func (v *MaterializedView) Maintain(u *AppliedUpdate) (MaintainReport, error) {
	if u == nil || u.doc == nil {
		return MaintainReport{}, fmt.Errorf("viewjoin: Maintain needs an AppliedUpdate from Document.Apply")
	}
	if v.doc != u.doc {
		return MaintainReport{}, fmt.Errorf("viewjoin: view %s belongs to a different document", v.pattern)
	}
	if v.backend != nil {
		return MaintainReport{}, fmt.Errorf("viewjoin: view %s is backend-loaded and cannot be maintained; reload it at the new epoch", v.pattern)
	}
	d := v.doc
	d.w.Lock()
	defer d.w.Unlock()
	st := v.st()
	if st.tree != u.au.Old {
		return MaintainReport{}, &EpochMismatchError{ViewEpoch: st.epoch, DocEpoch: u.epoch - 1, View: v.pattern.String()}
	}
	next, rep, err := maintain.View(st.store, u.au)
	if err != nil {
		return MaintainReport{}, err
	}
	v.overlay.Install(next, store.Delta{
		Epoch: u.epoch, Pivot: u.au.Pivot, Shift: u.au.Delta, Rebuilt: !rep.FastPath,
	})
	out := MaintainReport{FastPath: rep.FastPath, SharedPages: rep.SharedPages, TotalPages: rep.TotalPages}
	if v.overlay.ShouldCompact() {
		next = v.overlay.Compact()
		out.Compacted = true
	}
	v.state.Store(&viewState{tree: u.au.New, epoch: u.epoch, store: next})
	return out, nil
}
