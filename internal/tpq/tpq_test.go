package tpq

import (
	"testing"
)

func TestParseBasics(t *testing.T) {
	tests := []struct {
		in       string
		size     int
		path     bool
		rendered string
	}{
		{"//a", 1, true, "//a"},
		{"/a/b", 2, true, "/a/b"},
		{"//a//b", 2, true, "//a//b"},
		{"//a/b[//c/d]//e", 5, false, "//a/b[//c/d]//e"},
		{"//journal[//suffix][title]/date/year", 5, false, "//journal[//suffix][title]/date/year"},
		{"//site/people/person/name", 4, true, "//site/people/person/name"},
		{"//dataset//tableHead[//tableLink//title]//field//definition//para", 7, false,
			"//dataset//tableHead[//tableLink//title]//field//definition//para"},
	}
	for _, tc := range tests {
		p, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if p.Size() != tc.size {
			t.Errorf("Parse(%q).Size = %d, want %d", tc.in, p.Size(), tc.size)
		}
		if p.IsPath() != tc.path {
			t.Errorf("Parse(%q).IsPath = %v, want %v", tc.in, p.IsPath(), tc.path)
		}
		if got := p.String(); got != tc.rendered {
			t.Errorf("Parse(%q).String = %q, want %q", tc.in, got, tc.rendered)
		}
		// String must re-parse to an equal pattern.
		p2, err := Parse(p.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", p.String(), err)
			continue
		}
		if !p.Equal(p2) {
			t.Errorf("round trip of %q not Equal", tc.in)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"a/b",        // missing leading axis at top level
		"//a[",       // unclosed predicate
		"//a]",       // stray bracket
		"//a[/]",     // empty predicate step
		"//a//",      // trailing axis
		"//a//a",     // duplicate labels violate the paper's assumption
		"//a[//b]/b", // duplicate labels via predicate
		"//a$b",      // bad character
		"//a //b //", // trailing axis with spaces
		"//1a",       // name cannot start with a digit
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestAxes(t *testing.T) {
	p := MustParse("//a/b[//c]//d[e]")
	want := []struct {
		label string
		axis  Axis
	}{{"a", Descendant}, {"b", Child}, {"c", Descendant}, {"d", Descendant}, {"e", Child}}
	if p.Size() != len(want) {
		t.Fatalf("Size = %d, want %d", p.Size(), len(want))
	}
	for i, w := range want {
		if p.Nodes[i].Label != w.label || p.Nodes[i].Axis != w.axis {
			t.Errorf("node %d = {%s %v}, want {%s %v}", i, p.Nodes[i].Label, p.Nodes[i].Axis, w.label, w.axis)
		}
	}
	if p.Nodes[2].Parent != 1 || p.Nodes[3].Parent != 1 || p.Nodes[4].Parent != 3 {
		t.Errorf("unexpected parents: %+v", p.Nodes)
	}
}

// TestExample21 mirrors Example 2.1 of the paper: for
// Q = //a[//f]//b//c//d//e with views v1 = //a//e, v2 = //b//c//d,
// v3 = //f, each view is a subpattern of Q, but only v2 and v3 are
// connected subpatterns; V = {v1,v2,v3} is a minimal covering view set.
func TestExample21(t *testing.T) {
	q := MustParse("//a[//f]//b//c//d//e")
	v1 := MustParse("//a//e")
	v2 := MustParse("//b//c//d")
	v3 := MustParse("//f")

	for i, v := range []*Pattern{v1, v2, v3} {
		if !v.IsSubpatternOf(q) {
			t.Errorf("v%d must be a subpattern of Q", i+1)
		}
	}
	if v1.IsConnectedSubpatternOf(q) {
		t.Errorf("v1 must not be a connected subpattern of Q (a//e is not an edge of Q)")
	}
	if !v2.IsConnectedSubpatternOf(q) {
		t.Errorf("v2 must be a connected subpattern of Q")
	}
	if !v3.IsConnectedSubpatternOf(q) {
		t.Errorf("v3 must be a connected subpattern of Q")
	}
	vs := []*Pattern{v1, v2, v3}
	if !Covers(vs, q) {
		t.Errorf("V must cover Q")
	}
	if !IsMinimalCover(vs, q) {
		t.Errorf("V must be a minimal covering view set of Q")
	}
	if err := ValidateViewSet(vs, q); err != nil {
		t.Errorf("ValidateViewSet: %v", err)
	}
	if got := InterViewEdges(vs, q); got != 3 {
		t.Errorf("InterViewEdges = %d, want 3 ((a,f), (a,b), (d,e))", got)
	}
}

func TestSubpatternAxisRules(t *testing.T) {
	q := MustParse("//a/b//c")
	cases := []struct {
		view      string
		sub, conn bool
	}{
		{"//a/b", true, true},
		{"//a//b", true, false}, // ad-edge maps onto a pc-edge: subpattern yes, connected no
		{"//a//c", true, false},
		{"//a/c", false, false}, // pc-edge requires an actual pc-edge in Q
		{"//b//c", true, true},
		{"//b/c", false, false},
		{"//c", true, true},
		{"//x", false, false},
	}
	for _, tc := range cases {
		v := MustParse(tc.view)
		if got := v.IsSubpatternOf(q); got != tc.sub {
			t.Errorf("%s subpattern of %s = %v, want %v", tc.view, q, got, tc.sub)
		}
		if got := v.IsConnectedSubpatternOf(q); got != tc.conn {
			t.Errorf("%s connected subpattern of %s = %v, want %v", tc.view, q, got, tc.conn)
		}
	}
}

// TestTableIIIInterViewEdges validates InterViewEdges against every row of
// the paper's Table III (#Cond column).
func TestTableIIIInterViewEdges(t *testing.T) {
	np := MustParse("//dataset//tableHead//field//definition//footnote//para")
	nt := MustParse("//dataset//tableHead[//tableLink//title]//field//definition//para")
	rows := []struct {
		name  string
		query *Pattern
		views string
		want  int
	}{
		{"PV1", np, "//dataset//field//footnote; //tableHead//definition//para", 5},
		{"PV2", np, "//dataset//field//footnote//para; //tableHead//definition", 4},
		{"PV3", np, "//dataset//field; //tableHead//definition//footnote//para", 3},
		{"PV4", np, "//tableHead; //dataset//field//definition//footnote//para", 2},
		{"TV1", nt, "//dataset[//tableLink]//definition; //tableHead//title; //field//para", 6},
		{"TV2", nt, "//dataset//tableHead; //field//para; //tableLink//title; //definition", 4},
		{"TV3", nt, "//dataset//definition//para; //tableHead//field; //tableLink//title", 3},
		{"TV4", nt, "//field//definition//para; //dataset//tableHead; //tableLink//title", 2},
	}
	for _, row := range rows {
		vs := MustParseAll(row.views)
		if err := ValidateViewSet(vs, row.query); err != nil {
			t.Errorf("%s: ValidateViewSet: %v", row.name, err)
			continue
		}
		if got := InterViewEdges(vs, row.query); got != row.want {
			t.Errorf("%s: InterViewEdges = %d, want %d", row.name, got, row.want)
		}
	}
}

func TestValidateViewSetRejects(t *testing.T) {
	q := MustParse("//a//b//c")
	// Overlapping element types between views.
	if err := ValidateViewSet(MustParseAll("//a//b; //b//c"), q); err == nil {
		t.Errorf("overlapping views: expected error")
	}
	// Non-covering set.
	if err := ValidateViewSet(MustParseAll("//a//b"), q); err == nil {
		t.Errorf("non-covering views: expected error")
	}
	// View that is not a subpattern.
	if err := ValidateViewSet(MustParseAll("//b//a; //c"), q); err == nil {
		t.Errorf("non-subpattern view: expected error")
	}
}

func TestSubtreeAndDescendants(t *testing.T) {
	p := MustParse("//a/b[//c/d]//e")
	// indices: a=0 b=1 c=2 d=3 e=4
	got := p.Subtree(1)
	want := []int{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Subtree(b) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subtree(b) = %v, want %v", got, want)
		}
	}
	if d := p.Descendants(2); len(d) != 1 || d[0] != 3 {
		t.Errorf("Descendants(c) = %v, want [3]", d)
	}
	if !p.IsAncestor(0, 4) || p.IsAncestor(4, 0) || p.IsAncestor(2, 4) {
		t.Errorf("IsAncestor misbehaves")
	}
}

func TestLeavesAndLabels(t *testing.T) {
	p := MustParse("//a/b[//c/d]//e")
	leaves := p.Leaves()
	if len(leaves) != 2 || leaves[0] != 3 || leaves[1] != 4 {
		t.Errorf("Leaves = %v, want [3 4]", leaves)
	}
	labels := p.Labels()
	want := []string{"a", "b", "c", "d", "e"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels = %v, want %v", labels, want)
		}
	}
	if p.NodeByLabel("d") != 3 || p.NodeByLabel("zz") != -1 {
		t.Errorf("NodeByLabel misbehaves")
	}
}

func TestClone(t *testing.T) {
	p := MustParse("//a/b[//c/d]//e")
	c := p.Clone()
	if !p.Equal(c) {
		t.Fatalf("clone not equal")
	}
	c.Nodes[0].Label = "zzz"
	if p.Nodes[0].Label != "a" {
		t.Errorf("clone aliases original")
	}
	c2 := p.Clone()
	c2.Nodes[1].Children[0] = 99
	if p.Nodes[1].Children[0] == 99 {
		t.Errorf("clone aliases children slice")
	}
}

func TestParseAll(t *testing.T) {
	vs := MustParseAll(" //a//b ;; //c ")
	if len(vs) != 2 {
		t.Fatalf("len = %d, want 2", len(vs))
	}
	if _, err := ParseAll("//a; b//"); err == nil {
		t.Errorf("expected error for malformed list")
	}
}

func TestRootAndGeneralValidate(t *testing.T) {
	p := MustParse("//a//b")
	if p.Root() != 0 {
		t.Errorf("Root = %d", p.Root())
	}
	g, err := ParseGeneral("//a//b//a")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateGeneral(); err != nil {
		t.Errorf("ValidateGeneral: %v", err)
	}
	if err := g.Validate(); err == nil {
		t.Errorf("Validate must reject duplicate labels")
	}
	if _, err := Parse("//a//b//a"); err == nil {
		t.Errorf("Parse must reject duplicate labels")
	}
}
