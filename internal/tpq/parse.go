package tpq

import (
	"fmt"
	"strings"
)

// Parse parses a tree pattern query in the paper's XPath fragment:
//
//	pattern   := step+
//	step      := ("/" | "//") name predicate*
//	predicate := "[" relstep step* "]"
//	relstep   := ("/" | "//")? name predicate*   // bare name means child axis
//
// Examples: "//a/b[//c/d]//e", "//journal[//suffix][title]/date/year".
//
// Returned patterns satisfy Pattern.Validate (in particular, unique labels).
func Parse(s string) (*Pattern, error) {
	p, err := ParseGeneral(s)
	if err != nil {
		return nil, err
	}
	if p.HasDuplicateLabels() {
		return nil, fmt.Errorf("tpq: parse %q: duplicate element types (use ParseGeneral for general patterns)", s)
	}
	return p, nil
}

// ParseGeneral parses a TPQ that may repeat element types (e.g.
// "//a//b//a"), the general query class the paper defers to [5]. Such
// patterns can be evaluated directly over element streams (no views): see
// the view machinery's unique-label assumption in §II.
func ParseGeneral(s string) (*Pattern, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	pr := &parser{toks: toks}
	p := &Pattern{}
	if err := pr.steps(p, -1, true); err != nil {
		return nil, err
	}
	if !pr.eof() {
		return nil, fmt.Errorf("tpq: parse %q: unexpected %q at token %d", s, pr.peek().text, pr.pos)
	}
	if len(p.Nodes) == 0 {
		return nil, fmt.Errorf("tpq: parse %q: empty pattern", s)
	}
	if err := p.ValidateGeneral(); err != nil {
		return nil, fmt.Errorf("tpq: parse %q: %w", s, err)
	}
	return p, nil
}

// MustParse is Parse but panics on error; for tests and static workloads.
func MustParse(s string) *Pattern {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

type tokKind int8

const (
	tokSlash tokKind = iota
	tokDSlash
	tokLBrack
	tokRBrack
	tokName
	tokEOF
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '/':
			if i+1 < len(s) && s[i+1] == '/' {
				toks = append(toks, token{tokDSlash, "//"})
				i += 2
			} else {
				toks = append(toks, token{tokSlash, "/"})
				i++
			}
		case c == '[':
			toks = append(toks, token{tokLBrack, "["})
			i++
		case c == ']':
			toks = append(toks, token{tokRBrack, "]"})
			i++
		case isNameStart(c):
			j := i + 1
			for j < len(s) && isNameChar(s[j]) {
				j++
			}
			toks = append(toks, token{tokName, s[i:j]})
			i = j
		default:
			return nil, fmt.Errorf("tpq: lex %q: unexpected character %q at offset %d", s, c, i)
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks, nil
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.'
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) eof() bool   { return p.peek().kind == tokEOF }

// steps parses a sequence of steps attached under parent. If top is true,
// the first step requires an explicit axis; otherwise (inside a predicate) a
// bare name is allowed and means the child axis.
func (p *parser) steps(pat *Pattern, parent int, top bool) error {
	first := true
	for {
		var axis Axis
		switch p.peek().kind {
		case tokSlash:
			p.next()
			axis = Child
		case tokDSlash:
			p.next()
			axis = Descendant
		case tokName:
			if !first || top {
				return fmt.Errorf("tpq: missing axis before %q", p.peek().text)
			}
			axis = Child // bare leading name inside a predicate: child axis
		default:
			if first {
				return fmt.Errorf("tpq: expected step, got %q", p.peek().text)
			}
			return nil
		}
		nameTok := p.next()
		if nameTok.kind != tokName {
			return fmt.Errorf("tpq: expected element name after axis, got %q", nameTok.text)
		}
		idx := len(pat.Nodes)
		pat.Nodes = append(pat.Nodes, Node{Label: nameTok.text, Axis: axis, Parent: parent})
		if parent >= 0 {
			pat.Nodes[parent].Children = append(pat.Nodes[parent].Children, idx)
		}
		// Predicates branch off the current node.
		for p.peek().kind == tokLBrack {
			p.next()
			if err := p.steps(pat, idx, false); err != nil {
				return err
			}
			if t := p.next(); t.kind != tokRBrack {
				return fmt.Errorf("tpq: expected ']', got %q", t.text)
			}
		}
		parent = idx
		first = false
	}
}

// ParseAll parses a semicolon- or whitespace-separated list of patterns, as
// used for view set definitions (e.g. the paper's Table III rows).
func ParseAll(s string) ([]*Pattern, error) {
	var out []*Pattern
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := Parse(part)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// MustParseAll is ParseAll but panics on error.
func MustParseAll(s string) []*Pattern {
	ps, err := ParseAll(s)
	if err != nil {
		panic(err)
	}
	return ps
}
