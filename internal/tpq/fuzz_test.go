package tpq

import "testing"

// FuzzParse checks that the TPQ parser never panics, that every
// successfully parsed pattern is valid, round-trips through String, and
// that the rendered form is canonical (rendering is a fixed point of
// parse∘render). ParseGeneral must behave identically on everything the
// unique-label parser accepts, and must itself round-trip on inputs only
// it accepts (repeated labels).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"//a", "/a/b", "//a//b", "//a/b[//c/d]//e",
		"//journal[//suffix][title]/date/year",
		"//a[", "a//b", "//a[b][c][d]", "//a[//b[//c[//d]]]",
		"//x-1.y_2", "[", "]", "///", "//a//", " // a / b ",
		"//a//b//a", "//section//figure//section", "//a[//a]",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err == nil {
			if verr := p.Validate(); verr != nil {
				t.Fatalf("Parse(%q) accepted invalid pattern: %v", s, verr)
			}
			rendered := p.String()
			p2, err := Parse(rendered)
			if err != nil {
				t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", s, rendered, err)
			}
			if !p.Equal(p2) {
				t.Fatalf("Parse(%q): round trip through %q changed the pattern", s, rendered)
			}
			// The rendered form must be canonical: rendering the re-parse
			// reproduces it byte for byte, so String is a stable key (the
			// serving plan cache and trace reports rely on this).
			if again := p2.String(); again != rendered {
				t.Fatalf("Parse(%q): rendering is not idempotent (%q -> %q)", s, rendered, again)
			}
			// Anything the unique-label parser accepts, the general parser
			// must parse to the same pattern.
			pg, err := ParseGeneral(s)
			if err != nil {
				t.Fatalf("ParseGeneral(%q) rejected input Parse accepted: %v", s, err)
			}
			if !p.Equal(pg) {
				t.Fatalf("ParseGeneral(%q) = %s, Parse = %s", s, pg, p)
			}
		}

		// ParseGeneral accepts a superset (repeated labels); its successes
		// must satisfy the same round-trip and canonicality properties.
		g, gerr := ParseGeneral(s)
		if gerr != nil {
			if err == nil {
				t.Fatalf("ParseGeneral(%q) rejected input Parse accepted: %v", s, gerr)
			}
			return
		}
		rendered := g.String()
		g2, gerr := ParseGeneral(rendered)
		if gerr != nil {
			t.Fatalf("ParseGeneral(%q).String() = %q does not re-parse: %v", s, rendered, gerr)
		}
		if !g.Equal(g2) {
			t.Fatalf("ParseGeneral(%q): round trip through %q changed the pattern", s, rendered)
		}
		if again := g2.String(); again != rendered {
			t.Fatalf("ParseGeneral(%q): rendering is not idempotent (%q -> %q)", s, rendered, again)
		}
	})
}
