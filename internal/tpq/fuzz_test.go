package tpq

import "testing"

// FuzzParse checks that the TPQ parser never panics and that every
// successfully parsed pattern is valid and round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"//a", "/a/b", "//a//b", "//a/b[//c/d]//e",
		"//journal[//suffix][title]/date/year",
		"//a[", "a//b", "//a[b][c][d]", "//a[//b[//c[//d]]]",
		"//x-1.y_2", "[", "]", "///", "//a//", " // a / b ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted invalid pattern: %v", s, verr)
		}
		rendered := p.String()
		p2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", s, rendered, err)
		}
		if !p.Equal(p2) {
			t.Fatalf("Parse(%q): round trip through %q changed the pattern", s, rendered)
		}
	})
}
