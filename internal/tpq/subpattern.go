package tpq

import (
	"fmt"
	"sort"
)

// Mapping is an embedding of one pattern's nodes onto another pattern's
// nodes: Mapping[i] is the index in the target pattern that node i of the
// source pattern maps to.
type Mapping []int

// MapOnto computes the subpattern mapping β' from v onto q (§II): node
// types are preserved, a pc-child maps to a pc-child, and an ad-child maps
// to a descendant. Because patterns have unique labels, the mapping is
// unique when it exists. It returns nil, false when v is not a subpattern
// of q.
func (v *Pattern) MapOnto(q *Pattern) (Mapping, bool) {
	m := make(Mapping, len(v.Nodes))
	for i := range v.Nodes {
		t := q.NodeByLabel(v.Nodes[i].Label)
		if t == -1 {
			return nil, false
		}
		m[i] = t
	}
	for i := 1; i < len(v.Nodes); i++ {
		pi := v.Nodes[i].Parent
		src, dst := m[pi], m[i]
		switch v.Nodes[i].Axis {
		case Child:
			if q.Nodes[dst].Parent != src || q.Nodes[dst].Axis != Child {
				return nil, false
			}
		case Descendant:
			if !q.IsAncestor(src, dst) {
				return nil, false
			}
		}
	}
	return m, true
}

// IsSubpatternOf reports whether v is a subpattern of q.
func (v *Pattern) IsSubpatternOf(q *Pattern) bool {
	_, ok := v.MapOnto(q)
	return ok
}

// IsConnectedSubpatternOf reports whether v is a connected subpattern of q:
// a subpattern whose image is a connected component of q, i.e. every edge of
// v maps onto an edge of q with the same axis.
func (v *Pattern) IsConnectedSubpatternOf(q *Pattern) bool {
	m, ok := v.MapOnto(q)
	if !ok {
		return false
	}
	for i := 1; i < len(v.Nodes); i++ {
		pi := v.Nodes[i].Parent
		src, dst := m[pi], m[i]
		if q.Nodes[dst].Parent != src {
			return false
		}
		if q.Nodes[dst].Axis != v.Nodes[i].Axis {
			return false
		}
	}
	return true
}

// Covers reports whether the view set vs is a covering view set of q: every
// query node's element type appears in some view that is a subpattern of q.
func Covers(vs []*Pattern, q *Pattern) bool {
	covered := make(map[string]bool)
	for _, v := range vs {
		if !v.IsSubpatternOf(q) {
			continue
		}
		for i := range v.Nodes {
			covered[v.Nodes[i].Label] = true
		}
	}
	for i := range q.Nodes {
		if !covered[q.Nodes[i].Label] {
			return false
		}
	}
	return true
}

// IsMinimalCover reports whether vs is a minimal covering view set of q: it
// covers q and no proper subset does.
func IsMinimalCover(vs []*Pattern, q *Pattern) bool {
	if !Covers(vs, q) {
		return false
	}
	for drop := range vs {
		sub := make([]*Pattern, 0, len(vs)-1)
		sub = append(sub, vs[:drop]...)
		sub = append(sub, vs[drop+1:]...)
		if Covers(sub, q) {
			return false
		}
	}
	return true
}

// ValidateViewSet checks the paper's assumptions for a view set used to
// answer q: each view is a subpattern of q with unique labels, the views
// have pairwise disjoint element types, and together they cover q.
func ValidateViewSet(vs []*Pattern, q *Pattern) error {
	if err := q.Validate(); err != nil {
		return fmt.Errorf("tpq: query: %w", err)
	}
	seen := make(map[string]int) // label -> view index
	for vi, v := range vs {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("tpq: view %d (%s): %w", vi, v, err)
		}
		if !v.IsSubpatternOf(q) {
			return fmt.Errorf("tpq: view %d (%s) is not a subpattern of query %s", vi, v, q)
		}
		for i := range v.Nodes {
			l := v.Nodes[i].Label
			if prev, ok := seen[l]; ok {
				return fmt.Errorf("tpq: element type %q appears in views %d and %d", l, prev, vi)
			}
			seen[l] = vi
		}
	}
	if !Covers(vs, q) {
		missing := uncovered(vs, q)
		return fmt.Errorf("tpq: view set does not cover query %s (missing %v)", q, missing)
	}
	return nil
}

func uncovered(vs []*Pattern, q *Pattern) []string {
	covered := make(map[string]bool)
	for _, v := range vs {
		for i := range v.Nodes {
			covered[v.Nodes[i].Label] = true
		}
	}
	var out []string
	for i := range q.Nodes {
		if !covered[q.Nodes[i].Label] {
			out = append(out, q.Nodes[i].Label)
		}
	}
	sort.Strings(out)
	return out
}

// QueryNodeOfView returns, for every node of view v, the query node index
// it corresponds to (by element type). It returns an error when v is not a
// subpattern of q.
func QueryNodeOfView(v, q *Pattern) (Mapping, error) {
	m, ok := v.MapOnto(q)
	if !ok {
		return nil, fmt.Errorf("tpq: view %s is not a subpattern of query %s", v, q)
	}
	return m, nil
}

// InterViewEdges counts the edges of q whose endpoints are covered by two
// different views of vs — the paper's measure of the complexity of the
// interleaving conditions between a query and a view set (§IV-A, Table III).
// Query nodes not covered by any view (possible only for non-covering sets)
// are treated as belonging to their own singleton view.
func InterViewEdges(vs []*Pattern, q *Pattern) int {
	owner := viewOwners(vs, q)
	count := 0
	for i := 1; i < len(q.Nodes); i++ {
		if owner[i] != owner[q.Nodes[i].Parent] {
			count++
		}
	}
	return count
}

// viewOwners maps each query node index to the index of the view in vs that
// covers it, or -1000-i for uncovered node i (a unique pseudo-view).
func viewOwners(vs []*Pattern, q *Pattern) []int {
	owner := make([]int, len(q.Nodes))
	for i := range owner {
		owner[i] = -1000 - i
	}
	for vi, v := range vs {
		m, ok := v.MapOnto(q)
		if !ok {
			continue
		}
		for _, qi := range m {
			owner[qi] = vi
		}
	}
	return owner
}

// ViewOwners is the exported form of viewOwners for view sets that have
// been validated: ViewOwners[qi] is the index in vs of the view covering
// query node qi.
func ViewOwners(vs []*Pattern, q *Pattern) []int {
	return viewOwners(vs, q)
}
