// Package tpq models tree pattern queries (TPQs), the query and view
// language of the paper (§II): the XPath fragment built from the child axis
// (/), the descendant axis (//), and branching predicates ([]).
//
// A TPQ is a tree whose nodes are labelled with element types and whose
// edges are either parent-child edges (pc-edges, the / axis) or
// ancestor-descendant edges (ad-edges, the // axis). Following the paper,
// every node of a TPQ is an output node, patterns contain no duplicate
// element types, and the views used to answer a query have pairwise
// disjoint element types.
package tpq

import (
	"fmt"
	"sort"
	"strings"
)

// Axis is the edge type connecting a TPQ node to its parent.
type Axis int8

const (
	// Child is a parent-child (pc) edge, XPath '/'.
	Child Axis = iota
	// Descendant is an ancestor-descendant (ad) edge, XPath '//'.
	Descendant
)

// String returns the XPath spelling of the axis.
func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// Node is one node of a tree pattern.
type Node struct {
	Label    string // element type
	Axis     Axis   // edge from Parent (for the root: axis from the document context)
	Parent   int    // index of the parent node, -1 for the root
	Children []int  // indices of child nodes, in syntactic order
}

// Pattern is a tree pattern query. Nodes[0] is the root; node indices are a
// pre-order enumeration of the pattern tree.
type Pattern struct {
	Nodes []Node
}

// Size returns |Q|, the number of nodes in the pattern.
func (p *Pattern) Size() int { return len(p.Nodes) }

// Root returns the index of the root node (always 0).
func (p *Pattern) Root() int { return 0 }

// IsPath reports whether the pattern is a path query (no branching).
func (p *Pattern) IsPath() bool {
	for i := range p.Nodes {
		if len(p.Nodes[i].Children) > 1 {
			return false
		}
	}
	return true
}

// Leaves returns the indices of the leaf nodes.
func (p *Pattern) Leaves() []int {
	var out []int
	for i := range p.Nodes {
		if len(p.Nodes[i].Children) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Labels returns the set of element types used in the pattern, sorted.
func (p *Pattern) Labels() []string {
	out := make([]string, len(p.Nodes))
	for i := range p.Nodes {
		out[i] = p.Nodes[i].Label
	}
	sort.Strings(out)
	return out
}

// NodeByLabel returns the index of the node with the given label, or -1.
// Patterns are assumed to have unique labels (§II); if the label occurs more
// than once the first occurrence is returned.
func (p *Pattern) NodeByLabel(label string) int {
	for i := range p.Nodes {
		if p.Nodes[i].Label == label {
			return i
		}
	}
	return -1
}

// HasDuplicateLabels reports whether any element type occurs on two nodes.
func (p *Pattern) HasDuplicateLabels() bool {
	seen := make(map[string]bool, len(p.Nodes))
	for i := range p.Nodes {
		if seen[p.Nodes[i].Label] {
			return true
		}
		seen[p.Nodes[i].Label] = true
	}
	return false
}

// Validate checks the structural invariants of the pattern: node 0 is the
// root, parent/child links are consistent, the tree is connected, and (per
// the paper's assumption) labels are unique.
func (p *Pattern) Validate() error {
	if err := p.ValidateGeneral(); err != nil {
		return err
	}
	if p.HasDuplicateLabels() {
		return fmt.Errorf("tpq: duplicate element types in pattern %s", p)
	}
	return nil
}

// ValidateGeneral checks the structural invariants without the paper's
// unique-label assumption (general patterns are evaluable over raw element
// streams but not by the view machinery).
func (p *Pattern) ValidateGeneral() error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("tpq: empty pattern")
	}
	if p.Nodes[0].Parent != -1 {
		return fmt.Errorf("tpq: root has parent %d", p.Nodes[0].Parent)
	}
	for i := range p.Nodes {
		n := p.Nodes[i]
		if i > 0 {
			if n.Parent < 0 || n.Parent >= len(p.Nodes) {
				return fmt.Errorf("tpq: node %d has out-of-range parent %d", i, n.Parent)
			}
			found := false
			for _, c := range p.Nodes[n.Parent].Children {
				if c == i {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("tpq: node %d missing from parent %d child list", i, n.Parent)
			}
		}
		for _, c := range n.Children {
			if c <= 0 || c >= len(p.Nodes) {
				return fmt.Errorf("tpq: node %d has out-of-range child %d", i, c)
			}
			if p.Nodes[c].Parent != i {
				return fmt.Errorf("tpq: child %d of node %d has parent %d", c, i, p.Nodes[c].Parent)
			}
		}
	}
	return nil
}

// Descendants returns the indices of all nodes in the subtree rooted at q,
// excluding q itself, in pre-order.
func (p *Pattern) Descendants(q int) []int {
	var out []int
	var rec func(int)
	rec = func(i int) {
		for _, c := range p.Nodes[i].Children {
			out = append(out, c)
			rec(c)
		}
	}
	rec(q)
	return out
}

// Subtree returns the indices of all nodes in the subtree rooted at q,
// including q, in pre-order (the paper's st_Q(q)).
func (p *Pattern) Subtree(q int) []int {
	return append([]int{q}, p.Descendants(q)...)
}

// IsAncestor reports whether node a is a proper ancestor of node b in the
// pattern tree.
func (p *Pattern) IsAncestor(a, b int) bool {
	for cur := p.Nodes[b].Parent; cur != -1; cur = p.Nodes[cur].Parent {
		if cur == a {
			return true
		}
	}
	return false
}

// Equal reports whether two patterns are structurally identical (same shape,
// labels, and axes, with children in the same order).
func (p *Pattern) Equal(q *Pattern) bool {
	if len(p.Nodes) != len(q.Nodes) {
		return false
	}
	for i := range p.Nodes {
		a, b := p.Nodes[i], q.Nodes[i]
		if a.Label != b.Label || a.Axis != b.Axis || a.Parent != b.Parent {
			return false
		}
		if len(a.Children) != len(b.Children) {
			return false
		}
		for j := range a.Children {
			if a.Children[j] != b.Children[j] {
				return false
			}
		}
	}
	return true
}

// String renders the pattern in the XPath fragment syntax it was parsed
// from, e.g. "//a/b[//c]//d".
func (p *Pattern) String() string {
	var sb strings.Builder
	var rec func(i int, top bool)
	rec = func(i int, top bool) {
		n := p.Nodes[i]
		sb.WriteString(n.Axis.String())
		sb.WriteString(n.Label)
		if len(n.Children) == 0 {
			return
		}
		// The last child continues the spine; earlier children become
		// predicates. This matches how the parser builds patterns and makes
		// String a faithful inverse of Parse for parser-produced patterns.
		for _, c := range n.Children[:len(n.Children)-1] {
			sb.WriteString("[")
			// Inside predicates, a pc-edge is written without a leading '/'.
			cn := p.Nodes[c]
			if cn.Axis == Child {
				sb.WriteString(cn.Label)
				writeTail(&sb, p, c)
			} else {
				rec(c, false)
			}
			sb.WriteString("]")
		}
		rec(n.Children[len(n.Children)-1], false)
	}
	rec(0, true)
	return sb.String()
}

func writeTail(sb *strings.Builder, p *Pattern, i int) {
	n := p.Nodes[i]
	if len(n.Children) == 0 {
		return
	}
	for _, c := range n.Children[:len(n.Children)-1] {
		sb.WriteString("[")
		cn := p.Nodes[c]
		if cn.Axis == Child {
			sb.WriteString(cn.Label)
			writeTail(sb, p, c)
		} else {
			sb.WriteString(cn.Axis.String())
			sb.WriteString(cn.Label)
			writeTail(sb, p, c)
		}
		sb.WriteString("]")
	}
	last := n.Children[len(n.Children)-1]
	ln := p.Nodes[last]
	sb.WriteString(ln.Axis.String())
	sb.WriteString(ln.Label)
	writeTail(sb, p, last)
}

// Clone returns a deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	nodes := make([]Node, len(p.Nodes))
	for i, n := range p.Nodes {
		nodes[i] = Node{
			Label:    n.Label,
			Axis:     n.Axis,
			Parent:   n.Parent,
			Children: append([]int(nil), n.Children...),
		}
	}
	return &Pattern{Nodes: nodes}
}
