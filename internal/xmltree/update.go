// Document updates: subtree insert, append and delete.
//
// A Document is immutable, so an update produces a fresh Document plus an
// Applied descriptor characterizing the label splice. Region labels make
// the splice arithmetic exact: a fragment of m nodes occupies 2m
// consecutive tag positions, so every surviving node's label is either
// unchanged (position < Pivot) or shifted by the constant Delta
// (position >= Pivot). The descriptor is what lets the store overlay and
// the maintenance layer repair materialized views by splicing label lists
// instead of re-materializing (ROADMAP item 1).
package xmltree

import "fmt"

// UpdateOp enumerates the supported subtree mutations.
type UpdateOp int

const (
	// OpInsertBefore splices a fragment in as the immediately preceding
	// sibling of the target node.
	OpInsertBefore UpdateOp = iota
	// OpAppendChild splices a fragment in as the last child of the target
	// node.
	OpAppendChild
	// OpDeleteSubtree removes the subtree rooted at the target node.
	OpDeleteSubtree
)

// String returns the op name.
func (op UpdateOp) String() string {
	switch op {
	case OpInsertBefore:
		return "insert-before"
	case OpAppendChild:
		return "append-child"
	case OpDeleteSubtree:
		return "delete-subtree"
	}
	return fmt.Sprintf("<op %d>", int(op))
}

// Update describes one subtree mutation against a Document. Fragment is a
// self-contained single-root document whose subtree is spliced in (ignored
// for OpDeleteSubtree).
type Update struct {
	Op       UpdateOp
	Target   NodeID
	Fragment *Document
}

// Applied is the result of applying an Update: the new immutable document
// plus the splice parameters downstream layers use to remap old labels.
//
// The remap rule is uniform across all three ops: an old tag position p
// survives to position p when p < Pivot and to p+Delta when p >= Pivot.
// For deletes, positions in [DeadStart, DeadEnd] do not survive at all;
// no surviving label lies in that range, so Remap is total on survivors.
type Applied struct {
	Old *Document
	New *Document
	Op  UpdateOp

	Pivot int32 // first old position affected by the shift
	Delta int32 // +2m for an m-node insert, -(2m) for an m-node delete

	// Delete only: the old-position range and node-id range removed.
	DeadStart, DeadEnd int32
	DeadID             NodeID // old id of the deleted subtree root
	DeadCount          int    // nodes removed

	// Insert/append only: where the fragment landed in the new document.
	FragBase  NodeID // new id of the fragment root
	FragCount int    // nodes inserted

	// FragTypes holds the tag names of every inserted or deleted node.
	// When FragTypes is disjoint from a view's label alphabet, the view's
	// solution lists are exactly the old lists remapped — the maintenance
	// fast path.
	FragTypes map[string]bool
}

// Remap returns the post-update position of a surviving old position.
func (a *Applied) Remap(p int32) int32 {
	if p < a.Pivot {
		return p
	}
	return p + a.Delta
}

// DeadPos reports whether an old tag position was removed by the update.
func (a *Applied) DeadPos(p int32) bool {
	return a.Op == OpDeleteSubtree && p >= a.DeadStart && p <= a.DeadEnd
}

// Apply produces the updated document. The receiver is not modified;
// readers holding it observe no change.
func (d *Document) Apply(u Update) (*Applied, error) {
	switch u.Op {
	case OpInsertBefore, OpAppendChild:
		return d.applyInsert(u)
	case OpDeleteSubtree:
		return d.applyDelete(u)
	}
	return nil, fmt.Errorf("xmltree: unknown update op %d", int(u.Op))
}

func (d *Document) checkTarget(t NodeID) error {
	if t < 0 || int(t) >= len(d.nodes) {
		return fmt.Errorf("xmltree: update target %d out of range [0,%d)", t, len(d.nodes))
	}
	return nil
}

func checkFragment(f *Document) error {
	if f == nil || len(f.nodes) == 0 {
		return fmt.Errorf("xmltree: update fragment is empty")
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("xmltree: update fragment invalid: %w", err)
	}
	return nil
}

// mergeNames copies d's name table and returns it together with a
// fragment-type -> merged-type translation. Existing TypeIDs are stable:
// the merged table is a copy with fragment-only names appended, so every
// surviving node keeps its TypeID across the update.
func (d *Document) mergeNames(f *Document) (names []string, nameIDs map[string]TypeID, fragType []TypeID) {
	names = append([]string(nil), d.names...)
	nameIDs = make(map[string]TypeID, len(d.names)+len(f.names))
	for name, id := range d.nameIDs {
		nameIDs[name] = id
	}
	fragType = make([]TypeID, len(f.names))
	for ft, name := range f.names {
		id, ok := nameIDs[name]
		if !ok {
			id = TypeID(len(names))
			names = append(names, name)
			nameIDs[name] = id
		}
		fragType[ft] = id
	}
	return names, nameIDs, fragType
}

func (d *Document) applyInsert(u Update) (*Applied, error) {
	if err := d.checkTarget(u.Target); err != nil {
		return nil, err
	}
	if err := checkFragment(u.Fragment); err != nil {
		return nil, err
	}
	if u.Op == OpInsertBefore && u.Target == d.Root() {
		return nil, fmt.Errorf("xmltree: cannot insert a sibling of the root")
	}
	f := u.Fragment
	m := len(f.nodes)
	delta := int32(2 * m)

	// Splice coordinates. Insert-before: the fragment takes over the
	// target's start position, pushing the target (and everything at or
	// after it) right by 2m. Append-child: the fragment lands where the
	// target's end tag was, pushing the end tag (and everything after)
	// right by 2m.
	var pivot int32     // first shifted old position
	var fragBase NodeID // insertion point in node-id (document) order
	var parentOfRoot NodeID
	var baseLevel int32
	t := d.nodes[u.Target]
	switch u.Op {
	case OpInsertBefore:
		pivot = t.Start
		fragBase = u.Target
		parentOfRoot = t.Parent
		baseLevel = t.Level
	case OpAppendChild:
		pivot = t.End
		fragBase = d.nextAfterSubtree(u.Target)
		parentOfRoot = u.Target
		baseLevel = t.Level + 1
	}

	names, nameIDs, fragType := d.mergeNames(f)
	nodes := make([]Node, 0, len(d.nodes)+m)
	fragTypes := make(map[string]bool, len(f.names))
	for _, fn := range f.nodes {
		fragTypes[f.names[fn.Type]] = true
	}

	// Old nodes before the insertion point keep their ids and starts; only
	// ends spanning the pivot (the append target and the ancestors of the
	// splice point) shift.
	for _, n := range d.nodes[:fragBase] {
		if n.End >= pivot {
			n.End += delta
		}
		nodes = append(nodes, n)
	}
	// Fragment nodes: positions 1..2m translate to pivot..pivot+2m-1.
	for _, fn := range f.nodes {
		nn := Node{
			Type:  fragType[fn.Type],
			Start: fn.Start - 1 + pivot,
			End:   fn.End - 1 + pivot,
			Level: fn.Level + baseLevel,
		}
		if fn.Parent == NoNode {
			nn.Parent = parentOfRoot
		} else {
			nn.Parent = fn.Parent + fragBase
		}
		nodes = append(nodes, nn)
	}
	// Old nodes at or after the insertion point shift wholesale.
	for _, n := range d.nodes[fragBase:] {
		n.Start += delta
		n.End += delta
		if n.Parent >= fragBase {
			n.Parent += NodeID(m)
		}
		nodes = append(nodes, n)
	}

	return &Applied{
		Old:       d,
		New:       &Document{names: names, nameIDs: nameIDs, nodes: nodes},
		Op:        u.Op,
		Pivot:     pivot,
		Delta:     delta,
		DeadEnd:   -1,
		FragBase:  fragBase,
		FragCount: m,
		FragTypes: fragTypes,
	}, nil
}

func (d *Document) applyDelete(u Update) (*Applied, error) {
	if err := d.checkTarget(u.Target); err != nil {
		return nil, err
	}
	if u.Target == d.Root() {
		return nil, fmt.Errorf("xmltree: cannot delete the document root")
	}
	t := d.nodes[u.Target]
	dead := d.SubtreeSize(u.Target)
	after := u.Target + NodeID(dead)
	delta := -(t.End - t.Start + 1)

	nodes := make([]Node, 0, len(d.nodes)-dead)
	fragTypes := make(map[string]bool)
	for _, n := range d.nodes[u.Target:after] {
		fragTypes[d.names[n.Type]] = true
	}

	// Survivors before the subtree keep ids and starts; ancestors of the
	// target (the only earlier nodes whose regions span it) lose the dead
	// range from their extent.
	for _, n := range d.nodes[:u.Target] {
		if n.End > t.End {
			n.End += delta
		}
		nodes = append(nodes, n)
	}
	// Survivors after the subtree shift left wholesale. Their parents are
	// never inside the dead range: a dead node's region ends at t.End,
	// before any surviving start on this side.
	for _, n := range d.nodes[after:] {
		n.Start += delta
		n.End += delta
		if n.Parent >= after {
			n.Parent -= NodeID(dead)
		}
		nodes = append(nodes, n)
	}

	// The name table is kept as-is even if the deleted type no longer
	// occurs, so surviving TypeIDs stay stable across the update.
	names := append([]string(nil), d.names...)
	nameIDs := make(map[string]TypeID, len(d.nameIDs))
	for name, id := range d.nameIDs {
		nameIDs[name] = id
	}

	return &Applied{
		Old:       d,
		New:       &Document{names: names, nameIDs: nameIDs, nodes: nodes},
		Op:        u.Op,
		Pivot:     t.Start,
		Delta:     delta,
		DeadStart: t.Start,
		DeadEnd:   t.End,
		DeadID:    u.Target,
		DeadCount: dead,
		FragTypes: fragTypes,
	}, nil
}
