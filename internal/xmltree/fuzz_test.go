package xmltree

import (
	"strings"
	"testing"
)

// FuzzParse checks that the XML element parser never panics and that every
// accepted document satisfies the region-label invariants and round-trips
// through Write.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"<a/>", "<a><b/></a>", "<a><b>hi<c/></b>t</a>",
		`<a x="1"><!--c--><b/></a>`, "<a><a><a/></a></a>",
		"<a><b></a></b>", "<a>", "", "a<b/>", "<a/><b/>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseString(s)
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ParseString(%q) accepted invalid tree: %v", s, verr)
		}
		var sb strings.Builder
		if err := Write(&sb, d); err != nil {
			t.Fatalf("Write failed on accepted document: %v", err)
		}
		d2, err := ParseString(sb.String())
		if err != nil {
			t.Fatalf("round trip does not re-parse: %v", err)
		}
		if d2.NumNodes() != d.NumNodes() {
			t.Fatalf("round trip changed node count: %d vs %d", d2.NumNodes(), d.NumNodes())
		}
		for i := 0; i < d.NumNodes(); i++ {
			a, b := d.Node(NodeID(i)), d2.Node(NodeID(i))
			if a.Start != b.Start || a.End != b.End || a.Level != b.Level {
				t.Fatalf("round trip changed labels of node %d", i)
			}
		}
	})
}
