package xmltree

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildFig1a(t *testing.T) *Document {
	// A tree in the spirit of the paper's Fig. 1(a): nested a-subtrees with
	// b, c, d, e, f elements.
	t.Helper()
	b := NewBuilder()
	b.Element("r", func() {
		b.Element("a", func() {
			b.Element("b", func() {
				b.Element("c", func() {
					b.Leaf("d")
				})
				b.Leaf("e")
			})
			b.Leaf("e")
		})
		b.Element("a", func() {
			b.Leaf("f")
			b.Element("b", func() {
				b.Leaf("d")
			})
			b.Leaf("e")
		})
	})
	d, err := b.Document()
	if err != nil {
		t.Fatalf("Document: %v", err)
	}
	return d
}

func TestBuilderLabels(t *testing.T) {
	d := buildFig1a(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := d.NumNodes(); got != 12 {
		t.Fatalf("NumNodes = %d, want 12", got)
	}
	root := d.Node(d.Root())
	if root.Start != 1 || root.End != int32(2*d.NumNodes()) {
		t.Errorf("root region = [%d,%d], want [1,%d]", root.Start, root.End, 2*d.NumNodes())
	}
	if root.Level != 0 {
		t.Errorf("root level = %d, want 0", root.Level)
	}
	// Every non-root node must be inside its parent and one level below.
	for i := 1; i < d.NumNodes(); i++ {
		n := d.Node(NodeID(i))
		p := d.Node(n.Parent)
		if !p.IsAncestorOf(n) {
			t.Errorf("node %d not inside parent", i)
		}
		if !p.IsParentOf(n) {
			t.Errorf("node %d: parent relation not detected by labels", i)
		}
	}
}

func TestStructuralPredicates(t *testing.T) {
	d := buildFig1a(t)
	as := d.NodesOfType(d.TypeByName("a"))
	if len(as) != 2 {
		t.Fatalf("len(a nodes) = %d, want 2", len(as))
	}
	a1, a2 := d.Node(as[0]), d.Node(as[1])
	if a1.IsAncestorOf(a2) || a2.IsAncestorOf(a1) {
		t.Errorf("sibling a-subtrees must not contain one another")
	}
	if !a2.Follows(a1) {
		t.Errorf("a2 must follow a1")
	}
	if a1.Follows(a2) {
		t.Errorf("a1 must not follow a2")
	}
	ds := d.NodesOfType(d.TypeByName("d"))
	if len(ds) != 2 {
		t.Fatalf("len(d nodes) = %d, want 2", len(ds))
	}
	if !a1.IsAncestorOf(d.Node(ds[0])) {
		t.Errorf("a1 must be ancestor of first d")
	}
	if a1.IsParentOf(d.Node(ds[0])) {
		t.Errorf("a1 must not be parent of first d (two levels apart)")
	}
}

func TestChildrenAndSubtreeSize(t *testing.T) {
	d := buildFig1a(t)
	kids := d.Children(d.Root())
	if len(kids) != 2 {
		t.Fatalf("root has %d children, want 2", len(kids))
	}
	for _, k := range kids {
		if d.TypeName(d.Node(k).Type) != "a" {
			t.Errorf("root child type = %s, want a", d.TypeName(d.Node(k).Type))
		}
	}
	if got := d.SubtreeSize(d.Root()); got != d.NumNodes() {
		t.Errorf("SubtreeSize(root) = %d, want %d", got, d.NumNodes())
	}
	if got := d.SubtreeSize(kids[0]); got != 6 {
		t.Errorf("SubtreeSize(first a) = %d, want 6", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `<site><people><person><name/></person><person><name/><age/></person></people></site>`
	d, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	d2, err := ParseString(buf.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if d2.NumNodes() != d.NumNodes() {
		t.Fatalf("round trip node count %d != %d", d2.NumNodes(), d.NumNodes())
	}
	for i := 0; i < d.NumNodes(); i++ {
		a, b := d.Node(NodeID(i)), d2.Node(NodeID(i))
		if d.TypeName(a.Type) != d2.TypeName(b.Type) || a.Start != b.Start || a.End != b.End || a.Level != b.Level {
			t.Fatalf("node %d differs after round trip: %+v vs %+v", i, a, b)
		}
	}
}

func TestParseIgnoresTextAndAttrs(t *testing.T) {
	src := `<a x="1"><!-- comment --><b>text<c/>more</b>tail</a>`
	d, err := ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if d.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", d.NumNodes())
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		``,
		`<a><b></a></b>`,
		`<a></a><b></b>`, // two roots
		`<a>`,            // unclosed
	} {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.End()
	if _, err := b.Document(); err == nil {
		t.Errorf("End without Begin: expected error")
	}
	b = NewBuilder()
	b.Leaf("a")
	b.Leaf("b")
	if _, err := b.Document(); err == nil {
		t.Errorf("two roots: expected error")
	}
	b = NewBuilder()
	b.Begin("a")
	if _, err := b.Document(); err == nil {
		t.Errorf("unclosed element: expected error")
	}
	b = NewBuilder()
	if _, err := b.Document(); err == nil {
		t.Errorf("empty builder: expected error")
	}
}

// RandomTree builds a random document with the given rng; exported via the
// test file for reuse by property tests in other packages' tests through
// copy, and used here to property-check label invariants.
func randomTree(rng *rand.Rand, maxNodes int) *Document {
	labels := []string{"a", "b", "c", "d", "e"}
	b := NewBuilder()
	n := 1 + rng.Intn(maxNodes)
	var rec func(depth, budget int) int
	rec = func(depth, budget int) int {
		used := 1
		b.Begin(labels[rng.Intn(len(labels))])
		for budget-used > 0 && rng.Intn(3) != 0 && depth < 12 {
			used += rec(depth+1, budget-used)
		}
		b.End()
		return used
	}
	rec(0, n)
	return b.MustDocument()
}

func TestRandomTreeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomTree(rng, 200)
		if err := d.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		// Region-label nesting must match parent pointers for every pair.
		for i := 0; i < d.NumNodes(); i++ {
			for j := 0; j < d.NumNodes(); j++ {
				if i == j {
					continue
				}
				a, c := d.Node(NodeID(i)), d.Node(NodeID(j))
				byLabel := a.IsAncestorOf(c)
				byParent := false
				for cur := c.Parent; cur != NoNode; cur = d.Node(cur).Parent {
					if cur == NodeID(i) {
						byParent = true
						break
					}
				}
				if byLabel != byParent {
					t.Logf("ancestor disagreement between labels and parents: %d vs %d", i, j)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRandomTreeSerializeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomTree(rng, 120)
		var buf strings.Builder
		if err := Write(&buf, d); err != nil {
			return false
		}
		d2, err := ParseString(buf.String())
		if err != nil {
			return false
		}
		if d2.NumNodes() != d.NumNodes() {
			return false
		}
		for i := 0; i < d.NumNodes(); i++ {
			a, b := d.Node(NodeID(i)), d2.Node(NodeID(i))
			if a.Start != b.Start || a.End != b.End || a.Level != b.Level {
				return false
			}
			if d.TypeName(a.Type) != d2.TypeName(b.Type) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFindByStart(t *testing.T) {
	d := buildFig1a(t)
	for i := 0; i < d.NumNodes(); i++ {
		id := NodeID(i)
		if got := d.FindByStart(d.Node(id).Start); got != id {
			t.Errorf("FindByStart(%d) = %d, want %d", d.Node(id).Start, got, id)
		}
	}
	if got := d.FindByStart(-5); got != NoNode {
		t.Errorf("FindByStart(-5) = %d, want NoNode", got)
	}
}

func TestTypeLookup(t *testing.T) {
	d := buildFig1a(t)
	if d.TypeByName("nosuch") != NoType {
		t.Errorf("TypeByName(nosuch) should be NoType")
	}
	if d.NodesOfType(NoType) != nil {
		t.Errorf("NodesOfType(NoType) should be nil")
	}
	for _, name := range []string{"r", "a", "b", "c", "d", "e", "f"} {
		tid := d.TypeByName(name)
		if tid == NoType {
			t.Fatalf("TypeByName(%s) = NoType", name)
		}
		if d.TypeName(tid) != name {
			t.Errorf("TypeName(TypeByName(%s)) = %s", name, d.TypeName(tid))
		}
		for _, id := range d.NodesOfType(tid) {
			if d.Node(id).Type != tid {
				t.Errorf("NodesOfType(%s) returned node of type %s", name, d.TypeName(d.Node(id).Type))
			}
		}
	}
}
