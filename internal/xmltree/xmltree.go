// Package xmltree models XML documents as ordered labelled trees with
// region labels, the data representation used throughout the ViewJoin
// reproduction.
//
// Following the region labelling scheme of Li & Moon (VLDB 2001) adopted by
// the paper (§II), each node carries a 3-tuple <start, end, level>: 'start'
// and 'end' are the positions of the node's start and end tags in the
// document, and 'level' is the depth of the node (root at level 0). With
// these labels, structural relationships between any two nodes are decided
// in O(1):
//
//   - a is an ancestor of b  iff  a.start < b.start && b.end < a.end
//   - a is the parent of b   iff  a is an ancestor of b && a.level == b.level-1
//   - a' follows a           iff  a'.start > a.end
package xmltree

import (
	"fmt"
	"sort"
	"sync"
)

// TypeID identifies an element type (tag name) within a Document.
// TypeIDs are dense and start at 0; they are only meaningful relative to the
// Document that issued them.
type TypeID int32

// NoType is returned by lookups for element names absent from a document.
const NoType TypeID = -1

// NodeID identifies a node within a Document. Nodes are stored in document
// order, so NodeID order coincides with ascending start-label order.
type NodeID int32

// NoNode is the nil NodeID.
const NoNode NodeID = -1

// Node is one element of an XML data tree with its region label.
type Node struct {
	Type   TypeID // element type
	Start  int32  // position of the start tag
	End    int32  // position of the end tag
	Level  int32  // depth; root is 0
	Parent NodeID // parent node, NoNode for the root
}

// IsAncestorOf reports whether n strictly contains m.
func (n Node) IsAncestorOf(m Node) bool {
	return n.Start < m.Start && m.End < n.End
}

// IsParentOf reports whether n is the parent of m.
func (n Node) IsParentOf(m Node) bool {
	return n.Level == m.Level-1 && n.IsAncestorOf(m)
}

// Follows reports whether n is a following node of m (n starts after m ends).
func (n Node) Follows(m Node) bool {
	return n.Start > m.End
}

// Document is an immutable XML data tree. Nodes are stored in document
// order; node 0 is the root.
type Document struct {
	names   []string
	nameIDs map[string]TypeID
	nodes   []Node

	// Lazily built indexes, guarded for concurrent readers: a Document is
	// immutable after construction and safe for parallel query evaluation.
	typeOnce  sync.Once
	byType    [][]NodeID // type -> nodes of that type in doc order
	startOnce sync.Once
	byStart   []NodeID // start label -> node id (NoNode for end tags)
}

// NumNodes returns the number of element nodes in the document.
func (d *Document) NumNodes() int { return len(d.nodes) }

// NumTypes returns the number of distinct element types in the document.
func (d *Document) NumTypes() int { return len(d.names) }

// Root returns the NodeID of the document root.
func (d *Document) Root() NodeID { return 0 }

// Node returns the node with the given id. It panics if id is out of range.
func (d *Document) Node(id NodeID) Node { return d.nodes[id] }

// Nodes returns the backing node slice in document order. Callers must not
// modify it.
func (d *Document) Nodes() []Node { return d.nodes }

// TypeName returns the tag name for a type id.
func (d *Document) TypeName(t TypeID) string {
	if t < 0 || int(t) >= len(d.names) {
		return fmt.Sprintf("<type %d>", t)
	}
	return d.names[t]
}

// TypeByName returns the TypeID for a tag name, or NoType if the document
// has no element with that name.
func (d *Document) TypeByName(name string) TypeID {
	if id, ok := d.nameIDs[name]; ok {
		return id
	}
	return NoType
}

// NodesOfType returns the ids of all nodes with the given type, in document
// order. The returned slice is shared; callers must not modify it.
func (d *Document) NodesOfType(t TypeID) []NodeID {
	if t < 0 || int(t) >= len(d.names) {
		return nil
	}
	d.typeOnce.Do(d.buildTypeIndex)
	return d.byType[t]
}

func (d *Document) buildTypeIndex() {
	counts := make([]int, len(d.names))
	for i := range d.nodes {
		counts[d.nodes[i].Type]++
	}
	d.byType = make([][]NodeID, len(d.names))
	for t := range d.byType {
		d.byType[t] = make([]NodeID, 0, counts[t])
	}
	for i := range d.nodes {
		t := d.nodes[i].Type
		d.byType[t] = append(d.byType[t], NodeID(i))
	}
}

// Children returns the ids of the direct children of id, in document order.
func (d *Document) Children(id NodeID) []NodeID {
	var out []NodeID
	n := d.nodes[id]
	// Children are contiguous in document order between id and the first
	// node starting after n.End; walk them by skipping over subtrees.
	for c := id + 1; int(c) < len(d.nodes) && d.nodes[c].Start < n.End; {
		out = append(out, c)
		c = d.nextAfterSubtree(c)
	}
	return out
}

// nextAfterSubtree returns the first node in document order that is not in
// the subtree rooted at id.
func (d *Document) nextAfterSubtree(id NodeID) NodeID {
	end := d.nodes[id].End
	// Nodes are sorted by Start; find first node with Start > end.
	lo := int(id) + 1
	hi := len(d.nodes)
	i := lo + sort.Search(hi-lo, func(k int) bool { return d.nodes[lo+k].Start > end })
	return NodeID(i)
}

// SubtreeSize returns the number of nodes in the subtree rooted at id
// (including id itself).
func (d *Document) SubtreeSize(id NodeID) int {
	return int(d.nextAfterSubtree(id) - id)
}

// FindByStart returns the node id whose Start label equals start, or NoNode.
// A lazily built direct-lookup table makes this O(1): it sits on the hot
// output path of every evaluation engine (one lookup per bound node per
// emitted match).
func (d *Document) FindByStart(start int32) NodeID {
	d.startOnce.Do(d.buildStartIndex)
	if start < 0 || int(start) >= len(d.byStart) {
		return NoNode
	}
	return d.byStart[start]
}

func (d *Document) buildStartIndex() {
	maxStart := d.nodes[len(d.nodes)-1].Start
	idx := make([]NodeID, maxStart+1)
	for i := range idx {
		idx[i] = NoNode
	}
	for i := range d.nodes {
		idx[d.nodes[i].Start] = NodeID(i)
	}
	d.byStart = idx
}

// Validate checks the structural invariants of the document: nodes sorted by
// start, regions properly nested, levels consistent with parents. It is used
// by tests and by generators as a self-check.
func (d *Document) Validate() error {
	if len(d.nodes) == 0 {
		return fmt.Errorf("xmltree: empty document")
	}
	root := d.nodes[0]
	if root.Parent != NoNode {
		return fmt.Errorf("xmltree: root has parent %d", root.Parent)
	}
	if root.Level != 0 {
		return fmt.Errorf("xmltree: root level = %d, want 0", root.Level)
	}
	for i := 1; i < len(d.nodes); i++ {
		n := d.nodes[i]
		prev := d.nodes[i-1]
		if n.Start <= prev.Start {
			return fmt.Errorf("xmltree: node %d start %d <= previous start %d", i, n.Start, prev.Start)
		}
		if n.Start >= n.End {
			return fmt.Errorf("xmltree: node %d start %d >= end %d", i, n.Start, n.End)
		}
		if n.Parent < 0 || n.Parent >= NodeID(i) {
			return fmt.Errorf("xmltree: node %d has invalid parent %d", i, n.Parent)
		}
		p := d.nodes[n.Parent]
		if !p.IsAncestorOf(n) {
			return fmt.Errorf("xmltree: node %d not contained in parent %d", i, n.Parent)
		}
		if p.Level != n.Level-1 {
			return fmt.Errorf("xmltree: node %d level %d, parent level %d", i, n.Level, p.Level)
		}
		if n.Type < 0 || int(n.Type) >= len(d.names) {
			return fmt.Errorf("xmltree: node %d has invalid type %d", i, n.Type)
		}
	}
	return nil
}

// Builder constructs a Document incrementally via Begin/End calls that
// mirror start and end tags. It assigns region labels as it goes.
type Builder struct {
	names   []string
	nameIDs map[string]TypeID
	nodes   []Node
	stack   []NodeID
	pos     int32
	err     error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{nameIDs: make(map[string]TypeID)}
}

func (b *Builder) typeID(name string) TypeID {
	if id, ok := b.nameIDs[name]; ok {
		return id
	}
	id := TypeID(len(b.names))
	b.names = append(b.names, name)
	b.nameIDs[name] = id
	return id
}

// Begin opens a new element with the given tag name.
func (b *Builder) Begin(name string) {
	if b.err != nil {
		return
	}
	if len(b.stack) == 0 && len(b.nodes) > 0 {
		b.err = fmt.Errorf("xmltree: second root element %q", name)
		return
	}
	parent := NoNode
	level := int32(0)
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
		level = b.nodes[parent].Level + 1
	}
	b.pos++
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{
		Type:   b.typeID(name),
		Start:  b.pos,
		End:    -1,
		Level:  level,
		Parent: parent,
	})
	b.stack = append(b.stack, id)
}

// End closes the most recently opened element.
func (b *Builder) End() {
	if b.err != nil {
		return
	}
	if len(b.stack) == 0 {
		b.err = fmt.Errorf("xmltree: End without matching Begin")
		return
	}
	id := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.pos++
	b.nodes[id].End = b.pos
}

// Element opens an element, runs body (which may add children), and closes
// it. A nil body produces a leaf.
func (b *Builder) Element(name string, body func()) {
	b.Begin(name)
	if body != nil {
		body()
	}
	b.End()
}

// Leaf adds an empty element.
func (b *Builder) Leaf(name string) { b.Begin(name); b.End() }

// Document finalizes the builder and returns the constructed document.
func (b *Builder) Document() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xmltree: %d unclosed elements", len(b.stack))
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("xmltree: no elements")
	}
	d := &Document{names: b.names, nameIDs: b.nameIDs, nodes: b.nodes}
	return d, nil
}

// MustDocument is Document but panics on error; intended for tests and
// generators whose input is known to be well-formed.
func (b *Builder) MustDocument() *Document {
	d, err := b.Document()
	if err != nil {
		panic(err)
	}
	return d
}
