package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and returns its element tree with
// region labels assigned. Character data, comments, processing instructions
// and attributes are ignored: tree pattern queries (the paper's query model,
// §II) match element structure only.
func Parse(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder()
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			b.Begin(t.Name.Local)
		case xml.EndElement:
			b.End()
		}
	}
	d, err := b.Document()
	if err != nil {
		return nil, err
	}
	return d, nil
}

// ParseString parses an XML document from a string.
func ParseString(s string) (*Document, error) {
	return Parse(strings.NewReader(s))
}

// Write serializes the document's element structure as XML (tags only, with
// two-space indentation). The output round-trips through Parse to an
// identical document.
func Write(w io.Writer, d *Document) error {
	bw := &errWriter{w: w}
	var rec func(id NodeID, depth int)
	rec = func(id NodeID, depth int) {
		name := d.TypeName(d.Node(id).Type)
		indent := strings.Repeat("  ", depth)
		kids := d.Children(id)
		if len(kids) == 0 {
			bw.printf("%s<%s/>\n", indent, name)
			return
		}
		bw.printf("%s<%s>\n", indent, name)
		for _, c := range kids {
			rec(c, depth+1)
		}
		bw.printf("%s</%s>\n", indent, name)
	}
	rec(d.Root(), 0)
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
