package xmltree

import (
	"fmt"
	"math/rand"
	"testing"
)

// rebuildWithUpdate applies u semantically: it replays the old document
// through a Builder, splicing the fragment in (or skipping the deleted
// subtree) at the target. The Builder assigns region labels from scratch,
// so the result is an independent oracle for Document.Apply's label
// arithmetic.
func rebuildWithUpdate(t *testing.T, d *Document, u Update) *Document {
	t.Helper()
	b := NewBuilder()
	var emitFrag func(f *Document, id NodeID)
	emitFrag = func(f *Document, id NodeID) {
		b.Begin(f.TypeName(f.Node(id).Type))
		for _, c := range f.Children(id) {
			emitFrag(f, c)
		}
		b.End()
	}
	var emit func(id NodeID)
	emit = func(id NodeID) {
		if u.Op == OpDeleteSubtree && id == u.Target {
			return
		}
		if u.Op == OpInsertBefore && id == u.Target {
			emitFrag(u.Fragment, u.Fragment.Root())
		}
		b.Begin(d.TypeName(d.Node(id).Type))
		for _, c := range d.Children(id) {
			emit(c)
		}
		if u.Op == OpAppendChild && id == u.Target {
			emitFrag(u.Fragment, u.Fragment.Root())
		}
		b.End()
	}
	emit(d.Root())
	doc, err := b.Document()
	if err != nil {
		t.Fatalf("oracle rebuild: %v", err)
	}
	return doc
}

// sameTree compares two documents node by node, matching element types by
// name (type-id numbering may legitimately differ between the two).
func sameTree(a, b *Document) error {
	if a.NumNodes() != b.NumNodes() {
		return fmt.Errorf("node count %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for i := 0; i < a.NumNodes(); i++ {
		na, nb := a.Node(NodeID(i)), b.Node(NodeID(i))
		if a.TypeName(na.Type) != b.TypeName(nb.Type) {
			return fmt.Errorf("node %d: type %q vs %q", i, a.TypeName(na.Type), b.TypeName(nb.Type))
		}
		if na.Start != nb.Start || na.End != nb.End || na.Level != nb.Level || na.Parent != nb.Parent {
			return fmt.Errorf("node %d: label %+v vs %+v", i, na, nb)
		}
	}
	return nil
}

func randomTestDoc(rng *rand.Rand, maxNodes int, labels []string) *Document {
	b := NewBuilder()
	n := 1 + rng.Intn(maxNodes)
	var grow func(depth, budget int) int
	grow = func(depth, budget int) int {
		used := 1
		b.Begin(labels[rng.Intn(len(labels))])
		for used < budget && depth < 8 && rng.Intn(3) > 0 {
			used += grow(depth+1, budget-used)
		}
		b.End()
		return used
	}
	b.Begin("root")
	budget := n
	for budget > 0 {
		budget -= grow(1, budget)
	}
	b.End()
	return b.MustDocument()
}

func TestApplyInsertBefore(t *testing.T) {
	b := NewBuilder()
	b.Element("root", func() {
		b.Leaf("a")
		b.Element("b", func() { b.Leaf("c") })
	})
	d := b.MustDocument()

	fb := NewBuilder()
	fb.Element("x", func() { b.Leaf("a") })
	// target = the "b" node (id 2)
	ap, err := d.Apply(Update{Op: OpInsertBefore, Target: 2, Fragment: fb.MustDocument()})
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.New.Validate(); err != nil {
		t.Fatal(err)
	}
	if ap.Pivot != d.Node(2).Start || ap.Delta != 2 {
		t.Fatalf("pivot/delta = %d/%d, want %d/2", ap.Pivot, ap.Delta, d.Node(2).Start)
	}
	if !ap.FragTypes["x"] || len(ap.FragTypes) != 1 {
		t.Fatalf("FragTypes = %v", ap.FragTypes)
	}
	// The fragment root becomes the preceding sibling of b.
	fr := ap.New.Node(ap.FragBase)
	if ap.New.TypeName(fr.Type) != "x" || fr.Parent != 0 || fr.Level != 1 {
		t.Fatalf("fragment root = %+v", fr)
	}
	bNew := ap.New.Node(ap.FragBase + NodeID(ap.FragCount))
	if ap.New.TypeName(bNew.Type) != "b" || bNew.Start != fr.End+1 {
		t.Fatalf("shifted target = %+v", bNew)
	}
}

func TestApplyRejectsInvalid(t *testing.T) {
	b := NewBuilder()
	b.Element("root", func() { b.Leaf("a") })
	d := b.MustDocument()
	fb := NewBuilder()
	fb.Leaf("x")
	frag := fb.MustDocument()

	cases := []Update{
		{Op: OpInsertBefore, Target: 0, Fragment: frag}, // sibling of root
		{Op: OpDeleteSubtree, Target: 0},                // delete root
		{Op: OpAppendChild, Target: 99, Fragment: frag}, // bad target
		{Op: OpInsertBefore, Target: 1, Fragment: nil},  // no fragment
		{Op: UpdateOp(42), Target: 1},                   // unknown op
	}
	for i, u := range cases {
		if _, err := d.Apply(u); err == nil {
			t.Errorf("case %d (%v): expected error", i, u.Op)
		}
	}
}

// TestApplyRandomized cross-checks Apply's label arithmetic against a
// from-scratch Builder replay over random documents, fragments and ops,
// and checks the Applied splice descriptor on every surviving node.
func TestApplyRandomized(t *testing.T) {
	labels := []string{"a", "b", "c", "d", "e"}
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 300; it++ {
		d := randomTestDoc(rng, 40, labels)
		var u Update
		switch rng.Intn(3) {
		case 0:
			u = Update{Op: OpInsertBefore, Target: 1 + NodeID(rng.Intn(d.NumNodes()-1+1))}
			if int(u.Target) >= d.NumNodes() {
				u.Target = NodeID(d.NumNodes() - 1)
			}
			u.Fragment = randomTestDoc(rng, 10, labels)
		case 1:
			u = Update{Op: OpAppendChild, Target: NodeID(rng.Intn(d.NumNodes()))}
			u.Fragment = randomTestDoc(rng, 10, labels)
		default:
			if d.NumNodes() == 1 {
				continue
			}
			u = Update{Op: OpDeleteSubtree, Target: 1 + NodeID(rng.Intn(d.NumNodes()-1))}
		}
		ap, err := d.Apply(u)
		if err != nil {
			t.Fatalf("it=%d: %v", it, err)
		}
		if err := ap.New.Validate(); err != nil {
			t.Fatalf("it=%d: new doc invalid: %v", it, err)
		}
		if err := sameTree(ap.New, rebuildWithUpdate(t, d, u)); err != nil {
			t.Fatalf("it=%d op=%v target=%d: %v", it, u.Op, u.Target, err)
		}
		// The old document must be untouched.
		if err := d.Validate(); err != nil {
			t.Fatalf("it=%d: old doc mutated: %v", it, err)
		}

		// Descriptor check: every surviving old node's remapped labels must
		// name a node of the new document with identical level and type name.
		for i := 0; i < d.NumNodes(); i++ {
			n := d.Node(NodeID(i))
			if ap.DeadPos(n.Start) {
				if ap.Op != OpDeleteSubtree {
					t.Fatalf("it=%d: DeadPos true for non-delete", it)
				}
				continue
			}
			id := ap.New.FindByStart(ap.Remap(n.Start))
			if id == NoNode {
				t.Fatalf("it=%d: survivor %d remap lost", it, i)
			}
			nn := ap.New.Node(id)
			if nn.End != ap.Remap(n.End) || nn.Level != n.Level ||
				ap.New.TypeName(nn.Type) != d.TypeName(n.Type) {
				t.Fatalf("it=%d: survivor %d %+v -> %+v mismatch", it, i, n, nn)
			}
		}
	}
}
