package nasa

import (
	"testing"

	"viewjoin/internal/oracle"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

func TestGenerateValid(t *testing.T) {
	for _, n := range []int{1, 50, 500} {
		d := Generate(Config{Datasets: n})
		if err := d.Validate(); err != nil {
			t.Fatalf("datasets=%d: %v", n, err)
		}
	}
}

func TestDefault(t *testing.T) {
	d := Default()
	if d.NumNodes() == 0 {
		t.Fatal("empty document")
	}
	if d.TypeName(d.Node(d.Root()).Type) != "datasets" {
		t.Fatalf("root = %s, want datasets", d.TypeName(d.Node(d.Root()).Type))
	}
}

func TestSchemaElementsPresent(t *testing.T) {
	d := Generate(Config{Datasets: 400})
	for _, name := range []string{
		"dataset", "reference", "source", "journal", "title", "author",
		"initial", "lastname", "suffix", "date", "year", "month", "bibcode",
		"history", "creation", "revisions", "revision", "creator",
		"tableHead", "tableLinks", "tableLink", "fields", "field",
		"definition", "footnote", "para", "units", "descriptions",
		"description", "observatory",
	} {
		if d.TypeByName(name) == xmltree.NoType {
			t.Errorf("element %q missing", name)
		}
	}
}

// TestQueryPathsExist verifies that the exact nesting paths the benchmark
// queries traverse occur in the generated data.
func TestQueryPathsExist(t *testing.T) {
	d := Generate(Config{Datasets: 400})
	for _, q := range []string{
		"//field/definition/footnote/para",
		"//revision/creator/lastname",
		"//journal/author/suffix",
		"//journal/date/year",
		"//tableHead/tableLinks/tableLink/title",
		"//description/observatory",
		"//journal/bibcode",
	} {
		if len(oracle.Eval(d, tpq.MustParse(q))) == 0 {
			t.Errorf("path %s absent from generated data", q)
		}
	}
}

func TestSkewRatios(t *testing.T) {
	d := Generate(Config{Datasets: 1000})
	count := func(n string) int { return len(d.NodesOfType(d.TypeByName(n))) }
	paras := count("para")
	for rare, limit := range map[string]int{"observatory": 20, "suffix": 40, "bibcode": 25} {
		c := count(rare)
		if c == 0 {
			t.Errorf("%s absent", rare)
		}
		if c*limit > paras {
			t.Errorf("%s = %d too frequent relative to %d paras (want < paras/%d)", rare, c, paras, limit)
		}
	}
	// Footnotes are rare relative to fields (the N1 skipping opportunity).
	if f, fn := count("field"), count("footnote"); fn*3 > f {
		t.Errorf("footnotes = %d not rare relative to %d fields", fn, f)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(Config{Datasets: 77})
	b := Generate(Config{Datasets: 77})
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("not deterministic: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	c := Generate(Config{Datasets: 77, Seed: 42})
	if c.NumNodes() == 0 {
		t.Fatal("seeded generation empty")
	}
}
