// Package nasa generates deterministic documents shaped like the NASA/ADC
// astronomical dataset from the UW XML data repository [20], the real-world
// workload of the paper's experiments.
//
// The paper uses Nasa precisely for its highly skewed element distribution:
// a few element types (para, field, definition) dominate, while others
// (observatory, suffix, bibcode) are rare — which makes pointer-based
// skipping of non-solution nodes especially profitable (§VI-A). The
// generator reproduces that skew and the nesting paths exercised by the
// N1-N8, Np and Nt benchmark queries and the Table II / Table III view
// sets.
package nasa

import (
	"math/rand"

	"viewjoin/internal/xmltree"
)

// Config controls generation.
type Config struct {
	// Datasets is the number of top-level dataset elements; the paper's
	// 23MB document corresponds to roughly 2400 datasets. Default 500.
	Datasets int
	// Seed overrides the deterministic default seed when non-zero.
	Seed int64
}

// Default generates the standard document used by the experiments
// (≈ the paper's 23MB Nasa dataset in shape).
func Default() *xmltree.Document {
	return Generate(Config{})
}

// Generate builds a Nasa-like document.
func Generate(cfg Config) *xmltree.Document {
	if cfg.Datasets <= 0 {
		cfg.Datasets = 500
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5ca1ab1e
	}
	rng := rand.New(rand.NewSource(seed))
	b := xmltree.NewBuilder()
	b.Element("datasets", func() {
		for i := 0; i < cfg.Datasets; i++ {
			genDataset(b, rng)
		}
	})
	return b.MustDocument()
}

func genDataset(b *xmltree.Builder, rng *rand.Rand) {
	b.Element("dataset", func() {
		b.Leaf("identifier")
		b.Leaf("title")
		if rng.Intn(3) == 0 {
			b.Leaf("altname")
		}
		// references with journals: N4, N6, N7.
		for i := rng.Intn(3); i > 0; i-- {
			genReference(b, rng)
		}
		// history with revisions: N3, N5.
		if rng.Intn(2) == 0 {
			genHistory(b, rng)
		}
		// tableHead with links and fields: Np, Nt, Table II. Skew: only some
		// datasets have tables at all, so tableHead is rare relative to para.
		if rng.Intn(3) == 0 {
			genTableHead(b, rng)
		}
		// descriptions: N8.
		if rng.Intn(2) == 0 {
			genDescriptions(b, rng)
		}
	})
}

func genReference(b *xmltree.Builder, rng *rand.Rand) {
	b.Element("reference", func() {
		b.Element("source", func() {
			if rng.Intn(5) == 0 {
				b.Element("other", nil)
				return
			}
			b.Element("journal", func() {
				if rng.Intn(2) == 0 {
					b.Leaf("title")
				}
				b.Element("author", func() {
					b.Leaf("initial")
					b.Leaf("lastname")
					if rng.Intn(10) == 0 { // rare: N6 selectivity
						b.Leaf("suffix")
					}
				})
				b.Element("date", func() {
					b.Leaf("year")
					b.Leaf("month")
					if rng.Intn(2) == 0 {
						b.Leaf("day")
					}
				})
				if rng.Intn(6) == 0 { // rare: N7 selectivity
					b.Leaf("bibcode")
				}
			})
		})
	})
}

func genHistory(b *xmltree.Builder, rng *rand.Rand) {
	b.Element("history", func() {
		b.Element("creation", func() { b.Leaf("date") })
		b.Element("revisions", func() {
			for i := 1 + rng.Intn(3); i > 0; i-- {
				b.Element("revision", func() {
					b.Element("creator", func() {
						b.Leaf("lastname")
					})
					if rng.Intn(2) == 0 {
						b.Leaf("para")
					}
				})
			}
		})
	})
}

func genTableHead(b *xmltree.Builder, rng *rand.Rand) {
	b.Element("tableHead", func() {
		if rng.Intn(2) == 0 {
			b.Element("tableLinks", func() {
				for i := 1 + rng.Intn(2); i > 0; i-- {
					b.Element("tableLink", func() {
						if rng.Intn(2) == 0 {
							b.Leaf("title")
						}
					})
				}
			})
		}
		b.Element("fields", func() {
			// para-heavy skew: many fields per table, most with definitions
			// full of paras, but footnotes on only a sixth of them — the
			// distribution that makes pointer-based skipping profitable.
			for i := 2 + rng.Intn(6); i > 0; i-- {
				b.Element("field", func() {
					b.Leaf("name")
					if rng.Intn(4) != 0 {
						b.Element("definition", func() {
							if rng.Intn(6) == 0 {
								b.Element("footnote", func() {
									b.Leaf("para")
									if rng.Intn(2) == 0 {
										b.Leaf("para")
									}
								})
							}
							for j := 1 + rng.Intn(7); j > 0; j-- {
								b.Leaf("para")
							}
						})
					}
					if rng.Intn(3) == 0 {
						b.Leaf("units")
					}
				})
			}
		})
	})
}

func genDescriptions(b *xmltree.Builder, rng *rand.Rand) {
	b.Element("descriptions", func() {
		b.Element("description", func() {
			for i := 1 + rng.Intn(6); i > 0; i-- {
				b.Leaf("para")
			}
			if rng.Intn(8) == 0 { // rare: N8 selectivity
				b.Leaf("observatory")
			}
		})
		if rng.Intn(3) == 0 {
			b.Element("details", nil)
		}
	})
}
