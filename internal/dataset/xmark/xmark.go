// Package xmark generates deterministic XMark-like XML documents (Schmidt
// et al., the XML Benchmark Project [23]), the synthetic workload of the
// paper's experiments.
//
// The generator reproduces the parts of the XMark schema that the derived
// benchmark queries touch — the auction site with regions/items,
// people/persons, open and closed auctions — with XMark's characteristic
// fan-outs: items carry description text with a variable number of
// keywords (the multi-match redundancy that separates the tuple scheme
// from the element schemes, Table IV's v1), persons have at most one
// education (no redundancy, Table IV's v2), and open auctions have many
// bidders (Q2's redundancy).
//
// Scale(1.0) corresponds to the paper's standard ~100MB document in
// *shape*; absolute node counts are laptop-sized (see DESIGN.md's
// substitution table). Generation is deterministic for a given scale.
package xmark

import (
	"math/rand"

	"viewjoin/internal/xmltree"
)

// Scale generates an XMark-like document. scale=1.0 is the "100MB analog";
// the document grows linearly with scale.
func Scale(scale float64) *xmltree.Document {
	return Generate(Config{Scale: scale})
}

// Config controls generation.
type Config struct {
	// Scale is the linear size factor; 1.0 is the 100MB analog.
	Scale float64
	// Seed overrides the deterministic default seed when non-zero.
	Seed int64
}

// counts per unit scale, derived from XMark's documented ratios
// (sf=1: 21750 items, 25500 persons, 12000 open / 9750 closed auctions,
// 1000 categories), divided by 10 to stay laptop-sized.
const (
	itemsPerScale      = 2175
	personsPerScale    = 2550
	openPerScale       = 1200
	closedPerScale     = 975
	categoriesPerScale = 100
)

var regionNames = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

// Generate builds the document for the given configuration.
func Generate(cfg Config) *xmltree.Document {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b9 + int64(cfg.Scale*1000)
	}
	rng := rand.New(rand.NewSource(seed))
	b := xmltree.NewBuilder()

	nItems := scaled(itemsPerScale, cfg.Scale)
	nPersons := scaled(personsPerScale, cfg.Scale)
	nOpen := scaled(openPerScale, cfg.Scale)
	nClosed := scaled(closedPerScale, cfg.Scale)
	nCategories := scaled(categoriesPerScale, cfg.Scale)

	b.Element("site", func() {
		b.Element("regions", func() {
			for r, left := 0, nItems; r < len(regionNames); r++ {
				share := left / (len(regionNames) - r)
				left -= share
				b.Element(regionNames[r], func() {
					for i := 0; i < share; i++ {
						genItem(b, rng)
					}
				})
			}
		})
		b.Element("categories", func() {
			for i := 0; i < nCategories; i++ {
				b.Element("category", func() {
					b.Leaf("name")
					b.Element("description", func() { genText(b, rng) })
				})
			}
		})
		b.Element("catgraph", func() {
			for i := 0; i < nCategories; i++ {
				b.Leaf("edge")
			}
		})
		b.Element("people", func() {
			for i := 0; i < nPersons; i++ {
				genPerson(b, rng)
			}
		})
		b.Element("open_auctions", func() {
			for i := 0; i < nOpen; i++ {
				genOpenAuction(b, rng)
			}
		})
		b.Element("closed_auctions", func() {
			for i := 0; i < nClosed; i++ {
				genClosedAuction(b, rng)
			}
		})
	})
	return b.MustDocument()
}

func scaled(perScale int, scale float64) int {
	n := int(float64(perScale) * scale)
	if n < 1 {
		n = 1
	}
	return n
}

func genItem(b *xmltree.Builder, rng *rand.Rand) {
	b.Element("item", func() {
		b.Leaf("location")
		b.Leaf("quantity")
		b.Leaf("name")
		b.Element("payment", nil)
		b.Element("description", func() { genText(b, rng) })
		b.Leaf("shipping")
		for i := rng.Intn(3); i > 0; i-- {
			b.Leaf("incategory")
		}
		if rng.Intn(4) == 0 {
			b.Element("mailbox", func() {
				for i := 1 + rng.Intn(2); i > 0; i-- {
					b.Element("mail", func() {
						b.Leaf("from")
						b.Leaf("to")
						b.Leaf("date")
						genText(b, rng)
					})
				}
			})
		}
	})
}

// genText emits a text element with XMark's nested markup: a skewed number
// of keyword/bold/emph children (most texts have none or one keyword, some
// have several — the source of tuple-scheme redundancy for
// //item//text//keyword).
func genText(b *xmltree.Builder, rng *rand.Rand) {
	b.Element("text", func() {
		nk := 0
		switch r := rng.Intn(10); {
		case r < 3: // 30%: no keyword
		case r < 5:
			nk = 1
		case r < 7:
			nk = 2
		case r < 9:
			nk = 5
		default:
			nk = 10
		}
		for i := 0; i < nk; i++ {
			b.Leaf("keyword")
		}
		if rng.Intn(3) == 0 {
			b.Element("bold", func() {
				if rng.Intn(3) == 0 {
					b.Leaf("keyword")
				}
			})
		}
		if rng.Intn(4) == 0 {
			b.Leaf("emph")
		}
	})
}

func genPerson(b *xmltree.Builder, rng *rand.Rand) {
	b.Element("person", func() {
		b.Leaf("name")
		b.Leaf("emailaddress")
		if rng.Intn(2) == 0 {
			b.Leaf("phone")
		}
		if rng.Intn(2) == 0 {
			b.Element("address", func() {
				b.Leaf("street")
				b.Leaf("city")
				b.Leaf("country")
				b.Leaf("zipcode")
			})
		}
		if rng.Intn(3) == 0 {
			b.Leaf("homepage")
		}
		if rng.Intn(3) == 0 {
			b.Leaf("creditcard")
		}
		if rng.Intn(2) == 0 {
			b.Element("profile", func() {
				for i := rng.Intn(4); i > 0; i-- {
					b.Leaf("interest")
				}
				if rng.Intn(2) == 0 {
					b.Leaf("education") // at most one: no tuple redundancy (Table IV v2)
				}
				if rng.Intn(2) == 0 {
					b.Leaf("gender")
				}
				b.Leaf("business")
				if rng.Intn(2) == 0 {
					b.Leaf("age")
				}
			})
		}
		if rng.Intn(4) == 0 {
			b.Element("watches", func() {
				for i := 1 + rng.Intn(3); i > 0; i-- {
					b.Leaf("watch")
				}
			})
		}
	})
}

func genOpenAuction(b *xmltree.Builder, rng *rand.Rand) {
	b.Element("open_auction", func() {
		b.Leaf("initial")
		if rng.Intn(2) == 0 {
			b.Leaf("reserve")
		}
		for i := 1 + rng.Intn(5); i > 0; i-- { // many bidders: Q2 redundancy
			b.Element("bidder", func() {
				b.Leaf("date")
				b.Leaf("time")
				b.Leaf("personref")
				b.Leaf("increase")
			})
		}
		b.Leaf("current")
		if rng.Intn(3) == 0 {
			b.Leaf("privacy")
		}
		b.Leaf("itemref")
		b.Leaf("seller")
		b.Element("annotation", func() {
			b.Leaf("author")
			b.Element("description", func() { genText(b, rng) })
			b.Leaf("happiness")
		})
		b.Leaf("quantity")
		b.Leaf("type")
		b.Element("interval", func() {
			b.Leaf("start")
			b.Leaf("end")
		})
	})
}

func genClosedAuction(b *xmltree.Builder, rng *rand.Rand) {
	b.Element("closed_auction", func() {
		b.Leaf("seller")
		b.Leaf("buyer")
		b.Leaf("itemref")
		b.Leaf("price")
		b.Leaf("date")
		b.Leaf("quantity")
		b.Leaf("type")
		if rng.Intn(2) == 0 {
			b.Element("annotation", func() {
				b.Leaf("author")
				b.Element("description", func() { genText(b, rng) })
				b.Leaf("happiness")
			})
		}
	})
}
