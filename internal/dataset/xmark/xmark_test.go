package xmark

import (
	"testing"

	"viewjoin/internal/xmltree"
)

func TestGenerateValid(t *testing.T) {
	for _, scale := range []float64{0.01, 0.1, 0.5} {
		d := Scale(scale)
		if err := d.Validate(); err != nil {
			t.Fatalf("scale %v: %v", scale, err)
		}
	}
}

func TestDefaultScale(t *testing.T) {
	d := Generate(Config{})
	if d.NumNodes() < 50000 {
		t.Fatalf("default scale too small: %d nodes", d.NumNodes())
	}
}

func TestSchemaElementsPresent(t *testing.T) {
	d := Scale(0.05)
	for _, name := range []string{
		"site", "regions", "africa", "item", "location", "quantity", "name",
		"description", "text", "keyword", "people", "person", "profile",
		"education", "interest", "gender", "address", "city",
		"open_auctions", "open_auction", "bidder", "increase", "initial",
		"current", "reserve", "personref", "closed_auctions",
		"closed_auction", "price", "buyer", "itemref", "categories",
	} {
		if d.TypeByName(name) == xmltree.NoType {
			t.Errorf("element %q missing from generated document", name)
		}
	}
}

func TestScalingRatios(t *testing.T) {
	d := Scale(0.2)
	count := func(name string) int { return len(d.NodesOfType(d.TypeByName(name))) }
	items, persons := count("item"), count("person")
	open, closed := count("open_auction"), count("closed_auction")
	// XMark's documented ratios: persons ≈ 1.17×items, open ≈ 0.55×items.
	if ratio := float64(persons) / float64(items); ratio < 1.0 || ratio > 1.35 {
		t.Errorf("persons/items = %.2f, want ≈1.17", ratio)
	}
	if ratio := float64(open) / float64(items); ratio < 0.4 || ratio > 0.7 {
		t.Errorf("open/items = %.2f, want ≈0.55", ratio)
	}
	if ratio := float64(closed) / float64(open); ratio < 0.6 || ratio > 1.0 {
		t.Errorf("closed/open = %.2f, want ≈0.81", ratio)
	}
}

func TestKeywordFanout(t *testing.T) {
	d := Scale(0.1)
	texts := len(d.NodesOfType(d.TypeByName("text")))
	keywords := len(d.NodesOfType(d.TypeByName("keyword")))
	// Multi-keyword texts drive the tuple scheme's redundancy (Table IV v1).
	if avg := float64(keywords) / float64(texts); avg < 1.5 {
		t.Errorf("avg keywords per text = %.2f, want >= 1.5", avg)
	}
}

func TestEducationAtMostOnePerPerson(t *testing.T) {
	d := Scale(0.1)
	edus := d.NodesOfType(d.TypeByName("education"))
	seen := make(map[xmltree.NodeID]bool)
	for _, e := range edus {
		// The education's person is three levels up (person/profile/education).
		p := d.Node(e).Parent
		person := d.Node(p).Parent
		if seen[person] {
			t.Fatalf("person %d has two educations: Table IV v2 needs at most one", person)
		}
		seen[person] = true
	}
}

func TestSeedOverride(t *testing.T) {
	a := Generate(Config{Scale: 0.05, Seed: 1})
	b := Generate(Config{Scale: 0.05, Seed: 2})
	if a.NumNodes() == b.NumNodes() {
		t.Logf("different seeds gave equal node counts (possible but unlikely)")
	}
	c := Generate(Config{Scale: 0.05, Seed: 1})
	if a.NumNodes() != c.NumNodes() {
		t.Fatalf("same seed must reproduce the document")
	}
}
