package maintain

import (
	"bytes"
	"math/rand"
	"testing"

	"viewjoin/internal/store"
	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

var kinds = []store.Kind{store.Tuple, store.Element, store.Linked, store.LinkedPartial}

func storeBytes(t testing.TB, s *store.ViewStore) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func mustStore(t testing.TB, d *xmltree.Document, v *tpq.Pattern, kind store.Kind, pageSize int) *store.ViewStore {
	t.Helper()
	s, err := Rematerialize(d, v, kind, pageSize)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return s
}

// TestMaintainRandomized is the unit-level differential check: for random
// documents, views, schemes and single updates, the maintained store must
// serialize byte-identically to a from-scratch rematerialization over the
// updated document, while the predecessor store stays untouched. Both
// maintenance paths are exercised by alternating fragment vocabularies.
func TestMaintainRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pageSizes := []int{64, 4096} // small pages stress per-page COW boundaries
	iterations := 200
	if testing.Short() {
		iterations = 40
	}
	for it := 0; it < iterations; it++ {
		d := testutil.RandomDoc(rng, 50, nil)
		v := testutil.RandomPattern(rng, 3, nil)
		var fragLabels []string
		if rng.Intn(2) == 0 {
			fragLabels = testutil.ForeignLabels
		}
		u := testutil.RandomUpdate(rng, d, fragLabels)
		au, err := d.Apply(u)
		if err != nil {
			t.Fatalf("it=%d: apply: %v", it, err)
		}
		wantFast := true
		for i := range v.Nodes {
			if au.FragTypes[v.Nodes[i].Label] {
				wantFast = false
			}
		}
		ps := pageSizes[it%len(pageSizes)]
		for _, k := range kinds {
			old := mustStore(t, d, v, k, ps)
			oldBytes := storeBytes(t, old)
			next, rep, err := View(old, au)
			if err != nil {
				t.Fatalf("it=%d %v: maintain: %v", it, k, err)
			}
			if rep.FastPath != wantFast {
				t.Fatalf("it=%d %v: FastPath=%v, want %v (frag types %v)",
					it, k, rep.FastPath, wantFast, au.FragTypes)
			}
			if err := Verify(next, au.New); err != nil {
				t.Fatalf("it=%d %v op=%v: %v", it, k, u.Op, err)
			}
			want := mustStore(t, au.New, v, k, ps)
			if !bytes.Equal(storeBytes(t, next), storeBytes(t, want)) {
				t.Fatalf("it=%d %v op=%v: maintained bytes differ from oracle", it, k, u.Op)
			}
			if !bytes.Equal(storeBytes(t, old), oldBytes) {
				t.Fatalf("it=%d %v: maintenance mutated the predecessor store", it, k)
			}
			if rep.TotalPages > 0 && rep.SharedPages < 0 {
				t.Fatalf("it=%d %v: bad sharing stats %+v", it, k, rep)
			}
		}
	}
}

// TestMaintainChain drives a long update sequence through an overlay with
// compaction, verifying the head against the oracle at every epoch.
func TestMaintainChain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	doc := testutil.RandomDoc(rng, 40, nil)
	v := testutil.RandomPattern(rng, 3, nil)
	steps := 30
	if testing.Short() {
		steps = 10
	}
	for _, k := range kinds {
		d := doc
		ov := store.NewOverlay(mustStore(t, d, v, k, 64))
		for i := 0; i < steps; i++ {
			var fragLabels []string
			if i%3 == 0 {
				fragLabels = testutil.ForeignLabels
			}
			au, err := d.Apply(testutil.RandomUpdate(rng, d, fragLabels))
			if err != nil {
				t.Fatalf("%v step %d: %v", k, i, err)
			}
			next, rep, err := View(ov.Current(), au)
			if err != nil {
				t.Fatalf("%v step %d: %v", k, i, err)
			}
			ov.Install(next, store.Delta{
				Epoch: uint64(i + 1), Pivot: au.Pivot, Shift: au.Delta, Rebuilt: !rep.FastPath,
			})
			if ov.ShouldCompact() {
				ov.Compact()
			}
			d = au.New
			if err := Verify(ov.Current(), d); err != nil {
				t.Fatalf("%v step %d: %v", k, i, err)
			}
		}
	}
}

// TestChangedListsReporting pins the affected-record computation: an
// update inserting a view-type node must report the lists it lands in.
func TestChangedListsReporting(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Element("root", func() {
		b.Element("a", func() { b.Leaf("b") })
	})
	d := b.MustDocument()
	v := tpq.MustParse("//a//b")

	fb := xmltree.NewBuilder()
	fb.Element("b", nil)
	au, err := d.Apply(xmltree.Update{Op: xmltree.OpAppendChild, Target: 1, Fragment: fb.MustDocument()})
	if err != nil {
		t.Fatal(err)
	}
	old := mustStore(t, d, v, store.LinkedPartial, 64)
	next, rep, err := View(old, au)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FastPath {
		t.Fatal("view-type insert must take the rebuild path")
	}
	if len(rep.ChangedLists) != 1 || rep.ChangedLists[0] != 1 {
		t.Fatalf("ChangedLists = %v, want [1] (the b list)", rep.ChangedLists)
	}
	if next.Lists[1].Entries() != old.Lists[1].Entries()+1 {
		t.Fatalf("b list grew %d -> %d, want +1", old.Lists[1].Entries(), next.Lists[1].Entries())
	}
	if err := Verify(next, au.New); err != nil {
		t.Fatal(err)
	}
}
