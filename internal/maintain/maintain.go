// Package maintain repairs materialized tree-pattern views incrementally
// after a document update, instead of re-materializing them (ROADMAP item
// 1). Given the splice descriptor of a subtree insert/append/delete
// (xmltree.Applied), it derives the successor of a view's paged store:
//
//   - Fast path (label splice): when the update inserts or deletes no node
//     whose tag is in the view's label alphabet, the view's embeddings are
//     exactly the old embeddings with surviving nodes — every structural
//     relation between survivors (containment, levels, parenthood,
//     document order) is untouched by a subtree splice. The solution lists
//     are therefore the old lists with region labels remapped, list
//     positions unchanged, and every pointer value (following, descendant,
//     child; full or §III-C-reduced) bit-identical. store.Splice rewrites
//     only the pages holding shifted labels and shares everything else.
//
//   - Slow path (membership rebuild): when the alphabets intersect,
//     membership can change, so the solution lists are recomputed on the
//     updated document with the views layer's exact construction
//     (guaranteeing byte-equality with a from-scratch oracle) and the
//     fresh pages are re-aliased onto the predecessor wherever their bytes
//     agree, so consecutive epochs still share storage.
//
// Every path is verifiable against the oracle — Rematerialize — byte for
// byte; Verify is that check and backs the differential fuzzer, the update
// soak and the "updates" experiment.
package maintain

import (
	"fmt"

	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/xmltree"
)

// Report describes how one view store was maintained.
type Report struct {
	// FastPath reports the pure label-splice path: no membership change was
	// possible, no pointer was recomputed.
	FastPath bool
	// ChangedLists holds the view-node indices whose list membership
	// actually changed (slow path only; often empty — an alphabet overlap
	// does not imply a membership change).
	ChangedLists []int
	// SharedPages and TotalPages measure the copy-on-write win: how many of
	// the successor store's pages are the predecessor's pages, by identity.
	SharedPages int
	TotalPages  int
}

// View derives the successor of a view's store after the document update
// described by au. The old store is not modified — readers holding it keep
// a consistent pre-update snapshot; the returned store reflects au.New.
func View(old *store.ViewStore, au *xmltree.Applied) (*store.ViewStore, Report, error) {
	if alphabetDisjoint(old.View, au.FragTypes) {
		next := store.Splice(old, au.Pivot, au.Delta)
		shared, total := store.PageSharing(next, old)
		return next, Report{FastPath: true, SharedPages: shared, TotalPages: total}, nil
	}

	// Slow path: recompute membership on the updated document with the
	// exact construction the oracle uses.
	sol := views.SolutionLists(au.New, old.View)
	m2 := views.FromSolutionLists(au.New, old.View, sol)
	next, err := store.Build(m2, old.Kind, old.PageSize)
	if err != nil {
		return nil, Report{}, fmt.Errorf("maintain: rebuild: %w", err)
	}
	// Re-alias fresh pages onto the remapped predecessor: lists whose
	// membership did not change produce byte-identical pages to a pure
	// splice of the old store, so they end up shared despite the rebuild.
	spliced := store.Splice(old, au.Pivot, au.Delta)
	store.SharePages(next, spliced)
	shared, total := store.PageSharing(next, spliced)
	rep := Report{
		ChangedLists: changedLists(old, au, sol),
		SharedPages:  shared,
		TotalPages:   total,
	}
	return next, rep, nil
}

// alphabetDisjoint reports whether no inserted or deleted node's tag name
// occurs among the view's node labels — the fast-path condition.
func alphabetDisjoint(v *tpq.Pattern, fragTypes map[string]bool) bool {
	for i := range v.Nodes {
		if fragTypes[v.Nodes[i].Label] {
			return false
		}
	}
	return true
}

// changedLists diffs each view node's new solution list against the
// remapped old list — the "affected label records" of the update.
func changedLists(old *store.ViewStore, au *xmltree.Applied, sol [][]xmltree.NodeID) []int {
	var out []int
	for q, l := range old.Lists {
		if listChanged(l, au, sol[q]) {
			out = append(out, q)
		}
	}
	if old.Tuples != nil {
		// Tuple stores have no per-node lists; report the single file as
		// changed when any binding could have (conservative, stats only).
		out = append(out, 0)
	}
	return out
}

func listChanged(l *store.ListFile, au *xmltree.Applied, sol []xmltree.NodeID) bool {
	if l.Entries() != len(sol) {
		return true
	}
	for i, id := range sol {
		lb := l.LabelAt(i)
		if au.DeadPos(lb.Start) || au.Remap(lb.Start) != au.New.Node(id).Start {
			return true
		}
	}
	return false
}

// Rematerialize builds the view store from scratch over doc — the oracle
// every maintenance path must equal byte for byte.
func Rematerialize(doc *xmltree.Document, v *tpq.Pattern, kind store.Kind, pageSize int) (*store.ViewStore, error) {
	m, err := views.Materialize(doc, v)
	if err != nil {
		return nil, err
	}
	return store.Build(m, kind, pageSize)
}

// Verify checks a maintained store against the from-scratch oracle on doc:
// identical structure, headers and record bytes. It is the verification
// spine of the update test harness.
func Verify(got *store.ViewStore, doc *xmltree.Document) error {
	want, err := Rematerialize(doc, got.View, got.Kind, got.PageSize)
	if err != nil {
		return fmt.Errorf("maintain: oracle: %w", err)
	}
	if err := store.CheckEquivalent(got, want); err != nil {
		return fmt.Errorf("maintain: maintained store diverges from rematerialized oracle: %w", err)
	}
	return nil
}
