package store

import (
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/xmltree"
)

func TestCursorPositionAndClone(t *testing.T) {
	d, err := xmltree.ParseString(`<r><a><b/></a><a><b/><b/></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	s := MustBuild(m, Linked, 64)

	var c counters.Counters
	io := counters.NewIO(&c, 0)
	cur := s.Lists[1].Open(io)
	cur.Next()
	pos := cur.Position()
	want := cur.Item().Start

	cl := cur.Clone()
	cl.Next()
	if cur.Item().Start != want {
		t.Errorf("Clone advanced the original cursor")
	}
	probe := s.Lists[1].Open(io)
	probe.Seek(pos)
	if !probe.Valid() || probe.Item().Start != want {
		t.Errorf("Seek(Position()) did not return to the record")
	}
	// Seeking nil invalidates.
	probe.Seek(NilPointer)
	if probe.Valid() {
		t.Errorf("Seek(nil) must invalidate")
	}
}

func TestScopedAndPayload(t *testing.T) {
	d, err := xmltree.ParseString(`<r><a><b/></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	s := MustBuild(m, Linked, 0)
	if s.Lists[0].Scoped() {
		t.Errorf("view root list must be unscoped")
	}
	if !s.Lists[1].Scoped() {
		t.Errorf("child list must be scoped")
	}
	if s.PayloadBytes() <= 0 || s.PayloadBytes() > s.SizeBytes() {
		t.Errorf("payload %d vs size %d", s.PayloadBytes(), s.SizeBytes())
	}
}
