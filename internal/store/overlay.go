package store

import (
	"encoding/binary"
	"fmt"
)

// This file implements the copy-on-write delta overlay over the v2
// page-padded segments (ROADMAP item 1). A document update never mutates a
// live store: the writer derives a successor ViewStore whose segments share
// every unmodified page with the predecessor and hold private rebuilt
// copies of the modified ones, then atomically installs it. Readers opened
// against the old store keep the old pages — snapshot isolation falls out
// of immutability.
//
// Two derivation paths exist:
//
//   - Splice: the pure label-shift case. When an update inserts or deletes
//     no node of any view-label type, the view's solution lists are the old
//     lists with region labels remapped (positions >= pivot shifted by a
//     constant) and every pointer value unchanged. Splice rewrites only the
//     pages containing shifted labels and shares pointer segments
//     wholesale.
//   - SharePages: the rebuild case. The maintenance layer builds a fresh
//     store for the lists whose membership changed, then SharePages
//     re-aliases every page whose bytes match the predecessor, so
//     consecutive epochs share storage even across rebuilds.
//
// The Overlay type tracks the chain: the last compacted clean base, the
// current COW head, and the ordered delta list. Compaction flattens the
// head's page tables back into contiguous buffers — byte-identical to a
// from-scratch build, since page bytes are maintained exactly.

// Delta records one document update applied to an overlay, in order.
type Delta struct {
	Epoch        uint64 // document epoch this delta produced
	Pivot, Shift int32  // label remap: positions >= Pivot moved by Shift
	Rebuilt      bool   // false: pure splice; true: membership rebuild
}

// Overlay chains COW stores over a compacted base container. It is
// writer-owned: the single document writer mutates it under the document
// write lock, while readers hold the *ViewStore snapshots it produced
// (which are immutable and never revisit the Overlay).
type Overlay struct {
	base   *ViewStore
	cur    *ViewStore
	deltas []Delta
}

// Compaction policy: flatten once the delta chain is this long, or once it
// is at least compactMinDeltas deep and this fraction of the head's pages
// are private (no longer shared with the base container). The depth gate
// keeps a single early-document update — which shifts most labels and
// privatizes most pages in one step — from paying splice plus an immediate
// flatten; with sharing already gone, deferring the flatten costs nothing.
const (
	compactMaxDeltas    = 16
	compactMinDeltas    = 4
	compactPrivateRatio = 0.75
)

// NewOverlay starts an overlay chain at a clean store.
func NewOverlay(s *ViewStore) *Overlay {
	return &Overlay{base: s, cur: s}
}

// Current returns the overlay head — the store readers should snapshot.
func (o *Overlay) Current() *ViewStore { return o.cur }

// Base returns the last compacted clean container.
func (o *Overlay) Base() *ViewStore { return o.base }

// Deltas returns the ordered delta list since the base, shared not copied.
func (o *Overlay) Deltas() []Delta { return o.deltas }

// Install makes next the overlay head and appends its delta record.
func (o *Overlay) Install(next *ViewStore, d Delta) {
	o.cur = next
	o.deltas = append(o.deltas, d)
}

// PrivatePages returns how many of the head's pages are private to the
// delta chain (not aliases of base pages), and the head's total page
// count. Structural divergence (a rebuilt list with different segment
// shape) counts as fully private.
func (o *Overlay) PrivatePages() (private, total int) {
	shared, total := PageSharing(o.cur, o.base)
	return total - shared, total
}

// PageSharing reports how many of cur's pages are the same memory as the
// positionally corresponding page of base, and cur's total page count.
func PageSharing(cur, base *ViewStore) (shared, total int) {
	cs, bs := allSegs(cur), allSegs(base)
	for i, seg := range cs {
		n := seg.pages()
		total += n
		if i >= len(bs) {
			continue
		}
		b := bs[i]
		for p := 0; p < n; p++ {
			if p < b.pages() && samePage(seg, b, p) {
				shared++
			}
		}
	}
	return shared, total
}

// ShouldCompact reports whether the compaction policy has tripped.
func (o *Overlay) ShouldCompact() bool {
	if len(o.deltas) >= compactMaxDeltas {
		return true
	}
	if len(o.deltas) < compactMinDeltas {
		return false
	}
	private, total := o.PrivatePages()
	return total > 0 && float64(private) >= compactPrivateRatio*float64(total)
}

// Compact flattens the head into a clean contiguous container and makes it
// the new base, resetting the delta chain. The result is byte-identical to
// building the head's content from scratch.
func (o *Overlay) Compact() *ViewStore {
	c := Flatten(o.cur)
	o.base, o.cur, o.deltas = c, c, nil
	return c
}

// samePage reports whether page p of the two segments is the same memory.
func samePage(a, b *segment, p int) bool {
	pa, pb := a.pageBytes(p), b.pageBytes(p)
	return len(pa) > 0 && len(pb) == len(pa) && &pa[0] == &pb[0]
}

// Splice derives the successor of s under a pure label shift: every start,
// end and level triple with position >= pivot has its start/end moved by
// delta, levels and all pointer values unchanged. Pages containing no
// shifted label alias s's pages; pointer segments are shared wholesale
// (same buffers, same buffer-pool tokens). This is the maintenance fast
// path — valid exactly when the update inserts or deletes no node of any
// view-label type, so membership, list order and every pointer distance
// are provably preserved.
func Splice(s *ViewStore, pivot, delta int32) *ViewStore {
	out := &ViewStore{Kind: s.Kind, View: s.View, PageSize: s.PageSize}
	if s.Tuples != nil {
		tf := *s.Tuples
		tf.seg = spliceLabels(&tf.seg, tf.entries, tf.arity, pivot, delta)
		out.Tuples = &tf
		return out
	}
	out.Lists = make([]*ListFile, len(s.Lists))
	for i, l := range s.Lists {
		nl := *l
		nl.labels = spliceLabels(&nl.labels, nl.entries, 1, pivot, delta)
		out.Lists[i] = &nl
	}
	return out
}

// spliceLabels applies the label remap to a segment of records holding
// arity consecutive 12-byte labels each, sharing unmodified pages.
func spliceLabels(s *segment, entries, arity int, pivot, delta int32) segment {
	if !s.present() || entries == 0 {
		return *s
	}
	out := *s
	out.data = nil
	out.pageTab = make([][]byte, s.pages())
	out.token = tokenSeq.Add(1)
	for p := range out.pageTab {
		lo := p * s.perPage
		hi := lo + s.perPage
		if hi > entries {
			hi = entries
		}
		dirty := false
		for i := lo; i < hi && !dirty; i++ {
			rec := s.rec(int32(i))
			for j := 0; j < arity; j++ {
				// A label moves iff its end position reaches the pivot: end >=
				// start, so start >= pivot implies end >= pivot, and ancestors
				// of the splice site have start < pivot <= end.
				if int32(binary.LittleEndian.Uint32(rec[j*labelBytes+4:])) >= pivot {
					dirty = true
					break
				}
			}
		}
		if !dirty {
			out.pageTab[p] = s.pageBytes(p)
			continue
		}
		page := make([]byte, s.pageSize)
		copy(page, s.pageBytes(p))
		for i := lo; i < hi; i++ {
			rec := page[(i-lo)*s.recSize:]
			for j := 0; j < arity; j++ {
				start := int32(binary.LittleEndian.Uint32(rec[j*labelBytes:]))
				end := int32(binary.LittleEndian.Uint32(rec[j*labelBytes+4:]))
				if start >= pivot {
					binary.LittleEndian.PutUint32(rec[j*labelBytes:], uint32(start+delta))
				}
				if end >= pivot {
					binary.LittleEndian.PutUint32(rec[j*labelBytes+4:], uint32(end+delta))
				}
			}
		}
		out.pageTab[p] = page
	}
	return out
}

// SharePages re-aliases every page of fresh whose bytes equal the
// corresponding page of base, turning a freshly built store into a COW
// successor that shares unchanged storage with its predecessor. Segments
// are matched positionally and only when structurally compatible. It
// returns the number of pages shared. fresh must not be mutated afterwards
// (stores are immutable once published).
func SharePages(fresh, base *ViewStore) int {
	fs, bs := allSegs(fresh), allSegs(base)
	shared := 0
	for i, seg := range fs {
		if i >= len(bs) {
			break
		}
		b := bs[i]
		if seg.recSize != b.recSize || seg.pageSize != b.pageSize {
			continue
		}
		n := seg.pages()
		if bn := b.pages(); n > bn {
			n = bn
		}
		var tab [][]byte
		for p := 0; p < n; p++ {
			if string(seg.pageBytes(p)) != string(b.pageBytes(p)) {
				continue
			}
			if tab == nil {
				tab = make([][]byte, seg.pages())
				for q := range tab {
					tab[q] = seg.pageBytes(q)
				}
			}
			tab[p] = b.pageBytes(p)
			shared++
		}
		if tab != nil {
			seg.data = nil
			seg.pageTab = tab
		}
	}
	return shared
}

// Flatten returns a store whose segments are all in contiguous flat form,
// byte-identical to s record for record. Already-flat segments are shared.
func Flatten(s *ViewStore) *ViewStore {
	out := &ViewStore{Kind: s.Kind, View: s.View, PageSize: s.PageSize}
	if s.Tuples != nil {
		tf := *s.Tuples
		tf.seg = tf.seg.flatten()
		out.Tuples = &tf
		return out
	}
	out.Lists = make([]*ListFile, len(s.Lists))
	for i, l := range s.Lists {
		nl := *l
		nl.labels = nl.labels.flatten()
		for c := range nl.ptrs {
			nl.ptrs[c] = nl.ptrs[c].flatten()
		}
		out.Lists[i] = &nl
	}
	return out
}

// allSegs returns every present segment of the store in persistence order.
func allSegs(s *ViewStore) []*segment {
	var out []*segment
	for _, src := range s.Sources() {
		out = append(out, src.segs()...)
	}
	return out
}

// CheckEquivalent verifies that two stores hold byte-identical content —
// the maintenance layer's self-check that an incrementally maintained
// store matches a from-scratch rebuild. It compares structure and every
// record (not raw buffers, so flat and COW forms compare equal).
func CheckEquivalent(got, want *ViewStore) error {
	if got.Kind != want.Kind || got.PageSize != want.PageSize {
		return fmt.Errorf("store: kind/page mismatch: %v/%d vs %v/%d",
			got.Kind, got.PageSize, want.Kind, want.PageSize)
	}
	if len(got.Lists) != len(want.Lists) {
		return fmt.Errorf("store: %d lists vs %d", len(got.Lists), len(want.Lists))
	}
	for i, l := range got.Lists {
		w := want.Lists[i]
		if l.entries != w.entries || l.pointers != w.pointers || l.segMask() != w.segMask() ||
			l.scoped != w.scoped || l.childCount != w.childCount {
			return fmt.Errorf("store: list %d header differs: {entries %d pointers %d mask %#x} vs {%d %d %#x}",
				i, l.entries, l.pointers, l.segMask(), w.entries, w.pointers, w.segMask())
		}
	}
	if (got.Tuples == nil) != (want.Tuples == nil) {
		return fmt.Errorf("store: tuple presence differs")
	}
	if got.Tuples != nil && (got.Tuples.entries != want.Tuples.entries || got.Tuples.arity != want.Tuples.arity) {
		return fmt.Errorf("store: tuple header differs: %d/%d vs %d/%d",
			got.Tuples.entries, got.Tuples.arity, want.Tuples.entries, want.Tuples.arity)
	}
	gs, ws := allSegs(got), allSegs(want)
	if len(gs) != len(ws) {
		return fmt.Errorf("store: %d segments vs %d", len(gs), len(ws))
	}
	for i := range gs {
		g, w := gs[i], ws[i]
		if g.recSize != w.recSize || g.pages() != w.pages() {
			return fmt.Errorf("store: segment %d shape %d/%d vs %d/%d",
				i, g.recSize, g.pages(), w.recSize, w.pages())
		}
		for p := 0; p < g.pages(); p++ {
			if string(g.pageBytes(p)) != string(w.pageBytes(p)) {
				return fmt.Errorf("store: segment %d page %d differs", i, p)
			}
		}
	}
	return nil
}
