package store

import (
	"bytes"
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/xmltree"
)

// wideDoc builds a document whose //a//b view spans several pages per
// segment at small page sizes: nAs 'a' elements with two 'b' children each.
func wideDoc(t testing.TB, nAs int) *xmltree.Document {
	t.Helper()
	b := xmltree.NewBuilder()
	b.Element("r", func() {
		for i := 0; i < nAs; i++ {
			b.Element("a", func() {
				b.Leaf("b")
				b.Leaf("b")
			})
		}
	})
	return b.MustDocument()
}

// TestCursorSeekPageBoundaries seeks to the structurally interesting
// record offsets of a multi-page flat list — first record of the file,
// first record of the second page, last record of a page, last record of
// the list, one past the end — for every element-family kind.
func TestCursorSeekPageBoundaries(t *testing.T) {
	d := wideDoc(t, 25) // 50 b-entries
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	const pageSize = 64 // labels: 5 records/page; pointers: 16 records/page

	for _, kind := range []Kind{Element, Linked, LinkedPartial} {
		s := MustBuild(m, kind, pageSize)
		l := s.Lists[1]
		if l.labels.pages() < 3 {
			t.Fatalf("%v: fixture too small: %d label pages", kind, l.labels.pages())
		}
		perPage := l.labels.perPage
		var c counters.Counters
		io := counters.NewIO(&c, 0)
		cur := l.Open(io)
		for _, tc := range []struct {
			name string
			at   int
		}{
			{"first record", 0},
			{"last record of first page", perPage - 1},
			{"first record of second page", perPage},
			{"last record of list", l.Entries() - 1},
		} {
			cur.Seek(Pointer(tc.at))
			if !cur.Valid() || cur.Ordinal() != tc.at {
				t.Fatalf("%v: seek %s (%d): valid=%v ordinal=%d", kind, tc.name, tc.at, cur.Valid(), cur.Ordinal())
			}
			want := m.Lists[1][tc.at]
			if it := cur.Item(); it.Start != want.Start || it.End != want.End || it.Level != want.Level {
				t.Errorf("%v: seek %s: wrong record", kind, tc.name)
			}
			if got := l.PageOf(cur.Position()); got != int32(tc.at/perPage) {
				t.Errorf("%v: PageOf(%d) = %d, want %d", kind, tc.at, got, tc.at/perPage)
			}
		}
		// One past the end and nil both invalidate; a Next on an invalid
		// cursor stays invalid.
		cur.Seek(Pointer(l.Entries()))
		if cur.Valid() {
			t.Errorf("%v: seek past end must invalidate", kind)
		}
		cur.Next()
		if cur.Valid() {
			t.Errorf("%v: Next on invalid cursor must stay invalid", kind)
		}
		cur.Seek(NilPointer)
		if cur.Valid() {
			t.Errorf("%v: seek nil must invalidate", kind)
		}
	}
}

// TestCursorResetAndCloneAllKinds exercises the prepared-plan reuse path:
// a cursor drained on one list is Reset onto another and must replay it
// exactly; clones at page boundaries are independent.
func TestCursorResetAndCloneAllKinds(t *testing.T) {
	d := wideDoc(t, 25)
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	empty := views.MustMaterialize(d, tpq.MustParse("//b//a"))

	for _, kind := range []Kind{Element, Linked, LinkedPartial} {
		s := MustBuild(m, kind, 64)
		es := MustBuild(empty, kind, 64)
		var c counters.Counters
		io := counters.NewIO(&c, 0)

		cur := s.Lists[0].Open(io)
		for cur.Valid() {
			cur.Next()
		}
		// Reset onto a different list replays it exactly like a fresh open.
		cur.Reset(s.Lists[1], io, nil, 1)
		fresh := s.Lists[1].Open(io)
		n := 0
		for fresh.Valid() {
			if !cur.Valid() || *cur.Item() != *fresh.Item() || cur.Ordinal() != fresh.Ordinal() {
				t.Fatalf("%v: Reset cursor diverged at record %d", kind, n)
			}
			// Clone at the page boundary records: advancing the clone must not
			// move the original.
			if n == s.Lists[1].labels.perPage {
				cl := cur.Clone()
				cl.Next()
				if cl.Ordinal() == cur.Ordinal() {
					t.Fatalf("%v: clone did not advance independently", kind)
				}
				if !cur.Valid() || cur.Ordinal() != n {
					t.Fatalf("%v: advancing clone moved original", kind)
				}
			}
			cur.Next()
			fresh.Next()
			n++
		}
		if cur.Valid() {
			t.Fatalf("%v: Reset cursor has extra records", kind)
		}
		// Reset onto an empty list is immediately invalid, and Reset back
		// onto a populated one recovers.
		cur.Reset(es.Lists[0], io, nil, 0)
		if cur.Valid() {
			t.Errorf("%v: Reset onto empty list must be invalid", kind)
		}
		cur.Reset(s.Lists[0], io, nil, 0)
		if !cur.Valid() || cur.Ordinal() != 0 {
			t.Errorf("%v: Reset after empty list did not recover", kind)
		}
	}

	// Tuple scheme: SeekIndex at page boundaries.
	s := MustBuild(m, Tuple, 64) // 24-byte records: 2 per page
	var c counters.Counters
	cur := s.Tuples.Open(counters.NewIO(&c, 0))
	perPage := s.Tuples.seg.perPage
	for _, at := range []int{0, perPage - 1, perPage, s.Tuples.Entries() - 1} {
		cur.SeekIndex(at)
		if !cur.Valid() || cur.Ordinal() != at {
			t.Fatalf("tuple SeekIndex(%d): valid=%v ordinal=%d", at, cur.Valid(), cur.Ordinal())
		}
	}
	cur.SeekIndex(s.Tuples.Entries())
	if cur.Valid() {
		t.Errorf("tuple SeekIndex past end must invalidate")
	}
}

// TestScanTouchesEveryPageOnce pins the real-page-boundary property of the
// flat layout: a sequential scan with pool-less accounting reads exactly
// the file's pages — each labels page and each present pointer-segment
// page once. This is the §V scan cost: an LE file costs more pages than
// the E file of the same list because its pointer segments are real pages.
func TestScanTouchesEveryPageOnce(t *testing.T) {
	d := wideDoc(t, 25)
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	var ePages, lePages int64
	for _, kind := range []Kind{Element, Linked, LinkedPartial} {
		s := MustBuild(m, kind, 64)
		for q, l := range s.Lists {
			var c counters.Counters
			io := counters.NewIO(&c, -1)
			for cur := l.Open(io); cur.Valid(); cur.Next() {
			}
			if c.PagesRead != int64(l.NumPages()) {
				t.Errorf("%v list %d: scan read %d pages, file has %d", kind, q, c.PagesRead, l.NumPages())
			}
			switch kind {
			case Element:
				ePages += c.PagesRead
			case Linked:
				lePages += c.PagesRead
			}
		}
	}
	if ePages >= lePages {
		t.Errorf("scan cost order violated: E=%d pages, LE=%d pages", ePages, lePages)
	}
	// Tuple file: same property over the single segment.
	s := MustBuild(m, Tuple, 64)
	var c counters.Counters
	io := counters.NewIO(&c, -1)
	for cur := s.Tuples.Open(io); cur.Valid(); cur.Next() {
	}
	if c.PagesRead != int64(s.Tuples.NumPages()) {
		t.Errorf("tuple scan read %d pages, file has %d", c.PagesRead, s.Tuples.NumPages())
	}
}

// TestSourcesUniformAccess drives all four kinds through the Source and
// Cursor interfaces only.
func TestSourcesUniformAccess(t *testing.T) {
	d := wideDoc(t, 5)
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	for _, kind := range []Kind{Tuple, Element, Linked, LinkedPartial} {
		s := MustBuild(m, kind, 128)
		var c counters.Counters
		io := counters.NewIO(&c, 0)
		total := 0
		for _, src := range s.Sources() {
			if src.Kind() != kind {
				t.Errorf("%v: source kind %v", kind, src.Kind())
			}
			if src.SizeBytes() != int64(src.NumPages())*int64(s.PageSize) {
				t.Errorf("%v: size %d != %d pages * %d", kind, src.SizeBytes(), src.NumPages(), s.PageSize)
			}
			if src.PayloadBytes() > src.SizeBytes() {
				t.Errorf("%v: payload exceeds size", kind)
			}
			n, last := 0, -1
			for cur := src.OpenCursor(io, nil, -1); cur.Valid(); cur.Next() {
				if cur.Ordinal() != last+1 {
					t.Fatalf("%v: ordinal %d after %d", kind, cur.Ordinal(), last)
				}
				last = cur.Ordinal()
				n++
			}
			if n != src.Entries() {
				t.Errorf("%v: cursor saw %d records, source has %d", kind, n, src.Entries())
			}
			total += n
		}
		if total != s.TotalEntries() {
			t.Errorf("%v: sources sum to %d entries, store says %d", kind, total, s.TotalEntries())
		}
	}
}

// TestLoadViewStoreAllocs pins the zero-copy load: deserializing a
// multi-hundred-page store must allocate O(lists), not O(pages) or
// O(records). The old decode-and-rebuild codec allocated at least one
// buffer per page, so requiring pages >= 5*allocs locks in the promised
// >=5x alloc reduction with a wide margin.
func TestLoadViewStoreAllocs(t *testing.T) {
	d := wideDoc(t, 600) // 600 a-entries, 1200 b-entries
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	s := MustBuild(m, Linked, 256)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	pages := s.NumPages()
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ReadViewStoreBytes(data); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("load of %d-page store: %.0f allocs", pages, allocs)
	if int(allocs)*5 > pages {
		t.Errorf("load allocated %.0f times for a %d-page store; want <= pages/5 (zero-copy)", allocs, pages)
	}
	if int(allocs) > 64 {
		t.Errorf("load allocated %.0f times; want O(lists), <= 64", allocs)
	}
}
