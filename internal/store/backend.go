package store

import (
	"errors"
	"fmt"
	"os"
)

// Backend owns the byte image a loaded ViewStore's segments are sliced
// from, splitting storage *residency* from storage *access*: the same
// zero-copy loader (ReadViewStoreBytes) runs over either backend, so how
// the bytes are held — heap-resident or memory-mapped — is invisible to
// evaluation and decided by whoever admits the view into memory.
//
// Two implementations exist:
//
//   - ResidentBackend: the whole container file read into the heap
//     (today's LoadViewBytes path, made releasable).
//   - MmapBackend: the container file mapped read-only; the page-padded
//     segments are sliced straight out of the mapping, so cold views cost
//     address space and page-cache pages, not heap.
//
// A Backend must stay open for as long as any store sliced from its bytes
// may be read; Close unwinds the backing resources deterministically
// (munmap for mappings, dropping the buffer for resident images). Reading
// a store after its backend closed is undefined for mappings (the pages
// are gone), so owners close only once no reader can remain.
type Backend interface {
	// Bytes returns the backing image. The slice is valid until Close.
	Bytes() []byte
	// Resident reports whether the image occupies heap memory (true) or a
	// file mapping (false) — the distinction residency accounting charges.
	Resident() bool
	// Close releases the backing resources. It is idempotent.
	Close() error
}

// ErrMmapUnsupported reports that this platform has no mmap support
// compiled in; callers fall back to a resident load.
var ErrMmapUnsupported = errors.New("store: mmap not supported on this platform")

// ResidentBackend holds a container image fully in the heap. Its Close
// drops the reference so the allocator can reclaim the buffer once no
// store slices remain reachable.
type ResidentBackend struct {
	data []byte
}

// NewResidentBackend wraps an in-memory container image (e.g. from
// os.ReadFile) as a Backend. The caller must not mutate data afterwards.
func NewResidentBackend(data []byte) *ResidentBackend {
	return &ResidentBackend{data: data}
}

// OpenResident reads the container file at path fully into the heap.
func OpenResident(path string) (*ResidentBackend, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: open resident: %w", err)
	}
	return &ResidentBackend{data: data}, nil
}

// Bytes returns the heap image.
func (b *ResidentBackend) Bytes() []byte { return b.data }

// Resident reports true: the image is heap memory.
func (b *ResidentBackend) Resident() bool { return true }

// Close drops the buffer reference. Stores sliced from it remain readable
// while they hold their own sub-slices (the garbage collector keeps the
// underlying array alive), so a resident Close is accounting, not
// invalidation.
func (b *ResidentBackend) Close() error {
	b.data = nil
	return nil
}

// MmapBackend is a read-only memory mapping of a container file. The
// mapping is established by OpenMmap and survives until Close; the file
// descriptor is not retained. A truncated or corrupt file surfaces as a
// load error from the usual header validation — the loader bounds every
// read by the mapped length, so a short mapping can never fault.
type MmapBackend struct {
	data   []byte
	mapped bool // false once closed, or for empty files (nothing mapped)
}

// OpenMmap maps the container file at path read-only. On platforms
// without mmap support it returns ErrMmapUnsupported (callers fall back
// to OpenResident). An empty file yields an open backend with no bytes —
// the loader then reports truncation, same as the resident path.
func OpenMmap(path string) (*MmapBackend, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open mmap: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: open mmap: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		return &MmapBackend{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("store: open mmap: %s: file too large to map", path)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return &MmapBackend{data: data, mapped: true}, nil
}

// Bytes returns the mapped image (nil after Close, or for empty files).
func (b *MmapBackend) Bytes() []byte { return b.data }

// Resident reports false: the image lives in the page cache, not the heap.
func (b *MmapBackend) Resident() bool { return false }

// Close unmaps the file. Unlike the resident backend this *does*
// invalidate outstanding store slices — the pages are returned to the
// kernel — so the owner must ensure no reader remains.
func (b *MmapBackend) Close() error {
	if !b.mapped {
		b.data = nil
		return nil
	}
	data := b.data
	b.data = nil
	b.mapped = false
	if err := munmapFile(data); err != nil {
		return fmt.Errorf("store: munmap: %w", err)
	}
	return nil
}
