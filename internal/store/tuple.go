package store

import (
	"encoding/binary"
	"fmt"

	"viewjoin/internal/counters"
	"viewjoin/internal/obs"
	"viewjoin/internal/views"
)

// TupleFile is the on-disk form of the tuple (T) scheme: every match of the
// view as a fixed-size record of n region labels, sorted by the composite
// key (e1.start, ..., en.start) — InterJoin's storage (§I). It is a single
// flat paged segment of arity×12-byte records.
type TupleFile struct {
	arity   int // view nodes per tuple
	entries int
	seg     segment
}

// Arity returns the number of nodes per tuple.
func (f *TupleFile) Arity() int { return f.arity }

// Entries returns the number of tuples.
func (f *TupleFile) Entries() int { return f.entries }

// Kind returns Tuple.
func (f *TupleFile) Kind() Kind { return Tuple }

// NumPages returns the file's page count.
func (f *TupleFile) NumPages() int { return f.seg.pages() }

// SizeBytes returns the page-granular on-disk size.
func (f *TupleFile) SizeBytes() int64 { return int64(f.seg.pages()) * int64(f.seg.pageSize) }

// PayloadBytes returns the record bytes excluding page padding.
func (f *TupleFile) PayloadBytes() int64 { return int64(f.entries) * int64(f.arity) * labelBytes }

// segs returns the file's single segment.
func (f *TupleFile) segs() []*segment {
	if !f.seg.present() {
		return nil
	}
	return []*segment{&f.seg}
}

func buildTupleFile(m *views.Materialized, pageSize int) (*TupleFile, error) {
	arity := m.View.Size()
	recSize := arity * labelBytes
	if recSize > pageSize {
		return nil, fmt.Errorf("store: tuple record size %d exceeds page size %d", recSize, pageSize)
	}
	matches := m.Matches()
	f := &TupleFile{
		arity:   arity,
		entries: len(matches),
		seg:     newSegment(len(matches), recSize, pageSize),
	}
	for i, mt := range matches {
		rec := f.seg.rec(int32(i))
		for j, id := range mt {
			n := m.Doc.Node(id)
			binary.LittleEndian.PutUint32(rec[j*labelBytes:], uint32(n.Start))
			binary.LittleEndian.PutUint32(rec[j*labelBytes+4:], uint32(n.End))
			binary.LittleEndian.PutUint32(rec[j*labelBytes+8:], uint32(n.Level))
		}
	}
	return f, nil
}

// TupleItem is one decoded tuple: Labels[i] is the region label bound to
// view node i.
type TupleItem struct {
	Labels []Label
}

// Label is a region label triple.
type Label struct {
	Start, End, Level int32
}

// Contains reports whether m is strictly inside l.
func (l Label) Contains(m Label) bool { return l.Start < m.Start && m.End < l.End }

// TupleCursor is a forward cursor over a TupleFile.
type TupleCursor struct {
	f         *TupleFile
	io        *counters.IO
	tr        obs.Tracer
	node      int32
	idx       int
	item      TupleItem
	valid     bool
	lastTouch int32
}

// Open returns a cursor positioned at the first tuple.
func (f *TupleFile) Open(io *counters.IO) *TupleCursor {
	return f.OpenTraced(io, nil, -1)
}

// OpenTraced is Open with an optional tracer: every tuple decode emits one
// EvScan per label, attributed to the given query node (tuples bind
// several query nodes; callers pass a representative one).
func (f *TupleFile) OpenTraced(io *counters.IO, tr obs.Tracer, node int) *TupleCursor {
	c := &TupleCursor{f: f, io: io, tr: tr, node: int32(node), lastTouch: -1}
	c.item.Labels = make([]Label, f.arity)
	if f.entries == 0 {
		return c
	}
	c.load(0)
	return c
}

// OpenCursor implements Source.
func (f *TupleFile) OpenCursor(io *counters.IO, tr obs.Tracer, node int) Cursor {
	return f.OpenTraced(io, tr, node)
}

// Valid reports whether the cursor is positioned on a tuple.
func (c *TupleCursor) Valid() bool { return c.valid }

// Item returns the current tuple. It must only be called when Valid.
func (c *TupleCursor) Item() *TupleItem { return &c.item }

// Index returns the current tuple's ordinal position.
func (c *TupleCursor) Index() int { return c.idx }

// Ordinal returns the current tuple's ordinal position (Cursor interface).
func (c *TupleCursor) Ordinal() int { return c.idx }

// Next advances to the next tuple.
func (c *TupleCursor) Next() {
	if !c.valid {
		return
	}
	if c.tr != nil {
		c.tr.Event(obs.EvCursorAdvance, int(c.node), 1)
	}
	if c.idx+1 >= c.f.entries {
		c.valid = false
		return
	}
	c.load(c.idx + 1)
}

// SeekIndex positions the cursor at tuple i (used by InterJoin's
// backtracking merge). Seeking past the end invalidates the cursor.
func (c *TupleCursor) SeekIndex(i int) {
	if i < 0 || i >= c.f.entries {
		c.valid = false
		return
	}
	c.load(i)
}

func (c *TupleCursor) load(i int) {
	if page := c.f.seg.page(int32(i)); c.lastTouch != page {
		c.io.Touch(c.f.seg.token, page)
		c.lastTouch = page
	}
	c.io.C.ElementsScanned += int64(c.f.arity)
	if c.tr != nil {
		c.tr.Event(obs.EvScan, int(c.node), int64(c.f.arity))
	}
	rec := c.f.seg.rec(int32(i))
	for j := 0; j < c.f.arity; j++ {
		c.item.Labels[j] = Label{
			Start: int32(binary.LittleEndian.Uint32(rec[j*labelBytes:])),
			End:   int32(binary.LittleEndian.Uint32(rec[j*labelBytes+4:])),
			Level: int32(binary.LittleEndian.Uint32(rec[j*labelBytes+8:])),
		}
	}
	c.idx, c.valid = i, true
}
