package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/testutil"
	"viewjoin/internal/views"
)

// fuzzSeedStores builds one store of each kind over a small random
// document — the valid-file seeds for FuzzReadViewStore (the committed
// corpus holds the same images plus truncated and bit-flipped variants).
func fuzzSeedStores(tb testing.TB) [][]byte {
	rng := rand.New(rand.NewSource(42))
	d := testutil.RandomDoc(rng, 60, nil)
	v := testutil.RandomPattern(rng, 3, nil)
	m, err := views.Materialize(d, v)
	if err != nil {
		tb.Fatal(err)
	}
	var out [][]byte
	for _, kind := range []Kind{Tuple, Element, Linked, LinkedPartial} {
		s, err := Build(m, kind, 128)
		if err != nil {
			tb.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			tb.Fatal(err)
		}
		out = append(out, buf.Bytes())
	}
	return out
}

// FuzzReadViewStore feeds arbitrary bytes — seeded with valid store images
// of all four kinds, truncations, and header corruptions — to the
// zero-copy loader. Whatever loads must be fully scannable and seekable
// without panics or out-of-bounds access: the loader's header checks and
// pointer validation are the only line of defense, because evaluation
// trusts loaded segments.
//
// Every input additionally runs through the mmap arm: the bytes are
// written to a file, mapped via OpenMmap, and loaded from the mapping.
// Mapped and heap loads must agree exactly — same accept/reject decision,
// same content — and a truncated or misaligned mapping must surface the
// usual load error, never fault (the mapping's length bounds every read,
// exactly like a heap slice's).
func FuzzReadViewStore(f *testing.F) {
	for _, img := range fuzzSeedStores(f) {
		f.Add(img)
		f.Add(img[:len(img)/2]) // truncated mid-body
		f.Add(img[:9])          // truncated mid-header
		bad := append([]byte(nil), img...)
		bad[5] ^= 0x7 // kind byte
		f.Add(bad)
		wild := append([]byte(nil), img...)
		wild[len(wild)-3] ^= 0xFF // pointer/record bytes near the tail
		f.Add(wild)
		// Mmap-arm seeds: lengths that leave the mapping misaligned against
		// the page grid the format promises — one byte short of / past a
		// segment boundary, and a valid image with trailing garbage.
		f.Add(img[:len(img)-1])
		f.Add(append(append([]byte(nil), img...), 0x00))
		f.Add(img[:len(img)/2+1])
	}
	f.Add([]byte(persistMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadViewStoreBytes(append([]byte(nil), data...))
		mmapCheck(t, data, err == nil, s)
		if err != nil {
			return
		}
		// The store loaded: every record must decode and every stored pointer
		// must seek somewhere in-bounds (valid or cleanly invalid).
		var c counters.Counters
		io := counters.NewIO(&c, 0)
		if s.Tuples != nil {
			n := 0
			for cur := s.Tuples.Open(io); cur.Valid(); cur.Next() {
				n++
			}
			if n != s.Tuples.Entries() {
				t.Fatalf("tuple scan saw %d records, header says %d", n, s.Tuples.Entries())
			}
			return
		}
		for q, l := range s.Lists {
			probe := l.Open(io)
			n := 0
			for cur := l.Open(io); cur.Valid(); cur.Next() {
				it := cur.Item()
				if !it.Following.IsNil() {
					probe.Seek(it.Following)
					if !probe.Valid() {
						t.Fatalf("list %d record %d: validated following pointer seeks invalid", q, n)
					}
				}
				if !it.Descendant.IsNil() {
					probe.Seek(it.Descendant)
					if !probe.Valid() {
						t.Fatalf("list %d record %d: validated descendant pointer seeks invalid", q, n)
					}
				}
				for ci, cq := range s.View.Nodes[q].Children {
					if ptr := it.Children[ci]; !ptr.IsNil() {
						cp := s.Lists[cq].Open(io)
						cp.Seek(ptr)
						if !cp.Valid() {
							t.Fatalf("list %d record %d: validated child pointer seeks invalid", q, n)
						}
					}
				}
				n++
			}
			if n != l.Entries() {
				t.Fatalf("list %d scan saw %d records, header says %d", q, n, l.Entries())
			}
		}
		// A loaded store must re-serialize and re-load to identical content.
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			t.Fatalf("re-serialize loaded store: %v", err)
		}
		s2, err := ReadViewStoreBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("re-load serialized store: %v", err)
		}
		if !sameContent(s, s2) {
			t.Fatalf("re-serialized store content differs")
		}
	})
}

// TestWriteFuzzCorpusSeeds regenerates the committed corpus entries for
// the mmap-arm seed shapes (misaligned truncations, trailing bytes) from
// the deterministic seed stores. It is a corpus maintenance tool, not a
// test: set VJSTORE_WRITE_CORPUS=1 to (re)write the files.
func TestWriteFuzzCorpusSeeds(t *testing.T) {
	if os.Getenv("VJSTORE_WRITE_CORPUS") == "" {
		t.Skip("corpus writer; set VJSTORE_WRITE_CORPUS=1 to run")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReadViewStore")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, img := range fuzzSeedStores(t) {
		for j, variant := range [][]byte{
			img[:len(img)-1],
			append(append([]byte(nil), img...), 0x00),
			img[:len(img)/2+1],
		} {
			name := filepath.Join(dir, fmt.Sprintf("seed-mmap-%d%d", i, j))
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", variant)
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// mmapCheck is the mmap-path arm of FuzzReadViewStore: it loads the same
// bytes through a file mapping and demands the exact behavior of the heap
// path. heapOK/heapStore are the heap path's outcome for comparison.
func mmapCheck(t *testing.T, data []byte, heapOK bool, heapStore *ViewStore) {
	path := filepath.Join(t.TempDir(), "fuzz.vjst")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatalf("mmap arm: write: %v", err)
	}
	mb, err := OpenMmap(path)
	if errors.Is(err, ErrMmapUnsupported) {
		return
	}
	if err != nil {
		t.Fatalf("mmap arm: open: %v", err)
	}
	defer mb.Close()
	s, err := ReadViewStoreBytes(mb.Bytes())
	if (err == nil) != heapOK {
		t.Fatalf("mmap arm: mapped load err=%v, heap load ok=%v — backends disagree", err, heapOK)
	}
	if err != nil {
		return
	}
	if !sameContent(heapStore, s) {
		t.Fatal("mmap arm: mapped and heap loads differ in content")
	}
}
