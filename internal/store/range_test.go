package store

import (
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
)

// rangeFixture builds the //a//e list of the Fig 1 document with tiny pages
// (multi-page, so range windows cross page boundaries) and returns the list
// plus its start labels in record order.
func rangeFixture(t *testing.T, kind Kind) (*ListFile, []int32) {
	t.Helper()
	d := fig1Doc(t)
	m := views.MustMaterialize(d, tpq.MustParse("//a//e"))
	s := MustBuild(m, kind, 128)
	l := s.Lists[1] // the e list
	starts := make([]int32, l.Entries())
	for i := range starts {
		starts[i] = l.LabelAt(i).Start
	}
	return l, starts
}

func TestSeekStart(t *testing.T) {
	l, starts := rangeFixture(t, Element)
	n := len(starts)
	if n < 3 {
		t.Fatalf("fixture too small: %d records", n)
	}
	// SeekStart returns the first record offset with Start >= s: exact
	// hits land on the record, gaps land on the successor, and both ends
	// clamp to the list bounds.
	for i, s := range starts {
		if got := l.SeekStart(s); got != i {
			t.Errorf("SeekStart(%d) = %d, want %d (exact)", s, got, i)
		}
		if got := l.SeekStart(s + 1); got != i+1 && (i+1 >= n || starts[i+1] != s+1) {
			// s+1 is past record i; unless it is exactly the next start,
			// the answer is i+1.
			t.Errorf("SeekStart(%d) = %d, want %d (successor)", s+1, got, i+1)
		}
	}
	if got := l.SeekStart(-1000); got != 0 {
		t.Errorf("SeekStart(min) = %d, want 0", got)
	}
	if got := l.SeekStart(starts[n-1] + 1000); got != n {
		t.Errorf("SeekStart(max) = %d, want %d", got, n)
	}
}

func TestResetRangeWindows(t *testing.T) {
	l, starts := rangeFixture(t, Element)
	n := len(starts)
	var c counters.Counters
	io := counters.NewIO(&c, 0)
	var cur ListCursor

	cases := []struct {
		name   string
		lo, hi int
		want   []int32 // expected start labels, nil = invalid cursor
	}{
		{name: "full list", lo: 0, hi: n, want: starts},
		{name: "interior window", lo: 1, hi: n - 1, want: starts[1 : n-1]},
		{name: "single record", lo: 2, hi: 3, want: starts[2:3]},
		{name: "empty window", lo: 2, hi: 2, want: nil},
		{name: "inverted window", lo: 3, hi: 1, want: nil},
		{name: "bounds clipped to list", lo: -5, hi: n + 5, want: starts},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur.ResetRange(l, io, nil, 0, tc.lo, tc.hi)
			var got []int32
			for cur.Valid() {
				got = append(got, cur.Item().Start)
				cur.Next()
			}
			if len(got) != len(tc.want) {
				t.Fatalf("window [%d,%d) read %v, want %v", tc.lo, tc.hi, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("window [%d,%d) read %v, want %v", tc.lo, tc.hi, got, tc.want)
				}
			}
		})
	}
}

func TestSeekClampsToWindow(t *testing.T) {
	l, starts := rangeFixture(t, Element)
	n := len(starts)
	if n < 4 {
		t.Fatalf("fixture too small: %d records", n)
	}
	var c counters.Counters
	io := counters.NewIO(&c, 0)
	var cur ListCursor
	cur.ResetRange(l, io, nil, 0, 1, n-1)

	// A pointer below the window clamps to the window's first record.
	cur.Seek(Pointer(0))
	if !cur.Valid() || cur.Ordinal() != 1 {
		t.Fatalf("Seek below window: ordinal %d valid=%v, want clamp to 1", cur.Ordinal(), cur.Valid())
	}
	// A pointer inside the window lands exactly.
	cur.Seek(Pointer(n - 2))
	if !cur.Valid() || cur.Ordinal() != n-2 {
		t.Fatalf("Seek inside window: ordinal %d valid=%v, want %d", cur.Ordinal(), cur.Valid(), n-2)
	}
	// A pointer at or past the window's end invalidates, as does nil.
	cur.Seek(Pointer(n - 1))
	if cur.Valid() {
		t.Fatal("Seek at window end: cursor should be invalid")
	}
	cur.ResetRange(l, io, nil, 0, 1, n-1)
	cur.Seek(NilPointer)
	if cur.Valid() {
		t.Fatal("Seek(nil): cursor should be invalid")
	}
}
