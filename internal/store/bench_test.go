package store

import (
	"bytes"
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/dataset/xmark"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
)

func benchView(b *testing.B, kind Kind) *ViewStore {
	b.Helper()
	d := xmark.Scale(0.1)
	m := views.MustMaterialize(d, tpq.MustParse("//item//text//keyword"))
	return MustBuild(m, kind, 0)
}

// BenchmarkCursorScan measures sequential record decoding per scheme — the
// per-element cost every engine pays.
func BenchmarkCursorScan(b *testing.B) {
	for _, kind := range []Kind{Element, Linked, LinkedPartial} {
		s := benchView(b, kind)
		b.Run(kind.String(), func(b *testing.B) {
			var c counters.Counters
			io := counters.NewIO(&c, 0)
			n := 0
			for i := 0; i < b.N; i++ {
				for _, l := range s.Lists {
					for cur := l.Open(io); cur.Valid(); cur.Next() {
						n += int(cur.Item().Start & 1)
					}
				}
			}
			_ = n
			b.ReportMetric(float64(s.TotalEntries()), "entries")
		})
	}
}

// BenchmarkCursorSeek measures pointer dereferencing: following every
// materialized child pointer of the LE view.
func BenchmarkCursorSeek(b *testing.B) {
	s := benchView(b, Linked)
	var c counters.Counters
	io := counters.NewIO(&c, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := s.Lists[1].Open(io)
		for cur := s.Lists[0].Open(io); cur.Valid(); cur.Next() {
			if p := cur.Item().Children[0]; !p.IsNil() {
				probe.Seek(p)
			}
		}
	}
}

// BenchmarkTupleScan measures the tuple scheme's wide-record decoding.
func BenchmarkTupleScan(b *testing.B) {
	s := benchView(b, Tuple)
	var c counters.Counters
	io := counters.NewIO(&c, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for cur := s.Tuples.Open(io); cur.Valid(); cur.Next() {
		}
	}
	b.ReportMetric(float64(s.Tuples.Entries()), "tuples")
}

// BenchmarkLoadViewStore measures view cold-start — deserializing a saved
// store — per scheme. The zero-copy loader slices segments out of the
// input buffer, so time is dominated by pointer validation and
// allocs/op stays O(lists) regardless of record count (ReportAllocs makes
// the zero-copy property visible in the benchmark output).
func BenchmarkLoadViewStore(b *testing.B) {
	for _, kind := range []Kind{Tuple, Element, Linked, LinkedPartial} {
		s := benchView(b, kind)
		var buf bytes.Buffer
		if _, err := s.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := ReadViewStoreBytes(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.NumPages()), "pages")
		})
	}
}

// BenchmarkBuild measures store construction (serialization) per scheme.
func BenchmarkBuild(b *testing.B) {
	d := xmark.Scale(0.1)
	m := views.MustMaterialize(d, tpq.MustParse("//item//text//keyword"))
	for _, kind := range []Kind{Tuple, Element, Linked, LinkedPartial} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Build(m, kind, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
