//go:build !unix

package store

import "os"

// mmapFile on platforms without mmap support reports
// ErrMmapUnsupported; OpenMmap callers fall back to OpenResident.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, ErrMmapUnsupported
}

func munmapFile(data []byte) error { return nil }
