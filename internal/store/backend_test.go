package store

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
)

// backendImage builds one LE store and writes its container image to a
// temp file, returning the store, the image bytes, and the file path.
func backendImage(t *testing.T) (*ViewStore, []byte, string) {
	t.Helper()
	d := testutil.RandomDoc(rand.New(rand.NewSource(11)), 80, nil)
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	s := MustBuild(m, Linked, 256)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "view.vjst")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return s, buf.Bytes(), path
}

// TestBackendsLoadIdentically: the same container file loaded through the
// resident backend and through the mapping must produce stores with
// identical content — residency is invisible to access.
func TestBackendsLoadIdentically(t *testing.T) {
	orig, _, path := backendImage(t)

	rb, err := OpenResident(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Resident() {
		t.Error("OpenResident: Resident() = false")
	}
	fromHeap, err := ReadViewStoreBytes(rb.Bytes())
	if err != nil {
		t.Fatalf("resident load: %v", err)
	}

	mb, err := OpenMmap(path)
	if errors.Is(err, ErrMmapUnsupported) {
		t.Skip("mmap unsupported on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer mb.Close()
	if mb.Resident() {
		t.Error("OpenMmap: Resident() = true")
	}
	fromMap, err := ReadViewStoreBytes(mb.Bytes())
	if err != nil {
		t.Fatalf("mmap load: %v", err)
	}

	if !sameContent(orig, fromHeap) || !sameContent(orig, fromMap) ||
		!sameContent(fromHeap, fromMap) {
		t.Error("backend loads disagree on content")
	}
	if err := rb.Close(); err != nil {
		t.Errorf("resident close: %v", err)
	}
	if rb.Bytes() != nil {
		t.Error("resident backend still exposes bytes after Close")
	}
}

// TestMmapTruncatedSurfacesCleanly: loading over a mapping of a truncated
// container must fail with the usual truncation error (wrapping
// io.ErrUnexpectedEOF, which the public layer folds into
// ErrViewTruncated) — never a fault or partial store.
func TestMmapTruncatedSurfacesCleanly(t *testing.T) {
	_, img, _ := backendImage(t)
	dir := t.TempDir()
	// Cut at a header boundary, mid-body, and at a deliberately misaligned
	// (non-page-multiple, odd) length.
	for _, cut := range []int{9, len(img) / 2, len(img) - 7, len(img) - 1} {
		path := filepath.Join(dir, "trunc.vjst")
		if err := os.WriteFile(path, img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		mb, err := OpenMmap(path)
		if errors.Is(err, ErrMmapUnsupported) {
			t.Skip("mmap unsupported on this platform")
		}
		if err != nil {
			t.Fatal(err)
		}
		_, lerr := ReadViewStoreBytes(mb.Bytes())
		if lerr == nil {
			t.Errorf("cut=%d: truncated mapping loaded successfully", cut)
		} else if !errors.Is(lerr, io.ErrUnexpectedEOF) {
			// Cuts inside the body surface as truncation; cuts that leave a
			// self-consistent prefix surface as trailing/validation errors.
			// Either way the error must be clean, which reaching this line
			// (no fault) plus a non-nil error already proves.
			t.Logf("cut=%d: non-EOF load error (ok): %v", cut, lerr)
		}
		if err := mb.Close(); err != nil {
			t.Errorf("cut=%d: close: %v", cut, err)
		}
	}
}

// TestMmapEmptyAndMissing: an empty file maps to an empty image (the
// loader reports truncation), a missing file errors at open.
func TestMmapEmptyAndMissing(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.vjst")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	mb, err := OpenMmap(empty)
	if errors.Is(err, ErrMmapUnsupported) {
		t.Skip("mmap unsupported on this platform")
	}
	if err != nil {
		t.Fatalf("empty file: %v", err)
	}
	if len(mb.Bytes()) != 0 {
		t.Errorf("empty file mapped to %d bytes", len(mb.Bytes()))
	}
	if _, err := ReadViewStoreBytes(mb.Bytes()); err == nil {
		t.Error("empty image loaded successfully")
	}
	if err := mb.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := OpenMmap(filepath.Join(dir, "missing.vjst")); err == nil {
		t.Error("missing file opened successfully")
	}
	if _, err := OpenResident(filepath.Join(dir, "missing.vjst")); err == nil {
		t.Error("missing file opened successfully (resident)")
	}
}

// TestMmapCloseIdempotent: Close must be safe to call twice and must
// clear the image.
func TestMmapCloseIdempotent(t *testing.T) {
	_, _, path := backendImage(t)
	mb, err := OpenMmap(path)
	if errors.Is(err, ErrMmapUnsupported) {
		t.Skip("mmap unsupported on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.Close(); err != nil {
		t.Fatal(err)
	}
	if mb.Bytes() != nil {
		t.Error("backend exposes bytes after Close")
	}
	if err := mb.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestOpenMmapAllocs pins the mmap cold-load criterion: opening and
// adopting a multi-hundred-page container through the mapping must stay
// within the same O(lists) allocation bound as the heap path (the PR 4
// zero-copy criterion) — the mapping replaces the heap buffer, it must
// not add per-page or per-record work.
func TestOpenMmapAllocs(t *testing.T) {
	d := wideDoc(t, 600)
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	s := MustBuild(m, Linked, 256)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wide.vjst")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMmap(path); errors.Is(err, ErrMmapUnsupported) {
		t.Skip("mmap unsupported on this platform")
	}

	pages := s.NumPages()
	allocs := testing.AllocsPerRun(20, func() {
		mb, err := OpenMmap(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ReadViewStoreBytes(mb.Bytes()); err != nil {
			t.Fatal(err)
		}
		if err := mb.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("mmap open+load of %d-page store: %.0f allocs", pages, allocs)
	if int(allocs)*5 > pages {
		t.Errorf("mmap load allocated %.0f times for a %d-page store; want <= pages/5 (zero-copy)", allocs, pages)
	}
	if int(allocs) > 64 {
		t.Errorf("mmap load allocated %.0f times; want O(lists), <= 64", allocs)
	}
}
