package store

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewjoin/internal/counters"
	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/xmltree"
)

func fig1Doc(t testing.TB) *xmltree.Document {
	t.Helper()
	b := xmltree.NewBuilder()
	b.Element("r", func() {
		b.Element("a", func() {
			b.Leaf("e")
			b.Leaf("e")
			b.Leaf("e")
		})
		b.Element("a", func() {
			b.Leaf("f")
			b.Leaf("e")
			b.Element("a", func() { b.Leaf("e") })
			b.Leaf("e")
		})
	})
	return b.MustDocument()
}

// readAll decodes a whole list through a cursor.
func readAll(t *testing.T, l *ListFile) []Item {
	t.Helper()
	var c counters.Counters
	cur := l.Open(counters.NewIO(&c, 0))
	var out []Item
	for cur.Valid() {
		out = append(out, *cur.Item())
		cur.Next()
	}
	if len(out) != l.Entries() {
		t.Fatalf("cursor read %d entries, file says %d", len(out), l.Entries())
	}
	return out
}

func TestBuildAndScanAllKinds(t *testing.T) {
	d := fig1Doc(t)
	m := views.MustMaterialize(d, tpq.MustParse("//a//e"))

	for _, kind := range []Kind{Element, Linked, LinkedPartial} {
		s := MustBuild(m, kind, 128) // tiny pages to force multi-page files
		if len(s.Lists) != 2 {
			t.Fatalf("%v: lists = %d, want 2", kind, len(s.Lists))
		}
		for q, l := range s.Lists {
			items := readAll(t, l)
			want := m.Lists[q]
			if len(items) != len(want) {
				t.Fatalf("%v list %d: %d items, want %d", kind, q, len(items), len(want))
			}
			for i := range items {
				if items[i].Start != want[i].Start || items[i].End != want[i].End || items[i].Level != want[i].Level {
					t.Errorf("%v list %d entry %d: labels differ", kind, q, i)
				}
				if kind == Element && (!items[i].Following.IsNil() || !items[i].Descendant.IsNil()) {
					t.Errorf("E scheme entry has pointers")
				}
			}
		}
		if kind == Element && s.NumPointers() != 0 {
			t.Errorf("E scheme NumPointers = %d", s.NumPointers())
		}
	}

	le := MustBuild(m, Linked, 128)
	lep := MustBuild(m, LinkedPartial, 128)
	e := MustBuild(m, Element, 128)
	if !(e.SizeBytes() <= lep.SizeBytes() && lep.SizeBytes() <= le.SizeBytes()) {
		t.Errorf("size order violated: E=%d LEp=%d LE=%d", e.SizeBytes(), lep.SizeBytes(), le.SizeBytes())
	}
	if !(lep.NumPointers() < le.NumPointers()) {
		t.Errorf("pointer order violated: LEp=%d LE=%d", lep.NumPointers(), le.NumPointers())
	}
}

// TestPointerSeek follows every materialized pointer and checks it lands on
// the record the views layer pointed at.
func TestPointerSeek(t *testing.T) {
	d := fig1Doc(t)
	m := views.MustMaterialize(d, tpq.MustParse("//a//e"))
	s := MustBuild(m, Linked, 64)

	var c counters.Counters
	io := counters.NewIO(&c, 0)
	for q, l := range s.Lists {
		cur := l.Open(io)
		for i := 0; cur.Valid(); i, _ = i+1, 0 {
			src := m.Lists[q][i]
			if src.Following != views.NoPointer {
				probe := l.Open(io)
				probe.Seek(cur.Item().Following)
				if !probe.Valid() {
					t.Fatalf("list %d entry %d: following seek invalid", q, i)
				}
				if probe.Item().Start != m.Lists[q][src.Following].Start {
					t.Errorf("list %d entry %d: following landed on start %d, want %d",
						q, i, probe.Item().Start, m.Lists[q][src.Following].Start)
				}
			} else if !cur.Item().Following.IsNil() {
				t.Errorf("list %d entry %d: unexpected following pointer", q, i)
			}
			for ci := range m.View.Nodes[q].Children {
				cidx := m.View.Nodes[q].Children[ci]
				if src.Children[ci] == views.NoPointer {
					continue
				}
				probe := s.Lists[cidx].Open(io)
				probe.Seek(cur.Item().Children[ci])
				want := m.Lists[cidx][src.Children[ci]].Start
				if !probe.Valid() || probe.Item().Start != want {
					t.Errorf("list %d entry %d child %d: seek mismatch", q, i, ci)
				}
			}
			cur.Next()
		}
	}
	if c.PointerDerefs == 0 {
		t.Errorf("no pointer dereferences counted")
	}
}

func TestTupleFile(t *testing.T) {
	d := fig1Doc(t)
	m := views.MustMaterialize(d, tpq.MustParse("//a//e"))
	s := MustBuild(m, Tuple, 64)
	if s.Tuples == nil || len(s.Lists) != 0 {
		t.Fatalf("tuple build should populate Tuples only")
	}
	if s.Tuples.Entries() != 7 {
		t.Fatalf("tuples = %d, want 7", s.Tuples.Entries())
	}
	if s.Tuples.Arity() != 2 {
		t.Fatalf("arity = %d, want 2", s.Tuples.Arity())
	}
	var c counters.Counters
	cur := s.Tuples.Open(counters.NewIO(&c, 0))
	prev := int32(-1)
	n := 0
	for ; cur.Valid(); cur.Next() {
		it := cur.Item()
		if !it.Labels[0].Contains(it.Labels[1]) {
			t.Errorf("tuple %d: a does not contain e", cur.Index())
		}
		if it.Labels[0].Start < prev {
			t.Errorf("tuples not sorted by composite start key")
		}
		prev = it.Labels[0].Start
		n++
	}
	if n != 7 {
		t.Errorf("cursor visited %d tuples, want 7", n)
	}
	// SeekIndex for backtracking.
	cur.SeekIndex(3)
	if !cur.Valid() || cur.Index() != 3 {
		t.Errorf("SeekIndex(3) failed")
	}
	cur.SeekIndex(99)
	if cur.Valid() {
		t.Errorf("SeekIndex past end should invalidate")
	}
}

func TestEmptyView(t *testing.T) {
	d := fig1Doc(t)
	m := views.MustMaterialize(d, tpq.MustParse("//e//f"))
	for _, kind := range []Kind{Tuple, Element, Linked, LinkedPartial} {
		s := MustBuild(m, kind, 0)
		if s.TotalEntries() != 0 {
			t.Errorf("%v: entries = %d, want 0", kind, s.TotalEntries())
		}
		var c counters.Counters
		io := counters.NewIO(&c, 0)
		if kind == Tuple {
			if s.Tuples.Open(io).Valid() {
				t.Errorf("%v: cursor on empty file is valid", kind)
			}
		} else {
			for _, l := range s.Lists {
				if l.Open(io).Valid() {
					t.Errorf("%v: cursor on empty list is valid", kind)
				}
			}
		}
	}
}

func TestIOAccounting(t *testing.T) {
	d := fig1Doc(t)
	m := views.MustMaterialize(d, tpq.MustParse("//a//e"))
	s := MustBuild(m, Linked, 64) // several pages

	var c counters.Counters
	io := counters.NewIO(&c, 2)
	cur := s.Lists[1].Open(io)
	for cur.Valid() {
		cur.Next()
	}
	if c.ElementsScanned != int64(s.Lists[1].Entries()) {
		t.Errorf("ElementsScanned = %d, want %d", c.ElementsScanned, s.Lists[1].Entries())
	}
	if c.PagesRead == 0 {
		t.Errorf("PagesRead = 0, want > 0")
	}
	firstScan := c.PagesRead

	// A re-scan with a large pool should hit the pool for everything.
	c2 := counters.Counters{}
	io2 := counters.NewIO(&c2, 1024)
	for i := 0; i < 2; i++ {
		cur := s.Lists[1].Open(io2)
		for cur.Valid() {
			cur.Next()
		}
	}
	if c2.PagesRead != firstScan {
		t.Errorf("second scan with big pool re-read pages: %d vs %d", c2.PagesRead, firstScan)
	}

	// A pool-less IO counts every page touch.
	c3 := counters.Counters{}
	io3 := counters.NewIO(&c3, -1)
	cur = s.Lists[1].Open(io3)
	for cur.Valid() {
		cur.Next()
	}
	if c3.PagesRead < firstScan {
		t.Errorf("pool-less scan read %d pages, want >= %d", c3.PagesRead, firstScan)
	}
}

func TestKindStringsAndPolicies(t *testing.T) {
	if Tuple.String() != "T" || Element.String() != "E" || Linked.String() != "LE" || LinkedPartial.String() != "LEp" {
		t.Errorf("kind names wrong")
	}
	if Linked.Policy() != views.FullPointers || LinkedPartial.Policy() != views.PartialPointers ||
		Element.Policy() != views.NoPointers {
		t.Errorf("kind policies wrong")
	}
}

// TestRoundTripProperty checks, on random documents and views, that every
// scheme's on-disk form decodes back to exactly the materialized content.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDoc(rng, 80, nil)
		v := testutil.RandomPattern(rng, 4, nil)
		m, err := views.Materialize(d, v)
		if err != nil {
			return false
		}
		pageSize := 64 + rng.Intn(3)*64
		for _, kind := range []Kind{Element, Linked, LinkedPartial} {
			s, err := Build(m, kind, pageSize)
			if err != nil {
				t.Logf("Build(%v): %v", kind, err)
				return false
			}
			mm := m.ApplyPolicy(kind.Policy())
			var c counters.Counters
			io := counters.NewIO(&c, 0)
			for q, l := range s.Lists {
				cur := l.Open(io)
				for i := range mm.Lists[q] {
					if !cur.Valid() {
						t.Logf("%v list %d: cursor ended early at %d", kind, q, i)
						return false
					}
					e := &mm.Lists[q][i]
					it := cur.Item()
					if it.Start != e.Start || it.End != e.End || it.Level != e.Level {
						t.Logf("%v list %d entry %d: label mismatch", kind, q, i)
						return false
					}
					if (e.Following == views.NoPointer) != it.Following.IsNil() ||
						(e.Descendant == views.NoPointer) != it.Descendant.IsNil() {
						t.Logf("%v list %d entry %d: pointer presence mismatch", kind, q, i)
						return false
					}
					cur.Next()
				}
				if cur.Valid() {
					t.Logf("%v list %d: extra entries", kind, q)
					return false
				}
			}
		}
		// Tuple content round-trip.
		s, err := Build(m, Tuple, pageSize)
		if err != nil {
			// Tuples wider than a page are a legitimate build error only for
			// absurd arities; with 4-node views and >=64B pages it must fit.
			t.Logf("Build(Tuple): %v", err)
			return false
		}
		var c counters.Counters
		cur := s.Tuples.Open(counters.NewIO(&c, 0))
		ms := m.Matches()
		for i := range ms {
			if !cur.Valid() {
				return false
			}
			for j, id := range ms[i] {
				n := d.Node(id)
				l := cur.Item().Labels[j]
				if l.Start != n.Start || l.End != n.End || l.Level != n.Level {
					return false
				}
			}
			cur.Next()
		}
		return !cur.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
