// Package store implements the paper's four physical storage schemes for
// materialized TPQ views as paged flat-buffer files:
//
//   - Tuple (T): each view match stored as an n-tuple of region labels,
//     sorted by composite start key (InterJoin's scheme, §I).
//   - Element (E): one list per view node holding the solution nodes'
//     region labels in document order, no pointers.
//   - Linked-element (LE): element lists plus materialized child,
//     descendant and following pointers encoding the conceptual DAG
//     (§III-A/B). Pointers are record offsets into the target list.
//   - Partial linked-element (LEp): LE with the §III-C heuristic — child
//     pointers always materialized; following/descendant pointers only when
//     the pointed node is more than one entry away.
//
// Every file is a structure-of-arrays: fixed-width records split across
// page-aligned byte segments (one segment for the region labels, one per
// materialized pointer class), with records never spanning page
// boundaries. The segments are the persistence format — SaveView writes
// them verbatim and LoadView slices them out of one buffer, so the disk
// bytes are the runtime representation (zero-copy, mmap-ready).
//
// All reads go through cursors that account elements scanned and real page
// boundaries of the flat segments into counters.Counters. The uniform face
// of both file types is the Source interface; the uniform reader is the
// Cursor interface.
package store

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"viewjoin/internal/counters"
	"viewjoin/internal/obs"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
)

// Kind identifies a storage scheme.
type Kind int8

const (
	// Tuple is InterJoin's n-tuple scheme (T).
	Tuple Kind = iota
	// Element is the per-type list scheme without pointers (E).
	Element
	// Linked is the linked-element scheme with all pointers (LE).
	Linked
	// LinkedPartial is the partially materialized variant (LEp).
	LinkedPartial
)

// String names the scheme as in the paper's tables.
func (k Kind) String() string {
	switch k {
	case Tuple:
		return "T"
	case Element:
		return "E"
	case Linked:
		return "LE"
	case LinkedPartial:
		return "LEp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Policy returns the pointer policy that produces this scheme's content.
func (k Kind) Policy() views.PointerPolicy {
	switch k {
	case Linked:
		return views.FullPointers
	case LinkedPartial:
		return views.PartialPointers
	default:
		return views.NoPointers
	}
}

// DefaultPageSize is the page size used when 0 is passed to Build.
const DefaultPageSize = 4096

// Pointer addresses a record by its offset (ordinal) within a list file —
// the position the views layer computes, stored on disk as a little-endian
// int32. NilPointer (-1) is the null pointer. Pointers order exactly like
// list positions, so "earlier in the list" is plain <.
type Pointer int32

// NilPointer is the null pointer.
const NilPointer Pointer = -1

// IsNil reports whether p is the null pointer.
func (p Pointer) IsNil() bool { return p < 0 }

// MaxChildren is the maximum number of child pointers per view node the
// record format supports.
const MaxChildren = 6

// Pointer-segment indices of a ListFile: following, descendant, then one
// per child edge.
const (
	segFollowing  = 0
	segDescendant = 1
	segChild0     = 2
	numPtrSegs    = segChild0 + MaxChildren
)

const (
	labelBytes = 12 // start, end, level (little-endian int32 each)
	ptrBytes   = 4  // record offset (little-endian int32)
)

var tokenSeq atomic.Uintptr

// Source is the uniform face of one paged flat-buffer file of fixed-width
// records. Both physical file types implement it: *ListFile (the
// element-family schemes E/LE/LEp) and *TupleFile (the tuple scheme T).
// Generic layers — persistence, size accounting, plan rendering — operate
// on Sources; the engines use the concrete types for typed record access.
type Source interface {
	// Kind returns the storage scheme the file belongs to.
	Kind() Kind
	// Entries returns the number of records.
	Entries() int
	// NumPages returns the total page count across the file's segments —
	// the quantity the paper's §V cost formulas charge for a full scan.
	NumPages() int
	// SizeBytes returns the page-granular on-disk size.
	SizeBytes() int64
	// PayloadBytes returns the record bytes excluding page padding.
	PayloadBytes() int64
	// OpenCursor returns a Cursor on the first record, accounting into io
	// and (optionally) emitting per-record events attributed to the given
	// query node through tr. A nil tracer disables events.
	OpenCursor(io *counters.IO, tr obs.Tracer, node int) Cursor

	// segs returns the file's present segments in persistence order; it is
	// unexported so only this package's paged files can be Sources.
	segs() []*segment
}

// Cursor is the uniform forward reader over a Source: every record decode
// charges one element scanned and page touches on the real page boundaries
// of the flat segments. Concrete cursors (*ListCursor, *TupleCursor) add
// typed record access and pointer/index seeks.
type Cursor interface {
	// Valid reports whether the cursor is positioned on a record.
	Valid() bool
	// Next advances to the next record in file order; the cursor becomes
	// invalid at the end.
	Next()
	// Ordinal returns the current record's offset in the file. It must
	// only be called when Valid.
	Ordinal() int
}

// segment is one page-aligned flat buffer of fixed-width records. Records
// never span page boundaries: record i lives on page i/perPage at byte
// offset (i%perPage)*recSize within the page, and the tail of each page
// that cannot fit a whole record is zero padding. The buffer length is a
// whole number of pages, so the segment can be persisted verbatim and
// adopted back by slicing.
//
// A segment has two physical forms. The flat form stores all pages
// contiguously in data — what Build allocates and what persistence adopts.
// The copy-on-write form (pageTab non-nil, data nil) stores one slice per
// page: pages untouched by an update alias the base segment's pages, and
// only modified pages are private rebuilt copies. Both forms present the
// same record space; readers never see the difference beyond one branch in
// rec. Compaction flattens a COW segment back to the flat form, and the
// page bytes are maintained identical to a from-scratch build, so the
// flattened container is byte-identical to a fresh one.
type segment struct {
	data     []byte
	pageTab  [][]byte // COW form: page i is pageTab[i]; nil for flat form
	pageSize int
	recSize  int
	perPage  int
	token    uintptr // buffer-pool identity
}

// newSegment allocates a zeroed segment for the given record count.
func newSegment(entries, recSize, pageSize int) segment {
	s := segment{
		pageSize: pageSize,
		recSize:  recSize,
		perPage:  pageSize / recSize,
		token:    tokenSeq.Add(1),
	}
	if entries > 0 {
		pages := (entries + s.perPage - 1) / s.perPage
		s.data = make([]byte, pages*pageSize)
	}
	return s
}

// adopt binds the segment to an existing buffer (a slice of a loaded or
// mapped file) without copying.
func adopt(data []byte, recSize, pageSize int) segment {
	return segment{
		data:     data,
		pageSize: pageSize,
		recSize:  recSize,
		perPage:  pageSize / recSize,
		token:    tokenSeq.Add(1),
	}
}

// segBytes returns the byte length a segment of entries records occupies,
// in whole pages.
func segBytes(entries, recSize, pageSize int) int64 {
	if entries == 0 {
		return 0
	}
	perPage := pageSize / recSize
	pages := (int64(entries) + int64(perPage) - 1) / int64(perPage)
	return pages * int64(pageSize)
}

func (s *segment) present() bool { return s.data != nil || s.pageTab != nil }

func (s *segment) pages() int {
	if s.pageTab != nil {
		return len(s.pageTab)
	}
	if s.pageSize == 0 {
		return 0
	}
	return len(s.data) / s.pageSize
}

// page returns the page number record i lives on.
func (s *segment) page(i int32) int32 { return i / int32(s.perPage) }

// rec returns the record bytes of record i.
func (s *segment) rec(i int32) []byte {
	p := int(i) / s.perPage
	off := (int(i) % s.perPage) * s.recSize
	if s.pageTab != nil {
		return s.pageTab[p][off : off+s.recSize]
	}
	off += p * s.pageSize
	return s.data[off : off+s.recSize]
}

// pageBytes returns the raw bytes of page p.
func (s *segment) pageBytes(p int) []byte {
	if s.pageTab != nil {
		return s.pageTab[p]
	}
	return s.data[p*s.pageSize : (p+1)*s.pageSize]
}

// flatten returns the segment in flat form; a flat segment is returned
// as-is (its buffer is immutable and safely shared).
func (s *segment) flatten() segment {
	if s.pageTab == nil {
		return *s
	}
	out := *s
	out.pageTab = nil
	out.data = make([]byte, len(s.pageTab)*s.pageSize)
	for p, page := range s.pageTab {
		copy(out.data[p*s.pageSize:], page)
	}
	out.token = tokenSeq.Add(1)
	return out
}

// ViewStore is one materialized view laid out in flat paged segments in a
// given scheme. Element-family schemes populate Lists (one file per view
// node); the tuple scheme populates Tuples.
type ViewStore struct {
	Kind     Kind
	View     *tpq.Pattern
	PageSize int
	Lists    []*ListFile
	Tuples   *TupleFile
}

// Sources returns the store's files behind the uniform Source interface,
// in view-node order (a single element for the tuple scheme).
func (s *ViewStore) Sources() []Source {
	if s.Tuples != nil {
		return []Source{s.Tuples}
	}
	out := make([]Source, len(s.Lists))
	for i, l := range s.Lists {
		out[i] = l
	}
	return out
}

// Build lays out the materialized view m in the given scheme. The views
// layer's pointer positions are emitted directly as record offsets —
// LinkedPartial applies the §III-C reduction inline, Element drops the
// pointer segments, and Tuple serializes m.Matches(). pageSize 0 means
// DefaultPageSize.
func Build(m *views.Materialized, kind Kind, pageSize int) (*ViewStore, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	s := &ViewStore{Kind: kind, View: m.View, PageSize: pageSize}
	if kind == Tuple {
		tf, err := buildTupleFile(m, pageSize)
		if err != nil {
			return nil, err
		}
		s.Tuples = tf
		return s, nil
	}
	lists, err := buildListFiles(m, kind, pageSize)
	if err != nil {
		return nil, err
	}
	s.Lists = lists
	return s, nil
}

// MustBuild is Build but panics on error.
func MustBuild(m *views.Materialized, kind Kind, pageSize int) *ViewStore {
	s, err := Build(m, kind, pageSize)
	if err != nil {
		panic(err)
	}
	return s
}

// SizeBytes returns the on-disk size in page-granular bytes.
func (s *ViewStore) SizeBytes() int64 {
	var n int64
	for _, src := range s.Sources() {
		n += src.SizeBytes()
	}
	return n
}

// PayloadBytes returns the number of record bytes actually stored,
// excluding page padding.
func (s *ViewStore) PayloadBytes() int64 {
	var n int64
	for _, src := range s.Sources() {
		n += src.PayloadBytes()
	}
	return n
}

// NumPages returns the total page count across all files and segments.
func (s *ViewStore) NumPages() int {
	n := 0
	for _, src := range s.Sources() {
		n += src.NumPages()
	}
	return n
}

// NumPointers returns the number of materialized (non-null) pointers.
func (s *ViewStore) NumPointers() int {
	n := 0
	for _, l := range s.Lists {
		n += l.pointers
	}
	return n
}

// TotalEntries returns the total record count across lists (or tuples).
func (s *ViewStore) TotalEntries() int {
	n := 0
	for _, src := range s.Sources() {
		n += src.Entries()
	}
	return n
}

// ListFile is one flat paged list of records for a single view node: a
// labels segment (12-byte records) plus one 4-byte-record pointer segment
// per materialized pointer class. A pointer class whose pointers are all
// null occupies no segment at all — the E scheme stores only labels, and
// LEp's reduction shrinks the file by whole segments.
type ListFile struct {
	kind       Kind
	pageSize   int
	childCount int  // child pointer classes of the view node
	scoped     bool // following pointers are scoped to a parent view node
	entries    int
	pointers   int // non-null pointers across all segments
	labels     segment
	ptrs       [numPtrSegs]segment // absent classes have nil data
}

// Kind returns the scheme the list belongs to.
func (l *ListFile) Kind() Kind { return l.kind }

// Entries returns the number of records in the list.
func (l *ListFile) Entries() int { return l.entries }

// Scoped reports whether this list's following pointers carry the
// same-lowest-parent-ancestor constraint (§III-A), i.e. the view node has a
// parent in its view. Unscoped following pointers may always be followed;
// scoped ones only under the safe-jump rule (see engine/viewjoin).
func (l *ListFile) Scoped() bool { return l.scoped }

// NumPages returns the page count across the list's segments.
func (l *ListFile) NumPages() int {
	n := l.labels.pages()
	for i := range l.ptrs {
		n += l.ptrs[i].pages()
	}
	return n
}

// SizeBytes returns the page-granular on-disk size.
func (l *ListFile) SizeBytes() int64 { return int64(l.NumPages()) * int64(l.pageSize) }

// PayloadBytes returns the record bytes excluding page padding.
func (l *ListFile) PayloadBytes() int64 {
	n := int64(l.entries) * labelBytes
	for i := range l.ptrs {
		if l.ptrs[i].present() {
			n += int64(l.entries) * ptrBytes
		}
	}
	return n
}

// PageOf returns the labels-segment page of the record addressed by p —
// the list's notion of "which page a record lives on" for jump-distance
// accounting. p must not be nil.
func (l *ListFile) PageOf(p Pointer) int32 { return l.labels.page(int32(p)) }

// LabelAt decodes the region label of record i without charging the cost
// model: it is a planning accessor (partition weighing, doc-root probes),
// not an evaluation read. i must be in [0, Entries()).
func (l *ListFile) LabelAt(i int) Label {
	rec := l.labels.rec(int32(i))
	return Label{
		Start: int32(binary.LittleEndian.Uint32(rec[0:])),
		End:   int32(binary.LittleEndian.Uint32(rec[4:])),
		Level: int32(binary.LittleEndian.Uint32(rec[8:])),
	}
}

// SeekStart returns the offset of the first record whose start label is
// >= s, or Entries() when no such record exists. Lists are laid out in
// document order, so the labels segment is start-sorted and the lookup is
// a binary search over raw label records; like LabelAt it is a planning
// accessor and charges nothing.
func (l *ListFile) SeekStart(s int32) int {
	lo, hi := 0, l.entries
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int32(binary.LittleEndian.Uint32(l.labels.rec(int32(mid)))) < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// segs returns the present segments in persistence order: labels first,
// then pointer classes ascending.
func (l *ListFile) segs() []*segment {
	out := make([]*segment, 0, 1+numPtrSegs)
	if l.labels.present() {
		out = append(out, &l.labels)
	}
	for i := range l.ptrs {
		if l.ptrs[i].present() {
			out = append(out, &l.ptrs[i])
		}
	}
	return out
}

// segMask returns the presence bitmap of the pointer segments (bit i set
// when pointer class i is materialized).
func (l *ListFile) segMask() uint16 {
	var m uint16
	for i := range l.ptrs {
		if l.ptrs[i].present() {
			m |= 1 << i
		}
	}
	return m
}

// buildListFiles serializes every list of m in one pass: the views layer's
// pointer positions are already record offsets, so records are emitted
// directly with the scheme's pointer policy applied inline — no
// intermediate reduced copy, no location resolution.
func buildListFiles(m *views.Materialized, kind Kind, pageSize int) ([]*ListFile, error) {
	if labelBytes > pageSize {
		return nil, fmt.Errorf("store: record size %d exceeds page size %d", labelBytes, pageSize)
	}
	nq := m.View.Size()
	files := make([]*ListFile, nq)
	for q := 0; q < nq; q++ {
		list := m.Lists[q]
		childCount := len(m.View.Nodes[q].Children)
		if childCount > MaxChildren {
			return nil, fmt.Errorf("store: view node %d has %d children; record format supports %d",
				q, childCount, MaxChildren)
		}
		lf := &ListFile{
			kind:       kind,
			pageSize:   pageSize,
			childCount: childCount,
			scoped:     m.View.Nodes[q].Parent != -1,
			entries:    len(list),
		}
		lf.labels = newSegment(len(list), labelBytes, pageSize)
		for i := range list {
			rec := lf.labels.rec(int32(i))
			binary.LittleEndian.PutUint32(rec[0:], uint32(list[i].Start))
			binary.LittleEndian.PutUint32(rec[4:], uint32(list[i].End))
			binary.LittleEndian.PutUint32(rec[8:], uint32(list[i].Level))
		}
		if kind != Element {
			lf.fillPtrSeg(segFollowing, len(list), func(i int) int32 {
				return reduce(kind, list[i].Following, int32(i))
			})
			lf.fillPtrSeg(segDescendant, len(list), func(i int) int32 {
				return reduce(kind, list[i].Descendant, int32(i))
			})
			for ci := 0; ci < childCount; ci++ {
				ci := ci
				lf.fillPtrSeg(segChild0+ci, len(list), func(i int) int32 {
					return list[i].Children[ci]
				})
			}
		}
		files[q] = lf
	}
	return files, nil
}

// reduce applies the LEp heuristic (§III-C) to a following/descendant
// position: the pointer is kept only when the pointed record is more than
// one entry away. Linked keeps every pointer.
func reduce(kind Kind, pos, i int32) int32 {
	if kind == LinkedPartial && pos != views.NoPointer && pos <= i+1 {
		return views.NoPointer
	}
	return pos
}

// fillPtrSeg materializes one pointer class as a flat int32 segment. A
// class with no non-null pointer occupies no segment.
func (l *ListFile) fillPtrSeg(class, entries int, val func(i int) int32) {
	present := false
	for i := 0; i < entries; i++ {
		if val(i) != views.NoPointer {
			present = true
			break
		}
	}
	if !present {
		return
	}
	l.ptrs[class] = newSegment(entries, ptrBytes, l.pageSize)
	for i := 0; i < entries; i++ {
		v := val(i)
		binary.LittleEndian.PutUint32(l.ptrs[class].rec(int32(i)), uint32(v))
		if v != views.NoPointer {
			l.pointers++
		}
	}
}
