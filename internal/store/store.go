// Package store implements the paper's four physical storage schemes for
// materialized TPQ views as simulated paged files:
//
//   - Tuple (T): each view match stored as an n-tuple of region labels,
//     sorted by composite start key (InterJoin's scheme, §I).
//   - Element (E): one list per view node holding the solution nodes'
//     region labels in document order, no pointers.
//   - Linked-element (LE): element lists plus materialized child,
//     descendant and following pointers encoding the conceptual DAG
//     (§III-A/B). Pointers are (page, byte-offset) pairs, as in the paper.
//   - Partial linked-element (LEp): LE with the §III-C heuristic — child
//     pointers always materialized; following/descendant pointers only when
//     the pointed node is more than one entry away.
//
// Files are sequences of fixed-size pages; records never span pages. All
// reads go through cursors that account elements scanned and page fetches
// into counters.Counters.
package store

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
)

// Kind identifies a storage scheme.
type Kind int8

const (
	// Tuple is InterJoin's n-tuple scheme (T).
	Tuple Kind = iota
	// Element is the per-type list scheme without pointers (E).
	Element
	// Linked is the linked-element scheme with all pointers (LE).
	Linked
	// LinkedPartial is the partially materialized variant (LEp).
	LinkedPartial
)

// String names the scheme as in the paper's tables.
func (k Kind) String() string {
	switch k {
	case Tuple:
		return "T"
	case Element:
		return "E"
	case Linked:
		return "LE"
	case LinkedPartial:
		return "LEp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Policy returns the pointer policy that produces this scheme's content.
func (k Kind) Policy() views.PointerPolicy {
	switch k {
	case Linked:
		return views.FullPointers
	case LinkedPartial:
		return views.PartialPointers
	default:
		return views.NoPointers
	}
}

// DefaultPageSize is the page size used when 0 is passed to Build.
const DefaultPageSize = 4096

// Pointer addresses a record as a (page, byte offset) pair within a list
// file, exactly as stored on disk (§III-B).
type Pointer struct {
	Page int32
	Off  uint16
}

// NilPointer is the null pointer.
var NilPointer = Pointer{Page: -1}

// IsNil reports whether p is the null pointer.
func (p Pointer) IsNil() bool { return p.Page < 0 }

// flag bits for LE/LEp records: which pointers follow the header.
const (
	flagFollowing  = 1 << 0
	flagDescendant = 1 << 1
	flagChild0     = 2 // child i uses bit flagChild0+i
)

// MaxChildren is the maximum number of child pointers per view node the
// record format supports (6 child-presence bits remain in the flags byte).
const MaxChildren = 6

const (
	headerBytes  = 12 // start, end, level
	pointerBytes = 6  // page(4) + offset(2)
)

var tokenSeq atomic.Uintptr

// ViewStore is one materialized view laid out on simulated disk in a given
// scheme. Element-family schemes populate Lists (one file per view node);
// the tuple scheme populates Tuples.
type ViewStore struct {
	Kind     Kind
	View     *tpq.Pattern
	PageSize int
	Lists    []*ListFile
	Tuples   *TupleFile
}

// Build lays out the materialized view m in the given scheme. For LE/LEp it
// uses m's pointers reduced per the scheme's policy; Element drops them;
// Tuple serializes m.Matches(). pageSize 0 means DefaultPageSize.
func Build(m *views.Materialized, kind Kind, pageSize int) (*ViewStore, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	s := &ViewStore{Kind: kind, View: m.View, PageSize: pageSize}
	if kind == Tuple {
		tf, err := buildTupleFile(m, pageSize)
		if err != nil {
			return nil, err
		}
		s.Tuples = tf
		return s, nil
	}
	mm := m.ApplyPolicy(kind.Policy())
	lists, err := buildListFiles(mm, kind, pageSize)
	if err != nil {
		return nil, err
	}
	s.Lists = lists
	return s, nil
}

// MustBuild is Build but panics on error.
func MustBuild(m *views.Materialized, kind Kind, pageSize int) *ViewStore {
	s, err := Build(m, kind, pageSize)
	if err != nil {
		panic(err)
	}
	return s
}

// SizeBytes returns the on-disk size in page-granular bytes.
func (s *ViewStore) SizeBytes() int64 {
	var n int64
	for _, l := range s.Lists {
		n += int64(len(l.pages)) * int64(s.PageSize)
	}
	if s.Tuples != nil {
		n += int64(len(s.Tuples.pages)) * int64(s.PageSize)
	}
	return n
}

// PayloadBytes returns the number of record bytes actually written,
// excluding page padding.
func (s *ViewStore) PayloadBytes() int64 {
	var n int64
	for _, l := range s.Lists {
		for _, u := range l.pageUsed {
			n += int64(u)
		}
	}
	if s.Tuples != nil {
		for _, u := range s.Tuples.pageUsed {
			n += int64(u)
		}
	}
	return n
}

// NumPointers returns the number of materialized (non-null) pointers.
func (s *ViewStore) NumPointers() int {
	n := 0
	for _, l := range s.Lists {
		n += l.pointers
	}
	return n
}

// TotalEntries returns the total record count across lists (or tuples).
func (s *ViewStore) TotalEntries() int {
	if s.Tuples != nil {
		return s.Tuples.entries
	}
	n := 0
	for _, l := range s.Lists {
		n += l.entries
	}
	return n
}

// ListFile is one on-disk list of records for a single view node.
type ListFile struct {
	kind       Kind
	pageSize   int
	childCount int  // child pointers per record
	scoped     bool // following pointers are scoped to a parent view node
	pages      [][]byte
	pageUsed   []uint16
	entries    int
	pointers   int
	token      uintptr
}

// Entries returns the number of records in the list.
func (l *ListFile) Entries() int { return l.entries }

// Scoped reports whether this list's following pointers carry the
// same-lowest-parent-ancestor constraint (§III-A), i.e. the view node has a
// parent in its view. Unscoped following pointers may always be followed;
// scoped ones only under the safe-jump rule (see engine/viewjoin).
func (l *ListFile) Scoped() bool { return l.scoped }

// buildListFiles serializes every list of mm. Two passes across all lists:
// the first computes each record's (page, offset) location (record sizes
// are known up front), the second encodes records with pointer positions —
// including cross-list child pointers — resolved to locations.
func buildListFiles(mm *views.Materialized, kind Kind, pageSize int) ([]*ListFile, error) {
	nq := mm.View.Size()
	files := make([]*ListFile, nq)
	locs := make([][]Pointer, nq) // per list, per entry

	recSize := func(e *views.Entry) int {
		if kind == Element {
			return headerBytes
		}
		n := headerBytes + 1
		if e.Following != views.NoPointer {
			n += pointerBytes
		}
		if e.Descendant != views.NoPointer {
			n += pointerBytes
		}
		for _, c := range e.Children {
			if c != views.NoPointer {
				n += pointerBytes
			}
		}
		return n
	}

	// Pass 1: place records of every list.
	for q := 0; q < nq; q++ {
		list := mm.Lists[q]
		childCount := len(mm.View.Nodes[q].Children)
		if childCount > MaxChildren {
			return nil, fmt.Errorf("store: view node %d has %d children; record format supports %d",
				q, childCount, MaxChildren)
		}
		lf := &ListFile{
			kind:       kind,
			pageSize:   pageSize,
			childCount: childCount,
			scoped:     mm.View.Nodes[q].Parent != -1,
			entries:    len(list),
			token:      tokenSeq.Add(1),
		}
		locs[q] = make([]Pointer, len(list))
		page, off := int32(0), 0
		for i := range list {
			sz := recSize(&list[i])
			if sz > pageSize {
				return nil, fmt.Errorf("store: record size %d exceeds page size %d", sz, pageSize)
			}
			if off+sz > pageSize {
				page++
				off = 0
			}
			locs[q][i] = Pointer{Page: page, Off: uint16(off)}
			off += sz
		}
		numPages := 0
		if len(list) > 0 {
			numPages = int(page) + 1
		}
		lf.pages = make([][]byte, numPages)
		for i := range lf.pages {
			lf.pages[i] = make([]byte, pageSize)
		}
		lf.pageUsed = make([]uint16, numPages)
		files[q] = lf
	}

	// Pass 2: encode.
	for q := 0; q < nq; q++ {
		lf := files[q]
		list := mm.Lists[q]
		resolve := func(target int, pos int32) Pointer {
			if pos == views.NoPointer {
				return NilPointer
			}
			return locs[target][pos]
		}
		for i := range list {
			e := &list[i]
			loc := locs[q][i]
			buf := lf.pages[loc.Page][loc.Off:]
			binary.LittleEndian.PutUint32(buf[0:], uint32(e.Start))
			binary.LittleEndian.PutUint32(buf[4:], uint32(e.End))
			binary.LittleEndian.PutUint32(buf[8:], uint32(e.Level))
			n := headerBytes
			if kind != Element {
				flags := byte(0)
				n++ // flags byte written below, after pointers are known
				put := func(p Pointer) {
					binary.LittleEndian.PutUint32(buf[n:], uint32(p.Page))
					binary.LittleEndian.PutUint16(buf[n+4:], p.Off)
					n += pointerBytes
					lf.pointers++
				}
				if e.Following != views.NoPointer {
					flags |= flagFollowing
					put(resolve(q, e.Following))
				}
				if e.Descendant != views.NoPointer {
					flags |= flagDescendant
					put(resolve(q, e.Descendant))
				}
				for ci, c := range e.Children {
					if c != views.NoPointer {
						flags |= 1 << (flagChild0 + ci)
						put(resolve(mm.View.Nodes[q].Children[ci], c))
					}
				}
				buf[headerBytes] = flags
			}
			if used := int(loc.Off) + n; used > int(lf.pageUsed[loc.Page]) {
				lf.pageUsed[loc.Page] = uint16(used)
			}
		}
	}
	return files, nil
}
