package store

import (
	"bytes"
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/xmltree"
)

// fragmentOf builds a small single-root fragment of the given labels.
func fragmentOf(t testing.TB, root string, leaves ...string) *xmltree.Document {
	t.Helper()
	b := xmltree.NewBuilder()
	b.Element(root, func() {
		for _, l := range leaves {
			b.Leaf(l)
		}
	})
	return b.MustDocument()
}

func storeBytes(t testing.TB, s *ViewStore) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

func buildOver(t testing.TB, d *xmltree.Document, pat string, kind Kind, pageSize int) *ViewStore {
	t.Helper()
	return MustBuild(views.MustMaterialize(d, tpq.MustParse(pat)), kind, pageSize)
}

// TestSpliceMatchesRebuild checks the COW label splice against a
// from-scratch build over the updated document, for every scheme: after an
// update that touches no view-type node, Splice must produce byte-identical
// persisted output while sharing every clean page with the predecessor,
// and cursors over the spliced store must decode the shifted labels.
func TestSpliceMatchesRebuild(t *testing.T) {
	d := wideDoc(t, 40) // 80 b-entries: several pages per segment at 64B
	// Insert a foreign-labelled fragment before a middle 'a' subtree: no
	// 'a' or 'b' node appears or disappears, so the spliced store must
	// equal a rebuild — with the labels after the splice point shifted and
	// the pages before it shared.
	au, err := d.Apply(xmltree.Update{
		Op:       xmltree.OpInsertBefore,
		Target:   1 + 3*20, // the 21st 'a' subtree
		Fragment: fragmentOf(t, "x", "y", "y"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{Tuple, Element, Linked, LinkedPartial} {
		const pageSize = 64
		old := buildOver(t, d, "//a//b", kind, pageSize)
		oldBytes := storeBytes(t, old)
		next := Splice(old, au.Pivot, au.Delta)
		want := buildOver(t, au.New, "//a//b", kind, pageSize)
		if err := CheckEquivalent(next, want); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if got := storeBytes(t, next); !bytes.Equal(got, storeBytes(t, want)) {
			t.Fatalf("%v: spliced store bytes differ from rebuild", kind)
		}
		// The predecessor is untouched and shares its clean pages.
		if got := storeBytes(t, old); !bytes.Equal(got, oldBytes) {
			t.Fatalf("%v: splice mutated the base store", kind)
		}
		shared, total := PageSharing(next, old)
		if shared == 0 || shared >= total {
			t.Fatalf("%v: page sharing %d/%d, want partial sharing", kind, shared, total)
		}
		// Cursor reads over the COW form decode the remapped labels.
		var c counters.Counters
		io := counters.NewIO(&c, 0)
		cur := next.Sources()[len(next.Sources())-1].OpenCursor(io, nil, -1)
		for i := 0; cur.Valid(); cur.Next() {
			i++
			if i > next.TotalEntries() {
				t.Fatalf("%v: cursor overran", kind)
			}
		}
		// A flatten of the COW store is the clean container again.
		if got := storeBytes(t, Flatten(next)); !bytes.Equal(got, storeBytes(t, want)) {
			t.Fatalf("%v: flattened store bytes differ from rebuild", kind)
		}
	}
}

// TestOverlayChainAndCompaction drives an overlay through a chain of
// foreign-fragment updates: every head must match a from-scratch rebuild,
// the delta list must grow in order, and compaction must flatten back to a
// clean container byte-identical to the rebuild with the chain reset.
func TestOverlayChainAndCompaction(t *testing.T) {
	d := wideDoc(t, 30)
	old := buildOver(t, d, "//a//b", LinkedPartial, 64)
	ov := NewOverlay(old)
	if ov.Current() != old || ov.Base() != old {
		t.Fatal("fresh overlay must point at its store")
	}
	compacted := false
	expect := 0
	for i := 0; i < compactMaxDeltas+1; i++ {
		au, err := d.Apply(xmltree.Update{
			Op:       xmltree.OpAppendChild,
			Target:   xmltree.NodeID(i % d.NumNodes()),
			Fragment: fragmentOf(t, "x", "y"),
		})
		if err != nil {
			t.Fatal(err)
		}
		next := Splice(ov.Current(), au.Pivot, au.Delta)
		ov.Install(next, Delta{Epoch: uint64(i + 1), Pivot: au.Pivot, Shift: au.Delta})
		expect++
		if got := len(ov.Deltas()); got != expect {
			t.Fatalf("after %d installs: %d deltas, want %d", i+1, got, expect)
		}
		if ov.Current() != next {
			t.Fatal("Install must advance the head")
		}
		d = au.New
		want := buildOver(t, d, "//a//b", LinkedPartial, 64)
		if got := storeBytes(t, ov.Current()); !bytes.Equal(got, storeBytes(t, want)) {
			t.Fatalf("epoch %d: overlay head differs from rebuild", i+1)
		}
		if ov.ShouldCompact() {
			c := ov.Compact()
			compacted = true
			expect = 0
			if ov.Base() != c || ov.Current() != c || len(ov.Deltas()) != 0 {
				t.Fatal("Compact must reset the chain")
			}
			if got := storeBytes(t, c); !bytes.Equal(got, storeBytes(t, want)) {
				t.Fatalf("epoch %d: compacted store differs from rebuild", i+1)
			}
			priv, _ := ov.PrivatePages()
			if priv != 0 {
				t.Fatalf("compacted overlay has %d private pages", priv)
			}
		}
	}
	if !compacted {
		t.Fatalf("chain of %d deltas never compacted", compactMaxDeltas+1)
	}
}

// TestSharePagesDedupesRebuild checks that a freshly built store over an
// equal document re-aliases onto its predecessor page by page.
func TestSharePagesDedupesRebuild(t *testing.T) {
	d := wideDoc(t, 40)
	base := buildOver(t, d, "//a//b", Linked, 64)
	fresh := buildOver(t, d, "//a//b", Linked, 64)
	before, total := PageSharing(fresh, base)
	if before != 0 {
		t.Fatalf("fresh build shares %d pages before SharePages", before)
	}
	n := SharePages(fresh, base)
	if n != total {
		t.Fatalf("SharePages shared %d of %d identical pages", n, total)
	}
	shared, _ := PageSharing(fresh, base)
	if shared != total {
		t.Fatalf("sharing %d/%d after SharePages", shared, total)
	}
	if err := CheckEquivalent(fresh, base); err != nil {
		t.Fatal(err)
	}
}

// TestCheckEquivalentDetects exercises the divergence detectors backing
// the maintenance verification spine.
func TestCheckEquivalentDetects(t *testing.T) {
	d := wideDoc(t, 10)
	a := buildOver(t, d, "//a//b", Linked, 64)
	if err := CheckEquivalent(a, buildOver(t, d, "//a//b", Element, 64)); err == nil {
		t.Fatal("kind mismatch undetected")
	}
	d2 := wideDoc(t, 11)
	if err := CheckEquivalent(a, buildOver(t, d2, "//a//b", Linked, 64)); err == nil {
		t.Fatal("content mismatch undetected")
	}
	ta := buildOver(t, d, "//a//b", Tuple, 64)
	if err := CheckEquivalent(ta, a); err == nil {
		t.Fatal("tuple/list mismatch undetected")
	}
	if err := CheckEquivalent(ta, buildOver(t, d2, "//a//b", Tuple, 64)); err == nil {
		t.Fatal("tuple entry mismatch undetected")
	}
	if err := CheckEquivalent(a, a); err != nil {
		t.Fatal(err)
	}
}
