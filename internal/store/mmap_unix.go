//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared: the mapping is a
// window onto the page cache, so N processes (or N tenants in one
// process) serving the same container file share one set of physical
// pages. The descriptor may be closed after mapping; the mapping
// persists until munmap.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
