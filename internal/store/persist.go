package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"viewjoin/internal/counters"
	"viewjoin/internal/tpq"
)

// On-disk container format for a materialized view store:
//
//	magic "VJST", version byte, kind byte, pageSize u32,
//	pattern nodes (count u16, then per node: label, axis, parent index),
//	then either the tuple file or the list files, each as
//	  header fields + pageUsed[] + raw pages.
//
// The format is independent of host byte order (little-endian throughout)
// and self-contained: the view pattern is encoded structurally so node
// indices — which key the list files — survive exactly. It does not embed
// the document: a loaded store is only meaningful against the same
// document it was built from (the public API records a fingerprint).
const (
	persistMagic   = "VJST"
	persistVersion = 1
)

// WriteTo serializes the store. It implements io.WriterTo.
func (s *ViewStore) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v any) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}
	cw.WriteString(persistMagic)
	write(uint8(persistVersion))
	write(uint8(s.Kind))
	write(uint32(s.PageSize))
	// The pattern is encoded structurally (label, axis, parent per node) so
	// that node indices — which the list files are keyed by — survive
	// exactly, even for patterns not in parser-normalized order.
	write(uint16(s.View.Size()))
	for i := range s.View.Nodes {
		n := &s.View.Nodes[i]
		write(uint16(len(n.Label)))
		cw.WriteString(n.Label)
		write(uint8(n.Axis))
		write(int16(n.Parent))
	}

	if s.Kind == Tuple {
		write(uint32(s.Tuples.arity))
		write(uint32(s.Tuples.entries))
		writePages(cw, write, s.Tuples.pages, s.Tuples.pageUsed)
	} else {
		write(uint32(len(s.Lists)))
		for _, l := range s.Lists {
			write(uint8(l.childCount))
			write(boolByte(l.scoped))
			write(uint32(l.entries))
			write(uint32(l.pointers))
			writePages(cw, write, l.pages, l.pageUsed)
		}
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

func writePages(cw *countingWriter, write func(any), pages [][]byte, used []uint16) {
	write(uint32(len(pages)))
	write(used)
	for _, p := range pages {
		if cw.err == nil {
			_, cw.err = cw.Write(p)
		}
	}
}

// ReadViewStore deserializes a store written by WriteTo.
func ReadViewStore(r io.Reader) (*ViewStore, error) {
	br := bufio.NewReader(r)
	read := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: read header: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("store: bad magic %q", magic)
	}
	var version, kind uint8
	var pageSize uint32
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != persistVersion {
		return nil, fmt.Errorf("store: unsupported version %d", version)
	}
	if err := read(&kind); err != nil {
		return nil, err
	}
	if Kind(kind) < Tuple || Kind(kind) > LinkedPartial {
		return nil, fmt.Errorf("store: bad kind %d", kind)
	}
	if err := read(&pageSize); err != nil {
		return nil, err
	}
	if pageSize == 0 || pageSize > 1<<20 {
		return nil, fmt.Errorf("store: bad page size %d", pageSize)
	}
	var numNodes uint16
	if err := read(&numNodes); err != nil {
		return nil, err
	}
	if numNodes == 0 || numNodes > 1024 {
		return nil, fmt.Errorf("store: implausible pattern size %d", numNodes)
	}
	pat := &tpq.Pattern{Nodes: make([]tpq.Node, numNodes)}
	for i := range pat.Nodes {
		var labelLen uint16
		if err := read(&labelLen); err != nil {
			return nil, err
		}
		label := make([]byte, labelLen)
		if _, err := io.ReadFull(br, label); err != nil {
			return nil, err
		}
		var axis uint8
		var parent int16
		if err := read(&axis); err != nil {
			return nil, err
		}
		if err := read(&parent); err != nil {
			return nil, err
		}
		pat.Nodes[i] = tpq.Node{Label: string(label), Axis: tpq.Axis(axis), Parent: int(parent)}
		if parent >= 0 {
			if int(parent) >= i {
				return nil, fmt.Errorf("store: pattern node %d has forward parent %d", i, parent)
			}
			pat.Nodes[parent].Children = append(pat.Nodes[parent].Children, i)
		}
	}
	if err := pat.Validate(); err != nil {
		return nil, fmt.Errorf("store: stored pattern: %w", err)
	}

	s := &ViewStore{Kind: Kind(kind), View: pat, PageSize: int(pageSize)}
	if s.Kind == Tuple {
		var arity, entries uint32
		if err := read(&arity); err != nil {
			return nil, err
		}
		if err := read(&entries); err != nil {
			return nil, err
		}
		if int(arity) != pat.Size() {
			return nil, fmt.Errorf("store: tuple arity %d for %d-node pattern", arity, pat.Size())
		}
		pages, used, err := readPages(br, read, int(pageSize))
		if err != nil {
			return nil, err
		}
		s.Tuples = &TupleFile{
			pageSize: int(pageSize),
			arity:    int(arity),
			entries:  int(entries),
			pages:    pages,
			pageUsed: used,
			token:    tokenSeq.Add(1),
		}
		return s, nil
	}

	var numLists uint32
	if err := read(&numLists); err != nil {
		return nil, err
	}
	if int(numLists) != pat.Size() {
		return nil, fmt.Errorf("store: %d lists for %d-node pattern", numLists, pat.Size())
	}
	s.Lists = make([]*ListFile, numLists)
	for i := range s.Lists {
		var childCount, scoped uint8
		var entries, pointers uint32
		if err := read(&childCount); err != nil {
			return nil, err
		}
		if err := read(&scoped); err != nil {
			return nil, err
		}
		if err := read(&entries); err != nil {
			return nil, err
		}
		if err := read(&pointers); err != nil {
			return nil, err
		}
		if int(childCount) != len(pat.Nodes[i].Children) {
			return nil, fmt.Errorf("store: list %d has %d child pointers for %d pattern children",
				i, childCount, len(pat.Nodes[i].Children))
		}
		pages, used, err := readPages(br, read, int(pageSize))
		if err != nil {
			return nil, err
		}
		s.Lists[i] = &ListFile{
			kind:       s.Kind,
			pageSize:   int(pageSize),
			childCount: int(childCount),
			scoped:     scoped != 0,
			entries:    int(entries),
			pointers:   int(pointers),
			pages:      pages,
			pageUsed:   used,
			token:      tokenSeq.Add(1),
		}
	}
	if err := s.validatePointers(); err != nil {
		return nil, err
	}
	return s, nil
}

// validatePointers walks every loaded record and checks that each
// materialized pointer addresses a record inside its target list, so that
// following a pointer from a corrupted or hostile file can never read out
// of bounds at evaluation time. Structurally broken records (truncated
// mid-pointer) surface as a decode panic, which is converted to an error.
func (s *ViewStore) validatePointers() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("store: corrupt record data: %v", r)
		}
	}()
	inBounds := func(l *ListFile, p Pointer) bool {
		if p.IsNil() {
			return true
		}
		return int(p.Page) < len(l.pages) && p.Off < l.pageUsed[p.Page]
	}
	var c counters.Counters
	io := counters.NewIO(&c, -1)
	for q, l := range s.Lists {
		children := s.View.Nodes[q].Children
		n := 0
		for cur := l.Open(io); cur.Valid(); cur.Next() {
			it := cur.Item()
			if !inBounds(l, it.Following) || !inBounds(l, it.Descendant) {
				return fmt.Errorf("store: list %d record %d: pointer out of bounds", q, n)
			}
			for ci := range children {
				if !inBounds(s.Lists[children[ci]], it.Children[ci]) {
					return fmt.Errorf("store: list %d record %d child %d: pointer out of bounds", q, n, ci)
				}
			}
			n++
		}
		if n != l.entries {
			return fmt.Errorf("store: list %d decodes to %d records, header says %d", q, n, l.entries)
		}
	}
	return nil
}

func readPages(br io.Reader, read func(any) error, pageSize int) ([][]byte, []uint16, error) {
	var numPages uint32
	if err := read(&numPages); err != nil {
		return nil, nil, err
	}
	if numPages > 1<<24 {
		return nil, nil, fmt.Errorf("store: implausible page count %d", numPages)
	}
	used := make([]uint16, numPages)
	if err := read(used); err != nil {
		return nil, nil, err
	}
	pages := make([][]byte, numPages)
	for i := range pages {
		pages[i] = make([]byte, pageSize)
		if _, err := io.ReadFull(br, pages[i]); err != nil {
			return nil, nil, err
		}
		if int(used[i]) > pageSize {
			return nil, nil, fmt.Errorf("store: page %d used %d > page size %d", i, used[i], pageSize)
		}
	}
	return pages, used, nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func (c *countingWriter) WriteString(s string) {
	if c.err == nil {
		_, c.err = io.WriteString(c, s)
	}
}
