package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"viewjoin/internal/tpq"
)

// On-disk container format (version 2) for a materialized view store:
//
//	magic "VJST", version byte, kind byte, pageSize u32,
//	pattern nodes (count u16, then per node: label, axis, parent index),
//	then the body header — tuple: arity u32, entries u32;
//	lists: count u32, per list {childCount u8, scoped u8, entries u32,
//	pointers u32, segMask u16} —
//	zero padding to the next page boundary,
//	then every segment's pages verbatim, in file order (per list: labels,
//	then present pointer classes ascending; segMask bit i set means
//	pointer class i has a segment).
//
// Segment lengths are fully derived from the header (entries, record
// width, page size), so the body carries no per-segment framing: loading
// slices each segment straight out of the input buffer with no per-record
// decoding, and the padding keeps every segment page-aligned in the file —
// the bytes on disk are the runtime representation (mmap-ready). The
// format is independent of host byte order (little-endian throughout) and
// self-contained: the view pattern is encoded structurally so node indices
// — which key the list files — survive exactly. It does not embed the
// document: a loaded store is only meaningful against the same document it
// was built from (the public API records a fingerprint).
const (
	persistMagic   = "VJST"
	persistVersion = 2
)

// maxEntries caps per-file record counts on load; far above any real
// workload, it bounds allocation from hostile headers.
const maxEntries = 1 << 27

// WriteTo serializes the store. It implements io.WriterTo.
func (s *ViewStore) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v any) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}
	cw.WriteString(persistMagic)
	write(uint8(persistVersion))
	write(uint8(s.Kind))
	write(uint32(s.PageSize))
	// The pattern is encoded structurally (label, axis, parent per node) so
	// that node indices — which the list files are keyed by — survive
	// exactly, even for patterns not in parser-normalized order.
	write(uint16(s.View.Size()))
	for i := range s.View.Nodes {
		n := &s.View.Nodes[i]
		write(uint16(len(n.Label)))
		cw.WriteString(n.Label)
		write(uint8(n.Axis))
		write(int16(n.Parent))
	}

	var segments []*segment
	if s.Kind == Tuple {
		write(uint32(s.Tuples.arity))
		write(uint32(s.Tuples.entries))
		segments = s.Tuples.segs()
	} else {
		write(uint32(len(s.Lists)))
		for _, l := range s.Lists {
			write(uint8(l.childCount))
			write(boolByte(l.scoped))
			write(uint32(l.entries))
			write(uint32(l.pointers))
			write(l.segMask())
			segments = append(segments, l.segs()...)
		}
	}
	// Pad the header to a page boundary so every segment is page-aligned in
	// the file.
	if pad := (s.PageSize - int(cw.n)%s.PageSize) % s.PageSize; pad > 0 && cw.err == nil {
		_, cw.err = cw.Write(make([]byte, pad))
	}
	for _, seg := range segments {
		for p := 0; p < seg.pages() && cw.err == nil; p++ {
			_, cw.err = cw.Write(seg.pageBytes(p))
		}
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// ReadViewStore deserializes a store written by WriteTo. It reads the
// stream fully and then adopts the buffer via ReadViewStoreBytes; callers
// that already hold the file bytes should call ReadViewStoreBytes directly
// to skip the copy.
func ReadViewStore(r io.Reader) (*ViewStore, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: read: %w", err)
	}
	return ReadViewStoreBytes(data)
}

// ReadViewStoreBytes deserializes a store from an in-memory (or memory-
// mapped) file image without copying or decoding records: after header
// validation, each flat segment is a slice of data, shared immutably. The
// caller must not mutate data afterwards. Pointer segments are verified to
// address only records inside their target lists, so following a pointer
// from a corrupted or hostile file can never read out of bounds at
// evaluation time.
func ReadViewStoreBytes(data []byte) (*ViewStore, error) {
	rd := &sliceReader{data: data}

	magic := rd.bytes(4, "magic")
	if rd.err != nil {
		return nil, rd.err
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("store: bad magic %q", magic)
	}
	version := rd.u8("version")
	if rd.err == nil && version != persistVersion {
		return nil, fmt.Errorf("store: unsupported version %d", version)
	}
	kind := Kind(rd.u8("kind"))
	if rd.err == nil && (kind < Tuple || kind > LinkedPartial) {
		return nil, fmt.Errorf("store: bad kind %d", kind)
	}
	pageSize := int(rd.u32("page size"))
	if rd.err != nil {
		return nil, rd.err
	}
	if pageSize < labelBytes || pageSize > 1<<20 {
		return nil, fmt.Errorf("store: bad page size %d", pageSize)
	}
	pat, err := readPattern(rd)
	if err != nil {
		return nil, err
	}

	s := &ViewStore{Kind: kind, View: pat, PageSize: pageSize}
	if kind == Tuple {
		return readTupleBody(rd, s)
	}
	return readListBody(rd, s)
}

func readPattern(rd *sliceReader) (*tpq.Pattern, error) {
	numNodes := int(rd.u16("pattern size"))
	if rd.err != nil {
		return nil, rd.err
	}
	if numNodes == 0 || numNodes > 1024 {
		return nil, fmt.Errorf("store: implausible pattern size %d", numNodes)
	}
	pat := &tpq.Pattern{Nodes: make([]tpq.Node, numNodes)}
	for i := range pat.Nodes {
		labelLen := int(rd.u16("label length"))
		label := rd.bytes(labelLen, "label")
		axis := rd.u8("axis")
		parent := int16(rd.u16("parent"))
		if rd.err != nil {
			return nil, rd.err
		}
		pat.Nodes[i] = tpq.Node{Label: string(label), Axis: tpq.Axis(axis), Parent: int(parent)}
		if parent >= 0 {
			if int(parent) >= i {
				return nil, fmt.Errorf("store: pattern node %d has forward parent %d", i, parent)
			}
			pat.Nodes[parent].Children = append(pat.Nodes[parent].Children, i)
		}
	}
	if err := pat.Validate(); err != nil {
		return nil, fmt.Errorf("store: stored pattern: %w", err)
	}
	return pat, nil
}

func readTupleBody(rd *sliceReader, s *ViewStore) (*ViewStore, error) {
	arity := int(rd.u32("tuple arity"))
	entries := int(rd.u32("tuple entries"))
	if rd.err != nil {
		return nil, rd.err
	}
	if arity != s.View.Size() {
		return nil, fmt.Errorf("store: tuple arity %d for %d-node pattern", arity, s.View.Size())
	}
	if entries > maxEntries {
		return nil, fmt.Errorf("store: implausible tuple count %d", entries)
	}
	recSize := arity * labelBytes
	if recSize > s.PageSize {
		return nil, fmt.Errorf("store: tuple record size %d exceeds page size %d", recSize, s.PageSize)
	}
	rd.pad(s.PageSize)
	f := &TupleFile{arity: arity, entries: entries}
	f.seg = adopt(rd.bytes(int(segBytes(entries, recSize, s.PageSize)), "tuple segment"),
		recSize, s.PageSize)
	if rd.err != nil {
		return nil, rd.err
	}
	if err := rd.end(); err != nil {
		return nil, err
	}
	s.Tuples = f
	return s, nil
}

// listHeader is one list's decoded body-header entry.
type listHeader struct {
	childCount int
	scoped     bool
	entries    int
	pointers   int
	segMask    uint16
}

func readListBody(rd *sliceReader, s *ViewStore) (*ViewStore, error) {
	pat := s.View
	numLists := int(rd.u32("list count"))
	if rd.err != nil {
		return nil, rd.err
	}
	if numLists != pat.Size() {
		return nil, fmt.Errorf("store: %d lists for %d-node pattern", numLists, pat.Size())
	}
	hdrs := make([]listHeader, numLists)
	for i := range hdrs {
		h := listHeader{
			childCount: int(rd.u8("child count")),
			scoped:     rd.u8("scoped flag") != 0,
			entries:    int(rd.u32("list entries")),
			pointers:   int(rd.u32("pointer count")),
			segMask:    rd.u16("segment mask"),
		}
		if rd.err != nil {
			return nil, rd.err
		}
		if h.childCount != len(pat.Nodes[i].Children) {
			return nil, fmt.Errorf("store: list %d has %d child pointers for %d pattern children",
				i, h.childCount, len(pat.Nodes[i].Children))
		}
		if h.childCount > MaxChildren {
			return nil, fmt.Errorf("store: list %d child count %d exceeds %d", i, h.childCount, MaxChildren)
		}
		if h.entries > maxEntries {
			return nil, fmt.Errorf("store: implausible entry count %d in list %d", h.entries, i)
		}
		if s.Kind == Element && h.segMask != 0 {
			return nil, fmt.Errorf("store: element-scheme list %d declares pointer segments %#x", i, h.segMask)
		}
		if h.entries == 0 && h.segMask != 0 {
			return nil, fmt.Errorf("store: empty list %d declares pointer segments %#x", i, h.segMask)
		}
		if hi := h.segMask >> (segChild0 + h.childCount); hi != 0 {
			return nil, fmt.Errorf("store: list %d declares out-of-range pointer segments %#x", i, h.segMask)
		}
		hdrs[i] = h
	}
	rd.pad(s.PageSize)

	s.Lists = make([]*ListFile, numLists)
	for i, h := range hdrs {
		l := &ListFile{
			kind:       s.Kind,
			pageSize:   s.PageSize,
			childCount: h.childCount,
			scoped:     h.scoped,
			entries:    h.entries,
			pointers:   h.pointers,
		}
		l.labels = adopt(rd.bytes(int(segBytes(h.entries, labelBytes, s.PageSize)),
			fmt.Sprintf("list %d labels", i)), labelBytes, s.PageSize)
		for class := 0; class < numPtrSegs; class++ {
			if h.segMask&(1<<class) == 0 {
				continue
			}
			l.ptrs[class] = adopt(rd.bytes(int(segBytes(h.entries, ptrBytes, s.PageSize)),
				fmt.Sprintf("list %d pointer segment %d", i, class)), ptrBytes, s.PageSize)
		}
		if rd.err != nil {
			return nil, rd.err
		}
		s.Lists[i] = l
	}
	if err := rd.end(); err != nil {
		return nil, err
	}
	if err := s.validatePointers(); err != nil {
		return nil, err
	}
	return s, nil
}

// validatePointers checks every materialized pointer segment: each stored
// offset must be nil or address a record inside its target list, and the
// total non-nil count must match each list's header. The scan touches only
// the pointer segments — the labels stay undecoded, preserving the
// zero-copy load — and runs in one pass per segment.
func (s *ViewStore) validatePointers() error {
	for q, l := range s.Lists {
		children := s.View.Nodes[q].Children
		target := func(class int) int {
			if class >= segChild0 {
				return s.Lists[children[class-segChild0]].entries
			}
			return l.entries
		}
		nonNil := 0
		for class := 0; class < numPtrSegs; class++ {
			seg := &l.ptrs[class]
			if !seg.present() {
				continue
			}
			limit := int32(target(class))
			for i := int32(0); i < int32(l.entries); i++ {
				v := int32(binary.LittleEndian.Uint32(seg.rec(i)))
				if v == -1 {
					continue
				}
				if v < 0 || v >= limit {
					return fmt.Errorf("store: list %d record %d: pointer %d out of bounds [0,%d)",
						q, i, v, limit)
				}
				nonNil++
			}
		}
		if nonNil != l.pointers {
			return fmt.Errorf("store: list %d holds %d pointers, header says %d", q, nonNil, l.pointers)
		}
	}
	return nil
}

// sliceReader walks a byte buffer; short reads surface as
// io.ErrUnexpectedEOF-wrapped errors so the public persistence layer can
// fold them into ErrViewTruncated.
type sliceReader struct {
	data []byte
	off  int
	err  error
}

// bytes returns the next n bytes as a shared (not copied) sub-slice,
// capacity-capped so adopters cannot grow into neighbouring segments.
func (r *sliceReader) bytes(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = fmt.Errorf("store: truncated reading %s: %w", what, io.ErrUnexpectedEOF)
		return nil
	}
	b := r.data[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

func (r *sliceReader) u8(what string) uint8 {
	b := r.bytes(1, what)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *sliceReader) u16(what string) uint16 {
	b := r.bytes(2, what)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *sliceReader) u32(what string) uint32 {
	b := r.bytes(4, what)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// pad skips to the next page boundary (where the segments start).
func (r *sliceReader) pad(pageSize int) {
	if n := (pageSize - r.off%pageSize) % pageSize; n > 0 {
		r.bytes(n, "header padding")
	}
}

// end verifies the whole buffer was consumed.
func (r *sliceReader) end() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("store: %d trailing bytes after store body", len(r.data)-r.off)
	}
	return nil
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func (c *countingWriter) WriteString(s string) {
	if c.err == nil {
		_, c.err = io.WriteString(c, s)
	}
}
