package store

import (
	"encoding/binary"

	"viewjoin/internal/counters"
	"viewjoin/internal/obs"
)

// Item is one decoded record: a region label plus whatever pointers the
// record materializes. Absent pointers are NilPointer; for the Element
// scheme every pointer is absent.
type Item struct {
	Start, End, Level int32
	Following         Pointer
	Descendant        Pointer
	Children          [MaxChildren]Pointer
}

// Cursor is a forward cursor over a ListFile with random access via stored
// pointers. Every record decode is charged as one element scanned, and
// page accesses are charged through the IO buffer pool.
type Cursor struct {
	f         *ListFile
	io        *counters.IO
	tr        obs.Tracer // nil when tracing is off
	node      int32      // query node for event attribution (-1 untraced)
	page      int32
	off       uint16
	size      int // byte size of the current record
	item      Item
	valid     bool
	lastTouch int32 // last page charged to the pool, -1 initially
}

// Open returns a cursor positioned at the first record (invalid for an
// empty list).
func (l *ListFile) Open(io *counters.IO) *Cursor {
	return l.OpenTraced(io, nil, -1)
}

// OpenTraced is Open with an optional tracer: every record decode emits an
// EvScan and every sequential advance an EvCursorAdvance attributed to the
// given query node. A nil tracer is exactly Open.
func (l *ListFile) OpenTraced(io *counters.IO, tr obs.Tracer, node int) *Cursor {
	c := &Cursor{f: l, io: io, tr: tr, node: int32(node), lastTouch: -1}
	if l.entries == 0 {
		c.valid = false
		return c
	}
	c.load(0, 0)
	return c
}

// Valid reports whether the cursor is positioned on a record.
func (c *Cursor) Valid() bool { return c.valid }

// Item returns the current record. It must only be called when Valid.
func (c *Cursor) Item() *Item { return &c.item }

// Next advances to the next record in list order; the cursor becomes
// invalid at the end of the list.
func (c *Cursor) Next() {
	if !c.valid {
		return
	}
	if c.tr != nil {
		c.tr.Event(obs.EvCursorAdvance, int(c.node), 1)
	}
	off := c.off + uint16(c.size)
	page := c.page
	for {
		if page >= int32(len(c.f.pages)) {
			c.valid = false
			return
		}
		if off < c.f.pageUsed[page] {
			c.load(page, off)
			return
		}
		page++
		off = 0
	}
}

// Reset repositions c at the first record of l in place, rebinding the IO
// accounting and tracer without allocating: the prepared-plan evaluators
// keep cursor storage across runs and Reset it per run. A nil tracer
// disables event emission exactly like Open.
func (c *Cursor) Reset(l *ListFile, io *counters.IO, tr obs.Tracer, node int) {
	c.f, c.io, c.tr, c.node = l, io, tr, int32(node)
	c.page, c.off, c.size, c.lastTouch = 0, 0, 0, -1
	if l.entries == 0 {
		c.valid = false
		return
	}
	c.load(0, 0)
}

// Seek positions the cursor at the record addressed by the pointer and
// charges one pointer dereference. Seeking a nil pointer invalidates the
// cursor.
func (c *Cursor) Seek(p Pointer) {
	c.io.C.PointerDerefs++
	if p.IsNil() {
		c.valid = false
		return
	}
	c.load(p.Page, p.Off)
}

// Position returns the pointer addressing the current record.
func (c *Cursor) Position() Pointer {
	return Pointer{Page: c.page, Off: c.off}
}

// Clone returns an independent cursor at the same position, sharing the
// same IO accounting.
func (c *Cursor) Clone() *Cursor {
	cc := *c
	return &cc
}

// load decodes the record at (page, off).
func (c *Cursor) load(page int32, off uint16) {
	if c.lastTouch != page {
		c.io.Touch(c.f.token, page)
		c.lastTouch = page
	}
	c.io.C.ElementsScanned++
	if c.tr != nil {
		c.tr.Event(obs.EvScan, int(c.node), 1)
	}
	buf := c.f.pages[page][off:]
	c.item.Start = int32(binary.LittleEndian.Uint32(buf[0:]))
	c.item.End = int32(binary.LittleEndian.Uint32(buf[4:]))
	c.item.Level = int32(binary.LittleEndian.Uint32(buf[8:]))
	n := headerBytes
	c.item.Following = NilPointer
	c.item.Descendant = NilPointer
	for i := 0; i < c.f.childCount; i++ {
		c.item.Children[i] = NilPointer
	}
	if c.f.kind != Element {
		flags := buf[headerBytes]
		n++
		read := func() Pointer {
			p := Pointer{
				Page: int32(binary.LittleEndian.Uint32(buf[n:])),
				Off:  binary.LittleEndian.Uint16(buf[n+4:]),
			}
			n += pointerBytes
			return p
		}
		if flags&flagFollowing != 0 {
			c.item.Following = read()
		}
		if flags&flagDescendant != 0 {
			c.item.Descendant = read()
		}
		for i := 0; i < c.f.childCount; i++ {
			if flags&(1<<(flagChild0+i)) != 0 {
				c.item.Children[i] = read()
			}
		}
	}
	c.page, c.off, c.size, c.valid = page, off, n, true
}
