package store

import (
	"encoding/binary"

	"viewjoin/internal/counters"
	"viewjoin/internal/obs"
	"viewjoin/internal/views"
)

// Item is one decoded record: a region label plus whatever pointers the
// record materializes. Absent pointers are NilPointer; for the Element
// scheme every pointer is absent.
type Item struct {
	Start, End, Level int32
	Following         Pointer
	Descendant        Pointer
	Children          [MaxChildren]Pointer
}

// ListCursor is a forward cursor over a ListFile with random access via
// stored pointers. Every record decode is charged as one element scanned,
// and page accesses are charged through the IO buffer pool on the real
// page boundaries of each flat segment — the labels segment and every
// materialized pointer segment are touched per record, like the paper's
// cost model charges a scan over a linked-element file. ListCursor is a
// plain value: copying it yields an independent cursor at the same
// position (the engines' probe idiom).
type ListCursor struct {
	f    *ListFile
	io   *counters.IO
	tr   obs.Tracer // nil when tracing is off
	node int32      // query node for event attribution (-1 untraced)
	idx  int32
	// lo/hi bound the visible record offsets to [lo, hi): Reset opens the
	// whole list (lo=0, hi=entries); ResetRange narrows the window for
	// partitioned evaluation. Next stops at hi; Seek treats hi as the end
	// of the list and clamps targets below lo up to lo.
	lo, hi int32
	// last page charged to the pool per segment (labels, then pointer
	// classes), -1 initially.
	lastPage [1 + numPtrSegs]int32
	item     Item
	valid    bool
}

// Open returns a cursor positioned at the first record (invalid for an
// empty list).
func (l *ListFile) Open(io *counters.IO) *ListCursor {
	return l.OpenTraced(io, nil, -1)
}

// OpenTraced is Open with an optional tracer: every record decode emits an
// EvScan and every sequential advance an EvCursorAdvance attributed to the
// given query node. A nil tracer is exactly Open.
func (l *ListFile) OpenTraced(io *counters.IO, tr obs.Tracer, node int) *ListCursor {
	c := &ListCursor{}
	c.Reset(l, io, tr, node)
	return c
}

// OpenCursor implements Source.
func (l *ListFile) OpenCursor(io *counters.IO, tr obs.Tracer, node int) Cursor {
	return l.OpenTraced(io, tr, node)
}

// Valid reports whether the cursor is positioned on a record.
func (c *ListCursor) Valid() bool { return c.valid }

// Item returns the current record. It must only be called when Valid.
func (c *ListCursor) Item() *Item { return &c.item }

// Ordinal returns the current record's offset in the list. It must only be
// called when Valid.
func (c *ListCursor) Ordinal() int { return int(c.idx) }

// Next advances to the next record in list order; the cursor becomes
// invalid at the end of the list.
func (c *ListCursor) Next() {
	if !c.valid {
		return
	}
	if c.tr != nil {
		c.tr.Event(obs.EvCursorAdvance, int(c.node), 1)
	}
	if c.idx+1 >= c.hi {
		c.valid = false
		return
	}
	c.load(c.idx + 1)
}

// Reset repositions c at the first record of l in place, rebinding the IO
// accounting and tracer without allocating: the prepared-plan evaluators
// keep cursor storage across runs and Reset it per run. A nil tracer
// disables event emission exactly like Open.
func (c *ListCursor) Reset(l *ListFile, io *counters.IO, tr obs.Tracer, node int) {
	c.ResetRange(l, io, tr, node, 0, l.entries)
}

// ResetRange is Reset restricted to the record offsets [lo, hi): the
// cursor starts at lo, Next exhausts at hi, and Seek clamps targets below
// lo up to lo while treating targets at or beyond hi as past-the-end.
// Bounds are clipped to the list; an empty window yields an invalid
// cursor. This is how partitioned evaluation gives each worker a
// start-range slice of every list without copying any pages.
func (c *ListCursor) ResetRange(l *ListFile, io *counters.IO, tr obs.Tracer, node, lo, hi int) {
	c.f, c.io, c.tr, c.node = l, io, tr, int32(node)
	if lo < 0 {
		lo = 0
	}
	if hi > l.entries {
		hi = l.entries
	}
	c.lo, c.hi = int32(lo), int32(hi)
	c.idx = c.lo
	for i := range c.lastPage {
		c.lastPage[i] = -1
	}
	// Clear the whole record once so child slots beyond the new file's
	// childCount never leak stale pointers from a previous binding (load
	// only rewrites the slots the file materializes).
	c.item = Item{Following: NilPointer, Descendant: NilPointer}
	for i := range c.item.Children {
		c.item.Children[i] = NilPointer
	}
	if c.lo >= c.hi {
		c.valid = false
		return
	}
	c.load(c.lo)
}

// Seek positions the cursor at the record addressed by the pointer and
// charges one pointer dereference. Seeking a nil pointer or one at or
// beyond the cursor's upper bound invalidates the cursor; a pointer below
// the lower bound clamps to the first in-range record (the nearest one the
// window admits — safe because every jump site refuses to move a cursor
// backwards, so a clamped target is never followed past live state).
func (c *ListCursor) Seek(p Pointer) {
	c.io.C.PointerDerefs++
	if p.IsNil() || int32(p) >= c.hi {
		c.valid = false
		return
	}
	if int32(p) < c.lo {
		c.load(c.lo)
		return
	}
	c.load(int32(p))
}

// Position returns the pointer addressing the current record.
func (c *ListCursor) Position() Pointer { return Pointer(c.idx) }

// Clone returns an independent cursor at the same position, sharing the
// same IO accounting.
func (c *ListCursor) Clone() *ListCursor {
	cc := *c
	return &cc
}

// load decodes the record at offset i, touching the page of every present
// segment: the record's fields are striped across the labels segment and
// the materialized pointer segments, so a scan pays each segment's pages —
// this is what makes a linked-element file cost more pages to scan than an
// element file of the same list, as in §V.
func (c *ListCursor) load(i int32) {
	f := c.f
	if pg := f.labels.page(i); c.lastPage[0] != pg {
		c.io.Touch(f.labels.token, pg)
		c.lastPage[0] = pg
	}
	c.io.C.ElementsScanned++
	if c.tr != nil {
		c.tr.Event(obs.EvScan, int(c.node), 1)
	}
	rec := f.labels.rec(i)
	c.item.Start = int32(binary.LittleEndian.Uint32(rec[0:]))
	c.item.End = int32(binary.LittleEndian.Uint32(rec[4:]))
	c.item.Level = int32(binary.LittleEndian.Uint32(rec[8:]))
	c.item.Following = c.loadPtr(segFollowing, i)
	c.item.Descendant = c.loadPtr(segDescendant, i)
	for ci := 0; ci < f.childCount; ci++ {
		c.item.Children[ci] = c.loadPtr(segChild0+ci, i)
	}
	c.idx, c.valid = i, true
}

// loadPtr reads pointer class s of record i, charging the segment page on
// boundary crossings. An absent class reads as NilPointer for free.
func (c *ListCursor) loadPtr(s int, i int32) Pointer {
	seg := &c.f.ptrs[s]
	if !seg.present() {
		return NilPointer
	}
	if pg := seg.page(i); c.lastPage[1+s] != pg {
		c.io.Touch(seg.token, pg)
		c.lastPage[1+s] = pg
	}
	v := int32(binary.LittleEndian.Uint32(seg.rec(i)))
	if v == views.NoPointer {
		return NilPointer
	}
	return Pointer(v)
}
