package store

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"viewjoin/internal/counters"
	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
)

// TestPersistRoundTrip: serialize + load every scheme and compare all
// records (including pointers) decoded through cursors.
func TestPersistRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDoc(rng, 80, nil)
		v := testutil.RandomPattern(rng, 4, nil)
		m, err := views.Materialize(d, v)
		if err != nil {
			return false
		}
		for _, kind := range []Kind{Tuple, Element, Linked, LinkedPartial} {
			orig, err := Build(m, kind, 256)
			if err != nil {
				t.Logf("Build: %v", err)
				return false
			}
			var buf bytes.Buffer
			n, err := orig.WriteTo(&buf)
			if err != nil {
				t.Logf("WriteTo: %v", err)
				return false
			}
			if n != int64(buf.Len()) {
				t.Logf("WriteTo returned %d, wrote %d", n, buf.Len())
				return false
			}
			got, err := ReadViewStore(&buf)
			if err != nil {
				t.Logf("ReadViewStore(%v): %v", kind, err)
				return false
			}
			if got.Kind != orig.Kind || got.PageSize != orig.PageSize ||
				got.TotalEntries() != orig.TotalEntries() || got.NumPointers() != orig.NumPointers() {
				t.Logf("%v: metadata mismatch", kind)
				return false
			}
			if !got.View.Equal(orig.View) {
				t.Logf("%v: pattern mismatch: %s vs %s", kind, got.View, orig.View)
				return false
			}
			if !sameContent(orig, got) {
				t.Logf("%v: content mismatch", kind)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// sameContent compares two stores record by record through cursors.
func sameContent(a, b *ViewStore) bool {
	var c counters.Counters
	io := counters.NewIO(&c, 0)
	if a.Kind == Tuple {
		ca, cb := a.Tuples.Open(io), b.Tuples.Open(io)
		for ca.Valid() || cb.Valid() {
			if ca.Valid() != cb.Valid() {
				return false
			}
			for j := range ca.Item().Labels {
				if ca.Item().Labels[j] != cb.Item().Labels[j] {
					return false
				}
			}
			ca.Next()
			cb.Next()
		}
		return true
	}
	for q := range a.Lists {
		ca, cb := a.Lists[q].Open(io), b.Lists[q].Open(io)
		for ca.Valid() || cb.Valid() {
			if ca.Valid() != cb.Valid() {
				return false
			}
			x, y := ca.Item(), cb.Item()
			if x.Start != y.Start || x.End != y.End || x.Level != y.Level ||
				x.Following != y.Following || x.Descendant != y.Descendant {
				return false
			}
			for ci := 0; ci < a.Lists[q].childCount; ci++ {
				if x.Children[ci] != y.Children[ci] {
					return false
				}
			}
			ca.Next()
			cb.Next()
		}
	}
	return true
}

func TestPersistRejectsCorruption(t *testing.T) {
	d := testutil.RandomDoc(rand.New(rand.NewSource(1)), 40, nil)
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	s := MustBuild(m, Linked, 256)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b = append([]byte(nil), b...); b[0] = 'X'; return b }},
		{"bad version", func(b []byte) []byte { b = append([]byte(nil), b...); b[4] = 99; return b }},
		{"bad kind", func(b []byte) []byte { b = append([]byte(nil), b...); b[5] = 200; return b }},
		{"truncated", func(b []byte) []byte { return append([]byte(nil), b[:len(b)/2]...) }},
		{"empty", func(b []byte) []byte { return nil }},
	} {
		if _, err := ReadViewStore(bytes.NewReader(tc.mutate(good))); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestPersistRejectsWildPointers: flipping pointer bytes in a saved LE view
// must be caught at load time, never panic at evaluation time.
func TestPersistRejectsWildPointers(t *testing.T) {
	d := testutil.RandomDoc(rand.New(rand.NewSource(7)), 60, nil)
	m := views.MustMaterialize(d, tpq.MustParse("//a//b"))
	s := MustBuild(m, Linked, 256)
	if s.NumPointers() == 0 {
		t.Skip("fixture has no pointers")
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	rejected := 0
	// Mutate bytes across the record region; every load must either succeed
	// (mutation hit padding) or fail cleanly.
	for off := len(good) - 1; off > len(good)-600 && off > 0; off -= 7 {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xFF
		st, err := ReadViewStore(bytes.NewReader(bad))
		if err != nil {
			rejected++
			continue
		}
		// Load succeeded: scanning must still be safe.
		var c counters.Counters
		io := counters.NewIO(&c, 0)
		for _, l := range st.Lists {
			for cur := l.Open(io); cur.Valid(); cur.Next() {
			}
		}
	}
	if rejected == 0 {
		t.Errorf("no mutation was rejected; validation seems inert")
	}
}
