package oracle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewjoin/internal/match"
	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

func doc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return d
}

func TestEvalSimplePath(t *testing.T) {
	d := doc(t, `<r><a><b/><b><c/></b></a><a><c/></a></r>`)
	got := Eval(d, tpq.MustParse("//a//b"))
	if len(got) != 2 {
		t.Fatalf("|//a//b| = %d, want 2", len(got))
	}
	got = Eval(d, tpq.MustParse("//a//c"))
	if len(got) != 2 {
		t.Fatalf("|//a//c| = %d, want 2", len(got))
	}
	got = Eval(d, tpq.MustParse("//a/c"))
	if len(got) != 1 {
		t.Fatalf("|//a/c| = %d, want 1", len(got))
	}
	got = Eval(d, tpq.MustParse("//b/c"))
	if len(got) != 1 {
		t.Fatalf("|//b/c| = %d, want 1", len(got))
	}
	if got := Eval(d, tpq.MustParse("//c/b")); len(got) != 0 {
		t.Fatalf("|//c/b| = %d, want 0", len(got))
	}
	if got := Eval(d, tpq.MustParse("//zz")); got != nil {
		t.Fatalf("unknown type should give nil, got %v", got)
	}
}

func TestEvalRootAxis(t *testing.T) {
	d := doc(t, `<a><a><b/></a></a>`)
	if got := Eval(d, tpq.MustParse("/a/b")); len(got) != 0 {
		t.Fatalf("|/a/b| = %d, want 0 (only outer a is the root)", len(got))
	}
	if got := Eval(d, tpq.MustParse("/a//b")); len(got) != 1 {
		t.Fatalf("|/a//b| = %d, want 1", len(got))
	}
	if got := Eval(d, tpq.MustParse("//a/b")); len(got) != 1 {
		t.Fatalf("|//a/b| = %d, want 1", len(got))
	}
	if got := Eval(d, tpq.MustParse("/b")); len(got) != 0 {
		t.Fatalf("|/b| = %d, want 0", len(got))
	}
}

func TestEvalTwigCrossProduct(t *testing.T) {
	// One a with two b's and three c's below: //a[//b]//c has 2*3 = 6 matches.
	d := doc(t, `<r><a><b/><b/><c/><c/><c/></a></r>`)
	got := Eval(d, tpq.MustParse("//a[//b]//c"))
	if len(got) != 6 {
		t.Fatalf("matches = %d, want 6", len(got))
	}
	// Every match must bind distinct query nodes consistently.
	q := tpq.MustParse("//a[//b]//c")
	for _, m := range got {
		an, bn, cn := d.Node(m[0]), d.Node(m[1]), d.Node(m[2])
		if !an.IsAncestorOf(bn) || !an.IsAncestorOf(cn) {
			t.Fatalf("match %v violates containment for %s", m, q)
		}
	}
}

func TestEvalMultipleEmbeddingsPerNode(t *testing.T) {
	// Nested a's: each b below both a's yields two matches of //a//b.
	d := doc(t, `<a><a><b/></a><b/></a>`)
	got := Eval(d, tpq.MustParse("//a//b"))
	if len(got) != 3 {
		t.Fatalf("matches = %d, want 3 (outer-a/inner-b, outer-a/outer-b, inner-a/inner-b)", len(got))
	}
}

func TestSolutionNodes(t *testing.T) {
	d := doc(t, `<r><a><b/><b/></a><a/></r>`)
	sol := SolutionNodes(d, tpq.MustParse("//a//b"))
	if len(sol) != 2 {
		t.Fatalf("len(sol) = %d, want 2", len(sol))
	}
	if len(sol[0]) != 1 {
		t.Errorf("a-type solution nodes = %d, want 1 (second a has no b)", len(sol[0]))
	}
	if len(sol[1]) != 2 {
		t.Errorf("b-type solution nodes = %d, want 2", len(sol[1]))
	}
}

// TestEvalAgainstNaiveDefinition cross-checks the oracle against an even
// more literal implementation of the embedding definition (all candidate
// tuples, checked pairwise) on random inputs.
func TestEvalAgainstNaiveDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDoc(rng, 40, nil)
		q := testutil.RandomPattern(rng, 3, nil)
		got := Eval(d, q)
		want := naiveEval(d, q)
		if !got.SameAs(want) {
			t.Logf("doc nodes=%d q=%s got=%d want=%d", d.NumNodes(), q, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// naiveEval enumerates every |Q|-tuple of nodes of the right types and
// filters by the embedding conditions. Exponential; only for tiny inputs.
func naiveEval(d *xmltree.Document, q *tpq.Pattern) (out match.Set) {
	cands := make([][]xmltree.NodeID, q.Size())
	for i := range q.Nodes {
		t := d.TypeByName(q.Nodes[i].Label)
		if t == xmltree.NoType {
			return nil
		}
		cands[i] = d.NodesOfType(t)
	}
	cur := make(match.Match, q.Size())
	var rec func(i int)
	rec = func(i int) {
		if i == q.Size() {
			ok := true
			for j := 1; j < q.Size(); j++ {
				pd, cd := d.Node(cur[q.Nodes[j].Parent]), d.Node(cur[j])
				if !pd.IsAncestorOf(cd) {
					ok = false
					break
				}
				if q.Nodes[j].Axis == tpq.Child && pd.Level != cd.Level-1 {
					ok = false
					break
				}
			}
			if ok && q.Nodes[0].Axis == tpq.Child && cur[0] != d.Root() {
				ok = false
			}
			if ok {
				out = append(out, match.Clone(cur))
			}
			return
		}
		for _, c := range cands[i] {
			cur[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
