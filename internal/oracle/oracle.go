// Package oracle implements a brute-force reference evaluator for tree
// pattern queries. It enumerates embeddings directly from the definition in
// §II of the paper, with no storage schemes, streaming, or skipping
// involved, and serves as the correctness oracle that every optimized
// engine in this repository is validated against.
package oracle

import (
	"viewjoin/internal/match"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// Eval returns all tree pattern instances of q in d: one match per
// embedding, with every query node treated as an output node.
//
// The root of q binds according to its axis: a Descendant root ("//a")
// matches any a-node in the document; a Child root ("/a") matches only the
// document root when it has type a.
func Eval(d *xmltree.Document, q *tpq.Pattern) match.Set {
	rootType := d.TypeByName(q.Nodes[0].Label)
	if rootType == xmltree.NoType {
		return nil
	}
	var roots []xmltree.NodeID
	switch q.Nodes[0].Axis {
	case tpq.Descendant:
		roots = d.NodesOfType(rootType)
	case tpq.Child:
		if d.Node(d.Root()).Type == rootType {
			roots = []xmltree.NodeID{d.Root()}
		}
	}

	var out match.Set
	cur := make(match.Match, q.Size())
	for _, r := range roots {
		cur[0] = r
		embed(d, q, 1, cur, &out)
	}
	return out
}

// embed binds query node qi (pattern nodes are numbered in pre-order, so
// qi's parent is already bound) to every consistent data node, recursing on
// qi+1; completed embeddings are appended to out.
func embed(d *xmltree.Document, q *tpq.Pattern, qi int, cur match.Match, out *match.Set) {
	if qi == q.Size() {
		*out = append(*out, match.Clone(cur))
		return
	}
	qn := q.Nodes[qi]
	t := d.TypeByName(qn.Label)
	if t == xmltree.NoType {
		return
	}
	parentData := d.Node(cur[qn.Parent])
	for _, cand := range d.NodesOfType(t) {
		cn := d.Node(cand)
		if cn.Start <= parentData.Start {
			continue
		}
		if cn.Start > parentData.End {
			break // candidates are in document order; none further fits inside
		}
		if cn.End >= parentData.End {
			continue
		}
		if qn.Axis == tpq.Child && cn.Level != parentData.Level+1 {
			continue
		}
		cur[qi] = cand
		embed(d, q, qi+1, cur, out)
	}
}

// SolutionNodes returns the distinct solution nodes of q in d per query
// node, in document order (§II: a data node is a solution node of Q iff it
// occurs in some tree pattern instance matching Q).
func SolutionNodes(d *xmltree.Document, q *tpq.Pattern) [][]xmltree.NodeID {
	return Eval(d, q).SolutionNodes(q.Size())
}
