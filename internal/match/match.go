// Package match defines the common result representation shared by every
// TPQ evaluation engine in this repository.
//
// Per the paper's query model (§II), every node of a TPQ is an output node,
// so the answer to a query Q is the set of tree pattern instances: one data
// node per query node for each embedding of Q into the document.
package match

import (
	"sort"

	"viewjoin/internal/xmltree"
)

// Match is one tree pattern instance: Match[i] is the data node matched by
// query node i (indices follow tpq.Pattern node order).
type Match []xmltree.NodeID

// Less orders matches lexicographically by node id (i.e. by document order
// of the matched nodes, query node by query node).
func Less(a, b Match) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Equal reports whether two matches bind identical nodes.
func Equal(a, b Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of m.
func Clone(m Match) Match {
	out := make(Match, len(m))
	copy(out, m)
	return out
}

// Set is a collection of matches.
type Set []Match

// Sort orders the set lexicographically.
func (s Set) Sort() {
	sort.Slice(s, func(i, j int) bool { return Less(s[i], s[j]) })
}

// Normalize sorts the set and removes duplicate matches, returning the
// result. Useful for comparing engine outputs in tests.
func (s Set) Normalize() Set {
	if len(s) == 0 {
		return s
	}
	s.Sort()
	out := s[:1]
	for _, m := range s[1:] {
		if !Equal(out[len(out)-1], m) {
			out = append(out, m)
		}
	}
	return out
}

// SameAs reports whether two normalized-or-not sets contain the same
// matches (order- and duplicate-insensitive).
func (s Set) SameAs(t Set) bool {
	a := append(Set(nil), s...).Normalize()
	b := append(Set(nil), t...).Normalize()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// SolutionNodes returns, for each query node index, the distinct data nodes
// bound to it across all matches, in document order. This is the "solution
// node" notion of §II, and what the element/LE storage schemes materialize.
func (s Set) SolutionNodes(numQueryNodes int) [][]xmltree.NodeID {
	seen := make([]map[xmltree.NodeID]bool, numQueryNodes)
	for i := range seen {
		seen[i] = make(map[xmltree.NodeID]bool)
	}
	for _, m := range s {
		for q, n := range m {
			seen[q][n] = true
		}
	}
	out := make([][]xmltree.NodeID, numQueryNodes)
	for q := range out {
		ids := make([]xmltree.NodeID, 0, len(seen[q]))
		for id := range seen[q] {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out[q] = ids
	}
	return out
}
