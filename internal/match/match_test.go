package match

import (
	"testing"

	"viewjoin/internal/xmltree"
)

func m(ids ...xmltree.NodeID) Match { return Match(ids) }

func TestLessAndEqual(t *testing.T) {
	if !Less(m(1, 2), m(1, 3)) || Less(m(1, 3), m(1, 2)) {
		t.Errorf("Less wrong on last component")
	}
	if !Less(m(1, 2), m(2, 0)) {
		t.Errorf("Less wrong on first component")
	}
	if Less(m(1, 2), m(1, 2)) {
		t.Errorf("Less must be strict")
	}
	if !Less(m(1), m(1, 2)) || Less(m(1, 2), m(1)) {
		t.Errorf("Less wrong on prefix")
	}
	if !Equal(m(1, 2), m(1, 2)) || Equal(m(1, 2), m(1, 3)) || Equal(m(1), m(1, 2)) {
		t.Errorf("Equal wrong")
	}
}

func TestClone(t *testing.T) {
	a := m(1, 2, 3)
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Errorf("Clone aliases source")
	}
}

func TestNormalize(t *testing.T) {
	s := Set{m(2, 1), m(1, 1), m(2, 1), m(1, 1)}
	n := s.Normalize()
	if len(n) != 2 || !Equal(n[0], m(1, 1)) || !Equal(n[1], m(2, 1)) {
		t.Fatalf("Normalize = %v", n)
	}
	var empty Set
	if got := empty.Normalize(); len(got) != 0 {
		t.Errorf("Normalize(empty) = %v", got)
	}
}

func TestSameAs(t *testing.T) {
	a := Set{m(1, 2), m(3, 4)}
	b := Set{m(3, 4), m(1, 2), m(1, 2)}
	if !a.SameAs(b) {
		t.Errorf("SameAs must ignore order and duplicates")
	}
	c := Set{m(3, 4), m(1, 2)}
	if !a.SameAs(c) {
		t.Errorf("SameAs must ignore order")
	}
	if a.SameAs(Set{m(1, 2)}) {
		t.Errorf("different sizes must differ")
	}
	if a.SameAs(Set{m(1, 2), m(3, 5)}) {
		t.Errorf("different content must differ")
	}
}

func TestSolutionNodes(t *testing.T) {
	s := Set{m(1, 5), m(1, 6), m(2, 5)}
	sol := s.SolutionNodes(2)
	if len(sol) != 2 {
		t.Fatalf("len = %d", len(sol))
	}
	if len(sol[0]) != 2 || sol[0][0] != 1 || sol[0][1] != 2 {
		t.Errorf("sol[0] = %v", sol[0])
	}
	if len(sol[1]) != 2 || sol[1][0] != 5 || sol[1][1] != 6 {
		t.Errorf("sol[1] = %v", sol[1])
	}
}
