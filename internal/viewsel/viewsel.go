// Package viewsel implements the paper's cost-based view selection (§V):
// given a pool of materialized views and a query, pick a covering subset
// that minimizes the estimated ViewJoin evaluation cost.
//
// The cost of answering Q with view v is
//
//	c(v,Q) = (1-λ)·Σ_q |L_q|  +  λ·Σ_q |L_q|·e_q
//
// summed over the nodes q of v, where |L_q| is the size of q's materialized
// list and e_q the number of edges of q in Q not present in v (the
// interleaving conditions that remain to be joined). The paper observes
// evaluation is CPU bound and uses λ = 1.
//
// Selection is the greedy benefit heuristic of Harinarayan, Rajaraman &
// Ullman (SIGMOD 1996): repeatedly take the view with the highest
// (newly covered query nodes) / cost ratio. The problem itself is
// NP-complete.
package viewsel

import (
	"fmt"
	"sort"

	"viewjoin/internal/tpq"
)

// DefaultLambda is the paper's weighting of CPU join cost versus I/O cost.
const DefaultLambda = 1.0

// Candidate is a materialized view offered to the selector.
type Candidate struct {
	View *tpq.Pattern
	// ListSizes holds |L_q| per view node, in view node order. Any unit
	// works as long as it is consistent across candidates (entries, bytes).
	ListSizes []float64
	// Tag is an optional caller label (e.g. "v3") carried through results.
	Tag string
}

// Cost computes c(v,Q) for a candidate with weight lambda. It returns an
// error when v is not a subpattern of Q (such views cannot answer Q and
// must be discarded, per the paper).
func Cost(c Candidate, q *tpq.Pattern, lambda float64) (float64, error) {
	m, ok := c.View.MapOnto(q)
	if !ok {
		return 0, fmt.Errorf("viewsel: view %s is not a subpattern of query %s", c.View, q)
	}
	if len(c.ListSizes) != c.View.Size() {
		return 0, fmt.Errorf("viewsel: view %s has %d list sizes for %d nodes",
			c.View, len(c.ListSizes), c.View.Size())
	}
	io, join := 0.0, 0.0
	for vi := range c.View.Nodes {
		qn := m[vi]
		io += c.ListSizes[vi]
		join += c.ListSizes[vi] * float64(missingEdges(c.View, vi, q, qn, m))
	}
	return (1-lambda)*io + lambda*join, nil
}

// missingEdges counts e_q: the edges incident to query node qn in Q that
// are not present in the view (both the parent edge and child edges count;
// an edge is "present" when the corresponding view edge exists between the
// mapped nodes).
func missingEdges(v *tpq.Pattern, vi int, q *tpq.Pattern, qn int, m tpq.Mapping) int {
	// Query edges incident to qn.
	edges := len(q.Nodes[qn].Children)
	if qn != 0 {
		edges++
	}
	// View edges incident to vi map onto query edges... but only those whose
	// counterpart exists as a direct query edge between the mapped nodes are
	// precomputed query edges. A view edge bridging several query edges
	// (e.g. view //a//c over query //a//b//c) precomputes none of qn's
	// query edges.
	present := 0
	if vi != 0 {
		pm := m[v.Nodes[vi].Parent]
		if q.Nodes[qn].Parent == pm {
			present++
		}
	}
	for _, c := range v.Nodes[vi].Children {
		if q.Nodes[m[c]].Parent == qn {
			present++
		}
	}
	if present > edges {
		present = edges
	}
	return edges - present
}

// Result is the outcome of a selection.
type Result struct {
	// Selected holds the chosen candidates in selection order.
	Selected []Candidate
	// TotalCost is the sum of c(v,Q) over the selected views.
	TotalCost float64
	// Covered reports whether the selection covers every query node.
	Covered bool
}

// Views returns the selected view patterns.
func (r *Result) Views() []*tpq.Pattern {
	out := make([]*tpq.Pattern, len(r.Selected))
	for i := range r.Selected {
		out[i] = r.Selected[i].View
	}
	return out
}

// SelectGreedy runs the paper's greedy heuristic with the given λ: it
// discards non-subpattern candidates, then repeatedly selects the
// unselected view with the highest benefit |N_v| / c(v,Q), where N_v is
// the set of query nodes covered by v and by no already-selected view,
// until Q is covered or no candidate helps. Views whose element types
// overlap an already-selected view are skipped, keeping the paper's
// disjointness assumption. Time complexity O(|Q|·|V|) per round.
func SelectGreedy(cands []Candidate, q *tpq.Pattern, lambda float64) (*Result, error) {
	type scored struct {
		c    Candidate
		cost float64
	}
	var pool []scored
	for _, c := range cands {
		cost, err := Cost(c, q, lambda)
		if err != nil {
			continue // not a subpattern: cannot help answer Q
		}
		pool = append(pool, scored{c, cost})
	}
	covered := make(map[string]bool, q.Size())
	res := &Result{}
	for len(covered) < q.Size() {
		bestIdx := -1
		bestBenefit := 0.0
		for i, s := range pool {
			if s.c.View == nil {
				continue // already selected
			}
			newNodes := 0
			overlap := false
			for vi := range s.c.View.Nodes {
				l := s.c.View.Nodes[vi].Label
				if covered[l] {
					overlap = true
					break
				}
				newNodes++
			}
			if overlap || newNodes == 0 {
				continue
			}
			var benefit float64
			if s.cost <= 0 {
				benefit = float64(newNodes) * 1e18 // free views first
			} else {
				benefit = float64(newNodes) / s.cost
			}
			if bestIdx == -1 || benefit > bestBenefit {
				bestIdx, bestBenefit = i, benefit
			}
		}
		if bestIdx == -1 {
			break // nothing can extend the cover
		}
		sel := pool[bestIdx]
		pool[bestIdx].c.View = nil
		res.Selected = append(res.Selected, sel.c)
		res.TotalCost += sel.cost
		for vi := range sel.c.View.Nodes {
			covered[sel.c.View.Nodes[vi].Label] = true
		}
	}
	res.Covered = len(covered) == q.Size()
	return res, nil
}

// SelectBySize is the size-only baseline the paper compares against in
// Example 5.1: repeatedly pick the smallest view (by total materialized
// size) that covers at least one uncovered query node and does not overlap
// the selection, ignoring interleaving conditions. On Table II's pool this
// yields {v2, v5, v3, v4}, which the cost-based heuristic beats by 1.93x.
func SelectBySize(cands []Candidate, q *tpq.Pattern) (*Result, error) {
	type scored struct {
		c    Candidate
		size float64
		used bool
	}
	var pool []scored
	for _, c := range cands {
		if !c.View.IsSubpatternOf(q) {
			continue
		}
		size := 0.0
		for _, s := range c.ListSizes {
			size += s
		}
		pool = append(pool, scored{c: c, size: size})
	}
	covered := make(map[string]bool, q.Size())
	res := &Result{}
	for len(covered) < q.Size() {
		bestIdx := -1
		for i := range pool {
			if pool[i].used {
				continue
			}
			newNodes, overlap := 0, false
			for vi := range pool[i].c.View.Nodes {
				if covered[pool[i].c.View.Nodes[vi].Label] {
					overlap = true
					break
				}
				newNodes++
			}
			if overlap || newNodes == 0 {
				continue
			}
			if bestIdx == -1 || pool[i].size < pool[bestIdx].size {
				bestIdx = i
			}
		}
		if bestIdx == -1 {
			break
		}
		pool[bestIdx].used = true
		res.Selected = append(res.Selected, pool[bestIdx].c)
		res.TotalCost += pool[bestIdx].size
		for vi := range pool[bestIdx].c.View.Nodes {
			covered[pool[bestIdx].c.View.Nodes[vi].Label] = true
		}
	}
	res.Covered = len(covered) == q.Size()
	return res, nil
}

// SortCandidates orders candidates deterministically (by view string) for
// stable experiment output.
func SortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool { return cands[i].View.String() < cands[j].View.String() })
}

// SelectOptimal finds the covering subset with the minimum total cost by
// exhaustive search over subsets of the candidate pool. Exponential in
// |V| (the problem is NP-complete, §V); intended for small pools and for
// measuring the greedy heuristic's quality. Candidates that are not
// subpatterns of q are ignored; overlapping element types disqualify a
// subset (the paper's disjointness assumption).
func SelectOptimal(cands []Candidate, q *tpq.Pattern, lambda float64) (*Result, error) {
	type scored struct {
		c    Candidate
		cost float64
	}
	var pool []scored
	for _, c := range cands {
		cost, err := Cost(c, q, lambda)
		if err != nil {
			continue
		}
		pool = append(pool, scored{c, cost})
	}
	if len(pool) > 20 {
		return nil, fmt.Errorf("viewsel: optimal selection over %d candidates is infeasible (max 20)", len(pool))
	}
	need := make(map[string]bool, q.Size())
	for i := range q.Nodes {
		need[q.Nodes[i].Label] = true
	}

	best := &Result{}
	found := false
	for mask := 1; mask < 1<<len(pool); mask++ {
		covered := make(map[string]int)
		total := 0.0
		ok := true
		for i := 0; ok && i < len(pool); i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			total += pool[i].cost
			for vi := range pool[i].c.View.Nodes {
				l := pool[i].c.View.Nodes[vi].Label
				covered[l]++
				if covered[l] > 1 {
					ok = false // overlapping element types
					break
				}
			}
		}
		if !ok || (found && total >= best.TotalCost) {
			continue
		}
		full := true
		for l := range need {
			if covered[l] == 0 {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		best = &Result{TotalCost: total, Covered: true}
		for i := range pool {
			if mask&(1<<i) != 0 {
				best.Selected = append(best.Selected, pool[i].c)
			}
		}
		found = true
	}
	if !found {
		return &Result{}, nil
	}
	return best, nil
}
