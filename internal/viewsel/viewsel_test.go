package viewsel

import (
	"math"
	"testing"

	"viewjoin/internal/tpq"
)

// tableII builds the candidate pool of the paper's Table II with per-node
// list sizes (in MB) reverse-engineered from the published c(v,Q) values:
// c(v4) = 0.83*2 = 1.66 pins |L_definition| = 0.83, etc.
func tableII() (q *tpq.Pattern, cands []Candidate) {
	q = tpq.MustParse("//dataset//tableHead[//tableLink//title]//field//definition//para")
	cands = []Candidate{
		{Tag: "v1", View: tpq.MustParse("//dataset//definition"), ListSizes: []float64{0.05, 0.83}},
		{Tag: "v2", View: tpq.MustParse("//dataset//tableHead"), ListSizes: []float64{0.055, 0.085}},
		{Tag: "v3", View: tpq.MustParse("//field//para"), ListSizes: []float64{0.27, 0.46}},
		{Tag: "v4", View: tpq.MustParse("//definition"), ListSizes: []float64{0.83}},
		{Tag: "v5", View: tpq.MustParse("//tableLink//title"), ListSizes: []float64{0.20, 0.17}},
		{Tag: "v6", View: tpq.MustParse("//field//definition//para"), ListSizes: []float64{0.27, 0.35, 0.35}},
	}
	return q, cands
}

// TestTableIICosts reproduces the c(v,Q) column of Table II (λ=1).
func TestTableIICosts(t *testing.T) {
	q, cands := tableII()
	want := map[string]float64{
		"v1": 0.05*1 + 0.83*2, // 1.71 ~ paper's 1.76 (list split approximated)
		"v2": 0.085 * 2,       // 0.17, exact
		"v3": 0.27*2 + 0.46*1, // 1.00 ~ paper's 1.01
		"v4": 0.83 * 2,        // 1.66, exact
		"v5": 0.20 * 1,        // 0.20, exact
		"v6": 0.27 * 1,        // 0.27, exact
	}
	for _, c := range cands {
		got, err := Cost(c, q, DefaultLambda)
		if err != nil {
			t.Fatalf("%s: %v", c.Tag, err)
		}
		if math.Abs(got-want[c.Tag]) > 1e-9 {
			t.Errorf("%s: c(v,Q) = %.3f, want %.3f", c.Tag, got, want[c.Tag])
		}
	}
}

// TestExample51 reproduces the paper's Example 5.1: the cost-based greedy
// heuristic selects {v2, v5, v6}; the size-only baseline selects
// {v2, v3, v4, v5}.
func TestExample51(t *testing.T) {
	q, cands := tableII()

	res, err := SelectGreedy(cands, q, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatalf("cost-based selection did not cover Q")
	}
	gotTags := tags(res)
	if !sameSet(gotTags, []string{"v2", "v5", "v6"}) {
		t.Errorf("cost-based selection = %v, want {v2,v5,v6}", gotTags)
	}
	if err := tpq.ValidateViewSet(res.Views(), q); err != nil {
		t.Errorf("selected set invalid: %v", err)
	}

	bySize, err := SelectBySize(cands, q)
	if err != nil {
		t.Fatal(err)
	}
	if !bySize.Covered {
		t.Fatalf("size-based selection did not cover Q")
	}
	if got := tags(bySize); !sameSet(got, []string{"v2", "v3", "v4", "v5"}) {
		t.Errorf("size-based selection = %v, want {v2,v3,v4,v5}", got)
	}
}

func tags(r *Result) []string {
	out := make([]string, len(r.Selected))
	for i := range r.Selected {
		out[i] = r.Selected[i].Tag
	}
	return out
}

func sameSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[string]bool)
	for _, s := range a {
		m[s] = true
	}
	for _, s := range b {
		if !m[s] {
			return false
		}
	}
	return true
}

func TestCostErrors(t *testing.T) {
	q := tpq.MustParse("//a//b")
	if _, err := Cost(Candidate{View: tpq.MustParse("//b//a"), ListSizes: []float64{1, 1}}, q, 1); err == nil {
		t.Errorf("non-subpattern: expected error")
	}
	if _, err := Cost(Candidate{View: tpq.MustParse("//a"), ListSizes: []float64{1, 2}}, q, 1); err == nil {
		t.Errorf("size mismatch: expected error")
	}
}

func TestLambdaZeroIsIOOnly(t *testing.T) {
	q := tpq.MustParse("//a//b//c")
	c := Candidate{View: tpq.MustParse("//a//c"), ListSizes: []float64{2, 3}}
	got, err := Cost(c, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("λ=0 cost = %v, want 5 (pure I/O)", got)
	}
}

func TestSelectSkipsUselessViews(t *testing.T) {
	q := tpq.MustParse("//a//b")
	cands := []Candidate{
		{Tag: "bad", View: tpq.MustParse("//b//a"), ListSizes: []float64{1, 1}}, // not a subpattern
		{Tag: "a", View: tpq.MustParse("//a"), ListSizes: []float64{1}},
		{Tag: "b", View: tpq.MustParse("//b"), ListSizes: []float64{1}},
	}
	res, err := SelectGreedy(cands, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered || len(res.Selected) != 2 {
		t.Fatalf("selection = %v covered=%v", tags(res), res.Covered)
	}
}

func TestSelectUncoverable(t *testing.T) {
	q := tpq.MustParse("//a//b")
	cands := []Candidate{{Tag: "a", View: tpq.MustParse("//a"), ListSizes: []float64{1}}}
	res, err := SelectGreedy(cands, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Errorf("selection cannot cover Q but reported covered")
	}
	bySize, err := SelectBySize(cands, q)
	if err != nil {
		t.Fatal(err)
	}
	if bySize.Covered {
		t.Errorf("size selection cannot cover Q but reported covered")
	}
}

func TestZeroCostViewsSelectedFirst(t *testing.T) {
	q := tpq.MustParse("//a//b")
	cands := []Candidate{
		{Tag: "whole", View: tpq.MustParse("//a//b"), ListSizes: []float64{0, 0}},
		{Tag: "a", View: tpq.MustParse("//a"), ListSizes: []float64{1}},
		{Tag: "b", View: tpq.MustParse("//b"), ListSizes: []float64{1}},
	}
	res, err := SelectGreedy(cands, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The whole-query view precomputes every join: cost 0, benefit infinite.
	if len(res.Selected) != 1 || res.Selected[0].Tag != "whole" {
		t.Errorf("selection = %v, want {whole}", tags(res))
	}
}

func TestSortCandidates(t *testing.T) {
	cands := []Candidate{
		{View: tpq.MustParse("//b")},
		{View: tpq.MustParse("//a")},
	}
	SortCandidates(cands)
	if cands[0].View.String() != "//a" {
		t.Errorf("not sorted")
	}
}

// TestGreedyVersusOptimal: on the Table II pool the greedy heuristic finds
// the optimal covering set; on random pools it stays within a small factor.
func TestGreedyVersusOptimal(t *testing.T) {
	q, cands := tableII()
	greedy, err := SelectGreedy(cands, q, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SelectOptimal(cands, q, DefaultLambda)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Covered {
		t.Fatal("optimal found no cover")
	}
	if math.Abs(greedy.TotalCost-opt.TotalCost) > 1e-9 {
		t.Errorf("greedy cost %.3f != optimal %.3f on Table II", greedy.TotalCost, opt.TotalCost)
	}
	if !sameSet(tags(greedy), tags(opt)) {
		t.Errorf("greedy %v != optimal %v on Table II", tags(greedy), tags(opt))
	}
}

func TestOptimalErrors(t *testing.T) {
	q := tpq.MustParse("//a//b")
	big := make([]Candidate, 21)
	for i := range big {
		big[i] = Candidate{View: tpq.MustParse("//a"), ListSizes: []float64{1}}
	}
	if _, err := SelectOptimal(big, q, 1); err == nil {
		t.Errorf("oversized pool: expected error")
	}
	res, err := SelectOptimal([]Candidate{{View: tpq.MustParse("//a"), ListSizes: []float64{1}}}, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered {
		t.Errorf("uncoverable pool must report Covered=false")
	}
}

// TestGreedyNearOptimalProperty: greedy stays within 2x of optimal on
// random pools (the classic ln(n) bound is far looser; 2x holds easily at
// these sizes and catches regressions).
func TestGreedyNearOptimalProperty(t *testing.T) {
	queries := []string{
		"//a//b//c//d",
		"//a[//b]//c//d",
		"//a//b[//c][//d]//e",
	}
	for _, qs := range queries {
		q := tpq.MustParse(qs)
		// Pool: every contiguous label pair and every singleton, with sizes
		// varying by position.
		var cands []Candidate
		for i := range q.Nodes {
			cands = append(cands, Candidate{
				View:      tpq.MustParse("//" + q.Nodes[i].Label),
				ListSizes: []float64{float64(10 * (i + 1))},
			})
			if p := q.Nodes[i].Parent; p >= 0 {
				v := tpq.MustParse("//" + q.Nodes[p].Label + "//" + q.Nodes[i].Label)
				cands = append(cands, Candidate{
					View:      v,
					ListSizes: []float64{float64(5 * (p + 1)), float64(5 * (i + 1))},
				})
			}
		}
		greedy, err := SelectGreedy(cands, q, DefaultLambda)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SelectOptimal(cands, q, DefaultLambda)
		if err != nil {
			t.Fatal(err)
		}
		if !greedy.Covered || !opt.Covered {
			t.Fatalf("%s: cover not found (greedy %v, opt %v)", qs, greedy.Covered, opt.Covered)
		}
		if greedy.TotalCost > 2*opt.TotalCost+1e-9 {
			t.Errorf("%s: greedy %.1f > 2x optimal %.1f", qs, greedy.TotalCost, opt.TotalCost)
		}
	}
}
