package views

import (
	"testing"

	"viewjoin/internal/dataset/nasa"
	"viewjoin/internal/dataset/xmark"
	"viewjoin/internal/tpq"
)

// BenchmarkMaterialize measures view materialization (solution lists plus
// all pointers) for representative path and twig views.
func BenchmarkMaterialize(b *testing.B) {
	xm := xmark.Scale(0.25)
	ns := nasa.Generate(nasa.Config{Datasets: 1000})
	cases := []struct {
		name string
		doc  interface{ NumNodes() int }
		view string
	}{
		{"xmark-path", xm, "//item//text//keyword"},
		{"xmark-twig", xm, "//open_auction[//bidder/personref]//current"},
		{"nasa-path", ns, "//field//definition//para"},
		{"nasa-twig", ns, "//journal[//suffix]/date/year"},
	}
	for _, tc := range cases {
		p := tpq.MustParse(tc.view)
		b.Run(tc.name, func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				var m *Materialized
				switch tc.name[0] {
				case 'x':
					m = MustMaterialize(xm, p)
				default:
					m = MustMaterialize(ns, p)
				}
				total = m.TotalEntries()
			}
			b.ReportMetric(float64(total), "entries")
		})
	}
}

// BenchmarkTupleEnumeration measures the tuple scheme's match enumeration
// (the redundancy-sensitive part of materializing T views).
func BenchmarkTupleEnumeration(b *testing.B) {
	xm := xmark.Scale(0.25)
	p := tpq.MustParse("//item//text//keyword")
	for i := 0; i < b.N; i++ {
		m := MustMaterialize(xm, p)
		if len(m.Matches()) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkApplyPolicy measures the LEp/E pointer-reduction passes.
func BenchmarkApplyPolicy(b *testing.B) {
	xm := xmark.Scale(0.25)
	m := MustMaterialize(xm, tpq.MustParse("//item//text//keyword"))
	for _, pol := range []PointerPolicy{PartialPointers, NoPointers} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.ApplyPolicy(pol)
			}
		})
	}
}
