package views

import (
	"fmt"
	"sort"

	"viewjoin/internal/match"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// FromMatches builds the materialized view of pattern p directly from an
// already computed match set, without re-evaluating p against the
// document. This realizes the paper's observation (§IV-B, unique feature
// 2) that ViewJoin's intermediate DAG F "provides a solution for storing
// the query result as a materialized view": a query's result can be
// captured as a new LE/LEp/E/T view and used to answer later queries that
// contain the pattern.
//
// The matches must be complete (every embedding of p in d) for the
// resulting view to be a correct materialization; passing a subset
// produces a view of that subset.
func FromMatches(d *xmltree.Document, p *tpq.Pattern, ms match.Set) (*Materialized, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("views: %w", err)
	}
	for i, mm := range ms {
		if len(mm) != p.Size() {
			return nil, fmt.Errorf("views: match %d binds %d nodes for a %d-node pattern", i, len(mm), p.Size())
		}
	}
	sol := ms.SolutionNodes(p.Size())
	m := &Materialized{View: p, Doc: d, Lists: make([][]Entry, p.Size())}
	for q := range sol {
		list := make([]Entry, len(sol[q]))
		for i, id := range sol[q] {
			n := d.Node(id)
			list[i] = Entry{
				Node:       id,
				Start:      n.Start,
				End:        n.End,
				Level:      n.Level,
				Following:  NoPointer,
				Descendant: NoPointer,
			}
			if nc := len(p.Nodes[q].Children); nc > 0 {
				list[i].Children = make([]int32, nc)
				for c := range list[i].Children {
					list[i].Children[c] = NoPointer
				}
			}
		}
		m.Lists[q] = list
	}
	m.fillDescendantPointers()
	m.fillFollowingPointers()
	m.fillChildPointers()

	// Cache the tuple content in composite-start order, saving the
	// re-enumeration that Matches() would otherwise perform.
	cached := append(match.Set(nil), ms...)
	sort.Slice(cached, func(i, j int) bool { return match.Less(cached[i], cached[j]) })
	m.matches = cached
	m.hasM = true
	return m, nil
}
