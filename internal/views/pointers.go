package views

import (
	"fmt"
	"sort"

	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// fillDescendantPointers sets each entry's Descendant pointer: the first
// same-type descendant in the same list. Lists are sorted by start and
// regions are properly nested, so the smallest-start descendant of entry i
// is entry i+1 when contained, and absent otherwise.
func (m *Materialized) fillDescendantPointers() {
	for _, list := range m.Lists {
		for i := range list {
			if i+1 < len(list) && list[i+1].Start < list[i].End {
				list[i].Descendant = int32(i + 1)
			}
		}
	}
}

// fillFollowingPointers sets each entry's Following pointer: the first
// same-type following node (start > this end); when the view node has a
// parent query node α, both endpoints must share the same lowest α-type
// ancestor within the view (§III-A pointer 3).
func (m *Materialized) fillFollowingPointers() {
	for q, list := range m.Lists {
		if len(list) == 0 {
			continue
		}
		p := m.View.Nodes[q].Parent
		if p == -1 {
			// No parent query node: the first following entry in the whole
			// list. Binary search for the first start beyond this end.
			for i := range list {
				j := i + 1 + sort.Search(len(list)-i-1, func(k int) bool {
					return list[i+1+k].Start > list[i].End
				})
				if j < len(list) {
					list[i].Following = int32(j)
				}
			}
			continue
		}
		// Group entries by their lowest α-type ancestor (α = parent view
		// node); following pointers stay within a group.
		anc := m.lowestAncestorIn(p, q)
		groups := make(map[int32][]int32) // ancestor position -> entry positions (doc order)
		for i := range list {
			groups[anc[i]] = append(groups[anc[i]], int32(i))
		}
		for _, g := range groups {
			for gi, i := range g {
				lo := gi + 1
				j := lo + sort.Search(len(g)-lo, func(k int) bool {
					return list[g[lo+k]].Start > list[i].End
				})
				if j < len(g) {
					list[i].Following = g[j]
				}
			}
		}
	}
}

// lowestAncestorIn returns, for each entry of list q, the position in list
// p of its lowest containing entry (or -1). Both lists are in document
// order; a stack-based merge runs in linear time.
func (m *Materialized) lowestAncestorIn(p, q int) []int32 {
	plist, qlist := m.Lists[p], m.Lists[q]
	out := make([]int32, len(qlist))
	var stack []int32
	pi := 0
	for i := range qlist {
		s := qlist[i].Start
		for pi < len(plist) && plist[pi].Start < s {
			for len(stack) > 0 && plist[stack[len(stack)-1]].End < plist[pi].Start {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, int32(pi))
			pi++
		}
		for len(stack) > 0 && plist[stack[len(stack)-1]].End < s {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			out[i] = stack[len(stack)-1]
		} else {
			out[i] = -1
		}
	}
	return out
}

// fillChildPointers sets, for each entry and each child view node, the
// position in the child's list of the first matching partner: the first
// child for pc-edges, the first descendant for ad-edges (§III-A pointer 1).
func (m *Materialized) fillChildPointers() {
	for q := range m.Lists {
		for ci, c := range m.View.Nodes[q].Children {
			clist := m.Lists[c]
			switch m.View.Nodes[c].Axis {
			case tpq.Descendant:
				for i := range m.Lists[q] {
					e := &m.Lists[q][i]
					j := sort.Search(len(clist), func(k int) bool { return clist[k].Start > e.Start })
					if j < len(clist) && clist[j].Start < e.End {
						e.Children[ci] = int32(j)
					}
				}
			case tpq.Child:
				// First list position per parent node.
				first := make(map[xmltree.NodeID]int32, len(clist))
				for j := len(clist) - 1; j >= 0; j-- {
					first[m.Doc.Node(clist[j].Node).Parent] = int32(j)
				}
				for i := range m.Lists[q] {
					e := &m.Lists[q][i]
					if j, ok := first[e.Node]; ok {
						e.Children[ci] = j
					}
				}
			}
		}
	}
}

// PointerPolicy selects which of the conceptual DAG's pointers a storage
// scheme materializes.
type PointerPolicy int8

const (
	// FullPointers materializes every pointer: the LE scheme (§III-B).
	FullPointers PointerPolicy = iota
	// PartialPointers materializes child pointers always, and following /
	// descendant pointers only when the pointed node is more than one entry
	// away in its list: the LEp scheme (§III-C).
	PartialPointers
	// NoPointers drops every pointer: the element scheme (§I).
	NoPointers
)

// String names the policy.
func (p PointerPolicy) String() string {
	switch p {
	case FullPointers:
		return "LE"
	case PartialPointers:
		return "LEp"
	case NoPointers:
		return "E"
	default:
		return fmt.Sprintf("PointerPolicy(%d)", int(p))
	}
}

// ApplyPolicy returns a copy of m with pointers reduced per the policy.
// FullPointers returns m itself (no copy).
func (m *Materialized) ApplyPolicy(policy PointerPolicy) *Materialized {
	return m.applyPolicy(policy, 1)
}

// ApplyPartialThreshold generalizes the LEp heuristic: child pointers are
// always kept, and following/descendant pointers only when the pointed
// node is more than k entries away in its list. k = 1 is the paper's LEp
// rule (§III-C); larger k materializes fewer pointers. Used by the
// LEp-threshold ablation experiment.
func (m *Materialized) ApplyPartialThreshold(k int32) *Materialized {
	if k < 1 {
		return m
	}
	return m.applyPolicy(PartialPointers, k)
}

func (m *Materialized) applyPolicy(policy PointerPolicy, k int32) *Materialized {
	if policy == FullPointers {
		return m
	}
	out := &Materialized{View: m.View, Doc: m.Doc, Lists: make([][]Entry, len(m.Lists))}
	for q, list := range m.Lists {
		nl := make([]Entry, len(list))
		copy(nl, list)
		for i := range nl {
			if len(list[i].Children) > 0 {
				nl[i].Children = append([]int32(nil), list[i].Children...)
			}
			switch policy {
			case NoPointers:
				nl[i].Following = NoPointer
				nl[i].Descendant = NoPointer
				for c := range nl[i].Children {
					nl[i].Children[c] = NoPointer
				}
			case PartialPointers:
				// Keep following/descendant only when the pointed node is
				// more than k entries away (§III-C with k = 1).
				if nl[i].Following != NoPointer && nl[i].Following <= int32(i)+k {
					nl[i].Following = NoPointer
				}
				if nl[i].Descendant != NoPointer && nl[i].Descendant <= int32(i)+k {
					nl[i].Descendant = NoPointer
				}
			}
		}
		out.Lists[q] = nl
	}
	return out
}
