package views

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewjoin/internal/oracle"
	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// fig1Doc builds a document consistent with the paper's Fig. 1(a) narrative
// around view v1 = //a//e: a1 contains e1,e2,e3 (and no f); a2 contains f1,
// e4, a nested a3 with e5, then e6.
func fig1Doc(t testing.TB) *xmltree.Document {
	t.Helper()
	b := xmltree.NewBuilder()
	b.Element("r", func() {
		b.Element("a", func() { // a1
			b.Leaf("e") // e1
			b.Leaf("e") // e2
			b.Leaf("e") // e3
		})
		b.Element("a", func() { // a2
			b.Leaf("f")             // f1
			b.Leaf("e")             // e4
			b.Element("a", func() { // a3
				b.Leaf("e") // e5
			})
			b.Leaf("e") // e6
		})
	})
	return b.MustDocument()
}

func TestMaterializeFig1V1(t *testing.T) {
	d := fig1Doc(t)
	m := MustMaterialize(d, tpq.MustParse("//a//e"))

	la, le := m.Lists[0], m.Lists[1]
	if len(la) != 3 {
		t.Fatalf("|L_a| = %d, want 3", len(la))
	}
	if len(le) != 6 {
		t.Fatalf("|L_e| = %d, want 6", len(le))
	}

	// Following pointers in L_e per Example 3.1: e1->e2, e2->e3, e3->null,
	// e4->e6 (not e5: different lowest a-ancestor), e5->null, e6->null.
	wantFollowing := []int32{1, 2, NoPointer, 5, NoPointer, NoPointer}
	for i, w := range wantFollowing {
		if le[i].Following != w {
			t.Errorf("L_e[%d].Following = %d, want %d", i, le[i].Following, w)
		}
	}

	// Descendant pointers in L_a: a1->null (a2 not nested), a2->a3, a3->null.
	wantDesc := []int32{NoPointer, 2, NoPointer}
	for i, w := range wantDesc {
		if la[i].Descendant != w {
			t.Errorf("L_a[%d].Descendant = %d, want %d", i, la[i].Descendant, w)
		}
	}

	// Following pointers in L_a (root list, no parent constraint):
	// a1->a2, a2->null (a3 nested inside), a3->null.
	wantAFollow := []int32{1, NoPointer, NoPointer}
	for i, w := range wantAFollow {
		if la[i].Following != w {
			t.Errorf("L_a[%d].Following = %d, want %d", i, la[i].Following, w)
		}
	}

	// Child (ad) pointers a -> first e descendant: a1->e1, a2->e4, a3->e5.
	wantChild := []int32{0, 3, 4}
	for i, w := range wantChild {
		if got := la[i].Children[0]; got != w {
			t.Errorf("L_a[%d].Children[0] = %d, want %d", i, got, w)
		}
	}

	// Tuple content: 7 (a,e) pairs.
	if got := len(m.Matches()); got != 7 {
		t.Errorf("|Matches| = %d, want 7", got)
	}
	if got := m.TotalEntries(); got != 9 {
		t.Errorf("TotalEntries = %d, want 9", got)
	}
}

func TestMaterializePCEdges(t *testing.T) {
	d := fig1Doc(t)
	// //a/e: direct children only. a1 has e1,e2,e3 as children; a2 has e4 and
	// e6 (e5 is under a3); a3 has e5.
	m := MustMaterialize(d, tpq.MustParse("//a/e"))
	if got := len(m.Lists[0]); got != 3 {
		t.Fatalf("|L_a| = %d, want 3", got)
	}
	if got := len(m.Lists[1]); got != 6 {
		t.Fatalf("|L_e| = %d, want 6", got)
	}
	if got := len(m.Matches()); got != 6 {
		t.Errorf("|Matches| = %d, want 6 (pc pairs)", got)
	}
	// Child pointer must reach the first *child*, not the first descendant:
	// a2's first e child is e4 (position 3).
	la := m.Lists[0]
	if la[1].Children[0] != 3 {
		t.Errorf("a2 child pointer = %d, want 3 (e4)", la[1].Children[0])
	}
}

func TestMaterializeEmptyView(t *testing.T) {
	d := fig1Doc(t)
	m := MustMaterialize(d, tpq.MustParse("//e//f"))
	for q, l := range m.Lists {
		if len(l) != 0 {
			t.Errorf("list %d not empty: %d entries", q, len(l))
		}
	}
	if len(m.Matches()) != 0 {
		t.Errorf("matches not empty")
	}
	// Unknown element type.
	m = MustMaterialize(d, tpq.MustParse("//zz"))
	if m.TotalEntries() != 0 {
		t.Errorf("unknown type should materialize empty lists")
	}
}

func TestSolutionListsPruneNonSolutions(t *testing.T) {
	d := fig1Doc(t)
	// //a//f: only a2 has an f descendant.
	m := MustMaterialize(d, tpq.MustParse("//a//f"))
	if got := len(m.Lists[0]); got != 1 {
		t.Fatalf("|L_a| = %d, want 1 (only a2 has f below)", got)
	}
	if got := len(m.Lists[1]); got != 1 {
		t.Fatalf("|L_f| = %d, want 1", got)
	}
	// Upward pruning: //f//e has no matches; also check a three-level view
	// where the middle type exists but never under the root.
	m = MustMaterialize(d, tpq.MustParse("//r//f//e"))
	if m.TotalEntries() != 0 {
		t.Errorf("//r//f//e should be empty, got %d entries", m.TotalEntries())
	}
}

func TestApplyPolicy(t *testing.T) {
	d := fig1Doc(t)
	le := MustMaterialize(d, tpq.MustParse("//a//e"))
	e := le.ApplyPolicy(NoPointers)
	lep := le.ApplyPolicy(PartialPointers)

	if e.NumPointers() != 0 {
		t.Errorf("E scheme pointers = %d, want 0", e.NumPointers())
	}
	if got, full := lep.NumPointers(), le.NumPointers(); got >= full {
		t.Errorf("LEp pointers = %d, want < LE's %d", got, full)
	}
	// LEp keeps all child pointers.
	for q := range lep.Lists {
		for i := range lep.Lists[q] {
			for c := range lep.Lists[q][i].Children {
				if lep.Lists[q][i].Children[c] != le.Lists[q][i].Children[c] {
					t.Errorf("LEp changed child pointer at list %d entry %d", q, i)
				}
			}
		}
	}
	// LEp drops adjacent following pointers (e1->e2) and keeps far ones
	// (e4->e6, two entries away).
	if lep.Lists[1][0].Following != NoPointer {
		t.Errorf("LEp kept adjacent following pointer e1->e2")
	}
	if lep.Lists[1][3].Following != 5 {
		t.Errorf("LEp dropped far following pointer e4->e6: %d", lep.Lists[1][3].Following)
	}
	// Original untouched.
	if le.Lists[1][0].Following != 1 {
		t.Errorf("ApplyPolicy mutated the source view")
	}
	// FullPointers is the identity.
	if le.ApplyPolicy(FullPointers) != le {
		t.Errorf("ApplyPolicy(FullPointers) should return the receiver")
	}
}

func TestPolicyString(t *testing.T) {
	if FullPointers.String() != "LE" || PartialPointers.String() != "LEp" || NoPointers.String() != "E" {
		t.Errorf("unexpected policy names: %s %s %s", FullPointers, PartialPointers, NoPointers)
	}
}

// TestSolutionListsMatchOracle property-checks the materializer's solution
// lists and tuple content against the brute-force oracle.
func TestSolutionListsMatchOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDoc(rng, 80, nil)
		v := testutil.RandomPattern(rng, 4, nil)
		m, err := Materialize(d, v)
		if err != nil {
			t.Logf("Materialize: %v", err)
			return false
		}
		wantSol := oracle.SolutionNodes(d, v)
		for q := range m.Lists {
			got := make([]xmltree.NodeID, len(m.Lists[q]))
			for i := range m.Lists[q] {
				got[i] = m.Lists[q][i].Node
			}
			if len(got) != len(wantSol[q]) {
				t.Logf("view %s node %d: |sol| = %d, want %d", v, q, len(got), len(wantSol[q]))
				return false
			}
			for i := range got {
				if got[i] != wantSol[q][i] {
					t.Logf("view %s node %d entry %d: %d != %d", v, q, i, got[i], wantSol[q][i])
					return false
				}
			}
		}
		if !m.Matches().SameAs(oracle.Eval(d, v)) {
			t.Logf("view %s: tuple content mismatch", v)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPointersMatchDefinition property-checks every materialized pointer
// against the §III-A definitions computed by brute force.
func TestPointersMatchDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDoc(rng, 60, nil)
		v := testutil.RandomPattern(rng, 4, nil)
		m, err := Materialize(d, v)
		if err != nil {
			return false
		}
		return verifyPointers(t, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// verifyPointers recomputes each pointer per definition and compares.
func verifyPointers(t *testing.T, m *Materialized) bool {
	d := m.Doc
	for q, list := range m.Lists {
		p := m.View.Nodes[q].Parent
		for i := range list {
			ni := d.Node(list[i].Node)
			// Descendant: first same-type descendant.
			wantDesc := NoPointer
			for j := range list {
				if d.Node(list[j].Node).Start > ni.Start && d.Node(list[j].Node).End < ni.End {
					wantDesc = int32(j)
					break
				}
			}
			if list[i].Descendant != wantDesc {
				t.Logf("view %s list %d entry %d: descendant = %d, want %d", m.View, q, i, list[i].Descendant, wantDesc)
				return false
			}
			// Following: first following with same lowest parent-type ancestor.
			wantF := NoPointer
			for j := range list {
				nj := d.Node(list[j].Node)
				if nj.Start <= ni.End {
					continue
				}
				if p != -1 && lowestAnc(m, p, ni) != lowestAnc(m, p, nj) {
					continue
				}
				wantF = int32(j)
				break
			}
			if list[i].Following != wantF {
				t.Logf("view %s list %d entry %d: following = %d, want %d", m.View, q, i, list[i].Following, wantF)
				return false
			}
			// Child pointers.
			for ci, c := range m.View.Nodes[q].Children {
				want := NoPointer
				for j := range m.Lists[c] {
					nj := d.Node(m.Lists[c][j].Node)
					if !(nj.Start > ni.Start && nj.End < ni.End) {
						continue
					}
					if m.View.Nodes[c].Axis == tpq.Child && nj.Level != ni.Level+1 {
						continue
					}
					want = int32(j)
					break
				}
				if list[i].Children[ci] != want {
					t.Logf("view %s list %d entry %d child %d: = %d, want %d", m.View, q, i, ci, list[i].Children[ci], want)
					return false
				}
			}
		}
	}
	return true
}

// lowestAnc finds the position in list p of the lowest entry containing n,
// or -1, by brute force.
func lowestAnc(m *Materialized, p int, n xmltree.Node) int32 {
	best := int32(-1)
	bestStart := int32(-1)
	for j := range m.Lists[p] {
		nj := m.Doc.Node(m.Lists[p][j].Node)
		if nj.Start < n.Start && n.End < nj.End && nj.Start > bestStart {
			best = int32(j)
			bestStart = nj.Start
		}
	}
	return best
}
