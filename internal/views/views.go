// Package views materializes tree pattern views over XML documents: it
// computes T_v, the materialized result of a view pattern v on a document T
// (§III of the paper), in the three representations the storage schemes
// need:
//
//   - per-view-node solution lists in document order (element and
//     linked-element schemes),
//   - the full set of matches as tuples (tuple scheme), and
//   - the child / descendant / following pointers of the conceptual DAG
//     structure (§III-A) for the linked-element schemes.
package views

import (
	"fmt"
	"sort"

	"viewjoin/internal/match"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// NoPointer marks an absent (null) pointer in materialized entries.
const NoPointer int32 = -1

// Entry is one solution node in a materialized view list, together with the
// DAG pointers of the linked-element scheme. Pointer values are positions
// (indices) within the target list; the storage layer maps positions to
// (page, offset) pairs.
type Entry struct {
	Node  xmltree.NodeID // the data node (its id doubles as a record id)
	Start int32
	End   int32
	Level int32

	// Following is the position in this same list of the first following
	// q-type node sharing the same lowest parent-type ancestor (§III-A
	// pointer 3), or NoPointer.
	Following int32
	// Descendant is the position in this same list of the first q-type
	// descendant (§III-A pointer 2), or NoPointer.
	Descendant int32
	// Children holds one pointer per child of this view node in the view
	// pattern, in tpq child order: the position in the child's list of the
	// first matching child/descendant (§III-A pointer 1), or NoPointer.
	Children []int32
}

// Materialized is a fully materialized view: one list of entries per view
// node, in document order, plus the matches for the tuple scheme (computed
// lazily).
type Materialized struct {
	View  *tpq.Pattern
	Doc   *xmltree.Document
	Lists [][]Entry // indexed by view node, then by list position

	matches match.Set // lazily computed tuple-scheme content
	hasM    bool
}

// Materialize computes T_v for view v over document d: solution lists with
// all LE pointers populated.
func Materialize(d *xmltree.Document, v *tpq.Pattern) (*Materialized, error) {
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("views: %w", err)
	}
	return FromSolutionLists(d, v, solutionLists(d, v)), nil
}

// SolutionLists computes, for each view node q, the data nodes of q's type
// that participate in at least one match of v, in document order — the raw
// node-id form of the materialized lists. The incremental maintenance layer
// uses it to diff a view's membership after a document update without
// paying for pointer construction on lists that did not change.
func SolutionLists(d *xmltree.Document, v *tpq.Pattern) [][]xmltree.NodeID {
	return solutionLists(d, v)
}

// FromSolutionLists builds a Materialized view from precomputed solution
// lists, running the exact same entry construction and pointer fills as
// Materialize — so a maintained view rebuilt from diffed lists is
// byte-identical to one materialized from scratch.
func FromSolutionLists(d *xmltree.Document, v *tpq.Pattern, sol [][]xmltree.NodeID) *Materialized {
	m := &Materialized{View: v, Doc: d, Lists: make([][]Entry, v.Size())}
	for q := range sol {
		list := make([]Entry, len(sol[q]))
		for i, id := range sol[q] {
			n := d.Node(id)
			list[i] = Entry{
				Node:       id,
				Start:      n.Start,
				End:        n.End,
				Level:      n.Level,
				Following:  NoPointer,
				Descendant: NoPointer,
			}
			if nc := len(v.Nodes[q].Children); nc > 0 {
				list[i].Children = make([]int32, nc)
				for c := range list[i].Children {
					list[i].Children[c] = NoPointer
				}
			}
		}
		m.Lists[q] = list
	}
	m.fillDescendantPointers()
	m.fillFollowingPointers()
	m.fillChildPointers()
	return m
}

// MustMaterialize is Materialize but panics on error.
func MustMaterialize(d *xmltree.Document, v *tpq.Pattern) *Materialized {
	m, err := Materialize(d, v)
	if err != nil {
		panic(err)
	}
	return m
}

// ListSizes returns |L_q| for each view node q — the quantity the cost
// model of §V is built on.
func (m *Materialized) ListSizes() []int {
	out := make([]int, len(m.Lists))
	for i := range m.Lists {
		out[i] = len(m.Lists[i])
	}
	return out
}

// TotalEntries returns the total number of entries across all lists.
func (m *Materialized) TotalEntries() int {
	n := 0
	for i := range m.Lists {
		n += len(m.Lists[i])
	}
	return n
}

// NumPointers returns the number of non-null materialized pointers, the
// quantity reported in the paper's Table IV.
func (m *Materialized) NumPointers() int {
	n := 0
	for _, list := range m.Lists {
		for i := range list {
			if list[i].Following != NoPointer {
				n++
			}
			if list[i].Descendant != NoPointer {
				n++
			}
			for _, c := range list[i].Children {
				if c != NoPointer {
					n++
				}
			}
		}
	}
	return n
}

// Matches returns the tuple-scheme content of the view: every match of v on
// d, sorted by the composite key (start of node 1, start of node 2, ...) as
// in InterJoin's storage (§I). The result is computed once and cached.
func (m *Materialized) Matches() match.Set {
	if m.hasM {
		return m.matches
	}
	m.matches = m.enumerateMatches()
	m.hasM = true
	return m.matches
}

// enumerateMatches enumerates embeddings restricted to the solution lists
// (every node of a solution list participates in at least one match, so the
// lists are exactly the candidate space).
func (m *Materialized) enumerateMatches() match.Set {
	var out match.Set
	cur := make(match.Match, m.View.Size())
	var rec func(qi int)
	rec = func(qi int) {
		if qi == m.View.Size() {
			out = append(out, match.Clone(cur))
			return
		}
		qn := m.View.Nodes[qi]
		parent := m.Doc.Node(cur[qn.Parent])
		list := m.Lists[qi]
		lo := sort.Search(len(list), func(k int) bool { return list[k].Start > parent.Start })
		for i := lo; i < len(list) && list[i].Start < parent.End; i++ {
			if qn.Axis == tpq.Child && list[i].Level != parent.Level+1 {
				continue
			}
			cur[qi] = list[i].Node
			rec(qi + 1)
		}
	}
	for _, e := range m.Lists[0] {
		cur[0] = e.Node
		rec(1)
	}
	// Pattern node order is pre-order, and list entries are visited in
	// document order, so the output is already sorted by composite start key
	// per the tuple scheme; no extra sort needed.
	return out
}

// solutionLists computes, for each view node q, the data nodes of q's type
// that participate in at least one match of v — in document order. It runs
// a downward qualification pass (post-order) followed by an upward
// qualification pass (pre-order); both are linear-ish via sorted lists.
func solutionLists(d *xmltree.Document, v *tpq.Pattern) [][]xmltree.NodeID {
	down := make([][]xmltree.NodeID, v.Size())

	// Downward pass: down[q] = nodes of q's type whose subtree matches the
	// subtree of q. Process in post-order (children before parents); node
	// indices are pre-order so a reverse index sweep works.
	for q := v.Size() - 1; q >= 0; q-- {
		t := d.TypeByName(v.Nodes[q].Label)
		if t == xmltree.NoType {
			return make([][]xmltree.NodeID, v.Size())
		}
		cands := d.NodesOfType(t)
		if q == 0 && v.Nodes[0].Axis == tpq.Child {
			// "/a" root: only the document root can match.
			if len(cands) > 0 && cands[0] == d.Root() {
				cands = cands[:1]
			} else {
				cands = nil
			}
		}
		keep := cands
		for ci, c := range v.Nodes[q].Children {
			_ = ci
			keep = filterHavingPartnerBelow(d, keep, down[c], v.Nodes[c].Axis)
			if len(keep) == 0 {
				break
			}
		}
		down[q] = keep
		if len(keep) == 0 && q > 0 {
			// Some branch is empty: the whole view has no matches.
			return make([][]xmltree.NodeID, v.Size())
		}
	}
	if len(down[0]) == 0 {
		return make([][]xmltree.NodeID, v.Size())
	}

	// Upward pass: sol[q] = down[q] nodes that have a qualifying chain of
	// ancestors up to the view root.
	sol := make([][]xmltree.NodeID, v.Size())
	sol[0] = down[0]
	for q := 1; q < v.Size(); q++ {
		p := v.Nodes[q].Parent
		sol[q] = filterHavingPartnerAbove(d, down[q], sol[p], v.Nodes[q].Axis)
	}
	return sol
}

// filterHavingPartnerBelow keeps the nodes of cands that have at least one
// node of partners strictly below them (Descendant axis) or as a direct
// child (Child axis). Both inputs are in document order.
func filterHavingPartnerBelow(d *xmltree.Document, cands, partners []xmltree.NodeID, axis tpq.Axis) []xmltree.NodeID {
	if len(cands) == 0 || len(partners) == 0 {
		return nil
	}
	var out []xmltree.NodeID
	switch axis {
	case tpq.Descendant:
		for _, n := range cands {
			nn := d.Node(n)
			// First partner starting after n starts; it is a descendant iff
			// it starts before n ends (regions are properly nested).
			i := sort.Search(len(partners), func(k int) bool { return d.Node(partners[k]).Start > nn.Start })
			if i < len(partners) && d.Node(partners[i]).Start < nn.End {
				out = append(out, n)
			}
		}
	case tpq.Child:
		hasChild := make(map[xmltree.NodeID]bool, len(partners))
		for _, m := range partners {
			hasChild[d.Node(m).Parent] = true
		}
		for _, n := range cands {
			if hasChild[n] {
				out = append(out, n)
			}
		}
	}
	return out
}

// filterHavingPartnerAbove keeps the nodes of cands that have an ancestor
// (Descendant axis) or parent (Child axis) among partners. Both inputs are
// in document order.
func filterHavingPartnerAbove(d *xmltree.Document, cands, partners []xmltree.NodeID, axis tpq.Axis) []xmltree.NodeID {
	if len(cands) == 0 || len(partners) == 0 {
		return nil
	}
	var out []xmltree.NodeID
	switch axis {
	case tpq.Descendant:
		// Merge in document order keeping a stack of open partner regions.
		var stack []xmltree.NodeID
		pi := 0
		for _, n := range cands {
			nn := d.Node(n)
			for pi < len(partners) && d.Node(partners[pi]).Start < nn.Start {
				for len(stack) > 0 && d.Node(stack[len(stack)-1]).End < d.Node(partners[pi]).Start {
					stack = stack[:len(stack)-1]
				}
				stack = append(stack, partners[pi])
				pi++
			}
			for len(stack) > 0 && d.Node(stack[len(stack)-1]).End < nn.Start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && d.Node(stack[len(stack)-1]).IsAncestorOf(nn) {
				out = append(out, n)
			}
		}
	case tpq.Child:
		inPartners := make(map[xmltree.NodeID]bool, len(partners))
		for _, m := range partners {
			inPartners[m] = true
		}
		for _, n := range cands {
			if inPartners[d.Node(n).Parent] {
				out = append(out, n)
			}
		}
	}
	return out
}
