package views

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewjoin/internal/match"
	"viewjoin/internal/oracle"
	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// TestFromMatchesEqualsMaterialize: building a view from a complete match
// set must reproduce exactly what direct materialization computes — lists,
// pointers, and tuple content.
func TestFromMatchesEqualsMaterialize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDoc(rng, 80, nil)
		p := testutil.RandomPattern(rng, 4, nil)
		want, err := Materialize(d, p)
		if err != nil {
			return false
		}
		got, err := FromMatches(d, p, oracle.Eval(d, p))
		if err != nil {
			t.Logf("FromMatches: %v", err)
			return false
		}
		if len(got.Lists) != len(want.Lists) {
			return false
		}
		for q := range want.Lists {
			if len(got.Lists[q]) != len(want.Lists[q]) {
				t.Logf("list %d: %d vs %d entries", q, len(got.Lists[q]), len(want.Lists[q]))
				return false
			}
			for i := range want.Lists[q] {
				a, b := got.Lists[q][i], want.Lists[q][i]
				if a.Node != b.Node || a.Following != b.Following || a.Descendant != b.Descendant {
					t.Logf("list %d entry %d differs: %+v vs %+v", q, i, a, b)
					return false
				}
				for c := range b.Children {
					if a.Children[c] != b.Children[c] {
						return false
					}
				}
			}
		}
		if !got.Matches().SameAs(want.Matches()) {
			t.Logf("tuple content differs")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFromMatchesErrors(t *testing.T) {
	d, err := xmltree.ParseString(`<r><a/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	p := tpq.MustParse("//a//b")
	if _, err := FromMatches(d, p, match.Set{match.Match{0}}); err == nil {
		t.Errorf("arity mismatch: expected error")
	}
	bad := &tpq.Pattern{Nodes: []tpq.Node{{Label: "a", Parent: -1}, {Label: "a", Parent: 0}}}
	bad.Nodes[0].Children = []int{1}
	if _, err := FromMatches(d, bad, nil); err == nil {
		t.Errorf("invalid pattern: expected error")
	}
}

func TestFromMatchesEmpty(t *testing.T) {
	d, err := xmltree.ParseString(`<r><a/></r>`)
	if err != nil {
		t.Fatal(err)
	}
	p := tpq.MustParse("//a//b")
	m, err := FromMatches(d, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalEntries() != 0 || len(m.Matches()) != 0 {
		t.Errorf("empty match set must give an empty view")
	}
}
