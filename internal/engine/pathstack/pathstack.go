// Package pathstack implements the PathStack structural join algorithm of
// Bruno, Koudas & Srivastava (SIGMOD 2002), the "PS"/"TS-on-paths" baseline
// of the paper's motivation experiment (§I, §VI-A).
//
// PathStack evaluates a path query over one element stream per query node
// using a chain of linked stacks: every pushed element records the top of
// its parent's stack at push time, and each leaf push expands into the
// root-to-leaf combinations it closes over. Unlike the shared window stage
// used by TwigStack/ViewJoin, PathStack emits solutions directly from its
// stacks — it is an independent implementation that cross-checks the other
// engines on path queries.
package pathstack

import (
	"fmt"
	"sync"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/match"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// frame is one stack element: a region label plus the index of the top of
// the parent stack at push time (-1 when the parent stack was empty, which
// only happens for the root).
type frame struct {
	l         store.Label
	parentTop int
}

// Prepared is the compile-once part of a PathStack evaluation: the bound
// per-query-node lists plus a pool of reusable run scratch (cursors,
// linked stacks, the expansion buffer). Immutable after construction and
// safe for concurrent Run calls.
type Prepared struct {
	d     *xmltree.Document
	q     *tpq.Pattern
	lists []*store.ListFile
	pool  sync.Pool // *scratch
}

// scratch is the per-run state of one PathStack execution, reset in place
// between runs.
type scratch struct {
	curBuf []store.ListCursor
	cur    []*store.ListCursor
	stacks [][]frame
	buf    []store.Label
	ic     engine.Interrupter
	// first/after mirror Options.First/Options.After. PathStack emits
	// leaf-major (out of document order), so a first-k bound cannot stop the
	// scan early; instead the accumulator keeps only the first smallest
	// matches seen so far (periodic sort+truncate), bounding peak result
	// memory to O(first) while still scanning every candidate.
	first int
	after []int32
}

// Lists returns the per-query-node list files the plan is bound to, for
// partition planning.
func (p *Prepared) Lists() []*store.ListFile { return p.lists }

// Footprint estimates the plan-resident bytes beyond the shared document
// and view stores: PathStack binds references to existing list files, so
// a cached plan carries only those bindings. Pooled run scratch is
// excluded.
func (p *Prepared) Footprint() int64 { return int64(len(p.lists)) * 8 }

// Prepare binds the path query q over the given lists for repeated runs.
// It returns an error if q is not a path query.
func Prepare(d *xmltree.Document, q *tpq.Pattern, lists []*store.ListFile) (*Prepared, error) {
	if !q.IsPath() {
		return nil, fmt.Errorf("pathstack: %s is not a path query", q)
	}
	return &Prepared{d: d, q: q, lists: lists}, nil
}

// Run executes the prepared plan once, drawing scratch from the pool and
// resetting it in place.
func (p *Prepared) Run(io *counters.IO, opts engine.Options) (match.Set, error) {
	sc, _ := p.pool.Get().(*scratch)
	n := p.q.Size()
	if sc == nil {
		sc = &scratch{
			curBuf: make([]store.ListCursor, n),
			cur:    make([]*store.ListCursor, n),
			stacks: make([][]frame, n),
			buf:    make([]store.Label, n),
		}
	}
	tr := opts.Tracer
	sc.ic = engine.NewInterrupter(opts.Interrupt)
	sc.first, sc.after = opts.First, opts.After
	for i, l := range p.lists {
		engine.ResetCursor(&sc.curBuf[i], l, io, tr, i, opts.Restrict)
		sc.cur[i] = &sc.curBuf[i]
	}
	for i := range sc.stacks {
		sc.stacks[i] = sc.stacks[i][:0]
	}
	out := p.eval(sc, io, tr)
	// ErrStop is a quota-driven stop requested by the interrupt hook (the
	// parallel cutoff), not a failure: the bounded output is the answer.
	if err := sc.ic.Err(); err != nil && err != engine.ErrStop {
		p.pool.Put(sc)
		return nil, err
	}
	first := sc.first
	p.pool.Put(sc) // sc must not be touched past this point
	// The linked stacks emit leaf-major (ancestor combinations enumerated
	// newest-first); canonicalize to the lexicographic document order the
	// other engines produce so sequential and partitioned runs are
	// byte-comparable.
	out.Sort()
	if first > 0 && len(out) > first {
		out = out[:first]
	}
	io.C.Matches = int64(len(out))
	if len(out) > 0 {
		// PathStack cannot stream: time-to-first-match is the full
		// scan+sort, stamped here so the metric reflects that honestly.
		io.MarkFirstMatch()
	}
	return out, nil
}

// Eval evaluates the path query q over the per-query-node lists using
// PathStack and returns all tree pattern instances (one-shot Prepare +
// Run). It returns an error if q is not a path query.
func Eval(d *xmltree.Document, q *tpq.Pattern, lists []*store.ListFile, io *counters.IO, opts engine.Options) (match.Set, error) {
	p, err := Prepare(d, q, lists)
	if err != nil {
		return nil, err
	}
	return p.Run(io, opts)
}

// eval is the PathStack main loop over one run's scratch.
func (p *Prepared) eval(sc *scratch, io *counters.IO, tr obs.Tracer) match.Set {
	d, q := p.d, p.q
	n := q.Size()
	cur, stacks, buf := sc.cur, sc.stacks, sc.buf
	var out match.Set

	for {
		if sc.ic.Check() != nil {
			// On ErrStop the output so far is the (bounded) answer; on a
			// real error Run discards it, so returning it is always safe.
			return out
		}
		// qmin: the valid cursor with the smallest start label.
		qmin := -1
		for i := 0; i < n; i++ {
			if !cur[i].Valid() {
				continue
			}
			if qmin == -1 || cur[i].Item().Start < cur[qmin].Item().Start {
				qmin = i
			}
			io.C.Comparisons++
		}
		if qmin == -1 {
			break
		}
		it := cur[qmin].Item()
		l := store.Label{Start: it.Start, End: it.End, Level: it.Level}

		// Pop every stack entry that ended before this element starts.
		for i := 0; i < n; i++ {
			popped := 0
			for len(stacks[i]) > 0 && stacks[i][len(stacks[i])-1].l.End < l.Start {
				stacks[i] = stacks[i][:len(stacks[i])-1]
				popped++
				io.C.Comparisons++
			}
			if popped > 0 && tr != nil {
				tr.Event(obs.EvStackPop, i, int64(popped))
			}
		}

		pushed := false
		if qmin == 0 {
			if q.Nodes[0].Axis == tpq.Descendant || l.Level == 0 {
				stacks[0] = append(stacks[0], frame{l, -1})
				pushed = true
			}
		} else if len(stacks[qmin-1]) > 0 {
			stacks[qmin] = append(stacks[qmin], frame{l, len(stacks[qmin-1]) - 1})
			pushed = true
		}
		if pushed && tr != nil {
			tr.Event(obs.EvStackPush, qmin, 1)
		}
		if pushed && qmin == n-1 {
			expand(d, q, stacks, n-1, len(stacks[n-1])-1, buf, io, sc, &out)
			stacks[n-1] = stacks[n-1][:len(stacks[n-1])-1]
			if tr != nil {
				tr.Event(obs.EvStackPop, n-1, 1)
			}
			// Bounded accumulation under a first-k quota: once the buffer
			// grows well past the quota, keep only the first smallest
			// matches. The slack (4x + 64) amortizes the sorts to O(log)
			// per appended match.
			if sc.first > 0 && len(out) >= 4*sc.first+64 {
				out.Sort()
				out = out[:sc.first]
			}
		}
		cur[qmin].Next()
	}
	return out
}

// afterCursor reports whether the start-label tuple in buf is strictly
// greater than the cursor tuple (lexicographic, i.e. document order).
func afterCursor(buf []store.Label, after []int32) bool {
	for k := range buf {
		if s := buf[k].Start; s != after[k] {
			return s > after[k]
		}
	}
	return false
}

// expand emits every root-to-leaf combination closed by the frame at
// position fi of stack qi: the element pairs with every frame of the parent
// stack up to its recorded parentTop, subject to the pc-level checks that
// the stacks alone do not enforce.
func expand(d *xmltree.Document, q *tpq.Pattern, stacks [][]frame, qi, fi int,
	buf []store.Label, io *counters.IO, sc *scratch, out *match.Set) {
	buf[qi] = stacks[qi][fi].l
	if qi == 0 {
		if sc.ic.Check() != nil {
			return
		}
		if sc.after != nil && !afterCursor(buf, sc.after) {
			return
		}
		m := make(match.Match, len(buf))
		for k := range buf {
			m[k] = d.FindByStart(buf[k].Start)
		}
		*out = append(*out, m)
		return
	}
	for pi := stacks[qi][fi].parentTop; pi >= 0; pi-- {
		if sc.ic.Err() != nil {
			return
		}
		io.C.Comparisons++
		if q.Nodes[qi].Axis == tpq.Child && stacks[qi-1][pi].l.Level != buf[qi].Level-1 {
			continue
		}
		expand(d, q, stacks, qi-1, pi, buf, io, sc, out)
	}
}
