package pathstack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/match"
	"viewjoin/internal/oracle"
	"viewjoin/internal/store"
	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/vsq"
	"viewjoin/internal/xmltree"
)

func evalWith(t testing.TB, d *xmltree.Document, q *tpq.Pattern, vs []*tpq.Pattern,
	kind store.Kind) (match.Set, counters.Counters) {
	t.Helper()
	v, err := vsq.Build(q, vs)
	if err != nil {
		t.Fatalf("vsq.Build: %v", err)
	}
	stores := make([]*store.ViewStore, len(vs))
	for i, vp := range vs {
		stores[i] = store.MustBuild(views.MustMaterialize(d, vp), kind, 256)
	}
	lists, err := engine.BindLists(v, stores)
	if err != nil {
		t.Fatalf("BindLists: %v", err)
	}
	var c counters.Counters
	got, err := Eval(d, q, lists, counters.NewIO(&c, 0), engine.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return got, c
}

func mustDoc(t testing.TB, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSimplePaths(t *testing.T) {
	d := mustDoc(t, `<r><a><b/><b><c/></b></a><a><c/><b><b/><c/></b></a></r>`)
	for _, qs := range []string{"//a", "//a//b", "//a//b//c", "//a/b/c", "//a//c", "//b//c", "//r//a//b//c"} {
		q := tpq.MustParse(qs)
		want := oracle.Eval(d, q)
		got, _ := evalWith(t, d, q, testutil.SingletonViews(q), store.Element)
		if !got.SameAs(want) {
			t.Errorf("%s: got %d matches, want %d", qs, len(got), len(want))
		}
	}
}

func TestNestedRecursion(t *testing.T) {
	// Deeply nested same-type elements: the stress case for stack expansion.
	d := mustDoc(t, `<a><a><a><b/></a><b/></a></a>`)
	q := tpq.MustParse("//a//b")
	want := oracle.Eval(d, q) // 2 b's, nested a's: 3+2 wait — compute via oracle
	got, _ := evalWith(t, d, q, testutil.SingletonViews(q), store.Element)
	if !got.SameAs(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
}

func TestRootAxis(t *testing.T) {
	d := mustDoc(t, `<a><a><b/></a></a>`)
	q := tpq.MustParse("/a//b")
	want := oracle.Eval(d, q)
	got, _ := evalWith(t, d, q, testutil.SingletonViews(q), store.Element)
	if !got.SameAs(want) {
		t.Fatalf("/a//b: got %d matches, want %d", len(got), len(want))
	}
}

func TestRejectsTwigQueries(t *testing.T) {
	d := mustDoc(t, `<r><a/></r>`)
	q := tpq.MustParse("//a[//b]//c")
	var c counters.Counters
	if _, err := Eval(d, q, make([]*store.ListFile, q.Size()), counters.NewIO(&c, 0), engine.Options{}); err == nil {
		t.Fatalf("expected error for twig query")
	}
}

func TestViewsReduceScans(t *testing.T) {
	d := mustDoc(t, `<r><a><b><c/></b></a><a/><b/><c/><c/></r>`)
	q := tpq.MustParse("//a//b//c")
	_, cRaw := evalWith(t, d, q, testutil.SingletonViews(q), store.Element)
	_, cView := evalWith(t, d, q, testutil.WholeQueryView(q), store.Element)
	if cView.ElementsScanned >= cRaw.ElementsScanned {
		t.Errorf("views should reduce scans: %d vs %d", cView.ElementsScanned, cRaw.ElementsScanned)
	}
}

// TestAgainstOracleProperty validates PathStack on random path queries and
// random path-view factorizations, across storage schemes.
func TestAgainstOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDoc(rng, 120, nil)
		q := randomPath(rng, 5)
		var vs []*tpq.Pattern
		switch rng.Intn(3) {
		case 0:
			vs = testutil.SingletonViews(q)
		case 1:
			vs = testutil.PathChunkViews(q, 1+rng.Intn(3))
		default:
			vs = testutil.InterleavedPathViews(q, 1+rng.Intn(2))
		}
		kind := []store.Kind{store.Element, store.Linked, store.LinkedPartial}[rng.Intn(3)]
		want := oracle.Eval(d, q)
		got, _ := evalWith(t, d, q, vs, kind)
		if !got.SameAs(want) {
			t.Logf("seed=%d q=%s views=%v: got %d, want %d", seed, q, vs, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// randomPath builds a random path pattern with unique labels.
func randomPath(rng *rand.Rand, maxNodes int) *tpq.Pattern {
	n := 1 + rng.Intn(maxNodes)
	perm := rng.Perm(len(testutil.Labels))[:n]
	p := &tpq.Pattern{}
	for i := 0; i < n; i++ {
		node := tpq.Node{Label: testutil.Labels[perm[i]], Axis: tpq.Descendant, Parent: i - 1}
		if i > 0 && rng.Intn(2) == 0 {
			node.Axis = tpq.Child
		}
		p.Nodes = append(p.Nodes, node)
		if i > 0 {
			p.Nodes[i-1].Children = []int{i}
		}
	}
	return p
}
