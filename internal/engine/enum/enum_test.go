package enum

import (
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/match"
	"viewjoin/internal/oracle"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

func doc(t testing.TB, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// feed adds every node of the document matching each query node's label,
// in document order — the most naive candidate generator possible. The
// collector must still produce exactly the oracle's answer, since the
// enumeration verifies every query edge.
func feed(d *xmltree.Document, q *tpq.Pattern, c *Collector) {
	for id := xmltree.NodeID(0); int(id) < d.NumNodes(); id++ {
		n := d.Node(id)
		name := d.TypeName(n.Type)
		for qi := range q.Nodes {
			if q.Nodes[qi].Label == name {
				c.Add(qi, Label{Start: n.Start, End: n.End, Level: n.Level})
			}
		}
	}
}

func run(t *testing.T, src, query string, diskBased bool) (match.Set, counters.Counters) {
	t.Helper()
	d := doc(t, src)
	q := tpq.MustParse(query)
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, diskBased, 64)
	feed(d, q, c)
	return c.Result(), cnt
}

func TestEnumerationMatchesOracle(t *testing.T) {
	cases := []struct{ src, q string }{
		{`<r><a><b/><c/></a><a><b/></a></r>`, "//a//b"},
		{`<r><a><b/><c/></a><a><b/></a></r>`, "//a[//b]//c"},
		{`<r><a><b><c/></b></a></r>`, "//a/b/c"},
		{`<a><a><b/></a><b/></a>`, "//a//b"},
		{`<a><b/></a>`, "/a/b"},
		{`<r><a><b/></a></r>`, "/a/b"}, // root axis: no match (a is not doc root)
		{`<r><x/><y/></r>`, "//a//b"},  // empty candidates
	}
	for _, tc := range cases {
		d := doc(t, tc.src)
		q := tpq.MustParse(tc.q)
		want := oracle.Eval(d, q)
		got, _ := run(t, tc.src, tc.q, false)
		if !got.SameAs(want) {
			t.Errorf("%s over %s: got %d, want %d", tc.q, tc.src, len(got), len(want))
		}
	}
}

func TestWindowing(t *testing.T) {
	// Three disjoint a-subtrees: three windows; nested roots share one.
	_, cnt := run(t, `<r><a><b/></a><a><b/></a><a><a><b/></a></a></r>`, "//a//b", false)
	if cnt.Matches != 4 {
		t.Fatalf("matches = %d, want 4", cnt.Matches)
	}
}

func TestPendingBuffer(t *testing.T) {
	// Candidates offered ahead of their window must be buffered and drained
	// when the window opens.
	d := doc(t, `<r><a><b/></a><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 64)

	nodes := d.Nodes()
	var as, bs []Label
	for i := range nodes {
		l := Label{Start: nodes[i].Start, End: nodes[i].End, Level: nodes[i].Level}
		switch d.TypeName(nodes[i].Type) {
		case "a":
			as = append(as, l)
		case "b":
			bs = append(bs, l)
		}
	}
	// Offer ALL b's first (second b is ahead of any window), then the a's.
	c.Add(0, as[0])
	c.Add(1, bs[0])
	c.Add(1, bs[1]) // ahead of window 1: must be buffered, not dropped
	c.Add(0, as[1])
	got := c.Result()
	if len(got) != 2 {
		t.Fatalf("matches = %d, want 2 (pending candidate lost?)", len(got))
	}
}

func TestPendingDropsUncoverable(t *testing.T) {
	d := doc(t, `<r><b/><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 64)
	nodes := d.Nodes()
	// First b precedes every a: buffered then dropped at window open.
	for i := range nodes {
		l := Label{Start: nodes[i].Start, End: nodes[i].End, Level: nodes[i].Level}
		switch d.TypeName(nodes[i].Type) {
		case "b":
			c.Add(1, l)
		case "a":
			c.Add(0, l)
		}
	}
	got := c.Result()
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
}

func TestDiskBasedSpoolAccounting(t *testing.T) {
	_, mem := run(t, `<r><a><b/><b/><b/><b/><b/></a></r>`, "//a//b", false)
	_, disk := run(t, `<r><a><b/><b/><b/><b/><b/></a></r>`, "//a//b", true)
	if mem.PagesWritten != 0 {
		t.Errorf("memory-based wrote %d pages", mem.PagesWritten)
	}
	if disk.PagesWritten == 0 {
		t.Errorf("disk-based wrote no pages")
	}
	if disk.PagesRead <= mem.PagesRead {
		t.Errorf("disk-based must re-read the spool: %d vs %d", disk.PagesRead, mem.PagesRead)
	}
	if mem.Matches != disk.Matches {
		t.Errorf("approaches disagree: %d vs %d", mem.Matches, disk.Matches)
	}
}

func TestPeakEntries(t *testing.T) {
	d := doc(t, `<r><a><b/><b/><b/></a><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	feed(d, q, c)
	c.Result()
	// Largest window: first a + its three b's = 4 entries.
	if c.PeakEntries() != 4 {
		t.Fatalf("PeakEntries = %d, want 4", c.PeakEntries())
	}
	if c.MemoryBytes() != int64(4*LabelBytes) {
		t.Fatalf("MemoryBytes = %d", c.MemoryBytes())
	}
}

func TestPreFlushHook(t *testing.T) {
	d := doc(t, `<r><a><b/></a><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	var regions [][2]int32
	c.PreFlush = func(lo, hi int32) { regions = append(regions, [2]int32{lo, hi}) }
	feed(d, q, c)
	c.Result()
	if len(regions) != 2 {
		t.Fatalf("PreFlush ran %d times, want 2 (one per window)", len(regions))
	}
	for _, r := range regions {
		if r[0] >= r[1] {
			t.Errorf("bad window region %v", r)
		}
	}
}

func TestDuplicateAddsCollapsed(t *testing.T) {
	d := doc(t, `<r><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	feed(d, q, c)
	feed(d, q, c) // offer everything twice
	got := c.Result()
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1 (duplicates must collapse)", len(got))
	}
}

func TestFlushWithoutWindowIsNoop(t *testing.T) {
	d := doc(t, `<r/>`)
	q := tpq.MustParse("//a")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	c.Flush()
	if got := c.Result(); len(got) != 0 {
		t.Fatalf("expected no matches")
	}
}
