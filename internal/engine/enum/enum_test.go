package enum

import (
	"strings"
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/match"
	"viewjoin/internal/oracle"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

func doc(t testing.TB, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// feed adds every node of the document matching each query node's label,
// in document order — the most naive candidate generator possible. The
// collector must still produce exactly the oracle's answer, since the
// enumeration verifies every query edge.
func feed(d *xmltree.Document, q *tpq.Pattern, c *Collector) {
	for id := xmltree.NodeID(0); int(id) < d.NumNodes(); id++ {
		n := d.Node(id)
		name := d.TypeName(n.Type)
		for qi := range q.Nodes {
			if q.Nodes[qi].Label == name {
				c.Add(qi, Label{Start: n.Start, End: n.End, Level: n.Level})
			}
		}
	}
}

func run(t *testing.T, src, query string, diskBased bool) (match.Set, counters.Counters) {
	t.Helper()
	d := doc(t, src)
	q := tpq.MustParse(query)
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, diskBased, 64)
	feed(d, q, c)
	return c.Result(), cnt
}

func TestEnumerationMatchesOracle(t *testing.T) {
	cases := []struct{ src, q string }{
		{`<r><a><b/><c/></a><a><b/></a></r>`, "//a//b"},
		{`<r><a><b/><c/></a><a><b/></a></r>`, "//a[//b]//c"},
		{`<r><a><b><c/></b></a></r>`, "//a/b/c"},
		{`<a><a><b/></a><b/></a>`, "//a//b"},
		{`<a><b/></a>`, "/a/b"},
		{`<r><a><b/></a></r>`, "/a/b"}, // root axis: no match (a is not doc root)
		{`<r><x/><y/></r>`, "//a//b"},  // empty candidates
	}
	for _, tc := range cases {
		d := doc(t, tc.src)
		q := tpq.MustParse(tc.q)
		want := oracle.Eval(d, q)
		got, _ := run(t, tc.src, tc.q, false)
		if !got.SameAs(want) {
			t.Errorf("%s over %s: got %d, want %d", tc.q, tc.src, len(got), len(want))
		}
	}
}

func TestWindowing(t *testing.T) {
	// Three disjoint a-subtrees: three windows; nested roots share one.
	_, cnt := run(t, `<r><a><b/></a><a><b/></a><a><a><b/></a></a></r>`, "//a//b", false)
	if cnt.Matches != 4 {
		t.Fatalf("matches = %d, want 4", cnt.Matches)
	}
}

func TestPendingBuffer(t *testing.T) {
	// Candidates offered ahead of their window must be buffered and drained
	// when the window opens.
	d := doc(t, `<r><a><b/></a><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 64)

	nodes := d.Nodes()
	var as, bs []Label
	for i := range nodes {
		l := Label{Start: nodes[i].Start, End: nodes[i].End, Level: nodes[i].Level}
		switch d.TypeName(nodes[i].Type) {
		case "a":
			as = append(as, l)
		case "b":
			bs = append(bs, l)
		}
	}
	// Offer ALL b's first (second b is ahead of any window), then the a's.
	c.Add(0, as[0])
	c.Add(1, bs[0])
	c.Add(1, bs[1]) // ahead of window 1: must be buffered, not dropped
	c.Add(0, as[1])
	got := c.Result()
	if len(got) != 2 {
		t.Fatalf("matches = %d, want 2 (pending candidate lost?)", len(got))
	}
}

func TestPendingDropsUncoverable(t *testing.T) {
	d := doc(t, `<r><b/><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 64)
	nodes := d.Nodes()
	// First b precedes every a: buffered then dropped at window open.
	for i := range nodes {
		l := Label{Start: nodes[i].Start, End: nodes[i].End, Level: nodes[i].Level}
		switch d.TypeName(nodes[i].Type) {
		case "b":
			c.Add(1, l)
		case "a":
			c.Add(0, l)
		}
	}
	got := c.Result()
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
}

func TestDiskBasedSpoolAccounting(t *testing.T) {
	_, mem := run(t, `<r><a><b/><b/><b/><b/><b/></a></r>`, "//a//b", false)
	_, disk := run(t, `<r><a><b/><b/><b/><b/><b/></a></r>`, "//a//b", true)
	if mem.PagesWritten != 0 {
		t.Errorf("memory-based wrote %d pages", mem.PagesWritten)
	}
	if disk.PagesWritten == 0 {
		t.Errorf("disk-based wrote no pages")
	}
	if disk.PagesRead <= mem.PagesRead {
		t.Errorf("disk-based must re-read the spool: %d vs %d", disk.PagesRead, mem.PagesRead)
	}
	if mem.Matches != disk.Matches {
		t.Errorf("approaches disagree: %d vs %d", mem.Matches, disk.Matches)
	}
}

func TestPeakEntries(t *testing.T) {
	d := doc(t, `<r><a><b/><b/><b/></a><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	feed(d, q, c)
	c.Result()
	// Largest window: first a + its three b's = 4 entries.
	if c.PeakEntries() != 4 {
		t.Fatalf("PeakEntries = %d, want 4", c.PeakEntries())
	}
	if c.MemoryBytes() != int64(4*LabelBytes) {
		t.Fatalf("MemoryBytes = %d", c.MemoryBytes())
	}
}

func TestPreFlushHook(t *testing.T) {
	d := doc(t, `<r><a><b/></a><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	var regions [][2]int32
	c.PreFlush = func(lo, hi int32) { regions = append(regions, [2]int32{lo, hi}) }
	feed(d, q, c)
	c.Result()
	if len(regions) != 2 {
		t.Fatalf("PreFlush ran %d times, want 2 (one per window)", len(regions))
	}
	for _, r := range regions {
		if r[0] >= r[1] {
			t.Errorf("bad window region %v", r)
		}
	}
}

func TestDuplicateAddsCollapsed(t *testing.T) {
	d := doc(t, `<r><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	feed(d, q, c)
	feed(d, q, c) // offer everything twice
	got := c.Result()
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1 (duplicates must collapse)", len(got))
	}
}

// streamDoc builds the shape that motivates partial flushing: one root
// element spanning the whole document (the §VI //site pattern) holding many
// small disjoint subtrees, so the collector's only window would otherwise
// close at end of scan.
func streamDoc(subtrees int) string {
	var b strings.Builder
	b.WriteString("<site>")
	for i := 0; i < subtrees; i++ {
		b.WriteString("<a><b/></a>")
	}
	b.WriteString("</site>")
	return b.String()
}

// candidates lists every (query node, label) pair of the naive generator in
// document order — the order an engine's merged cursors would produce.
func candidates(d *xmltree.Document, q *tpq.Pattern) (qis []int, labels []Label) {
	for id := xmltree.NodeID(0); int(id) < d.NumNodes(); id++ {
		n := d.Node(id)
		name := d.TypeName(n.Type)
		for qi := range q.Nodes {
			if q.Nodes[qi].Label == name {
				qis = append(qis, qi)
				labels = append(labels, Label{Start: n.Start, End: n.End, Level: n.Level})
			}
		}
	}
	return qis, labels
}

// streamCollector builds a collector wired the way the engines wire it for
// a streaming run: an interrupter bound, emit copying rows into got.
func streamCollector(t *testing.T, d *xmltree.Document, q *tpq.Pattern, first int, after []int32, accept func(int) bool) (*Collector, *engine.Interrupter, *match.Set) {
	t.Helper()
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	ic := engine.NewInterrupter(nil)
	c.SetInterrupt(&ic)
	got := &match.Set{}
	c.SetStream(func(m match.Match) bool {
		if accept != nil && !accept(len(*got)) {
			return false
		}
		*got = append(*got, match.Clone(m))
		return true
	}, first, after)
	return c, &ic, got
}

// feedStream replays the candidate stream through Add+Advance the way a
// streaming engine does, passing the next candidate's start as the frontier
// (the document-order minimum of the remaining cursors). It stops early
// when the collector trips the interrupter, as the engine loops do, and
// reports how many matches had been emitted before the final candidate.
func feedStream(c *Collector, ic *engine.Interrupter, qis []int, labels []Label) (midRun int) {
	for i := range qis {
		if ic.Err() != nil {
			return midRun
		}
		c.Add(qis[i], labels[i])
		frontier := int32(1 << 30)
		if i+1 < len(labels) {
			frontier = labels[i+1].Start
		}
		c.Advance(frontier)
		if i+1 < len(labels) {
			midRun = c.Emitted()
		}
	}
	return midRun
}

func TestStreamingPartialFlushOrder(t *testing.T) {
	src := streamDoc(50)
	d := doc(t, src)
	q := tpq.MustParse("//site//a//b")
	var fcnt counters.Counters
	fullC := NewCollector(d, q, counters.NewIO(&fcnt, 0), nil, false, 0)
	feed(d, q, fullC)
	want := fullC.Result()
	if len(want) != 50 {
		t.Fatalf("setup: full run found %d matches, want 50", len(want))
	}

	c, ic, got := streamCollector(t, d, q, 0, nil, nil)
	qis, labels := candidates(d, q)
	midRun := feedStream(c, ic, qis, labels)
	c.Result()

	if midRun == 0 {
		t.Fatal("no matches emitted before the window closed: partial flush never fired")
	}
	if len(*got) != len(want) {
		t.Fatalf("streamed %d matches, want %d", len(*got), len(want))
	}
	for i := range want {
		if !match.Less((*got)[i], want[i]) && !match.Less(want[i], (*got)[i]) {
			continue
		}
		t.Fatalf("match %d out of order or wrong: streamed run must reproduce document order", i)
	}
	// The partial flushes must have discarded closed subtrees: the resident
	// window stays well below the full candidate count (root + open region),
	// which is the O(limit + open windows) memory claim.
	if c.PeakEntries() >= fullC.PeakEntries() {
		t.Fatalf("streaming peak %d entries is no better than accumulating peak %d",
			c.PeakEntries(), fullC.PeakEntries())
	}
}

func TestStreamingQuotaStops(t *testing.T) {
	src := streamDoc(50)
	d := doc(t, src)
	q := tpq.MustParse("//site//a//b")

	c, ic, got := streamCollector(t, d, q, 5, nil, nil)
	qis, labels := candidates(d, q)
	fed := 0
	for i := range qis {
		if ic.Err() != nil {
			break
		}
		c.Add(qis[i], labels[i])
		frontier := int32(1 << 30)
		if i+1 < len(labels) {
			frontier = labels[i+1].Start
		}
		c.Advance(frontier)
		fed++
	}
	c.Result()
	if c.Emitted() != 5 || len(*got) != 5 {
		t.Fatalf("emitted %d (sink saw %d), want exactly the quota of 5", c.Emitted(), len(*got))
	}
	if err := ic.Err(); err != engine.ErrStop {
		t.Fatalf("interrupter error = %v, want ErrStop", err)
	}
	if fed == len(qis) {
		t.Fatal("quota stop did not unwind the feed: every candidate was still scanned")
	}
}

func TestStreamingSinkDeclineStops(t *testing.T) {
	src := streamDoc(50)
	d := doc(t, src)
	q := tpq.MustParse("//site//a//b")

	c, ic, got := streamCollector(t, d, q, 0, nil, func(n int) bool { return n < 3 })
	qis, labels := candidates(d, q)
	feedStream(c, ic, qis, labels)
	c.Result()
	if len(*got) != 3 {
		t.Fatalf("sink accepted %d matches, want 3", len(*got))
	}
	if c.Emitted() != 3 {
		t.Fatalf("Emitted() = %d, want 3 (declined match must not count)", c.Emitted())
	}
	if err := ic.Err(); err != engine.ErrStop {
		t.Fatalf("interrupter error = %v, want ErrStop", err)
	}
}

func TestAccumulateFirstK(t *testing.T) {
	// first > 0 with no sink: bounded accumulation (the RunPage path).
	src := streamDoc(10)
	d := doc(t, src)
	q := tpq.MustParse("//site//a//b")
	want, _ := run(t, src, "//site//a//b", false)

	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	ic := engine.NewInterrupter(nil)
	c.SetInterrupt(&ic)
	c.SetStream(nil, 4, nil)
	qis, labels := candidates(d, q)
	feedStream(c, &ic, qis, labels)
	got := c.Result()
	if len(got) != 4 {
		t.Fatalf("accumulated %d matches, want 4", len(got))
	}
	for i := range got {
		if match.Less(got[i], want[i]) || match.Less(want[i], got[i]) {
			t.Fatalf("match %d is not the i-th match of the full run", i)
		}
	}
}

func TestAfterCursorSkipsWholeWindow(t *testing.T) {
	// Two disjoint a-windows; a cursor rooted at the second a must discard
	// the first window without enumerating it.
	d := doc(t, `<r><a><b/></a><a><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var a2 int32
	for _, n := range d.Nodes() {
		if d.TypeName(n.Type) == "a" {
			a2 = n.Start // last assignment wins: the second a
		}
	}
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	c.SetStream(nil, 0, []int32{a2, 0})
	feed(d, q, c)
	got := c.Result()
	if len(got) != 1 {
		t.Fatalf("matches = %d, want 1 (the second window's)", len(got))
	}
}

func TestAfterCursorResumesMidWindow(t *testing.T) {
	// One window with two matches; the cursor names the first, so only the
	// second is delivered — and a cursor naming the last match yields none.
	d := doc(t, `<r><a><b/><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var aStart int32
	var bStarts []int32
	for _, n := range d.Nodes() {
		switch d.TypeName(n.Type) {
		case "a":
			aStart = n.Start
		case "b":
			bStarts = append(bStarts, n.Start)
		}
	}
	for _, tc := range []struct {
		after []int32
		want  int
	}{
		{[]int32{aStart, bStarts[0]}, 1},
		{[]int32{aStart, bStarts[1]}, 0},
	} {
		var cnt counters.Counters
		c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
		c.SetStream(nil, 0, tc.after)
		feed(d, q, c)
		if got := c.Result(); len(got) != tc.want {
			t.Fatalf("after=%v: matches = %d, want %d", tc.after, len(got), tc.want)
		}
	}
}

func TestResetReusesCollector(t *testing.T) {
	src := streamDoc(10)
	d := doc(t, src)
	q := tpq.MustParse("//site//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	c.SetStream(nil, 3, nil)
	feed(d, q, c)
	if got := c.Result(); len(got) != 3 {
		t.Fatalf("first run: %d matches, want 3", len(got))
	}
	// Reset must clear the stream bound, the emitted count, and the window
	// state: the second run is a plain full accumulation.
	var cnt2 counters.Counters
	c.Reset(counters.NewIO(&cnt2, 0), nil, false, 0)
	if c.Emitted() != 0 {
		t.Fatalf("Emitted() = %d after Reset, want 0", c.Emitted())
	}
	feed(d, q, c)
	if got := c.Result(); len(got) != 10 {
		t.Fatalf("after Reset: %d matches, want 10 (quota must not persist)", len(got))
	}
}

func TestAdvanceNoopPaths(t *testing.T) {
	d := doc(t, `<r><a><b/></a></r>`)
	// Accumulating run (no emit, no quota): Advance must do nothing.
	q := tpq.MustParse("//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	feed(d, q, c)
	c.Advance(1 << 30)
	if got := c.Result(); len(got) != 1 {
		t.Fatalf("matches = %d, want 1", len(got))
	}
	// Single-node query: the spine is empty, so partial flushing is off
	// even under a quota.
	q1 := tpq.MustParse("//a")
	c1 := NewCollector(d, q1, counters.NewIO(&cnt, 0), nil, false, 0)
	c1.SetStream(nil, 1, nil)
	feed(d, q1, c1)
	c1.Advance(1 << 30)
	if got := c1.Result(); len(got) != 1 {
		t.Fatalf("single-node matches = %d, want 1", len(got))
	}
}

func TestPartialFlushNestedRootWaits(t *testing.T) {
	// Two site candidates share one window: the inner root's tuples order
	// after the outer root's still-growing ones, so partial flushing must
	// hold back — and the final result must still be exact.
	var b strings.Builder
	b.WriteString("<site><site>")
	for i := 0; i < 40; i++ {
		b.WriteString("<a><b/></a>")
	}
	b.WriteString("</site></site>")
	d := doc(t, b.String())
	q := tpq.MustParse("//site//a//b")
	want := oracle.Eval(d, q)

	c, ic, got := streamCollector(t, d, q, 0, nil, nil)
	qis, labels := candidates(d, q)
	midRun := feedStream(c, ic, qis, labels)
	c.Result()
	if midRun != 0 {
		t.Fatalf("emitted %d matches before the window closed despite a nested root", midRun)
	}
	if !(*got).SameAs(want) {
		t.Fatalf("streamed %d matches, oracle %d", len(*got), len(want))
	}
}

func TestPartialFlushRespectsCursor(t *testing.T) {
	src := streamDoc(50)
	d := doc(t, src)
	q := tpq.MustParse("//site//a//b")
	qis, labels := candidates(d, q)

	// Cursor past the whole document: nothing is ever emitted, partially or
	// at the final flush.
	c, ic, got := streamCollector(t, d, q, 0, []int32{1 << 30, 0, 0}, nil)
	feedStream(c, ic, qis, labels)
	c.Result()
	if len(*got) != 0 {
		t.Fatalf("cursor past EOF: emitted %d matches, want 0", len(*got))
	}

	// Cursor after the only root candidate's start: partial flushing defers,
	// and the final enumeration's cursor filter drops every tuple.
	c2, ic2, got2 := streamCollector(t, d, q, 0, []int32{labels[0].Start + 1, 0, 0}, nil)
	feedStream(c2, ic2, qis, labels)
	c2.Result()
	if len(*got2) != 0 {
		t.Fatalf("cursor past root start: emitted %d matches, want 0", len(*got2))
	}
}

func TestPartialFlushDiskSpool(t *testing.T) {
	src := streamDoc(60)
	d := doc(t, src)
	q := tpq.MustParse("//site//a//b")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, true, 16)
	ic := engine.NewInterrupter(nil)
	c.SetInterrupt(&ic)
	var got match.Set
	c.SetStream(func(m match.Match) bool { got = append(got, match.Clone(m)); return true }, 0, nil)
	qis, labels := candidates(d, q)
	feedStream(c, &ic, qis, labels)
	c.Result()
	if len(got) != 60 {
		t.Fatalf("streamed %d matches, want 60", len(got))
	}
	if cnt.PagesWritten == 0 || cnt.PagesRead == 0 {
		t.Fatalf("disk-based partial flush did no spool I/O (wrote %d, read %d)", cnt.PagesWritten, cnt.PagesRead)
	}
}

func TestPartialFlushPreFlushExtension(t *testing.T) {
	src := streamDoc(50)
	d := doc(t, src)
	q := tpq.MustParse("//site//a//b")
	c, ic, got := streamCollector(t, d, q, 0, nil, nil)
	var regions [][2]int32
	c.PreFlush = func(lo, hi int32) { regions = append(regions, [2]int32{lo, hi}) }
	qis, labels := candidates(d, q)
	feedStream(c, ic, qis, labels)
	c.Result()
	if len(*got) != 50 {
		t.Fatalf("streamed %d matches, want 50", len(*got))
	}
	if len(regions) < 2 {
		t.Fatalf("PreFlush ran %d times, want at least one partial and one final flush", len(regions))
	}
	for i := 1; i < len(regions); i++ {
		if regions[i][1] < regions[i-1][1] {
			t.Fatalf("PreFlush upper bounds must be non-decreasing: %v", regions)
		}
	}
}

func TestChildAxisLevels(t *testing.T) {
	// pc-edges exercise the per-level index, including group reuse across
	// windows whose candidates sit at different levels.
	cases := []struct{ src, q string }{
		{`<r><a><b/><a><b/></a></a></r>`, "//a/b"},
		{`<r><a><b/></a><x><a><b/></a></x></r>`, "//a/b"},
		{`<r><a><c><b/></c></a><a><b/></a></r>`, "//a/b"}, // miss at one level
	}
	for _, tc := range cases {
		d := doc(t, tc.src)
		q := tpq.MustParse(tc.q)
		want := oracle.Eval(d, q)
		got, _ := run(t, tc.src, tc.q, false)
		if !got.SameAs(want) {
			t.Errorf("%s over %s: got %d, want %d", tc.q, tc.src, len(got), len(want))
		}
	}
}

func TestUnsortedAddsNormalized(t *testing.T) {
	// Candidates offered out of document order inside an open window (as
	// PreFlush extensions are): normalize must restore order and uniqueness.
	d := doc(t, `<r><a><b/><b/></a></r>`)
	q := tpq.MustParse("//a//b")
	var as, bs []Label
	for _, n := range d.Nodes() {
		l := Label{Start: n.Start, End: n.End, Level: n.Level}
		switch d.TypeName(n.Type) {
		case "a":
			as = append(as, l)
		case "b":
			bs = append(bs, l)
		}
	}
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	c.Add(0, as[0])
	c.Add(1, bs[1]) // out of order
	c.Add(1, bs[0])
	c.Add(1, bs[1]) // duplicate
	if got := c.Result(); len(got) != 2 {
		t.Fatalf("matches = %d, want 2", len(got))
	}
}

func TestSearchStartsAbove(t *testing.T) {
	list := []Label{{Start: 2}, {Start: 4}, {Start: 9}}
	cases := []struct {
		s    int32
		want int
	}{{1, 0}, {2, 1}, {3, 1}, {9, 3}, {10, 3}}
	for _, tc := range cases {
		if got := searchStartsAbove(list, tc.s); got != tc.want {
			t.Errorf("searchStartsAbove(%d) = %d, want %d", tc.s, got, tc.want)
		}
	}
	if got := searchStartsAbove(nil, 0); got != 0 {
		t.Errorf("searchStartsAbove(nil) = %d, want 0", got)
	}
}

func TestFlushWithoutWindowIsNoop(t *testing.T) {
	d := doc(t, `<r/>`)
	q := tpq.MustParse("//a")
	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 0)
	c.Flush()
	if got := c.Result(); len(got) != 0 {
		t.Fatalf("expected no matches")
	}
}
