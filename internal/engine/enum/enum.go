// Package enum implements the shared output stage of the stack- and
// DAG-based engines: candidate solution nodes are collected into windows —
// one window per top-level query-root candidate region — and each window
// is enumerated into tree pattern instances with every edge of the original
// query verified (region containment; level labels for pc-edges, as §IV-B
// prescribes for inter-view pc-edges).
//
// This stage is the correctness firewall of the reproduction: candidate
// generation (skipping, pointer jumps, segment cursors) may over-approximate
// the solution set, but a tuple is only emitted after all of Q's edges
// check out, so spurious candidates cost time, never wrong answers.
package enum

import (
	"sort"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/match"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// Label re-exports the region label triple used across engines.
type Label = store.Label

// Collector accumulates per-query-node candidates in document order and
// flushes completed windows into matches.
//
// In the memory-based approach (§IV "Variations") the window lives in
// memory until flushed; PeakEntries tracks the largest window, the F_max of
// the paper's space analysis. In the disk-based approach the window is
// spooled to scratch pages when collected and read back at flush time,
// charging page writes and reads; resident memory then stays O(|Q|·depth).
type Collector struct {
	d   *xmltree.Document
	q   *tpq.Pattern
	io  *counters.IO
	tr  obs.Tracer // nil when tracing is off
	out match.Set

	cands       [][]Label // per query node, current window, doc order
	windowStart int32
	windowEnd   int32
	open        bool

	entries     int // entries in the current window
	peakEntries int

	diskBased bool
	pageSize  int
	spoolIn   int64 // bytes spooled in the current window

	// pending buffers non-root candidates offered ahead of their window
	// (ViewJoin's bulk segment adds can run ahead of the root list); they
	// are drained into the next window that covers them.
	pending []pendingCand

	// PreFlush, when set, runs at the start of every window flush with the
	// window's region; ViewJoin uses it to extend the window with the query
	// nodes that were removed from Q' (§IV-B second step).
	PreFlush func(lo, hi int32)

	// ic, when non-nil, is the engine run's shared cooperative cancellation
	// checker; enumeration polls it so a window with a huge cross product
	// cannot outlive the request's deadline. Once it trips, flushes become
	// no-ops and the partial output is abandoned by the engine.
	ic *engine.Interrupter

	// Streaming state (SetStream): emit delivers matches to a sink as
	// windows close instead of accumulating them; first bounds the total
	// matches produced; after is the resumption cursor (emit only matches
	// strictly greater than this start tuple, document order); emitted
	// counts deliveries; stopped latches once the quota is met or the sink
	// declines, turning every later Add/Flush into a no-op.
	emit    func(match.Match) bool
	first   int
	after   []int32
	emitted int
	stopped bool

	// Partial-flush state. spine is the maximal single-child chain under
	// the query root (pattern pre-order indices 1..a, where a is the first
	// node with zero or several children); when it is non-empty, a
	// document-spanning window — every §VI query is rooted at //site, one
	// element covering the whole document — can stream finished sub-regions
	// out before the window closes (see Advance). nextPartial is the
	// entry-count trigger for the next partial-flush attempt, grown
	// geometrically so filter work stays amortized against window growth.
	// full is swap scratch for enumerating truncated candidate lists.
	// flushedBound is the bound of the window's latest partial flush: every
	// tuple whose bindings all start before it has already been emitted, so
	// later enumerations of the same window (candidates spanning the bound
	// are kept) skip those tuples instead of emitting them twice.
	spine        []int
	nextPartial  int
	full         [][]Label
	flushedBound int32

	// Reusable per-window scratch (allocated once, reused across windows).
	ok        [][]bool
	okStarts  [][]int32
	okLevels  [][]levelGroup // pc-children only: surviving starts per level
	needLevel []bool         // query node is a pc-child: level grouping required
	cur       []Label
	m         match.Match
}

// levelGroup holds the surviving candidate starts at one level. Windows
// rarely span more than a couple of levels per node, so a small slice
// outperforms a map.
type levelGroup struct {
	level  int32
	starts []int32
}

type pendingCand struct {
	qi int
	l  Label
}

// LabelBytes is the scratch-record size used by the disk-based approach's
// spool accounting: one region label (12 bytes) plus the query-node tag.
const LabelBytes = 16

// partialTrigger is the window entry count that arms the first partial
// flush of a window; later attempts re-arm at 1.5x the entries surviving
// the previous attempt, so filter work stays amortized against growth.
const partialTrigger = 64

// NewCollector returns a Collector for query q over document d, accounting
// into io and tracing into tr (nil disables tracing). When diskBased is
// set, windows are spooled through scratch pages of the given pageSize (0
// means store.DefaultPageSize).
func NewCollector(d *xmltree.Document, q *tpq.Pattern, io *counters.IO, tr obs.Tracer, diskBased bool, pageSize int) *Collector {
	if pageSize == 0 {
		pageSize = store.DefaultPageSize
	}
	n := q.Size()
	c := &Collector{
		d:         d,
		q:         q,
		io:        io,
		tr:        tr,
		cands:     make([][]Label, n),
		diskBased: diskBased,
		pageSize:  pageSize,
		ok:        make([][]bool, n),
		okStarts:  make([][]int32, n),
		okLevels:  make([][]levelGroup, n),
		needLevel: make([]bool, n),
		cur:       make([]Label, n),
		m:         make(match.Match, n),
	}
	for qi := 1; qi < n; qi++ {
		if q.Nodes[qi].Axis == tpq.Child {
			c.needLevel[qi] = true
		}
	}
	// The spine is the maximal single-child chain from the root: node 1..a
	// where a is the first node with zero or several children. When it is
	// empty (multi-child or leaf root), partial flushing is disabled — the
	// root's branches cross-product over the whole window, so no tuple is
	// final before the window closes.
	for qi := 0; len(q.Nodes[qi].Children) == 1; {
		qi = q.Nodes[qi].Children[0]
		c.spine = append(c.spine, qi)
	}
	c.full = make([][]Label, n)
	c.nextPartial = partialTrigger
	return c
}

// Reset readies the collector for a fresh run over the same document and
// query: the accounting, tracer and output options are rebound, collected
// state is cleared, and every scratch slice keeps its capacity. The
// previously returned match.Set is not touched (Result hands ownership to
// the caller). PreFlush is preserved.
func (c *Collector) Reset(io *counters.IO, tr obs.Tracer, diskBased bool, pageSize int) {
	if pageSize == 0 {
		pageSize = store.DefaultPageSize
	}
	c.io, c.tr, c.diskBased, c.pageSize = io, tr, diskBased, pageSize
	c.ic = nil
	c.out = nil
	c.emit, c.first, c.after = nil, 0, nil
	c.emitted, c.stopped = 0, false
	for qi := range c.cands {
		c.cands[qi] = c.cands[qi][:0]
	}
	c.pending = c.pending[:0]
	c.open = false
	c.windowStart, c.windowEnd = 0, 0
	c.entries, c.peakEntries = 0, 0
	c.spoolIn = 0
	c.nextPartial = partialTrigger
	c.flushedBound = 0
	for qi := range c.okStarts {
		c.okStarts[qi] = c.okStarts[qi][:0]
	}
	for qi := range c.okLevels {
		for g := range c.okLevels[qi] {
			c.okLevels[qi][g].starts = c.okLevels[qi][g].starts[:0]
		}
	}
}

// Add offers a candidate for query node qi. Candidates for the query root
// (qi == 0) drive window management: a root candidate beyond the current
// window flushes it and opens a new one. Non-root candidates outside any
// open window cannot participate in a match and are dropped.
func (c *Collector) Add(qi int, l Label) {
	if qi == 0 {
		if !c.open {
			c.openWindow(l)
			return
		}
		if l.Start > c.windowEnd {
			c.Flush()
			c.openWindow(l)
			return
		}
		c.append(0, l)
		return
	}
	if !c.open || l.Start > c.windowEnd {
		c.pending = append(c.pending, pendingCand{qi, l})
		return
	}
	c.append(qi, l)
}

func (c *Collector) openWindow(rootLabel Label) {
	c.open = true
	c.windowStart = rootLabel.Start
	c.windowEnd = rootLabel.End
	c.flushedBound = rootLabel.Start
	c.append(0, rootLabel)
	if len(c.pending) > 0 {
		keep := c.pending[:0]
		for _, p := range c.pending {
			switch {
			case p.l.Start > c.windowEnd:
				keep = append(keep, p) // still ahead: keep for a later window
			case p.l.Start > rootLabel.Start:
				c.append(p.qi, p.l)
			}
			// Candidates before this window's root can no longer be covered
			// by any root candidate and are dropped.
		}
		c.pending = keep
	}
}

func (c *Collector) append(qi int, l Label) {
	// Engines may offer the same candidate more than once (e.g. cached
	// solution nodes); collapse consecutive duplicates.
	if s := c.cands[qi]; len(s) > 0 && s[len(s)-1].Start == l.Start {
		return
	}
	c.cands[qi] = append(c.cands[qi], l)
	c.entries++
	if c.diskBased {
		c.spoolIn += LabelBytes
	}
}

// SetInterrupt binds the engine run's cancellation checker; enumeration
// polls it cooperatively and records quota stops on it, so the binding is
// kept even for hookless interrupters (a hookless Check is two nil tests —
// still effectively free). Reset clears the binding, so engines rebind it
// every run.
func (c *Collector) SetInterrupt(ic *engine.Interrupter) {
	c.ic = ic
}

// SetStream configures streaming delivery and early termination for the
// run (all cleared by Reset): emit, when non-nil, receives every match as
// it is produced — the slice is scratch reused for the next match, so
// sinks copy what they keep; returning false stops the run. first > 0
// bounds the matches produced (counted after the cursor filter). after,
// when non-nil, must hold one start label per query node: only matches
// strictly greater than it in document order are delivered.
func (c *Collector) SetStream(emit func(match.Match) bool, first int, after []int32) {
	c.emit, c.first, c.after = emit, first, after
}

// Emitted returns the number of matches delivered so far (streamed or
// accumulated, after the cursor filter).
func (c *Collector) Emitted() int { return c.emitted }

// interrupted reports whether the run has stopped — quota met, sink
// declined, or the bound checker tripped (no poll — the engine loops do
// the polling between windows).
func (c *Collector) interrupted() bool {
	return c.stopped || (c.ic != nil && c.ic.Err() != nil)
}

// stop latches early termination and propagates it to the engine loops via
// the shared Interrupter, which unwinds them exactly like a cancellation;
// the engines then treat ErrStop as a successful bounded run.
func (c *Collector) stop() {
	c.stopped = true
	if c.ic != nil {
		c.ic.Stop()
	}
}

// Flush enumerates the current window and resets it. It is a no-op when no
// window is open or the run has been interrupted (the abandoned window's
// matches would be discarded with the rest of the output anyway).
func (c *Collector) Flush() {
	if !c.open || c.interrupted() {
		return
	}
	if c.after != nil && c.windowEnd < c.after[0] {
		// Every match in this window is rooted at or before windowEnd,
		// which precedes the cursor's root start: resumption seeks past the
		// whole window without enumerating (or spooling) it.
		c.discardWindow()
		return
	}
	if c.PreFlush != nil {
		c.PreFlush(c.windowStart, c.windowEnd)
	}
	if c.entries > c.peakEntries {
		c.peakEntries = c.entries
	}
	if c.diskBased && c.spoolIn > 0 {
		pages := (c.spoolIn + int64(c.pageSize) - 1) / int64(c.pageSize)
		c.io.Write(pages)         // spool the window out ...
		c.io.C.PagesRead += pages // ... and read it back for enumeration
		c.spoolIn = 0
	}
	if c.tr != nil {
		c.tr.BeginPhase(obs.PhaseEnumerate)
		c.enumerate()
		c.tr.EndPhase(obs.PhaseEnumerate)
	} else {
		c.enumerate()
	}
	c.discardWindow()
}

// Advance tells the collector that every candidate the engine will Add
// from now on starts at or after frontier. Both engines pick their next
// candidate as a document-order minimum over forward-only cursors, so the
// bound is sound: any region ending before the frontier is finished.
//
// In a bounded or sink-driven run this may partially flush the open
// window. The §VI queries are all rooted at //site — one element spanning
// the whole document — so the collector's only window closes at end of
// scan and plain window streaming would deliver nothing early. Partial
// flushing restores the first-k payoff: matches confined to sub-regions
// the frontier has passed are final, so they are emitted (tripping the
// quota and stopping the scan) and their candidates discarded, keeping
// the window bounded by the open regions instead of the full document.
func (c *Collector) Advance(frontier int32) {
	if c.emit == nil && c.first <= 0 {
		return // accumulating full run: keep the historical path untouched
	}
	if !c.open || c.interrupted() || len(c.spine) == 0 {
		return
	}
	if c.entries < c.nextPartial {
		return
	}
	c.partialFlush(frontier)
	c.nextPartial = c.entries + c.entries/2 + partialTrigger
}

// partialFlush emits the finished prefix of the open window: every match
// whose bindings all start before the partial bound (see partialBound).
// Emission reuses enumerate on prefix-truncated candidate lists — the
// bottom-up filter is exact on the truncation because a closed region's
// subtree matches only involve candidates inside it, all before the
// bound; and the ok bits it computes are final because future candidates
// cannot land inside a closed region. Candidates wholly before the bound
// are then discarded: containers reaching past it are kept, since they
// may still combine with future candidates.
func (c *Collector) partialFlush(frontier int32) {
	if c.after != nil && c.windowEnd < c.after[0] {
		return // whole window precedes the cursor; Flush will discard it
	}
	c.normalize()
	if len(c.cands[0]) != 1 {
		// A nested root candidate orders all its tuples after the outer
		// root's still-growing ones; emitting anything now could
		// interleave, so wait for the window to close.
		return
	}
	if c.after != nil && c.cands[0][0].Start < c.after[0] {
		return // every tuple rooted here precedes the cursor
	}
	bound := c.partialBound(frontier)
	if c.PreFlush != nil && bound > c.windowStart {
		// Pull the removed-node candidates the emitted region needs
		// (ViewJoin's §IV-B extension); extension may reveal an earlier
		// open candidate, so re-tighten the bound afterwards.
		c.PreFlush(c.windowStart, bound)
		c.normalize()
		bound = c.partialBound(frontier)
	}
	if bound <= c.windowStart {
		return // no region has finished yet: nothing is final
	}
	if c.entries > c.peakEntries {
		c.peakEntries = c.entries
	}
	if c.diskBased && c.spoolIn > 0 {
		pages := (c.spoolIn + int64(c.pageSize) - 1) / int64(c.pageSize)
		c.io.Write(pages)
		c.io.C.PagesRead += pages
		c.spoolIn = 0
	}
	n := c.q.Size()
	for qi := 1; qi < n; qi++ {
		c.full[qi] = c.cands[qi]
		c.cands[qi] = c.cands[qi][:searchStartsAbove(c.cands[qi], bound-1)]
	}
	if c.tr != nil {
		c.tr.BeginPhase(obs.PhaseEnumerate)
		c.enumerate()
		c.tr.EndPhase(obs.PhaseEnumerate)
	} else {
		c.enumerate()
	}
	c.entries = len(c.cands[0])
	for qi := 1; qi < n; qi++ {
		list := c.full[qi]
		c.full[qi] = nil
		keep := list[:0]
		for _, l := range list {
			if l.End >= bound {
				keep = append(keep, l)
			}
		}
		c.cands[qi] = keep
		c.entries += len(keep)
	}
	if bound > c.flushedBound {
		c.flushedBound = bound
	}
}

// partialBound returns the partial-flush boundary: no future or unemitted
// match can have a binding ordering before it. Matches compare
// lexicographically by start tuple, and every binding of a match that is
// still incomplete sits inside an open (End >= frontier) candidate at
// each spine level — so the earliest open candidate of every
// multi-candidate spine level caps the bound. A spine level with a single
// candidate is skipped: all of the window's matches bind that one
// candidate, so it can never order a future match before an emitted one
// (later arrivals at that level start at or after the frontier). Branch
// nodes below the spine need no bound of their own: their candidates are
// confined to the enclosing spine-tail region, which the bound already
// proves closed.
func (c *Collector) partialBound(frontier int32) int32 {
	b := frontier
	for i, qi := range c.spine {
		list := c.cands[qi]
		// The spine tail is the pattern's first branching node: its children
		// cross-product freely inside each tail candidate (siblings join only
		// through their common tail ancestor), so no tuple inside an open
		// tail candidate is final — the earliest open candidate caps the
		// bound even when the list holds a single entry.
		branchingTail := i == len(c.spine)-1 && len(c.q.Nodes[qi].Children) > 1
		if len(list) <= 1 && !branchingTail {
			continue
		}
		for _, l := range list {
			if l.End >= frontier {
				if l.Start < b {
					b = l.Start
				}
				break // sorted by start: later open candidates start later
			}
		}
	}
	return b
}

// discardWindow clears the current window's candidates without enumerating
// them.
func (c *Collector) discardWindow() {
	for qi := range c.cands {
		c.cands[qi] = c.cands[qi][:0]
	}
	c.entries = 0
	c.spoolIn = 0
	c.open = false
}

// Result flushes any open window and returns the collected matches (empty
// in streaming mode — the sink received them). The Matches counter is the
// number of matches delivered, which for a bounded run is the bounded
// count, not the query's full cardinality.
func (c *Collector) Result() match.Set {
	c.Flush()
	c.io.C.Matches = int64(c.emitted)
	return c.out
}

// PeakEntries returns the size (in entries) of the largest window held in
// memory — the |F_max| of the paper's space analysis. For the disk-based
// approach the resident set is O(|Q|·depth) instead; callers report
// accordingly.
func (c *Collector) PeakEntries() int { return c.peakEntries }

// MemoryBytes converts PeakEntries to bytes using the scratch record size.
func (c *Collector) MemoryBytes() int64 { return int64(c.peakEntries) * LabelBytes }

// normalize restores per-list document order and uniqueness. Candidate
// lists are normally produced in document order, but pending drains and
// PreFlush extensions may interleave; the binary searches in enumerate
// require sorted, duplicate-free lists.
func (c *Collector) normalize() {
	for qi := range c.cands {
		list := c.cands[qi]
		sorted := true
		for i := 1; i < len(list); i++ {
			if list[i].Start < list[i-1].Start {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.Slice(list, func(i, j int) bool { return list[i].Start < list[j].Start })
		}
		out := list[:0]
		for i := range list {
			if len(out) == 0 || out[len(out)-1].Start != list[i].Start {
				out = append(out, list[i])
			}
		}
		c.cands[qi] = out
	}
}

// enumerate emits every embedding of q within the current window.
func (c *Collector) enumerate() {
	n := c.q.Size()
	c.normalize()

	// Bottom-up filter: ok[qi][j] reports whether candidate j of query node
	// qi has a full subtree match below it within the window. okStarts[qi]
	// holds the surviving candidates' starts (ad-edge existence checks);
	// okLevels[qi] groups them by level (pc-edges only).
	for qi := n - 1; qi >= 0; qi-- {
		list := c.cands[qi]
		if cap(c.ok[qi]) < len(list) {
			c.ok[qi] = make([]bool, len(list))
		}
		c.ok[qi] = c.ok[qi][:len(list)]
		starts := c.okStarts[qi][:0]
		groups := c.okLevels[qi]
		for g := range groups {
			groups[g].starts = groups[g].starts[:0]
		}
		for j := range list {
			if c.ic != nil && c.ic.Check() != nil {
				return
			}
			cand := list[j]
			good := true
			if qi == 0 && c.q.Nodes[0].Axis == tpq.Child && cand.Level != 0 {
				good = false // "/a" binds only the document root
			}
			for _, qc := range c.q.Nodes[qi].Children {
				if !good {
					break
				}
				c.io.C.Comparisons++
				switch c.q.Nodes[qc].Axis {
				case tpq.Descendant:
					good = hasInRange(c.okStarts[qc], cand.Start, cand.End)
				case tpq.Child:
					good = hasInRange(levelStarts(c.okLevels[qc], cand.Level+1), cand.Start, cand.End)
				}
			}
			c.ok[qi][j] = good
			if good {
				starts = append(starts, cand.Start)
				if c.needLevel[qi] {
					groups = addToLevel(groups, cand.Level, cand.Start)
				}
			}
		}
		c.okStarts[qi] = starts
		c.okLevels[qi] = groups
	}

	if len(c.okStarts[0]) == 0 {
		return
	}

	// Top-down enumeration in pattern pre-order. The recursion polls the
	// cancellation checker per emitted tuple: a window whose cross product
	// explodes must still honour the request deadline (the §IV space
	// analysis bounds the window, not its enumeration). rec returns false
	// to unwind the whole enumeration — cancellation, quota met, or the
	// sink declining more matches.
	//
	// Order invariant: windows close in ascending root-start order, the
	// root loop walks cands[0] ascending, and rec extends the tuple in
	// pattern pre-order over start-sorted lists — so matches are produced
	// exactly in match.Less (document) order, which is what makes streamed
	// LIMIT/OFFSET and the cursor filter exact without any buffering.
	var rec func(qi int) bool
	rec = func(qi int) bool {
		if qi == n {
			if c.ic != nil && c.ic.Check() != nil {
				return false
			}
			if c.flushedBound > c.windowStart && c.tupleBefore(c.flushedBound) {
				return true // already emitted by an earlier partial flush
			}
			if c.after != nil && !c.tupleAfterCursor() {
				return true // at or before the resumption cursor: skip
			}
			for k := range c.cur {
				c.m[k] = c.d.FindByStart(c.cur[k].Start)
			}
			c.io.MarkFirstMatch()
			if c.emit != nil {
				if !c.emit(c.m) {
					c.stop()
					return false
				}
			} else {
				c.out = append(c.out, match.Clone(c.m))
			}
			c.emitted++
			if c.first > 0 && c.emitted >= c.first {
				c.stop()
				return false
			}
			return true
		}
		parent := c.cur[c.q.Nodes[qi].Parent]
		list := c.cands[qi]
		lo := searchStartsAbove(list, parent.Start)
		for j := lo; j < len(list) && list[j].Start < parent.End; j++ {
			if c.interrupted() {
				return false
			}
			c.io.C.Comparisons++
			if !c.ok[qi][j] {
				continue
			}
			if c.q.Nodes[qi].Axis == tpq.Child && list[j].Level != parent.Level+1 {
				continue
			}
			c.cur[qi] = list[j]
			if !rec(qi + 1) {
				return false
			}
		}
		return true
	}
	for j, cand := range c.cands[0] {
		if !c.ok[0][j] {
			continue
		}
		if c.interrupted() {
			return
		}
		if c.after != nil && cand.Start < c.after[0] {
			continue // every tuple rooted here precedes the cursor
		}
		c.cur[0] = cand
		if !rec(1) {
			return
		}
	}
}

// tupleBefore reports whether every binding of the current tuple starts
// before b. Such a tuple was fully enumerable at the partial flush whose
// bound was b — every binding was present (Advance guarantees future adds
// start at or after the frontier, and b never exceeds it) and its ok bits
// held (each node's subtree requirement is witnessed by the tuple's own
// child bindings, all before b) — so it was emitted then.
func (c *Collector) tupleBefore(b int32) bool {
	for k := range c.cur {
		if c.cur[k].Start >= b {
			return false
		}
	}
	return true
}

// tupleAfterCursor reports whether the current tuple's start labels are
// lexicographically greater than the resumption cursor — i.e. the match
// falls strictly after the page the cursor closed.
func (c *Collector) tupleAfterCursor() bool {
	for k := range c.cur {
		if s := c.cur[k].Start; s != c.after[k] {
			return s > c.after[k]
		}
	}
	return false // exactly the cursor match: already delivered
}

// levelStarts returns the surviving starts recorded for a level.
func levelStarts(groups []levelGroup, level int32) []int32 {
	for g := range groups {
		if groups[g].level == level {
			return groups[g].starts
		}
	}
	return nil
}

// addToLevel appends a start to its level group, creating the group on
// first use (empty groups left over from earlier windows are reused).
func addToLevel(groups []levelGroup, level, start int32) []levelGroup {
	for g := range groups {
		if groups[g].level == level {
			groups[g].starts = append(groups[g].starts, start)
			return groups
		}
	}
	// Reuse an emptied slot with a different level if available.
	for g := range groups {
		if len(groups[g].starts) == 0 {
			groups[g].level = level
			groups[g].starts = append(groups[g].starts, start)
			return groups
		}
	}
	return append(groups, levelGroup{level: level, starts: []int32{start}})
}

// searchStartsAbove returns the index of the first candidate with
// Start > s (hand-rolled binary search on the hot enumeration path).
func searchStartsAbove(list []Label, s int32) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid].Start <= s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// hasInRange reports whether the sorted slice holds a value in the open
// interval (lo, hi).
func hasInRange(sorted []int32, lo, hi int32) bool {
	a, b := 0, len(sorted)
	for a < b {
		mid := int(uint(a+b) >> 1)
		if sorted[mid] <= lo {
			a = mid + 1
		} else {
			b = mid
		}
	}
	return a < len(sorted) && sorted[a] < hi
}
