package enum

import (
	"strings"
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/match"
	"viewjoin/internal/oracle"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// TestPartialFlushDupCheck simulates an engine feeding candidates in
// document order with Advance(frontier) between adds, streaming enabled,
// and checks the streamed output against the oracle for duplicates.
func TestPartialFlushDupCheck(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<r><s><a><b>")
	for i := 0; i < 40; i++ {
		sb.WriteString("<a><b/></a>")
	}
	sb.WriteString("</b></a></s></r>")
	src := sb.String()

	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	q := tpq.MustParse("//r//s[//a]//b")
	want := oracle.Eval(d, q)

	var cnt counters.Counters
	c := NewCollector(d, q, counters.NewIO(&cnt, 0), nil, false, 64)
	var got match.Set
	c.SetStream(func(m match.Match) bool {
		got = append(got, match.Clone(m))
		return true
	}, 0, nil)

	// Gather all candidates in document order.
	type cand struct {
		qi int
		l  Label
	}
	var cands []cand
	for id := xmltree.NodeID(0); int(id) < d.NumNodes(); id++ {
		n := d.Node(id)
		name := d.TypeName(n.Type)
		for qi := range q.Nodes {
			if q.Nodes[qi].Label == name {
				cands = append(cands, cand{qi, Label{Start: n.Start, End: n.End, Level: n.Level}})
			}
		}
	}
	for i, cd := range cands {
		c.Add(cd.qi, cd.l)
		if i+1 < len(cands) {
			c.Advance(cands[i+1].l.Start)
		}
	}
	c.Result()

	t.Logf("streamed %d matches, oracle %d", len(got), len(want))
	seen := map[string]int{}
	for _, m := range got {
		var key strings.Builder
		for _, id := range m {
			key.WriteByte(':')
			key.WriteRune(rune(d.Node(id).Start + 64))
		}
		seen[key.String()]++
	}
	dups := 0
	for _, n := range seen {
		if n > 1 {
			dups += n - 1
		}
	}
	if dups > 0 {
		t.Fatalf("duplicate matches streamed: %d (streamed %d, oracle %d)", dups, len(got), len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d, oracle %d", len(got), len(want))
	}
}
