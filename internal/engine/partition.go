package engine

import (
	"sort"

	"viewjoin/internal/counters"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
)

// Span is a half-open interval [Lo, Hi) in start-label space. Lists are
// laid out in document order, so a span selects a contiguous slice of
// every list's records via binary seek (store.ListFile.SeekStart).
type Span struct {
	Lo, Hi int32
}

// Empty reports whether the span admits no start label.
func (s Span) Empty() bool { return s.Lo >= s.Hi }

// Contains reports whether the start label falls in the span.
func (s Span) Contains(start int32) bool { return start >= s.Lo && start < s.Hi }

// Restriction narrows one evaluation run to one partition of the document
// for range-partitioned parallel evaluation. Partitions are anchored at
// the bottom of the query's unary spine: the first Spine query nodes (in
// pre-order, a chain where each node has exactly one child) bind ancestors
// of the partition's anchor candidates, and every other node — the anchor
// and its pattern subtree — binds inside Body. Partition planning chooses
// Body so that no anchor candidate's document subtree crosses a partition
// boundary, which makes each partition's matches exactly the sequential
// matches whose anchor binding falls in its Body (see DESIGN.md,
// "Range-partitioned parallel evaluation").
type Restriction struct {
	// Spine is the number of leading pre-order query nodes treated as
	// ancestors of the partition: their candidates are admitted when their
	// region overlaps Body rather than starting inside it.
	Spine int
	// Body bounds the candidates of every non-spine node.
	Body Span
}

// SpanFor returns the start-label range bounding query node qi's cursor.
// Spine nodes bind ancestors of the partition, which start anywhere
// before Body ends; range restriction on starts cannot express the
// matching end-side condition, so Admits is the sharper per-record test.
func (r *Restriction) SpanFor(qi int) Span {
	if qi < r.Spine {
		return Span{0, r.Body.Hi}
	}
	return r.Body
}

// Admits reports whether a candidate with region [start, end) may bind
// query node qi in this partition: spine nodes must contain the anchor
// binding, so their region must overlap Body; every other node must start
// inside Body.
func (r *Restriction) Admits(qi int, start, end int32) bool {
	if qi < r.Spine {
		return start < r.Body.Hi && end > r.Body.Lo
	}
	return r.Body.Contains(start)
}

// ResetCursor rebinds c over l for query node qi under the optional
// restriction: nil opens the whole list, otherwise the list is narrowed
// to the records whose start labels the node's span admits.
func ResetCursor(c *store.ListCursor, l *store.ListFile, io *counters.IO, tr obs.Tracer, qi int, r *Restriction) {
	if r == nil {
		c.Reset(l, io, tr, qi)
		return
	}
	sp := r.SpanFor(qi)
	c.ResetRange(l, io, tr, qi, l.SeekStart(sp.Lo), l.SeekStart(sp.Hi))
}

// CountInSpan returns how many of l's records have start labels in sp —
// the record slice a restricted cursor over l would see.
func CountInSpan(l *store.ListFile, sp Span) int {
	return l.SeekStart(sp.Hi) - l.SeekStart(sp.Lo)
}

// MergeSpans sorts the given candidate regions by start and merges every
// overlapping or nested pair, yielding the disjoint ascending "blobs" a
// partition planner may cut between: a document subtree from one blob
// never extends into another, so any grouping of consecutive blobs is a
// valid partition body. Empty spans are dropped; the input is not kept.
func MergeSpans(spans []Span) []Span {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Lo < spans[j].Lo })
	out := spans[:0]
	for _, s := range spans {
		if s.Empty() {
			continue
		}
		if n := len(out); n > 0 && s.Lo < out[n-1].Hi {
			if s.Hi > out[n-1].Hi {
				out[n-1].Hi = s.Hi
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// CoalesceSpans greedily merges the given document-ordered disjoint spans
// into at most k chunks balanced by the supplied weight function
// (estimated pages a partition would touch, or any non-negative proxy).
// Every chunk merges consecutive spans, so chunks stay document-ordered
// and disjoint. Fewer spans than k yields one chunk per span; a uniformly
// zero weighting falls back to balancing span counts. CoalesceSpans never
// returns more than min(k, len(spans)) chunks and never errors.
func CoalesceSpans(spans []Span, weight func(Span) int64, k int) []Span {
	n := len(spans)
	if n == 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k <= 1 {
		return []Span{{spans[0].Lo, spans[n-1].Hi}}
	}
	ws := make([]int64, n)
	var total int64
	for i, s := range spans {
		if w := weight(s); w > 0 {
			ws[i] = w
		}
		total += ws[i]
	}
	if total == 0 {
		for i := range ws {
			ws[i] = 1
		}
		total = int64(n)
	}
	out := make([]Span, 0, k)
	i, remaining := 0, total
	for c := k; i < n; c-- {
		if c == 1 {
			out = append(out, Span{spans[i].Lo, spans[n-1].Hi})
			break
		}
		// Fill this chunk to its fair share of the remaining weight, but
		// leave at least one span for each chunk still to come.
		target := remaining / int64(c)
		j, acc := i, int64(0)
		for j < n-(c-1) {
			acc += ws[j]
			j++
			if acc >= target && acc > 0 {
				break
			}
		}
		if j == i {
			j = i + 1
		}
		out = append(out, Span{spans[i].Lo, spans[j-1].Hi})
		remaining -= acc
		i = j
	}
	return out
}
