package twigstack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/match"
	"viewjoin/internal/oracle"
	"viewjoin/internal/store"
	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/vsq"
	"viewjoin/internal/xmltree"
)

// evalWith materializes the view set in the given scheme and runs TwigStack.
func evalWith(t testing.TB, d *xmltree.Document, q *tpq.Pattern, vs []*tpq.Pattern,
	kind store.Kind, opts engine.Options) (match.Set, Stats, counters.Counters) {
	t.Helper()
	v, err := vsq.Build(q, vs)
	if err != nil {
		t.Fatalf("vsq.Build(%s | %v): %v", q, vs, err)
	}
	stores := make([]*store.ViewStore, len(vs))
	for i, vp := range vs {
		stores[i] = store.MustBuild(views.MustMaterialize(d, vp), kind, 256)
	}
	lists, err := engine.BindLists(v, stores)
	if err != nil {
		t.Fatalf("BindLists: %v", err)
	}
	var c counters.Counters
	io := counters.NewIO(&c, 0)
	got, st, err := Eval(d, q, lists, io, opts)
	if err != nil {
		t.Fatalf("Eval(%s): %v", q, err)
	}
	return got, st, c
}

func mustDoc(t testing.TB, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return d
}

func TestSimplePath(t *testing.T) {
	d := mustDoc(t, `<r><a><b/><b><c/></b></a><a><c/></a></r>`)
	q := tpq.MustParse("//a//b//c")
	want := oracle.Eval(d, q)
	got, _, _ := evalWith(t, d, q, testutil.SingletonViews(q), store.Element, engine.Options{})
	if !got.SameAs(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
}

func TestTwigQuery(t *testing.T) {
	d := mustDoc(t, `<r><a><b/><b/><c><d/></c><c/></a><a><c><d/></c></a></r>`)
	for _, qs := range []string{"//a[//b]//c", "//a[//b]//c/d", "//a[//b][//c//d]", "//a/c/d"} {
		q := tpq.MustParse(qs)
		want := oracle.Eval(d, q)
		got, _, _ := evalWith(t, d, q, testutil.SingletonViews(q), store.Element, engine.Options{})
		if !got.SameAs(want) {
			t.Errorf("%s: got %d matches, want %d", qs, len(got), len(want))
		}
	}
}

func TestNestedRoots(t *testing.T) {
	// Recursive a-elements: windows must handle nested root candidates.
	d := mustDoc(t, `<a><a><b/><a><b/></a></a><b/></a>`)
	q := tpq.MustParse("//a//b")
	want := oracle.Eval(d, q)
	got, _, _ := evalWith(t, d, q, testutil.SingletonViews(q), store.Element, engine.Options{})
	if !got.SameAs(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
}

func TestEmptyResult(t *testing.T) {
	d := mustDoc(t, `<r><a/><b/></r>`)
	q := tpq.MustParse("//a//b")
	got, _, _ := evalWith(t, d, q, testutil.SingletonViews(q), store.Element, engine.Options{})
	if len(got) != 0 {
		t.Fatalf("got %d matches, want 0", len(got))
	}
}

func TestAllSchemesAgree(t *testing.T) {
	d := mustDoc(t, `<r><a><b><c/><e/></b><e/></a><a><f/><b><d/><c><d/></c></b><e/></a></r>`)
	q := tpq.MustParse("//a[//f]//b//c//d")
	want := oracle.Eval(d, q)
	for _, kind := range []store.Kind{store.Element, store.Linked, store.LinkedPartial} {
		for _, vs := range [][]*tpq.Pattern{
			testutil.SingletonViews(q),
			tpq.MustParseAll("//a//c; //b//d; //f"),
			tpq.MustParseAll("//a[//f]//b; //c//d"),
		} {
			got, _, _ := evalWith(t, d, q, vs, kind, engine.Options{})
			if !got.SameAs(want) {
				t.Errorf("%v %v: got %d matches, want %d", kind, vs, len(got), len(want))
			}
		}
	}
}

func TestDiskBasedApproach(t *testing.T) {
	d := mustDoc(t, `<r><a><b/><b/><c/></a><a><b/><c/><c/></a></r>`)
	q := tpq.MustParse("//a[//b]//c")
	want := oracle.Eval(d, q)
	gotM, _, cM := evalWith(t, d, q, testutil.SingletonViews(q), store.Element, engine.Options{})
	gotD, _, cD := evalWith(t, d, q, testutil.SingletonViews(q), store.Element,
		engine.Options{DiskBased: true, PageSize: 64})
	if !gotM.SameAs(want) || !gotD.SameAs(want) {
		t.Fatalf("disk/memory approaches disagree with oracle")
	}
	if cD.PagesWritten == 0 {
		t.Errorf("disk-based approach wrote no pages")
	}
	if cM.PagesWritten != 0 {
		t.Errorf("memory-based approach wrote pages")
	}
	if cD.PagesRead <= cM.PagesRead {
		t.Errorf("disk-based should read more pages: %d vs %d", cD.PagesRead, cM.PagesRead)
	}
}

func TestViewsPruneWork(t *testing.T) {
	// With a whole-query view, the streams contain only solution nodes, so
	// TS scans fewer elements than with singleton (raw) views.
	d := mustDoc(t, `<r><a><b/></a><a/><a/><b/><b/></r>`)
	q := tpq.MustParse("//a//b")
	_, _, cRaw := evalWith(t, d, q, testutil.SingletonViews(q), store.Element, engine.Options{})
	_, _, cView := evalWith(t, d, q, testutil.WholeQueryView(q), store.Element, engine.Options{})
	if cView.ElementsScanned >= cRaw.ElementsScanned {
		t.Errorf("whole-query view should scan fewer elements: %d vs %d",
			cView.ElementsScanned, cRaw.ElementsScanned)
	}
}

// TestAgainstOracleProperty is the main correctness property: random
// documents, random queries, random covering view partitions, all three
// element-family schemes, both output approaches.
func TestAgainstOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDoc(rng, 120, nil)
		q := testutil.RandomPattern(rng, 5, nil)
		vs := testutil.RandomViewPartition(rng, q)
		want := oracle.Eval(d, q)
		kind := []store.Kind{store.Element, store.Linked, store.LinkedPartial}[rng.Intn(3)]
		opts := engine.Options{DiskBased: rng.Intn(2) == 0, PageSize: 128}
		got, _, _ := evalWith(t, d, q, vs, kind, opts)
		if !got.SameAs(want) {
			t.Logf("seed=%d q=%s views=%v kind=%v: got %d, want %d", seed, q, vs, kind, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
