// Package twigstack implements the holistic twig join baseline of Bruno,
// Koudas & Srivastava (SIGMOD 2002), the "TS" of the paper's experiments.
//
// TwigStack evaluates a TPQ over one element stream per query node using
// the classic getNext cursor discipline and per-node stacks of open
// regions. In this reproduction the streams are the element-family lists of
// the covering views (schemes E, LE, LEp): TS reads the records
// sequentially and ignores any materialized pointers, exactly as the
// paper's extension of TS to linked-element views does — LE/LEp records are
// larger, so TS pays their extra I/O without gaining skipping.
//
// Output goes through the shared window enumeration stage (package enum),
// which verifies every query edge — including the pc-edges for which
// TwigStack's candidate generation is known to over-approximate.
package twigstack

import (
	"math"
	"sync"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/engine/enum"
	"viewjoin/internal/match"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

const inf = int32(math.MaxInt32)

// Stats reports run statistics beyond the shared counters.
type Stats struct {
	// PeakWindowEntries is |F_max| in entries (memory-based approach).
	PeakWindowEntries int
}

// Prepared is the compile-once part of a TwigStack evaluation: the bound
// per-query-node lists plus a pool of reusable evaluator scratch (cursors,
// open-region stacks, collector buffers). Immutable after construction and
// safe for concurrent Run calls.
type Prepared struct {
	d     *xmltree.Document
	q     *tpq.Pattern
	lists []*store.ListFile
	pool  sync.Pool // *evaluator
}

type evaluator struct {
	p      *Prepared
	curBuf []store.ListCursor
	cur    []*store.ListCursor
	io     *counters.IO
	tr     obs.Tracer
	col    *enum.Collector
	open   [][]enum.Label // per query node: stack of accepted open regions
	ic     engine.Interrupter

	// streaming gates the per-iteration frontier scan feeding the
	// collector's partial flushes; plain accumulating runs skip it.
	streaming bool
}

// Prepare binds q's evaluation over the given lists for repeated runs.
func Prepare(d *xmltree.Document, q *tpq.Pattern, lists []*store.ListFile) *Prepared {
	return &Prepared{d: d, q: q, lists: lists}
}

// Lists returns the per-query-node list files the plan is bound to, for
// partition planning.
func (p *Prepared) Lists() []*store.ListFile { return p.lists }

// Footprint estimates the plan-resident bytes beyond the shared document
// and view stores: TwigStack binds references to existing list files, so
// a cached plan carries only those bindings. Pooled evaluator scratch is
// per-run, recycled state and is excluded.
func (p *Prepared) Footprint() int64 { return int64(len(p.lists)) * 8 }

// Run executes the prepared plan once, drawing evaluator scratch from the
// pool and resetting it in place. The only error condition is a trip of
// opts.Interrupt (cooperative cancellation).
func (p *Prepared) Run(io *counters.IO, opts engine.Options) (match.Set, Stats, error) {
	e, _ := p.pool.Get().(*evaluator)
	if e == nil {
		n := p.q.Size()
		e = &evaluator{
			p:      p,
			curBuf: make([]store.ListCursor, n),
			cur:    make([]*store.ListCursor, n),
			col:    enum.NewCollector(p.d, p.q, nil, nil, false, 0),
			open:   make([][]enum.Label, n),
		}
	}
	e.io, e.tr = io, opts.Tracer
	e.ic = engine.NewInterrupter(opts.Interrupt)
	e.col.Reset(io, opts.Tracer, opts.DiskBased, opts.PageSize)
	e.col.SetInterrupt(&e.ic)
	e.col.SetStream(opts.Emit, opts.First, opts.After)
	e.streaming = opts.Emit != nil || opts.First > 0
	for qi := range p.lists {
		engine.ResetCursor(&e.curBuf[qi], p.lists[qi], io, opts.Tracer, qi, opts.Restrict)
		e.cur[qi] = &e.curBuf[qi]
	}
	for qi := range e.open {
		e.open[qi] = e.open[qi][:0]
	}
	e.run()
	if err := e.ic.Err(); err != nil && err != engine.ErrStop {
		p.pool.Put(e)
		return nil, Stats{}, err
	}
	// ErrStop is the collector's output quota tripping, not a failure: the
	// bounded output collected so far is the answer.
	out := e.col.Result()
	st := Stats{PeakWindowEntries: e.col.PeakEntries()}
	p.pool.Put(e)
	return out, st, nil
}

// Eval evaluates q over the per-query-node lists using TwigStack and
// returns all tree pattern instances (one-shot Prepare + Run).
func Eval(d *xmltree.Document, q *tpq.Pattern, lists []*store.ListFile, io *counters.IO, opts engine.Options) (match.Set, Stats, error) {
	return Prepare(d, q, lists).Run(io, opts)
}

// start returns the current start label of qi's cursor, or +inf when the
// stream is exhausted.
func (e *evaluator) start(qi int) int32 {
	if !e.cur[qi].Valid() {
		return inf
	}
	return e.cur[qi].Item().Start
}

// end returns the current end label of qi's cursor, or +inf when exhausted.
func (e *evaluator) end(qi int) int32 {
	if !e.cur[qi].Valid() {
		return inf
	}
	return e.cur[qi].Item().End
}

func (e *evaluator) run() {
	for {
		if e.ic.Check() != nil {
			return
		}
		qact := e.getNext(0)
		if !e.cur[qact].Valid() {
			break
		}
		it := e.cur[qact].Item()
		l := enum.Label{Start: it.Start, End: it.End, Level: it.Level}
		if e.accept(qact, l) {
			e.push(qact, l)
			e.col.Add(qact, l)
		}
		e.cur[qact].Next()
		if e.streaming {
			// Cursors only move forward, so the smallest current start is a
			// sound frontier: every future Add starts at or after it.
			f := inf
			for qi := range e.cur {
				if s := e.start(qi); s < f {
					f = s
				}
			}
			if f < inf {
				e.col.Advance(f)
			}
		}
	}
}

// accept implements TwigStack's stack discipline: the root is always
// accepted; any other node needs an open accepted ancestor for its query
// parent.
func (e *evaluator) accept(qi int, l enum.Label) bool {
	if qi == 0 {
		return true
	}
	p := e.p.q.Nodes[qi].Parent
	s := e.open[p]
	popped := 0
	for len(s) > 0 && s[len(s)-1].End < l.Start {
		s = s[:len(s)-1]
		popped++
		e.io.C.Comparisons++
	}
	e.open[p] = s
	if popped > 0 && e.tr != nil {
		e.tr.Event(obs.EvStackPop, p, int64(popped))
	}
	if len(s) == 0 {
		return false
	}
	e.io.C.Comparisons++
	return s[len(s)-1].Start < l.Start && l.End < s[len(s)-1].End
}

// push records an accepted candidate as an open region for its query node,
// popping regions that ended before it.
func (e *evaluator) push(qi int, l enum.Label) {
	s := e.open[qi]
	popped := 0
	for len(s) > 0 && s[len(s)-1].End < l.Start {
		s = s[:len(s)-1]
		popped++
	}
	e.open[qi] = append(s, l)
	if e.tr != nil {
		if popped > 0 {
			e.tr.Event(obs.EvStackPop, qi, int64(popped))
		}
		e.tr.Event(obs.EvStackPush, qi, 1)
	}
}

// getNext is the classic TwigStack cursor routine: it returns the query
// node whose current cursor entry should be processed next. Exhausted
// cursors act as +inf sentinels; when the returned node's cursor is
// exhausted, evaluation is complete.
func (e *evaluator) getNext(qi int) int {
	children := e.p.q.Nodes[qi].Children
	if len(children) == 0 {
		return qi
	}
	qmin, qmax := -1, -1
	for _, qc := range children {
		r := e.getNext(qc)
		if r != qc && e.cur[r].Valid() {
			return r
		}
		// An exhausted deep return means that subtree is fully drained; the
		// remaining children (and qi itself) may still have useful entries,
		// so fold it into the min/max bookkeeping instead of propagating.
		if qmin == -1 || e.start(qc) < e.start(qmin) {
			qmin = qc
		}
		if qmax == -1 || e.start(qc) > e.start(qmax) {
			qmax = qc
		}
	}
	// Skip qi-nodes that cannot contain all child candidates.
	for e.cur[qi].Valid() && e.end(qi) < e.start(qmax) {
		if e.ic.Check() != nil {
			return qi
		}
		e.io.C.Comparisons++
		e.cur[qi].Next()
	}
	e.io.C.Comparisons++
	if e.start(qi) < e.start(qmin) {
		return qi
	}
	return qmin
}
