package engine

import (
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/xmltree"
)

func TestSpanEmptyContains(t *testing.T) {
	cases := []struct {
		s       Span
		empty   bool
		in, out []int32
	}{
		{s: Span{0, 0}, empty: true, out: []int32{0}},
		{s: Span{5, 5}, empty: true, out: []int32{4, 5, 6}},
		{s: Span{7, 3}, empty: true, out: []int32{3, 5, 7}},
		{s: Span{2, 6}, in: []int32{2, 3, 5}, out: []int32{1, 6, 7}},
	}
	for _, tc := range cases {
		if got := tc.s.Empty(); got != tc.empty {
			t.Errorf("Span%v.Empty() = %v, want %v", tc.s, got, tc.empty)
		}
		for _, v := range tc.in {
			if !tc.s.Contains(v) {
				t.Errorf("Span%v.Contains(%d) = false, want true", tc.s, v)
			}
		}
		for _, v := range tc.out {
			if tc.s.Contains(v) {
				t.Errorf("Span%v.Contains(%d) = true, want false", tc.s, v)
			}
		}
	}
}

func TestRestrictionSpanForAndAdmits(t *testing.T) {
	// Two spine nodes (0, 1) above a body of [10, 20).
	r := &Restriction{Spine: 2, Body: Span{10, 20}}

	if got := r.SpanFor(0); got != (Span{0, 20}) {
		t.Errorf("SpanFor(spine) = %v, want [0,20)", got)
	}
	if got := r.SpanFor(2); got != (Span{10, 20}) {
		t.Errorf("SpanFor(body) = %v, want [10,20)", got)
	}

	cases := []struct {
		name       string
		qi         int
		start, end int32
		want       bool
	}{
		// Spine nodes: region must overlap the body (ancestors of the
		// anchor binding satisfy start < Hi && end > Lo).
		{"spine containing body", 0, 0, 100, true},
		{"spine overlapping left edge", 1, 5, 11, true},
		{"spine ending at body start", 0, 5, 10, false},
		{"spine starting at body end", 0, 20, 30, false},
		{"spine inside body", 1, 12, 15, true},
		// Non-spine nodes: the start label must fall inside the body,
		// boundaries half-open.
		{"body first admitted start", 2, 10, 11, true},
		{"body last admitted start", 2, 19, 25, true},
		{"body start at Hi", 2, 20, 21, false},
		{"body start before Lo", 2, 9, 30, false},
	}
	for _, tc := range cases {
		if got := r.Admits(tc.qi, tc.start, tc.end); got != tc.want {
			t.Errorf("%s: Admits(%d, %d, %d) = %v, want %v",
				tc.name, tc.qi, tc.start, tc.end, got, tc.want)
		}
	}
}

func TestMergeSpans(t *testing.T) {
	cases := []struct {
		name string
		in   []Span
		want []Span
	}{
		{name: "nil", in: nil, want: nil},
		{name: "all empty", in: []Span{{3, 3}, {5, 2}}, want: nil},
		{name: "single", in: []Span{{1, 4}}, want: []Span{{1, 4}}},
		{name: "disjoint stay split", in: []Span{{1, 3}, {5, 8}}, want: []Span{{1, 3}, {5, 8}}},
		{name: "adjacent stay split", in: []Span{{1, 3}, {3, 6}}, want: []Span{{1, 3}, {3, 6}}},
		{name: "overlapping merge", in: []Span{{1, 5}, {4, 9}}, want: []Span{{1, 9}}},
		{name: "nested merge", in: []Span{{1, 9}, {3, 5}}, want: []Span{{1, 9}}},
		{name: "unsorted input", in: []Span{{7, 9}, {0, 2}, {1, 5}}, want: []Span{{0, 5}, {7, 9}}},
		{name: "duplicates", in: []Span{{2, 4}, {2, 4}}, want: []Span{{2, 4}}},
		{name: "empty among real", in: []Span{{4, 4}, {1, 3}, {6, 6}}, want: []Span{{1, 3}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MergeSpans(append([]Span(nil), tc.in...))
			if len(got) != len(tc.want) {
				t.Fatalf("MergeSpans = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("MergeSpans = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestCoalesceSpans(t *testing.T) {
	uniform := func(Span) int64 { return 1 }
	width := func(s Span) int64 { return int64(s.Hi - s.Lo) }
	zero := func(Span) int64 { return 0 }
	four := []Span{{0, 10}, {20, 30}, {40, 50}, {60, 70}}

	cases := []struct {
		name   string
		in     []Span
		weight func(Span) int64
		k      int
		want   []Span
	}{
		{name: "empty", in: nil, weight: uniform, k: 3, want: nil},
		{name: "k=1 collapses", in: four, weight: uniform, k: 1, want: []Span{{0, 70}}},
		{name: "k=0 collapses", in: four, weight: uniform, k: 0, want: []Span{{0, 70}}},
		{name: "k beyond spans clamps", in: four, weight: uniform, k: 9,
			want: []Span{{0, 10}, {20, 30}, {40, 50}, {60, 70}}},
		{name: "uniform split", in: four, weight: uniform, k: 2,
			want: []Span{{0, 30}, {40, 70}}},
		{name: "zero weights balance counts", in: four, weight: zero, k: 2,
			want: []Span{{0, 30}, {40, 70}}},
		// One huge leading span takes a whole chunk; the rest share.
		{name: "skewed weights", in: []Span{{0, 100}, {200, 210}, {220, 230}, {240, 250}},
			weight: width, k: 2, want: []Span{{0, 100}, {200, 250}}},
		// Chunks never exceed k even when the fair share is tiny.
		{name: "trailing spans folded into last chunk", in: four, weight: uniform, k: 3,
			want: []Span{{0, 10}, {20, 30}, {40, 70}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := CoalesceSpans(append([]Span(nil), tc.in...), tc.weight, tc.k)
			if len(got) != len(tc.want) {
				t.Fatalf("CoalesceSpans = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("CoalesceSpans = %v, want %v", got, tc.want)
				}
			}
			// Structural invariants: document-ordered, disjoint, covering
			// the input's extent.
			for i := 1; i < len(got); i++ {
				if got[i].Lo < got[i-1].Hi {
					t.Fatalf("chunks overlap or regress: %v", got)
				}
			}
			if len(tc.in) > 0 {
				if got[0].Lo != tc.in[0].Lo || got[len(got)-1].Hi != tc.in[len(tc.in)-1].Hi {
					t.Fatalf("chunks %v do not span input %v", got, tc.in)
				}
			}
		})
	}
}

// rangeList builds a single-node //e list over a small document, returning
// the list file for range-cursor tests.
func rangeList(t *testing.T) *store.ListFile {
	t.Helper()
	d, err := xmltree.ParseString(`<r><e/><a><e/><e/></a><e/><b><e/></b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	m := views.MustMaterialize(d, tpq.MustParse("//e"))
	s := store.MustBuild(m, store.Element, 64)
	return s.Lists[0]
}

func TestResetCursorAndCountInSpan(t *testing.T) {
	l := rangeList(t)
	n := l.Entries()
	if n < 4 {
		t.Fatalf("need at least 4 records, have %d", n)
	}
	starts := make([]int32, n)
	for i := 0; i < n; i++ {
		starts[i] = l.LabelAt(i).Start
	}
	var c counters.Counters
	io := counters.NewIO(&c, 0)
	var cur store.ListCursor

	// nil restriction opens the whole list.
	ResetCursor(&cur, l, io, nil, 0, nil)
	count := 0
	for cur.Valid() {
		count++
		cur.Next()
	}
	if count != n {
		t.Fatalf("nil restriction saw %d records, want %d", count, n)
	}

	// A body span admitting records 1..2 restricts a non-spine cursor to
	// exactly those, and CountInSpan agrees.
	sp := Span{starts[1], starts[3]}
	r := &Restriction{Spine: 0, Body: sp}
	ResetCursor(&cur, l, io, nil, 0, r)
	var seen []int32
	for cur.Valid() {
		seen = append(seen, cur.Item().Start)
		cur.Next()
	}
	if len(seen) != 2 || seen[0] != starts[1] || seen[1] != starts[2] {
		t.Fatalf("restricted cursor saw %v, want [%d %d]", seen, starts[1], starts[2])
	}
	if got := CountInSpan(l, sp); got != 2 {
		t.Fatalf("CountInSpan = %d, want 2", got)
	}

	// A span past either end of the list clamps to an empty window.
	ResetCursor(&cur, l, io, nil, 0, &Restriction{Body: Span{starts[n-1] + 1000, starts[n-1] + 2000}})
	if cur.Valid() {
		t.Error("out-of-range restriction: cursor should be invalid")
	}
	if got := CountInSpan(l, Span{-100, starts[0]}); got != 0 {
		t.Fatalf("CountInSpan before list = %d, want 0", got)
	}
}
