// Package engine holds the pieces shared by the TPQ evaluation engines:
// binding query nodes to the on-disk lists of the covering views, and the
// common evaluation options.
package engine

import (
	"fmt"

	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/vsq"
)

// Options controls an evaluation run.
type Options struct {
	// Tracer receives phase spans and engine-internal events (cursor
	// advances, jumps taken/refused, stack operations). nil disables
	// tracing at zero hot-path cost.
	Tracer obs.Tracer
	// DiskBased selects the disk-based output approach (§IV "Variations"):
	// intermediate solutions are spooled to scratch pages and re-read,
	// trading I/O for a resident set of O(|Q|·depth).
	DiskBased bool
	// PageSize is the scratch page size for the disk-based approach; 0
	// means store.DefaultPageSize.
	PageSize int
	// UnguardedJumps makes ViewJoin follow scoped following pointers
	// unconditionally, as the paper's Function 4 prescribes, instead of
	// applying this reproduction's safe-jump probe rule (see
	// engine/viewjoin). Unsound when the queried element types nest
	// recursively; provided for the ablation experiment, which runs on
	// data without such nesting.
	UnguardedJumps bool
	// Interrupt, when non-nil, is polled cooperatively from the engine main
	// loops and the window enumeration stage; a non-nil return aborts the
	// run with that error. The public API binds it to a context's deadline
	// or cancellation. nil keeps the historical uninterruptible behaviour
	// at zero hot-path cost.
	Interrupt func() error
	// Restrict, when non-nil, narrows the run to a start-range slice of
	// the document: every list cursor is bound to the records whose start
	// labels fall in the restriction's span for its query node (Root for
	// node 0, Body for the rest). Partitioned evaluation runs one
	// restricted job per document chunk; nil keeps the whole document.
	Restrict *Restriction
}

// interruptStride is how many Interrupter.Check calls elapse between real
// polls of the underlying hook. 256 keeps the per-iteration cost to a
// counter increment and a mask while bounding cancellation latency to a few
// hundred cursor steps.
const interruptStride = 256

// Interrupter performs strided cooperative cancellation checks for the
// engine hot loops. The zero value (nil hook) never interrupts and costs
// two predictable branches per Check. The first Check always polls, so an
// already-expired deadline aborts before any work; the error is sticky.
type Interrupter struct {
	f   func() error
	n   uint32
	err error
}

// NewInterrupter returns an Interrupter polling f (nil disables).
func NewInterrupter(f func() error) Interrupter { return Interrupter{f: f} }

// Check polls the hook every interruptStride-th call (and on the first)
// and returns the sticky error. The hookless fast path is kept to a single
// nil test so the compiler inlines it into the engine hot loops.
func (ic *Interrupter) Check() error {
	if ic.f == nil {
		return nil
	}
	return ic.check()
}

func (ic *Interrupter) check() error {
	if ic.err != nil {
		return ic.err
	}
	if ic.n%interruptStride == 0 {
		ic.err = ic.f()
	}
	ic.n++
	return ic.err
}

// Err returns the sticky error recorded by a previous Check, without
// polling.
func (ic *Interrupter) Err() error { return ic.err }

// Active reports whether a hook is installed, i.e. whether Check can ever
// return non-nil. Engines use it to skip wiring the interrupter into
// sub-components entirely on uninterruptible runs.
func (ic *Interrupter) Active() bool { return ic != nil && ic.f != nil }

// BindLists maps each query node to the list file that holds its
// candidates: the list of its covering view's node, found through the
// view-segmented query's ownership maps. The stores must be the element-
// family stores of v.Views, in the same order.
func BindLists(v *vsq.VSQ, stores []*store.ViewStore) ([]*store.ListFile, error) {
	if len(stores) != len(v.Views) {
		return nil, fmt.Errorf("engine: %d stores for %d views", len(stores), len(v.Views))
	}
	files := make([]*store.ListFile, v.Query.Size())
	for qi := range files {
		vi, ni := v.Owner[qi], v.ViewNode[qi]
		if vi < 0 || ni < 0 {
			return nil, fmt.Errorf("engine: query node %d not covered by any view", qi)
		}
		s := stores[vi]
		if s.Kind == store.Tuple || len(s.Lists) != v.Views[vi].Size() {
			return nil, fmt.Errorf("engine: store %d (%v) is not an element-family store of view %s",
				vi, s.Kind, v.Views[vi])
		}
		files[qi] = s.Lists[ni]
	}
	return files, nil
}
