// Package engine holds the pieces shared by the TPQ evaluation engines:
// binding query nodes to the on-disk lists of the covering views, and the
// common evaluation options.
package engine

import (
	"errors"
	"fmt"

	"viewjoin/internal/match"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/vsq"
)

// ErrStop is the graceful early-termination signal: when an output quota is
// met (first-k, LIMIT/OFFSET) the enumeration stage records it on the run's
// Interrupter, unwinding the engine loops exactly like a cancellation —
// except the engines treat it as success with the output produced so far
// rather than as a failed run. Interrupt hooks may also return it to stop a
// run without failing it (the parallel cutoff does).
var ErrStop = errors.New("engine: stopped at output quota")

// Options controls an evaluation run.
type Options struct {
	// Tracer receives phase spans and engine-internal events (cursor
	// advances, jumps taken/refused, stack operations). nil disables
	// tracing at zero hot-path cost.
	Tracer obs.Tracer
	// DiskBased selects the disk-based output approach (§IV "Variations"):
	// intermediate solutions are spooled to scratch pages and re-read,
	// trading I/O for a resident set of O(|Q|·depth).
	DiskBased bool
	// PageSize is the scratch page size for the disk-based approach; 0
	// means store.DefaultPageSize.
	PageSize int
	// UnguardedJumps makes ViewJoin follow scoped following pointers
	// unconditionally, as the paper's Function 4 prescribes, instead of
	// applying this reproduction's safe-jump probe rule (see
	// engine/viewjoin). Unsound when the queried element types nest
	// recursively; provided for the ablation experiment, which runs on
	// data without such nesting.
	UnguardedJumps bool
	// Interrupt, when non-nil, is polled cooperatively from the engine main
	// loops and the window enumeration stage; a non-nil return aborts the
	// run with that error. The public API binds it to a context's deadline
	// or cancellation. nil keeps the historical uninterruptible behaviour
	// at zero hot-path cost.
	Interrupt func() error
	// Restrict, when non-nil, narrows the run to a start-range slice of
	// the document: every list cursor is bound to the records whose start
	// labels fall in the restriction's span for its query node (Root for
	// node 0, Body for the rest). Partitioned evaluation runs one
	// restricted job per document chunk; nil keeps the whole document.
	Restrict *Restriction
	// Emit, when non-nil, streams each match to the sink as it is produced
	// instead of accumulating it into the returned set; returning false
	// stops the run early (ErrStop). The match slice is enumeration scratch
	// reused for the next match — sinks must copy what they keep. Only the
	// window-collector engines (ViewJoin, TwigStack) deliver incrementally
	// and in document order; PathStack and InterJoin sort before output, so
	// their callers replay the finished result instead.
	Emit func(match.Match) bool
	// First, when > 0, bounds the number of matches produced (quota =
	// offset + limit, counted after the After filter): once reached, the
	// enumeration stage stops the run via ErrStop and the engine returns
	// the bounded output as a successful result.
	First int
	// After, when non-nil, restricts output to matches strictly greater
	// than this start-label tuple (one start per query node, compared
	// lexicographically — i.e. document order). Cursor-based pagination
	// resumes here so a follow-up page seeks instead of re-enumerating.
	// Honoured by the window-collector engines only.
	After []int32
}

// interruptStride is how many Interrupter.Check calls elapse between real
// polls of the underlying hook. 256 keeps the per-iteration cost to a
// counter increment and a mask while bounding cancellation latency to a few
// hundred cursor steps.
const interruptStride = 256

// Interrupter performs strided cooperative cancellation checks for the
// engine hot loops. The zero value (nil hook) never interrupts and costs
// two predictable branches per Check. The first Check always polls, so an
// already-expired deadline aborts before any work; the error is sticky.
type Interrupter struct {
	f   func() error
	n   uint32
	err error
}

// NewInterrupter returns an Interrupter polling f (nil disables).
func NewInterrupter(f func() error) Interrupter { return Interrupter{f: f} }

// Check polls the hook every interruptStride-th call (and on the first)
// and returns the sticky error. The sticky error is tested before the hook
// so a Stop works without any hook installed; the no-hook, no-stop fast
// path stays two nil tests so the compiler inlines it into the engine hot
// loops.
func (ic *Interrupter) Check() error {
	if ic.err != nil {
		return ic.err
	}
	if ic.f == nil {
		return nil
	}
	return ic.check()
}

func (ic *Interrupter) check() error {
	if ic.err != nil {
		return ic.err
	}
	if ic.n%interruptStride == 0 {
		ic.err = ic.f()
	}
	ic.n++
	return ic.err
}

// Err returns the sticky error recorded by a previous Check, without
// polling.
func (ic *Interrupter) Err() error { return ic.err }

// Stop records ErrStop as the sticky error, making every subsequent Check
// and Err report it: the engine loops unwind as for a cancellation, then
// treat the run as successfully terminated at its output quota. A real
// error already recorded wins — a stop never masks a failure.
func (ic *Interrupter) Stop() {
	if ic.err == nil {
		ic.err = ErrStop
	}
}

// Active reports whether a hook is installed, i.e. whether Check can ever
// return non-nil. Engines use it to skip wiring the interrupter into
// sub-components entirely on uninterruptible runs.
func (ic *Interrupter) Active() bool { return ic != nil && ic.f != nil }

// BindLists maps each query node to the list file that holds its
// candidates: the list of its covering view's node, found through the
// view-segmented query's ownership maps. The stores must be the element-
// family stores of v.Views, in the same order.
func BindLists(v *vsq.VSQ, stores []*store.ViewStore) ([]*store.ListFile, error) {
	if len(stores) != len(v.Views) {
		return nil, fmt.Errorf("engine: %d stores for %d views", len(stores), len(v.Views))
	}
	files := make([]*store.ListFile, v.Query.Size())
	for qi := range files {
		vi, ni := v.Owner[qi], v.ViewNode[qi]
		if vi < 0 || ni < 0 {
			return nil, fmt.Errorf("engine: query node %d not covered by any view", qi)
		}
		s := stores[vi]
		if s.Kind == store.Tuple || len(s.Lists) != v.Views[vi].Size() {
			return nil, fmt.Errorf("engine: store %d (%v) is not an element-family store of view %s",
				vi, s.Kind, v.Views[vi])
		}
		files[qi] = s.Lists[ni]
	}
	return files, nil
}
