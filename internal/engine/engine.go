// Package engine holds the pieces shared by the TPQ evaluation engines:
// binding query nodes to the on-disk lists of the covering views, and the
// common evaluation options.
package engine

import (
	"fmt"

	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/vsq"
)

// Options controls an evaluation run.
type Options struct {
	// Tracer receives phase spans and engine-internal events (cursor
	// advances, jumps taken/refused, stack operations). nil disables
	// tracing at zero hot-path cost.
	Tracer obs.Tracer
	// DiskBased selects the disk-based output approach (§IV "Variations"):
	// intermediate solutions are spooled to scratch pages and re-read,
	// trading I/O for a resident set of O(|Q|·depth).
	DiskBased bool
	// PageSize is the scratch page size for the disk-based approach; 0
	// means store.DefaultPageSize.
	PageSize int
	// UnguardedJumps makes ViewJoin follow scoped following pointers
	// unconditionally, as the paper's Function 4 prescribes, instead of
	// applying this reproduction's safe-jump probe rule (see
	// engine/viewjoin). Unsound when the queried element types nest
	// recursively; provided for the ablation experiment, which runs on
	// data without such nesting.
	UnguardedJumps bool
}

// BindLists maps each query node to the list file that holds its
// candidates: the list of its covering view's node, found through the
// view-segmented query's ownership maps. The stores must be the element-
// family stores of v.Views, in the same order.
func BindLists(v *vsq.VSQ, stores []*store.ViewStore) ([]*store.ListFile, error) {
	if len(stores) != len(v.Views) {
		return nil, fmt.Errorf("engine: %d stores for %d views", len(stores), len(v.Views))
	}
	files := make([]*store.ListFile, v.Query.Size())
	for qi := range files {
		vi, ni := v.Owner[qi], v.ViewNode[qi]
		if vi < 0 || ni < 0 {
			return nil, fmt.Errorf("engine: query node %d not covered by any view", qi)
		}
		s := stores[vi]
		if s.Kind == store.Tuple || len(s.Lists) != v.Views[vi].Size() {
			return nil, fmt.Errorf("engine: store %d (%v) is not an element-family store of view %s",
				vi, s.Kind, v.Views[vi])
		}
		files[qi] = s.Lists[ni]
	}
	return files, nil
}
