// Package viewjoin implements the ViewJoin algorithm (§IV of the paper):
// holistic evaluation of a tree pattern query over a minimal covering set
// of materialized TPQ views stored in an element-family scheme (E, LE,
// LEp).
//
// The evaluation follows the paper's two-step structure:
//
//  1. Evaluate the view-segmented query Q' (package vsq): a getNext cursor
//     discipline recurses over segments rather than query nodes, performing
//     structural comparisons only across inter-view edges. Within a
//     segment the structural joins are precomputed by the view, so member
//     cursors are coordinated through materialized child pointers and bulk
//     additions (the paper's addNodes), and useless regions are skipped by
//     following-pointer jumps (the paper's advancePointers).
//  2. Extend each output window with the query nodes that were removed
//     from Q' by following child pointers from their view parents' first
//     matches (the paper's "extend F to cover nodes in Q via pointers"),
//     then enumerate matches with every edge of the original Q verified.
//
// # Deviations from the paper's pseudocode
//
// The paper's Functions 3-4 jump cursors through scoped following pointers
// and reposition member cursors through child pointers unconditionally.
// Both jumps can skip entries that still participate in matches when
// same-type elements nest (see DESIGN.md); real XML datasets rarely nest
// the queried types, which is presumably why the paper never hits the
// case. This implementation guards every jump:
//
//   - a scoped following-pointer jump is taken only when the jump target
//     starts at or before the alignment target (unscoped jumps are always
//     safe);
//   - a member reposition through a child pointer is taken only when no
//     open accepted ancestor still covers the member's current entry.
//
// When a jump is rejected the cursor falls back to a sequential advance,
// exactly like the LEp scheme's fallback for unmaterialized pointers, so
// the guards never cost more than the paper's own degraded path.
package viewjoin

import (
	"fmt"
	"sync"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/engine/enum"
	"viewjoin/internal/match"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/vsq"
	"viewjoin/internal/xmltree"
)

// Stats reports run statistics beyond the shared counters.
type Stats struct {
	// PeakWindowEntries is |F_max| in entries (memory-based approach).
	PeakWindowEntries int
	// Segments is the number of segments in the view-segmented query.
	Segments int
}

// Prepared is the compile-once part of a ViewJoin evaluation: the bound
// lists, the inverse view maps, and a pool of reusable evaluator scratch
// state. A Prepared is immutable after construction and safe for
// concurrent Run calls; each Run takes an evaluator from the pool (or
// allocates a fresh one) and returns it afterwards, so repeated runs pay
// for cursor movement and enumeration only — the costs the paper's §V
// model charges — not for setup.
type Prepared struct {
	d     *xmltree.Document
	v     *vsq.VSQ
	lists []*store.ListFile

	// viewParentQ[qi] is the query node of qi's parent within its view, or
	// -1 when qi is a view root; viewChildSlot[qi] is qi's child-pointer
	// slot in that parent's records.
	viewParentQ   []int
	viewChildSlot []int
	// removedChildren[qi] lists the removed query nodes whose view parent
	// is qi (extension targets).
	removedChildren [][]int
	// isSegRoot[qi] reports whether qi is the root of its segment.
	isSegRoot []bool

	primeNodes   []int // cached v.PrimeNodes()
	removedNodes []int // cached v.RemovedNodes()

	pool sync.Pool // *evaluator
}

type evaluator struct {
	p  *Prepared
	io *counters.IO
	tr obs.Tracer // nil when tracing is off

	// curBuf backs cur so per-run cursor state is reset in place instead of
	// reallocated; cur[qi] is nil for removed nodes.
	curBuf []store.ListCursor
	cur    []*store.ListCursor
	col    *enum.Collector

	// open[qi] logs the accepted regions of qi in the current window, in
	// ascending start order (each node's admissions follow its own cursor),
	// with a prefix maximum of the end labels for O(log n) containment
	// checks. This plays the role of the paper's "has a p-type ancestor in
	// F" test (Function 3 line 12): unlike a pop-on-push stack it tolerates
	// the out-of-document-order admissions that bulk segment adds produce.
	open []regionLog

	// Window-extension state: extCur are lazy persistent cursors (backed by
	// extBuf) for removed nodes; extJump holds, per removed node, the child
	// pointer captured from the first in-window candidate of its view
	// parent.
	extBuf  []store.ListCursor
	extCur  []*store.ListCursor
	extJump []store.Pointer
	hasJump []bool

	winOpen bool
	winEnd  int32

	// ic is the run's cooperative cancellation checker, polled from the
	// main loop and shared with the collector's enumeration stage.
	ic engine.Interrupter

	// unguarded disables the safe-jump probe rule on scoped following
	// pointers (ablation mode: the paper's Function 4 jumps them
	// unconditionally; see package docs).
	unguarded bool

	// restrict is the run's partition restriction (nil = whole document);
	// kept so the lazily-opened extension cursors bind to the same list
	// slice as the prime cursors.
	restrict *engine.Restriction

	// streaming gates the per-iteration frontier hand-off feeding the
	// collector's partial flushes; plain accumulating runs skip it.
	streaming bool
}

// Prepare compiles the view-segmented query against the element-family
// stores of its views: lists are bound and the inverse view maps computed
// once, ready for any number of Run calls over document d.
func Prepare(d *xmltree.Document, v *vsq.VSQ, stores []*store.ViewStore, tr obs.Tracer) (*Prepared, error) {
	if tr != nil {
		tr.BeginPhase(obs.PhaseBind)
	}
	lists, err := engine.BindLists(v, stores)
	if tr != nil {
		tr.EndPhase(obs.PhaseBind)
	}
	if err != nil {
		return nil, fmt.Errorf("viewjoin: %w", err)
	}
	n := v.Query.Size()
	p := &Prepared{
		d:               d,
		v:               v,
		lists:           lists,
		viewParentQ:     make([]int, n),
		viewChildSlot:   make([]int, n),
		removedChildren: make([][]int, n),
		isSegRoot:       make([]bool, n),
		primeNodes:      v.PrimeNodes(),
		removedNodes:    v.RemovedNodes(),
	}
	p.buildViewMaps()
	for _, qi := range p.primeNodes {
		p.isSegRoot[qi] = v.Segments[v.SegOf[qi]].Root == qi
	}
	return p, nil
}

// Lists returns the per-query-node list files the plan is bound to, for
// partition planning.
func (p *Prepared) Lists() []*store.ListFile { return p.lists }

// Footprint estimates the plan-resident bytes beyond the shared document
// and view stores: the per-query-node segmentation tables built at
// Prepare time plus the list bindings. Pooled evaluator scratch is per-run,
// recycled state and is excluded.
func (p *Prepared) Footprint() int64 {
	f := int64(len(p.viewParentQ))*8 + int64(len(p.viewChildSlot))*8 + int64(len(p.isSegRoot))
	f += int64(len(p.primeNodes)+len(p.removedNodes)) * 8
	for _, rc := range p.removedChildren {
		f += 24 + int64(len(rc))*8
	}
	return f + int64(len(p.lists))*8
}

// Run executes the prepared plan once: evaluator scratch state (cursors,
// region logs, collector buffers, extension state) comes from the pool and
// is reset in place, so a warm Run allocates only for the output.
func (p *Prepared) Run(io *counters.IO, opts engine.Options) (match.Set, Stats, error) {
	e, _ := p.pool.Get().(*evaluator)
	if e == nil {
		e = newEvaluator(p)
	}
	e.reset(io, opts)
	e.run()
	if err := e.ic.Err(); err != nil && err != engine.ErrStop {
		// Interrupted: abandon the partial output. The evaluator still goes
		// back to the pool — reset clears every piece of scratch on reuse.
		p.pool.Put(e)
		return nil, Stats{}, err
	}
	// ErrStop is the collector's output quota tripping, not a failure: the
	// bounded output collected so far is the answer.
	out := e.col.Result()
	st := Stats{PeakWindowEntries: e.col.PeakEntries(), Segments: len(p.v.Segments)}
	p.pool.Put(e)
	return out, st, nil
}

// Eval evaluates the view-segmented query's underlying query over the
// element-family stores of its views and returns all tree pattern
// instances of the original query (one-shot Prepare + Run).
func Eval(d *xmltree.Document, v *vsq.VSQ, stores []*store.ViewStore, io *counters.IO,
	opts engine.Options) (match.Set, Stats, error) {
	p, err := Prepare(d, v, stores, opts.Tracer)
	if err != nil {
		return nil, Stats{}, err
	}
	return p.Run(io, opts)
}

// newEvaluator allocates the per-run scratch for one pooled evaluator; all
// of it is reset in place by reset on every reuse.
func newEvaluator(p *Prepared) *evaluator {
	n := p.v.Query.Size()
	e := &evaluator{
		p:       p,
		curBuf:  make([]store.ListCursor, n),
		cur:     make([]*store.ListCursor, n),
		col:     enum.NewCollector(p.d, p.v.Query, nil, nil, false, 0),
		open:    make([]regionLog, n),
		extBuf:  make([]store.ListCursor, n),
		extCur:  make([]*store.ListCursor, n),
		extJump: make([]store.Pointer, n),
		hasJump: make([]bool, n),
	}
	if len(p.removedNodes) > 0 {
		e.col.PreFlush = e.extendWindow
	}
	return e
}

// reset rebinds the per-run accounting and options and clears every piece
// of scratch state, keeping capacity.
func (e *evaluator) reset(io *counters.IO, opts engine.Options) {
	e.io, e.tr = io, opts.Tracer
	e.unguarded = opts.UnguardedJumps
	e.restrict = opts.Restrict
	e.ic = engine.NewInterrupter(opts.Interrupt)
	e.col.Reset(io, opts.Tracer, opts.DiskBased, opts.PageSize)
	e.col.SetInterrupt(&e.ic)
	e.col.SetStream(opts.Emit, opts.First, opts.After)
	e.streaming = opts.Emit != nil || opts.First > 0
	e.winOpen, e.winEnd = false, 0
	for _, qi := range e.p.primeNodes {
		engine.ResetCursor(&e.curBuf[qi], e.p.lists[qi], io, opts.Tracer, qi, opts.Restrict)
		e.cur[qi] = &e.curBuf[qi]
	}
	for i := range e.open {
		e.open[i].reset()
		e.extCur[i] = nil
		e.hasJump[i] = false
	}
}

// buildViewMaps precomputes, for every query node, its view parent's query
// node and its child-pointer slot, plus the removed-children extension map.
func (p *Prepared) buildViewMaps() {
	// viewNodeToQuery[vi][ni] inverts v.ViewNode.
	inv := make([][]int, len(p.v.Views))
	for vi, view := range p.v.Views {
		inv[vi] = make([]int, view.Size())
	}
	for qi := 0; qi < p.v.Query.Size(); qi++ {
		inv[p.v.Owner[qi]][p.v.ViewNode[qi]] = qi
	}
	for qi := 0; qi < p.v.Query.Size(); qi++ {
		vi, ni := p.v.Owner[qi], p.v.ViewNode[qi]
		view := p.v.Views[vi]
		pn := view.Nodes[ni].Parent
		if pn == -1 {
			p.viewParentQ[qi] = -1
			p.viewChildSlot[qi] = -1
			continue
		}
		p.viewParentQ[qi] = inv[vi][pn]
		for ci, c := range view.Nodes[pn].Children {
			if c == ni {
				p.viewChildSlot[qi] = ci
				break
			}
		}
	}
	for _, x := range p.removedNodes {
		if vp := p.viewParentQ[x]; vp != -1 {
			p.removedChildren[vp] = append(p.removedChildren[vp], x)
		}
	}
}

func (e *evaluator) valid(qi int) bool { return e.cur[qi] != nil && e.cur[qi].Valid() }

func (e *evaluator) start(qi int) int32 { return e.cur[qi].Item().Start }

// run is the paper's Algorithm 1 main loop: pull the next solution node in
// document order from the root segment, add it (and its segment's aligned
// members) to the window DAG, and let the collector flush windows.
func (e *evaluator) run() {
	root := e.p.v.RootSegment()
	for {
		if e.ic.Check() != nil {
			return
		}
		qi := e.getNext(root)
		if qi == -1 {
			break
		}
		if e.streaming {
			// getNext returns the minimum-start valid cursor and cursors only
			// move forward, so its start is a sound frontier for the
			// collector's partial flushes: every future add — including bulk
			// segment members, which copy current cursor items — starts at or
			// after it. (Extension candidates are pulled synchronously inside
			// the flush via PreFlush, so they never violate the bound.)
			e.col.Advance(e.start(qi))
		}
		e.process(qi)
	}
}

// process accepts or rejects the current entry of qi and advances its
// cursor. Segment roots are checked against their inter-view parent's open
// regions; members are trusted (their joins are precomputed in the view).
func (e *evaluator) process(qi int) {
	it := e.cur[qi].Item()
	l := enum.Label{Start: it.Start, End: it.End, Level: it.Level}
	accepted := true
	if qi != 0 && e.p.isSegRoot[qi] {
		e.io.C.Comparisons++
		accepted = e.openContains(e.p.v.PrimeParent[qi], l.Start)
	}
	if accepted {
		e.admit(qi, l, it)
		if e.p.isSegRoot[qi] {
			e.bulkAddMembers(qi, l)
		}
	}
	e.cur[qi].Next()
}

// admit pushes an accepted candidate: window bookkeeping for the query
// root, open-region stacks, the collector, and extension-jump capture.
func (e *evaluator) admit(qi int, l enum.Label, it *store.Item) {
	if qi == 0 {
		if !e.winOpen || l.Start > e.winEnd {
			e.winOpen, e.winEnd = true, l.End
			for i := range e.hasJump {
				e.hasJump[i] = false
				if e.tr != nil && len(e.open[i].starts) > 0 {
					e.tr.Event(obs.EvStackPop, i, int64(len(e.open[i].starts)))
				}
				e.open[i].reset()
			}
		}
	}
	e.open[qi].add(l)
	if e.tr != nil {
		e.tr.Event(obs.EvStackPush, qi, 1)
	}
	e.col.Add(qi, l)
	e.captureExtJumps(qi, it, l)
}

// captureExtJumps records, per window, the minimal child pointer from qi's
// in-window candidates toward each of its removed view children. The
// minimum over all parents is a lower bound on every extension-relevant
// entry (a single parent's pointer is not: with pc-edges, a nested parent's
// child can precede the first parent's first child). Pointers are record
// offsets, so their order coincides with list order within one file and
// the minimum is computable without dereferencing.
func (e *evaluator) captureExtJumps(qi int, it *store.Item, l enum.Label) {
	if len(e.p.removedChildren[qi]) == 0 || !e.winOpen || l.Start > e.winEnd {
		return
	}
	for _, x := range e.p.removedChildren[qi] {
		ptr := it.Children[e.p.viewChildSlot[x]]
		if ptr.IsNil() {
			continue // E scheme: no pointers; extension scans sequentially
		}
		if !e.hasJump[x] || ptr < e.extJump[x] {
			e.extJump[x] = ptr
			e.hasJump[x] = true
		}
	}
}

// bulkAddMembers is the paper's addNodes: when a segment root is accepted,
// the current cursor entries of the segment's members that fall inside the
// root's region are solution candidates by the precomputed view joins; add
// them all without structural comparisons and advance their cursors.
func (e *evaluator) bulkAddMembers(rootQ int, rootL enum.Label) {
	seg := e.p.v.Segments[e.p.v.SegOf[rootQ]]
	for _, m := range seg.Nodes {
		if m == rootQ || !e.valid(m) {
			continue
		}
		it := e.cur[m].Item()
		if it.Start > rootL.Start && it.Start < rootL.End {
			l := enum.Label{Start: it.Start, End: it.End, Level: it.Level}
			e.admit(m, l, it)
			e.cur[m].Next()
		}
	}
}

// openContains reports whether any accepted region of qi in the current
// window contains position s.
func (e *evaluator) openContains(qi int, s int32) bool {
	return e.open[qi].covers(s)
}

// getNext is the paper's Function 3 lifted to this implementation: it
// recurses over segments, aligns each child segment root against its
// inter-view parent (skipping provably useless entries on both sides via
// pointers), and returns the frontier node — the valid cursor with the
// smallest start among the segment's members and its child segments'
// results — or -1 when the subtree is drained.
func (e *evaluator) getNext(b *vsq.Segment) int {
	best := -1
	bestStart := int32(0)
	for _, bsID := range b.Children {
		bs := e.p.v.Segments[bsID]
		r := e.getNext(bs)
		e.align(bs.Root)
		if r != bs.Root && r != -1 && e.valid(r) {
			if best == -1 || e.start(r) < bestStart {
				best, bestStart = r, e.start(r)
			}
			continue
		}
		// The alignment may have moved the root's cursor; use its current
		// position.
		if e.valid(bs.Root) {
			if best == -1 || e.start(bs.Root) < bestStart {
				best, bestStart = bs.Root, e.start(bs.Root)
			}
		}
	}
	for _, qi := range b.Nodes {
		if e.valid(qi) {
			if best == -1 || e.start(qi) < bestStart {
				best, bestStart = qi, e.start(qi)
			}
		}
	}
	return best
}

// align applies the paper's skipping rules across the inter-view edge into
// segment root rs (prime parent p):
//
//   - leading rs entries that start before p's cursor and are covered by no
//     open p region are non-solutions: advance rs past them (Function 3
//     lines 14-16);
//   - p entries that end before rs's current start cannot contain any
//     remaining rs candidate: advance p, jumping through following pointers
//     where safe, and reposition p's segment members through child pointers
//     (Function 4, advancePointers).
func (e *evaluator) align(rs int) {
	p := e.p.v.PrimeParent[rs]
	if p == -1 {
		return
	}
	for {
		if e.ic.Check() != nil {
			return
		}
		if !e.valid(rs) {
			// No further rs candidates: remaining p entries can only start
			// after every collected rs candidate, so they are useless too.
			e.advancePointers(p, maxInt32)
			return
		}
		rsStart := e.start(rs)
		if e.valid(p) && rsStart < e.start(p) && !e.openContains(p, rsStart) {
			e.io.C.Comparisons++
			// rs's current entry is a non-solution. Where rs's view parent's
			// cursor is already ahead, its child pointer skips the whole run
			// of dead entries at once (the paper's advantage (2), §III-B);
			// otherwise advance sequentially.
			if !e.jumpViaViewParent(rs) {
				e.cur[rs].Next()
			}
			continue
		}
		if e.valid(p) && e.cur[p].Item().End < rsStart {
			e.io.C.Comparisons++
			e.advancePointers(p, rsStart)
			continue
		}
		return
	}
}

// jumpViaViewParent tries to reposition m's cursor through its view
// parent's current child pointer: the target is the first m-entry under
// the parent's current entry, skipping every entry before it. The jump is
// taken only when it moves forward and no open accepted region of the view
// parent still covers the skipped range.
func (e *evaluator) jumpViaViewParent(m int) bool {
	vp := e.p.viewParentQ[m]
	if vp == -1 || e.cur[vp] == nil || !e.valid(vp) {
		return false
	}
	mStart := e.start(m)
	vpStart := e.start(vp)
	if mStart >= vpStart {
		return false
	}
	if e.openCovers(vp, mStart, vpStart) {
		e.io.C.JumpsRefused++
		if e.tr != nil {
			e.tr.Event(obs.EvJumpRefused, m, 1)
		}
		return false
	}
	ptr := e.cur[vp].Item().Children[e.p.viewChildSlot[m]]
	if ptr.IsNil() {
		return false
	}
	from := e.cur[m].Position()
	probe := *e.cur[m]
	probe.Seek(ptr)
	if probe.Valid() && probe.Item().Start <= mStart {
		e.io.C.JumpsRefused++
		if e.tr != nil {
			e.tr.Event(obs.EvJumpRefused, m, 1)
		}
		return false // stale/backward pointer: fall back to sequential
	}
	*e.cur[m] = probe
	e.io.C.JumpsTaken++
	if e.tr != nil {
		l := e.p.lists[m]
		e.tr.Event(obs.EvJumpTaken, m, int64(l.PageOf(ptr)-l.PageOf(from)))
	}
	return true
}

const maxInt32 = int32(1<<31 - 1)

// advancePointers advances p's cursor past every entry that ends before
// target, following materialized following pointers where the jump is
// provably safe, then repositions p's in-segment descendants.
func (e *evaluator) advancePointers(p int, target int32) {
	moved := false
	for e.valid(p) && e.cur[p].Item().End < target {
		if e.ic.Check() != nil {
			return
		}
		e.io.C.Comparisons++
		it := e.cur[p].Item()
		jumped := false
		if !it.Following.IsNil() {
			from := e.cur[p].Position()
			probe := *e.cur[p] // stack copy: probing must not disturb the cursor
			probe.Seek(it.Following)
			safe := e.unguarded || !e.p.lists[p].Scoped() || target == maxInt32 ||
				(probe.Valid() && probe.Item().Start <= target)
			if safe {
				*e.cur[p] = probe
				jumped = true
				e.io.C.JumpsTaken++
				if e.tr != nil {
					l := e.p.lists[p]
					e.tr.Event(obs.EvJumpTaken, p, int64(l.PageOf(it.Following)-l.PageOf(from)))
				}
			} else {
				e.io.C.JumpsRefused++
				if e.tr != nil {
					e.tr.Event(obs.EvJumpRefused, p, 1)
				}
			}
		}
		if !jumped {
			e.cur[p].Next()
		}
		moved = true
	}
	if moved {
		e.repositionMembers(p)
	}
}

// repositionMembers seeks the Q' nodes whose view parent is p forward via
// p's child pointers after p's cursor moved (the paper's Function 4 lines
// 4-13: cursors of same-view descendants follow the parent's materialized
// child pointers — across segment boundaries, as in Example 4.2 where C_e
// jumps via a2's child pointer). A member entry is only skipped when no
// open accepted region of p still covers it (the guard that keeps the
// paper's Function 4 sound under same-type nesting: any later acceptance
// of an entry in the skipped range would require an open p ancestor).
// Falls back to sequential advance when no pointer is materialized (E
// scheme, or LEp gaps).
func (e *evaluator) repositionMembers(p int) {
	if !e.valid(p) {
		return
	}
	pStart := e.start(p)
	pIt := e.cur[p].Item()
	for _, m := range e.p.primeNodes {
		if e.p.viewParentQ[m] != p || !e.valid(m) {
			continue
		}
		if e.start(m) >= pStart {
			continue
		}
		if e.openCovers(p, e.start(m), pStart) {
			continue
		}
		if ptr := pIt.Children[e.p.viewChildSlot[m]]; !ptr.IsNil() {
			from := e.cur[m].Position()
			probe := *e.cur[m]
			probe.Seek(ptr)
			// Forward jumps only; a stale pointer behind the cursor would
			// rewind and re-add entries.
			if !probe.Valid() || probe.Item().Start > e.start(m) {
				*e.cur[m] = probe
				e.io.C.JumpsTaken++
				if e.tr != nil {
					l := e.p.lists[m]
					e.tr.Event(obs.EvJumpTaken, m, int64(l.PageOf(ptr)-l.PageOf(from)))
				}
			} else {
				e.io.C.JumpsRefused++
				if e.tr != nil {
					e.tr.Event(obs.EvJumpRefused, m, 1)
				}
			}
		} else {
			for e.valid(m) && e.start(m) < pStart && !e.openCovers(p, e.start(m), pStart) {
				e.io.C.Comparisons++
				e.cur[m].Next()
			}
		}
		e.repositionMembers(m)
	}
}

// openCovers reports whether any accepted region of qi covers any position
// in [s, hi): if so, entries at s may still pair with an accepted ancestor
// and must not be skipped.
func (e *evaluator) openCovers(qi int, s, hi int32) bool {
	return e.open[qi].coversRange(s, hi)
}

// regionLog records the regions accepted for one query node within the
// current window: starts ascending, maxEnd[i] the running maximum of the
// end labels of entries 0..i. With properly nested regions, "some entry
// with Start < s has End > s" is exactly "some accepted region contains s".
type regionLog struct {
	starts []int32
	maxEnd []int32
}

func (r *regionLog) add(l enum.Label) {
	m := l.End
	if n := len(r.maxEnd); n > 0 && r.maxEnd[n-1] > m {
		m = r.maxEnd[n-1]
	}
	r.starts = append(r.starts, l.Start)
	r.maxEnd = append(r.maxEnd, m)
}

func (r *regionLog) reset() {
	r.starts = r.starts[:0]
	r.maxEnd = r.maxEnd[:0]
}

// covers reports whether some recorded region contains position s.
func (r *regionLog) covers(s int32) bool {
	return r.coversRange(s, s+1)
}

// coversRange reports whether some recorded region overlaps (s, ...) while
// starting before hi, i.e. covers a position in [s, hi).
func (r *regionLog) coversRange(s, hi int32) bool {
	lo, up := 0, len(r.starts)
	for lo < up {
		mid := int(uint(lo+up) >> 1)
		if r.starts[mid] < hi {
			lo = mid + 1
		} else {
			up = mid
		}
	}
	return lo > 0 && r.maxEnd[lo-1] > s
}

// extendWindow is the collector's PreFlush hook: the paper's second step,
// extending the window with the query nodes removed from Q'. Each removed
// node's list is entered through the child pointer captured from its view
// parent's first in-window candidate (skipping everything before the
// window) and scanned sequentially to the window's end.
func (e *evaluator) extendWindow(lo, hi int32) {
	for _, x := range e.p.removedNodes {
		if e.extCur[x] == nil {
			engine.ResetCursor(&e.extBuf[x], e.p.lists[x], e.io, e.tr, x, e.restrict)
			e.extCur[x] = &e.extBuf[x]
		}
		cx := e.extCur[x]
		if e.hasJump[x] && !e.extJump[x].IsNil() {
			from := cx.Position()
			probe := *cx
			probe.Seek(e.extJump[x])
			if probe.Valid() && (!cx.Valid() || probe.Item().Start >= cx.Item().Start) {
				*cx = probe
				e.io.C.JumpsTaken++
				if e.tr != nil {
					l := e.p.lists[x]
					e.tr.Event(obs.EvJumpTaken, x, int64(l.PageOf(e.extJump[x])-l.PageOf(from)))
				}
			}
		}
		for cx.Valid() && cx.Item().Start < lo {
			e.io.C.Comparisons++
			cx.Next()
		}
		for ; cx.Valid() && cx.Item().Start < hi; cx.Next() {
			it := cx.Item()
			e.col.Add(x, enum.Label{Start: it.Start, End: it.End, Level: it.Level})
			e.captureExtJumps(x, it, enum.Label{Start: it.Start, End: it.End})
		}
	}
}
