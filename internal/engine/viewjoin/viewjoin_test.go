package viewjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/match"
	"viewjoin/internal/oracle"
	"viewjoin/internal/store"
	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/vsq"
	"viewjoin/internal/xmltree"
)

func evalWith(t testing.TB, d *xmltree.Document, q *tpq.Pattern, vs []*tpq.Pattern,
	kind store.Kind, opts engine.Options) (match.Set, Stats, counters.Counters) {
	t.Helper()
	v, err := vsq.Build(q, vs)
	if err != nil {
		t.Fatalf("vsq.Build(%s | %v): %v", q, vs, err)
	}
	stores := make([]*store.ViewStore, len(vs))
	for i, vp := range vs {
		stores[i] = store.MustBuild(views.MustMaterialize(d, vp), kind, 256)
	}
	var c counters.Counters
	got, st, err := Eval(d, v, stores, counters.NewIO(&c, 0), opts)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return got, st, c
}

func mustDoc(t testing.TB, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

var allKinds = []store.Kind{store.Element, store.Linked, store.LinkedPartial}

func TestSimplePath(t *testing.T) {
	d := mustDoc(t, `<r><a><b/><b><c/></b></a><a><c/></a></r>`)
	q := tpq.MustParse("//a//b//c")
	want := oracle.Eval(d, q)
	for _, kind := range allKinds {
		got, _, _ := evalWith(t, d, q, testutil.SingletonViews(q), kind, engine.Options{})
		if !got.SameAs(want) {
			t.Errorf("%v: got %d matches, want %d", kind, len(got), len(want))
		}
	}
}

// TestPaperExample runs the paper's running example: the Fig. 1 document
// shape, Q = //a[//f]//b//c//d//e, views v1 = //a//e, v2 = //b//c//d,
// v3 = //f. Node c is removed from Q' and must be recovered through child
// pointers at output time.
func TestPaperExample(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Element("r", func() {
		b.Element("a", func() { // a1: no f below -> skipped via following pointer
			b.Element("b", func() {
				b.Element("c", func() { b.Element("d", func() { b.Leaf("e") }) })
			})
			b.Leaf("e")
		})
		b.Element("a", func() { // a2: full match
			b.Leaf("f")
			b.Element("b", func() {
				b.Element("c", func() {
					b.Element("d", func() { b.Leaf("e"); b.Leaf("e") })
				})
				b.Element("c", func() { b.Element("d", func() { b.Leaf("e") }) })
			})
		})
	})
	d := b.MustDocument()
	q := tpq.MustParse("//a[//f]//b//c//d//e")
	vs := tpq.MustParseAll("//a//e; //b//c//d; //f")
	want := oracle.Eval(d, q)
	if len(want) == 0 {
		t.Fatalf("bad fixture: no matches")
	}
	for _, kind := range allKinds {
		got, st, _ := evalWith(t, d, q, vs, kind, engine.Options{})
		if !got.SameAs(want) {
			t.Errorf("%v: got %d matches, want %d", kind, len(got), len(want))
		}
		if st.Segments != 4 {
			t.Errorf("segments = %d, want 4", st.Segments)
		}
	}
}

func TestWholeQueryViewUsesExtension(t *testing.T) {
	// A single view covering the whole query: Q' is just the root, and all
	// other nodes are recovered via the extension step.
	d := mustDoc(t, `<r><a><b/><b><c/></b><c/></a><a><c/></a><a><b><c/></b></a></r>`)
	q := tpq.MustParse("//a[//b]//c")
	want := oracle.Eval(d, q)
	for _, kind := range allKinds {
		got, st, _ := evalWith(t, d, q, testutil.WholeQueryView(q), kind, engine.Options{})
		if !got.SameAs(want) {
			t.Errorf("%v: got %d matches, want %d", kind, len(got), len(want))
		}
		if st.Segments != 1 {
			t.Errorf("segments = %d, want 1", st.Segments)
		}
	}
}

func TestNestedSameTypeRoots(t *testing.T) {
	// Nested a-elements with interleaved views: the case where the paper's
	// unguarded pointer jumps would lose matches.
	d := mustDoc(t, `<a><b/><a><c/><a><b/><c/></a><b/></a><c/></a>`)
	q := tpq.MustParse("//a[//b]//c")
	want := oracle.Eval(d, q)
	for _, kind := range allKinds {
		for _, vs := range [][]*tpq.Pattern{
			testutil.SingletonViews(q),
			tpq.MustParseAll("//a//c; //b"),
			tpq.MustParseAll("//a[//b]//c"),
		} {
			got, _, _ := evalWith(t, d, q, vs, kind, engine.Options{})
			if !got.SameAs(want) {
				t.Errorf("%v %v: got %d matches, want %d", kind, vs, len(got), len(want))
			}
		}
	}
}

func TestSkippingReducesWork(t *testing.T) {
	// Many a-subtrees without f; only the last contains one. With LE views,
	// following/child pointers let ViewJoin skip the barren subtrees, so it
	// scans fewer elements than the E scheme.
	b := xmltree.NewBuilder()
	b.Element("r", func() {
		for i := 0; i < 50; i++ {
			b.Element("a", func() {
				for j := 0; j < 10; j++ {
					b.Element("b", func() { b.Leaf("e") })
				}
			})
		}
		b.Element("a", func() {
			b.Leaf("f")
			b.Element("b", func() { b.Leaf("e") })
		})
	})
	d := b.MustDocument()
	q := tpq.MustParse("//a[//f]//b//e")
	vs := tpq.MustParseAll("//a//e; //b; //f")
	want := oracle.Eval(d, q)

	gotE, _, cE := evalWith(t, d, q, vs, store.Element, engine.Options{})
	gotLE, _, cLE := evalWith(t, d, q, vs, store.Linked, engine.Options{})
	if !gotE.SameAs(want) || !gotLE.SameAs(want) {
		t.Fatalf("wrong matches: E=%d LE=%d want=%d", len(gotE), len(gotLE), len(want))
	}
	if cLE.ElementsScanned >= cE.ElementsScanned {
		t.Errorf("LE should scan fewer elements than E: %d vs %d", cLE.ElementsScanned, cE.ElementsScanned)
	}
	if cLE.PointerDerefs == 0 {
		t.Errorf("LE run followed no pointers")
	}
	if cE.PointerDerefs != 0 {
		t.Errorf("E run followed %d pointers", cE.PointerDerefs)
	}
}

func TestDiskBasedApproach(t *testing.T) {
	d := mustDoc(t, `<r><a><b/><b/><c/></a><a><b/><c/><c/></a></r>`)
	q := tpq.MustParse("//a[//b]//c")
	want := oracle.Eval(d, q)
	gotM, _, cM := evalWith(t, d, q, testutil.SingletonViews(q), store.Linked, engine.Options{})
	gotD, _, cD := evalWith(t, d, q, testutil.SingletonViews(q), store.Linked,
		engine.Options{DiskBased: true, PageSize: 64})
	if !gotM.SameAs(want) || !gotD.SameAs(want) {
		t.Fatalf("disk/memory approaches disagree with oracle")
	}
	if cD.PagesWritten == 0 || cM.PagesWritten != 0 {
		t.Errorf("spool accounting wrong: disk wrote %d, memory wrote %d", cD.PagesWritten, cM.PagesWritten)
	}
}

func TestPCEdgesAcrossViews(t *testing.T) {
	d := mustDoc(t, `<r><a><b><c/></b><x><b><x2><c/></x2></b></x></a></r>`)
	for _, qs := range []string{"//a/b/c", "//a//b/c", "//a/x"} {
		q := tpq.MustParse(qs)
		want := oracle.Eval(d, q)
		for _, kind := range allKinds {
			got, _, _ := evalWith(t, d, q, testutil.SingletonViews(q), kind, engine.Options{})
			if !got.SameAs(want) {
				t.Errorf("%s %v: got %d matches, want %d", qs, kind, len(got), len(want))
			}
		}
	}
}

func TestEmptyResults(t *testing.T) {
	d := mustDoc(t, `<r><a/><b/></r>`)
	q := tpq.MustParse("//a//b")
	for _, kind := range allKinds {
		got, _, _ := evalWith(t, d, q, testutil.SingletonViews(q), kind, engine.Options{})
		if len(got) != 0 {
			t.Errorf("%v: got %d matches, want 0", kind, len(got))
		}
	}
}

func TestErrors(t *testing.T) {
	d := mustDoc(t, `<r><a/></r>`)
	q := tpq.MustParse("//a")
	v, err := vsq.Build(q, testutil.SingletonViews(q))
	if err != nil {
		t.Fatal(err)
	}
	var c counters.Counters
	// Tuple store where an element-family store is required.
	ts := store.MustBuild(views.MustMaterialize(d, q), store.Tuple, 0)
	if _, _, err := Eval(d, v, []*store.ViewStore{ts}, counters.NewIO(&c, 0), engine.Options{}); err == nil {
		t.Errorf("tuple store: expected error")
	}
}

// TestAgainstOracleProperty is the main correctness property for ViewJoin:
// random documents (with recursive element nesting), random twig queries,
// random covering view partitions, all schemes, both output approaches.
func TestAgainstOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDoc(rng, 120, nil)
		q := testutil.RandomPattern(rng, 5, nil)
		var vs []*tpq.Pattern
		switch rng.Intn(3) {
		case 0:
			vs = testutil.SingletonViews(q)
		case 1:
			vs = testutil.WholeQueryView(q)
		default:
			vs = testutil.RandomViewPartition(rng, q)
		}
		kind := allKinds[rng.Intn(3)]
		opts := engine.Options{DiskBased: rng.Intn(2) == 0, PageSize: 128}
		want := oracle.Eval(d, q)
		got, _, _ := evalWith(t, d, q, vs, kind, opts)
		if !got.SameAs(want) {
			t.Logf("seed=%d q=%s views=%v kind=%v: got %d, want %d", seed, q, vs, kind, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
