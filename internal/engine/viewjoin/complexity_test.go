package viewjoin

import (
	"testing"

	"viewjoin/internal/counters"
	"viewjoin/internal/dataset/nasa"
	"viewjoin/internal/engine"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/vsq"
	"viewjoin/internal/xmltree"
)

// measure runs ViewJoin over LE views and returns the counters plus the
// input size Σ|L_q| and the output size.
func measure(t testing.TB, d *xmltree.Document, q *tpq.Pattern, vs []*tpq.Pattern) (c counters.Counters, totalL, output int) {
	t.Helper()
	v, err := vsq.Build(q, vs)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*store.ViewStore, len(vs))
	for i, vp := range vs {
		stores[i] = store.MustBuild(views.MustMaterialize(d, vp), store.Linked, 0)
		totalL += stores[i].TotalEntries()
	}
	ms, _, err := Eval(d, v, stores, counters.NewIO(&c, 0), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c, totalL, len(ms)
}

// TestLemma41IOBound checks the I/O side of the paper's Lemma 4.1:
// ViewJoin reads each input list at most once — elements scanned is
// O(Σ|L_q| + |output|). With probe dereferences re-decoding at most one
// record each, scans are bounded by Σ|L_q| + derefs.
func TestLemma41IOBound(t *testing.T) {
	d := nasa.Generate(nasa.Config{Datasets: 1200})
	cases := []struct{ q, vs string }{
		{"//field//footnote//para", "//field//para; //footnote"},
		{"//dataset//definition//footnote", "//dataset//footnote; //definition"},
		{"//dataset[//definition/footnote]//history//revision//para",
			"//dataset//revision//para; //definition/footnote; //history"},
	}
	for _, tc := range cases {
		q := tpq.MustParse(tc.q)
		vs := tpq.MustParseAll(tc.vs)
		c, totalL, _ := measure(t, d, q, vs)
		bound := int64(totalL) + c.PointerDerefs
		if c.ElementsScanned > bound {
			t.Errorf("%s: scanned %d > Σ|L_q| + derefs = %d", tc.q, c.ElementsScanned, bound)
		}
	}
}

// TestLemma41TimeBoundScaling checks the time side empirically: on
// documents growing k-fold, comparisons grow at most linearly in
// Σ|L_q| + |output| (the lemma's O(Σ|L_q|·e_q + |output|) with constant
// e_q), i.e. the per-unit ratio stays bounded.
func TestLemma41TimeBoundScaling(t *testing.T) {
	q := tpq.MustParse("//field//footnote//para")
	vs := tpq.MustParseAll("//field//para; //footnote")
	type point struct{ unit, cmp float64 }
	var pts []point
	for _, n := range []int{400, 800, 1600, 3200} {
		d := nasa.Generate(nasa.Config{Datasets: n})
		c, totalL, out := measure(t, d, q, vs)
		pts = append(pts, point{float64(totalL + out), float64(c.Comparisons)})
	}
	base := pts[0].cmp / pts[0].unit
	for i, p := range pts[1:] {
		ratio := p.cmp / p.unit
		if ratio > 2*base {
			t.Errorf("comparisons per input+output unit grew from %.2f to %.2f at step %d — superlinear",
				base, ratio, i+1)
		}
	}
}

// TestDeepRecursionStress: a pathological 3000-deep chain of alternating
// elements; all engines must survive (Go stacks grow) and agree.
func TestDeepRecursionStress(t *testing.T) {
	const depth = 3000
	b := xmltree.NewBuilder()
	var rec func(i int)
	rec = func(i int) {
		if i == depth {
			b.Leaf("z")
			return
		}
		name := "a"
		if i%2 == 1 {
			name = "b"
		}
		b.Element(name, func() { rec(i + 1) })
	}
	b.Element("r", func() { rec(0) })
	d := b.MustDocument()

	q := tpq.MustParse("//a//b//z")
	vs := tpq.MustParseAll("//a//z; //b")
	got, _, c := evalWith(t, d, q, vs, store.Linked, engine.Options{})
	// a appears 1500 times, b 1500 times, z once, all nested: every (a, b)
	// pair with a above b pairs with z.
	want := 0
	for ai := 0; ai < depth/2; ai++ {
		want += depth/2 - ai
	}
	if len(got) != want {
		t.Fatalf("matches = %d, want %d", len(got), want)
	}
	if c.ElementsScanned == 0 {
		t.Fatal("no work recorded")
	}
}
