package viewjoin

import (
	"testing"

	"viewjoin/internal/engine"
	"viewjoin/internal/oracle"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// skewDoc models the Nasa N1 situation: many field subtrees full of paras,
// footnotes in only a few of them. ViewJoin with LE views must skip the
// paras of footnote-less fields through the view-parent child-pointer
// jumps (align's leading skip).
func skewDoc(t testing.TB, fields, parasPer, footnoteEvery int) *xmltree.Document {
	t.Helper()
	b := xmltree.NewBuilder()
	b.Element("r", func() {
		for i := 0; i < fields; i++ {
			b.Element("field", func() {
				if footnoteEvery > 0 && i%footnoteEvery == 0 {
					b.Element("footnote", func() { b.Leaf("para") })
				}
				for j := 0; j < parasPer; j++ {
					b.Leaf("para")
				}
			})
		}
	})
	return b.MustDocument()
}

// TestLeadingSkipJumpsViaViewParent exercises jumpViaViewParent: the para
// list (view parent: field) must be entered through field's child pointers,
// skipping the paras of fields that cannot match.
func TestLeadingSkipJumpsViaViewParent(t *testing.T) {
	d := skewDoc(t, 60, 10, 12) // 60 fields, 10 paras each, footnote in every 12th
	q := tpq.MustParse("//field//footnote//para")
	vs := tpq.MustParseAll("//field//para; //footnote")
	want := oracle.Eval(d, q)
	if len(want) == 0 {
		t.Fatal("bad fixture")
	}

	gotE, _, cE := evalWith(t, d, q, vs, store.Element, engine.Options{})
	gotLE, _, cLE := evalWith(t, d, q, vs, store.Linked, engine.Options{})
	if !gotE.SameAs(want) || !gotLE.SameAs(want) {
		t.Fatalf("wrong matches: E=%d LE=%d want=%d", len(gotE), len(gotLE), len(want))
	}
	// 55 of 60 fields have no footnote; their ~10 paras each must be skipped
	// with pointers, so LE scans far fewer entries than E.
	if cLE.ElementsScanned*2 > cE.ElementsScanned {
		t.Errorf("LE should scan less than half of E: %d vs %d", cLE.ElementsScanned, cE.ElementsScanned)
	}
	if cLE.PointerDerefs == 0 {
		t.Errorf("no pointers followed")
	}
}

// TestLeadingSkipWithOpenAncestors: when a field with a footnote contains
// paras interleaved around the footnote, the covering guard must keep the
// jump from skipping paras the open window still needs.
func TestLeadingSkipWithOpenAncestors(t *testing.T) {
	b := xmltree.NewBuilder()
	b.Element("r", func() {
		b.Element("field", func() { // matching field: all paras relevant
			b.Leaf("para")
			b.Element("footnote", func() { b.Leaf("para") })
			b.Leaf("para")
		})
		b.Element("field", func() { // barren field: paras skippable
			b.Leaf("para")
			b.Leaf("para")
		})
		b.Element("field", func() { // matching again
			b.Element("footnote", func() { b.Leaf("para") })
			b.Leaf("para")
		})
	})
	d := b.MustDocument()
	q := tpq.MustParse("//field[//footnote]//para")
	vs := tpq.MustParseAll("//field//para; //footnote")
	want := oracle.Eval(d, q)
	for _, kind := range allKinds {
		got, _, _ := evalWith(t, d, q, vs, kind, engine.Options{})
		if !got.SameAs(want) {
			t.Errorf("%v: got %d matches, want %d", kind, len(got), len(want))
		}
	}
}

// TestUnguardedJumpsOnFlatData: with no recursive nesting the ablation
// mode must agree with the guarded engine.
func TestUnguardedJumpsOnFlatData(t *testing.T) {
	d := skewDoc(t, 40, 6, 8)
	q := tpq.MustParse("//field//footnote//para")
	vs := tpq.MustParseAll("//field//para; //footnote")
	want := oracle.Eval(d, q)
	got, _, _ := evalWith(t, d, q, vs, store.Linked, engine.Options{UnguardedJumps: true})
	if !got.SameAs(want) {
		t.Fatalf("unguarded mode lost matches on flat data: %d vs %d", len(got), len(want))
	}
}
