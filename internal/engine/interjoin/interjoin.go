// Package interjoin implements the InterJoin baseline (Phillips, Zhang,
// Ilyas & Özsu, SSDBM 2006): evaluation of a path query over materialized
// path views stored in the tuple (T) scheme, possibly interleaving (§I,
// §VII of the ViewJoin paper, e.g. answering //a//b//c from //a//c and
// //b).
//
// When more than two views are needed, InterJoin runs as a sequence of
// binary joins, which is exactly the behaviour the ViewJoin paper
// criticizes: non-holistic processing can generate large useless
// intermediate results, and the tuple scheme's data redundancy (one copy of
// an element per match it participates in) inflates both I/O and join work.
// Both costs are reproduced faithfully here.
package interjoin

import (
	"fmt"
	"sort"
	"sync"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/match"
	"viewjoin/internal/obs"
	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/xmltree"
)

// partial is an intermediate tuple: bindings for a subset of the query's
// positions. Unbound positions hold the zero Label (Start == 0 is never a
// valid start label).
type partial struct {
	labels []store.Label
}

func (p *partial) bound(pos int) bool { return p.labels[pos].Start != 0 }

// stream is an intermediate relation: the covered query positions (sorted)
// and the tuples, ordered by the start label of the first covered position.
type stream struct {
	positions []int
	tuples    []partial
	arena     labelArena
}

// labelArena hands out fixed-width label rows from chunked backing arrays,
// avoiding one allocation per intermediate tuple.
type labelArena struct {
	width int
	chunk []store.Label
}

func (a *labelArena) row() []store.Label {
	if len(a.chunk) < a.width {
		n := 1024 * a.width
		a.chunk = make([]store.Label, n)
	}
	r := a.chunk[:a.width:a.width]
	a.chunk = a.chunk[a.width:]
	return r
}

// Prepared is the compile-once part of an InterJoin evaluation: the view
// streams, materialized once by scanning the tuple files, plus the join
// order and a pool of reusable sort/merge scratch. The streams are
// read-only during joins (binary joins write fresh intermediate streams),
// so a Prepared is safe for concurrent Run calls; repeated runs amortize
// the tuple scans that dominate InterJoin's per-call setup.
type Prepared struct {
	d       *xmltree.Document
	q       *tpq.Pattern
	order   []int
	streams []*stream
	pool    sync.Pool // *scratch
}

// scratch holds the per-run sort and merge buffers of the binary joins,
// reset in place between runs.
type scratch struct {
	upIdx, loIdx, active []int
	ic                   engine.Interrupter
}

// Prepare validates the view set and materializes each view's tuple file
// as a stream. viewPos[i] lists, for view i, the query position of each of
// its nodes (in view node order). Views must be path views and q a path
// query. The scans charge io — prepare-time cost, paid once per plan.
func Prepare(d *xmltree.Document, q *tpq.Pattern, stores []*store.ViewStore, viewPos [][]int,
	io *counters.IO, tr obs.Tracer) (*Prepared, error) {
	if !q.IsPath() {
		return nil, fmt.Errorf("interjoin: %s is not a path query", q)
	}
	if len(stores) == 0 {
		return nil, fmt.Errorf("interjoin: no views")
	}
	n := q.Size()

	// Load each view's tuple file as a stream.
	streams := make([]*stream, 0, len(stores))
	for vi, s := range stores {
		if s.Tuples == nil {
			return nil, fmt.Errorf("interjoin: view %d is not stored in the tuple scheme", vi)
		}
		if s.Tuples.Arity() != len(viewPos[vi]) {
			return nil, fmt.Errorf("interjoin: view %d arity %d != %d positions", vi, s.Tuples.Arity(), len(viewPos[vi]))
		}
		if !sort.IntsAreSorted(viewPos[vi]) {
			return nil, fmt.Errorf("interjoin: view %d positions not ascending: %v", vi, viewPos[vi])
		}
		streams = append(streams, &stream{positions: viewPos[vi]})
	}
	// Join order: ascending minimal covered position, so the accumulated
	// stream always contains the topmost positions (the paper's sequence of
	// binary joins).
	order := make([]int, len(streams))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return streams[order[a]].positions[0] < streams[order[b]].positions[0]
	})

	// Materialize tuples of each view stream by scanning its tuple file.
	// Scans are attributed to the first query position the view covers.
	for vi, s := range stores {
		cur := s.Tuples.OpenTraced(io, tr, viewPos[vi][0])
		st := streams[vi]
		st.arena.width = n
		st.tuples = make([]partial, 0, s.Tuples.Entries())
		for ; cur.Valid(); cur.Next() {
			p := partial{labels: st.arena.row()}
			for j, pos := range st.positions {
				p.labels[pos] = cur.Item().Labels[j]
			}
			st.tuples = append(st.tuples, p)
		}
	}
	return &Prepared{d: d, q: q, order: order, streams: streams}, nil
}

// Footprint estimates the plan-resident bytes of the materialized view
// streams. Unlike the list-file engines, InterJoin copies every view tuple
// into prepared streams at Prepare time, so its cached plans carry real
// weight: one fixed-width label row (12 bytes per query position) plus a
// slice header per tuple.
func (p *Prepared) Footprint() int64 {
	var f int64
	for _, s := range p.streams {
		f += int64(len(s.positions)) * 8
		if len(s.tuples) > 0 {
			per := int64(24 + 12*len(s.tuples[0].labels))
			f += int64(len(s.tuples)) * per
		}
	}
	return f
}

// Run executes the prepared join sequence once. Per-run costs are the
// binary joins and the final verification; the view scans were charged at
// Prepare time.
func (p *Prepared) Run(io *counters.IO, opts engine.Options) (match.Set, error) {
	sc, _ := p.pool.Get().(*scratch)
	if sc == nil {
		sc = &scratch{}
	}
	sc.ic = engine.NewInterrupter(opts.Interrupt)
	q, n := p.q, p.q.Size()
	streams := p.streams
	if opts.Restrict != nil {
		streams = restrictStreams(p.streams, opts.Restrict)
	}
	acc := streams[p.order[0]]
	for _, oi := range p.order[1:] {
		// ErrStop (quota stop requested by the interrupt hook) falls through
		// to verification: the joined prefix yields the bounded answer.
		if err := sc.ic.Err(); err != nil && err != engine.ErrStop {
			p.pool.Put(sc)
			return nil, err
		}
		acc = binaryJoin(q, acc, streams[oi], io, sc)
	}

	// Final verification: pc-edges and the root axis. Ad-edges between
	// adjacent positions were verified during the joins (cross-view) or are
	// implied by the view matches (intra-view).
	var out match.Set
	for i := range acc.tuples {
		if err := sc.ic.Check(); err != nil {
			if err == engine.ErrStop {
				break
			}
			p.pool.Put(sc)
			return nil, err
		}
		t := &acc.tuples[i]
		ok := true
		if q.Nodes[0].Axis == tpq.Child && t.labels[0].Level != 0 {
			ok = false
		}
		for pos := 1; ok && pos < n; pos++ {
			if q.Nodes[pos].Axis == tpq.Child {
				io.C.Comparisons++
				if t.labels[pos].Level != t.labels[pos-1].Level+1 {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		if opts.After != nil && !afterCursor(t.labels, opts.After) {
			continue
		}
		m := make(match.Match, n)
		for pos := 0; pos < n; pos++ {
			m[pos] = p.d.FindByStart(t.labels[pos].Start)
		}
		out = append(out, m)
		// Bounded accumulation under a first-k quota: InterJoin's tuples are
		// ordered by the first position only, so the scan cannot stop early;
		// keep only the first smallest matches seen so far instead, bounding
		// peak result memory to O(first). The slack (4x + 64) amortizes the
		// sorts.
		if opts.First > 0 && len(out) >= 4*opts.First+64 {
			out.Sort()
			out = out[:opts.First]
		}
	}
	if err := sc.ic.Err(); err != nil && err != engine.ErrStop {
		p.pool.Put(sc)
		return nil, err
	}
	p.pool.Put(sc)
	// Join construction orders tuples by the accumulated stream's first
	// position only; canonicalize to full lexicographic document order so
	// sequential and partitioned runs are byte-comparable.
	out.Sort()
	if opts.First > 0 && len(out) > opts.First {
		out = out[:opts.First]
	}
	io.C.Matches = int64(len(out))
	if len(out) > 0 {
		// InterJoin cannot stream: time-to-first-match is the full
		// join+sort, stamped here so the metric reflects that honestly.
		io.MarkFirstMatch()
	}
	return out, nil
}

// afterCursor reports whether the start-label tuple in labels is strictly
// greater than the cursor tuple (lexicographic, i.e. document order).
func afterCursor(labels []store.Label, after []int32) bool {
	for k := range after {
		if s := labels[k].Start; s != after[k] {
			return s > after[k]
		}
	}
	return false
}

// restrictStreams returns per-run copies of the prepared streams holding
// only the tuples every covered position of which the restriction admits:
// spine positions keep ancestors overlapping the partition body, every
// other position must start inside it. The label rows are shared with the
// prepared streams — they are read-only during joins. A path match binds
// its anchor inside the body and confines deeper positions to the anchor
// binding's subtree while spine bindings contain it, so the filtered
// streams retain exactly the tuples that can contribute to this
// partition's matches.
func restrictStreams(streams []*stream, r *engine.Restriction) []*stream {
	out := make([]*stream, len(streams))
	for i, s := range streams {
		fs := &stream{positions: s.positions}
		for j := range s.tuples {
			t := &s.tuples[j]
			keep := true
			for _, pos := range s.positions {
				if !r.Admits(pos, t.labels[pos].Start, t.labels[pos].End) {
					keep = false
					break
				}
			}
			if keep {
				fs.tuples = append(fs.tuples, *t)
			}
		}
		out[i] = fs
	}
	return out
}

// AnchorSpans returns the document regions of every candidate binding of
// query position pos (the tuples of the one stream covering pos), in
// stream order. Partition planners cut the document between the merged
// spans so that no candidate's subtree crosses a partition boundary.
func (p *Prepared) AnchorSpans(pos int) []engine.Span {
	for _, s := range p.streams {
		covered := false
		for _, sp := range s.positions {
			if sp == pos {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		out := make([]engine.Span, len(s.tuples))
		for i := range s.tuples {
			l := &s.tuples[i].labels[pos]
			out[i] = engine.Span{Lo: l.Start, Hi: l.End}
		}
		return out
	}
	return nil
}

// WeightIn estimates the work of a partition restricted to [lo, hi): the
// tuples each stream contributes, weighted by arity. Streams are ordered
// by their first covered position's start, so the count is a binary
// search per stream.
func (p *Prepared) WeightIn(lo, hi int32) int64 {
	var w int64
	for _, s := range p.streams {
		first := s.positions[0]
		at := func(i int) int32 { return s.tuples[i].labels[first].Start }
		a := sort.Search(len(s.tuples), func(i int) bool { return at(i) >= lo })
		b := sort.Search(len(s.tuples), func(i int) bool { return at(i) >= hi })
		w += int64(b-a) * int64(len(s.positions))
	}
	return w
}

// Eval evaluates the path query q over the tuple stores of the covering
// path views (one-shot Prepare + Run; the scans and joins charge the same
// io, so counters match the historical single-call behaviour).
func Eval(d *xmltree.Document, q *tpq.Pattern, stores []*store.ViewStore, viewPos [][]int,
	io *counters.IO, opts engine.Options) (match.Set, error) {
	p, err := Prepare(d, q, stores, viewPos, io, opts.Tracer)
	if err != nil {
		return nil, err
	}
	return p.Run(io, opts)
}

// binaryJoin joins the accumulated stream a (covering the topmost
// positions) with view stream b.
//
// The join is a classic structural sort-merge driven by one cross
// predicate — a query-adjacent position pair split across the two streams
// (preferring the deepest such pair); when the coverage leaves no adjacent
// cross pair (a gap filled by a later view), the closest enclosing pair
// across the streams drives instead. Both sides are sorted by their drive
// component (intermediate tuples are not generally sorted on inner
// components — the sort is part of InterJoin's non-holistic cost), merged
// with an active window pruned by the drive containment, and every other
// adjacent cross predicate is verified per joined pair.
func binaryJoin(q *tpq.Pattern, a, b *stream, io *counters.IO, sc *scratch) *stream {
	merged := &stream{positions: mergePositions(a.positions, b.positions)}
	if len(a.tuples) == 0 || len(b.tuples) == 0 {
		return merged
	}
	merged.arena.width = len(a.tuples[0].labels)

	// Cross predicates: adjacent query positions split across the streams.
	type pred struct{ upper, lower int } // labels[lower] inside labels[upper]
	var preds []pred
	has := func(s *stream, pos int) bool {
		for _, p := range s.positions {
			if p == pos {
				return true
			}
		}
		return false
	}
	for pos := 1; pos < q.Size(); pos++ {
		inA, inB := has(a, pos), has(b, pos)
		pInA, pInB := has(a, pos-1), has(b, pos-1)
		if (inA && pInB) || (inB && pInA) {
			preds = append(preds, pred{upper: pos - 1, lower: pos})
		}
	}

	// Drive predicate: the deepest adjacent cross pair, or the enclosing
	// (anchor, b-first) pair when none is adjacent.
	var drive pred
	if len(preds) > 0 {
		drive = preds[len(preds)-1]
	} else {
		anchor := a.positions[0]
		for _, p := range a.positions {
			if p < b.positions[0] {
				anchor = p
			}
		}
		drive = pred{upper: anchor, lower: b.positions[0]}
	}
	upSide, loSide := a, b
	if has(b, drive.upper) {
		upSide = b
	}
	if has(a, drive.lower) {
		loSide = a
	}

	// Order both sides by their drive component (counted as join work).
	// Index buffers come from the run's pooled scratch.
	upIdx := sortedBy(upSide, drive.upper, io, sc.upIdx)
	sc.upIdx = upIdx
	loIdx := sortedBy(loSide, drive.lower, io, sc.loIdx)
	sc.loIdx = loIdx

	emit := func(at, bt *partial) {
		for _, pr := range preds {
			if pr == drive {
				continue
			}
			io.C.Comparisons++
			var upper, lower store.Label
			if at.bound(pr.upper) {
				upper = at.labels[pr.upper]
			} else {
				upper = bt.labels[pr.upper]
			}
			if at.bound(pr.lower) {
				lower = at.labels[pr.lower]
			} else {
				lower = bt.labels[pr.lower]
			}
			if !upper.Contains(lower) {
				return
			}
		}
		nt := partial{labels: merged.arena.row()}
		copy(nt.labels, at.labels)
		for _, pos := range b.positions {
			nt.labels[pos] = bt.labels[pos]
		}
		merged.tuples = append(merged.tuples, nt)
	}

	// Structural merge: scan descendants (lower side) in drive-start order,
	// keeping an active window of ancestor-side tuples whose drive region is
	// still open. The merge polls the run's cancellation checker: with
	// interleaving views the intermediate result can dwarf the output (the
	// §I criticism), so a deadline must be able to stop it mid-join.
	active := sc.active[:0]
	ui := 0
	for _, li := range loIdx {
		if sc.ic.Check() != nil {
			break
		}
		lt := &loSide.tuples[li]
		ls := lt.labels[drive.lower].Start
		for ui < len(upIdx) && upSide.tuples[upIdx[ui]].labels[drive.upper].Start < ls {
			active = append(active, upIdx[ui])
			ui++
		}
		keep := active[:0]
		for _, idx := range active {
			io.C.Comparisons++
			if upSide.tuples[idx].labels[drive.upper].End > ls {
				keep = append(keep, idx)
			}
		}
		active = keep
		for _, idx := range active {
			ut := &upSide.tuples[idx]
			io.C.Comparisons++
			if !ut.labels[drive.upper].Contains(lt.labels[drive.lower]) {
				continue
			}
			if upSide == a {
				emit(ut, lt)
			} else {
				emit(lt, ut)
			}
		}
	}

	sc.active = active

	// Keep the merged stream ordered by its first position's start label.
	first := merged.positions[0]
	sort.SliceStable(merged.tuples, func(i, j int) bool {
		return merged.tuples[i].labels[first].Start < merged.tuples[j].labels[first].Start
	})
	return merged
}

// sortedBy returns tuple indices of s ordered by the start label of the
// given position, charging one comparison per compare. buf, when capacious
// enough, backs the returned slice (pooled across runs).
func sortedBy(s *stream, pos int, io *counters.IO, buf []int) []int {
	idx := buf[:0]
	for i := 0; i < len(s.tuples); i++ {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(i, j int) bool {
		io.C.Comparisons++
		return s.tuples[idx[i]].labels[pos].Start < s.tuples[idx[j]].labels[pos].Start
	})
	return idx
}

// mergePositions returns the sorted union of two position sets.
func mergePositions(a, b []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, p := range a {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, p := range b {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}
