package interjoin

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewjoin/internal/counters"
	"viewjoin/internal/engine"
	"viewjoin/internal/match"
	"viewjoin/internal/oracle"
	"viewjoin/internal/store"
	"viewjoin/internal/testutil"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/xmltree"
)

func evalWith(t testing.TB, d *xmltree.Document, q *tpq.Pattern, vs []*tpq.Pattern) (match.Set, counters.Counters) {
	t.Helper()
	stores := make([]*store.ViewStore, len(vs))
	viewPos := make([][]int, len(vs))
	for i, vp := range vs {
		stores[i] = store.MustBuild(views.MustMaterialize(d, vp), store.Tuple, 256)
		m, err := tpq.QueryNodeOfView(vp, q)
		if err != nil {
			t.Fatalf("QueryNodeOfView: %v", err)
		}
		viewPos[i] = m
	}
	var c counters.Counters
	got, err := Eval(d, q, stores, viewPos, counters.NewIO(&c, 0), engine.Options{})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return got, c
}

func mustDoc(t testing.TB, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSingleWholeView(t *testing.T) {
	d := mustDoc(t, `<r><a><b><c/></b><c/></a><a><b/></a></r>`)
	q := tpq.MustParse("//a//b//c")
	want := oracle.Eval(d, q)
	got, _ := evalWith(t, d, q, testutil.WholeQueryView(q))
	if !got.SameAs(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
}

// TestInterleavedViews is the paper's motivating InterJoin case: answer
// //a//b//c from the interleaving views //a//c and //b.
func TestInterleavedViews(t *testing.T) {
	d := mustDoc(t, `<r><a><b><c/><c/></b></a><a><c/></a><b><a><b><c/></b></a></b></r>`)
	q := tpq.MustParse("//a//b//c")
	want := oracle.Eval(d, q)
	got, _ := evalWith(t, d, q, tpq.MustParseAll("//a//c; //b"))
	if !got.SameAs(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
}

func TestPCEdgeVerification(t *testing.T) {
	d := mustDoc(t, `<r><a><b><c/></b><x><b/></x></a></r>`)
	q := tpq.MustParse("//a/b/c")
	want := oracle.Eval(d, q)
	// Views use ad-edges (subpatterns of the pc query); InterJoin must
	// verify levels at output.
	got, _ := evalWith(t, d, q, tpq.MustParseAll("//a//c; //b"))
	if !got.SameAs(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
}

func TestThreeViews(t *testing.T) {
	d := mustDoc(t, `<r><a><b><c><d/></c></b><d/></a></r>`)
	q := tpq.MustParse("//a//b//c//d")
	want := oracle.Eval(d, q)
	got, _ := evalWith(t, d, q, tpq.MustParseAll("//a//d; //b; //c"))
	if !got.SameAs(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
}

func TestEmptyViews(t *testing.T) {
	d := mustDoc(t, `<r><a/><c/></r>`)
	q := tpq.MustParse("//a//c")
	got, _ := evalWith(t, d, q, tpq.MustParseAll("//a; //c"))
	if len(got) != 0 {
		t.Fatalf("got %d matches, want 0", len(got))
	}
}

func TestErrors(t *testing.T) {
	d := mustDoc(t, `<r><a/></r>`)
	var c counters.Counters
	io := counters.NewIO(&c, 0)
	if _, err := Eval(d, tpq.MustParse("//a[//b]//c"), nil, nil, io, engine.Options{}); err == nil {
		t.Errorf("twig query: expected error")
	}
	if _, err := Eval(d, tpq.MustParse("//a"), nil, nil, io, engine.Options{}); err == nil {
		t.Errorf("no views: expected error")
	}
	// Element-scheme store where a tuple store is required.
	q := tpq.MustParse("//a")
	es := store.MustBuild(views.MustMaterialize(d, q), store.Element, 0)
	if _, err := Eval(d, q, []*store.ViewStore{es}, [][]int{{0}}, io, engine.Options{}); err == nil {
		t.Errorf("element store: expected error")
	}
}

// TestTupleRedundancyCost demonstrates the paper's observation that the
// tuple scheme inflates work when elements occur in many matches: the same
// query over a redundancy-heavy view scans more tuples than over singleton
// views.
func TestTupleRedundancyCost(t *testing.T) {
	// One a holding many b's each holding many c's: |(b,c) pairs| >> |nodes|.
	b := xmltree.NewBuilder()
	b.Element("r", func() {
		b.Element("a", func() {
			for i := 0; i < 8; i++ {
				b.Element("b", func() {
					for j := 0; j < 8; j++ {
						b.Leaf("c")
					}
				})
			}
		})
	})
	d := b.MustDocument()
	q := tpq.MustParse("//a//b//c")
	want := oracle.Eval(d, q)
	got, cBig := evalWith(t, d, q, tpq.MustParseAll("//b//c; //a"))
	if !got.SameAs(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	_, cSmall := evalWith(t, d, q, testutil.SingletonViews(q))
	if cBig.ElementsScanned <= cSmall.ElementsScanned {
		t.Errorf("redundant tuple view should scan more: %d vs %d",
			cBig.ElementsScanned, cSmall.ElementsScanned)
	}
}

// TestAgainstOracleProperty validates InterJoin on random path queries and
// random path-view factorizations of all shapes.
func TestAgainstOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := testutil.RandomDoc(rng, 100, nil)
		q := randomPath(rng, 5)
		var vs []*tpq.Pattern
		switch rng.Intn(3) {
		case 0:
			vs = testutil.SingletonViews(q)
		case 1:
			vs = testutil.PathChunkViews(q, 1+rng.Intn(3))
		default:
			vs = testutil.InterleavedPathViews(q, 1+rng.Intn(3))
		}
		want := oracle.Eval(d, q)
		got, _ := evalWith(t, d, q, vs)
		if !got.SameAs(want) {
			t.Logf("seed=%d q=%s views=%v: got %d, want %d", seed, q, vs, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func randomPath(rng *rand.Rand, maxNodes int) *tpq.Pattern {
	n := 1 + rng.Intn(maxNodes)
	perm := rng.Perm(len(testutil.Labels))[:n]
	p := &tpq.Pattern{}
	for i := 0; i < n; i++ {
		node := tpq.Node{Label: testutil.Labels[perm[i]], Axis: tpq.Descendant, Parent: i - 1}
		if i > 0 && rng.Intn(2) == 0 {
			node.Axis = tpq.Child
		}
		p.Nodes = append(p.Nodes, node)
		if i > 0 {
			p.Nodes[i-1].Children = []int{i}
		}
	}
	return p
}
