package engine

import (
	"testing"

	"viewjoin/internal/store"
	"viewjoin/internal/tpq"
	"viewjoin/internal/views"
	"viewjoin/internal/vsq"
	"viewjoin/internal/xmltree"
)

func setup(t *testing.T) (*xmltree.Document, *vsq.VSQ, []*store.ViewStore) {
	t.Helper()
	d, err := xmltree.ParseString(`<r><a><b/><c/></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	q := tpq.MustParse("//a[//b]//c")
	vs := tpq.MustParseAll("//a//c; //b")
	v, err := vsq.Build(q, vs)
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*store.ViewStore, len(vs))
	for i, vp := range vs {
		stores[i] = store.MustBuild(views.MustMaterialize(d, vp), store.Linked, 0)
	}
	return d, v, stores
}

func TestBindLists(t *testing.T) {
	_, v, stores := setup(t)
	lists, err := BindLists(v, stores)
	if err != nil {
		t.Fatal(err)
	}
	if len(lists) != v.Query.Size() {
		t.Fatalf("len(lists) = %d, want %d", len(lists), v.Query.Size())
	}
	// Query node order: a=0, b=1, c=2. a and c come from view 0 (nodes 0, 1),
	// b from view 1 (node 0).
	if lists[0] != stores[0].Lists[0] || lists[2] != stores[0].Lists[1] || lists[1] != stores[1].Lists[0] {
		t.Errorf("lists bound to wrong view files")
	}
}

func TestBindListsErrors(t *testing.T) {
	d, v, stores := setup(t)

	if _, err := BindLists(v, stores[:1]); err == nil {
		t.Errorf("store count mismatch: expected error")
	}

	// Tuple store in place of an element-family store.
	tup := store.MustBuild(views.MustMaterialize(d, v.Views[0]), store.Tuple, 0)
	if _, err := BindLists(v, []*store.ViewStore{tup, stores[1]}); err == nil {
		t.Errorf("tuple store: expected error")
	}

	// Store of the wrong view (list count mismatch).
	wrong := store.MustBuild(views.MustMaterialize(d, tpq.MustParse("//a")), store.Linked, 0)
	if _, err := BindLists(v, []*store.ViewStore{wrong, stores[1]}); err == nil {
		t.Errorf("wrong-view store: expected error")
	}
}
