package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func slowEntry(query string, wallUS int64) slowlogEntry {
	return slowlogEntry{Query: query, WallUS: wallUS, Outcome: "ok"}
}

// TestSlowlogRecentEviction pins the ring's retention and order: with size
// 3 and five observations, the snapshot's recent list holds exactly the
// last three, newest first.
func TestSlowlogRecentEviction(t *testing.T) {
	l := newSlowlog(3, 0)
	for i := 1; i <= 5; i++ {
		l.observe(slowEntry(fmt.Sprintf("q%d", i), int64(i)))
	}
	s := l.snapshot()
	if s.Observed != 5 {
		t.Errorf("observed %d, want 5", s.Observed)
	}
	var got []string
	for _, e := range s.Recent {
		got = append(got, e.Query)
	}
	want := []string{"q5", "q4", "q3"}
	if len(got) != len(want) {
		t.Fatalf("recent %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recent %v, want %v", got, want)
		}
	}
}

// TestSlowlogSlowestRanking pins the slow set: capped at size, ordered by
// wall time descending, admitting a new entry only when it outranks the
// current minimum.
func TestSlowlogSlowestRanking(t *testing.T) {
	l := newSlowlog(3, 0)
	for _, us := range []int64{10, 50, 20, 40, 30, 5} {
		l.observe(slowEntry("q", us))
	}
	s := l.snapshot()
	var got []int64
	for _, e := range s.Slowest {
		got = append(got, e.WallUS)
	}
	want := []int64{50, 40, 30}
	if len(got) != len(want) {
		t.Fatalf("slowest %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slowest %v, want %v", got, want)
		}
	}
}

// TestSlowlogThreshold verifies the admission split: every request enters
// the recent ring, but only those at or above the threshold compete for
// the slow set.
func TestSlowlogThreshold(t *testing.T) {
	l := newSlowlog(4, 10*time.Millisecond)
	l.observe(slowEntry("fast", 500))      // 0.5ms: below threshold
	l.observe(slowEntry("slow", 20_000))   // 20ms: above
	l.observe(slowEntry("border", 10_000)) // exactly 10ms: admitted
	l.observe(slowEntry("fast2", 9_999))   // just below
	s := l.snapshot()
	if len(s.Recent) != 4 {
		t.Errorf("recent holds %d entries, want all 4", len(s.Recent))
	}
	if len(s.Slowest) != 2 {
		t.Fatalf("slowest holds %d entries, want 2 (threshold-filtered): %+v", len(s.Slowest), s.Slowest)
	}
	if s.Slowest[0].Query != "slow" || s.Slowest[1].Query != "border" {
		t.Errorf("slowest order: %q, %q; want slow, border", s.Slowest[0].Query, s.Slowest[1].Query)
	}
	if s.ThresholdMS != 10 {
		t.Errorf("threshold_ms %d, want 10", s.ThresholdMS)
	}
}

// TestSlowlogConcurrent hammers observe and snapshot from many goroutines;
// the -race run is the real assertion, the totals check catches lost
// updates.
func TestSlowlogConcurrent(t *testing.T) {
	l := newSlowlog(8, 0)
	const workers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.observe(slowEntry("q", int64(w*each+i)))
				if i%25 == 0 {
					_ = l.snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := l.snapshot()
	if s.Observed != workers*each {
		t.Errorf("observed %d, want %d", s.Observed, workers*each)
	}
	if len(s.Recent) != 8 || len(s.Slowest) != 8 {
		t.Errorf("recent %d / slowest %d entries, want 8 / 8", len(s.Recent), len(s.Slowest))
	}
	// The slowest set must hold the true top-8 wall times.
	for i, e := range s.Slowest {
		if want := int64(workers*each - 1 - i); e.WallUS != want {
			t.Errorf("slowest[%d] = %d, want %d", i, e.WallUS, want)
		}
	}
}

func getSlowlog(t testing.TB, ts *httptest.Server) slowlogSnapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slowlog status %d", resp.StatusCode)
	}
	var s slowlogSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSlowlogEndpoint drives a deliberately slow query through a
// slowlog-enabled server and reads its full trace back from
// /debug/slowlog: the request is held at the evaluation gate past the
// threshold, so its wall time admits it to the slow set while a second,
// unheld request stays out of it.
func TestSlowlogEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, SlowlogSize: 4, SlowlogThreshold: 10 * time.Millisecond})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s.testEvalGate = gate
	s.testEvalStarted = func() { started <- struct{}{} }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}
	done := make(chan queryResponse, 1)
	go func() {
		var r queryResponse
		if st := post(t, ts, "/query", req, &r); st != http.StatusOK {
			t.Errorf("slow request: status %d", st)
		}
		done <- r
	}()
	<-started
	time.Sleep(25 * time.Millisecond) // hold past the 10ms threshold
	gate <- struct{}{}
	slowResp := <-done

	// A normal /query must not embed the trace the recorder captured for
	// the flight recorder.
	if slowResp.Trace != nil {
		t.Error("slowlog-enabled /query response embeds a trace; only /debug/trace may")
	}

	// A second, unheld request: lands in recent but (being fast) not in
	// the slow set.
	s.testEvalGate = nil
	var fast queryResponse
	if st := post(t, ts, "/query", req, &fast); st != http.StatusOK {
		t.Fatalf("fast request: status %d", st)
	}

	log := getSlowlog(t, ts)
	if log.Schema != SlowlogSchema {
		t.Errorf("schema %q, want %q", log.Schema, SlowlogSchema)
	}
	if log.Observed != 2 || len(log.Recent) != 2 {
		t.Fatalf("observed %d, recent %d; want 2, 2", log.Observed, len(log.Recent))
	}
	if len(log.Slowest) != 1 {
		t.Fatalf("slowest holds %d entries, want exactly the held request: %+v", len(log.Slowest), log.Slowest)
	}
	e := log.Slowest[0]
	if e.Query != testQuery || e.Outcome != "ok" || e.Status != http.StatusOK {
		t.Errorf("slow entry identity: %+v", e)
	}
	if e.WallUS < 10_000 {
		t.Errorf("slow entry wall %dµs, want >= threshold 10ms", e.WallUS)
	}
	if e.Trace == nil {
		t.Fatal("slow entry carries no trace")
	}
	if e.Trace.Schema == "" || len(e.Trace.Phases) == 0 {
		t.Errorf("slow entry trace is empty: %+v", e.Trace)
	}
	if e.RunUS <= 0 {
		t.Errorf("slow entry run time %dµs, want > 0", e.RunUS)
	}
}

// TestSlowlogDisabled pins the default: no SlowlogSize means no recorder,
// a 404 on the endpoint, and no trace overhead on /query.
func TestSlowlogDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/slowlog status %d with recorder disabled, want 404", resp.StatusCode)
	}
}
