// Package server implements the vjserve HTTP daemon: a registry of
// documents and materialized views loaded at startup, a bounded LRU cache
// of prepared query plans, and a JSON query API with per-request
// deadlines, admission control, and an observability surface.
//
// The serving model follows the paper's cost split directly: everything
// §V charges once per plan (view-set validation, view-segmented query
// construction, list binding, InterJoin's view scans) is paid at Prepare
// time and amortized across requests through the plan cache, while each
// request pays only the per-execution costs (cursor movement, structural
// joins, enumeration) via PreparedQuery.RunContext on pooled scratch.
package server

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"viewjoin"
	"viewjoin/internal/counters"
	"viewjoin/internal/obs"
)

// Schema identifiers of the JSON documents the server emits. Query
// responses and access-log lines embed trace reports in the existing
// viewjoin/trace/v1 schema.
const (
	ResponseSchema = "viewjoin/serve/v1"
	MetricsSchema  = "viewjoin/metrics/v1"
	AccessSchema   = "viewjoin/access/v1"
	PlansSchema    = "viewjoin/plans/v1"
)

// Config tunes a Server. The zero value is usable: every field has a
// serving-appropriate default.
type Config struct {
	// CacheSize bounds the plan cache (prepared plans, LRU). Default 128.
	CacheSize int
	// Workers bounds concurrent query evaluations. Default 4.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// slot before new arrivals are shed with 429. 0 means shed whenever all
	// workers are busy; negative means an unbounded queue.
	QueueDepth int
	// DefaultTimeout bounds requests that do not carry their own
	// timeout_ms. Default 10s.
	DefaultTimeout time.Duration
	// MaxParallel caps the per-request "parallel" knob: a request may ask
	// for up to this many range partitions (PreparedQuery.RunParallel);
	// higher asks are clamped silently. The default 1 disables parallel
	// evaluation — each request then costs exactly one worker's CPU, which
	// is what the Workers bound assumes.
	MaxParallel int
	// AccessLog, when non-nil, receives one JSON line (schema
	// viewjoin/access/v1) per query request.
	AccessLog io.Writer
	// SlowlogSize enables the slow-query flight recorder: the server
	// retains full traces of the N slowest and the N most recent requests,
	// served at GET /debug/slowlog. 0 (the default) disables the recorder
	// — and with it the per-request tracing it requires, keeping the
	// serving hot path allocation-free.
	SlowlogSize int
	// SlowlogThreshold admits a request to the slow set only when its wall
	// time (admission to response) meets it; the recent ring receives every
	// request regardless. 0 makes every request eligible.
	SlowlogThreshold time.Duration
	// MaxResidentBytes caps the warm (heap-resident) tier of file-backed
	// views: registration and promotion admit views warm only while their
	// summed page footprint fits, demoting least-recently-used views to the
	// cold (mmap-backed) tier to make room. 0 (the default) is unbounded —
	// every view is served resident. In-memory views (AddView) are pinned
	// and outside the cap.
	MaxResidentBytes int64
	// DisableMmap makes cold-tier loads fall back to resident reads
	// instead of mappings (heap the cap does not account for). The default
	// false serves cold views through read-only mappings.
	DisableMmap bool
	// PromoteAfter is how many accesses a cold view needs before it is
	// considered for promotion to the warm tier. Default 2: a one-off
	// access stays cold, a repeat customer earns residency.
	PromoteAfter int
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxParallel <= 0 {
		c.MaxParallel = 1
	}
	if c.PromoteAfter <= 0 {
		c.PromoteAfter = 2
	}
	return c
}

// docEntry is one registered document with its named views. Views are
// keyed by the canonical rendering of their pattern.
type docEntry struct {
	doc   *viewjoin.Document
	views map[string]*viewEntry
	order []string // registration order, for /documents listings
	// wmu serializes the document's write path: one /update at a time per
	// document applies the update, maintains every view, and invalidates
	// the document's cached plans as a single transition. Reads never take
	// it — they run against immutable snapshots.
	wmu sync.Mutex
}

// Server is the shared state of the daemon. All fields are safe for
// concurrent use once serving starts; documents and views are registered
// before the listener is opened and immutable afterwards. View stores are
// flat page-aligned buffers read through per-request cursors, so every
// worker evaluates off the same immutable segments — no per-request copy
// or decode of view data.
type Server struct {
	cfg     Config
	tenants map[string]*tenant // tenant name -> registry; "" is the default tenant
	cache   *planCache

	res         *residency // warm/cold tiering of file-backed views
	pinnedViews int        // in-memory views, outside residency management

	sem    chan struct{} // worker slots
	queued atomic.Int64  // admitted requests waiting for a slot

	mu       sync.Mutex // guards draining + wg.Add pairing
	draining bool
	wg       sync.WaitGroup

	prepares atomic.Int64 // plans built (misses that did the Prepare work)
	requests atomic.Int64
	shed     atomic.Int64
	timeouts atomic.Int64
	canceled atomic.Int64 // client cancellations (disconnects), distinct from deadline expiry
	failures atomic.Int64
	inFlight atomic.Int64

	updates           atomic.Int64 // document updates applied via /update
	maintains         atomic.Int64 // view maintenance operations performed
	fastPaths         atomic.Int64 // maintains that took the pure label-splice fast path
	compactions       atomic.Int64 // maintains that flattened an overlay delta chain
	planInvalidations atomic.Int64 // cached plans dropped by updates

	start   time.Time // serving start, for uptime reporting
	slowlog *slowlog  // nil when Config.SlowlogSize is 0

	histMu     sync.Mutex
	latency    map[string]*obs.Histogram // engine name -> run latency (µs)
	partitions obs.Histogram             // partitions per successful run

	logMu sync.Mutex

	// testEvalGate, when non-nil, is received from while holding a worker
	// slot, before evaluation; testEvalStarted is called just before the
	// receive. Tests use the pair to hold a worker busy deterministically.
	testEvalGate    chan struct{}
	testEvalStarted func()
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		cache:   newPlanCache(cfg.CacheSize),
		res:     newResidency(cfg),
		sem:     make(chan struct{}, cfg.Workers),
		latency: make(map[string]*obs.Histogram),
		start:   time.Now(),
	}
	if cfg.SlowlogSize > 0 {
		s.slowlog = newSlowlog(cfg.SlowlogSize, cfg.SlowlogThreshold)
	}
	return s
}

// AddDocument registers a document with the default tenant. Not safe to
// call once serving has started.
func (s *Server) AddDocument(name string, d *viewjoin.Document) error {
	return s.AddTenantDocument("", name, d)
}

// AddView registers an in-memory materialized view under a default-tenant
// document. The view is addressable in requests by the canonical
// rendering of its pattern (e.g. "//site//item//name") and is pinned
// resident (see AddTenantView). Not safe to call once serving has
// started.
func (s *Server) AddView(docName string, mv *viewjoin.MaterializedView) error {
	return s.AddTenantView("", docName, mv)
}

// AddViewFile registers a saved view container file under a
// default-tenant document, residency-managed (see AddTenantViewFile).
// Not safe to call once serving has started.
func (s *Server) AddViewFile(docName, path string) error {
	return s.AddTenantViewFile("", docName, path)
}

// Handler returns the HTTP handler serving the full API surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("/debug/plans", s.handlePlans)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/documents", s.handleDocuments)
	return mux
}

// Drain puts the server into draining mode — new query requests are
// rejected with 503 — and blocks until every in-flight request has
// finished. It is the SIGTERM path of cmd/vjserve.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.wg.Wait()
}

// queryRequest is the body of POST /query and POST /debug/trace.
type queryRequest struct {
	// Tenant selects the registry the document is looked up in; empty is
	// the default tenant (the only one a single-tenant deployment has).
	Tenant    string   `json:"tenant,omitempty"`
	Document  string   `json:"document"`
	Query     string   `json:"query"`
	Engine    string   `json:"engine"`               // VJ (default), TS, PS, IJ
	Views     []string `json:"views,omitempty"`      // registered view names; default: all views of the document
	TimeoutMS int64    `json:"timeout_ms,omitempty"` // 0: server default
	// Limit bounds the match rows returned; 0 runs the full query and
	// returns the count only. A positive limit is pushed into the engine
	// (PreparedQuery.RunPage): the run stops once the page is determined,
	// and match_count reports the page's row count, not the full result
	// cardinality.
	Limit int `json:"limit"`
	// Cursor resumes a paginated result: the opaque cursor returned by a
	// previous limited response. The run seeks past everything at or
	// before the cursor position instead of re-enumerating it.
	Cursor   string `json:"cursor,omitempty"`
	Parallel int    `json:"parallel,omitempty"` // range partitions; clamped to the server's MaxParallel; <=1: sequential
}

// queryResponse is the body of a successful POST /query.
type queryResponse struct {
	Schema     string       `json:"schema"`
	Document   string       `json:"document"`
	Query      string       `json:"query"`
	Engine     string       `json:"engine"`
	Views      []string     `json:"views"`
	Cache      string       `json:"cache"` // "hit" or "miss"
	MatchCount int          `json:"match_count"`
	Matches    [][]nodeJSON `json:"matches,omitempty"`
	// Cursor, present when a limited page filled completely, resumes the
	// enumeration strictly after this page's last row: pass it back in the
	// next request's cursor field. Absent on the last page. The value is
	// opaque (the document position of the last emitted match), so
	// resumption seeks rather than re-enumerates.
	Cursor     string      `json:"cursor,omitempty"`
	Stats      statsJSON   `json:"stats"`
	DurationUS int64       `json:"duration_us"`
	Trace      *obs.Report `json:"trace,omitempty"`
}

type nodeJSON struct {
	Tag   string `json:"tag"`
	Start int32  `json:"start"`
	End   int32  `json:"end"`
	Level int32  `json:"level"`
}

type statsJSON struct {
	ElementsScanned int64 `json:"elements_scanned"`
	Comparisons     int64 `json:"comparisons"`
	PointerDerefs   int64 `json:"pointer_derefs"`
	PagesRead       int64 `json:"pages_read"`
	PagesWritten    int64 `json:"pages_written"`
	PageHits        int64 `json:"page_hits"`
	JumpsTaken      int64 `json:"jumps_taken"`
	JumpsRefused    int64 `json:"jumps_refused"`
	PeakMemoryBytes int64 `json:"peak_memory_bytes"`
	// FirstMatchUS is the run's time-to-first-match in microseconds; 0
	// when the run produced no match.
	FirstMatchUS int64 `json:"first_match_us"`
	Partitions   int   `json:"partitions"`
}

func statsOf(st viewjoin.Stats) statsJSON {
	return statsJSON{
		ElementsScanned: st.ElementsScanned,
		Comparisons:     st.Comparisons,
		PointerDerefs:   st.PointerDerefs,
		PagesRead:       st.PagesRead,
		PagesWritten:    st.PagesWritten,
		PageHits:        st.PageHits,
		JumpsTaken:      st.JumpsTaken,
		JumpsRefused:    st.JumpsRefused,
		PeakMemoryBytes: st.PeakMemoryBytes,
		FirstMatchUS:    st.FirstMatchNanos / 1000,
		Partitions:      st.Partitions,
	}
}

// encodeCursor renders a result row as an opaque resumption cursor: the
// document epoch the page was served at, then the row's start labels (one
// per query node, the row's document position), base64-encoded
// little-endian. A follow-up run with this cursor resumes strictly after
// the row — but only at the same epoch: positions are not comparable
// across updates, so a stale cursor is rejected with 410 Gone instead of
// silently skipping or repeating rows.
func encodeCursor(epoch uint64, row []viewjoin.Node) string {
	buf := make([]byte, 8+4*len(row))
	binary.LittleEndian.PutUint64(buf, epoch)
	for i, n := range row {
		binary.LittleEndian.PutUint32(buf[8+4*i:], uint32(n.Start))
	}
	return base64.RawURLEncoding.EncodeToString(buf)
}

// decodeCursor parses a request cursor into the epoch it was issued at and
// the per-query-node start labels RunPage seeks past; n is the query's
// node count.
func decodeCursor(s string, n int) (uint64, []int32, error) {
	buf, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return 0, nil, fmt.Errorf("invalid cursor: %w", err)
	}
	if len(buf) != 8+4*n {
		return 0, nil, fmt.Errorf("invalid cursor: %d bytes for a %d-node query", len(buf), n)
	}
	epoch := binary.LittleEndian.Uint64(buf)
	after := make([]int32, n)
	for i := range after {
		after[i] = int32(binary.LittleEndian.Uint32(buf[8+4*i:]))
	}
	return epoch, after, nil
}

// countersOf lifts the public per-run Stats back into the internal counter
// record an obs.Aggregate folds, so per-plan aggregation works off the
// deterministic counters every untraced run already produces.
func countersOf(st viewjoin.Stats) counters.Counters {
	return counters.Counters{
		ElementsScanned: st.ElementsScanned,
		Comparisons:     st.Comparisons,
		PointerDerefs:   st.PointerDerefs,
		PagesRead:       st.PagesRead,
		PagesWritten:    st.PagesWritten,
		PageHits:        st.PageHits,
		JumpsTaken:      st.JumpsTaken,
		JumpsRefused:    st.JumpsRefused,
	}
}

// errorResponse is the body of every failed request: the stage that
// failed, the error text, and — for timeouts — an explicit statement that
// no partial results were produced (aborted evaluations return nothing).
type errorResponse struct {
	Stage   string `json:"stage"`
	Error   string `json:"error"`
	Partial bool   `json:"partial"`
	Timeout bool   `json:"timeout,omitempty"`
}

func writeError(w http.ResponseWriter, status int, stage string, err error, timeout bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Stage: stage, Error: err.Error(), Timeout: timeout})
}

// admit performs admission control: reject while draining, shed when the
// worker queue is full, otherwise block for a worker slot. On success it
// returns a release func and stage ""; on failure, a status and stage.
func (s *Server) admit() (release func(), status int, stage string, err error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable, "admission", errors.New("server is draining")
	}
	s.wg.Add(1)
	s.mu.Unlock()

	acquired := false
	select {
	case s.sem <- struct{}{}:
		acquired = true
	default:
	}
	if !acquired {
		if s.cfg.QueueDepth >= 0 {
			if q := s.queued.Add(1); q > int64(s.cfg.QueueDepth) {
				s.queued.Add(-1)
				s.wg.Done()
				s.shed.Add(1)
				return nil, http.StatusTooManyRequests, "admission",
					fmt.Errorf("queue full (%d workers busy, %d queued)", s.cfg.Workers, s.cfg.QueueDepth)
			}
			s.sem <- struct{}{}
			s.queued.Add(-1)
		} else {
			s.sem <- struct{}{}
		}
	}
	s.inFlight.Add(1)
	return func() {
		s.inFlight.Add(-1)
		<-s.sem
		s.wg.Done()
	}, 0, "", nil
}

// resolve looks up the document in the request's tenant registry, parses
// the query, resolves the view names (all registered views when none are
// named) and the engine, and acquires the tier-appropriate copy of each
// view from the residency manager.
func (s *Server) resolve(req *queryRequest) (*docEntry, *viewjoin.Query, viewjoin.Engine, []string, []*viewjoin.MaterializedView, int, string, error) {
	t := s.tenants[req.Tenant]
	if t == nil {
		return nil, nil, 0, nil, nil, http.StatusNotFound, "resolve",
			fmt.Errorf("unknown document %q%s", req.Document, forTenant(req.Tenant))
	}
	e, ok := t.docs[req.Document]
	if !ok {
		return nil, nil, 0, nil, nil, http.StatusNotFound, "resolve",
			fmt.Errorf("unknown document %q%s", req.Document, forTenant(req.Tenant))
	}
	q, err := viewjoin.ParseQuery(req.Query)
	if err != nil {
		return nil, nil, 0, nil, nil, http.StatusBadRequest, "parse", err
	}
	eng := viewjoin.EngineViewJoin
	if req.Engine != "" {
		eng, err = ParseEngine(req.Engine)
		if err != nil {
			return nil, nil, 0, nil, nil, http.StatusBadRequest, "parse", err
		}
	}
	names := req.Views
	if len(names) == 0 {
		names = e.order
	}
	canon := make([]string, 0, len(names))
	mviews := make([]*viewjoin.MaterializedView, 0, len(names))
	for _, n := range names {
		// Accept any spelling that parses to a registered pattern.
		vq, err := viewjoin.ParseQuery(n)
		if err != nil {
			return nil, nil, 0, nil, nil, http.StatusBadRequest, "parse", fmt.Errorf("view %q: %w", n, err)
		}
		key := vq.String()
		ve, ok := e.views[key]
		if !ok {
			return nil, nil, 0, nil, nil, http.StatusNotFound, "resolve",
				fmt.Errorf("view %s not registered for document %q", key, req.Document)
		}
		mv, err := s.acquire(ve)
		if err != nil {
			return nil, nil, 0, nil, nil, http.StatusInternalServerError, "load",
				fmt.Errorf("view %s: %w", key, err)
		}
		canon = append(canon, key)
		mviews = append(mviews, mv)
	}
	sort.Strings(canon)
	return e, q, eng, canon, mviews, 0, "", nil
}

// plan returns a cache entry (plan plus its per-plan aggregate) for the
// request, preparing and inserting on a miss. The bool reports whether
// this was a cache hit. Plans are always prepared with nil options (no
// tracer), which is what makes them shareable across concurrent requests;
// per-request tracing attaches via RunTraced instead.
func (s *Server) plan(req *queryRequest, e *docEntry, q *viewjoin.Query, eng viewjoin.Engine, canon []string, mviews []*viewjoin.MaterializedView) (*planEntry, bool, error) {
	key := planKey{tenant: req.Tenant, doc: req.Document, query: q.String(), engine: eng, views: strings.Join(canon, ";")}
	if ent := s.cache.get(key); ent != nil {
		return ent, true, nil
	}
	p, err := s.prepareRetry(e.doc, q, mviews, eng)
	if err != nil {
		return nil, false, err
	}
	s.prepares.Add(1)
	return s.cache.put(key, p), false, nil
}

// prepareRetry is Prepare with a short retry on *EpochMismatchError: a
// concurrent /update advances the document and then maintains each view in
// turn, so a Prepare landing inside that window can observe a view one
// epoch behind the document. The window is the update transaction itself —
// a few maintenance calls — so a brief retry rides it out; a view that is
// genuinely stale (maintenance failed) still surfaces the mismatch.
func (s *Server) prepareRetry(d *viewjoin.Document, q *viewjoin.Query, mviews []*viewjoin.MaterializedView, eng viewjoin.Engine) (*viewjoin.PreparedQuery, error) {
	var em *viewjoin.EpochMismatchError
	for attempt := 0; ; attempt++ {
		p, err := viewjoin.Prepare(d, q, mviews, eng, nil)
		if err == nil || attempt >= 5 || !errors.As(err, &em) {
			return p, err
		}
		time.Sleep(time.Millisecond << attempt)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, false)
}

// handleTrace is POST /query with tracing: it bypasses the plan cache
// (tracers are not concurrency-safe, so traced plans are never shared),
// prepares fresh with an obs.Recorder, and embeds the viewjoin/trace/v1
// report in the response and the access log line.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, true)
}

func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, traced bool) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "request", errors.New("POST required"), false)
		return
	}
	s.requests.Add(1)
	started := time.Now()
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, "request", err, false)
		return
	}

	release, status, stage, err := s.admit()
	if err != nil {
		outcome := "shed"
		if status == http.StatusServiceUnavailable {
			outcome = "drain"
		}
		s.logAccess(&req, status, stage, 0, "", 0, outcome, time.Since(started), err)
		writeError(w, status, stage, err, false)
		return
	}
	defer release()

	e, q, eng, canon, mviews, status, stage, err := s.resolve(&req)
	if err != nil {
		s.failures.Add(1)
		s.logAccess(&req, status, stage, 0, "", 0, "error", time.Since(started), err)
		writeError(w, status, stage, err, false)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := contextWithTimeout(r, timeout)
	defer cancel()

	// The gate sits between deadline creation and evaluation: a test that
	// holds it past the deadline gets a deterministic expiry at the
	// engine's upfront interrupt check.
	if s.testEvalGate != nil {
		if s.testEvalStarted != nil {
			s.testEvalStarted()
		}
		<-s.testEvalGate
	}

	// The per-request parallelism ask, clamped to the server cap. k <= 1
	// keeps the sequential path; RunParallel degrades to it anyway when the
	// plan yields no cuts, so the clamp only bounds worst-case goroutines.
	k := req.Parallel
	if k > s.cfg.MaxParallel {
		k = s.cfg.MaxParallel
	}

	// A positive limit or a cursor makes this a paged run: the bound and
	// resumption point are pushed into the engine instead of trimming a
	// fully materialized result.
	var after []int32
	var cursorEpoch uint64
	if req.Cursor != "" {
		cursorEpoch, after, err = decodeCursor(req.Cursor, q.NumNodes())
		if err != nil {
			s.failures.Add(1)
			s.logAccess(&req, http.StatusBadRequest, "parse", 0, "", 0, "error", time.Since(started), err)
			writeError(w, http.StatusBadRequest, "parse", err, false)
			return
		}
	}
	paged := req.Limit > 0 || after != nil
	// With the flight recorder enabled, every request runs under its own
	// obs.Recorder via RunTraced — the cached plan stays shared and
	// untraced, only this execution is observed. The threshold is applied
	// after the run (a query is only known to be slow once it finished),
	// so the recorder must always be on to have the trace when it matters.
	var rec *obs.Recorder
	if traced || s.slowlog != nil {
		rec = obs.NewRecorder()
	}
	runPlan := func(p *viewjoin.PreparedQuery) (*viewjoin.Result, error) {
		if paged {
			kk := k
			if kk <= 1 {
				// Cached plans are prepared with nil options; pin the
				// sequential path explicitly rather than inheriting.
				kk = 1
			}
			so := &viewjoin.StreamOptions{Limit: req.Limit, After: after, Parallelism: kk}
			if rec != nil {
				return p.RunPageTraced(ctx, so, rec)
			}
			return p.RunPage(ctx, so)
		}
		if rec != nil {
			return p.RunTraced(ctx, k, rec)
		}
		if k > 1 {
			return p.RunParallel(ctx, k)
		}
		return p.RunContext(ctx)
	}

	var ent *planEntry // nil on the traced cache-bypass path
	var plan *viewjoin.PreparedQuery
	cacheState := "bypass"
	if traced {
		plan, err = s.prepareRetry(e.doc, q, mviews, eng)
		if err != nil {
			s.fail(w, &req, canon, nil, cacheState, started, err)
			return
		}
		s.prepares.Add(1)
	} else {
		var hit bool
		ent, hit, err = s.plan(&req, e, q, eng, canon, mviews)
		if err != nil {
			s.failures.Add(1)
			s.logAccess(&req, http.StatusUnprocessableEntity, "prepare", 0, "", 0, "error", time.Since(started), err)
			writeError(w, http.StatusUnprocessableEntity, "prepare", err, false)
			return
		}
		cacheState = "miss"
		if hit {
			cacheState = "hit"
		}
		plan = ent.plan
	}
	// A cursor resumes by document position, which an update renumbers:
	// a cursor from another epoch is permanently unusable (410), the
	// client restarts its pagination.
	if req.Cursor != "" && cursorEpoch != plan.Epoch() {
		s.failures.Add(1)
		err = fmt.Errorf("cursor issued at document epoch %d, plan is at epoch %d; restart pagination",
			cursorEpoch, plan.Epoch())
		s.logAccess(&req, http.StatusGone, "cursor", 0, cacheState, 0, "stale", time.Since(started), err)
		writeError(w, http.StatusGone, "cursor", err, false)
		return
	}
	res, err := runPlan(plan)
	if err != nil {
		s.fail(w, &req, canon, ent, cacheState, started, err)
		return
	}

	s.observeLatency(eng, res.Stats.Duration)
	s.observePartitions(res.Stats.Partitions)
	if ent != nil {
		cs := countersOf(res.Stats)
		cs.Matches = int64(len(res.Matches))
		ent.agg.AddRun(cs, res.Stats.Duration)
	}
	resp := queryResponse{
		Schema:     ResponseSchema,
		Document:   req.Document,
		Query:      q.String(),
		Engine:     eng.String(),
		Views:      canon,
		Cache:      cacheState,
		MatchCount: len(res.Matches),
		Stats:      statsOf(res.Stats),
		DurationUS: res.Stats.Duration.Microseconds(),
	}
	if traced {
		// Only the explicit /debug/trace surface embeds the report; the
		// recorder a slowlog-enabled /query runs under feeds the flight
		// recorder, not the response body.
		resp.Trace = res.Trace
	}
	if s.slowlog != nil {
		s.slowlog.observe(slowlogEntry{
			Time:         time.Now().UTC().Format(time.RFC3339Nano),
			Document:     req.Document,
			Query:        q.String(),
			Engine:       eng.String(),
			Views:        canon,
			Status:       http.StatusOK,
			Outcome:      "ok",
			Cache:        cacheState,
			Matches:      len(res.Matches),
			Partitions:   res.Stats.Partitions,
			WallUS:       time.Since(started).Microseconds(),
			RunUS:        res.Stats.Duration.Microseconds(),
			FirstMatchUS: res.Stats.FirstMatchNanos / 1000,
			Trace:        res.Trace,
		})
	}
	if req.Limit > 0 {
		// The paged run already bounded the result to the page; the
		// truncation guard is belt-and-braces.
		n := len(res.Matches)
		if n > req.Limit {
			n = req.Limit
		}
		resp.Matches = make([][]nodeJSON, n)
		for i := 0; i < n; i++ {
			row := make([]nodeJSON, len(res.Matches[i]))
			for j, nd := range res.Matches[i] {
				row[j] = nodeJSON{Tag: nd.Tag, Start: nd.Start, End: nd.End, Level: nd.Level}
			}
			resp.Matches[i] = row
		}
		// A completely filled page may have more matches after it; hand
		// back the resumption cursor. A short page is the last one.
		if n == req.Limit && n > 0 {
			resp.Cursor = encodeCursor(plan.Epoch(), res.Matches[n-1])
		}
	}
	s.logAccess(&req, http.StatusOK, "", len(res.Matches), cacheState, res.Stats.Partitions, "ok", time.Since(started), nil)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// statusClientClosedRequest is the nginx-convention status for a request
// aborted by its client; Go's net/http has no name for it.
const statusClientClosedRequest = 499

// fail maps an evaluation error to its HTTP shape: a *CanceledError from a
// deadline is 504 with partial=false and timeout=true, one from a client
// disconnect is 499 with outcome "canceled"; anything else is a 422
// evaluate error. The failure is folded into the plan's aggregate (ent may
// be nil on the cache-bypass path) and, when the flight recorder is on,
// retained there — an aborted run has no trace, but the request identity
// and wall time are exactly what a slow-query post-mortem needs.
func (s *Server) fail(w http.ResponseWriter, req *queryRequest, canon []string, ent *planEntry,
	cacheState string, started time.Time, err error) {
	status := http.StatusUnprocessableEntity
	outcome := "error"
	timeout := false
	var ce *viewjoin.CanceledError
	if errors.As(err, &ce) {
		if errors.Is(err, context.Canceled) {
			s.canceled.Add(1)
			status = statusClientClosedRequest
			outcome = "canceled"
		} else {
			s.timeouts.Add(1)
			status = http.StatusGatewayTimeout
			outcome = "timeout"
			timeout = true
		}
	} else {
		s.failures.Add(1)
	}
	if ent != nil {
		ent.agg.AddError()
	}
	if s.slowlog != nil {
		s.slowlog.observe(slowlogEntry{
			Time:     time.Now().UTC().Format(time.RFC3339Nano),
			Document: req.Document,
			Query:    req.Query,
			Engine:   req.Engine,
			Views:    canon,
			Status:   status,
			Outcome:  outcome,
			Cache:    cacheState,
			WallUS:   time.Since(started).Microseconds(),
			Error:    err.Error(),
		})
	}
	s.logAccess(req, status, "evaluate", 0, cacheState, 0, outcome, time.Since(started), err)
	writeError(w, status, "evaluate", err, timeout)
}

// observeLatency records one run duration in the per-engine histogram
// (microseconds; power-of-two buckets shared with the trace reports).
func (s *Server) observeLatency(eng viewjoin.Engine, d time.Duration) {
	s.histMu.Lock()
	h := s.latency[eng.String()]
	if h == nil {
		h = &obs.Histogram{}
		s.latency[eng.String()] = h
	}
	h.Add(d.Microseconds())
	s.histMu.Unlock()
}

// observePartitions records how many range partitions a successful run
// executed (1 for sequential), building the distribution /metrics reports.
func (s *Server) observePartitions(n int) {
	s.histMu.Lock()
	s.partitions.Add(int64(n))
	s.histMu.Unlock()
}

// accessLine is one viewjoin/access/v1 log record. Outcome classifies how
// the request ended (ok, timeout, canceled, shed, drain, error) and
// Partitions records how many range partitions the run executed, so a log
// scan can separate deadline expiries from client disconnects and see
// which requests actually went parallel.
type accessLine struct {
	Schema     string   `json:"schema"`
	Time       string   `json:"time"`
	Document   string   `json:"document"`
	Query      string   `json:"query"`
	Engine     string   `json:"engine"`
	Views      []string `json:"views,omitempty"`
	Status     int      `json:"status"`
	Stage      string   `json:"stage,omitempty"`
	Cache      string   `json:"cache,omitempty"`
	Outcome    string   `json:"outcome"`
	Matches    int      `json:"matches"`
	Partitions int      `json:"partitions,omitempty"`
	DurationUS int64    `json:"duration_us"`
	Error      string   `json:"error,omitempty"`
}

func (s *Server) logAccess(req *queryRequest, status int, stage string, matches int, cache string,
	partitions int, outcome string, d time.Duration, err error) {
	if s.cfg.AccessLog == nil {
		return
	}
	line := accessLine{
		Schema:     AccessSchema,
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		Document:   req.Document,
		Query:      req.Query,
		Engine:     req.Engine,
		Views:      req.Views,
		Status:     status,
		Stage:      stage,
		Cache:      cache,
		Outcome:    outcome,
		Matches:    matches,
		Partitions: partitions,
		DurationUS: d.Microseconds(),
	}
	if err != nil {
		line.Error = err.Error()
	}
	buf, merr := json.Marshal(line)
	if merr != nil {
		return
	}
	s.logMu.Lock()
	s.cfg.AccessLog.Write(append(buf, '\n'))
	s.logMu.Unlock()
}

// metricsResponse is the body of GET /metrics.
type metricsResponse struct {
	Schema     string              `json:"schema"`
	UptimeMS   int64               `json:"uptime_ms"`
	PlanCache  planCacheMetrics    `json:"plan_cache"`
	Requests   requestMetrics      `json:"requests"`
	Updates    updateMetrics       `json:"updates"`   // write path (/update + maintenance)
	Residency  residencyMetrics    `json:"residency"` // warm/cold view tiering
	LatencyUS  map[string]histJSON `json:"latency_us"`
	Partitions histJSON            `json:"partitions"` // partitions per successful run
	Plans      []planMetrics       `json:"plans"`      // one row per resident cache entry, MRU first
	Documents  int                 `json:"documents"`  // across all tenants
}

type planCacheMetrics struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Evictions      int64 `json:"evictions"`
	Prepares       int64 `json:"prepares"`
	Size           int   `json:"size"`
	Capacity       int   `json:"capacity"`
	FootprintBytes int64 `json:"footprint_bytes"` // estimated resident bytes of cached plans
}

type requestMetrics struct {
	Total    int64 `json:"total"`
	Shed     int64 `json:"shed"`
	Timeouts int64 `json:"timeouts"`
	Canceled int64 `json:"canceled"`
	Failures int64 `json:"failures"`
	InFlight int64 `json:"in_flight"`
	Queued   int64 `json:"queued"`
	Draining bool  `json:"draining"`
}

// updateMetrics is the write-path block of GET /metrics: updates applied,
// view maintenance operations, and how often maintenance took the
// fast path (pure label splice) or triggered an overlay compaction.
type updateMetrics struct {
	Total             int64 `json:"total"`
	Maintains         int64 `json:"maintains"`
	FastPath          int64 `json:"fast_path"`
	Compactions       int64 `json:"compactions"`
	PlanInvalidations int64 `json:"plan_invalidations"`
}

// histJSON summarizes a latency histogram as quantile estimates rather
// than raw bucket dumps: p50/p95/p99/p999 interpolated from the
// power-of-two buckets (within one bucket of exact, clamped to the
// observed maximum).
type histJSON struct {
	N      int64 `json:"n"`
	SumUS  int64 `json:"sum_us"`
	MaxUS  int64 `json:"max_us"`
	P50US  int64 `json:"p50_us"`
	P95US  int64 `json:"p95_us"`
	P99US  int64 `json:"p99_us"`
	P999US int64 `json:"p999_us"`
}

func histOf(h *obs.Histogram) histJSON {
	return histJSON{
		N: h.N, SumUS: h.Sum, MaxUS: h.Max,
		P50US:  h.Quantile(0.50),
		P95US:  h.Quantile(0.95),
		P99US:  h.Quantile(0.99),
		P999US: h.Quantile(0.999),
	}
}

// planMetrics is one row of the per-plan table: the plan identity plus
// the aggregate of every run it has served since entering the cache.
type planMetrics struct {
	Tenant          string   `json:"tenant,omitempty"`
	Document        string   `json:"document"`
	Query           string   `json:"query"`
	Engine          string   `json:"engine"`
	Views           string   `json:"views"`
	Runs            int64    `json:"runs"`
	Errors          int64    `json:"errors"`
	LatencyUS       histJSON `json:"latency_us"`
	PageHitRatio    float64  `json:"page_hit_ratio"`
	JumpRefusedRate float64  `json:"jump_refused_rate"`
	FootprintBytes  int64    `json:"footprint_bytes"`
}

// planRows renders the cache's resident entries as per-plan metric rows,
// most recently used first.
func (s *Server) planRows() []planMetrics {
	ents := s.cache.entries()
	rows := make([]planMetrics, 0, len(ents))
	for _, ent := range ents {
		snap := ent.agg.Snapshot()
		rows = append(rows, planMetrics{
			Tenant:          ent.key.tenant,
			Document:        ent.key.doc,
			Query:           ent.key.query,
			Engine:          ent.key.engine.String(),
			Views:           ent.key.views,
			Runs:            snap.Runs,
			Errors:          snap.Errors,
			LatencyUS:       histOf(&snap.LatencyUS),
			PageHitRatio:    snap.PageHitRatio(),
			JumpRefusedRate: snap.JumpRefusedRate(),
			FootprintBytes:  ent.footprint,
		})
	}
	return rows
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, evictions, size, footprint := s.cache.stats()
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	resp := metricsResponse{
		Schema:   MetricsSchema,
		UptimeMS: time.Since(s.start).Milliseconds(),
		PlanCache: planCacheMetrics{
			Hits: hits, Misses: misses, Evictions: evictions,
			Prepares: s.prepares.Load(), Size: size, Capacity: s.cfg.CacheSize,
			FootprintBytes: footprint,
		},
		Requests: requestMetrics{
			Total:    s.requests.Load(),
			Shed:     s.shed.Load(),
			Timeouts: s.timeouts.Load(),
			Canceled: s.canceled.Load(),
			Failures: s.failures.Load(),
			InFlight: s.inFlight.Load(),
			Queued:   s.queued.Load(),
			Draining: draining,
		},
		Updates: updateMetrics{
			Total:             s.updates.Load(),
			Maintains:         s.maintains.Load(),
			FastPath:          s.fastPaths.Load(),
			Compactions:       s.compactions.Load(),
			PlanInvalidations: s.planInvalidations.Load(),
		},
		Residency: s.residencySnapshot(),
		LatencyUS: make(map[string]histJSON),
		Plans:     s.planRows(),
		Documents: s.numDocuments(),
	}
	s.histMu.Lock()
	for name, h := range s.latency {
		resp.LatencyUS[name] = histOf(h)
	}
	resp.Partitions = histOf(&s.partitions)
	s.histMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// numDocuments counts registered documents across all tenants.
func (s *Server) numDocuments() int {
	n := 0
	for _, t := range s.tenants {
		n += len(t.docs)
	}
	return n
}

// plansResponse is the body of GET /debug/plans: the per-plan table with
// the full summed counter record per plan, beyond the compact ratios the
// /metrics table carries, plus the residency state of every registered
// view (which tier each one sits in, and the tiering counters).
type plansResponse struct {
	Schema    string             `json:"schema"`
	Plans     []planDetail       `json:"plans"`
	Residency residencyMetrics   `json:"residency"`
	Views     []viewResidencyRow `json:"views"`
}

type planDetail struct {
	planMetrics
	Counters planCountersJSON `json:"counters"`
}

// planCountersJSON is the summed deterministic counter record of every
// run a plan served — the observed analogue of the §V cost-model terms.
type planCountersJSON struct {
	ElementsScanned int64 `json:"elements_scanned"`
	Comparisons     int64 `json:"comparisons"`
	PointerDerefs   int64 `json:"pointer_derefs"`
	PagesRead       int64 `json:"pages_read"`
	PagesWritten    int64 `json:"pages_written"`
	PageHits        int64 `json:"page_hits"`
	JumpsTaken      int64 `json:"jumps_taken"`
	JumpsRefused    int64 `json:"jumps_refused"`
	Matches         int64 `json:"matches"`
}

func (s *Server) handlePlans(w http.ResponseWriter, r *http.Request) {
	ents := s.cache.entries()
	resp := plansResponse{
		Schema:    PlansSchema,
		Plans:     make([]planDetail, 0, len(ents)),
		Residency: s.residencySnapshot(),
		Views:     s.viewRows(),
	}
	for _, ent := range ents {
		snap := ent.agg.Snapshot()
		resp.Plans = append(resp.Plans, planDetail{
			planMetrics: planMetrics{
				Tenant:          ent.key.tenant,
				Document:        ent.key.doc,
				Query:           ent.key.query,
				Engine:          ent.key.engine.String(),
				Views:           ent.key.views,
				Runs:            snap.Runs,
				Errors:          snap.Errors,
				LatencyUS:       histOf(&snap.LatencyUS),
				PageHitRatio:    snap.PageHitRatio(),
				JumpRefusedRate: snap.JumpRefusedRate(),
				FootprintBytes:  ent.footprint,
			},
			Counters: planCountersJSON{
				ElementsScanned: snap.Counters.ElementsScanned,
				Comparisons:     snap.Counters.Comparisons,
				PointerDerefs:   snap.Counters.PointerDerefs,
				PagesRead:       snap.Counters.PagesRead,
				PagesWritten:    snap.Counters.PagesWritten,
				PageHits:        snap.Counters.PageHits,
				JumpsTaken:      snap.Counters.JumpsTaken,
				JumpsRefused:    snap.Counters.JumpsRefused,
				Matches:         snap.Counters.Matches,
			},
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleSlowlog serves the flight recorder's snapshot (schema
// viewjoin/slowlog/v1), or 404 when the recorder is disabled.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	if s.slowlog == nil {
		writeError(w, http.StatusNotFound, "slowlog", errors.New("slow-query log disabled (start with -slowlog-size > 0)"), false)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.slowlog.snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	status := "ok"
	if draining {
		status = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{"status": status, "in_flight": s.inFlight.Load()})
}

// documentInfo is one entry of GET /documents.
type documentInfo struct {
	Tenant string `json:"tenant,omitempty"`
	Name   string `json:"name"`
	Nodes  int    `json:"nodes"`
	// Epoch is the document's current update epoch (0 until the first
	// /update); cursors are only valid at the epoch they were issued at.
	Epoch uint64     `json:"epoch"`
	Views []viewInfo `json:"views"`
}

type viewInfo struct {
	Pattern   string `json:"pattern"`
	Scheme    string `json:"scheme"`
	Entries   int    `json:"entries"`
	SizeBytes int64  `json:"size_bytes"`
	Tier      string `json:"tier"` // pinned, warm, cold, unloaded
}

func (s *Server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	s.res.mu.Lock()
	var out []documentInfo
	for _, tn := range sortedKeys(s.tenants) {
		t := s.tenants[tn]
		for _, n := range sortedKeys(t.docs) {
			e := t.docs[n]
			di := documentInfo{Tenant: tn, Name: n, Nodes: e.doc.NumNodes(), Epoch: e.doc.Epoch()}
			for _, vn := range e.order {
				ve := e.views[vn]
				tier := "cold"
				switch {
				case ve.pinned:
					tier = "pinned"
				case ve.warm != nil:
					tier = "warm"
				case ve.cold == nil:
					tier = "unloaded"
				}
				di.Views = append(di.Views, viewInfo{
					Pattern:   vn,
					Scheme:    ve.scheme,
					Entries:   ve.entries,
					SizeBytes: ve.footprint,
					Tier:      tier,
				})
			}
			out = append(out, di)
		}
	}
	s.res.mu.Unlock()
	if out == nil {
		out = []documentInfo{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// contextWithTimeout derives the per-request evaluation context: the
// HTTP request's context (so client disconnects cancel the run too)
// bounded by the request's deadline.
func contextWithTimeout(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), timeout)
}

// ParseEngine resolves the request spelling of an engine (as in the
// paper's experiments: VJ, TS, PS, IJ).
func ParseEngine(s string) (viewjoin.Engine, error) {
	switch strings.ToUpper(s) {
	case "VJ":
		return viewjoin.EngineViewJoin, nil
	case "TS":
		return viewjoin.EngineTwigStack, nil
	case "PS":
		return viewjoin.EnginePathStack, nil
	case "IJ":
		return viewjoin.EngineInterJoin, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want VJ, TS, PS, IJ)", s)
}

// ParseScheme resolves the request spelling of a storage scheme.
func ParseScheme(s string) (viewjoin.StorageScheme, error) {
	switch strings.ToUpper(s) {
	case "E":
		return viewjoin.SchemeElement, nil
	case "LE":
		return viewjoin.SchemeLE, nil
	case "LEP":
		return viewjoin.SchemeLEp, nil
	case "T":
		return viewjoin.SchemeTuple, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want E, LE, LEp, T)", s)
}
