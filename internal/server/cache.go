package server

import (
	"container/list"
	"strings"
	"sync"

	"viewjoin"
	"viewjoin/internal/obs"
)

// planKey identifies one cached plan: a tenant, a document, the canonical
// query text, the engine, and the canonical (sorted, ";"-joined) view-name
// set. Query and view names are canonical pattern renderings, so two
// requests that differ only in whitespace or view order share a plan; the
// tenant component keeps plans private to their registry even when two
// tenants register identically named documents.
type planKey struct {
	tenant string
	doc    string
	query  string
	engine viewjoin.Engine
	views  string
}

// planCache is a bounded LRU of prepared plans. PreparedQuery values are
// immutable and safe for concurrent Run (they are always prepared with a
// nil tracer here), so a cached plan can be handed to any number of
// in-flight requests; eviction merely drops the cache's reference.
//
// Every entry carries an obs.Aggregate that accumulates the outcomes of
// all runs of that plan — run count, latency quantiles, page hit/miss
// ratio, jump-refused rate — and a footprint estimate for cache memory
// accounting. The aggregate lives and dies with the entry: evicting a
// plan discards its history, which is the right scope for feedback (a
// re-prepared plan starts observing fresh).
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *planEntry
	items map[planKey]*list.Element

	hits, misses, evictions int64
	footprint               int64 // summed FootprintBytes of resident plans
}

// planEntry is one cached plan. All fields are set before the entry is
// published and immutable afterwards; agg is internally synchronized.
type planEntry struct {
	key       planKey
	plan      *viewjoin.PreparedQuery
	agg       *obs.Aggregate
	footprint int64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), items: make(map[planKey]*list.Element)}
}

// get returns the cached entry for k, promoting it to most recently used.
func (c *planCache) get(k planKey) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry)
}

// put inserts a freshly prepared plan, evicting the least recently used
// entry when over capacity, and returns the resident entry. A concurrent
// put of the same key (two requests racing through the same miss) keeps
// the existing entry, so the racing losers fold their run outcomes into
// the winner's aggregate.
func (c *planCache) put(k planKey, p *viewjoin.PreparedQuery) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*planEntry)
	}
	e := &planEntry{key: k, plan: p, agg: &obs.Aggregate{}, footprint: p.FootprintBytes()}
	c.items[k] = c.ll.PushFront(e)
	c.footprint += e.footprint
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		evicted := el.Value.(*planEntry)
		delete(c.items, evicted.key)
		c.footprint -= evicted.footprint
		c.evictions++
	}
	return e
}

// invalidate removes every cached plan of (tenant, doc) whose view set
// includes the named view, returning how many entries were dropped. The
// residency manager calls it on tier changes: a plan prepared against the
// demoted (or promoted) copy of a view still produces identical results —
// the old copy's segments stay readable until no reference remains — but
// future requests must re-prepare against the view's current tier so the
// registry's accounting matches what plans actually hold onto.
func (c *planCache) invalidate(tenant, doc, view string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*planEntry)
		if e.key.tenant == tenant && e.key.doc == doc && joinedViewsContain(e.key.views, view) {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.footprint -= e.footprint
			c.evictions++
			n++
		}
		el = next
	}
	return n
}

// invalidateDoc removes every cached plan of (tenant, doc), whatever view
// set it binds, returning how many entries were dropped. The update path
// calls it after maintaining a document's views: every plan over the old
// epoch still answers consistently at that epoch, but future requests must
// bind the maintained stores.
func (c *planCache) invalidateDoc(tenant, doc string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*planEntry)
		if e.key.tenant == tenant && e.key.doc == doc {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.footprint -= e.footprint
			c.evictions++
			n++
		}
		el = next
	}
	return n
}

// joinedViewsContain reports whether the ";"-joined canonical view-name
// set includes name as one of its components.
func joinedViewsContain(joined, name string) bool {
	for len(joined) > 0 {
		i := strings.IndexByte(joined, ';')
		if i < 0 {
			return joined == name
		}
		if joined[:i] == name {
			return true
		}
		joined = joined[i+1:]
	}
	return false
}

// stats snapshots the cache counters, current size, and the summed
// footprint estimate of resident plans.
func (c *planCache) stats() (hits, misses, evictions int64, size int, footprint int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len(), c.footprint
}

// entries snapshots the resident entries, most recently used first.
func (c *planCache) entries() []*planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*planEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*planEntry))
	}
	return out
}
