package server

import (
	"container/list"
	"sync"

	"viewjoin"
)

// planKey identifies one cached plan: a document, the canonical query
// text, the engine, and the canonical (sorted, ";"-joined) view-name set.
// Query and view names are canonical pattern renderings, so two requests
// that differ only in whitespace or view order share a plan.
type planKey struct {
	doc    string
	query  string
	engine viewjoin.Engine
	views  string
}

// planCache is a bounded LRU of prepared plans. PreparedQuery values are
// immutable and safe for concurrent Run (they are always prepared with a
// nil tracer here), so a cached plan can be handed to any number of
// in-flight requests; eviction merely drops the cache's reference.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *planEntry
	items map[planKey]*list.Element

	hits, misses, evictions int64
}

type planEntry struct {
	key  planKey
	plan *viewjoin.PreparedQuery
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, ll: list.New(), items: make(map[planKey]*list.Element)}
}

// get returns the cached plan for k, promoting it to most recently used.
func (c *planCache) get(k planKey) *viewjoin.PreparedQuery {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry).plan
}

// put inserts a freshly prepared plan, evicting the least recently used
// entry when over capacity. A concurrent put of the same key (two requests
// racing through the same miss) keeps the existing entry.
func (c *planCache) put(k planKey, p *viewjoin.PreparedQuery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&planEntry{key: k, plan: p})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*planEntry).key)
		c.evictions++
	}
}

// stats snapshots the cache counters and current size.
func (c *planCache) stats() (hits, misses, evictions int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}
