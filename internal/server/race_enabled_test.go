//go:build race

package server

// raceEnabled reports whether the race detector is active; its runtime
// instrumentation changes allocation counts, so alloc-pinning tests skip.
const raceEnabled = true
