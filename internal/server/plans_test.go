package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func getPlans(t testing.TB, ts *httptest.Server) plansResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/plans status %d", resp.StatusCode)
	}
	var p plansResponse
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	return p
}

func findPlan(rows []planMetrics, engine string) *planMetrics {
	for i := range rows {
		if rows[i].Engine == engine {
			return &rows[i]
		}
	}
	return nil
}

// TestPlanAggregates pins the per-plan observability contract: every
// resident cache entry appears on /metrics with its run count, latency
// quantiles and footprint; successful runs and failures fold into the
// right entry; and /debug/plans exposes the full summed counter record.
func TestPlanAggregates(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}
	const vjRuns = 3
	var matchCount int
	for i := 0; i < vjRuns; i++ {
		var r queryResponse
		if st := post(t, ts, "/query", req, &r); st != http.StatusOK {
			t.Fatalf("VJ run %d: status %d", i, st)
		}
		matchCount = r.MatchCount
	}
	tsReq := req
	tsReq.Engine = "TS"
	if st := post(t, ts, "/query", tsReq, nil); st != http.StatusOK {
		t.Fatalf("TS run: status %d", st)
	}

	// One deadline expiry against the cached VJ plan: counted as an error
	// on that plan's aggregate, not as a run.
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s.testEvalGate = gate
	s.testEvalStarted = func() { started <- struct{}{} }
	timeoutReq := req
	timeoutReq.TimeoutMS = 5
	done := make(chan int, 1)
	go func() {
		done <- post(t, ts, "/query", timeoutReq, nil)
	}()
	<-started
	time.Sleep(20 * time.Millisecond)
	gate <- struct{}{}
	if st := <-done; st != http.StatusGatewayTimeout {
		t.Fatalf("timeout request: status %d, want 504", st)
	}
	s.testEvalGate = nil

	m := getMetrics(t, ts)
	if m.UptimeMS < 0 {
		t.Errorf("uptime_ms %d, want >= 0", m.UptimeMS)
	}
	if len(m.Plans) != 2 {
		t.Fatalf("plans table has %d rows, want one per cache entry (2): %+v", len(m.Plans), m.Plans)
	}
	if m.PlanCache.FootprintBytes <= 0 {
		t.Errorf("plan cache footprint %d, want > 0", m.PlanCache.FootprintBytes)
	}

	vj := findPlan(m.Plans, "VJ")
	if vj == nil {
		t.Fatal("no VJ row in plans table")
	}
	if vj.Runs != vjRuns {
		t.Errorf("VJ runs %d, want %d", vj.Runs, vjRuns)
	}
	if vj.Errors != 1 {
		t.Errorf("VJ errors %d, want 1 (the deadline expiry)", vj.Errors)
	}
	if vj.LatencyUS.N != vjRuns {
		t.Errorf("VJ latency N %d, want %d", vj.LatencyUS.N, vjRuns)
	}
	if vj.LatencyUS.P50US <= 0 || vj.LatencyUS.P99US < vj.LatencyUS.P50US {
		t.Errorf("VJ latency quantiles implausible: %+v", vj.LatencyUS)
	}
	if vj.FootprintBytes <= 0 {
		t.Errorf("VJ footprint %d, want > 0", vj.FootprintBytes)
	}
	if tsRow := findPlan(m.Plans, "TS"); tsRow == nil || tsRow.Runs != 1 {
		t.Errorf("TS row missing or wrong runs: %+v", tsRow)
	}

	// The engine-level latency histograms now report quantiles.
	if h, ok := m.LatencyUS["VJ"]; !ok || h.N != vjRuns || h.P50US <= 0 {
		t.Errorf("engine latency histogram: %+v", m.LatencyUS["VJ"])
	}
	// Partition accounting: all four successful runs were sequential.
	if m.Partitions.N != vjRuns+1 || m.Partitions.MaxUS != 1 {
		t.Errorf("partitions histogram N=%d Max=%d, want N=%d Max=1", m.Partitions.N, m.Partitions.MaxUS, vjRuns+1)
	}
	if m.Requests.Timeouts != 1 || m.Requests.Canceled != 0 {
		t.Errorf("timeouts=%d canceled=%d, want 1, 0", m.Requests.Timeouts, m.Requests.Canceled)
	}

	p := getPlans(t, ts)
	if p.Schema != PlansSchema {
		t.Errorf("plans schema %q, want %q", p.Schema, PlansSchema)
	}
	if len(p.Plans) != 2 {
		t.Fatalf("/debug/plans has %d rows, want 2", len(p.Plans))
	}
	var vjd *planDetail
	for i := range p.Plans {
		if p.Plans[i].Engine == "VJ" {
			vjd = &p.Plans[i]
		}
	}
	if vjd == nil {
		t.Fatal("no VJ row on /debug/plans")
	}
	if vjd.Counters.ElementsScanned <= 0 {
		t.Errorf("VJ summed elements_scanned %d, want > 0", vjd.Counters.ElementsScanned)
	}
	if want := int64(vjRuns * matchCount); vjd.Counters.Matches != want {
		t.Errorf("VJ summed matches %d, want %d", vjd.Counters.Matches, want)
	}
}
