package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"viewjoin"
)

const (
	testQuery = "//site//item[//description//keyword]/name"
	testViews = "//site//item//name; //description//keyword"
)

// newTestServer builds a Server over a small XMark document with the
// standard Q14-style view set materialized in LEp.
func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	d := viewjoin.GenerateXMark(0.05)
	if err := s.AddDocument("xmark", d); err != nil {
		t.Fatal(err)
	}
	views, err := viewjoin.ParseViews(testViews)
	if err != nil {
		t.Fatal(err)
	}
	mviews, err := d.MaterializeViews(views, viewjoin.SchemeLEp)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range mviews {
		if err := s.AddView("xmark", mv); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// post sends one query request and decodes the response body into out
// (which may be nil), returning the HTTP status.
func post(t testing.TB, ts *httptest.Server, path string, req any, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func getMetrics(t testing.TB, ts *httptest.Server) metricsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestQueryCacheAccounting pins the plan-cache contract: the first request
// for a plan is a miss that prepares once, every identical request after
// it is a hit that performs no Prepare work (the prepares counter must not
// move), different engines get distinct entries, and all of it is
// reported on /metrics. Results must agree with the library evaluation.
func TestQueryCacheAccounting(t *testing.T) {
	var log bytes.Buffer
	s := newTestServer(t, Config{AccessLog: &log})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	d := viewjoin.GenerateXMark(0.05)
	q := viewjoin.MustParseQuery(testQuery)
	want := viewjoin.EvaluateDirect(d, q)

	var first queryResponse
	if st := post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}, &first); st != http.StatusOK {
		t.Fatalf("first request: status %d", st)
	}
	if first.Schema != ResponseSchema {
		t.Errorf("schema %q, want %q", first.Schema, ResponseSchema)
	}
	if first.Cache != "miss" {
		t.Errorf("first request cache=%q, want miss", first.Cache)
	}
	if first.MatchCount != len(want.Matches) {
		t.Errorf("match_count %d, want %d", first.MatchCount, len(want.Matches))
	}

	const hitRuns = 5
	for i := 0; i < hitRuns; i++ {
		var r queryResponse
		if st := post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}, &r); st != http.StatusOK {
			t.Fatalf("hit %d: status %d", i, st)
		}
		if r.Cache != "hit" {
			t.Errorf("hit %d: cache=%q, want hit", i, r.Cache)
		}
		if r.MatchCount != first.MatchCount {
			t.Errorf("hit %d: match_count %d, want %d", i, r.MatchCount, first.MatchCount)
		}
	}

	// The same plan under a different engine is a distinct cache entry.
	var ts2 queryResponse
	if st := post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery, Engine: "TS"}, &ts2); st != http.StatusOK {
		t.Fatalf("TS request: status %d", st)
	}
	if ts2.Cache != "miss" {
		t.Errorf("TS request cache=%q, want miss", ts2.Cache)
	}
	if ts2.MatchCount != first.MatchCount {
		t.Errorf("TS match_count %d, want %d", ts2.MatchCount, first.MatchCount)
	}

	m := getMetrics(t, ts)
	if m.Schema != MetricsSchema {
		t.Errorf("metrics schema %q, want %q", m.Schema, MetricsSchema)
	}
	if m.PlanCache.Hits != hitRuns {
		t.Errorf("hits = %d, want %d", m.PlanCache.Hits, hitRuns)
	}
	if m.PlanCache.Misses != 2 {
		t.Errorf("misses = %d, want 2", m.PlanCache.Misses)
	}
	// The pin: hits performed no Prepare work — exactly one plan was built
	// per miss, none per hit.
	if m.PlanCache.Prepares != 2 {
		t.Errorf("prepares = %d, want 2 (hit path must not Prepare)", m.PlanCache.Prepares)
	}
	if m.PlanCache.Size != 2 {
		t.Errorf("cache size = %d, want 2", m.PlanCache.Size)
	}
	if m.Requests.Total != int64(hitRuns+2) {
		t.Errorf("requests total = %d, want %d", m.Requests.Total, hitRuns+2)
	}
	if h, ok := m.LatencyUS["VJ"]; !ok || h.N != int64(hitRuns+1) {
		t.Errorf("VJ latency histogram: %+v, want n=%d", h, hitRuns+1)
	}

	// Access log: one viewjoin/access/v1 line per request.
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != hitRuns+2 {
		t.Fatalf("access log has %d lines, want %d", len(lines), hitRuns+2)
	}
	var al accessLine
	if err := json.Unmarshal([]byte(lines[0]), &al); err != nil {
		t.Fatalf("access line: %v", err)
	}
	if al.Schema != AccessSchema || al.Status != http.StatusOK || al.Cache != "miss" {
		t.Errorf("first access line %+v", al)
	}
}

// TestQueryCacheHitAllocations pins that the cache-hit lookup itself does
// no Prepare work at the allocation level: a hit through planCache.get
// allocates nothing.
func TestQueryCacheHitAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	s := newTestServer(t, Config{})
	e := s.tenants[""].docs["xmark"]
	req := &queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}
	q, err := viewjoin.ParseQuery(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	_, _, eng, canon, mviews, _, _, rerr := s.resolve(req)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if _, hit, err := s.plan(req, e, q, eng, canon, mviews); err != nil || hit {
		t.Fatalf("warmup plan: hit=%v err=%v", hit, err)
	}
	key := planKey{doc: "xmark", query: q.String(), engine: eng, views: strings.Join(canon, ";")}
	allocs := testing.AllocsPerRun(100, func() {
		if p := s.cache.get(key); p == nil {
			t.Fatal("cache lost the plan")
		}
	})
	if allocs > 0 {
		t.Errorf("cache hit allocates %.1f objects per lookup, want 0", allocs)
	}
	if got := s.prepares.Load(); got != 1 {
		t.Errorf("prepares = %d after hit-only lookups, want 1", got)
	}
}

// TestQueryDeadlineExpiry holds the evaluation gate past the request
// deadline: the response must be a 504 with the structured timeout shape
// (partial=false), and the very same plan must serve a correct 200
// immediately afterwards — the pooled evaluator scratch survives the
// aborted run (the -race run of this test is the leak check).
func TestQueryDeadlineExpiry(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s.testEvalGate = gate
	s.testEvalStarted = func() { started <- struct{}{} }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ", TimeoutMS: 5}
	type reply struct {
		status int
		body   errorResponse
	}
	done := make(chan reply, 1)
	go func() {
		var er errorResponse
		st := post(t, ts, "/query", req, &er)
		done <- reply{st, er}
	}()
	<-started
	// The deadline was set before the gate; once it has certainly passed,
	// release the request into evaluation.
	time.Sleep(20 * time.Millisecond)
	gate <- struct{}{}
	r := <-done
	if r.status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %+v)", r.status, r.body)
	}
	if r.body.Partial {
		t.Errorf("timeout response claims partial results: %+v", r.body)
	}
	if !r.body.Timeout {
		t.Errorf("timeout response not flagged as timeout: %+v", r.body)
	}
	if r.body.Stage != "evaluate" {
		t.Errorf("timeout stage %q, want evaluate", r.body.Stage)
	}

	// Same plan, sane deadline: must evaluate cleanly on the recycled
	// scratch, as a cache hit.
	var ok queryResponse
	go func() { <-started; gate <- struct{}{} }()
	if st := post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}, &ok); st != http.StatusOK {
		t.Fatalf("post-timeout request: status %d", st)
	}
	if ok.Cache != "hit" {
		t.Errorf("post-timeout cache=%q, want hit (the aborted run built the plan)", ok.Cache)
	}
	d := viewjoin.GenerateXMark(0.05)
	want := viewjoin.EvaluateDirect(d, viewjoin.MustParseQuery(testQuery))
	if ok.MatchCount != len(want.Matches) {
		t.Errorf("post-timeout match_count %d, want %d", ok.MatchCount, len(want.Matches))
	}
	m := getMetrics(t, ts)
	if m.Requests.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", m.Requests.Timeouts)
	}
}

// TestQueryShedding saturates the single worker and pins the 429 path:
// with QueueDepth 0, a second request must be shed immediately with the
// structured admission error and counted on /metrics.
func TestQueryShedding(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 0})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s.testEvalGate = gate
	s.testEvalStarted = func() { started <- struct{}{} }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}
	firstDone := make(chan int, 1)
	go func() {
		var r queryResponse
		firstDone <- post(t, ts, "/query", req, &r)
	}()
	<-started // the worker slot is now held

	var er errorResponse
	if st := post(t, ts, "/query", req, &er); st != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429 (body %+v)", st, er)
	}
	if er.Stage != "admission" {
		t.Errorf("shed stage %q, want admission", er.Stage)
	}

	gate <- struct{}{}
	if st := <-firstDone; st != http.StatusOK {
		t.Fatalf("first request: status %d", st)
	}
	m := getMetrics(t, ts)
	if m.Requests.Shed != 1 {
		t.Errorf("shed = %d, want 1", m.Requests.Shed)
	}
	if m.Requests.Total != 2 {
		t.Errorf("total = %d, want 2", m.Requests.Total)
	}
}

// TestQueryQueueing verifies the queue between the workers and the
// shedding threshold: with QueueDepth 1, one request may wait for the
// busy worker and completes; only the one after it is shed.
func TestQueryQueueing(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	s.testEvalGate = gate
	s.testEvalStarted = func() { started <- struct{}{} }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}
	results := make(chan int, 2)
	go func() {
		var r queryResponse
		results <- post(t, ts, "/query", req, &r)
	}()
	<-started // worker busy
	go func() {
		var r queryResponse
		results <- post(t, ts, "/query", req, &r)
	}()
	// Wait until the second request is queued (deterministically visible
	// through the queued gauge).
	for i := 0; s.queued.Load() == 0; i++ {
		if i > 5000 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	var er errorResponse
	if st := post(t, ts, "/query", req, &er); st != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429", st)
	}

	gate <- struct{}{} // finish first; second leaves the queue and evaluates
	<-started
	gate <- struct{}{}
	for i := 0; i < 2; i++ {
		if st := <-results; st != http.StatusOK {
			t.Fatalf("request %d: status %d", i, st)
		}
	}
}

// TestGracefulDrain pins the SIGTERM path: draining rejects new queries
// with 503 and flips /healthz, while the in-flight request completes
// normally and Drain returns only after it has.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s.testEvalGate = gate
	s.testEvalStarted = func() { started <- struct{}{} }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}
	inflight := make(chan int, 1)
	go func() {
		var r queryResponse
		inflight <- post(t, ts, "/query", req, &r)
	}()
	<-started

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	// Drain flips the flag before blocking; wait until /healthz sees it.
	for i := 0; ; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Status string `json:"status"`
		}
		json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if h.Status == "draining" {
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Errorf("draining healthz status %d, want 503", resp.StatusCode)
			}
			break
		}
		if i > 5000 {
			t.Fatal("server never reported draining")
		}
		time.Sleep(time.Millisecond)
	}

	var er errorResponse
	if st := post(t, ts, "/query", req, &er); st != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: status %d, want 503", st)
	}
	if er.Stage != "admission" {
		t.Errorf("draining stage %q, want admission", er.Stage)
	}

	select {
	case <-drained:
		t.Fatal("Drain returned while a request was still in flight")
	default:
	}
	gate <- struct{}{}
	if st := <-inflight; st != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d", st)
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the in-flight request finished")
	}
}

// TestDebugTrace pins the tracing endpoint: it bypasses the plan cache,
// and the response embeds a full viewjoin/trace/v1 report.
func TestDebugTrace(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var r queryResponse
	if st := post(t, ts, "/debug/trace", queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}, &r); st != http.StatusOK {
		t.Fatalf("trace request: status %d", st)
	}
	if r.Cache != "bypass" {
		t.Errorf("trace cache=%q, want bypass", r.Cache)
	}
	if r.Trace == nil {
		t.Fatal("trace response has no embedded report")
	}
	if r.Trace.Schema != "viewjoin/trace/v1" {
		t.Errorf("trace schema %q, want viewjoin/trace/v1", r.Trace.Schema)
	}
	if len(r.Trace.Phases) == 0 {
		t.Error("trace report has no phases")
	}
	m := getMetrics(t, ts)
	if m.PlanCache.Size != 0 {
		t.Errorf("trace request populated the plan cache (size %d)", m.PlanCache.Size)
	}
}

// TestQueryErrors pins the structured-error statuses: unknown document
// (404), bad query (400), unknown view (404), unknown engine (400), and
// an engine/scheme mismatch at prepare time (422).
func TestQueryErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		req    queryRequest
		status int
		stage  string
	}{
		{"unknown document", queryRequest{Document: "nope", Query: testQuery}, http.StatusNotFound, "resolve"},
		{"bad query", queryRequest{Document: "xmark", Query: "//a["}, http.StatusBadRequest, "parse"},
		{"unknown view", queryRequest{Document: "xmark", Query: testQuery, Views: []string{"//nosuch//view"}}, http.StatusNotFound, "resolve"},
		{"bad engine", queryRequest{Document: "xmark", Query: testQuery, Engine: "XX"}, http.StatusBadRequest, "parse"},
		{"engine mismatch", queryRequest{Document: "xmark", Query: testQuery, Engine: "IJ"}, http.StatusUnprocessableEntity, "prepare"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var er errorResponse
			if st := post(t, ts, "/query", c.req, &er); st != c.status {
				t.Fatalf("status %d, want %d (body %+v)", st, c.status, er)
			}
			if er.Stage != c.stage {
				t.Errorf("stage %q, want %q", er.Stage, c.stage)
			}
			if er.Error == "" {
				t.Error("empty error text")
			}
		})
	}
}

// TestCacheEviction fills a capacity-2 cache with three plans and checks
// LRU order: the least recently used entry is the one evicted.
func TestCacheEviction(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqs := []queryRequest{
		{Document: "xmark", Query: testQuery, Engine: "VJ"},
		{Document: "xmark", Query: testQuery, Engine: "TS"},
		{Document: "xmark", Query: "//site//item//name", Engine: "VJ", Views: []string{"//site//item//name"}},
	}
	for i, r := range reqs {
		var resp queryResponse
		if st := post(t, ts, "/query", r, &resp); st != http.StatusOK {
			t.Fatalf("request %d: status %d", i, st)
		}
	}
	m := getMetrics(t, ts)
	if m.PlanCache.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", m.PlanCache.Evictions)
	}
	if m.PlanCache.Size != 2 {
		t.Errorf("size = %d, want 2", m.PlanCache.Size)
	}
	// The VJ plan (request 0) was the LRU victim: the TS plan is still
	// cached, and rerunning the victim is a miss. (Order matters — the
	// re-miss inserts and evicts again.)
	var r1 queryResponse
	post(t, ts, "/query", reqs[1], &r1)
	if r1.Cache != "hit" {
		t.Errorf("retained plan came back as %q, want hit", r1.Cache)
	}
	var r0 queryResponse
	post(t, ts, "/query", reqs[0], &r0)
	if r0.Cache != "miss" {
		t.Errorf("evicted plan came back as %q, want miss", r0.Cache)
	}
}

// TestConcurrentQueries hammers the full stack — admission, cache, pooled
// scratch — from many goroutines; with -race this is the server-level
// isolation proof. Every response must carry the same match count.
func TestConcurrentQueries(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var warm queryResponse
	if st := post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}, &warm); st != http.StatusOK {
		t.Fatalf("warmup: status %d", st)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng := []string{"VJ", "TS"}[g%2]
			for i := 0; i < 3; i++ {
				var r queryResponse
				st := post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery, Engine: eng}, &r)
				if st != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d run %d: status %d", g, i, st)
					return
				}
				if r.MatchCount != warm.MatchCount {
					errs <- fmt.Errorf("goroutine %d run %d (%s): %d matches, want %d", g, i, eng, r.MatchCount, warm.MatchCount)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDocumentsEndpoint sanity-checks the registry listing.
func TestDocumentsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/documents")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var docs []documentInfo
	if err := json.NewDecoder(resp.Body).Decode(&docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].Name != "xmark" {
		t.Fatalf("documents = %+v", docs)
	}
	if len(docs[0].Views) != 2 {
		t.Errorf("views = %+v, want 2", docs[0].Views)
	}
	if docs[0].Views[0].Scheme != "LEp" {
		t.Errorf("scheme %q, want LEp", docs[0].Views[0].Scheme)
	}
}

// TestMatchRows verifies the limit parameter returns bounded match rows.
func TestMatchRows(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var r queryResponse
	if st := post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ", Limit: 3}, &r); st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if r.MatchCount < 3 {
		t.Skipf("document too small: %d matches", r.MatchCount)
	}
	if len(r.Matches) != 3 {
		t.Fatalf("returned %d rows, want 3", len(r.Matches))
	}
	for _, row := range r.Matches {
		if len(row) == 0 || row[0].Tag == "" {
			t.Fatalf("malformed row %+v", row)
		}
	}
}

// TestParallelKnob pins the per-request parallelism contract: a request's
// "parallel" field routes the run through range partitioning (reported via
// stats.partitions) only up to the server's MaxParallel cap, the result is
// identical to the sequential answer, and the default cap of 1 disables
// the mechanism entirely.
func TestParallelKnob(t *testing.T) {
	s := newTestServer(t, Config{MaxParallel: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var seq, par queryResponse
	req := queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ"}
	if st := post(t, ts, "/query", req, &seq); st != http.StatusOK {
		t.Fatalf("sequential: status %d", st)
	}
	req.Parallel = 8 // asks past the cap: clamped to 4, not rejected
	if st := post(t, ts, "/query", req, &par); st != http.StatusOK {
		t.Fatalf("parallel: status %d", st)
	}
	if par.MatchCount != seq.MatchCount {
		t.Fatalf("parallel found %d matches, sequential %d", par.MatchCount, seq.MatchCount)
	}
	if seq.Stats.Partitions != 1 {
		t.Errorf("sequential run reported %d partitions, want 1", seq.Stats.Partitions)
	}
	if par.Stats.Partitions < 2 || par.Stats.Partitions > 4 {
		t.Errorf("parallel run reported %d partitions, want 2..4", par.Stats.Partitions)
	}

	// Default configuration: the knob is a no-op.
	s2 := newTestServer(t, Config{})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var capped queryResponse
	if st := post(t, ts2, "/query", queryRequest{Document: "xmark", Query: testQuery, Engine: "VJ", Parallel: 8}, &capped); st != http.StatusOK {
		t.Fatalf("capped: status %d", st)
	}
	if capped.Stats.Partitions != 1 {
		t.Errorf("capped run reported %d partitions, want 1", capped.Stats.Partitions)
	}
}

// TestPaginationCursorRoundTrip pages through the whole result with
// limit+cursor and checks the concatenated pages reassemble the full
// unlimited run exactly: same rows, same order, no gaps or duplicates,
// and the last page carries no cursor.
func TestPaginationCursorRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Reference: the full run (count only) and one big page holding every
	// row.
	var full queryResponse
	if st := post(t, ts, "/query", map[string]any{
		"document": "xmark", "query": testQuery, "limit": 1 << 20,
	}, &full); st != http.StatusOK {
		t.Fatalf("full run status %d", st)
	}
	if len(full.Matches) == 0 {
		t.Fatal("test query has no matches")
	}
	if full.Cursor != "" {
		t.Fatalf("oversized page returned a cursor (%d rows)", len(full.Matches))
	}

	const pageSize = 7
	var pages [][]nodeJSON
	cursor := ""
	for i := 0; ; i++ {
		if i > len(full.Matches) {
			t.Fatal("pagination did not terminate")
		}
		req := map[string]any{"document": "xmark", "query": testQuery, "limit": pageSize}
		if cursor != "" {
			req["cursor"] = cursor
		}
		var resp queryResponse
		if st := post(t, ts, "/query", req, &resp); st != http.StatusOK {
			t.Fatalf("page %d status %d", i, st)
		}
		if resp.MatchCount != len(resp.Matches) {
			t.Fatalf("page %d: match_count %d != %d rows", i, resp.MatchCount, len(resp.Matches))
		}
		if len(resp.Matches) > pageSize {
			t.Fatalf("page %d: %d rows > limit %d", i, len(resp.Matches), pageSize)
		}
		pages = append(pages, resp.Matches...)
		if resp.Cursor == "" {
			if len(resp.Matches) == pageSize && len(pages) < len(full.Matches) {
				t.Fatalf("page %d: full page without cursor before the end", i)
			}
			break
		}
		if len(resp.Matches) != pageSize {
			t.Fatalf("page %d: short page (%d rows) carries a cursor", i, len(resp.Matches))
		}
		cursor = resp.Cursor
	}
	if len(pages) != len(full.Matches) {
		t.Fatalf("pages reassemble %d rows, full run has %d", len(pages), len(full.Matches))
	}
	for i := range pages {
		if fmt.Sprint(pages[i]) != fmt.Sprint(full.Matches[i]) {
			t.Fatalf("row %d differs: paged %v, full %v", i, pages[i], full.Matches[i])
		}
	}
}

// TestPaginationBadCursor checks malformed cursors are rejected with 400.
func TestPaginationBadCursor(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, cur := range []string{"!!!", "AAAA"} { // undecodable; wrong length
		var er errorResponse
		if st := post(t, ts, "/query", map[string]any{
			"document": "xmark", "query": testQuery, "limit": 3, "cursor": cur,
		}, &er); st != http.StatusBadRequest {
			t.Fatalf("cursor %q: status %d, want 400", cur, st)
		}
	}
}

// TestFirstMatchStat checks the serving surface reports time-to-first-match.
func TestFirstMatchStat(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var resp queryResponse
	if st := post(t, ts, "/query", map[string]any{
		"document": "xmark", "query": testQuery, "limit": 1,
	}, &resp); st != http.StatusOK {
		t.Fatalf("status %d", st)
	}
	if resp.Stats.FirstMatchUS <= 0 {
		t.Fatalf("first_match_us = %d, want > 0", resp.Stats.FirstMatchUS)
	}
}
