package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"viewjoin"
)

// This file is the server's write path: POST /update applies one subtree
// update to a registered document and incrementally maintains every one of
// its views, as a single serialized transaction per document. Reads never
// wait on it — queries run against immutable snapshots, and a plan
// prepared before the update keeps answering consistently at its own
// epoch until the cache invalidation forces a re-prepare.

// updateRequest is the body of POST /update.
type updateRequest struct {
	// Tenant selects the registry the document is looked up in; empty is
	// the default tenant.
	Tenant   string `json:"tenant,omitempty"`
	Document string `json:"document"`
	// Op is the update operation: insert-before, append-child, or
	// delete-subtree (the UpdateOp spellings).
	Op string `json:"op"`
	// Target addresses the target node by its start label in the
	// document's current snapshot — the start of any query result row, so
	// query responses address update targets directly.
	Target int32 `json:"target"`
	// Fragment is the XML of the subtree to insert; its root element
	// becomes the inserted subtree's root. Ignored for delete-subtree.
	Fragment string `json:"fragment,omitempty"`
}

// maintainJSON is one view's maintenance outcome in an update response.
type maintainJSON struct {
	View        string `json:"view"`
	FastPath    bool   `json:"fast_path"`
	SharedPages int    `json:"shared_pages"`
	TotalPages  int    `json:"total_pages"`
	Compacted   bool   `json:"compacted"`
}

// updateResponse is the body of a successful POST /update.
type updateResponse struct {
	Schema   string `json:"schema"`
	Document string `json:"document"`
	Op       string `json:"op"`
	// Epoch is the document epoch the update produced. Cursors and cached
	// plans issued before it are invalid at it; /documents reports it so
	// clients can tell which epoch they are paginating against.
	Epoch uint64 `json:"epoch"`
	Nodes int    `json:"nodes"` // node count of the updated document
	// Views reports how each registered view was maintained, in
	// registration order.
	Views []maintainJSON `json:"views"`
	// PlansInvalidated counts the cached plans dropped because they bound
	// the document's pre-update snapshot.
	PlansInvalidated int   `json:"plans_invalidated"`
	DurationUS       int64 `json:"duration_us"`
}

// parseUpdateOp resolves the request spelling of an update operation.
func parseUpdateOp(s string) (viewjoin.UpdateOp, error) {
	switch s {
	case "insert-before":
		return viewjoin.InsertBefore, nil
	case "append-child":
		return viewjoin.AppendChild, nil
	case "delete-subtree":
		return viewjoin.DeleteSubtree, nil
	}
	return 0, fmt.Errorf("unknown update op %q (want insert-before, append-child, delete-subtree)", s)
}

// handleUpdate serves POST /update. Updates share the worker pool with
// queries (an update is a bounded unit of CPU like any evaluation), and
// each document's updates are serialized on its write mutex: apply,
// maintain every view, refresh the registry's listings, and invalidate
// the document's cached plans as one transition.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "request", errors.New("POST required"), false)
		return
	}
	s.requests.Add(1)
	started := time.Now()
	var req updateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, "request", err, false)
		return
	}

	release, status, stage, err := s.admit()
	if err != nil {
		writeError(w, status, stage, err, false)
		return
	}
	defer release()

	t := s.tenants[req.Tenant]
	if t == nil {
		s.failures.Add(1)
		writeError(w, http.StatusNotFound, "resolve",
			fmt.Errorf("unknown document %q%s", req.Document, forTenant(req.Tenant)), false)
		return
	}
	e, ok := t.docs[req.Document]
	if !ok {
		s.failures.Add(1)
		writeError(w, http.StatusNotFound, "resolve",
			fmt.Errorf("unknown document %q%s", req.Document, forTenant(req.Tenant)), false)
		return
	}
	op, err := parseUpdateOp(req.Op)
	if err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusBadRequest, "parse", err, false)
		return
	}
	u := viewjoin.Update{Op: op, TargetStart: req.Target}
	if op != viewjoin.DeleteSubtree {
		if req.Fragment == "" {
			s.failures.Add(1)
			writeError(w, http.StatusBadRequest, "parse", fmt.Errorf("op %s needs a fragment", op), false)
			return
		}
		frag, err := viewjoin.ParseDocumentString(req.Fragment)
		if err != nil {
			s.failures.Add(1)
			writeError(w, http.StatusBadRequest, "parse", fmt.Errorf("fragment: %w", err), false)
			return
		}
		u.Fragment = frag
	}

	// One update transaction per document at a time: the epoch transition,
	// the maintenance of every view, and the plan invalidation appear
	// atomic to the serving path (a Prepare racing the window retries on
	// the epoch mismatch).
	e.wmu.Lock()
	defer e.wmu.Unlock()

	// Every view must be maintainable before anything mutates: file-backed
	// views alias their container image (resident buffer or mapping) and
	// cannot be spliced in place. Updating under them would strand every
	// tier at the old epoch with no way back.
	for _, vn := range e.order {
		if !e.views[vn].pinned {
			s.failures.Add(1)
			err := fmt.Errorf("view %s is file-backed and cannot be maintained; updates need in-memory views", vn)
			writeError(w, http.StatusConflict, "maintain", err, false)
			return
		}
	}

	au, err := e.doc.Apply(u)
	if err != nil {
		s.failures.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "apply", err, false)
		return
	}
	s.updates.Add(1)

	reports := make([]maintainJSON, 0, len(e.order))
	for _, vn := range e.order {
		ve := e.views[vn]
		rep, err := ve.warm.Maintain(au)
		if err != nil {
			// The document has advanced; this view (and any after it) has
			// not. Future Prepares over it fail with the epoch mismatch
			// until an operator reloads it — surface the stuck state.
			s.failures.Add(1)
			writeError(w, http.StatusInternalServerError, "maintain",
				fmt.Errorf("view %s: %w", vn, err), false)
			return
		}
		s.maintains.Add(1)
		if rep.FastPath {
			s.fastPaths.Add(1)
		}
		if rep.Compacted {
			s.compactions.Add(1)
		}
		reports = append(reports, maintainJSON{
			View: vn, FastPath: rep.FastPath,
			SharedPages: rep.SharedPages, TotalPages: rep.TotalPages,
			Compacted: rep.Compacted,
		})
	}

	// Refresh the registry's listing fields (footprint, entry count) to
	// the maintained stores, then drop every cached plan of the document:
	// they bind the pre-update snapshot and must re-prepare.
	s.res.mu.Lock()
	for _, vn := range e.order {
		ve := e.views[vn]
		ve.footprint = ve.warm.FootprintBytes()
		ve.entries = ve.warm.NumEntries()
	}
	s.res.mu.Unlock()
	invalidated := s.cache.invalidateDoc(req.Tenant, req.Document)
	s.planInvalidations.Add(int64(invalidated))

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(updateResponse{
		Schema:           ResponseSchema,
		Document:         req.Document,
		Op:               op.String(),
		Epoch:            au.Epoch(),
		Nodes:            e.doc.NumNodes(),
		Views:            reports,
		PlansInvalidated: invalidated,
		DurationUS:       time.Since(started).Microseconds(),
	})
}
