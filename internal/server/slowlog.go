package server

import (
	"sort"
	"sync"
	"time"

	"viewjoin/internal/obs"
)

// SlowlogSchema identifies the GET /debug/slowlog response body.
const SlowlogSchema = "viewjoin/slowlog/v1"

// slowlogEntry is one retained request: the request identity, its outcome,
// and — when the run completed under a recorder — the full viewjoin/trace/v1
// report, so a slow query can be diagnosed after the fact without
// re-running it under /debug/trace.
type slowlogEntry struct {
	Time       string   `json:"time"`
	Document   string   `json:"document"`
	Query      string   `json:"query"`
	Engine     string   `json:"engine"`
	Views      []string `json:"views,omitempty"`
	Status     int      `json:"status"`
	Outcome    string   `json:"outcome"`
	Cache      string   `json:"cache,omitempty"`
	Matches    int      `json:"matches"`
	Partitions int      `json:"partitions,omitempty"`
	WallUS     int64    `json:"wall_us"` // request wall time (admission to response)
	RunUS      int64    `json:"run_us"`  // engine run time, 0 when the run aborted
	// FirstMatchUS is the run's time-to-first-match; 0 when the run
	// produced no match or aborted.
	FirstMatchUS int64       `json:"first_match_us,omitempty"`
	Error        string      `json:"error,omitempty"`
	Trace        *obs.Report `json:"trace,omitempty"`
}

// slowlog is the flight recorder: a fixed-size ring of the most recent
// requests plus the current top-N slowest by wall time. Every observed
// request enters the recent ring; only requests at or above the threshold
// compete for the slow set. Entries are immutable once observed, so
// serving a snapshot is a shallow copy under the lock.
type slowlog struct {
	mu        sync.Mutex
	size      int
	threshold time.Duration

	recent   []slowlogEntry // ring buffer, next points at the oldest slot
	next     int
	observed int64

	slowest []slowlogEntry // sorted by WallUS descending, len <= size
}

func newSlowlog(size int, threshold time.Duration) *slowlog {
	return &slowlog{size: size, threshold: threshold}
}

// observe records one finished request. The wall time decides slow-set
// admission: it is what the client experienced, so queueing and gating
// delays count, not just engine time.
func (l *slowlog) observe(e slowlogEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observed++

	if len(l.recent) < l.size {
		l.recent = append(l.recent, e)
	} else {
		l.recent[l.next] = e
		l.next = (l.next + 1) % l.size
	}

	if time.Duration(e.WallUS)*time.Microsecond < l.threshold {
		return
	}
	if len(l.slowest) == l.size && e.WallUS <= l.slowest[len(l.slowest)-1].WallUS {
		return
	}
	// Insert in descending WallUS order; the slice is tiny (flag-bounded),
	// so a binary search plus copy beats maintaining a heap.
	i := sort.Search(len(l.slowest), func(i int) bool { return l.slowest[i].WallUS < e.WallUS })
	l.slowest = append(l.slowest, slowlogEntry{})
	copy(l.slowest[i+1:], l.slowest[i:])
	l.slowest[i] = e
	if len(l.slowest) > l.size {
		l.slowest = l.slowest[:l.size]
	}
}

// slowlogSnapshot is the GET /debug/slowlog response body.
type slowlogSnapshot struct {
	Schema      string         `json:"schema"`
	Size        int            `json:"size"`
	ThresholdMS int64          `json:"threshold_ms"`
	Observed    int64          `json:"observed"`
	Slowest     []slowlogEntry `json:"slowest"` // wall time descending
	Recent      []slowlogEntry `json:"recent"`  // newest first
}

// snapshot copies the recorder state: slowest by wall time descending,
// recent newest-first.
func (l *slowlog) snapshot() slowlogSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := slowlogSnapshot{
		Schema:      SlowlogSchema,
		Size:        l.size,
		ThresholdMS: l.threshold.Milliseconds(),
		Observed:    l.observed,
		Slowest:     append([]slowlogEntry(nil), l.slowest...),
		Recent:      make([]slowlogEntry, 0, len(l.recent)),
	}
	// The ring's newest entry sits just before next; walk backwards.
	for i := 0; i < len(l.recent); i++ {
		idx := (l.next - 1 - i + len(l.recent)) % len(l.recent)
		s.Recent = append(s.Recent, l.recent[idx])
	}
	return s
}
