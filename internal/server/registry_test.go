package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"viewjoin"
)

// saveTestViews materializes the view set and saves each view to a
// container file, returning the paths in view order.
func saveTestViews(t testing.TB, d *viewjoin.Document, viewsStr string, scheme viewjoin.StorageScheme) []string {
	t.Helper()
	views, err := viewjoin.ParseViews(viewsStr)
	if err != nil {
		t.Fatal(err)
	}
	mviews, err := d.MaterializeViews(views, scheme)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := make([]string, len(mviews))
	for i, mv := range mviews {
		var buf bytes.Buffer
		if _, err := mv.SaveView(&buf); err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("view-%d.vjst", i))
		if err := os.WriteFile(paths[i], buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// newFileBackedServer builds a server whose views are all registered from
// files (residency-managed) for the default tenant's "xmark" document.
func newFileBackedServer(t testing.TB, cfg Config, paths []string) *Server {
	t.Helper()
	s := New(cfg)
	if err := s.AddDocument("xmark", viewjoin.GenerateXMark(0.05)); err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if err := s.AddViewFile("xmark", p); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// viewFootprints reports the total and maximum page footprint of the
// saved view files as the server accounts them.
func viewFootprints(t testing.TB, d *viewjoin.Document, paths []string) (total, max int64) {
	t.Helper()
	for _, p := range paths {
		mv, err := d.OpenView(p)
		if err != nil {
			t.Fatal(err)
		}
		fp := mv.FootprintBytes()
		total += fp
		if fp > max {
			max = fp
		}
		mv.Release()
	}
	return total, max
}

// TestResidencyCappedByteIdentical is the acceptance criterion of the
// tiering layer: a server whose resident-bytes cap is far below the total
// view footprint — so some views are served cold through mappings, with
// promotions and demotions happening mid-sequence — must return responses
// byte-identical to a fully resident server, for the same request
// sequence. Residency is a cost decision, never a result decision.
func TestResidencyCappedByteIdentical(t *testing.T) {
	d := viewjoin.GenerateXMark(0.05)
	paths := saveTestViews(t, d, testViews, viewjoin.SchemeLEp)
	_, maxFP := viewFootprints(t, d, paths)

	warm := newFileBackedServer(t, Config{}, paths)
	capped := newFileBackedServer(t, Config{MaxResidentBytes: maxFP}, paths)
	defer warm.Close()
	defer capped.Close()
	tsWarm := httptest.NewServer(warm.Handler())
	tsCapped := httptest.NewServer(capped.Handler())
	defer tsWarm.Close()
	defer tsCapped.Close()

	// The sequence alternates between the two single-view queries (each
	// answerable from one view, forcing per-view acquire churn) and the
	// combined query, several rounds so cold views cross the promotion
	// threshold and evict each other.
	type step struct {
		query string
		views []string
	}
	seq := []step{
		{"//site//item//name", []string{"//site//item//name"}},
		{"//description//keyword", []string{"//description//keyword"}},
		{testQuery, nil},
		{"//description//keyword", []string{"//description//keyword"}},
		{"//site//item//name", []string{"//site//item//name"}},
		{"//site//item//name", []string{"//site//item//name"}},
		{"//description//keyword", []string{"//description//keyword"}},
		{testQuery, nil},
	}
	for i, st := range seq {
		req := queryRequest{Document: "xmark", Query: st.query, Views: st.views, Limit: 100000}
		var a, b queryResponse
		if code := post(t, tsWarm, "/query", req, &a); code != http.StatusOK {
			t.Fatalf("step %d: warm status %d", i, code)
		}
		if code := post(t, tsCapped, "/query", req, &b); code != http.StatusOK {
			t.Fatalf("step %d: capped status %d", i, code)
		}
		ja, _ := json.Marshal(a.Matches)
		jb, _ := json.Marshal(b.Matches)
		if a.MatchCount != b.MatchCount || !bytes.Equal(ja, jb) {
			t.Fatalf("step %d (%s): capped server diverged: %d vs %d matches",
				i, st.query, a.MatchCount, b.MatchCount)
		}
	}

	m := getMetrics(t, tsCapped)
	r := m.Residency
	if r.CapBytes != maxFP {
		t.Errorf("cap_bytes = %d, want %d", r.CapBytes, maxFP)
	}
	if r.ResidentBytes > r.CapBytes {
		t.Errorf("resident_bytes %d exceeds cap %d", r.ResidentBytes, r.CapBytes)
	}
	if r.ColdHits == 0 {
		t.Error("capped run recorded no cold hits")
	}
	if r.Promotions == 0 || r.Demotions == 0 {
		t.Errorf("capped run recorded %d promotions, %d demotions; want both > 0", r.Promotions, r.Demotions)
	}
	if r.PlanEvictions == 0 {
		t.Error("tier changes invalidated no cached plans")
	}
	mw := getMetrics(t, tsWarm).Residency
	if mw.ColdHits != 0 || mw.Demotions != 0 || mw.WarmViews != len(paths) {
		t.Errorf("uncapped server tiered anyway: %+v", mw)
	}
}

// TestResidencyPlanInvalidation pins the demotion -> plan-cache contract:
// demoting a view drops every cached plan over it, so the next request
// for that plan is a miss that re-prepares against the view's current
// tier.
func TestResidencyPlanInvalidation(t *testing.T) {
	d := viewjoin.GenerateXMark(0.05)
	paths := saveTestViews(t, d, testViews, viewjoin.SchemeLEp)
	_, maxFP := viewFootprints(t, d, paths)
	s := newFileBackedServer(t, Config{MaxResidentBytes: maxFP}, paths)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqA := queryRequest{Document: "xmark", Query: "//site//item//name", Views: []string{"//site//item//name"}}
	reqB := queryRequest{Document: "xmark", Query: "//description//keyword", Views: []string{"//description//keyword"}}

	// Warm A's plan (registration admitted the first view warm), then hit it.
	var resp queryResponse
	post(t, ts, "/query", reqA, &resp)
	post(t, ts, "/query", reqA, &resp)
	if resp.Cache != "hit" {
		t.Fatalf("second A request: cache %q, want hit", resp.Cache)
	}
	// Drive B past the promotion threshold; with cap == max footprint its
	// promotion must demote A, invalidating A's cached plan.
	post(t, ts, "/query", reqB, &resp)
	post(t, ts, "/query", reqB, &resp)
	m := getMetrics(t, ts)
	if m.Residency.Demotions == 0 {
		t.Fatalf("promotion of B did not demote A: %+v", m.Residency)
	}
	if m.Residency.PlanEvictions == 0 {
		t.Fatal("demotion invalidated no cached plans")
	}
	post(t, ts, "/query", reqA, &resp)
	if resp.Cache != "miss" {
		t.Errorf("A after demotion: cache %q, want miss (plan invalidated)", resp.Cache)
	}
	if resp.MatchCount == 0 {
		t.Error("A after demotion returned no matches")
	}
}

// TestResidencyConcurrentChurn exercises the tiering lock under -race:
// many goroutines querying across two tenants with a cap that forces
// continuous promote/demote churn. Every request must succeed with the
// correct result; the final accounting must balance.
func TestResidencyConcurrentChurn(t *testing.T) {
	d := viewjoin.GenerateXMark(0.05)
	paths := saveTestViews(t, d, testViews, viewjoin.SchemeLEp)
	_, maxFP := viewFootprints(t, d, paths)

	s := New(Config{MaxResidentBytes: maxFP, Workers: 4})
	for _, tn := range []string{"alpha", "beta"} {
		if err := s.AddTenantDocument(tn, "xmark", d); err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			if err := s.AddTenantViewFile(tn, "xmark", p); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	want := map[string]int{}
	for _, q := range []string{"//site//item//name", "//description//keyword"} {
		res := viewjoin.EvaluateDirect(d, viewjoin.MustParseQuery(q))
		want[q] = len(res.Matches)
	}

	const workers, rounds = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenants := []string{"alpha", "beta"}
			queries := []string{"//site//item//name", "//description//keyword"}
			for i := 0; i < rounds; i++ {
				tn := tenants[(w+i)%2]
				q := queries[(w+i/2)%2]
				req := queryRequest{Tenant: tn, Document: "xmark", Query: q, Views: []string{q}}
				var resp queryResponse
				if code := post(t, ts, "/query", req, &resp); code != http.StatusOK {
					errs <- fmt.Errorf("worker %d round %d: status %d", w, i, code)
					return
				}
				if resp.MatchCount != want[q] {
					errs <- fmt.Errorf("worker %d round %d: %d matches, want %d", w, i, resp.MatchCount, want[q])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := getMetrics(t, ts)
	r := m.Residency
	if r.ResidentBytes > r.CapBytes {
		t.Errorf("resident_bytes %d exceeds cap %d", r.ResidentBytes, r.CapBytes)
	}
	if r.WarmHits+r.ColdHits == 0 {
		t.Error("no view accesses recorded")
	}
	if r.Tenants != 2 {
		t.Errorf("tenants = %d, want 2", r.Tenants)
	}
}

// TestTenantIsolation: two tenants registering the same document name get
// fully separate registries — separate documents, separate views,
// separate plan-cache entries — and an unregistered tenant is a 404.
func TestTenantIsolation(t *testing.T) {
	s := New(Config{})
	dA := viewjoin.GenerateXMark(0.05)
	dB := viewjoin.GenerateNasa(60)
	if err := s.AddTenantDocument("a", "doc", dA); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTenantDocument("b", "doc", dB); err != nil {
		t.Fatal(err)
	}
	for _, reg := range []struct {
		tn    string
		d     *viewjoin.Document
		views string
	}{{"a", dA, testViews}, {"b", dB, "//field//para"}} {
		for _, p := range saveTestViews(t, reg.d, reg.views, viewjoin.SchemeLEp) {
			if err := s.AddTenantViewFile(reg.tn, "doc", p); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	wantA := len(viewjoin.EvaluateDirect(dA, viewjoin.MustParseQuery("//site//item//name")).Matches)
	wantB := len(viewjoin.EvaluateDirect(dB, viewjoin.MustParseQuery("//field//para")).Matches)

	var resp queryResponse
	if code := post(t, ts, "/query",
		queryRequest{Tenant: "a", Document: "doc", Query: "//site//item//name", Views: []string{"//site//item//name"}},
		&resp); code != http.StatusOK || resp.MatchCount != wantA {
		t.Fatalf("tenant a: status %d, %d matches (want %d)", code, resp.MatchCount, wantA)
	}
	if code := post(t, ts, "/query",
		queryRequest{Tenant: "b", Document: "doc", Query: "//field//para", Views: []string{"//field//para"}},
		&resp); code != http.StatusOK || resp.MatchCount != wantB {
		t.Fatalf("tenant b: status %d, %d matches (want %d)", code, resp.MatchCount, wantB)
	}
	// Tenant b has no //site//item//name view; the cross-tenant ask must
	// fail at resolve rather than leak a's registry.
	var e errorResponse
	if code := post(t, ts, "/query",
		queryRequest{Tenant: "b", Document: "doc", Query: "//site//item//name", Views: []string{"//site//item//name"}},
		&e); code != http.StatusNotFound {
		t.Fatalf("cross-tenant view: status %d, want 404", code)
	}
	if code := post(t, ts, "/query",
		queryRequest{Tenant: "nobody", Document: "doc", Query: "//field//para"}, &e); code != http.StatusNotFound {
		t.Fatalf("unknown tenant: status %d, want 404", code)
	}
}

// TestResidencyColdOpensOnce: a view pinned to the cold tier (footprint
// above the cap) opens its mapping exactly once no matter how many
// requests read through it — the mapping is shared, not per-request.
func TestResidencyColdOpensOnce(t *testing.T) {
	d := viewjoin.GenerateXMark(0.05)
	paths := saveTestViews(t, d, testViews, viewjoin.SchemeLEp)
	// A cap of one byte keeps every view cold forever (nothing fits), so
	// every request is a cold hit through the one shared mapping.
	s := newFileBackedServer(t, Config{MaxResidentBytes: 1}, paths)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := queryRequest{Document: "xmark", Query: "//site//item//name", Views: []string{"//site//item//name"}}
	for i := 0; i < 5; i++ {
		var resp queryResponse
		if code := post(t, ts, "/query", req, &resp); code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	r := getMetrics(t, ts).Residency
	if r.ColdOpens != 1 {
		t.Errorf("cold_opens = %d, want 1 (shared mapping)", r.ColdOpens)
	}
	if r.ColdHits != 5 {
		t.Errorf("cold_hits = %d, want 5", r.ColdHits)
	}
	if r.Promotions != 0 || r.WarmViews != 0 {
		t.Errorf("over-cap view was promoted: %+v", r)
	}
	if r.ResidentBytes != 0 {
		t.Errorf("resident_bytes = %d, want 0", r.ResidentBytes)
	}
}

// TestServerCloseIdempotent: Close after serving releases all backends
// without error, and a second Close is a no-op.
func TestServerCloseIdempotent(t *testing.T) {
	d := viewjoin.GenerateXMark(0.05)
	paths := saveTestViews(t, d, testViews, viewjoin.SchemeLEp)
	s := newFileBackedServer(t, Config{MaxResidentBytes: 1}, paths)
	ts := httptest.NewServer(s.Handler())
	var resp queryResponse
	post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery}, &resp)
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
