package server

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"

	"viewjoin"
	"viewjoin/internal/store"
)

// This file is the server's storage-residency layer: per-tenant view
// registries with LRU admission keyed by page footprint. Every file-backed
// view lives in one of two tiers —
//
//	warm: a resident load (heap pages), bound into plans at full speed;
//	cold: an mmap-backed load (address space + page cache), costing no
//	      heap, paying kernel faults on first touch of each page.
//
// The -max-resident-bytes cap bounds the warm tier. Registration admits a
// view warm while it fits; once the cap is reached new views start cold
// and earn promotion by access frequency, demoting the least recently used
// warm views to make room. Views registered from memory (AddView /
// AddTenantView) are pinned: always warm, never demoted, outside the cap's
// accounting — the cap governs what the server loaded from files and can
// therefore reload.
//
// Tier changes never invalidate in-flight work. A demoted warm copy is
// unreferenced by the registry but its heap pages survive until the last
// plan or run holding them drops away (GC); a cold mapping, once opened,
// stays open until Server.Close — munmap under a live reader is the one
// way a mapping can fault, so mappings unwind only after Drain, when no
// reader can remain. What a tier change does invalidate is cached plans
// over the view (planCache.invalidate), so future requests bind the
// current copy.

// tenant is one isolated registry of documents and views. The zero-named
// tenant ("") is the default registry that the non-tenant API surface
// (AddDocument/AddView, requests without a tenant field) addresses.
type tenant struct {
	name string
	docs map[string]*docEntry
}

// viewEntry is one registered view of one tenant's document, tracking its
// tier. Immutable identity fields are set at registration; the tier state
// (warm, cold, freq, elem) is guarded by the residency manager's mutex
// for managed entries, and never changes for pinned ones.
type viewEntry struct {
	tenant string
	doc    string
	name   string // canonical pattern rendering
	docRef *viewjoin.Document

	path      string // container file; "" for pinned in-memory views
	pinned    bool   // registered from memory: always warm, never demoted
	footprint int64  // page-granular size, the unit the cap is charged in
	scheme    string // captured at registration so listings don't need an open copy
	entries   int

	warm *viewjoin.MaterializedView // resident copy; nil while cold
	cold *viewjoin.MaterializedView // mmap-backed copy; opened lazily, stays open
	freq int64                      // accesses, drives promotion
	elem *list.Element              // position in the warm LRU; nil while cold
}

// residency is the global warm-tier manager: the LRU of warm file-backed
// views, the byte accounting against the cap, and the tiering counters
// /metrics reports. One lock covers all tier state; the only slow
// operation performed under it is the resident load of a promotion, which
// is deliberate — a promotion is rare and must be atomic against
// concurrent demotions of the room it just made.
//
// Lock order: residency.mu before planCache.mu (invalidate is called with
// the residency lock held; the serving path takes the cache lock alone).
type residency struct {
	mu           sync.Mutex
	cap          int64 // warm-tier byte cap; 0 = unbounded (everything warm)
	disableMmap  bool  // cold loads fall back to resident reads
	promoteAfter int64 // accesses before a cold view is considered for promotion

	ll            *list.List // warm entries, front = most recently used
	managed       int        // file-backed views registered (warm + cold)
	residentBytes int64      // warm-tier bytes (managed entries only)
	coldBytes     int64      // footprint of views with an open cold copy

	promotions int64
	demotions  int64
	planEvicts int64 // plan-cache entries invalidated by tier changes
	warmHits   int64
	coldHits   int64
	coldOpens  int64
}

func newResidency(cfg Config) *residency {
	return &residency{
		cap:          cfg.MaxResidentBytes,
		disableMmap:  cfg.DisableMmap,
		promoteAfter: int64(cfg.PromoteAfter),
		ll:           list.New(),
	}
}

// AddTenantDocument registers a document under a tenant's registry,
// creating the tenant on first use. Not safe to call once serving has
// started.
func (s *Server) AddTenantDocument(tenantName, name string, d *viewjoin.Document) error {
	if name == "" {
		return errors.New("server: empty document name")
	}
	t := s.tenants[tenantName]
	if t == nil {
		t = &tenant{name: tenantName, docs: make(map[string]*docEntry)}
		s.tenants[tenantName] = t
	}
	if _, ok := t.docs[name]; ok {
		return fmt.Errorf("server: document %q already registered%s", name, forTenant(tenantName))
	}
	t.docs[name] = &docEntry{doc: d, views: make(map[string]*viewEntry)}
	return nil
}

// AddTenantView registers an in-memory materialized view under a tenant's
// document. Such views are pinned: always warm, exempt from the
// resident-bytes cap (there is no file to reload them from). Not safe to
// call once serving has started.
func (s *Server) AddTenantView(tenantName, docName string, mv *viewjoin.MaterializedView) error {
	e, err := s.tenantDoc(tenantName, docName)
	if err != nil {
		return err
	}
	name := mv.Pattern().String()
	if _, ok := e.views[name]; ok {
		return fmt.Errorf("server: view %s already registered for document %q%s", name, docName, forTenant(tenantName))
	}
	e.views[name] = &viewEntry{
		tenant: tenantName, doc: docName, name: name, docRef: e.doc,
		pinned: true, footprint: mv.FootprintBytes(),
		scheme: mv.Scheme().String(), entries: mv.NumEntries(),
		warm: mv,
	}
	e.order = append(e.order, name)
	s.pinnedViews++
	return nil
}

// AddTenantViewFile registers a saved view container file under a
// tenant's document, placing it under residency management: the file is
// loaded once (resident) to validate it against the document and measure
// its footprint, then admitted warm while the resident-bytes cap allows
// and registered cold otherwise. Cold views are opened lazily — the first
// request that needs one maps it. Not safe to call once serving has
// started.
func (s *Server) AddTenantViewFile(tenantName, docName, path string) error {
	e, err := s.tenantDoc(tenantName, docName)
	if err != nil {
		return err
	}
	mv, err := e.doc.OpenView(path)
	if err != nil {
		return fmt.Errorf("server: view file %s: %w", path, err)
	}
	name := mv.Pattern().String()
	if _, ok := e.views[name]; ok {
		mv.Release()
		return fmt.Errorf("server: view %s already registered for document %q%s", name, docName, forTenant(tenantName))
	}
	ve := &viewEntry{
		tenant: tenantName, doc: docName, name: name, docRef: e.doc,
		path: path, footprint: mv.FootprintBytes(),
		scheme: mv.Scheme().String(), entries: mv.NumEntries(),
	}
	e.views[name] = ve
	e.order = append(e.order, name)

	r := s.res
	r.mu.Lock()
	r.managed++
	if r.cap <= 0 || r.residentBytes+ve.footprint <= r.cap {
		ve.warm = mv
		ve.elem = r.ll.PushFront(ve)
		r.residentBytes += ve.footprint
	} else {
		// Over cap: drop the validation copy and start cold. The resident
		// buffer is heap, so Release is a reference drop, not an unmap.
		mv.Release()
	}
	r.mu.Unlock()
	return nil
}

// tenantDoc resolves a registration target.
func (s *Server) tenantDoc(tenantName, docName string) (*docEntry, error) {
	t := s.tenants[tenantName]
	if t == nil {
		return nil, fmt.Errorf("server: unknown tenant %q", tenantName)
	}
	e, ok := t.docs[docName]
	if !ok {
		return nil, fmt.Errorf("server: unknown document %q%s", docName, forTenant(tenantName))
	}
	return e, nil
}

func forTenant(name string) string {
	if name == "" {
		return ""
	}
	return fmt.Sprintf(" (tenant %q)", name)
}

// acquire returns the view copy a request should evaluate over, running
// the tiering policy: warm views are touched in the LRU; cold views count
// an access and are promoted once their frequency reaches the threshold
// and the cap can accommodate them (demoting LRU-tail warm views to make
// room), otherwise served through their mapping, opening it on first use.
func (s *Server) acquire(ve *viewEntry) (*viewjoin.MaterializedView, error) {
	if ve.pinned {
		return ve.warm, nil
	}
	r := s.res
	r.mu.Lock()
	defer r.mu.Unlock()
	ve.freq++
	if ve.warm != nil {
		r.ll.MoveToFront(ve.elem)
		r.warmHits++
		return ve.warm, nil
	}
	if ve.freq >= r.promoteAfter && (r.cap <= 0 || ve.footprint <= r.cap) {
		if mv, err := r.promoteLocked(s, ve); err == nil && mv != nil {
			return mv, nil
		}
		// A failed promotion (unreclaimable room, or a load error on a file
		// that has since vanished) falls through to the cold path.
	}
	r.coldHits++
	if ve.cold == nil {
		mv, err := openCold(ve, r.disableMmap)
		if err != nil {
			return nil, err
		}
		ve.cold = mv
		r.coldBytes += ve.footprint
		r.coldOpens++
	}
	return ve.cold, nil
}

// promoteLocked loads a resident copy of ve and admits it to the warm
// tier, demoting least-recently-used warm views until it fits. Returns
// (nil, nil) when the cap cannot yield enough room. Caller holds r.mu.
func (r *residency) promoteLocked(s *Server, ve *viewEntry) (*viewjoin.MaterializedView, error) {
	if r.cap > 0 {
		reclaimable := r.cap - r.residentBytes
		for el := r.ll.Back(); el != nil && reclaimable < ve.footprint; el = el.Prev() {
			reclaimable += el.Value.(*viewEntry).footprint
		}
		if reclaimable < ve.footprint {
			return nil, nil
		}
	}
	mv, err := ve.docRef.OpenView(ve.path)
	if err != nil {
		return nil, err
	}
	for r.cap > 0 && r.residentBytes+ve.footprint > r.cap {
		r.demoteLocked(s, r.ll.Back().Value.(*viewEntry))
	}
	ve.warm = mv
	ve.elem = r.ll.PushFront(ve)
	r.residentBytes += ve.footprint
	r.promotions++
	// The promoted copy supersedes the cold one for planning; the mapping
	// stays open (in-flight plans may still read it) but future plans must
	// bind the warm copy.
	r.planEvicts += int64(s.cache.invalidate(ve.tenant, ve.doc, ve.name))
	return mv, nil
}

// demoteLocked moves a warm view to the cold tier: the registry drops its
// resident copy (heap pages survive until in-flight readers finish) and
// cached plans over it are invalidated. Caller holds r.mu.
func (r *residency) demoteLocked(s *Server, ve *viewEntry) {
	r.ll.Remove(ve.elem)
	ve.elem = nil
	w := ve.warm
	ve.warm = nil
	r.residentBytes -= ve.footprint
	w.Release()
	r.demotions++
	r.planEvicts += int64(s.cache.invalidate(ve.tenant, ve.doc, ve.name))
}

// openCold opens the cold-tier copy of a view: a read-only mapping, or a
// resident read when mmap is disabled or unsupported on the platform (the
// fallback costs heap the cap does not see, but keeps the server serving).
func openCold(ve *viewEntry, disableMmap bool) (*viewjoin.MaterializedView, error) {
	if !disableMmap {
		mv, err := ve.docRef.LoadViewMmap(ve.path)
		if err == nil || !errors.Is(err, store.ErrMmapUnsupported) {
			return mv, err
		}
	}
	return ve.docRef.OpenView(ve.path)
}

// Close releases every storage backend the registry holds — warm buffers
// and cold mappings — after draining, so no in-flight evaluation can
// touch an unmapped page. It is the shutdown path of cmd/vjserve.
func (s *Server) Close() error {
	s.Drain()
	r := s.res
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, t := range s.tenants {
		for _, e := range t.docs {
			for _, ve := range e.views {
				for _, mv := range []*viewjoin.MaterializedView{ve.warm, ve.cold} {
					if mv == nil {
						continue
					}
					if err := mv.Release(); err != nil && first == nil {
						first = err
					}
				}
				ve.warm, ve.cold, ve.elem = nil, nil, nil
			}
		}
	}
	r.ll.Init()
	r.residentBytes, r.coldBytes = 0, 0
	return first
}

// residencyMetrics is the tiering block of GET /metrics and
// GET /debug/plans: gauges for the current tier occupancy and counters
// for every tier transition since start.
type residencyMetrics struct {
	CapBytes      int64 `json:"cap_bytes"` // 0 = unbounded
	ResidentBytes int64 `json:"resident_bytes"`
	ColdBytes     int64 `json:"cold_bytes"`
	WarmViews     int   `json:"warm_views"`
	ColdViews     int   `json:"cold_views"`
	PinnedViews   int   `json:"pinned_views"`
	Tenants       int   `json:"tenants"`
	Promotions    int64 `json:"promotions"`
	Demotions     int64 `json:"demotions"`
	PlanEvictions int64 `json:"plan_evictions"` // cached plans invalidated by tier changes
	WarmHits      int64 `json:"warm_hits"`
	ColdHits      int64 `json:"cold_hits"`
	ColdOpens     int64 `json:"cold_opens"`
}

func (s *Server) residencySnapshot() residencyMetrics {
	r := s.res
	r.mu.Lock()
	defer r.mu.Unlock()
	warm := r.ll.Len()
	return residencyMetrics{
		CapBytes:      r.cap,
		ResidentBytes: r.residentBytes,
		ColdBytes:     r.coldBytes,
		WarmViews:     warm,
		ColdViews:     r.managed - warm,
		PinnedViews:   s.pinnedViews,
		Tenants:       len(s.tenants),
		Promotions:    r.promotions,
		Demotions:     r.demotions,
		PlanEvictions: r.planEvicts,
		WarmHits:      r.warmHits,
		ColdHits:      r.coldHits,
		ColdOpens:     r.coldOpens,
	}
}

// viewResidencyRow is one view's tier state in GET /debug/plans.
type viewResidencyRow struct {
	Tenant         string `json:"tenant,omitempty"`
	Document       string `json:"document"`
	View           string `json:"view"`
	Tier           string `json:"tier"` // pinned, warm, cold, unloaded
	FootprintBytes int64  `json:"footprint_bytes"`
	Accesses       int64  `json:"accesses"`
}

// viewRows snapshots every registered view's tier, tenants and documents
// in sorted order, registration order within a document.
func (s *Server) viewRows() []viewResidencyRow {
	r := s.res
	r.mu.Lock()
	defer r.mu.Unlock()
	var rows []viewResidencyRow
	for _, tn := range sortedKeys(s.tenants) {
		t := s.tenants[tn]
		for _, dn := range sortedKeys(t.docs) {
			e := t.docs[dn]
			for _, vn := range e.order {
				ve := e.views[vn]
				tier := "cold"
				switch {
				case ve.pinned:
					tier = "pinned"
				case ve.warm != nil:
					tier = "warm"
				case ve.cold == nil:
					tier = "unloaded" // cold, mapping not opened yet
				}
				rows = append(rows, viewResidencyRow{
					Tenant: ve.tenant, Document: ve.doc, View: ve.name,
					Tier: tier, FootprintBytes: ve.footprint, Accesses: ve.freq,
				})
			}
		}
	}
	return rows
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
