package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"viewjoin"
)

// updateTestServer is newTestServer plus a handle on the registered
// document, which update tests need to run the library oracle against.
func updateTestServer(t testing.TB, cfg Config) (*Server, *viewjoin.Document) {
	t.Helper()
	s := New(cfg)
	d := viewjoin.GenerateXMark(0.05)
	if err := s.AddDocument("xmark", d); err != nil {
		t.Fatal(err)
	}
	views, err := viewjoin.ParseViews(testViews)
	if err != nil {
		t.Fatal(err)
	}
	mviews, err := d.MaterializeViews(views, viewjoin.SchemeLEp)
	if err != nil {
		t.Fatal(err)
	}
	for _, mv := range mviews {
		if err := s.AddView("xmark", mv); err != nil {
			t.Fatal(err)
		}
	}
	return s, d
}

// anyTarget returns the start label of some non-root node via the query
// API, the way a client would address an update target.
func anyTarget(t testing.TB, ts *httptest.Server) int32 {
	t.Helper()
	var qr queryResponse
	if st := post(t, ts, "/query", queryRequest{
		Document: "xmark", Query: testQuery, Limit: 1,
	}, &qr); st != http.StatusOK {
		t.Fatalf("target query: status %d", st)
	}
	if len(qr.Matches) == 0 {
		t.Fatal("target query returned no rows")
	}
	row := qr.Matches[0]
	return row[len(row)-1].Start
}

// TestUpdateEndToEnd applies an insert through POST /update and checks the
// transition end to end: the epoch advances, every view reports a
// maintenance outcome, /documents reflects the new epoch and node count,
// the update metrics move, and — the actual correctness bar — post-update
// query results over the maintained views are identical to a fresh
// materialization from the updated document, for every engine.
func TestUpdateEndToEnd(t *testing.T) {
	s, d := updateTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	target := anyTarget(t, ts)
	nodesBefore := d.NumNodes()

	var ur updateResponse
	st := post(t, ts, "/update", updateRequest{
		Document: "xmark", Op: "insert-before", Target: target,
		Fragment: "<item><name>spliced</name><description><keyword>spliced</keyword></description></item>",
	}, &ur)
	if st != http.StatusOK {
		t.Fatalf("/update: status %d", st)
	}
	if ur.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", ur.Epoch)
	}
	if ur.Nodes <= nodesBefore {
		t.Fatalf("nodes = %d after insert, want > %d", ur.Nodes, nodesBefore)
	}
	if len(ur.Views) != 2 {
		t.Fatalf("maintained %d views, want 2", len(ur.Views))
	}
	for _, v := range ur.Views {
		if v.TotalPages <= 0 {
			t.Fatalf("view %s: total_pages = %d", v.View, v.TotalPages)
		}
	}
	if d.Epoch() != 1 {
		t.Fatalf("document epoch = %d, want 1", d.Epoch())
	}

	// Oracle: re-materialize the views from the updated document and run
	// the library evaluation; the served (maintained) results must agree.
	views, err := viewjoin.ParseViews(testViews)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := d.MaterializeViews(views, viewjoin.SchemeLEp)
	if err != nil {
		t.Fatal(err)
	}
	q, err := viewjoin.ParseQuery(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	// PS and IJ are excluded: the test query is a twig, not a path.
	for _, eng := range []string{"VJ", "TS"} {
		e, err := ParseEngine(eng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := viewjoin.Prepare(d, q, fresh, e, nil)
		if err != nil {
			t.Fatalf("%s: oracle prepare: %v", eng, err)
		}
		want, err := p.Run()
		if err != nil {
			t.Fatalf("%s: oracle run: %v", eng, err)
		}
		var qr queryResponse
		if st := post(t, ts, "/query", queryRequest{
			Document: "xmark", Query: testQuery, Engine: eng, Limit: len(want.Matches) + 16,
		}, &qr); st != http.StatusOK {
			t.Fatalf("%s: post-update query: status %d", eng, st)
		}
		if qr.MatchCount != len(want.Matches) {
			t.Fatalf("%s: served %d matches, oracle has %d", eng, qr.MatchCount, len(want.Matches))
		}
		for i, row := range qr.Matches {
			for j, n := range row {
				o := want.Matches[i][j]
				if n.Start != o.Start || n.End != o.End || n.Level != o.Level || n.Tag != o.Tag {
					t.Fatalf("%s: row %d node %d: served %+v, oracle %+v", eng, i, j, n, o)
				}
			}
		}
	}

	m := getMetrics(t, ts)
	if m.Updates.Total != 1 || m.Updates.Maintains != 2 {
		t.Fatalf("update metrics: %+v, want total=1 maintains=2", m.Updates)
	}
}

// TestUpdateStaleCursor pins the pagination contract across an epoch
// change: a cursor issued before an update resumes by document position,
// which the update renumbered, so replaying it must fail cleanly with 410
// Gone — never silently skip or repeat rows — and restarting pagination
// at the new epoch must work.
func TestUpdateStaleCursor(t *testing.T) {
	s, _ := updateTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var page queryResponse
	if st := post(t, ts, "/query", queryRequest{
		Document: "xmark", Query: testQuery, Limit: 2,
	}, &page); st != http.StatusOK {
		t.Fatalf("first page: status %d", st)
	}
	if page.Cursor == "" {
		t.Fatal("first page returned no cursor")
	}

	if st := post(t, ts, "/update", updateRequest{
		Document: "xmark", Op: "insert-before", Target: anyTarget(t, ts),
		Fragment: "<item><name>x</name></item>",
	}, nil); st != http.StatusOK {
		t.Fatalf("/update: status %d", st)
	}

	var er errorResponse
	if st := post(t, ts, "/query", queryRequest{
		Document: "xmark", Query: testQuery, Limit: 2, Cursor: page.Cursor,
	}, &er); st != http.StatusGone {
		t.Fatalf("stale cursor: status %d, want %d (%s)", st, http.StatusGone, er.Error)
	}

	// A fresh pagination at the new epoch proceeds normally.
	var fresh queryResponse
	if st := post(t, ts, "/query", queryRequest{
		Document: "xmark", Query: testQuery, Limit: 2,
	}, &fresh); st != http.StatusOK {
		t.Fatalf("restarted page: status %d", st)
	}
	if fresh.Cursor == "" || fresh.Cursor == page.Cursor {
		t.Fatalf("restarted cursor %q must be fresh (old %q)", fresh.Cursor, page.Cursor)
	}
}

// TestUpdateFileBackedConflict pins the 409 guard: a document serving any
// file-backed (residency-managed) view rejects updates before mutating
// anything — container-backed views alias their file image and cannot be
// maintained in place.
func TestUpdateFileBackedConflict(t *testing.T) {
	s := New(Config{})
	d := viewjoin.GenerateXMark(0.05)
	if err := s.AddDocument("xmark", d); err != nil {
		t.Fatal(err)
	}
	views, err := viewjoin.ParseViews(testViews)
	if err != nil {
		t.Fatal(err)
	}
	mviews, err := d.MaterializeViews(views, viewjoin.SchemeLEp)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "view.vjc")
	if _, err := mviews[0].SaveViewFile(path); err != nil {
		t.Fatal(err)
	}
	if err := s.AddViewFile("xmark", path); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var er errorResponse
	if st := post(t, ts, "/update", updateRequest{
		Document: "xmark", Op: "delete-subtree", Target: 1,
	}, &er); st != http.StatusConflict {
		t.Fatalf("file-backed update: status %d, want %d (%s)", st, http.StatusConflict, er.Error)
	}
	if d.Epoch() != 0 {
		t.Fatalf("document advanced to epoch %d despite the 409", d.Epoch())
	}
}

// TestUpdateRequestErrors walks the failure surface of POST /update.
func TestUpdateRequestErrors(t *testing.T) {
	s, _ := updateTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  updateRequest
		want int
	}{
		{"unknown document", updateRequest{Document: "nope", Op: "delete-subtree", Target: 1}, http.StatusNotFound},
		{"unknown tenant", updateRequest{Tenant: "ghost", Document: "xmark", Op: "delete-subtree", Target: 1}, http.StatusNotFound},
		{"bad op", updateRequest{Document: "xmark", Op: "truncate", Target: 1}, http.StatusBadRequest},
		{"missing fragment", updateRequest{Document: "xmark", Op: "insert-before", Target: 1}, http.StatusBadRequest},
		{"bad fragment", updateRequest{Document: "xmark", Op: "append-child", Target: 1, Fragment: "<a><b></a>"}, http.StatusBadRequest},
		{"unknown target", updateRequest{Document: "xmark", Op: "delete-subtree", Target: -7}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		var er errorResponse
		if st := post(t, ts, "/update", tc.req, &er); st != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, st, tc.want, er.Error)
		}
	}
	if resp, err := http.Get(ts.URL + "/update"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /update: status %d", resp.StatusCode)
		}
	}
}

// TestDocumentsEpoch checks that GET /documents reports the document's
// update epoch, before and after an update.
func TestDocumentsEpoch(t *testing.T) {
	s, _ := updateTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	docs := func() []documentInfo {
		resp, err := http.Get(ts.URL + "/documents")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out []documentInfo
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := docs(); len(got) != 1 || got[0].Epoch != 0 {
		t.Fatalf("before update: %+v, want one document at epoch 0", got)
	}
	if st := post(t, ts, "/update", updateRequest{
		Document: "xmark", Op: "insert-before", Target: anyTarget(t, ts),
		Fragment: "<open_auction><annotation/></open_auction>",
	}, nil); st != http.StatusOK {
		t.Fatalf("/update: status %d", st)
	}
	if got := docs(); len(got) != 1 || got[0].Epoch != 1 {
		t.Fatalf("after update: %+v, want epoch 1", got)
	}
}

// TestUpdateInvalidatesPlans pins the cache transition: a plan cached
// before the update is dropped (the next request is a miss that
// re-prepares against the maintained views), and the dropped count is
// reported in the update response.
func TestUpdateInvalidatesPlans(t *testing.T) {
	s, _ := updateTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var qr queryResponse
	post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery}, &qr)
	if qr.Cache != "miss" {
		t.Fatalf("first query cache = %q, want miss", qr.Cache)
	}
	post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery}, &qr)
	if qr.Cache != "hit" {
		t.Fatalf("second query cache = %q, want hit", qr.Cache)
	}

	var ur updateResponse
	if st := post(t, ts, "/update", updateRequest{
		Document: "xmark", Op: "insert-before", Target: anyTarget(t, ts),
		Fragment: "<item><name>y</name></item>",
	}, &ur); st != http.StatusOK {
		t.Fatalf("/update: status %d", st)
	}
	if ur.PlansInvalidated < 1 {
		t.Fatalf("plans_invalidated = %d, want >= 1", ur.PlansInvalidated)
	}

	post(t, ts, "/query", queryRequest{Document: "xmark", Query: testQuery}, &qr)
	if qr.Cache != "miss" {
		t.Fatalf("post-update query cache = %q, want miss (plan must re-prepare)", qr.Cache)
	}
}
