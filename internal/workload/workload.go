// Package workload defines the benchmark queries and covering view sets of
// the paper's experimental evaluation (§VI): the 14 XPath queries derived
// from the XMark benchmark (Q1-Q20 numbering, 6 path + 8 twig), the eight
// Nasa queries N1-N8, the interleaving-study queries Np/Nt with their view
// sets PV1-PV4 / TV1-TV4 (Table III), the Table II view-selection pool, and
// the Table IV space-study views.
//
// The paper's exact derived XMark queries were published at a now-dead URL
// [5]; the derivations here reconstruct them from the public XMark XQuery
// benchmark under the paper's stated constraints (6 path + 8 twig queries,
// Q6 three steps; see DESIGN.md §5). The per-query covering view sets are
// likewise this reproduction's choices, designed to reproduce the paper's
// observed redundancy split: tuple views for Q1, Q2, Q20 and N1 carry heavy
// data redundancy (TS beats IJ there), the other path queries' views carry
// none (IJ beats TS).
package workload

import (
	"fmt"

	"viewjoin/internal/tpq"
)

// Query is one benchmark query with its covering view set.
type Query struct {
	// Name is the paper's label (Q1, N5, Np, ...).
	Name string
	// Pattern is the TPQ.
	Pattern *tpq.Pattern
	// Views is the minimal covering view set used by the view-based engines.
	Views []*tpq.Pattern
	// Path reports whether the query is a path query (InterJoin-eligible).
	Path bool
}

func q(name, pattern, views string) Query {
	p := tpq.MustParse(pattern)
	return Query{
		Name:    name,
		Pattern: p,
		Views:   tpq.MustParseAll(views),
		Path:    p.IsPath(),
	}
}

// XMarkPath returns the six path queries derived from the XMark benchmark
// (Fig. 5(a)). The view sets for Q1, Q2 and Q20 repeat a high-fanout
// ancestor in every tuple (heavy redundancy); Q5, Q6, Q18 have none.
func XMarkPath() []Query {
	return []Query{
		q("Q1", "//site/people/person/name", "//site//person//name; //people"),
		q("Q2", "//site/open_auctions/open_auction/bidder/increase",
			"//site//increase; //open_auctions//open_auction//bidder"),
		q("Q5", "//site/closed_auctions/closed_auction/price", "//site/closed_auctions; //closed_auction/price"),
		q("Q6", "//site/regions//item", "//site/regions; //item"),
		q("Q18", "//site/open_auctions/open_auction/initial", "//site/open_auctions; //open_auction/initial"),
		q("Q20", "//site/people/person/profile/gender", "//site//person//profile//gender; //people"),
	}
}

// XMarkTwig returns the eight twig queries derived from the XMark
// benchmark (Fig. 5(c), Table V).
func XMarkTwig() []Query {
	return []Query{
		q("Q4", "//site/open_auctions/open_auction[//bidder/personref]/reserve",
			"//site//reserve; //open_auctions//open_auction; //bidder/personref"),
		q("Q8", "//site/people/person[//address/city]/name",
			"//site//person//name; //people; //address/city"),
		q("Q9", "//site/closed_auctions/closed_auction[//buyer]/itemref",
			"//closed_auctions//closed_auction//itemref; //site; //buyer"),
		q("Q10", "//site/people/person[//profile/interest]//education",
			"//site//person//education; //people; //profile/interest"),
		q("Q11", "//site/open_auctions/open_auction[//initial]/current",
			"//open_auctions//open_auction/current; //site; //initial"),
		q("Q13", "//site/regions//item[//location]/quantity",
			"//site//item/quantity; //regions; //location"),
		q("Q14", "//site//item[//description//keyword]/name",
			"//site//item//name; //description//keyword"),
		q("Q19", "//site/regions//item[//name]/location",
			"//regions//item//location; //site; //name"),
	}
}

// NasaPath returns the paper's four Nasa path queries N1-N4 (Fig. 5(b)).
// N1's views carry heavy tuple redundancy (fields repeat per para), the
// others' do not.
func NasaPath() []Query {
	return []Query{
		q("N1", "//field//footnote//para", "//field//para; //footnote"),
		q("N2", "//dataset//definition//footnote", "//dataset//footnote; //definition"),
		q("N3", "//revision/creator/lastname", "//revision//lastname; //creator"),
		q("N4", "//reference//journal//date//year", "//reference//date//year; //journal"),
	}
}

// NasaTwig returns the paper's four Nasa twig queries N5-N8 (Fig. 5(d),
// Table V).
func NasaTwig() []Query {
	return []Query{
		q("N5", "//dataset[//definition/footnote]//history//revision//para",
			"//dataset//revision//para; //definition/footnote; //history"),
		q("N6", "//journal[//suffix][title]/date/year",
			"//journal/date/year; //suffix; //title"),
		q("N7", "//dataset[//field//footnote]//journal[//bibcode]//lastname",
			"//dataset//journal//lastname; //field//footnote; //bibcode"),
		q("N8", "//descriptions[//observatory]/description//para",
			"//descriptions//para; //observatory; //description"),
	}
}

// InterleavingCase is one row of the paper's Table III: a query evaluated
// with a specific view set whose inter-view edge count measures the
// interleaving complexity.
type InterleavingCase struct {
	Name  string
	Query *tpq.Pattern
	Views []*tpq.Pattern
	// Cond is the paper's #Cond column: the number of inter-view edges.
	Cond int
}

// Np is the path query of the interleaving study (Fig. 6(a)).
func Np() *tpq.Pattern {
	return tpq.MustParse("//dataset//tableHead//field//definition//footnote//para")
}

// Nt is the twig query of the interleaving study (Fig. 6(b)); it is also
// the query of the Table II view-selection example.
func Nt() *tpq.Pattern {
	return tpq.MustParse("//dataset//tableHead[//tableLink//title]//field//definition//para")
}

// TableIII returns the eight rows of the paper's Table III.
func TableIII() []InterleavingCase {
	np, nt := Np(), Nt()
	rows := []struct {
		name  string
		query *tpq.Pattern
		views string
		cond  int
	}{
		{"PV1", np, "//dataset//field//footnote; //tableHead//definition//para", 5},
		{"PV2", np, "//dataset//field//footnote//para; //tableHead//definition", 4},
		{"PV3", np, "//dataset//field; //tableHead//definition//footnote//para", 3},
		{"PV4", np, "//tableHead; //dataset//field//definition//footnote//para", 2},
		{"TV1", nt, "//dataset[//tableLink]//definition; //tableHead//title; //field//para", 6},
		{"TV2", nt, "//dataset//tableHead; //field//para; //tableLink//title; //definition", 4},
		{"TV3", nt, "//dataset//definition//para; //tableHead//field; //tableLink//title", 3},
		{"TV4", nt, "//field//definition//para; //dataset//tableHead; //tableLink//title", 2},
	}
	out := make([]InterleavingCase, len(rows))
	for i, r := range rows {
		out[i] = InterleavingCase{
			Name:  r.name,
			Query: r.query,
			Views: tpq.MustParseAll(r.views),
			Cond:  r.cond,
		}
	}
	return out
}

// TableIIPool returns the candidate views of the paper's Table II
// view-selection example (tagged v1..v6), all defined on the Nasa dataset
// for query Nt.
func TableIIPool() []struct {
	Tag  string
	View *tpq.Pattern
} {
	rows := []struct {
		Tag  string
		View *tpq.Pattern
	}{
		{"v1", tpq.MustParse("//dataset//definition")},
		{"v2", tpq.MustParse("//dataset//tableHead")},
		{"v3", tpq.MustParse("//field//para")},
		{"v4", tpq.MustParse("//definition")},
		{"v5", tpq.MustParse("//tableLink//title")},
		{"v6", tpq.MustParse("//field//definition//para")},
	}
	return rows
}

// TableIVViews returns the two XMark views of the paper's space study
// (Table IV): v1 = //item//text//keyword (data nodes occur in multiple
// matches), v2 = //person//education (they do not).
func TableIVViews() (v1, v2 *tpq.Pattern) {
	return tpq.MustParse("//item//text//keyword"), tpq.MustParse("//person//education")
}

// All returns every named benchmark query keyed by name.
func All() map[string]Query {
	out := make(map[string]Query)
	for _, set := range [][]Query{XMarkPath(), XMarkTwig(), NasaPath(), NasaTwig()} {
		for _, query := range set {
			out[query.Name] = query
		}
	}
	return out
}

// Validate checks every catalog entry against the paper's assumptions:
// view sets must be valid minimal covering sets of their queries.
func Validate() error {
	for name, query := range All() {
		if err := tpq.ValidateViewSet(query.Views, query.Pattern); err != nil {
			return fmt.Errorf("workload: %s: %w", name, err)
		}
	}
	for _, c := range TableIII() {
		if err := tpq.ValidateViewSet(c.Views, c.Query); err != nil {
			return fmt.Errorf("workload: %s: %w", c.Name, err)
		}
		if got := tpq.InterViewEdges(c.Views, c.Query); got != c.Cond {
			return fmt.Errorf("workload: %s: inter-view edges = %d, want %d", c.Name, got, c.Cond)
		}
	}
	return nil
}
