package workload

import (
	"testing"

	"viewjoin/internal/dataset/nasa"
	"viewjoin/internal/dataset/xmark"
	"viewjoin/internal/oracle"
	"viewjoin/internal/xmltree"
)

func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogShape(t *testing.T) {
	if got := len(XMarkPath()); got != 6 {
		t.Errorf("XMark path queries = %d, want 6 (paper §VI)", got)
	}
	if got := len(XMarkTwig()); got != 8 {
		t.Errorf("XMark twig queries = %d, want 8", got)
	}
	for _, query := range XMarkPath() {
		if !query.Path {
			t.Errorf("%s must be a path query", query.Name)
		}
		for _, v := range query.Views {
			if !v.IsPath() {
				t.Errorf("%s: view %s must be a path view (InterJoin-eligible)", query.Name, v)
			}
		}
	}
	for _, query := range NasaPath() {
		if !query.Path {
			t.Errorf("%s must be a path query", query.Name)
		}
	}
	for _, query := range XMarkTwig() {
		if query.Path {
			t.Errorf("%s must be a twig query", query.Name)
		}
	}
	for _, query := range NasaTwig() {
		if query.Path {
			t.Errorf("%s must be a twig query", query.Name)
		}
	}
	// Q6 has exactly three steps (§VI-A: "Q6 is very simple (with only
	// three steps)").
	for _, query := range XMarkPath() {
		if query.Name == "Q6" && query.Pattern.Size() != 3 {
			t.Errorf("Q6 has %d steps, want 3", query.Pattern.Size())
		}
	}
}

// TestQueriesNonEmptyOnDatasets ensures every benchmark query actually
// matches the corresponding generated dataset — an experiment over empty
// results would be vacuous.
func TestQueriesNonEmptyOnDatasets(t *testing.T) {
	xm := xmark.Scale(0.02)
	ns := nasa.Generate(nasa.Config{Datasets: 120})
	if err := xm.Validate(); err != nil {
		t.Fatalf("xmark document invalid: %v", err)
	}
	if err := ns.Validate(); err != nil {
		t.Fatalf("nasa document invalid: %v", err)
	}
	check := func(d *xmltree.Document, qs []Query, dataset string) {
		for _, query := range qs {
			n := len(oracle.Eval(d, query.Pattern))
			if n == 0 {
				t.Errorf("%s has no matches on %s", query.Name, dataset)
			}
		}
	}
	check(xm, XMarkPath(), "xmark")
	check(xm, XMarkTwig(), "xmark")
	check(ns, NasaPath(), "nasa")
	check(ns, NasaTwig(), "nasa")

	// The interleaving-study queries and the Table II query too.
	for _, p := range []interface{ String() string }{Np(), Nt()} {
		_ = p
	}
	if len(oracle.Eval(ns, Np())) == 0 {
		t.Errorf("Np has no matches on nasa")
	}
	if len(oracle.Eval(ns, Nt())) == 0 {
		t.Errorf("Nt has no matches on nasa")
	}
	v1, v2 := TableIVViews()
	if len(oracle.Eval(xm, v1)) == 0 || len(oracle.Eval(xm, v2)) == 0 {
		t.Errorf("Table IV views empty on xmark")
	}
}

// TestTableIVRedundancyShape checks the property Table IV rests on: in
// v1 = //item//text//keyword data nodes occur in multiple matches (tuples
// outnumber distinct solution nodes), while in v2 = //person//education
// they do not.
func TestTableIVRedundancyShape(t *testing.T) {
	xm := xmark.Scale(0.05)
	v1, v2 := TableIVViews()

	// Redundancy ratio: labels stored by the tuple scheme (tuples × arity)
	// versus entries stored by the element scheme (distinct solution nodes).
	m1 := oracle.Eval(xm, v1)
	s1 := m1.SolutionNodes(v1.Size())
	tupleLabels := len(m1) * v1.Size()
	elemEntries := len(s1[0]) + len(s1[1]) + len(s1[2])
	if float64(tupleLabels) < 1.2*float64(elemEntries) {
		// With multi-keyword texts, items and texts repeat across tuples.
		t.Errorf("v1: tuple scheme stores %d labels vs %d element entries: expected ≥1.2x redundancy",
			tupleLabels, elemEntries)
	}
	m2 := oracle.Eval(xm, v2)
	s2 := m2.SolutionNodes(v2.Size())
	if len(m2)*v2.Size() != len(s2[0])+len(s2[1]) {
		t.Errorf("v2: %d tuples × 2 != %d+%d solution nodes: persons have at most one education",
			len(m2), len(s2[0]), len(s2[1]))
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := xmark.Scale(0.02)
	b := xmark.Scale(0.02)
	if a.NumNodes() != b.NumNodes() {
		t.Errorf("xmark not deterministic: %d vs %d nodes", a.NumNodes(), b.NumNodes())
	}
	na := nasa.Generate(nasa.Config{Datasets: 50})
	nb := nasa.Generate(nasa.Config{Datasets: 50})
	if na.NumNodes() != nb.NumNodes() {
		t.Errorf("nasa not deterministic: %d vs %d nodes", na.NumNodes(), nb.NumNodes())
	}
}

func TestXMarkScalesLinearly(t *testing.T) {
	small := xmark.Scale(0.05).NumNodes()
	big := xmark.Scale(0.20).NumNodes()
	ratio := float64(big) / float64(small)
	if ratio < 3.2 || ratio > 4.8 {
		t.Errorf("4x scale gave %.2fx nodes (small=%d big=%d)", ratio, small, big)
	}
}

// TestNasaSkew verifies the skewed element distribution the paper relies
// on: para dominates, observatory/suffix/bibcode are rare.
func TestNasaSkew(t *testing.T) {
	d := nasa.Generate(nasa.Config{Datasets: 300})
	count := func(name string) int {
		return len(d.NodesOfType(d.TypeByName(name)))
	}
	paras, fields := count("para"), count("field")
	for _, rare := range []string{"observatory", "suffix", "bibcode"} {
		if c := count(rare); c == 0 {
			t.Errorf("%s absent: queries over it would be vacuous", rare)
		} else if c*10 > paras {
			t.Errorf("%s = %d not rare relative to %d paras", rare, c, paras)
		}
	}
	if paras < fields {
		t.Errorf("para (%d) should dominate field (%d)", paras, fields)
	}
}
