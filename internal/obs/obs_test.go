package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"viewjoin/internal/counters"
)

func TestPhaseNesting(t *testing.T) {
	r := NewRecorder()
	r.BeginPhase(PhaseEvaluate)
	time.Sleep(2 * time.Millisecond)
	r.BeginPhase(PhaseEnumerate) // pauses evaluate
	time.Sleep(2 * time.Millisecond)
	r.EndPhase(PhaseEnumerate)
	time.Sleep(time.Millisecond)
	r.EndPhase(PhaseEvaluate)

	ev, en := r.PhaseDuration(PhaseEvaluate), r.PhaseDuration(PhaseEnumerate)
	if ev <= 0 || en <= 0 {
		t.Fatalf("phase durations not recorded: evaluate=%v enumerate=%v", ev, en)
	}
	// Exclusive accounting: evaluate must not include the enumerate span.
	if en < 2*time.Millisecond {
		t.Errorf("enumerate = %v, want >= 2ms", en)
	}
	if total := ev + en; total < 5*time.Millisecond {
		t.Errorf("total = %v, want >= 5ms", total)
	}
}

func TestEndPhaseUnderflow(t *testing.T) {
	r := NewRecorder()
	r.EndPhase(PhaseParse) // must not panic
	r.BeginPhase(PhaseParse)
	r.EndPhase(PhaseParse)
	r.EndPhase(PhaseParse)
}

func TestEventAccumulation(t *testing.T) {
	r := NewRecorder()
	r.Event(EvScan, 2, 3)
	r.Event(EvScan, 0, 1)
	r.Event(EvCursorAdvance, 2, 1)
	r.Event(EvJumpTaken, 2, 7) // magnitude = skip pages, counts as 1 jump
	r.Event(EvJumpRefused, 2, 1)
	r.Event(EvStackPush, 0, 4)
	r.Event(EvStackPop, 0, 4)
	r.Event(EvPageMiss, -1, 1)
	r.Event(EvPageHit, -1, 2)

	if got := r.EventCount(EvScan); got != 4 {
		t.Errorf("scan count = %d, want 4", got)
	}
	if got := r.EventCount(EvJumpTaken); got != 1 {
		t.Errorf("jumpTaken count = %d, want 1 (magnitude is distance, not count)", got)
	}
	m := r.Metrics(counters.Counters{}, 0)
	if len(m.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(m.Nodes))
	}
	if m.Nodes[2].Scanned != 3 || m.Nodes[2].JumpsTaken != 1 || m.Nodes[2].JumpsRefused != 1 {
		t.Errorf("node 2 metrics wrong: %+v", m.Nodes[2])
	}
	if m.Nodes[0].Pushes != 4 || m.Nodes[0].Pops != 4 {
		t.Errorf("node 0 metrics wrong: %+v", m.Nodes[0])
	}
	if m.JumpSkipPages.N != 1 || m.JumpSkipPages.Sum != 7 || m.JumpSkipPages.Max != 7 {
		t.Errorf("histogram wrong: %+v", m.JumpSkipPages)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(4)
	h.Add(1 << 40)       // clamps to the last bucket
	h.Add(-5)            // negative clamps to 0
	if h.Count[0] != 2 { // 0 and -5
		t.Errorf("bucket 0 = %d, want 2", h.Count[0])
	}
	if h.Count[1] != 1 { // 1
		t.Errorf("bucket 1 = %d, want 1", h.Count[1])
	}
	if h.Count[2] != 2 { // 2, 3
		t.Errorf("bucket 2 = %d, want 2", h.Count[2])
	}
	if h.Count[3] != 1 { // 4
		t.Errorf("bucket 3 = %d, want 1", h.Count[3])
	}
	if h.Count[HistogramBuckets-1] != 1 {
		t.Errorf("last bucket = %d, want 1", h.Count[HistogramBuckets-1])
	}
	if BucketUpper(0) != 0 || BucketUpper(1) != 1 || BucketUpper(3) != 7 {
		t.Errorf("BucketUpper wrong: %d %d %d", BucketUpper(0), BucketUpper(1), BucketUpper(3))
	}
}

func TestReportJSONStable(t *testing.T) {
	r := NewRecorder()
	r.Plan(&Plan{
		Query: "//a//b", Engine: "VJ", Scheme: "LEp",
		Views:       []string{"//a", "//b"},
		NumSegments: 2,
		Nodes: []PlanNode{
			{Index: 0, Label: "a", Parent: -1, View: 0, ViewNode: 0, Segment: 0, SegmentRoot: true, ListEntries: 10},
			{Index: 1, Label: "b", Axis: "//", Parent: 0, View: 1, ViewNode: 0, Segment: 1, SegmentRoot: true, InterView: true, ListEntries: 20},
		},
	})
	r.Event(EvScan, 0, 10)
	r.Event(EvJumpTaken, 1, 3)
	r.Event(EvPageMiss, -1, 2)

	c := counters.Counters{ElementsScanned: 10, Matches: 5, PagesRead: 2}
	rep := r.Report(c, 123*time.Microsecond)

	var buf1, buf2 bytes.Buffer
	if err := rep.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("JSON encoding not deterministic")
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf1.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["schema"] != ReportSchema {
		t.Errorf("schema = %v", decoded["schema"])
	}
	for _, key := range []string{"plan", "phases", "events", "nodes", "counters", "pageMisses", "durationNanos"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("missing key %q in report JSON", key)
		}
	}
	if rep.PageMisses != 2 {
		t.Errorf("pageMisses = %d, want 2", rep.PageMisses)
	}
	if rep.Counters.Matches != 5 {
		t.Errorf("counters.matches = %d, want 5", rep.Counters.Matches)
	}
}

func TestReportExplain(t *testing.T) {
	r := NewRecorder()
	r.Plan(&Plan{
		Query: "//a//b", Engine: "VJ", Scheme: "LE",
		Views:       []string{"//a//b"},
		NumSegments: 1,
		Nodes: []PlanNode{
			{Index: 0, Label: "a", Parent: -1, View: 0, ViewNode: 0, Segment: 0, SegmentRoot: true, ListEntries: 4},
			{Index: 1, Label: "b", Axis: "//", Parent: 0, View: 0, ViewNode: 1, Segment: 0, ListEntries: 9},
		},
	})
	r.BeginPhase(PhaseEvaluate)
	r.Event(EvScan, 0, 4)
	r.EndPhase(PhaseEvaluate)
	rep := r.Report(counters.Counters{ElementsScanned: 4}, time.Millisecond)

	var buf bytes.Buffer
	if err := rep.WriteExplain(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"//a//b", "segment", "evaluate", "scanned=4", "buffer pool", "q0", "q1"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestPhaseAndEventNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Phases() {
		name := p.String()
		if name == "unknown" || seen[name] {
			t.Errorf("bad phase name %q", name)
		}
		seen[name] = true
	}
	for _, e := range Events() {
		name := e.String()
		if name == "unknown" || seen[name] {
			t.Errorf("bad event name %q", name)
		}
		seen[name] = true
	}
}
