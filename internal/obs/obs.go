// Package obs is the observability layer of the reproduction: span-style
// phase timing, engine-internal event streams, and per-query-node cost
// breakdowns, collected behind a Tracer interface whose nil default costs
// nothing on the hot path.
//
// The paper's evaluation (§VI) argues about *where* time goes — cursor
// advances, pointer jumps, page misses — not just totals. This package
// makes those claims observable: every engine, the store cursors, and the
// simulated buffer pool report their micro-operations to a Tracer, and the
// Recorder implementation aggregates them into a Metrics snapshot that
// extends counters.Counters with per-phase durations and distribution
// summaries (jump skip-length histogram, per-node scans). Renderers turn a
// Recorder into a human EXPLAIN-style report or a stable JSON document
// (see report.go).
//
// Tracing is strictly opt-in. All call sites guard with `tr != nil`, so an
// untraced evaluation performs no interface calls and no allocations for
// observability (the no-op benchmark in the root package pins this).
package obs

import (
	"math"
	"math/bits"
	"time"

	"viewjoin/internal/counters"
)

// Phase identifies one span of an evaluation run. Phases nest: beginning a
// phase while another is open attributes subsequent time to the inner
// phase until it ends (exclusive, self-time accounting).
type Phase uint8

const (
	// PhaseParse covers query and view parsing (CLI-side).
	PhaseParse Phase = iota
	// PhaseSegment covers view-segmented query construction (vsq.Build)
	// and, for InterJoin, view-position mapping.
	PhaseSegment
	// PhaseBind covers binding query nodes to view list files.
	PhaseBind
	// PhaseEvaluate covers the engine main loop (cursor joins, skipping).
	PhaseEvaluate
	// PhaseEnumerate covers window enumeration into match tuples.
	PhaseEnumerate
	// PhaseOutput covers converting matches into the public result rows.
	PhaseOutput

	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseParse:
		return "parse"
	case PhaseSegment:
		return "segment"
	case PhaseBind:
		return "bind"
	case PhaseEvaluate:
		return "evaluate"
	case PhaseEnumerate:
		return "enumerate"
	case PhaseOutput:
		return "output"
	default:
		return "unknown"
	}
}

// Phases lists every phase in execution order.
func Phases() []Phase {
	return []Phase{PhaseParse, PhaseSegment, PhaseBind, PhaseEvaluate, PhaseEnumerate, PhaseOutput}
}

// Event identifies one engine-internal micro-operation.
type Event uint8

const (
	// EvScan: one record decoded from a list or tuple file (node-attributed
	// twin of counters.ElementsScanned).
	EvScan Event = iota
	// EvCursorAdvance: one sequential cursor advance (Next).
	EvCursorAdvance
	// EvJumpTaken: a materialized pointer jump was followed; the event
	// magnitude is the skipped distance in pages (≥ 0).
	EvJumpTaken
	// EvJumpRefused: a jump was available but a guard (safe-jump probe,
	// open-region cover) or a stale pointer refused it.
	EvJumpRefused
	// EvStackPush: a candidate was accepted onto an open-region stack (or
	// admitted to the window DAG).
	EvStackPush
	// EvStackPop: an open region was popped (ended before the next
	// candidate, or the window was reset).
	EvStackPop
	// EvPageHit: a page touch served from the simulated buffer pool.
	EvPageHit
	// EvPageMiss: a page touch charged as a read (pool miss).
	EvPageMiss
	// EvPartition: one partition of a range-partitioned parallel run
	// completed; the event magnitude is the partition's wall time in
	// nanoseconds (each event counts as one partition, and the duration
	// feeds the partition-span histogram).
	EvPartition

	numEvents
)

// String names the event.
func (e Event) String() string {
	switch e {
	case EvScan:
		return "scan"
	case EvCursorAdvance:
		return "cursorAdvance"
	case EvJumpTaken:
		return "jumpTaken"
	case EvJumpRefused:
		return "jumpRefused"
	case EvStackPush:
		return "stackPush"
	case EvStackPop:
		return "stackPop"
	case EvPageHit:
		return "pageHit"
	case EvPageMiss:
		return "pageMiss"
	case EvPartition:
		return "partition"
	default:
		return "unknown"
	}
}

// Events lists every event kind.
func Events() []Event {
	return []Event{EvScan, EvCursorAdvance, EvJumpTaken, EvJumpRefused,
		EvStackPush, EvStackPop, EvPageHit, EvPageMiss, EvPartition}
}

// Tracer receives phases and events from an evaluation. A nil Tracer
// disables tracing; every producer guards its calls with a nil check, so
// the disabled path costs one predictable branch.
//
// Implementations need not be safe for concurrent use: one evaluation is
// single-threaded, and each evaluation should get its own Tracer.
type Tracer interface {
	// BeginPhase opens a phase span. Phases nest; time is attributed
	// exclusively (an inner phase pauses its parent).
	BeginPhase(p Phase)
	// EndPhase closes the innermost span opened for p.
	EndPhase(p Phase)
	// Event records one micro-operation. node is the query-node index the
	// event is attributed to, or -1 when unattributed (e.g. page events).
	// n is the event magnitude: a count for most events, the skipped page
	// distance for EvJumpTaken (which always counts as one jump).
	Event(e Event, node int, n int64)
	// Plan receives the evaluation plan (view-segmented query, bindings)
	// once it is built. May be called zero or one time per evaluation.
	Plan(p *Plan)
}

// NodeMetrics is the per-query-node cost breakdown.
type NodeMetrics struct {
	// Scanned counts records decoded for this node's list.
	Scanned int64 `json:"scanned"`
	// Advances counts sequential cursor advances.
	Advances int64 `json:"advances"`
	// JumpsTaken / JumpsRefused count pointer jumps followed and refused.
	JumpsTaken   int64 `json:"jumpsTaken"`
	JumpsRefused int64 `json:"jumpsRefused"`
	// Pushes / Pops count open-region stack operations.
	Pushes int64 `json:"pushes"`
	Pops   int64 `json:"pops"`
}

// HistogramBuckets is the number of power-of-two buckets in a Histogram:
// bucket 0 holds value 0, bucket i (i ≥ 1) holds values in [2^(i-1), 2^i).
// 32 buckets cover every int32-addressable distance.
const HistogramBuckets = 32

// Histogram is a power-of-two distribution summary of non-negative values.
type Histogram struct {
	Count [HistogramBuckets]int64
	N     int64 // total observations
	Sum   int64 // sum of observed values
	Max   int64
}

// Add records one observation.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.Count[bucketOf(v)]++
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
}

func bucketOf(v int64) int {
	b := bits.Len64(uint64(v)) // 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3, ...
	if b >= HistogramBuckets {
		b = HistogramBuckets - 1
	}
	return b
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Merge folds o into h: bucket-wise counts, N, Sum, and the running Max.
// Histograms over the same unit merge exactly (the buckets are fixed), so
// per-worker or per-partition histograms can be combined without loss.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.Count {
		h.Count[i] += o.Count[i]
	}
	h.N += o.N
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed values
// from the log-scaled buckets: the bucket holding the ceil(q·N)-th smallest
// observation is located and the value interpolated linearly by rank within
// the bucket's [lower, upper] range. The estimate is exact for bucket 0
// (value 0) and within one power of two otherwise; the top bucket — and any
// bucket whose range exceeds the observed maximum — is clamped to Max, so a
// saturated histogram never reports a value beyond what was seen. An empty
// histogram reports 0; q ≥ 1 reports Max.
func (h *Histogram) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max
	}
	if q < 0 {
		q = 0
	}
	rank := int64(math.Ceil(q * float64(h.N)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < HistogramBuckets; i++ {
		c := h.Count[i]
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketUpper(i-1) + 1
			}
			hi := BucketUpper(i)
			if hi > h.Max || i == HistogramBuckets-1 {
				// Either the observed maximum lands inside this bucket,
				// or this is the top bucket, which absorbs every value
				// beyond its nominal range — in both cases Max is the
				// true upper bound.
				hi = h.Max
			}
			if hi < lo {
				return hi
			}
			frac := float64(rank-cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	return h.Max
}

// Mean returns the average observed value, or 0 for an empty histogram.
// Unlike Quantile it is exact: Sum and N are tracked directly.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Metrics is the aggregated snapshot a Recorder accumulates: the shared
// deterministic counters extended with per-phase wall time, event totals,
// per-node breakdowns and distribution summaries.
type Metrics struct {
	// Counters is the shared cost accounting of the run (filled in by the
	// caller at snapshot time; the Recorder itself only sees events).
	Counters counters.Counters
	// PhaseDurations holds exclusive (self) time per phase.
	PhaseDurations [numPhases]time.Duration
	// EventCounts holds total occurrences per event kind.
	EventCounts [numEvents]int64
	// Nodes holds the per-query-node breakdown, indexed by query node.
	Nodes []NodeMetrics
	// JumpSkipPages summarizes the page distance skipped by taken jumps.
	JumpSkipPages Histogram
	// PartitionNanos summarizes the wall time of the partitions of a
	// range-partitioned parallel run (empty for sequential runs).
	PartitionNanos Histogram
	// Duration is the total wall-clock time across all phases plus any
	// untraced remainder the caller reports.
	Duration time.Duration
}

// Recorder is the standard Tracer: it accumulates Metrics and retains the
// Plan for rendering. The zero value is ready to use.
type Recorder struct {
	m     Metrics
	plan  *Plan
	stack []phaseFrame
}

type phaseFrame struct {
	phase Phase
	start time.Time
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// BeginPhase implements Tracer: it pauses the currently open phase (if
// any) and starts attributing time to p.
func (r *Recorder) BeginPhase(p Phase) {
	now := time.Now()
	if n := len(r.stack); n > 0 {
		top := &r.stack[n-1]
		r.m.PhaseDurations[top.phase] += now.Sub(top.start)
		top.start = now
	}
	r.stack = append(r.stack, phaseFrame{phase: p, start: now})
}

// EndPhase implements Tracer: it closes the innermost span for p and
// resumes the enclosing phase. Mismatched ends close the top span.
func (r *Recorder) EndPhase(p Phase) {
	n := len(r.stack)
	if n == 0 {
		return
	}
	now := time.Now()
	top := r.stack[n-1]
	if int(top.phase) < int(numPhases) {
		r.m.PhaseDurations[top.phase] += now.Sub(top.start)
	}
	r.stack = r.stack[:n-1]
	if n > 1 {
		r.stack[n-2].start = now
	}
	_ = p
}

// Event implements Tracer.
func (r *Recorder) Event(e Event, node int, n int64) {
	if e >= numEvents {
		return
	}
	count := n
	if e == EvJumpTaken {
		count = 1
		r.m.JumpSkipPages.Add(n)
	}
	if e == EvPartition {
		count = 1
		r.m.PartitionNanos.Add(n)
	}
	r.m.EventCounts[e] += count
	if node < 0 {
		return
	}
	if node >= len(r.m.Nodes) {
		grown := make([]NodeMetrics, node+1)
		copy(grown, r.m.Nodes)
		r.m.Nodes = grown
	}
	nm := &r.m.Nodes[node]
	switch e {
	case EvScan:
		nm.Scanned += n
	case EvCursorAdvance:
		nm.Advances += n
	case EvJumpTaken:
		nm.JumpsTaken++
	case EvJumpRefused:
		nm.JumpsRefused += n
	case EvStackPush:
		nm.Pushes += n
	case EvStackPop:
		nm.Pops += n
	}
}

// Plan implements Tracer: it retains the plan for rendering.
func (r *Recorder) Plan(p *Plan) { r.plan = p }

// PhaseDuration returns the exclusive time recorded for p so far.
func (r *Recorder) PhaseDuration(p Phase) time.Duration {
	if p >= numPhases {
		return 0
	}
	return r.m.PhaseDurations[p]
}

// EventCount returns the total recorded for e so far.
func (r *Recorder) EventCount(e Event) int64 {
	if e >= numEvents {
		return 0
	}
	return r.m.EventCounts[e]
}

// Metrics snapshots the accumulated metrics, stamping in the run's shared
// counters and total duration (which the Recorder does not observe itself).
func (r *Recorder) Metrics(c counters.Counters, total time.Duration) Metrics {
	m := r.m
	m.Nodes = append([]NodeMetrics(nil), r.m.Nodes...)
	m.Counters = c
	m.Duration = total
	return m
}
