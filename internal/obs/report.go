package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"viewjoin/internal/counters"
)

// ReportSchema versions the JSON encoding of Report. Consumers should
// reject documents whose schema they do not understand; additive changes
// keep the suffix, breaking changes bump it.
const ReportSchema = "viewjoin/trace/v1"

// Report is the machine-readable rendering of one traced evaluation: the
// plan, per-phase durations, event totals, per-node breakdowns, the jump
// skip-length distribution, and the shared counters. Field order (and thus
// JSON key order) is stable by construction.
type Report struct {
	Schema string `json:"schema"`
	Plan   *Plan  `json:"plan,omitempty"`

	// DurationNanos is the total evaluation wall time.
	DurationNanos int64 `json:"durationNanos"`
	// FirstMatchNanos is the wall time from the start of the run to the
	// first match produced (time-to-first-match); 0 when the run produced
	// no match or the caller did not record it. Stamped by the public API
	// after the report is built.
	FirstMatchNanos int64 `json:"firstMatchNanos,omitempty"`
	// Phases lists exclusive per-phase durations in execution order;
	// phases that never ran are included with zero duration.
	Phases []PhaseReport `json:"phases"`
	// Events lists total occurrences per event kind.
	Events []EventReport `json:"events"`
	// Nodes is the per-query-node breakdown (index = query node).
	Nodes []NodeReport `json:"nodes"`
	// JumpSkipPages is the distribution of page distances skipped by
	// taken pointer jumps; empty when no jump was taken.
	JumpSkipPages []HistBucket `json:"jumpSkipPages"`
	// PartitionNanos is the distribution of per-partition wall times of a
	// range-partitioned parallel run; empty for sequential runs.
	PartitionNanos []HistBucket `json:"partitionNanos,omitempty"`

	// Counters mirrors the run's deterministic counters.
	Counters CountersReport `json:"counters"`
	// PageHits / PageMisses split buffer-pool touches (misses equal
	// counters.pagesRead when every read goes through the pool).
	PageHits   int64 `json:"pageHits"`
	PageMisses int64 `json:"pageMisses"`
}

// PhaseReport is one phase's measured self time.
type PhaseReport struct {
	Phase string `json:"phase"`
	Nanos int64  `json:"nanos"`
}

// EventReport is one event kind's total.
type EventReport struct {
	Event string `json:"event"`
	Count int64  `json:"count"`
}

// NodeReport is one query node's cost breakdown, labelled from the plan
// when available.
type NodeReport struct {
	Node  int    `json:"node"`
	Label string `json:"label,omitempty"`
	NodeMetrics
}

// HistBucket is one histogram bucket: Count observations ≤ Upper (and
// greater than the previous bucket's Upper).
type HistBucket struct {
	Upper int64 `json:"upper"`
	Count int64 `json:"count"`
}

// CountersReport is the stable JSON encoding of counters.Counters.
type CountersReport struct {
	ElementsScanned int64 `json:"elementsScanned"`
	Comparisons     int64 `json:"comparisons"`
	PointerDerefs   int64 `json:"pointerDerefs"`
	PagesRead       int64 `json:"pagesRead"`
	PagesWritten    int64 `json:"pagesWritten"`
	Matches         int64 `json:"matches"`
}

// Report builds the renderable snapshot, stamping in the run's counters
// and total duration.
func (r *Recorder) Report(c counters.Counters, total time.Duration) *Report {
	m := r.Metrics(c, total)
	rep := &Report{
		Schema:        ReportSchema,
		Plan:          r.plan,
		DurationNanos: int64(total),
		Counters: CountersReport{
			ElementsScanned: c.ElementsScanned,
			Comparisons:     c.Comparisons,
			PointerDerefs:   c.PointerDerefs,
			PagesRead:       c.PagesRead,
			PagesWritten:    c.PagesWritten,
			Matches:         c.Matches,
		},
		PageHits:   m.EventCounts[EvPageHit],
		PageMisses: m.EventCounts[EvPageMiss],
	}
	for _, p := range Phases() {
		rep.Phases = append(rep.Phases, PhaseReport{Phase: p.String(), Nanos: int64(m.PhaseDurations[p])})
	}
	for _, e := range Events() {
		rep.Events = append(rep.Events, EventReport{Event: e.String(), Count: m.EventCounts[e]})
	}
	for i, nm := range m.Nodes {
		nr := NodeReport{Node: i, NodeMetrics: nm}
		if r.plan != nil && i < len(r.plan.Nodes) {
			nr.Label = r.plan.Nodes[i].Label
		}
		rep.Nodes = append(rep.Nodes, nr)
	}
	h := &m.JumpSkipPages
	for i := 0; i < HistogramBuckets; i++ {
		if h.Count[i] != 0 {
			rep.JumpSkipPages = append(rep.JumpSkipPages, HistBucket{Upper: BucketUpper(i), Count: h.Count[i]})
		}
	}
	ph := &m.PartitionNanos
	for i := 0; i < HistogramBuckets; i++ {
		if ph.Count[i] != 0 {
			rep.PartitionNanos = append(rep.PartitionNanos, HistBucket{Upper: BucketUpper(i), Count: ph.Count[i]})
		}
	}
	return rep
}

// WriteJSON writes the report as one indented JSON document.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteExplain renders the report as a human EXPLAIN-style text: the
// view-segmented query with list bindings, then per-phase and per-node
// costs.
func (rep *Report) WriteExplain(w io.Writer) error {
	var b strings.Builder
	if p := rep.Plan; p != nil {
		fmt.Fprintf(&b, "query %s via %s over %d %s view(s)\n", p.Query, p.Engine, len(p.Views), p.Scheme)
		for i, v := range p.Views {
			fmt.Fprintf(&b, "  view %d: %s\n", i, v)
		}
		if p.NumSegments > 0 {
			fmt.Fprintf(&b, "view-segmented query: %d segment(s)\n", p.NumSegments)
		}
		for _, n := range p.Nodes {
			axis := n.Axis
			if axis == "" {
				axis = "//"
			}
			loc := "removed from Q' (window extension via pointers)"
			if n.Segment >= 0 {
				role := "member"
				if n.SegmentRoot {
					role = "root"
				}
				loc = fmt.Sprintf("segment %d %s", n.Segment, role)
				if n.InterView {
					loc += ", inter-view edge"
				}
			}
			binding := ""
			if n.View >= 0 {
				binding = fmt.Sprintf(" <- view %d node %d", n.View, n.ViewNode)
				if n.ListEntries >= 0 {
					binding += fmt.Sprintf(" (%d entries)", n.ListEntries)
				}
			}
			fmt.Fprintf(&b, "  q%-3d %s%-14s %s%s\n", n.Index, axis, n.Label, loc, binding)
		}
	}
	fmt.Fprintf(&b, "total %v\n", time.Duration(rep.DurationNanos))
	fmt.Fprintf(&b, "%-10s %12s\n", "phase", "self time")
	for _, p := range rep.Phases {
		if p.Nanos == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-10s %12v\n", p.Phase, time.Duration(p.Nanos))
	}
	c := rep.Counters
	fmt.Fprintf(&b, "counters: scanned=%d cmp=%d deref=%d pagesR=%d pagesW=%d matches=%d\n",
		c.ElementsScanned, c.Comparisons, c.PointerDerefs, c.PagesRead, c.PagesWritten, c.Matches)
	fmt.Fprintf(&b, "buffer pool: %d hits, %d misses\n", rep.PageHits, rep.PageMisses)
	if len(rep.Nodes) > 0 {
		fmt.Fprintf(&b, "%-4s %-14s %10s %10s %8s %8s %8s %8s\n",
			"node", "label", "scanned", "advances", "jumps", "refused", "pushes", "pops")
		for _, n := range rep.Nodes {
			fmt.Fprintf(&b, "q%-3d %-14s %10d %10d %8d %8d %8d %8d\n",
				n.Node, n.Label, n.Scanned, n.Advances, n.JumpsTaken, n.JumpsRefused, n.Pushes, n.Pops)
		}
	}
	if len(rep.JumpSkipPages) > 0 {
		fmt.Fprintf(&b, "jump skip distance (pages): ")
		var parts []string
		for _, hb := range rep.JumpSkipPages {
			parts = append(parts, fmt.Sprintf("<=%d:%d", hb.Upper, hb.Count))
		}
		fmt.Fprintln(&b, strings.Join(parts, " "))
	}
	if len(rep.PartitionNanos) > 0 {
		var n int64
		for _, hb := range rep.PartitionNanos {
			n += hb.Count
		}
		fmt.Fprintf(&b, "partitions: %d (wall time histogram ns: ", n)
		var parts []string
		for _, hb := range rep.PartitionNanos {
			parts = append(parts, fmt.Sprintf("<=%d:%d", hb.Upper, hb.Count))
		}
		fmt.Fprintf(&b, "%s)\n", strings.Join(parts, " "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
